// The beer-drinkers walkthrough: Example 3 (SA=), Example 7 (GF),
// Theorem 8 translations, and the Section 4.1 inexpressibility argument on
// Fig. 6 (query Q separates two guarded-bisimilar databases).
//
//   build/examples/beer_drinkers
#include <cstdio>

#include "bisim/bisimulation.h"
#include "gf/eval.h"
#include "gf/translate.h"
#include "ra/eval.h"
#include "ra/rewrite.h"
#include "witness/figures.h"

int main() {
  using namespace setalg;

  const witness::BeerExample beer = witness::MakeBeerExample();

  std::printf("Example 3 — 'drinkers that visit a lousy bar' in SA=:\n  %s\n",
              witness::LousyBarDrinkersSa()->ToString().c_str());
  std::printf("Example 7 — the same query in the guarded fragment:\n  %s\n\n",
              witness::LousyBarDrinkersGf()->ToString().c_str());

  // Theorem 8: translate the GF formula back into SA= mechanically.
  auto translated =
      gf::GfToSaEq(*witness::LousyBarDrinkersGf(), {"x"}, beer.schema);
  std::printf("Theorem 8 translation produced an SA= expression with %zu nodes.\n\n",
              translated->NumNodes());

  // Section 4.1: query Q on the Fig. 6 pair.
  const auto q = witness::QueryQRa();
  const auto q_on_a = ra::Eval(q, beer.a);
  const auto q_on_b = ra::Eval(q, beer.b);
  std::printf("Query Q ('visits a bar serving a beer they like'):\n");
  std::printf("  on A: %zu answer(s) —", q_on_a.size());
  for (std::size_t i = 0; i < q_on_a.size(); ++i) {
    std::printf(" %s", beer.names.Name(q_on_a.tuple(i)[0]).c_str());
  }
  std::printf("\n  on B: %zu answer(s)\n\n", q_on_b.size());

  // Yet A,alex and B,alex are guarded bisimilar: verify both the paper's
  // explicit bisimulation and the greatest-fixpoint checker.
  const auto explicit_set = witness::MakeFig6Bisimulation(beer);
  const std::string verified =
      bisim::VerifyBisimulation(explicit_set, beer.a, beer.b, {});
  std::printf("Paper's explicit bisimulation (%zu partial isos): %s\n",
              explicit_set.size(), verified.empty() ? "VALID" : verified.c_str());

  bisim::BisimulationChecker checker(&beer.a, &beer.b, {});
  const core::Value alex = beer.names.Code("alex");
  std::printf("Fixpoint checker: A,alex ~ B,alex ? %s\n",
              checker.AreBisimilar(core::Tuple{alex}, core::Tuple{alex}) ? "yes"
                                                                         : "no");

  // Consequence (Corollary 14 + Theorem 18): Q is not SA=-expressible, so
  // every RA expression for Q is quadratic. The rewriter corroborates: it
  // cannot certify Q's cyclic join linear.
  std::printf("RewriteRaToSaEq(Q) -> %s\n",
              ra::RewriteRaToSaEq(q).has_value() ? "rewrote (unexpected!)"
                                                 : "not syntactically linear");
  return 0;
}
