// Quickstart: the paper's Fig. 1 — relational division and set-containment
// join on the medical example, through the public API.
//
//   build/examples/quickstart
#include <cstdio>

#include "setjoin/division.h"
#include "setjoin/setjoin.h"
#include "witness/figures.h"

int main() {
  using namespace setalg;

  const witness::MedicalExample example = witness::MakeMedicalExample();
  const core::Relation& person = example.db.relation("Person");
  const core::Relation& disease = example.db.relation("Disease");
  const core::Relation& symptoms = example.db.relation("Symptoms");

  std::printf("Fig. 1 — the medical database\n");
  std::printf("  |Person| = %zu, |Disease| = %zu, |Symptoms| = %zu\n\n",
              person.size(), disease.size(), symptoms.size());

  // Division: Person ÷ Symptoms — who has (at least) all listed symptoms?
  std::printf("Person ÷ Symptoms (people showing every listed symptom):\n");
  for (auto algorithm : setjoin::AllDivisionAlgorithms()) {
    const core::Relation result = setjoin::Divide(person, symptoms, algorithm);
    std::printf("  %-14s ->", setjoin::DivisionAlgorithmToString(algorithm));
    for (std::size_t i = 0; i < result.size(); ++i) {
      std::printf(" %s", example.names.Name(result.tuple(i)[0]).c_str());
    }
    std::printf("\n");
  }

  // Set-containment join: which person's symptoms cover which disease?
  std::printf("\nPerson ⋈{Symptom ⊇ Symptom} Disease (possible diagnoses):\n");
  const core::Relation join = setjoin::SetContainmentJoin(
      person, disease, setjoin::ContainmentAlgorithm::kInvertedIndex);
  for (std::size_t i = 0; i < join.size(); ++i) {
    std::printf("  (%s, %s)\n", example.names.Name(join.tuple(i)[0]).c_str(),
                example.names.Name(join.tuple(i)[1]).c_str());
  }

  // The complexity story in one line: the classic RA expression for the
  // division above must materialize a quadratic intermediate (Prop. 26).
  ra::EvalStats stats;
  setjoin::Divide(person, symptoms, setjoin::DivisionAlgorithm::kClassicRa, &stats);
  std::printf("\nClassic RA division materialized a max intermediate of %zu "
              "tuples on a database of %zu tuples.\n",
              stats.max_intermediate, example.db.size());
  return 0;
}
