// Quickstart: the paper's Fig. 1 — relational division and set-containment
// join on the medical example, through the public API.
//
//   build/examples/quickstart
#include <cstdio>

#include "engine/engine.h"
#include "setjoin/division.h"
#include "setjoin/setjoin.h"
#include "witness/figures.h"

int main() {
  using namespace setalg;

  const witness::MedicalExample example = witness::MakeMedicalExample();
  const core::Relation& person = example.db.relation("Person");
  const core::Relation& disease = example.db.relation("Disease");
  const core::Relation& symptoms = example.db.relation("Symptoms");

  std::printf("Fig. 1 — the medical database\n");
  std::printf("  |Person| = %zu, |Disease| = %zu, |Symptoms| = %zu\n\n",
              person.size(), disease.size(), symptoms.size());

  // Division: Person ÷ Symptoms — who has (at least) all listed symptoms?
  std::printf("Person ÷ Symptoms (people showing every listed symptom):\n");
  for (auto algorithm : setjoin::AllDivisionAlgorithms()) {
    const core::Relation result = setjoin::Divide(person, symptoms, algorithm);
    std::printf("  %-14s ->", setjoin::DivisionAlgorithmToString(algorithm));
    for (std::size_t i = 0; i < result.size(); ++i) {
      std::printf(" %s", example.names.Name(result.tuple(i)[0]).c_str());
    }
    std::printf("\n");
  }

  // Set-containment join: which person's symptoms cover which disease?
  std::printf("\nPerson ⋈{Symptom ⊇ Symptom} Disease (possible diagnoses):\n");
  const core::Relation join = setjoin::SetContainmentJoin(
      person, disease, setjoin::ContainmentAlgorithm::kInvertedIndex);
  for (std::size_t i = 0; i < join.size(); ++i) {
    std::printf("  (%s, %s)\n", example.names.Name(join.tuple(i)[0]).c_str(),
                example.names.Name(join.tuple(i)[1]).c_str());
  }

  // The complexity story in one line: the classic RA expression for the
  // division above must materialize a quadratic intermediate (Prop. 26).
  ra::EvalStats stats;
  setjoin::Divide(person, symptoms, setjoin::DivisionAlgorithm::kClassicRa, &stats);
  std::printf("\nClassic RA division materialized a max intermediate of %zu "
              "tuples on a database of %zu tuples.\n",
              stats.max_intermediate, example.db.size());

  // The engine facade: hand it the very same classic RA expression and the
  // planner recognizes the division pattern, routing it to hash-division.
  const ra::ExprPtr classic = setjoin::ClassicDivisionExpr("Person", "Symptoms");
  const engine::Engine engine;  // Default options: pattern-aware planner.
  auto explain = engine.Explain(classic, example.db.schema());
  auto planned = engine.Run(classic, example.db);
  if (explain.ok() && planned.ok()) {
    std::printf("\nengine::Engine plan for the same expression:\n%s",
                explain->c_str());
    std::printf("Engine max intermediate: %zu tuples (vs %zu for classic RA), "
                "same result:",
                planned->stats.max_intermediate, stats.max_intermediate);
    for (std::size_t i = 0; i < planned->relation.size(); ++i) {
      std::printf(" %s", example.names.Name(planned->relation.tuple(i)[0]).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
