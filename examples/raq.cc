// raq — a tiny query tool over CSV files, speaking both algebra text and
// the SQL subset.
//
//   build/examples/raq R=2:r.csv S=1:s.csv -- 'pi[1](join[2=1](R, S))'
//   build/examples/raq R=2:r.csv S=1:s.csv -- 'SELECT c1 FROM R WHERE c2 = 5'
//
// Each positional argument NAME=ARITY:PATH loads a CSV file (one tuple per
// line; non-integer fields are interned as strings). Statements after `--`
// are parsed against the loaded schema — SELECT-led statements through the
// SQL frontend (sql/analyzer.h), everything else through the RA/SA
// expression grammar — then planned and executed by engine::Engine, and the
// result is printed as CSV. With -v the physical plan, planner rewrites,
// cost-based algorithm choices (with their estimates), the AGM output bound
// of any collected join chain, and per-operator estimated-vs-actual
// intermediate sizes are reported too.
//
// Execution is selected by one --mode flag plus orthogonal knobs:
//   --mode reference   legacy 1:1 evaluation, no planner rewrites
//   --mode planned     rewrite-enabled planning (the default)
//   --mode cost        statistics-driven algorithm selection
//   --mode batched     pipelined batch execution
//   --mode parallel    batched + a worker pool for partitioned operators
// --threads N sizes the worker pool, --batch-size N sets the pipelined
// batch granularity (and implies the batch surface), and --multiway lets
// the planner collect equality-join chains and route them to the
// worst-case-optimal multiway operator when they beat the binary plan
// (the older --reference / --cost-based spellings are still accepted);
// --plan-cache [N] enables the engine's plan cache (N entries, default
// 64) and runs the expression twice — the second run is served from the
// cache, and -v reports the outcome (miss then hit) plus cache tallies,
// so the prepared-statement hot path is observable from the CLI.
//
// Concurrent serving: several statements may follow `--`, and
// --sessions N runs that query list from N threads against one shared
// engine and one snapshot of a txn::VersionedDatabase head, through the
// process-wide shared plan cache and result cache. Each session prints a
// digest line per query (FNV over the result's flat bytes) — sessions on
// one snapshot always print identical digests, which makes this the
// smoke entry point for the MVCC serving path.
//
// Client mode: --connect HOST:PORT skips the local engine entirely and
// sends every statement to a running setalgd (examples/setalgd.cc) as
// QUERY requests — one connection per session — printing the same
// per-session digest lines from the server's OK headers, so local and
// served runs diff directly.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/csv.h"
#include "core/database.h"
#include "engine/calibration.h"
#include "engine/engine.h"
#include "engine/result_cache.h"
#include "engine/shared_cache.h"
#include "ra/parse.h"
#include "server/client.h"
#include "server/protocol.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "txn/sharded.h"
#include "txn/snapshot.h"
#include "util/str.h"

int main(int argc, char** argv) {
  using namespace setalg;

  // Canonicalize the legacy flag spellings first, so one parse loop below
  // handles one spelling per option.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reference") {
      args.push_back("--mode");
      args.push_back("reference");
    } else if (arg == "--cost-based") {
      args.push_back("--mode");
      args.push_back("cost");
    } else {
      args.push_back(arg);
    }
  }

  std::vector<std::string> relation_specs;
  std::vector<std::string> expressions;
  bool verbose = false;
  std::string mode = "planned";
  std::string connect;
  bool multiway = false;
  bool calibrate = false;
  bool batched = false;
  bool threads_given = false;
  long long batch_size = static_cast<long long>(engine::kDefaultBatchSize);
  long long threads = 1;
  long long plan_cache_entries = 0;
  long long sessions = 0;
  long long shards = 1;
  bool after_separator = false;
  const std::size_t nargs = args.size();
  for (std::size_t i = 0; i < nargs; ++i) {
    const std::string& arg = args[i];
    if (arg == "--") {
      after_separator = true;
    } else if (arg == "-v") {
      verbose = true;
    } else if (arg == "--mode") {
      if (i + 1 >= nargs) {
        std::fprintf(stderr, "--mode needs one of "
                             "reference|planned|cost|batched|parallel\n");
        return 2;
      }
      mode = args[++i];
    } else if (arg == "--connect") {
      if (i + 1 >= nargs) {
        std::fprintf(stderr, "--connect needs HOST:PORT\n");
        return 2;
      }
      connect = args[++i];
    } else if (arg == "--multiway") {
      multiway = true;
    } else if (arg == "--calibrate") {
      calibrate = true;
    } else if (arg == "--plan-cache") {
      plan_cache_entries = 64;
      // Optional capacity operand (the next token, when numeric).
      if (i + 1 < nargs && util::ParseInt64(args[i + 1], &plan_cache_entries)) {
        if (plan_cache_entries < 1) {
          std::fprintf(stderr, "--plan-cache needs a positive entry count\n");
          return 2;
        }
        ++i;
      }
    } else if (arg == "--batch-size") {
      if (i + 1 >= nargs || !util::ParseInt64(args[i + 1], &batch_size) ||
          batch_size < 1) {
        std::fprintf(stderr, "--batch-size needs a positive integer\n");
        return 2;
      }
      batched = true;
      ++i;
    } else if (arg == "--threads") {
      if (i + 1 >= nargs || !util::ParseInt64(args[i + 1], &threads) || threads < 1) {
        std::fprintf(stderr, "--threads needs a positive integer\n");
        return 2;
      }
      threads_given = true;
      ++i;
    } else if (arg == "--sessions") {
      if (i + 1 >= nargs || !util::ParseInt64(args[i + 1], &sessions) || sessions < 1) {
        std::fprintf(stderr, "--sessions needs a positive integer\n");
        return 2;
      }
      ++i;
    } else if (arg == "--shards") {
      if (i + 1 >= nargs || !util::ParseInt64(args[i + 1], &shards) || shards < 1) {
        std::fprintf(stderr, "--shards needs a positive integer\n");
        return 2;
      }
      ++i;
    } else if (after_separator) {
      expressions.push_back(arg);
    } else {
      relation_specs.push_back(arg);
    }
  }
  if ((relation_specs.empty() && connect.empty()) || expressions.empty()) {
    std::fprintf(stderr,
                 "usage: raq NAME=ARITY:PATH [NAME=ARITY:PATH ...] [-v] "
                 "[--mode reference|planned|cost|batched|parallel] [--multiway] "
                 "[--calibrate] [--threads N] [--shards K] [--batch-size N] "
                 "[--plan-cache [N]] "
                 "[--sessions N] [--connect HOST:PORT] -- STMT [STMT ...]\n"
                 "example: raq R=2:r.csv S=1:s.csv -- 'pi[1](join[2=1](R, S))'\n");
    return 2;
  }

  if (!connect.empty()) {
    // Client mode: every statement goes to a running setalgd verbatim (the
    // server does the SQL-vs-RA dispatch); one connection per session.
    const auto colon = connect.rfind(':');
    long long port = 0;
    if (colon == std::string::npos ||
        !util::ParseInt64(connect.substr(colon + 1), &port) || port < 1 ||
        port > 65535) {
      std::fprintf(stderr, "--connect needs HOST:PORT, got '%s'\n", connect.c_str());
      return 2;
    }
    const std::string host = connect.substr(0, colon);
    const std::size_t n = sessions > 0 ? static_cast<std::size_t>(sessions) : 1;
    std::vector<std::vector<std::string>> reports(n);
    std::atomic<bool> failed{false};
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      workers.emplace_back([&, s] {
        auto client = server::Client::Connect(host, static_cast<int>(port));
        if (!client.ok()) {
          reports[s].push_back(util::StrCat("session ", s + 1, ": ", client.error()));
          failed.store(true);
          return;
        }
        for (std::size_t q = 0; q < expressions.size(); ++q) {
          auto response = client->Roundtrip(util::StrCat("QUERY ", expressions[q]));
          if (!response.ok()) {
            reports[s].push_back(util::StrCat("session ", s + 1, " Q", q + 1,
                                              ": transport error: ",
                                              response.error()));
            failed.store(true);
            return;
          }
          if (!response->header.ok) {
            reports[s].push_back(util::StrCat("session ", s + 1, " Q", q + 1,
                                              ": error: ", response->header.error));
            failed.store(true);
            return;
          }
          reports[s].push_back(util::StrCat(
              "session ", s + 1, " Q", q + 1, ": digest=", response->header.digest,
              " rows=", response->header.rows, " cache=", response->header.cache));
        }
        client->Close();
      });
    }
    for (auto& worker : workers) worker.join();
    for (const auto& session_lines : reports) {
      for (const auto& line : session_lines) std::printf("%s\n", line.c_str());
    }
    return failed.load() ? 1 : 0;
  }

  core::NameMap names;
  core::Schema schema;
  std::vector<std::pair<std::string, core::Relation>> loaded;
  for (const auto& spec : relation_specs) {
    const auto eq = spec.find('=');
    const auto colon = spec.find(':', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos || colon == std::string::npos) {
      std::fprintf(stderr, "bad relation spec '%s' (want NAME=ARITY:PATH)\n",
                   spec.c_str());
      return 2;
    }
    const std::string name = spec.substr(0, eq);
    long long arity = 0;
    if (!util::ParseInt64(spec.substr(eq + 1, colon - eq - 1), &arity) || arity < 0) {
      std::fprintf(stderr, "bad arity in '%s'\n", spec.c_str());
      return 2;
    }
    auto relation = core::ReadRelationCsvFile(spec.substr(colon + 1), &names);
    if (!relation.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", name.c_str(),
                   relation.error().c_str());
      return 1;
    }
    if (relation->arity() != static_cast<std::size_t>(arity)) {
      std::fprintf(stderr, "%s: declared arity %lld but file has %zu columns\n",
                   name.c_str(), arity, relation->arity());
      return 1;
    }
    schema.AddRelation(name, relation->arity());
    loaded.emplace_back(name, std::move(*relation));
  }

  core::Database db(schema);
  for (auto& [name, relation] : loaded) db.SetRelation(name, std::move(relation));

  std::vector<ra::ExprPtr> parsed_list;
  for (const auto& expression : expressions) {
    auto parsed = sql::LooksLikeSql(expression) ? sql::Compile(expression, schema)
                                                : ra::Parse(expression, schema);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error in '%s': %s\n", expression.c_str(),
                   parsed.error().c_str());
      return 1;
    }
    parsed_list.push_back(std::move(*parsed));
  }

  // One preset per --mode, with the orthogonal knobs composed on top.
  engine::EngineOptions options;
  if (mode == "reference") {
    options = engine::EngineOptions::Reference();
  } else if (mode == "planned") {
    options = engine::EngineOptions{};
  } else if (mode == "cost") {
    options = engine::EngineOptions::CostBased();
  } else if (mode == "batched") {
    options = engine::EngineOptions::Batched();
  } else if (mode == "parallel") {
    if (!threads_given) threads = 4;
    options = engine::EngineOptions::Parallel(static_cast<std::size_t>(threads));
  } else {
    std::fprintf(stderr, "unknown --mode '%s' (want "
                         "reference|planned|cost|batched|parallel)\n",
                 mode.c_str());
    return 2;
  }
  if (batched) options = options.WithBatchSize(static_cast<std::size_t>(batch_size));
  if (threads_given) options = options.WithThreads(static_cast<std::size_t>(threads));
  if (multiway) options = options.WithMultiway();
  // Statements run in order through one engine, so later statements plan
  // with whatever the earlier ones taught the store.
  if (calibrate) options = options.WithCalibration();
  options = options.WithPlanCache(static_cast<std::size_t>(plan_cache_entries));

  if (sessions > 0) {
    // Concurrent serving: N session threads share one engine and one
    // snapshot of a versioned head, through the process-wide caches. The
    // engine-local plan cache stays off (it is single-threaded).
    options.plan_cache_entries = 0;
    options.shared_plan_cache = std::make_shared<engine::SharedPlanCache>(256, 0);
    options.result_cache =
        std::make_shared<engine::ResultCache>(256, std::size_t{64} << 20);
    const engine::Engine engine(options);
    std::shared_ptr<txn::VersionedDatabase> head;
    if (shards > 1) {
      head = std::make_shared<txn::ShardedDatabase>(
          db, static_cast<std::size_t>(shards));
    } else {
      head = std::make_shared<txn::VersionedDatabase>(db);
    }
    const txn::SnapshotPtr snapshot = head->snapshot();

    const std::size_t n = static_cast<std::size_t>(sessions);
    std::vector<std::vector<std::string>> reports(n);
    std::atomic<bool> failed{false};
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      workers.emplace_back([&, s] {
        for (std::size_t q = 0; q < parsed_list.size(); ++q) {
          auto run = engine.Run(parsed_list[q], *snapshot);
          if (!run.ok()) {
            reports[s].push_back(util::StrCat("session ", s + 1, " Q", q + 1,
                                              ": error: ", run.error()));
            failed.store(true);
            return;
          }
          reports[s].push_back(util::StrCat(
              "session ", s + 1, " Q", q + 1, ": digest=",
              server::DigestToHex(server::RelationDigest(run->relation)),
              " rows=", run->relation.size(), " cache=",
              engine::CacheOutcomeToString(run->stats.cache)));
        }
      });
    }
    for (auto& worker : workers) worker.join();
    for (const auto& session_lines : reports) {
      for (const auto& line : session_lines) std::printf("%s\n", line.c_str());
    }
    if (verbose) {
      const auto plan_stats = options.shared_plan_cache->stats();
      const auto result_stats = options.result_cache->stats();
      std::fprintf(stderr,
                   "-- shared plan cache: %zu entr%s; %zu hit(s), %zu miss(es), "
                   "%zu revalidation(s), %zu repick(s)\n",
                   options.shared_plan_cache->size(),
                   options.shared_plan_cache->size() == 1 ? "y" : "ies",
                   plan_stats.hits, plan_stats.misses, plan_stats.revalidations,
                   plan_stats.repicks);
      std::fprintf(stderr,
                   "-- result cache: %zu entr%s, ~%zu bytes; %zu hit(s), "
                   "%zu miss(es), %zu invalidation(s)\n",
                   options.result_cache->size(),
                   options.result_cache->size() == 1 ? "y" : "ies",
                   options.result_cache->bytes(), result_stats.hits,
                   result_stats.misses, result_stats.invalidations);
    }
    return failed.load() ? 1 : 0;
  }

  const engine::Engine engine(options);
  // --shards K evaluates against a sharded head's snapshot: relations are
  // stored hash-routed on column 1 into K shards and the parallel
  // operators take the pre-partitioned fast path where aligned (the
  // results are bit-identical either way).
  std::shared_ptr<txn::VersionedDatabase> shard_head;
  txn::SnapshotPtr shard_snapshot;
  if (shards > 1) {
    shard_head = std::make_shared<txn::ShardedDatabase>(
        db, static_cast<std::size_t>(shards));
    shard_snapshot = shard_head->snapshot();
  }
  const core::DatabaseView& view =
      shard_snapshot != nullptr ? static_cast<const core::DatabaseView&>(*shard_snapshot)
                                : db;
  int exit_code = 0;
  for (const auto& parsed : parsed_list) {
    auto run = engine.Run(parsed, view);
    if (run.ok() && plan_cache_entries > 0) {
      // Second execution: served from the cache (a hit on the unchanged
      // database), so the CLI demonstrates the prepared hot path end to end.
      run = engine.Run(parsed, view);
    }
    if (!run.ok()) {
      std::fprintf(stderr, "eval error: %s\n", run.error().c_str());
      exit_code = 1;
      continue;
    }
    std::fputs(core::WriteRelationCsv(run->relation, &names).c_str(), stdout);
    if (verbose) {
      std::fprintf(stderr,
                   "-- %zu tuple(s); max intermediate %zu; operators "
                   "(actual / estimated):\n",
                   run->relation.size(), run->stats.max_intermediate);
      if (run->stats.has_agm_bound) {
        // The worst-case-optimal output bound of the collected join chain;
        // the routing itself (multiway vs binary) shows up in the
        // cost-based choice lines below as the "join-chain" site.
        std::fprintf(stderr, "-- AGM bound: %.0f row(s); max intermediate %s it\n",
                     run->stats.agm_bound,
                     static_cast<double>(run->stats.max_intermediate) <=
                             run->stats.agm_bound
                         ? "within"
                         : "exceeds");
      }
      if (batched) {
        std::fprintf(stderr,
                     "-- batched: %zu-tuple batches, %llu emitted, peak batch "
                     "%zu bytes\n",
                     run->stats.batch_size,
                     static_cast<unsigned long long>(run->stats.batches_emitted),
                     run->stats.peak_batch_bytes);
      }
      if (run->stats.threads_used > 1) {
        std::fprintf(stderr,
                     "-- parallel: %zu threads, %zu partition task(s), "
                     "%zu partition pass(es) skipped\n",
                     run->stats.threads_used, run->stats.partitions,
                     run->stats.partition_passes_skipped);
      }
      if (run->stats.cache != engine::CacheOutcome::kUncached) {
        // The engine-local cache may be absent when the outcome came from
        // the shared caches (e.g. result-hit) — never dereference it then.
        const auto* cache = engine.plan_cache();
        if (cache != nullptr) {
          std::fprintf(stderr,
                       "-- plan-cache: %s (%zu entr%s, ~%zu bytes; %zu hit(s), "
                       "%zu miss(es), %zu revalidation(s), %zu repick(s))\n",
                       engine::CacheOutcomeToString(run->stats.cache), cache->size(),
                       cache->size() == 1 ? "y" : "ies", cache->bytes(),
                       cache->stats().hits, cache->stats().misses,
                       cache->stats().revalidations, cache->stats().repicks);
        } else {
          std::fprintf(stderr, "-- cache: %s\n",
                       engine::CacheOutcomeToString(run->stats.cache));
        }
      }
      for (const auto& op : run->stats.ops) {
        if (op.has_estimate) {
          std::fprintf(stderr, "   %6zu  est=%-8.0f %s\n", op.output_size,
                       op.estimated_output, op.label.c_str());
        } else {
          std::fprintf(stderr, "   %6zu  %s\n", op.output_size, op.label.c_str());
        }
      }
      for (const auto& rewrite : run->stats.rewrites) {
        std::fprintf(stderr, "-- rewrite: %s\n", rewrite.c_str());
      }
      for (const auto& choice : run->stats.choices) {
        std::fprintf(stderr, "-- cost-based: %s → %s (est cost %.0f, est rows %.0f)\n",
                     choice.site.c_str(), choice.algorithm.c_str(),
                     choice.estimate.cost, choice.estimate.output_size);
      }
    }
  }
  if (verbose && options.calibration != nullptr) {
    std::fprintf(stderr, "-- %s\n", options.calibration->Summary().c_str());
  }
  return exit_code;
}
