// Dichotomy explorer: classify an RA expression as linear or quadratic by
// measurement (Theorem 17) and attempt the Theorem 18 rewrite to SA=.
//
//   build/examples/dichotomy_explorer                 # built-in catalog
//   build/examples/dichotomy_explorer 'join[2=1](R, S)'
//
// Expressions are parsed against the division schema {R/2, S/1} and
// measured on a scalable synthetic family.
#include <cstdio>
#include <string>
#include <vector>

#include "ra/growth.h"
#include "ra/parse.h"
#include "ra/rewrite.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

setalg::core::Database Family(std::size_t n) {
  using namespace setalg;
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  util::Rng rng(11);
  core::Relation r(2);
  for (std::size_t i = 0; i < n; ++i) {
    r.Add({static_cast<core::Value>(rng.NextBounded(n) + 1),
           static_cast<core::Value>(rng.NextBounded(n) + 1)});
  }
  db.SetRelation("R", std::move(r));
  core::Relation s(1);
  for (std::size_t i = 0; i < n / 4; ++i) {
    s.Add({static_cast<core::Value>(rng.NextBounded(n) + 1)});
  }
  db.SetRelation("S", std::move(s));
  return db;
}

void Explore(const std::string& text) {
  using namespace setalg;
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  auto parsed = ra::Parse(text, schema);
  if (!parsed.ok()) {
    std::printf("%-60s  PARSE ERROR: %s\n", text.c_str(), parsed.error().c_str());
    return;
  }
  const auto report =
      ra::MeasureGrowth(*parsed, Family, ra::GeometricSizes(400, 6400, 5));
  auto rewritten = ra::RewriteRaToSaEq(*parsed);
  std::printf("%-60s  exponent %.2f  -> %-9s  rewrite: %s\n", text.c_str(),
              report.exponent(), ra::GrowthClassToString(report.classification),
              rewritten.has_value() ? "SA= (certified linear)" : "failed");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Theorem 17 dichotomy, measured: max intermediate size ~ |D|^e\n");
  std::printf("%-60s  %s\n", "expression", "fitted exponent / class / Thm 18");
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) Explore(argv[i]);
    return 0;
  }
  const std::vector<std::string> catalog = {
      "R",
      "pi[1](R)",
      "sigma[1=2](R)",
      "join[2=1](R, S)",
      "pi[1,2](join[2=1](R, S))",
      "join[1=1;2=2](R, R)",
      "product(pi[1](R), S)",
      "join[1<1](pi[1](R), S)",
      "diff(pi[1](R), pi[1](diff(join[](pi[1](R), S), R)))",
  };
  for (const auto& text : catalog) Explore(text);
  std::printf("\nNote the gap: exponents land near 1 or near 2, never between\n"
              "(Theorem 17), and the Theorem 18 rewriter succeeds exactly on\n"
              "the linear ones here.\n");
  return 0;
}
