// setalgd — the query server over the engine's MVCC serving path.
//
//   build/examples/setalgd R=2:r.csv S=1:s.csv --port 7411
//
// Loads CSV relations exactly like raq (NAME=ARITY:PATH), seeds a
// txn::VersionedDatabase head from them, and serves the line protocol of
// server/protocol.h on 127.0.0.1 (--port 0, the default, picks a free
// port). Each connection is a session with its own engine and prepared-
// statement namespace; every statement — SQL (SELECT ...) or RA text
// ('pi[1](join[2=1](R, S))') — runs against a fresh snapshot through the
// process-wide shared plan and result caches. raq --connect host:port is
// the matching client.
//
// Prints "setalgd listening on 127.0.0.1:<port>" once ready (stdout,
// flushed — scripts wait for this line), then serves until SIGINT or
// SIGTERM, shuts down gracefully and exits 0.
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/csv.h"
#include "core/database.h"
#include "engine/engine.h"
#include "server/server.h"
#include "txn/sharded.h"
#include "txn/snapshot.h"
#include "util/str.h"

int main(int argc, char** argv) {
  using namespace setalg;

  std::vector<std::string> relation_specs;
  std::string mode = "planned";
  bool multiway = false;
  bool calibrate = false;
  long long threads = 1;
  bool threads_given = false;
  long long shards = 1;
  long long port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      if (i + 1 >= argc || !util::ParseInt64(argv[i + 1], &port) || port < 0 ||
          port > 65535) {
        std::fprintf(stderr, "--port needs a port number\n");
        return 2;
      }
      ++i;
    } else if (arg == "--mode") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--mode needs one of reference|planned|cost|batched|parallel\n");
        return 2;
      }
      mode = argv[++i];
    } else if (arg == "--multiway") {
      multiway = true;
    } else if (arg == "--calibrate") {
      calibrate = true;
    } else if (arg == "--threads") {
      if (i + 1 >= argc || !util::ParseInt64(argv[i + 1], &threads) || threads < 1) {
        std::fprintf(stderr, "--threads needs a positive integer\n");
        return 2;
      }
      threads_given = true;
      ++i;
    } else if (arg == "--shards") {
      if (i + 1 >= argc || !util::ParseInt64(argv[i + 1], &shards) || shards < 1) {
        std::fprintf(stderr, "--shards needs a positive integer\n");
        return 2;
      }
      ++i;
    } else {
      relation_specs.push_back(arg);
    }
  }
  if (relation_specs.empty()) {
    std::fprintf(stderr,
                 "usage: setalgd NAME=ARITY:PATH [NAME=ARITY:PATH ...] "
                 "[--port N] [--mode reference|planned|cost|batched|parallel] "
                 "[--multiway] [--threads N] [--shards K] [--calibrate]\n");
    return 2;
  }

  auto names = std::make_shared<core::NameMap>();
  core::Schema schema;
  std::vector<std::pair<std::string, core::Relation>> loaded;
  for (const auto& spec : relation_specs) {
    const auto eq = spec.find('=');
    const auto colon = spec.find(':', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos || colon == std::string::npos) {
      std::fprintf(stderr, "bad relation spec '%s' (want NAME=ARITY:PATH)\n",
                   spec.c_str());
      return 2;
    }
    const std::string name = spec.substr(0, eq);
    long long arity = 0;
    if (!util::ParseInt64(spec.substr(eq + 1, colon - eq - 1), &arity) || arity < 0) {
      std::fprintf(stderr, "bad arity in '%s'\n", spec.c_str());
      return 2;
    }
    auto relation = core::ReadRelationCsvFile(spec.substr(colon + 1), names.get());
    if (!relation.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", name.c_str(),
                   relation.error().c_str());
      return 1;
    }
    if (relation->arity() != static_cast<std::size_t>(arity)) {
      std::fprintf(stderr, "%s: declared arity %lld but file has %zu columns\n",
                   name.c_str(), arity, relation->arity());
      return 1;
    }
    schema.AddRelation(name, relation->arity());
    loaded.emplace_back(name, std::move(*relation));
  }

  engine::EngineOptions options;
  if (mode == "reference") {
    options = engine::EngineOptions::Reference();
  } else if (mode == "planned") {
    options = engine::EngineOptions{};
  } else if (mode == "cost") {
    options = engine::EngineOptions::CostBased();
  } else if (mode == "batched") {
    options = engine::EngineOptions::Batched();
  } else if (mode == "parallel") {
    if (!threads_given) threads = 4;
    options = engine::EngineOptions::Parallel(static_cast<std::size_t>(threads));
  } else {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 2;
  }
  if (threads_given) options = options.WithThreads(static_cast<std::size_t>(threads));
  if (multiway) options = options.WithMultiway();
  // One store for the whole process: every session the server spawns
  // shares it, so each session's traffic tunes the others' plans.
  if (calibrate) options = options.WithCalibration();

  core::Database db(schema);
  for (auto& [name, relation] : loaded) db.SetRelation(name, std::move(relation));
  // --shards K serves from a sharded head: every relation's rows are
  // hash-routed into K per-relation shards on column 1, and the parallel
  // operators skip their partition pass when their partitioning column
  // matches (see README "Sharded storage"). K=1 keeps the plain head.
  std::shared_ptr<txn::VersionedDatabase> head;
  if (shards > 1) {
    head = std::make_shared<txn::ShardedDatabase>(
        db, static_cast<std::size_t>(shards));
  } else {
    head = std::make_shared<txn::VersionedDatabase>(db);
  }

  // Block the termination signals before any thread spawns, so the accept
  // and session threads inherit the mask and sigwait below is the only
  // consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  server::Server server(head, options, names);
  auto bound = server.Start(static_cast<int>(port));
  if (!bound.ok()) {
    std::fprintf(stderr, "failed to start: %s\n", bound.error().c_str());
    return 1;
  }
  std::printf("setalgd listening on 127.0.0.1:%d\n", *bound);
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::fprintf(stderr, "setalgd: shutting down (signal %d)\n", signal_number);
  server.Stop();
  return 0;
}
