// Experiments E1–E3: regenerate Figures 1, 2 and 3 (with Example 12's
// bisimulation) exactly, then micro-benchmark the involved operations.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bisim/bisimulation.h"
#include "setjoin/division.h"
#include "setjoin/setjoin.h"
#include "witness/figures.h"

namespace {

using namespace setalg;

void PrintFigure1() {
  const auto example = witness::MakeMedicalExample();
  std::printf("== E1 / Fig. 1: set-containment join and division ==\n");
  const auto join = setjoin::SetContainmentJoin(
      example.db.relation("Person"), example.db.relation("Disease"),
      setjoin::ContainmentAlgorithm::kInvertedIndex);
  std::printf("Person >=-join Disease   (paper: (An,flu) (Bob,flu) (Bob,Lyme))\n ");
  for (std::size_t i = 0; i < join.size(); ++i) {
    std::printf(" (%s,%s)", example.names.Name(join.tuple(i)[0]).c_str(),
                example.names.Name(join.tuple(i)[1]).c_str());
  }
  const auto division =
      setjoin::Divide(example.db.relation("Person"), example.db.relation("Symptoms"),
                      setjoin::DivisionAlgorithm::kHashDivision);
  std::printf("\nPerson / Symptoms        (paper: An, Bob)\n ");
  for (std::size_t i = 0; i < division.size(); ++i) {
    std::printf(" %s", example.names.Name(division.tuple(i)[0]).c_str());
  }
  std::printf("\n\n");
}

void PrintFigure2() {
  const auto db = witness::MakeFig2Database();
  std::printf("== E2 / Fig. 2 + Example 5: C-stored tuples, C = {a} ==\n");
  struct Case {
    const char* text;
    core::Tuple tuple;
    bool expected;
  } cases[] = {
      {"(b,c)", {2, 3}, true},
      {"(a,f)", {1, 6}, true},
      {"(e,c)", {5, 3}, false},
      {"(g)", {7}, false},
  };
  for (const auto& c : cases) {
    const bool stored = db.IsCStored(c.tuple, {1});
    std::printf("  %-6s C-stored: %-5s (paper: %s)\n", c.text,
                stored ? "yes" : "no", c.expected ? "yes" : "no");
  }
  std::printf("\n");
}

void PrintFigure3() {
  const auto a = witness::MakeFig3A();
  const auto b = witness::MakeFig3B();
  std::printf("== E3 / Fig. 3 + Example 12: guarded bisimulation ==\n");
  const auto explicit_set = witness::MakeFig3Bisimulation();
  const auto error = bisim::VerifyBisimulation(explicit_set, a, b, {});
  std::printf("  explicit set of %zu partial isos: %s\n", explicit_set.size(),
              error.empty() ? "VALID (matches the paper)" : error.c_str());
  bisim::BisimulationChecker checker(&a, &b, {});
  std::printf("  fixpoint checker: A,(1,2) ~ B,(6,7): %s; candidates %zu -> %zu\n\n",
              checker.AreBisimilar(core::Tuple{1, 2}, core::Tuple{6, 7}) ? "yes"
                                                                         : "no",
              checker.initial_candidates(), checker.surviving_candidates());
}

void BM_Fig1Division(benchmark::State& state) {
  const auto example = witness::MakeMedicalExample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(setjoin::Divide(example.db.relation("Person"),
                                             example.db.relation("Symptoms"),
                                             setjoin::DivisionAlgorithm::kHashDivision));
  }
}
BENCHMARK(BM_Fig1Division);

void BM_Fig3BisimulationChecker(benchmark::State& state) {
  const auto a = witness::MakeFig3A();
  const auto b = witness::MakeFig3B();
  for (auto _ : state) {
    bisim::BisimulationChecker checker(&a, &b, {});
    benchmark::DoNotOptimize(checker.surviving_candidates());
  }
}
BENCHMARK(BM_Fig3BisimulationChecker);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure1();
  PrintFigure2();
  PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
