// Experiments E5/E6: the Theorem 17 dichotomy and the Theorem 18
// linear-iff-SA= correspondence, measured on a catalog of RA expressions.
// For each expression we sweep database sizes, record the maximum
// intermediate-result cardinality (Definition 16's c(E')), fit the growth
// exponent, and report whether the constructive rewriter certifies it.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ra/eval.h"
#include "ra/growth.h"
#include "ra/parse.h"
#include "ra/rewrite.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

using namespace setalg;

core::Schema DivisionSchema() {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  return schema;
}

core::Database Family(std::size_t n) {
  core::Database db(DivisionSchema());
  util::Rng rng(11);
  core::Relation r(2);
  for (std::size_t i = 0; i < n; ++i) {
    r.Add({static_cast<core::Value>(rng.NextBounded(n) + 1),
           static_cast<core::Value>(rng.NextBounded(n) + 1)});
  }
  db.SetRelation("R", std::move(r));
  core::Relation s(1);
  for (std::size_t i = 0; i < n / 4; ++i) {
    s.Add({static_cast<core::Value>(rng.NextBounded(n) + 1)});
  }
  db.SetRelation("S", std::move(s));
  return db;
}

struct Entry {
  const char* name;
  const char* text;
};

constexpr Entry kLinear[] = {
    {"relation", "R"},
    {"projection", "pi[1](R)"},
    {"selection", "sigma[1=2](R)"},
    {"equijoin-constrained", "join[2=1](R, S)"},
    {"semijoin-embedding", "pi[1,2](join[2=1](R, S))"},
    {"double-equijoin", "join[1=1;2=2](R, R)"},
};

constexpr Entry kQuadratic[] = {
    {"product", "product(pi[1](R), S)"},
    {"order-join", "join[1<1](pi[1](R), S)"},
    {"neq-join", "join[1!=1](pi[1](R), S)"},
    {"classic-division", "diff(pi[1](R), pi[1](diff(join[](pi[1](R), S), R)))"},
};

void PrintDichotomyTable() {
  const auto schema = DivisionSchema();
  const auto sizes = ra::GeometricSizes(500, 8000, 5);
  std::printf("== E5/E6: Theorem 17 dichotomy & Theorem 18 rewrites ==\n");
  std::printf("%-22s", "expression");
  for (std::size_t n : sizes) std::printf("  c(E')@%-5zu", n);
  std::printf("  exponent  class      Thm18-rewrite\n");
  auto row = [&](const Entry& entry) {
    auto expr = ra::Parse(entry.text, schema);
    std::printf("%-22s", entry.name);
    const auto report = ra::MeasureGrowth(*expr, Family, sizes);
    for (const auto& sample : report.samples) {
      std::printf("  %-11zu", sample.max_intermediate);
    }
    auto rewrite = ra::RewriteRaToSaEq(*expr);
    std::printf("  %-8.2f  %-9s  %s\n", report.exponent(),
                ra::GrowthClassToString(report.classification),
                rewrite.has_value() ? "SA=" : "none");
  };
  for (const auto& entry : kLinear) row(entry);
  for (const auto& entry : kQuadratic) row(entry);
  std::printf("(expected shape: exponents cluster at ~1 and ~2 — nothing in\n"
              " between — and rewrites succeed exactly on the linear rows)\n\n");
}

void BM_EvalExpression(benchmark::State& state, const char* text) {
  const auto schema = DivisionSchema();
  auto expr = ra::Parse(text, schema);
  const auto db = Family(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ra::EvalStats stats;
    benchmark::DoNotOptimize(ra::Eval(*expr, db, &stats));
    state.counters["max_intermediate"] =
        static_cast<double>(stats.max_intermediate);
  }
}
BENCHMARK_CAPTURE(BM_EvalExpression, linear_semijoin_embedding,
                  "pi[1,2](join[2=1](R, S))")
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EvalExpression, quadratic_classic_division,
                  "diff(pi[1](R), pi[1](diff(join[](pi[1](R), S), R)))")
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_RewriteRaToSaEq(benchmark::State& state) {
  const auto schema = DivisionSchema();
  auto expr = ra::Parse("pi[1,2](join[2=1](R, S))", schema);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ra::RewriteRaToSaEq(*expr));
  }
}
BENCHMARK(BM_RewriteRaToSaEq);

}  // namespace

int main(int argc, char** argv) {
  PrintDichotomyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
