// Experiments E10/E12: set-containment join algorithms (no sub-quadratic
// algorithm is known — all four stay superlinear, the heuristics win by
// constants) and the O(n log n + output) set-equality join.
//
// Also benches the worst-case-optimal multiway join on a skewed triangle
// query where the binary plan's intermediate blows past the AGM bound:
// binary vs multiway runtimes plus the recorded max intermediates and the
// AGM bound itself, so the regression gate can assert the bound holds.
//
// Emits BENCH_setjoin.json with the measured tables so the perf
// trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/calibration.h"
#include "engine/cost.h"
#include "engine/engine.h"
#include "ra/expr.h"
#include "setjoin/setjoin.h"
#include "stats/stats.h"
#include "txn/sharded.h"
#include "txn/snapshot.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/generators.h"

// Injected by CMake from `git rev-parse --short HEAD` at configure time.
#ifndef SETALG_GIT_SHA
#define SETALG_GIT_SHA "unknown"
#endif

namespace {

using namespace setalg;

// Best-of-`reps` wall time (see bench_division.cc: the CI regression gate
// compares table cells across runs, and the min of a few repeats is far
// less noisy than one shot).
template <typename Fn>
double BestOfMillis(Fn&& fn, int reps = 3) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    util::WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

// The cost model consumes relation statistics; the set-join operators are
// hand-built (no logical pattern), so the bench invokes the model directly
// the way a caller assembling a physical plan would.
engine::ExprEstimate EstimateOf(const core::Relation& relation) {
  return engine::FromStats(stats::ComputeRelationStats(relation));
}

// Worker-pool width of the `parallel` columns (see bench_division.cc:
// hardware width clamped to [2, 4]; the JSON's hardware_threads field
// tells the regression gate whether the comparison is meaningful).
std::size_t ParallelThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(2u, std::min(4u, hw == 0 ? 2u : hw));
}

// Best-of-3 wall time of a hand-built set-join plan executed through the
// pipelined batch surface (batched/parallel columns; the engine run
// includes the scans and grouping the kernel-direct cells do outside the
// timer). `stats_out`, when non-null, receives the last run's stats.
double EnginePlanMillis(const core::DatabaseView& db, engine::PhysicalOpPtr root,
                        const char* what, const engine::EngineOptions& options,
                        engine::PlanStats* stats_out = nullptr) {
  engine::PhysicalPlan plan;
  plan.root = std::move(root);
  const engine::Engine engine(options);
  return BestOfMillis([&] {
    auto result = engine.Run(plan, db);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) {
      std::fprintf(stderr, "%s engine run failed: %s\n", what,
                   result.error().c_str());
      std::exit(1);  // The tracked artifact must never hide a failure.
    }
    if (stats_out != nullptr) *stats_out = std::move(result->stats);
  });
}

// Best-of-3 wall time of the same plan through a prepared-statement
// handle (Engine::Prepare over the hand-built plan, then Run(handle)):
// the prepared hot path with per-run version-vector revalidation.
double PreparedPlanMillis(const core::Database& db, engine::PhysicalOpPtr root,
                          const char* what, const engine::EngineOptions& options) {
  engine::PhysicalPlan plan;
  plan.root = std::move(root);
  const engine::Engine engine(options);
  auto handle = engine.Prepare(std::move(plan), db);
  if (!handle.ok()) {
    std::fprintf(stderr, "%s prepare failed: %s\n", what, handle.error().c_str());
    std::exit(1);  // The tracked artifact must never hide a failure.
  }
  return BestOfMillis([&] {
    auto result = engine.Run(*handle, db);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) {
      std::fprintf(stderr, "%s prepared run failed: %s\n", what,
                   result.error().c_str());
      std::exit(1);
    }
  });
}

workload::SetJoinInstance Instance(std::size_t groups, std::size_t set_size,
                                   double containment, std::uint64_t seed = 23) {
  workload::SetJoinConfig config;
  config.r_groups = groups;
  config.s_groups = groups;
  config.r_group_size = set_size;
  config.s_group_size = std::max<std::size_t>(2, set_size / 2);
  config.domain_size = std::max<std::size_t>(32, groups / 2);
  config.containment_fraction = containment;
  config.seed = seed;
  return workload::MakeSetJoinInstance(config);
}

struct ContainmentRow {
  std::size_t groups = 0;
  std::vector<std::pair<std::string, double>> cells;  // algorithm -> ms
  std::size_t matches = 0;
  std::string chosen;  // Algorithm the cost model picked.
  double chosen_ms = 0.0;
  double batched_ms = 0.0;   // Engine plan through the batch surface.
  double parallel_ms = 0.0;  // Same plan with a worker pool.
  double sharded_ms = 0.0;   // Parallel plan over a pre-sharded snapshot.
  double prepared_ms = 0.0;  // Same plan through a prepared handle.
  std::size_t threads = 0;
  std::size_t partitions = 0;
  // Partition passes the sharded run skipped; the regression gate
  // requires > 0 (the aligned scan must feed shards straight to workers).
  std::size_t sharded_skipped_passes = 0;
};

struct EqualityRow {
  std::size_t groups = 0;
  double nested_ms = 0.0;
  double hash_ms = 0.0;
  std::size_t matches = 0;
  std::string chosen;  // Algorithm the cost model picked.
  double chosen_ms = 0.0;
  double batched_ms = 0.0;   // Engine plan through the batch surface.
  double parallel_ms = 0.0;  // Same plan with a worker pool.
  double prepared_ms = 0.0;  // Same plan through a prepared handle.
  std::size_t threads = 0;
  std::size_t partitions = 0;
};

std::vector<ContainmentRow> PrintContainmentTable() {
  std::vector<ContainmentRow> rows;
  std::printf("== E10: set-containment join runtimes (ms), sets of ~8 ==\n");
  std::printf("%-8s", "groups");
  for (auto algorithm : setjoin::AllContainmentAlgorithms()) {
    std::printf("  %-22s", setjoin::ContainmentAlgorithmToString(algorithm));
  }
  std::printf("  %-22s  %-22s  %-22s  %-22s  %-22s  matches\n", "cost-based",
              "batched", "parallel", "sharded", "prepared");
  for (std::size_t groups : {250u, 500u, 1000u, 2000u}) {
    const auto instance = Instance(groups, 8, 0.05);
    const auto db = workload::SetJoinDatabase(instance);
    const auto r = setjoin::AsGrouped(instance.r);
    const auto s = setjoin::AsGrouped(instance.s);
    std::printf("%-8zu", groups);
    ContainmentRow row;
    row.groups = groups;
    for (auto algorithm : setjoin::AllContainmentAlgorithms()) {
      const double ms = BestOfMillis([&] {
        const auto result = setjoin::SetContainmentJoin(r, s, algorithm);
        benchmark::DoNotOptimize(result);
        row.matches = result.size();
      });
      std::printf("  %-22.3f", ms);
      row.cells.emplace_back(setjoin::ContainmentAlgorithmToString(algorithm), ms);
    }
    {
      const auto choice = engine::CostModel(nullptr).ChooseContainment(
          EstimateOf(instance.r), EstimateOf(instance.s));
      row.chosen = setjoin::ContainmentAlgorithmToString(choice.algorithm);
      row.chosen_ms = BestOfMillis([&] {
        benchmark::DoNotOptimize(setjoin::SetContainmentJoin(r, s, choice.algorithm));
      });
      std::printf("  %-22.3f", row.chosen_ms);
    }
    auto make_root = [] {
      return engine::MakeSetContainmentJoin(
          engine::MakeScan("R", 2), engine::MakeScan("S", 2),
          setjoin::ContainmentAlgorithm::kInvertedIndex);
    };
    row.batched_ms = EnginePlanMillis(db, make_root(), "containment",
                                      engine::EngineOptions::Batched());
    std::printf("  %-22.3f", row.batched_ms);
    engine::PlanStats parallel_stats;
    row.parallel_ms =
        EnginePlanMillis(db, make_root(), "containment-parallel",
                         engine::EngineOptions::Parallel(ParallelThreads()),
                         &parallel_stats);
    row.threads = parallel_stats.threads_used;
    row.partitions = parallel_stats.partitions;
    std::printf("  %-22.3f", row.parallel_ms);
    // The same parallel plan over a snapshot whose relations are already
    // sharded on the partitioning column: the executor must feed shards
    // straight to workers and record the skipped partition pass.
    {
      txn::ShardedDatabase sharded(db, ParallelThreads());
      const txn::SnapshotPtr snapshot = sharded.snapshot();
      engine::PlanStats sharded_stats;
      row.sharded_ms =
          EnginePlanMillis(*snapshot, make_root(), "containment-sharded",
                           engine::EngineOptions::Parallel(ParallelThreads()),
                           &sharded_stats);
      row.sharded_skipped_passes = sharded_stats.partition_passes_skipped;
    }
    std::printf("  %-22.3f", row.sharded_ms);
    row.prepared_ms = PreparedPlanMillis(db, make_root(), "containment-prepared",
                                         engine::EngineOptions::Batched());
    std::printf("  %-22.3f", row.prepared_ms);
    std::printf("  %zu\n", row.matches);
    rows.push_back(std::move(row));
  }
  std::printf("(expected shape: signatures/partitioning/inverted index beat the\n"
              " plain nested loop by constants, but every curve bends\n"
              " superlinearly — consistent with no known sub-quadratic\n"
              " algorithm for containment joins)\n\n");
  return rows;
}

std::vector<EqualityRow> PrintEqualityTable() {
  std::vector<EqualityRow> rows;
  std::printf("== E12: set-equality join, canonical hash vs nested loop (ms) ==\n");
  std::printf("%-8s  %-14s  %-14s  %-14s  %-14s  %-14s  %-14s  %-8s\n", "groups",
              "nested-loop", "canonical-hash", "cost-based", "batched", "parallel",
              "prepared", "matches");
  for (std::size_t groups : {250u, 500u, 1000u, 2000u, 4000u}) {
    workload::SetJoinConfig config;
    config.r_groups = groups;
    config.s_groups = groups;
    config.r_group_size = 4;
    config.s_group_size = 4;
    config.domain_size = 12;  // Small domain: equal sets occur.
    config.seed = 29;
    const auto instance = workload::MakeSetJoinInstance(config);
    const auto r = setjoin::AsGrouped(instance.r);
    const auto s = setjoin::AsGrouped(instance.s);
    EqualityRow row;
    row.groups = groups;
    row.nested_ms = BestOfMillis([&] {
      benchmark::DoNotOptimize(
          setjoin::SetEqualityJoin(r, s, setjoin::EqualityJoinAlgorithm::kNestedLoop));
    });
    row.hash_ms = BestOfMillis([&] {
      const auto fast = setjoin::SetEqualityJoin(
          r, s, setjoin::EqualityJoinAlgorithm::kCanonicalHash);
      benchmark::DoNotOptimize(fast);
      row.matches = fast.size();
    });
    const auto choice = engine::CostModel(nullptr).ChooseSetEquality(
        EstimateOf(instance.r), EstimateOf(instance.s));
    row.chosen = setjoin::EqualityJoinAlgorithmToString(choice.algorithm);
    row.chosen_ms = BestOfMillis([&] {
      benchmark::DoNotOptimize(setjoin::SetEqualityJoin(r, s, choice.algorithm));
    });
    const auto db = workload::SetJoinDatabase(instance);
    auto make_root = [] {
      return engine::MakeSetEqualityJoin(
          engine::MakeScan("R", 2), engine::MakeScan("S", 2),
          setjoin::EqualityJoinAlgorithm::kCanonicalHash);
    };
    row.batched_ms = EnginePlanMillis(db, make_root(), "equality",
                                      engine::EngineOptions::Batched());
    engine::PlanStats parallel_stats;
    row.parallel_ms =
        EnginePlanMillis(db, make_root(), "equality-parallel",
                         engine::EngineOptions::Parallel(ParallelThreads()),
                         &parallel_stats);
    row.threads = parallel_stats.threads_used;
    row.partitions = parallel_stats.partitions;
    row.prepared_ms = PreparedPlanMillis(db, make_root(), "equality-prepared",
                                         engine::EngineOptions::Batched());
    std::printf("%-8zu  %-14.3f  %-14.3f  %-14.3f  %-14.3f  %-14.3f  %-14.3f  "
                "%-8zu\n",
                groups, row.nested_ms, row.hash_ms, row.chosen_ms, row.batched_ms,
                row.parallel_ms, row.prepared_ms, row.matches);
    rows.push_back(std::move(row));
  }
  std::printf("(expected shape: canonical hashing is ~n log n + output — the\n"
              " paper's footnote 1 — while the baseline is quadratic)\n\n");
  return rows;
}

struct CalibratedRow {
  std::size_t groups = 0;
  std::string uncalibrated_choice;
  std::string calibrated_choice;
  double uncalibrated_ms = 0.0;
  double calibrated_ms = 0.0;
  std::size_t matches = 0;
};

// Containment join on a zipf-skewed element domain: heavy elements make
// the inverted index's postings long, which the uniform nr/domain posting
// estimate cannot see. The calibrated model prices postings from the
// element histogram's expected frequency and picks a different kernel —
// the regression gate asserts calibrated <= uncalibrated.
std::vector<CalibratedRow> PrintCalibratedTable() {
  std::vector<CalibratedRow> rows;
  std::printf("== self-tuning: containment kernel choice under zipf skew (ms) ==\n");
  std::printf("%-8s  %-24s  %-24s  %-16s  %-16s  matches\n", "groups",
              "uncalibrated-choice", "calibrated-choice", "uncalibrated",
              "calibrated");
  for (std::size_t groups : {1000u, 2000u}) {
    workload::SetJoinConfig config;
    config.r_groups = groups;
    config.s_groups = groups;
    config.r_group_size = 24;
    config.s_group_size = 4;
    config.domain_size = 4000;
    config.containment_fraction = 0.05;
    config.zipf_skew = 1.5;
    config.seed = 41;
    const auto instance = workload::MakeSetJoinInstance(config);
    const auto r = setjoin::AsGrouped(instance.r);
    const auto s = setjoin::AsGrouped(instance.s);
    const auto r_est = EstimateOf(instance.r);
    const auto s_est = EstimateOf(instance.s);

    CalibratedRow row;
    row.groups = groups;
    const auto uncalibrated =
        engine::CostModel(nullptr).ChooseContainment(r_est, s_est);
    engine::CalibrationStore store;  // Cold: histograms alone do the work.
    const auto calibrated =
        engine::CostModel(nullptr, &store).ChooseContainment(r_est, s_est);
    row.uncalibrated_choice =
        setjoin::ContainmentAlgorithmToString(uncalibrated.algorithm);
    row.calibrated_choice =
        setjoin::ContainmentAlgorithmToString(calibrated.algorithm);
    row.uncalibrated_ms = BestOfMillis([&] {
      const auto result =
          setjoin::SetContainmentJoin(r, s, uncalibrated.algorithm);
      benchmark::DoNotOptimize(result);
      row.matches = result.size();
    });
    row.calibrated_ms = BestOfMillis([&] {
      benchmark::DoNotOptimize(
          setjoin::SetContainmentJoin(r, s, calibrated.algorithm));
    });
    std::printf("%-8zu  %-24s  %-24s  %-16.3f  %-16.3f  %zu\n", groups,
                row.uncalibrated_choice.c_str(), row.calibrated_choice.c_str(),
                row.uncalibrated_ms, row.calibrated_ms, row.matches);
    rows.push_back(std::move(row));
  }
  std::printf("(expected shape: the uniform model picks the inverted index,\n"
              " whose postings the skew makes long; the histogram-aware model\n"
              " picks a kernel that ignores posting lengths and runs faster)\n\n");
  return rows;
}

struct MultiwayRow {
  std::size_t n = 0;
  std::size_t d = 0;            // Middle-domain width of the skew.
  double binary_ms = 0.0;       // Planned binary hash-join chain.
  double multiway_ms = 0.0;     // Same query routed to the multiway operator.
  double agm_bound = 0.0;       // AGM bound recorded by the planner.
  std::size_t binary_max_intermediate = 0;
  std::size_t multiway_max_intermediate = 0;
  std::string chosen;           // join-chain routing label ("multiway[3]").
  std::size_t matches = 0;
};

// The triangle chain R(a,b) ⋈ S(b,c) ⋈ T(c,a), written the binary way —
// the planner collects the chain and routes it itself.
ra::ExprPtr TriangleChainExpr() {
  return ra::Join(
      ra::Join(ra::Rel("R", 2), ra::Rel("S", 2), {{2, ra::Cmp::kEq, 1}}),
      ra::Rel("T", 2), {{4, ra::Cmp::kEq, 1}, {1, ra::Cmp::kEq, 2}});
}

// Skewed triangle data (mirrors tests/batch_exec_test.cc): R = X×Y and
// S = Y×Z are complete bipartite through a d-element middle domain Y, so
// the binary R⋈S intermediate is n²/d tuples — far past the AGM bound
// n^1.5 — while T is n random (c, a) pairs keeping the output sparse.
// Disjoint value ranges per variable keep estimator distinct counts exact.
core::Database TriangleDatabase(std::size_t n, std::size_t d,
                                std::uint64_t seed = 37) {
  const std::size_t side = n / d;
  core::Relation r(2), s(2), t(2);
  for (std::size_t x = 0; x < side; ++x) {
    for (std::size_t y = 0; y < d; ++y) {
      r.Add({static_cast<core::Value>(1 + x),
             static_cast<core::Value>(1000001 + y)});
    }
  }
  for (std::size_t y = 0; y < d; ++y) {
    for (std::size_t z = 0; z < side; ++z) {
      s.Add({static_cast<core::Value>(1000001 + y),
             static_cast<core::Value>(2000001 + z)});
    }
  }
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.Add({static_cast<core::Value>(2000001 + rng.NextBounded(side)),
           static_cast<core::Value>(1 + rng.NextBounded(side))});
  }
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  db.SetRelation("R", std::move(r));
  db.SetRelation("S", std::move(s));
  db.SetRelation("T", std::move(t));
  return db;
}

// Best-of-3 wall time of a fully planned query (choice points, AGM bound
// and all — unlike EnginePlanMillis, which executes a hand-built root).
double PlannedQueryMillis(const engine::Engine& engine,
                          const engine::PhysicalPlan& plan,
                          const core::Database& db, const char* what,
                          engine::PlanStats* stats_out,
                          std::size_t* matches_out) {
  return BestOfMillis([&] {
    auto result = engine.Run(plan, db);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) {
      std::fprintf(stderr, "%s engine run failed: %s\n", what,
                   result.error().c_str());
      std::exit(1);  // The tracked artifact must never hide a failure.
    }
    if (matches_out != nullptr) *matches_out = result->relation.size();
    if (stats_out != nullptr) *stats_out = std::move(result->stats);
  });
}

std::vector<MultiwayRow> PrintMultiwayTable() {
  std::vector<MultiwayRow> rows;
  std::printf("== worst-case-optimal triangle: binary chain vs multiway (ms) ==\n");
  std::printf("%-8s  %-4s  %-12s  %-12s  %-12s  %-14s  %-14s  %-14s  matches\n",
              "n", "d", "binary", "multiway", "chosen", "agm-bound",
              "binary-maxint", "multiway-maxint");
  const auto expr = TriangleChainExpr();
  for (const auto& [n, d] : {std::pair<std::size_t, std::size_t>{2000, 10},
                             std::pair<std::size_t, std::size_t>{16000, 32}}) {
    const auto db = TriangleDatabase(n, d);
    MultiwayRow row;
    row.n = n;
    row.d = d;

    const engine::Engine binary(engine::EngineOptions::CostBased());
    auto binary_plan = binary.Plan(expr, db);
    if (!binary_plan.ok()) {
      std::fprintf(stderr, "binary triangle plan failed: %s\n",
                   binary_plan.error().c_str());
      std::exit(1);
    }
    engine::PlanStats binary_stats;
    row.binary_ms = PlannedQueryMillis(binary, *binary_plan, db,
                                       "binary-triangle", &binary_stats,
                                       &row.matches);
    row.binary_max_intermediate = binary_stats.max_intermediate;

    const engine::Engine multiway(
        engine::EngineOptions::CostBased().WithMultiway());
    auto multiway_plan = multiway.Plan(expr, db);
    if (!multiway_plan.ok()) {
      std::fprintf(stderr, "multiway triangle plan failed: %s\n",
                   multiway_plan.error().c_str());
      std::exit(1);
    }
    for (const auto& choice : multiway_plan->choices) {
      if (choice.site == "join-chain") row.chosen = choice.algorithm;
    }
    engine::PlanStats multiway_stats;
    row.multiway_ms = PlannedQueryMillis(multiway, *multiway_plan, db,
                                         "multiway-triangle", &multiway_stats,
                                         nullptr);
    row.multiway_max_intermediate = multiway_stats.max_intermediate;
    row.agm_bound =
        multiway_stats.has_agm_bound ? multiway_stats.agm_bound : 0.0;

    std::printf("%-8zu  %-4zu  %-12.3f  %-12.3f  %-12s  %-14.0f  %-14zu  "
                "%-14zu  %zu\n",
                row.n, row.d, row.binary_ms, row.multiway_ms,
                row.chosen.c_str(), row.agm_bound, row.binary_max_intermediate,
                row.multiway_max_intermediate, row.matches);
    rows.push_back(std::move(row));
  }
  std::printf("(expected shape: the binary chain materializes the n²/d\n"
              " bipartite intermediate, past the AGM bound n^1.5; the\n"
              " multiway generic join stays under the bound and the cost\n"
              " model routes the chain to it at every listed size)\n\n");
  return rows;
}

void WriteJson(const std::vector<ContainmentRow>& containment,
               const std::vector<EqualityRow>& equality,
               const std::vector<MultiwayRow>& multiway,
               const std::vector<CalibratedRow>& calibrated) {
  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("setjoin");
  json.Key("hardware_threads")
      .Value(static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.Key("git_sha").Value(SETALG_GIT_SHA);
  json.Key("containment_ms").BeginArray();
  for (const auto& row : containment) {
    json.BeginObject();
    json.Key("groups").Value(row.groups);
    for (const auto& [name, ms] : row.cells) json.Key(name).Value(ms);
    json.Key("cost-based").Value(row.chosen_ms);
    json.Key("batched").Value(row.batched_ms);
    json.Key("parallel").Value(row.parallel_ms);
    json.Key("sharded").Value(row.sharded_ms);
    json.Key("sharded_skipped_passes").Value(row.sharded_skipped_passes);
    json.Key("prepared").Value(row.prepared_ms);
    json.Key("chosen_containment").Value(row.chosen);
    json.Key("threads").Value(row.threads);
    json.Key("partitions").Value(row.partitions);
    json.Key("matches").Value(row.matches);
    json.EndObject();
  }
  json.EndArray();
  json.Key("equality_ms").BeginArray();
  for (const auto& row : equality) {
    json.BeginObject();
    json.Key("groups").Value(row.groups);
    json.Key("nested-loop").Value(row.nested_ms);
    json.Key("canonical-hash").Value(row.hash_ms);
    json.Key("cost-based").Value(row.chosen_ms);
    json.Key("batched").Value(row.batched_ms);
    json.Key("parallel").Value(row.parallel_ms);
    json.Key("prepared").Value(row.prepared_ms);
    json.Key("chosen_equality").Value(row.chosen);
    json.Key("threads").Value(row.threads);
    json.Key("partitions").Value(row.partitions);
    json.Key("matches").Value(row.matches);
    json.EndObject();
  }
  json.EndArray();
  json.Key("multiway_ms").BeginArray();
  for (const auto& row : multiway) {
    json.BeginObject();
    json.Key("n").Value(row.n);
    json.Key("d").Value(row.d);
    json.Key("binary").Value(row.binary_ms);
    json.Key("multiway").Value(row.multiway_ms);
    json.Key("agm_bound").Value(row.agm_bound);
    json.Key("binary_max_intermediate").Value(row.binary_max_intermediate);
    json.Key("multiway_max_intermediate").Value(row.multiway_max_intermediate);
    json.Key("chosen_join").Value(row.chosen);
    json.Key("matches").Value(row.matches);
    json.EndObject();
  }
  json.EndArray();
  json.Key("calibrated_ms").BeginArray();
  for (const auto& row : calibrated) {
    json.BeginObject();
    json.Key("groups").Value(row.groups);
    json.Key("uncalibrated").Value(row.uncalibrated_ms);
    json.Key("calibrated").Value(row.calibrated_ms);
    json.Key("uncalibrated_choice").Value(row.uncalibrated_choice);
    json.Key("calibrated_choice").Value(row.calibrated_choice);
    json.Key("matches").Value(row.matches);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::string error;
  if (util::WriteTextFile("BENCH_setjoin.json", json.TakeString(), &error)) {
    std::printf("wrote BENCH_setjoin.json\n\n");
  } else {
    std::fprintf(stderr, "BENCH_setjoin.json: %s\n", error.c_str());
  }
}

void BM_Containment(benchmark::State& state,
                    setjoin::ContainmentAlgorithm algorithm) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)), 8, 0.05);
  const auto r = setjoin::AsGrouped(instance.r);
  const auto s = setjoin::AsGrouped(instance.s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setjoin::SetContainmentJoin(r, s, algorithm));
  }
}
BENCHMARK_CAPTURE(BM_Containment, nested_loop,
                  setjoin::ContainmentAlgorithm::kNestedLoop)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Containment, signature,
                  setjoin::ContainmentAlgorithm::kSignatureNestedLoop)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Containment, partitioned,
                  setjoin::ContainmentAlgorithm::kPartitioned)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Containment, inverted_index,
                  setjoin::ContainmentAlgorithm::kInvertedIndex)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_SetEqualityCanonicalHash(benchmark::State& state) {
  workload::SetJoinConfig config;
  config.r_groups = static_cast<std::size_t>(state.range(0));
  config.s_groups = config.r_groups;
  config.r_group_size = 4;
  config.s_group_size = 4;
  config.domain_size = 12;
  const auto instance = workload::MakeSetJoinInstance(config);
  const auto r = setjoin::AsGrouped(instance.r);
  const auto s = setjoin::AsGrouped(instance.s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setjoin::SetEqualityJoin(
        r, s, setjoin::EqualityJoinAlgorithm::kCanonicalHash));
  }
}
BENCHMARK(BM_SetEqualityCanonicalHash)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_SetOverlapJoin(benchmark::State& state) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)), 6, 0.0);
  const auto r = setjoin::AsGrouped(instance.r);
  const auto s = setjoin::AsGrouped(instance.s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setjoin::SetOverlapJoin(r, s));
  }
}
BENCHMARK(BM_SetOverlapJoin)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto containment = PrintContainmentTable();
  const auto equality = PrintEqualityTable();
  const auto multiway = PrintMultiwayTable();
  const auto calibrated = PrintCalibratedTable();
  WriteJson(containment, equality, multiway, calibrated);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
