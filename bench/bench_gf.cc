// Experiment E4: the guarded fragment side — Example 3/7 agreement, the
// Theorem 8 translations, and GF evaluation cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gf/eval.h"
#include "gf/translate.h"
#include "ra/eval.h"
#include "util/rng.h"
#include "witness/figures.h"

namespace {

using namespace setalg;

core::Database RandomBeerDatabase(std::size_t n, std::uint64_t seed) {
  core::Schema schema;
  schema.AddRelation("Likes", 2);
  schema.AddRelation("Serves", 2);
  schema.AddRelation("Visits", 2);
  core::Database db(schema);
  util::Rng rng(seed);
  const std::size_t drinkers = n / 3 + 1, bars = n / 6 + 1, beers = n / 6 + 1;
  core::Relation visits(2), serves(2), likes(2);
  for (std::size_t i = 0; i < n / 3; ++i) {
    visits.Add({static_cast<core::Value>(rng.NextBounded(drinkers) + 1),
                static_cast<core::Value>(1000 + rng.NextBounded(bars))});
    serves.Add({static_cast<core::Value>(1000 + rng.NextBounded(bars)),
                static_cast<core::Value>(2000 + rng.NextBounded(beers))});
    likes.Add({static_cast<core::Value>(rng.NextBounded(drinkers) + 1),
               static_cast<core::Value>(2000 + rng.NextBounded(beers))});
  }
  db.SetRelation("Visits", std::move(visits));
  db.SetRelation("Serves", std::move(serves));
  db.SetRelation("Likes", std::move(likes));
  return db;
}

void PrintTheorem8Table() {
  std::printf("== E4 / Theorem 8: SA= <-> GF on the lousy-bar query ==\n");
  const auto beer = witness::MakeBeerExample();
  const auto sa = witness::LousyBarDrinkersSa();
  const auto gf = witness::LousyBarDrinkersGf();
  const auto translated = gf::GfToSaEq(*gf, {"x"}, beer.schema);
  std::printf("  hand-written SA= nodes: %zu; GF->SA= translated nodes: %zu\n",
              sa->NumNodes(), translated->NumNodes());
  const auto back = gf::SaEqToGf(sa, {"x"}, beer.schema);
  std::printf("  SA=->GF formula: %s...\n",
              back->ToString().substr(0, 60).c_str());
  for (std::size_t n : {60u, 120u, 240u}) {
    const auto db = RandomBeerDatabase(n, 7);
    const auto via_sa = ra::Eval(sa, db);
    const auto via_gf = gf::EvaluateCStored(*gf, db, {"x"}, {});
    std::printf("  n=%-5zu  |SA answer| = %-4zu  |GF answer| = %-4zu  %s\n", n,
                via_sa.size(), via_gf.size(),
                via_sa == via_gf ? "AGREE" : "DIFFER (serve-nothing bars)");
  }
  std::printf("(the GF reading also counts bars that serve nothing as lousy;\n"
              " on serve-complete data the two coincide — see gf_test)\n\n");
}

void BM_GfHolds(benchmark::State& state) {
  const auto db = RandomBeerDatabase(static_cast<std::size_t>(state.range(0)), 7);
  const auto gf = witness::LousyBarDrinkersGf();
  const auto domain = db.ActiveDomain();
  std::size_t i = 0;
  for (auto _ : state) {
    gf::Assignment assignment = {{"x", domain[i++ % domain.size()]}};
    benchmark::DoNotOptimize(gf::Holds(*gf, db, assignment));
  }
}
BENCHMARK(BM_GfHolds)->Arg(300)->Arg(1200)->Unit(benchmark::kMicrosecond);

void BM_EvaluateCStored(benchmark::State& state) {
  const auto db = RandomBeerDatabase(static_cast<std::size_t>(state.range(0)), 7);
  const auto gf = witness::LousyBarDrinkersGf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::EvaluateCStored(*gf, db, {"x"}, {}));
  }
}
BENCHMARK(BM_EvaluateCStored)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_GfToSaTranslation(benchmark::State& state) {
  const auto beer = witness::MakeBeerExample();
  const auto gf = witness::LousyBarDrinkersGf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::GfToSaEq(*gf, {"x"}, beer.schema));
  }
}
BENCHMARK(BM_GfToSaTranslation)->Unit(benchmark::kMicrosecond);

void BM_SaToGfTranslation(benchmark::State& state) {
  const auto beer = witness::MakeBeerExample();
  const auto sa = witness::LousyBarDrinkersSa();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf::SaEqToGf(sa, {"x"}, beer.schema));
  }
}
BENCHMARK(BM_SaToGfTranslation)->Unit(benchmark::kMicrosecond);

void BM_TranslatedExpressionEval(benchmark::State& state) {
  const auto beer = witness::MakeBeerExample();
  const auto translated =
      gf::GfToSaEq(*witness::LousyBarDrinkersGf(), {"x"}, beer.schema);
  const auto db = RandomBeerDatabase(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ra::Eval(translated, db));
  }
}
BENCHMARK(BM_TranslatedExpressionEval)->Arg(300)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTheorem8Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
