// Experiments E8d/E10/E11: division algorithms head-to-head.
//
// Reproduces the paper's complexity story quantitatively:
//   - the classic RA expression materializes Θ(n²) intermediates
//     (Proposition 26's lower bound is matched by the textbook plan),
//   - the Section 5 grouping/counting pipeline stays linear,
//   - among direct algorithms (Graefe), hash/aggregate division beat the
//     nested-loop and the classic plan by a growing factor.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "extalg/extended.h"
#include "ra/eval.h"
#include "setjoin/division.h"
#include "util/timer.h"
#include "workload/generators.h"

namespace {

using namespace setalg;

workload::DivisionInstance Instance(std::size_t n, std::uint64_t seed = 17) {
  workload::DivisionConfig config;
  config.num_groups = n / 8;
  config.group_size = 8;
  config.domain_size = std::max<std::size_t>(64, n / 4);
  config.divisor_size = std::max<std::size_t>(4, n / 64);
  config.match_fraction = 0.2;
  config.seed = seed;
  return workload::MakeDivisionInstance(config);
}

void PrintRuntimeTable() {
  std::printf("== E10: division algorithm runtimes (ms) ==\n");
  std::printf("%-8s", "n");
  for (auto algorithm : setjoin::AllDivisionAlgorithms()) {
    std::printf("  %-13s", setjoin::DivisionAlgorithmToString(algorithm));
  }
  std::printf("  %-13s\n", "extalg-linear");
  for (std::size_t n : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    const auto instance = Instance(n);
    std::printf("%-8zu", n);
    for (auto algorithm : setjoin::AllDivisionAlgorithms()) {
      util::WallTimer timer;
      auto result = setjoin::Divide(instance.r, instance.s, algorithm);
      benchmark::DoNotOptimize(result);
      std::printf("  %-13.3f", timer.ElapsedMillis());
    }
    util::WallTimer timer;
    auto result = extalg::ContainmentDivisionLinear(instance.r, instance.s);
    benchmark::DoNotOptimize(result);
    std::printf("  %-13.3f\n", timer.ElapsedMillis());
  }
  std::printf("(expected shape: aggregate/hash stay near-linear; classic-ra\n"
              " and nested-loop fall behind by a growing factor)\n\n");
}

void PrintIntermediateTable() {
  std::printf("== E11: intermediate sizes, classic RA vs Section 5 pipeline ==\n");
  std::printf("%-8s  %-8s  %-18s  %-18s\n", "n", "|D|", "classic-ra max c(E')",
              "extalg max step");
  for (std::size_t n : {1000u, 2000u, 4000u, 8000u}) {
    const auto instance = Instance(n);
    ra::EvalStats stats;
    setjoin::Divide(instance.r, instance.s, setjoin::DivisionAlgorithm::kClassicRa,
                    &stats);
    std::vector<extalg::StepStats> steps;
    extalg::ContainmentDivisionLinear(instance.r, instance.s, &steps);
    std::printf("%-8zu  %-8zu  %-18zu  %-18zu\n", n,
                instance.r.size() + instance.s.size(), stats.max_intermediate,
                extalg::MaxStepSize(steps));
  }
  std::printf("(expected shape: the classic plan's intermediates grow ~n^2 —\n"
              " Proposition 26 — while the grouping pipeline stays ~n)\n\n");
}

void BM_Divide(benchmark::State& state, setjoin::DivisionAlgorithm algorithm) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(setjoin::Divide(instance.r, instance.s, algorithm));
  }
}
BENCHMARK_CAPTURE(BM_Divide, nested_loop, setjoin::DivisionAlgorithm::kNestedLoop)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Divide, sort_merge, setjoin::DivisionAlgorithm::kSortMerge)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Divide, hash_division, setjoin::DivisionAlgorithm::kHashDivision)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Divide, aggregate, setjoin::DivisionAlgorithm::kAggregate)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Divide, classic_ra, setjoin::DivisionAlgorithm::kClassicRa)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_ExtalgLinearDivision(benchmark::State& state) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extalg::ContainmentDivisionLinear(instance.r, instance.s));
  }
}
BENCHMARK(BM_ExtalgLinearDivision)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_EqualityDivision(benchmark::State& state) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(setjoin::DivideEqual(
        instance.r, instance.s, setjoin::DivisionAlgorithm::kHashDivision));
  }
}
BENCHMARK(BM_EqualityDivision)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintRuntimeTable();
  PrintIntermediateTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
