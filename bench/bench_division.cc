// Experiments E8d/E10/E11: division algorithms head-to-head.
//
// Reproduces the paper's complexity story quantitatively:
//   - the classic RA expression materializes Θ(n²) intermediates
//     (Proposition 26's lower bound is matched by the textbook plan),
//   - the Section 5 grouping/counting pipeline stays linear,
//   - among direct algorithms (Graefe), hash/aggregate division beat the
//     nested-loop and the classic plan by a growing factor,
//   - the engine's planner routes the classic RA expression to the fast
//     division operator automatically ("engine-planned").
//
// Emits BENCH_division.json with the measured tables so the perf
// trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/result_cache.h"
#include "engine/shared_cache.h"
#include "extalg/extended.h"
#include "ra/eval.h"
#include "setjoin/division.h"
#include "util/json.h"
#include "util/timer.h"
#include "workload/generators.h"

// Injected by CMake from `git rev-parse --short HEAD` at configure time.
#ifndef SETALG_GIT_SHA
#define SETALG_GIT_SHA "unknown"
#endif

namespace {

using namespace setalg;

workload::DivisionInstance Instance(std::size_t n, std::uint64_t seed = 17) {
  workload::DivisionConfig config;
  config.num_groups = n / 8;
  config.group_size = 8;
  config.domain_size = std::max<std::size_t>(64, n / 4);
  config.divisor_size = std::max<std::size_t>(4, n / 64);
  config.match_fraction = 0.2;
  config.seed = seed;
  return workload::MakeDivisionInstance(config);
}

core::Database InstanceDb(const workload::DivisionInstance& instance) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  db.SetRelation("R", instance.r);
  db.SetRelation("S", instance.s);
  return db;
}

struct RuntimeRow {
  std::size_t n = 0;
  std::vector<std::pair<std::string, double>> cells;  // column name -> ms
  std::string chosen_division;  // Algorithm the cost model picked.
  std::size_t threads = 0;      // Pool width of the parallel cell.
  std::size_t partitions = 0;   // Partition tasks the parallel run fanned out.
  std::string prepared_outcome;  // Plan-cache outcome of the prepared cell.
  std::string result_cache_outcome;  // Cache outcome of the result-cached cell.
  double planning_ms = 0.0;           // Fresh planning path, per call.
  double prepared_planning_ms = 0.0;  // Warm cache acquisition, per call.
};

// Worker-pool width of the `parallel` column: the hardware width, clamped
// to [2, 4] — at least 2 so the pool is always exercised (the JSON's
// hardware_threads field tells the regression gate whether the timing is
// meaningful), at most 4 so the column stays comparable across runners.
std::size_t ParallelThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(2u, std::min(4u, hw == 0 ? 2u : hw));
}

// Best-of-`reps` wall time: table cells are single measurements, and the
// CI regression gate compares them across runs — the min of a few repeats
// is far less noisy than one shot.
template <typename Fn>
double BestOfMillis(Fn&& fn, int reps = 3) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    util::WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

struct IntermediateRow {
  std::size_t n = 0;
  std::size_t db_size = 0;
  std::size_t classic_ra_max = 0;
  std::size_t extalg_max = 0;
  std::size_t engine_max = 0;
};

std::vector<RuntimeRow> PrintRuntimeTable() {
  std::vector<RuntimeRow> rows;
  std::printf("== E10: division algorithm runtimes (ms) ==\n");
  std::printf("%-8s", "n");
  for (auto algorithm : setjoin::AllDivisionAlgorithms()) {
    std::printf("  %-13s", setjoin::DivisionAlgorithmToString(algorithm));
  }
  std::printf("  %-13s  %-13s  %-13s  %-13s  %-13s  %-13s  %-13s\n",
              "extalg-linear", "engine-planned", "cost-based", "batched",
              "parallel", "prepared", "result-cached");
  for (std::size_t n : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    const auto instance = Instance(n);
    RuntimeRow row;
    row.n = n;
    std::printf("%-8zu", n);
    for (auto algorithm : setjoin::AllDivisionAlgorithms()) {
      const double ms = BestOfMillis([&] {
        auto result = setjoin::Divide(instance.r, instance.s, algorithm);
        benchmark::DoNotOptimize(result);
      });
      std::printf("  %-13.3f", ms);
      row.cells.emplace_back(setjoin::DivisionAlgorithmToString(algorithm), ms);
    }
    {
      const double ms = BestOfMillis([&] {
        auto result = extalg::ContainmentDivisionLinear(instance.r, instance.s);
        benchmark::DoNotOptimize(result);
      });
      std::printf("  %-13.3f", ms);
      row.cells.emplace_back("extalg-linear", ms);
    }
    const auto db = InstanceDb(instance);
    const auto expr = setjoin::ClassicDivisionExpr("R", "S");
    auto run_engine = [&](const engine::EngineOptions& options, const char* what) {
      const engine::Engine engine(options);
      double ms = 0.0;
      engine::RunResult last;
      ms = BestOfMillis([&] {
        auto result = engine.Run(expr, db);
        benchmark::DoNotOptimize(result);
        if (!result.ok()) {
          std::fprintf(stderr, "%s run failed: %s\n", what, result.error().c_str());
          std::exit(1);  // The tracked artifact must never hide a failure.
        }
        last = std::move(*result);
      });
      return std::make_pair(ms, std::move(last));
    };
    {
      // The engine sees only the classic RA expression; the planner routes
      // it to the fast division operator.
      auto [ms, result] = run_engine(engine::EngineOptions{}, "engine-planned");
      std::printf("  %-13.3f", ms);
      row.cells.emplace_back("engine-planned", ms);
    }
    {
      // Same expression, but the division algorithm is chosen from the
      // relation statistics; the choice lands in the JSON so CI can assert
      // the model picks hash division at scale.
      auto [ms, result] = run_engine(engine::EngineOptions::CostBased(), "cost-based");
      std::printf("  %-13.3f", ms);
      row.cells.emplace_back("cost-based", ms);
      for (const auto& choice : result.stats.choices) {
        if (choice.site == "division") row.chosen_division = choice.algorithm;
      }
      if (row.chosen_division.empty()) {
        std::fprintf(stderr, "cost-based run recorded no division choice at n=%zu\n",
                     n);
        std::exit(1);
      }
    }
    {
      // Same plan again, executed through the pipelined batch surface; the
      // CI gate holds this within 1.1x of the materializing engine.
      auto [ms, result] = run_engine(engine::EngineOptions::Batched(), "batched");
      std::printf("  %-13.3f", ms);
      row.cells.emplace_back("batched", ms);
    }
    {
      // The batched plan with a worker pool: the division operator fans
      // out across hash partitions of the dividend. The CI gate requires
      // this to beat the serial batched run at the largest n whenever the
      // runner has >= 2 hardware threads.
      const std::size_t threads = ParallelThreads();
      auto [ms, result] =
          run_engine(engine::EngineOptions::Parallel(threads), "parallel");
      std::printf("  %-13.3f", ms);
      row.cells.emplace_back("parallel", ms);
      row.threads = result.stats.threads_used;
      row.partitions = result.stats.partitions;
    }
    {
      // The prepared-statement hot path: the same expression Prepare'd
      // once on a plan-cache-enabled engine, then executed through the
      // handle — the planning path (lowering, pattern match, costing,
      // statistics) is paid once instead of per call. The CI gate holds
      // this at <= 1.0x engine-planned; the JSON also records the cache
      // outcome so a silent regression to re-lowering would show up.
      engine::EngineOptions options;
      options.plan_cache_entries = 8;
      const engine::Engine engine(options);
      auto handle = engine.Prepare(expr, db);
      if (!handle.ok()) {
        std::fprintf(stderr, "prepare failed: %s\n", handle.error().c_str());
        std::exit(1);  // The tracked artifact must never hide a failure.
      }
      engine::RunResult last;
      const double ms = BestOfMillis([&] {
        auto result = engine.Run(*handle, db);
        benchmark::DoNotOptimize(result);
        if (!result.ok()) {
          std::fprintf(stderr, "prepared run failed: %s\n", result.error().c_str());
          std::exit(1);
        }
        last = std::move(*result);
      });
      std::printf("  %-13.3f", ms);
      row.cells.emplace_back("prepared", ms);
      row.prepared_outcome = engine::CacheOutcomeToString(last.stats.cache);

      // Planning-path microbench: per-call cost of acquiring an
      // executable plan, fresh (validate + pattern-match + cost + lower,
      // statistics amortized by the persistent engine — the cheapest
      // honest fresh baseline) vs through the warm cache (structural
      // hash + lookup + version-vector check). Amortized over a loop:
      // single calls are microseconds, below one-shot timer resolution.
      // The CI gate requires the cached path to be >= 2x faster.
      constexpr int kPlanIters = 200;
      row.planning_ms = BestOfMillis([&] {
        for (int i = 0; i < kPlanIters; ++i) {
          auto plan = engine.Plan(expr, db);
          benchmark::DoNotOptimize(plan);
        }
      }) / kPlanIters;
      row.prepared_planning_ms = BestOfMillis([&] {
        for (int i = 0; i < kPlanIters; ++i) {
          auto warm = engine.Prepare(expr, db);
          benchmark::DoNotOptimize(warm);
        }
      }) / kPlanIters;
    }
    {
      // The whole-result hot path: an engine wired to the process-wide
      // shared caches serves repeats of the same expression on unchanged
      // data straight from the stored relation — no plan runs at all. The
      // CI gate requires the warm hit to beat the uncached engine-planned
      // run; the recorded outcome ("result-hit") makes a silent
      // regression to re-execution visible.
      engine::EngineOptions options;
      options.plan_cache_entries = 0;
      options.shared_plan_cache = std::make_shared<engine::SharedPlanCache>(8, 0);
      options.result_cache = std::make_shared<engine::ResultCache>(8, 0);
      const engine::Engine engine(options);
      {
        auto warm = engine.Run(expr, db);  // Populate the result cache.
        if (!warm.ok()) {
          std::fprintf(stderr, "result-cache warm-up failed: %s\n",
                       warm.error().c_str());
          std::exit(1);  // The tracked artifact must never hide a failure.
        }
      }
      engine::RunResult last;
      const double ms = BestOfMillis([&] {
        auto result = engine.Run(expr, db);
        benchmark::DoNotOptimize(result);
        if (!result.ok()) {
          std::fprintf(stderr, "result-cached run failed: %s\n",
                       result.error().c_str());
          std::exit(1);
        }
        last = std::move(*result);
      });
      std::printf("  %-13.3f\n", ms);
      row.cells.emplace_back("result-cached", ms);
      row.result_cache_outcome = engine::CacheOutcomeToString(last.stats.cache);
    }
    rows.push_back(std::move(row));
  }
  std::printf("(expected shape: aggregate/hash stay near-linear; classic-ra\n"
              " and nested-loop fall behind by a growing factor; the engine\n"
              " tracks the hash-division curve despite being handed the\n"
              " classic RA expression)\n\n");
  return rows;
}

std::vector<IntermediateRow> PrintIntermediateTable() {
  std::vector<IntermediateRow> rows;
  std::printf("== E11: intermediate sizes, classic RA vs Section 5 vs engine ==\n");
  std::printf("%-8s  %-8s  %-18s  %-15s  %-15s\n", "n", "|D|",
              "classic-ra max c(E')", "extalg max step", "engine max op");
  for (std::size_t n : {1000u, 2000u, 4000u, 8000u}) {
    const auto instance = Instance(n);
    IntermediateRow row;
    row.n = n;
    row.db_size = instance.r.size() + instance.s.size();
    ra::EvalStats stats;
    setjoin::Divide(instance.r, instance.s, setjoin::DivisionAlgorithm::kClassicRa,
                    &stats);
    row.classic_ra_max = stats.max_intermediate;
    std::vector<extalg::StepStats> steps;
    extalg::ContainmentDivisionLinear(instance.r, instance.s, &steps);
    row.extalg_max = extalg::MaxStepSize(steps);
    const auto db = InstanceDb(instance);
    auto planned = engine::Engine::Run(setjoin::ClassicDivisionExpr("R", "S"), db,
                                       engine::EngineOptions{});
    if (!planned.ok()) {
      std::fprintf(stderr, "engine-planned run failed: %s\n",
                   planned.error().c_str());
      std::exit(1);  // The tracked artifact must never hide a failure.
    }
    row.engine_max = planned->stats.max_intermediate;
    std::printf("%-8zu  %-8zu  %-18zu  %-15zu  %-15zu\n", row.n, row.db_size,
                row.classic_ra_max, row.extalg_max, row.engine_max);
    rows.push_back(row);
  }
  std::printf("(expected shape: the classic plan's intermediates grow ~n^2 —\n"
              " Proposition 26 — while the grouping pipeline and the engine's\n"
              " rewritten plan stay ~n)\n\n");
  return rows;
}

void WriteJson(const std::vector<RuntimeRow>& runtime,
               const std::vector<IntermediateRow>& intermediates) {
  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("division");
  // The regression gate only trusts the parallel-vs-batched comparison on
  // multi-core runners; single-core machines record the column but skip
  // the gate. The git SHA attributes the artifact (and thus the checked-in
  // baseline snapshot) to the commit it was built from.
  json.Key("hardware_threads")
      .Value(static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.Key("git_sha").Value(SETALG_GIT_SHA);
  json.Key("runtime_ms").BeginArray();
  for (const auto& row : runtime) {
    json.BeginObject();
    json.Key("n").Value(row.n);
    for (const auto& [name, ms] : row.cells) json.Key(name).Value(ms);
    json.Key("chosen_division").Value(row.chosen_division);
    json.Key("threads").Value(row.threads);
    json.Key("partitions").Value(row.partitions);
    json.Key("prepared_outcome").Value(row.prepared_outcome);
    json.Key("result_cache_outcome").Value(row.result_cache_outcome);
    json.Key("planning_ms").Value(row.planning_ms);
    json.Key("prepared_planning_ms").Value(row.prepared_planning_ms);
    json.EndObject();
  }
  json.EndArray();
  json.Key("max_intermediate").BeginArray();
  for (const auto& row : intermediates) {
    json.BeginObject();
    json.Key("n").Value(row.n);
    json.Key("db_size").Value(row.db_size);
    json.Key("classic_ra").Value(row.classic_ra_max);
    json.Key("extalg").Value(row.extalg_max);
    json.Key("engine").Value(row.engine_max);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::string error;
  if (util::WriteTextFile("BENCH_division.json", json.TakeString(), &error)) {
    std::printf("wrote BENCH_division.json\n\n");
  } else {
    std::fprintf(stderr, "BENCH_division.json: %s\n", error.c_str());
  }
}

void BM_Divide(benchmark::State& state, setjoin::DivisionAlgorithm algorithm) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(setjoin::Divide(instance.r, instance.s, algorithm));
  }
}
BENCHMARK_CAPTURE(BM_Divide, nested_loop, setjoin::DivisionAlgorithm::kNestedLoop)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Divide, sort_merge, setjoin::DivisionAlgorithm::kSortMerge)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Divide, hash_division, setjoin::DivisionAlgorithm::kHashDivision)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Divide, aggregate, setjoin::DivisionAlgorithm::kAggregate)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Divide, classic_ra, setjoin::DivisionAlgorithm::kClassicRa)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_ExtalgLinearDivision(benchmark::State& state) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extalg::ContainmentDivisionLinear(instance.r, instance.s));
  }
}
BENCHMARK(BM_ExtalgLinearDivision)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_EnginePlannedDivision(benchmark::State& state) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  const auto db = InstanceDb(instance);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");
  const engine::Engine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(expr, db));
  }
}
BENCHMARK(BM_EnginePlannedDivision)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_CostBasedDivision(benchmark::State& state) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  const auto db = InstanceDb(instance);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");
  const engine::Engine engine(engine::EngineOptions::CostBased());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(expr, db));
  }
}
BENCHMARK(BM_CostBasedDivision)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_BatchedDivision(benchmark::State& state) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  const auto db = InstanceDb(instance);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");
  const engine::Engine engine(engine::EngineOptions::Batched());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(expr, db));
  }
}
BENCHMARK(BM_BatchedDivision)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_ParallelDivision(benchmark::State& state) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  const auto db = InstanceDb(instance);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");
  const engine::Engine engine(engine::EngineOptions::Parallel(ParallelThreads()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(expr, db));
  }
}
BENCHMARK(BM_ParallelDivision)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_PreparedDivision(benchmark::State& state) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  const auto db = InstanceDb(instance);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");
  engine::EngineOptions options;
  options.plan_cache_entries = 8;
  const engine::Engine engine(options);
  const auto handle = engine.Prepare(expr, db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(*handle, db));
  }
}
BENCHMARK(BM_PreparedDivision)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_EqualityDivision(benchmark::State& state) {
  const auto instance = Instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(setjoin::DivideEqual(
        instance.r, instance.s, setjoin::DivisionAlgorithm::kHashDivision));
  }
}
BENCHMARK(BM_EqualityDivision)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto runtime = PrintRuntimeTable();
  const auto intermediates = PrintIntermediateTable();
  WriteJson(runtime, intermediates);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
