#!/usr/bin/env python3
"""CI regression gate over the BENCH_*.json artifacts.

Compares a fresh bench run against the checked-in snapshots in
bench/baseline/ and fails (exit 1) when:

  1. `engine-planned` (or `cost-based`) division is more than RATIO_LIMIT
     (1.5x) slower than direct `hash-division` at the largest measured n —
     the ROADMAP's "regressions in engine-planned vs hash-division should
     fail loudly" gate. A small absolute slack absorbs the constant
     planning overhead on sub-millisecond cells.
  2. Any tracked column regresses more than REGRESSION_LIMIT (+30%)
     against the baseline. Absolute milliseconds are not comparable
     across machines, so the comparison is on *normalized* times: each
     column is divided by the same run's reference column
     (`hash-division` / `canonical-hash` / `inverted-index`), which
     cancels the hardware factor and keeps the check meaningful both
     locally and on CI runners.
  3. The cost model stops picking the expected algorithm at scale:
     `chosen_division` must be hash-division and `chosen_equality` must
     be canonical-hash at the largest n (the paper's headline: direct
     hash algorithms win at scale).
  4. `batched` division is more than BATCHED_RATIO_LIMIT (1.1x) slower
     than the materializing `engine-planned` run at the largest n —
     pipelined batch execution must stay within noise of the
     materializing engine on the same plan.
  5. `parallel` division is slower than PARALLEL_RATIO_LIMIT (1.0x) the
     serial `batched` run at the largest n — the partitioned executor
     must actually win at scale. Skipped (loudly) when the run's
     `hardware_threads` field reports fewer than 2 hardware threads,
     where a worker pool cannot win.
  6. Any expected column is missing from the current JSON. Silent skips
     hid real coverage loss (a bench dropping a tracked column looked
     green); a missing expected column is now an error, and every check
     prints exactly which table/column/sizes it compared.
  7. `prepared` division (the plan-cache hot path: Prepare once, run the
     handle) exceeds PREPARED_RATIO_LIMIT (1.0x) the replanning
     `engine-planned` run at the largest n — caching the plan must never
     cost anything — or the per-call planning path served from the warm
     cache (`prepared_planning_ms`) is less than PLANNING_SPEEDUP (2x)
     faster than fresh planning (`planning_ms`).
  8. `result-cached` division (the whole-result hot path: a warm hit in
     the invalidation-aware result cache) is not at least
     RESULT_CACHED_SPEEDUP (2x) faster than the uncached `engine-planned`
     run at the largest n, or its recorded outcome is not "result-hit" —
     serving a stored relation must beat re-executing the plan by a wide
     margin, and must actually come from the cache.
  9. The self-tuning invariant on the skewed-containment table
     (`calibrated_ms` in BENCH_setjoin.json) breaks at the largest
     group count: the trace-calibrated cost model's chosen kernel must
     run at least as fast as the uncalibrated model's choice
     (CALIBRATED_RATIO_LIMIT, 1.0x, plus the usual sub-millisecond
     slack) — histogram-aware costing exists to beat the uniform
     assumption under skew, so losing to it is a regression.
  10. The worst-case-optimal invariants on the skewed-triangle table
     (`multiway_ms` in BENCH_setjoin.json) break at the largest n: the
     cost model must route the chain to the multiway operator
     (`chosen_join` starts with "multiway"), the multiway run's max
     intermediate must stay within the recorded AGM bound, and it must be
     at most MULTIWAY_INTERMEDIATE_FRACTION (0.5x) of the binary plan's
     max intermediate — the operator's whole point is refusing to
     materialize the blown-up binary intermediate.
  11. The sharded-scan fast path stops engaging: the `sharded` cell in
     `containment_ms` (the parallel plan over a snapshot pre-sharded on
     the partitioning column) must record `sharded_skipped_passes >= 1`
     at the largest group count — shard-aligned scans exist to skip the
     partition pass, so zero skips means the alignment detection broke.

Whenever a gate disarms (skips) instead of judging, the skip message
prints the runner fingerprint — hardware_threads and git_sha — of the
JSON(s) involved, so a stale or wrong-class baseline is attributable at
a glance.

The parallel *drift* gate (the baseline comparison of the `parallel`
column) arms itself from the baseline: it runs only when the baseline
JSON records `hardware_threads >= 2`, i.e. when the snapshot was taken on
a runner class where the parallel timings are meaningful. A baseline
regenerated on a single-core box disarms the drift comparison (loudly)
instead of gating against oversubscription-inflated ratios — the PR 4
stale-baseline footgun.

Regenerate the baseline after an intentional perf change with:
    python3 bench/check_regression.py --update \
        --current build/bench --baseline bench/baseline
"""

import argparse
import json
import os
import shutil
import sys

RATIO_LIMIT = 1.5          # engine-planned vs hash-division at max n.
BATCHED_RATIO_LIMIT = 1.1  # batched vs engine-planned at max n.
PARALLEL_RATIO_LIMIT = 1.0  # parallel vs batched at max n (>= 2 hw threads).
PREPARED_RATIO_LIMIT = 1.0  # prepared vs engine-planned at max n.
# Timer-noise allowance for the prepared gate: both cells run the *same
# executor work* (the hit path only replaces lowering with a hash lookup),
# so they land within a few percent of each other on ~2ms cells; a real
# regression here (every run silently recomputing statistics or
# replanning) costs an order of magnitude more than this slack.
PREPARED_ABS_SLACK_MS = 0.25
PLANNING_SPEEDUP = 2.0      # Warm-cache planning vs fresh planning at max n.
RESULT_CACHED_SPEEDUP = 2.0  # engine-planned vs a warm result-cache hit.
REGRESSION_LIMIT = 1.30    # Normalized column vs baseline.
ABS_SLACK_MS = 1.0         # Ignore sub-millisecond jitter in ratio checks.
# Calibrated vs uncalibrated containment choice at max groups: the
# histogram-informed pick must never lose to the uniform-assumption pick
# on the skewed workload built to separate them.
CALIBRATED_RATIO_LIMIT = 1.0
# Multiway max intermediate vs the binary plan's at max n: the skewed
# triangle's binary intermediate is n²/d tuples, the multiway operator's
# footprint is output-bounded, so 0.5x is generous — a breach means the
# operator started materializing something binary-shaped.
MULTIWAY_INTERMEDIATE_FRACTION = 0.5

FILES = {
    "BENCH_division.json": ("runtime_ms",),
    "BENCH_setjoin.json": ("containment_ms", "equality_ms", "multiway_ms",
                           "calibrated_ms"),
}

# table key -> (row axis key, reference column, tracked columns)
TRACKED = {
    "runtime_ms": (
        "n",
        "hash-division",
        ["sort-merge", "aggregate", "engine-planned", "cost-based", "batched",
         "parallel", "prepared", "result-cached"],
    ),
    "containment_ms": (
        "groups",
        "inverted-index",
        ["signature-nested-loop", "partitioned", "cost-based", "batched",
         "parallel", "sharded", "prepared"],
    ),
    "equality_ms": ("groups", "canonical-hash",
                    ["cost-based", "batched", "parallel", "prepared"]),
    "multiway_ms": ("n", "binary", ["multiway"]),
    "calibrated_ms": ("groups", "uncalibrated", ["calibrated"]),
}

# Columns whose timings are only meaningful on multi-core runners: their
# baseline drift comparison arms itself from the baseline snapshot's own
# hardware_threads field (see check_against_baseline).
MULTICORE_COLUMNS = {"parallel", "sharded"}

EXPECTED_CHOICES = {
    "runtime_ms": ("chosen_division", "hash-division"),
    "equality_ms": ("chosen_equality", "canonical-hash"),
}


def load(path):
    with open(path) as f:
        return json.load(f)


def runner_info(data):
    """The JSON's runner fingerprint, printed whenever a gate disarms."""
    return (f"hardware_threads={data.get('hardware_threads')!r}, "
            f"git_sha={data.get('git_sha', 'unknown')!r}")


def max_row(rows, axis):
    return max(rows, key=lambda r: r[axis])


def check_ratio(errors, data):
    """Gate 1: engine-planned / cost-based vs hash-division at max n."""
    rows = data.get("runtime_ms", [])
    if not rows:
        errors.append("runtime_ms table missing from BENCH_division.json")
        return
    row = max_row(rows, "n")
    hash_ms = row["hash-division"]
    limit = max(RATIO_LIMIT * hash_ms, hash_ms + ABS_SLACK_MS)
    for column in ("engine-planned", "cost-based"):
        ms = row.get(column)
        if ms is None:
            errors.append(f"column '{column}' missing at n={row['n']}")
        elif ms > limit:
            errors.append(
                f"{column} at n={row['n']} is {ms:.3f}ms vs hash-division "
                f"{hash_ms:.3f}ms ({ms / hash_ms:.2f}x > {RATIO_LIMIT}x limit)"
            )
        else:
            print(
                f"  ok: {column} {ms:.3f}ms <= {RATIO_LIMIT}x hash-division "
                f"({hash_ms:.3f}ms) at n={row['n']}"
            )


def check_parallel_ratio(errors, data):
    """Gate 5: parallel vs the serial batched run at max n (multi-core only)."""
    rows = data.get("runtime_ms", [])
    if not rows:
        return  # Gate 1 already reported the missing table.
    row = max_row(rows, "n")
    batched_ms = row.get("batched")
    parallel_ms = row.get("parallel")
    if batched_ms is None or parallel_ms is None:
        errors.append(
            f"column 'batched' or 'parallel' missing at n={row['n']}"
        )
        return
    hardware_threads = data.get("hardware_threads")
    if hardware_threads is None:
        errors.append(
            "hardware_threads missing from BENCH_division.json — cannot tell "
            "whether the parallel-vs-batched gate is meaningful on this runner"
        )
        return
    if hardware_threads < 2:
        print(
            f"  SKIPPED: parallel-vs-batched gate needs >= 2 hardware threads "
            f"(current run: {runner_info(data)}); parallel was "
            f"{parallel_ms:.3f}ms vs batched {batched_ms:.3f}ms at n={row['n']}"
        )
        return
    # Absolute slack only shields jitter-dominated sub-millisecond cells.
    limit = PARALLEL_RATIO_LIMIT * batched_ms
    if batched_ms < ABS_SLACK_MS:
        limit = max(limit, batched_ms + ABS_SLACK_MS)
    if parallel_ms > limit:
        errors.append(
            f"parallel at n={row['n']} is {parallel_ms:.3f}ms vs batched "
            f"{batched_ms:.3f}ms ({parallel_ms / batched_ms:.2f}x > "
            f"{PARALLEL_RATIO_LIMIT}x limit, threads={row.get('threads')}, "
            f"partitions={row.get('partitions')})"
        )
    else:
        print(
            f"  ok: parallel {parallel_ms:.3f}ms <= {PARALLEL_RATIO_LIMIT}x "
            f"batched ({batched_ms:.3f}ms) at n={row['n']} "
            f"(threads={row.get('threads')}, partitions={row.get('partitions')})"
        )


def check_batched_ratio(errors, data):
    """Gate 4: batched vs the materializing engine-planned run at max n."""
    rows = data.get("runtime_ms", [])
    if not rows:
        return  # Gate 1 already reported the missing table.
    row = max_row(rows, "n")
    planned_ms = row.get("engine-planned")
    batched_ms = row.get("batched")
    if planned_ms is None or batched_ms is None:
        errors.append(
            f"column 'engine-planned' or 'batched' missing at n={row['n']}"
        )
        return
    # Absolute slack only shields jitter-dominated sub-millisecond cells;
    # at real timings the advertised 1.1x ratio is the binding limit.
    limit = BATCHED_RATIO_LIMIT * planned_ms
    if planned_ms < ABS_SLACK_MS:
        limit = max(limit, planned_ms + ABS_SLACK_MS)
    if batched_ms > limit:
        errors.append(
            f"batched at n={row['n']} is {batched_ms:.3f}ms vs engine-planned "
            f"{planned_ms:.3f}ms ({batched_ms / planned_ms:.2f}x > "
            f"{BATCHED_RATIO_LIMIT}x limit)"
        )
    else:
        print(
            f"  ok: batched {batched_ms:.3f}ms <= {BATCHED_RATIO_LIMIT}x "
            f"engine-planned ({planned_ms:.3f}ms) at n={row['n']}"
        )


def check_prepared_ratio(errors, data):
    """Gate 7: the plan-cache hot path vs replanning every call."""
    rows = data.get("runtime_ms", [])
    if not rows:
        return  # Gate 1 already reported the missing table.
    row = max_row(rows, "n")
    planned_ms = row.get("engine-planned")
    prepared_ms = row.get("prepared")
    if planned_ms is None or prepared_ms is None:
        errors.append(
            f"column 'engine-planned' or 'prepared' missing at n={row['n']}"
        )
        return
    outcome = row.get("prepared_outcome")
    if outcome != "hit":
        errors.append(
            f"prepared cell at n={row['n']} reported cache outcome "
            f"'{outcome}', expected 'hit' — the hot path silently fell back "
            f"to replanning"
        )
    limit = max(PREPARED_RATIO_LIMIT * planned_ms,
                planned_ms + PREPARED_ABS_SLACK_MS)
    if prepared_ms > limit:
        errors.append(
            f"prepared at n={row['n']} is {prepared_ms:.3f}ms vs "
            f"engine-planned {planned_ms:.3f}ms "
            f"({prepared_ms / planned_ms:.2f}x > {PREPARED_RATIO_LIMIT}x limit)"
        )
    else:
        print(
            f"  ok: prepared {prepared_ms:.3f}ms <= {PREPARED_RATIO_LIMIT}x "
            f"engine-planned ({planned_ms:.3f}ms) at n={row['n']} "
            f"(outcome={outcome})"
        )
    # The planning path itself (per-call, loop-amortized): a warm cache
    # acquisition must beat fresh planning by at least PLANNING_SPEEDUP.
    planning = row.get("planning_ms")
    warm = row.get("prepared_planning_ms")
    if planning is None or warm is None:
        errors.append(
            f"'planning_ms' or 'prepared_planning_ms' missing at n={row['n']}"
        )
        return
    if warm <= 0 or planning <= 0:
        errors.append(
            f"non-positive planning timings at n={row['n']}: "
            f"planning_ms={planning}, prepared_planning_ms={warm}"
        )
        return
    speedup = planning / warm
    if speedup < PLANNING_SPEEDUP:
        errors.append(
            f"warm-cache planning at n={row['n']} is only {speedup:.2f}x "
            f"faster than fresh planning ({warm * 1000:.2f}us vs "
            f"{planning * 1000:.2f}us per call; need >= {PLANNING_SPEEDUP}x)"
        )
    else:
        print(
            f"  ok: warm-cache planning {warm * 1000:.2f}us/call is "
            f"{speedup:.1f}x faster than fresh planning "
            f"({planning * 1000:.2f}us/call) at n={row['n']}"
        )


def check_result_cached_ratio(errors, data):
    """Gate 8: a warm result-cache hit vs the uncached engine-planned run."""
    rows = data.get("runtime_ms", [])
    if not rows:
        return  # Gate 1 already reported the missing table.
    row = max_row(rows, "n")
    planned_ms = row.get("engine-planned")
    cached_ms = row.get("result-cached")
    if planned_ms is None or cached_ms is None:
        errors.append(
            f"column 'engine-planned' or 'result-cached' missing at n={row['n']}"
        )
        return
    outcome = row.get("result_cache_outcome")
    if outcome != "result-hit":
        errors.append(
            f"result-cached cell at n={row['n']} reported cache outcome "
            f"'{outcome}', expected 'result-hit' — the hot path silently "
            f"fell back to executing the plan"
        )
    if cached_ms <= 0 or planned_ms <= 0:
        errors.append(
            f"non-positive timings at n={row['n']}: "
            f"engine-planned={planned_ms}, result-cached={cached_ms}"
        )
        return
    speedup = planned_ms / cached_ms
    if speedup < RESULT_CACHED_SPEEDUP:
        errors.append(
            f"result-cached at n={row['n']} is {cached_ms:.3f}ms vs "
            f"engine-planned {planned_ms:.3f}ms (only {speedup:.2f}x faster; "
            f"need >= {RESULT_CACHED_SPEEDUP}x)"
        )
    else:
        print(
            f"  ok: result-cached {cached_ms:.3f}ms is {speedup:.1f}x faster "
            f"than engine-planned ({planned_ms:.3f}ms) at n={row['n']} "
            f"(outcome={outcome})"
        )


def check_calibrated_ratio(errors, data):
    """Gate 9: the trace-calibrated pick vs the fixed model's pick."""
    rows = data.get("calibrated_ms", [])
    if not rows:
        errors.append("calibrated_ms table missing from BENCH_setjoin.json")
        return
    row = max_row(rows, "groups")
    groups = row["groups"]
    uncal_ms = row.get("uncalibrated")
    cal_ms = row.get("calibrated")
    if uncal_ms is None or cal_ms is None:
        errors.append(
            f"column 'uncalibrated' or 'calibrated' missing from "
            f"calibrated_ms at groups={groups}"
        )
        return
    if uncal_ms <= 0 or cal_ms <= 0:
        errors.append(
            f"non-positive timings in calibrated_ms at groups={groups}: "
            f"uncalibrated={uncal_ms}, calibrated={cal_ms}"
        )
        return
    # Absolute slack only shields jitter-dominated sub-millisecond cells;
    # on the skewed workload both cells run tens of milliseconds.
    limit = CALIBRATED_RATIO_LIMIT * uncal_ms
    if uncal_ms < ABS_SLACK_MS:
        limit = max(limit, uncal_ms + ABS_SLACK_MS)
    if cal_ms > limit:
        errors.append(
            f"calibrated containment at groups={groups} is {cal_ms:.3f}ms vs "
            f"uncalibrated {uncal_ms:.3f}ms ({cal_ms / uncal_ms:.2f}x > "
            f"{CALIBRATED_RATIO_LIMIT}x limit; choices: "
            f"{row.get('calibrated_choice')} vs {row.get('uncalibrated_choice')}) "
            f"— the histogram-informed model lost to the uniform assumption"
        )
    else:
        print(
            f"  ok: calibrated {cal_ms:.3f}ms "
            f"({row.get('calibrated_choice')}) <= {CALIBRATED_RATIO_LIMIT}x "
            f"uncalibrated {uncal_ms:.3f}ms ({row.get('uncalibrated_choice')}) "
            f"at groups={groups}"
        )


def check_sharded_skip(errors, data):
    """Gate 11: the sharded run must actually skip the partition pass.

    The `sharded` cell executes the parallel containment plan over a
    snapshot pre-sharded on the plan's partitioning column; the executor
    must consume the shards directly, and it records how many partition
    passes it skipped. Zero means the alignment fast path silently
    stopped engaging — a plan-shape property, so this gate is
    machine-independent and always armed.
    """
    rows = data.get("containment_ms", [])
    if not rows:
        errors.append("containment_ms table missing from BENCH_setjoin.json")
        return
    row = max_row(rows, "groups")
    groups = row["groups"]
    skipped = row.get("sharded_skipped_passes")
    if skipped is None:
        errors.append(
            f"'sharded_skipped_passes' missing from containment_ms at "
            f"groups={groups}"
        )
        return
    if skipped < 1:
        errors.append(
            f"sharded containment at groups={groups} skipped {skipped} "
            f"partition passes, expected >= 1 — the shard-aligned scan fast "
            f"path no longer engages"
        )
    else:
        print(
            f"  ok: sharded containment skipped {skipped} partition pass(es) "
            f"at groups={groups} (sharded={row.get('sharded')}ms, "
            f"parallel={row.get('parallel')}ms)"
        )


def check_multiway_bound(errors, data):
    """Gate 10: worst-case-optimal invariants on the skewed triangle."""
    rows = data.get("multiway_ms", [])
    if not rows:
        errors.append("multiway_ms table missing from BENCH_setjoin.json")
        return
    row = max_row(rows, "n")
    n = row["n"]
    missing = [key for key in ("chosen_join", "agm_bound",
                               "multiway_max_intermediate",
                               "binary_max_intermediate") if key not in row]
    if missing:
        errors.append(
            f"multiway_ms at n={n} is missing field(s) {missing}"
        )
        return
    chosen = row["chosen_join"]
    agm = row["agm_bound"]
    multiway_int = row["multiway_max_intermediate"]
    binary_int = row["binary_max_intermediate"]
    if not str(chosen).startswith("multiway"):
        errors.append(
            f"cost model picked '{chosen}' (chosen_join) at n={n}, expected "
            f"a multiway routing — the skewed triangle must route to the "
            f"worst-case-optimal operator"
        )
    if agm <= 0:
        errors.append(f"non-positive agm_bound {agm} in multiway_ms at n={n}")
        return
    if multiway_int > agm:
        errors.append(
            f"multiway max intermediate {multiway_int} exceeds the AGM bound "
            f"{agm:.0f} at n={n} — the operator is no longer "
            f"worst-case-optimal"
        )
    else:
        print(
            f"  ok: multiway max intermediate {multiway_int} <= AGM bound "
            f"{agm:.0f} at n={n}"
        )
    limit = MULTIWAY_INTERMEDIATE_FRACTION * binary_int
    if multiway_int > limit:
        errors.append(
            f"multiway max intermediate {multiway_int} is more than "
            f"{MULTIWAY_INTERMEDIATE_FRACTION}x the binary plan's "
            f"{binary_int} at n={n} — the skew advantage collapsed"
        )
    else:
        print(
            f"  ok: multiway max intermediate {multiway_int} <= "
            f"{MULTIWAY_INTERMEDIATE_FRACTION}x binary ({binary_int}) at n={n} "
            f"(chosen_join={chosen})"
        )


def check_choices(errors, data, table):
    expectation = EXPECTED_CHOICES.get(table)
    rows = data.get(table, [])
    if expectation is None or not rows:
        return
    axis = TRACKED[table][0]
    row = max_row(rows, axis)
    key, expected = expectation
    actual = row.get(key)
    if actual != expected:
        errors.append(
            f"cost model picked '{actual}' ({key}) at {axis}={row[axis]}, "
            f"expected '{expected}'"
        )
    else:
        print(f"  ok: {key}={actual} at {axis}={row[axis]}")


def check_against_baseline(errors, current, baseline, table):
    """Every row present in both current and baseline is checked.

    A tracked column absent from the *current* JSON is an error — a bench
    silently dropping a column (as a rename or a lost emit would) must
    fail CI, not shrink coverage. A column absent only from the *baseline*
    is a newly-added column: it is reported and skipped until the
    baseline is regenerated.

    Multi-core-only columns (MULTICORE_COLUMNS) are compared only when
    the *baseline itself* records hardware_threads >= 2: a snapshot taken
    on a single-core runner carries oversubscription-inflated parallel
    ratios that would mis-gate every multi-core run (and vice versa), so
    the drift gate arms automatically with the baseline's runner class
    instead of relying on a human to remember.
    """
    axis, reference, columns = TRACKED[table]
    base_hw = baseline.get("hardware_threads")
    multicore_armed = base_hw is not None and base_hw >= 2
    if not multicore_armed and any(c in MULTICORE_COLUMNS for c in columns):
        print(
            f"  DISARMED: multi-core drift columns "
            f"{sorted(set(columns) & MULTICORE_COLUMNS)} "
            f"in '{table}' skipped — baseline: {runner_info(baseline)}; "
            f"current: {runner_info(current)}; regenerate bench/baseline on "
            f"a multi-core runner to arm them"
        )
    cur_rows = current.get(table, [])
    base_rows = baseline.get(table, [])
    if not cur_rows or not base_rows:
        errors.append(f"table '{table}' missing from current or baseline JSON")
        return
    for cur in cur_rows:
        for column in [reference] + columns:
            if column not in cur:
                errors.append(
                    f"expected column '{column}' missing from current "
                    f"'{table}' at {axis}={cur[axis]}"
                )
    base_by_axis = {r[axis]: r for r in base_rows}
    compared = 0
    compared_columns = {}  # column -> list of axis sizes actually compared
    skipped = []           # (column, axis value, reason)
    for cur in cur_rows:
        base = base_by_axis.get(cur[axis])
        if base is None:
            skipped.append(("<row>", cur[axis], "no baseline row"))
            continue
        cur_ref, base_ref = cur.get(reference), base.get(reference)
        if cur_ref is None or base_ref is None:
            continue  # Reported as a missing expected column above.
        if cur_ref <= 0 or base_ref <= 0:
            errors.append(
                f"non-positive reference '{reference}' time in '{table}' at "
                f"{axis}={cur[axis]}"
            )
            continue
        compared += 1
        for column in columns:
            if column not in cur:
                continue  # Reported as an error above.
            if column in MULTICORE_COLUMNS and not multicore_armed:
                skipped.append((column, cur[axis], "baseline not multi-core"))
                continue
            if column not in base:
                skipped.append((column, cur[axis], "no baseline column"))
                continue
            cur_norm = cur[column] / cur_ref
            base_norm = base[column] / base_ref
            # Sub-slack cells are jitter-dominated; skip them.
            if cur[column] < ABS_SLACK_MS and base[column] < ABS_SLACK_MS:
                skipped.append((column, cur[axis], "sub-slack timing"))
                continue
            compared_columns.setdefault(column, []).append(cur[axis])
            if cur_norm > REGRESSION_LIMIT * base_norm:
                errors.append(
                    f"{table}/{column} at {axis}={cur[axis]} regressed: "
                    f"{cur_norm:.2f}x {reference} now vs {base_norm:.2f}x in "
                    f"baseline (> +{(REGRESSION_LIMIT - 1) * 100:.0f}%)"
                )
            else:
                print(
                    f"  ok: {table}/{column} at {axis}={cur[axis]} "
                    f"{cur_norm:.2f}x {reference} (baseline {base_norm:.2f}x)"
                )
    if compared == 0:
        errors.append(f"no comparable rows between current and baseline in '{table}'")
    print(f"  compared in '{table}' (normalized by {reference}):")
    for column in columns:
        sizes = compared_columns.get(column, [])
        print(f"    {column}: {axis}={sizes if sizes else '(nothing compared)'}")
    for column, value, reason in skipped:
        print(f"  skipped: {table}/{column} at {axis}={value} ({reason})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", default="build/bench",
                        help="directory with the fresh BENCH_*.json")
    parser.add_argument("--baseline", default="bench/baseline",
                        help="directory with the checked-in snapshots")
    parser.add_argument("--update", action="store_true",
                        help="copy current JSONs over the baseline and exit")
    args = parser.parse_args()

    if args.update:
        os.makedirs(args.baseline, exist_ok=True)
        for name in FILES:
            shutil.copy(os.path.join(args.current, name),
                        os.path.join(args.baseline, name))
            print(f"baseline updated: {os.path.join(args.baseline, name)}")
        return 0

    errors = []
    for name, tables in FILES.items():
        cur_path = os.path.join(args.current, name)
        base_path = os.path.join(args.baseline, name)
        if not os.path.exists(cur_path):
            errors.append(f"missing current artifact {cur_path}")
            continue
        if not os.path.exists(base_path):
            errors.append(f"missing baseline snapshot {base_path}")
            continue
        print(f"== {name} ==")
        current, baseline = load(cur_path), load(base_path)
        if name == "BENCH_division.json":
            check_ratio(errors, current)
            check_batched_ratio(errors, current)
            check_parallel_ratio(errors, current)
            check_prepared_ratio(errors, current)
            check_result_cached_ratio(errors, current)
        if name == "BENCH_setjoin.json":
            check_calibrated_ratio(errors, current)
            check_multiway_bound(errors, current)
            check_sharded_skip(errors, current)
        for table in tables:
            check_choices(errors, current, table)
            check_against_baseline(errors, current, baseline, table)

    if errors:
        print("\nBENCH REGRESSION GATE FAILED:", file=sys.stderr)
        for error in errors:
            print(f"  FAIL: {error}", file=sys.stderr)
        return 1
    print("\nbench regression gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
