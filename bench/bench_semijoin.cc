// Experiment E13: semijoin algebra evaluation is linear by construction.
// Compares SA= evaluation against the equivalent join+projection RA plan
// (both semantically equal; the SA plan's intermediates stay ≤ |D|), and
// times the specialized semijoin kernels.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ra/eval.h"
#include "ra/expr.h"
#include "ra/rewrite.h"
#include "sa/fast_semijoin.h"
#include "sa/full_reducer.h"
#include "util/timer.h"
#include "workload/generators.h"

namespace {

using namespace setalg;

core::Database Family(std::size_t n) { return workload::TwoRelationDatabase(n, 31); }

void PrintSemijoinVsJoinTable() {
  std::printf("== E13: SA= semijoin vs naive join embedding ==\n");
  std::printf("%-8s  %-12s  %-12s  %-16s  %-16s\n", "n", "semijoin-ms", "join-ms",
              "semijoin-max-int", "join-max-int");
  // R ⋉_{2=1} T vs π(R ⋈_{2=1} T) — same answer, different intermediates.
  auto semi = ra::SemiJoin(ra::Rel("R", 2), ra::Rel("T", 2), {{2, ra::Cmp::kEq, 1}});
  auto join = ra::Project(
      ra::Join(ra::Rel("R", 2), ra::Rel("T", 2), {{2, ra::Cmp::kEq, 1}}), {1, 2});
  for (std::size_t n : {2000u, 8000u, 32000u}) {
    const auto db = Family(n);
    util::WallTimer semi_timer;
    ra::EvalStats semi_stats;
    benchmark::DoNotOptimize(ra::Eval(semi, db, &semi_stats));
    const double semi_ms = semi_timer.ElapsedMillis();
    util::WallTimer join_timer;
    ra::EvalStats join_stats;
    benchmark::DoNotOptimize(ra::Eval(join, db, &join_stats));
    const double join_ms = join_timer.ElapsedMillis();
    std::printf("%-8zu  %-12.3f  %-12.3f  %-16zu  %-16zu\n", n, semi_ms, join_ms,
                semi_stats.max_intermediate, join_stats.max_intermediate);
  }
  std::printf("(expected shape: the semijoin plan's max intermediate stays at\n"
              " most |R| while the join materializes every matching pair)\n\n");
}

void PrintKernelTable() {
  std::printf("== semijoin kernel selection on one instance (n = 16000) ==\n");
  const auto db = Family(16000);
  const auto& r = db.relation("R");
  const auto& t = db.relation("T");
  struct Case {
    const char* name;
    std::vector<ra::JoinAtom> atoms;
  } cases[] = {
      {"eq", {{2, ra::Cmp::kEq, 1}}},
      {"eq+lt", {{2, ra::Cmp::kEq, 1}, {1, ra::Cmp::kLt, 2}}},
      {"pure-lt", {{1, ra::Cmp::kLt, 2}}},
      {"eq+lt+neq",
       {{2, ra::Cmp::kEq, 1}, {1, ra::Cmp::kLt, 2}, {1, ra::Cmp::kNeq, 1}}},
  };
  for (const auto& c : cases) {
    sa::SemijoinKernel kernel;
    util::WallTimer timer;
    const auto out = sa::Semijoin(r, t, c.atoms, &kernel);
    std::printf("  %-10s -> kernel %-15s  %8.3f ms  (%zu rows kept)\n", c.name,
                sa::SemijoinKernelToString(kernel), timer.ElapsedMillis(),
                out.size());
  }
  std::printf("\n");
}

void BM_SemijoinEval(benchmark::State& state) {
  auto semi = ra::SemiJoin(ra::Rel("R", 2), ra::Rel("T", 2), {{2, ra::Cmp::kEq, 1}});
  const auto db = Family(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ra::Eval(semi, db));
  }
}
BENCHMARK(BM_SemijoinEval)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_JoinEmbeddingEval(benchmark::State& state) {
  auto join = ra::Project(
      ra::Join(ra::Rel("R", 2), ra::Rel("T", 2), {{2, ra::Cmp::kEq, 1}}), {1, 2});
  const auto db = Family(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ra::Eval(join, db));
  }
}
BENCHMARK(BM_JoinEmbeddingEval)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_FastSemijoinKernel(benchmark::State& state) {
  const auto db = Family(static_cast<std::size_t>(state.range(0)));
  const std::vector<ra::JoinAtom> atoms = {{2, ra::Cmp::kEq, 1},
                                           {1, ra::Cmp::kLt, 2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa::Semijoin(db.relation("R"), db.relation("T"), atoms));
  }
}
BENCHMARK(BM_FastSemijoinKernel)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_FullReducerFixpoint(benchmark::State& state) {
  const auto base = Family(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::Database db = base;
    benchmark::DoNotOptimize(
        sa::ReduceToFixpoint(&db, {{"R", 2, "T", 1}, {"T", 2, "R", 1}}));
  }
}
BENCHMARK(BM_FullReducerFixpoint)->Arg(8000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSemijoinVsJoinTable();
  PrintKernelTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
