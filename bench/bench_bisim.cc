// Experiments E8a/E9/E14: the bisimulation machinery — verifying the
// paper's explicit bisimulations, deciding bisimilarity on the scaled
// division families (Fig. 5 generalized), and the checker's cost profile.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bisim/bisimulation.h"
#include "setjoin/division.h"
#include "util/timer.h"
#include "witness/figures.h"

namespace {

using namespace setalg;

void PrintFamilyTable() {
  std::printf("== E8/E14: scaled Fig. 5 families A(n,m) ~ B(n,m) ==\n");
  std::printf("%-10s  %-8s  %-10s  %-10s  %-10s  %-8s  %-8s\n", "(n,m)", "|A|+|B|",
              "candidates", "survivors", "passes", "bisim?", "ms");
  for (const auto& [n, m] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 2}, {4, 3}, {8, 4}, {16, 4}, {24, 6}}) {
    const auto a = witness::MakeDivisionFamilyA(n, m);
    const auto b = witness::MakeDivisionFamilyB(n, m);
    util::WallTimer timer;
    bisim::BisimulationChecker checker(&a, &b, {});
    const bool bisimilar = checker.AreBisimilar(core::Tuple{1}, core::Tuple{1});
    const double ms = timer.ElapsedMillis();
    std::printf("(%3zu,%3zu)  %-8zu  %-10zu  %-10zu  %-10zu  %-8s  %-8.2f\n", n, m,
                a.size() + b.size(), checker.initial_candidates(),
                checker.surviving_candidates(), checker.refinement_passes(),
                bisimilar ? "yes" : "NO", ms);
    // Division separates every pair even though they are bisimilar.
    const auto div_a = setjoin::Divide(a.relation("R"), a.relation("S"),
                                       setjoin::DivisionAlgorithm::kHashDivision);
    const auto div_b = setjoin::Divide(b.relation("R"), b.relation("S"),
                                       setjoin::DivisionAlgorithm::kHashDivision);
    if (div_a.size() != n || !div_b.empty()) {
      std::printf("  !! division did not separate — unexpected\n");
    }
  }
  std::printf("(expected shape: every pair bisimilar — hence SA=-inseparable,\n"
              " Corollary 14 — while division separates them; Proposition 26)\n\n");
}

void PrintExplicitVerification() {
  std::printf("== E3/E8/E9: the paper's explicit bisimulations verify ==\n");
  {
    const auto a = witness::MakeFig3A();
    const auto b = witness::MakeFig3B();
    std::printf("  Example 12 (Fig. 3): %s\n",
                bisim::VerifyBisimulation(witness::MakeFig3Bisimulation(), a, b, {})
                        .empty()
                    ? "VALID"
                    : "INVALID");
  }
  {
    const auto a = witness::MakeFig5A();
    const auto b = witness::MakeFig5B();
    std::printf("  Proposition 26 (Fig. 5): %s\n",
                bisim::VerifyBisimulation(witness::MakeFig5Bisimulation(), a, b, {})
                        .empty()
                    ? "VALID"
                    : "INVALID");
  }
  {
    const auto beer = witness::MakeBeerExample();
    std::printf("  Section 4.1 (Fig. 6): %s\n",
                bisim::VerifyBisimulation(witness::MakeFig6Bisimulation(beer), beer.a,
                                          beer.b, {})
                        .empty()
                    ? "VALID"
                    : "INVALID");
  }
  std::printf("\n");
}

void BM_CheckerOnFamily(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = witness::MakeDivisionFamilyA(n, 4);
  const auto b = witness::MakeDivisionFamilyB(n, 4);
  for (auto _ : state) {
    bisim::BisimulationChecker checker(&a, &b, {});
    benchmark::DoNotOptimize(checker.AreBisimilar(core::Tuple{1}, core::Tuple{1}));
  }
}
BENCHMARK(BM_CheckerOnFamily)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_VerifyExplicitFig5(benchmark::State& state) {
  const auto a = witness::MakeFig5A();
  const auto b = witness::MakeFig5B();
  const auto isos = witness::MakeFig5Bisimulation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bisim::VerifyBisimulation(isos, a, b, {}));
  }
}
BENCHMARK(BM_VerifyExplicitFig5)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintExplicitVerification();
  PrintFamilyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
