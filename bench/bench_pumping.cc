// Experiment E7: the Lemma 24 pumping construction on the paper's Fig. 4
// running example — database family D_n with |D_n| ≤ 2|D|·n whose join
// output has at least n² tuples.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ra/eval.h"
#include "util/timer.h"
#include "witness/figures.h"
#include "witness/pumping.h"

namespace {

using namespace setalg;

witness::PumpingSpec Fig4Spec(const witness::Fig4Example& example) {
  witness::PumpingSpec spec;
  spec.expr = example.expr;
  spec.db = &example.db;
  spec.a_witness = example.a_witness;
  spec.b_witness = example.b_witness;
  return spec;
}

void PrintPumpingTable() {
  const auto example = witness::MakeFig4Example();
  const auto spec = Fig4Spec(example);
  std::printf("== E7 / Lemma 24 on Fig. 4: E = (R >< T) >< (S >< T) ==\n");
  std::printf("%-6s  %-8s  %-10s  %-10s  %-10s\n", "n", "|D_n|", "bound 2|D|n",
              "|E(D_n)|", "n^2");
  const std::size_t base = example.db.size();
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto dn = witness::BuildPumpedDatabase(spec, n);
    const auto out = ra::Eval(example.expr, dn);
    std::printf("%-6zu  %-8zu  %-10zu  %-10zu  %-10zu\n", n, dn.size(),
                2 * base * n, out.size(), n * n);
  }
  std::printf("(expected shape: |D_n| grows linearly within the 2|D|n bound\n"
              " while the output meets the n^2 lower bound — the heart of the\n"
              " quadratic dichotomy)\n\n");
}

void BM_BuildPumpedDatabase(benchmark::State& state) {
  const auto example = witness::MakeFig4Example();
  const auto spec = Fig4Spec(example);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        witness::BuildPumpedDatabase(spec, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_BuildPumpedDatabase)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_EvaluatePumpedExpression(benchmark::State& state) {
  const auto example = witness::MakeFig4Example();
  const auto spec = Fig4Spec(example);
  const auto dn =
      witness::BuildPumpedDatabase(spec, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ra::Eval(example.expr, dn));
  }
}
BENCHMARK(BM_EvaluatePumpedExpression)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintPumpingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
