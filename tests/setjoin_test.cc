#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "engine/engine.h"
#include "setjoin/grouped.h"
#include "setjoin/setjoin.h"
#include "test_util.h"
#include "witness/figures.h"
#include "workload/generators.h"

namespace setalg::setjoin {
namespace {

using core::Relation;
using core::Value;
using setalg::testing::MakeRel;

// Brute-force references.
Relation ReferenceContainment(const GroupedRelation& r, const GroupedRelation& s) {
  Relation out(2);
  for (const auto& rg : r.groups()) {
    for (const auto& sg : s.groups()) {
      if (SortedSubset(sg.elements, rg.elements)) out.Add({rg.key, sg.key});
    }
  }
  return out;
}

Relation ReferenceEquality(const GroupedRelation& r, const GroupedRelation& s) {
  Relation out(2);
  for (const auto& rg : r.groups()) {
    for (const auto& sg : s.groups()) {
      if (rg.elements == sg.elements) out.Add({rg.key, sg.key});
    }
  }
  return out;
}

Relation ReferenceOverlap(const GroupedRelation& r, const GroupedRelation& s) {
  Relation out(2);
  for (const auto& rg : r.groups()) {
    for (const auto& sg : s.groups()) {
      if (SortedIntersects(rg.elements, sg.elements)) out.Add({rg.key, sg.key});
    }
  }
  return out;
}

TEST(SetContainment, PaperFigure1Join) {
  // Person ⋈_{Symptom ⊇ Symptom} Disease = {(An,flu),(Bob,flu),(Bob,Lyme)}.
  const auto example = witness::MakeMedicalExample();
  const auto& person = example.db.relation("Person");
  const auto& disease = example.db.relation("Disease");
  Relation expected(2);
  expected.Add({example.names.Code("An"), example.names.Code("flu")});
  expected.Add({example.names.Code("Bob"), example.names.Code("flu")});
  expected.Add({example.names.Code("Bob"), example.names.Code("Lyme")});
  for (auto algorithm : AllContainmentAlgorithms()) {
    EXPECT_EQ(SetContainmentJoin(person, disease, algorithm), expected)
        << ContainmentAlgorithmToString(algorithm);
  }
}

TEST(SetContainment, HandlesNoMatches) {
  const Relation r = MakeRel(2, {{1, 5}});
  const Relation s = MakeRel(2, {{9, 6}});
  for (auto algorithm : AllContainmentAlgorithms()) {
    EXPECT_TRUE(SetContainmentJoin(r, s, algorithm).empty())
        << ContainmentAlgorithmToString(algorithm);
  }
}

TEST(SetContainment, EmptySidesProduceNothing) {
  const Relation nonempty = MakeRel(2, {{1, 5}});
  const Relation empty(2);
  for (auto algorithm : AllContainmentAlgorithms()) {
    EXPECT_TRUE(SetContainmentJoin(empty, nonempty, algorithm).empty())
        << ContainmentAlgorithmToString(algorithm);
    EXPECT_TRUE(SetContainmentJoin(nonempty, empty, algorithm).empty())
        << ContainmentAlgorithmToString(algorithm);
    EXPECT_TRUE(SetContainmentJoin(empty, empty, algorithm).empty())
        << ContainmentAlgorithmToString(algorithm);
  }
}

TEST(SetContainment, AllDuplicateTuplesCollapseUnderSetSemantics) {
  Relation r(2), s(2);
  for (int copies = 0; copies < 4; ++copies) {
    r.Add({1, 5});
    r.Add({1, 6});
    s.Add({9, 5});
  }
  for (auto algorithm : AllContainmentAlgorithms()) {
    EXPECT_EQ(SetContainmentJoin(r, s, algorithm), MakeRel(2, {{1, 9}}))
        << ContainmentAlgorithmToString(algorithm);
  }
}

TEST(SetContainment, SingleElementSetsEverywhere) {
  // Every group is a singleton over a one-value domain: all pairs match,
  // so the output is the full cross product of the keys.
  const Relation r = MakeRel(2, {{1, 7}, {2, 7}, {3, 7}});
  const Relation s = MakeRel(2, {{8, 7}, {9, 7}});
  for (auto algorithm : AllContainmentAlgorithms()) {
    EXPECT_EQ(SetContainmentJoin(r, s, algorithm),
              MakeRel(2, {{1, 8}, {1, 9}, {2, 8}, {2, 9}, {3, 8}, {3, 9}}))
        << ContainmentAlgorithmToString(algorithm);
  }
}

TEST(SetContainment, NoGroupContainsDespiteSharedElements) {
  // Every S set shares an element with every R set but none is contained —
  // signature and inverted-index pruning must not over-admit.
  const Relation r = MakeRel(2, {{1, 5}, {1, 6}, {2, 6}, {2, 7}});
  const Relation s = MakeRel(2, {{8, 5}, {8, 7}, {9, 6}, {9, 8}});
  for (auto algorithm : AllContainmentAlgorithms()) {
    EXPECT_TRUE(SetContainmentJoin(r, s, algorithm).empty())
        << ContainmentAlgorithmToString(algorithm);
  }
}

TEST(SetContainment, ReflexiveContainment) {
  const Relation r = MakeRel(2, {{1, 5}, {1, 6}});
  for (auto algorithm : AllContainmentAlgorithms()) {
    EXPECT_EQ(SetContainmentJoin(r, r, algorithm), MakeRel(2, {{1, 1}}))
        << ContainmentAlgorithmToString(algorithm);
  }
}

class ContainmentAgreementTest
    : public ::testing::TestWithParam<ContainmentAlgorithm> {};

TEST_P(ContainmentAgreementTest, MatchesReferenceAcrossWorkloads) {
  const auto algorithm = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    workload::SetJoinConfig config;
    config.r_groups = 30;
    config.s_groups = 25;
    config.r_group_size = 8;
    config.s_group_size = 3;
    config.domain_size = 20;
    config.containment_fraction = 0.3;
    config.seed = seed;
    const auto instance = workload::MakeSetJoinInstance(config);
    const auto r = GroupedRelation::FromBinary(instance.r);
    const auto s = GroupedRelation::FromBinary(instance.s);
    EXPECT_EQ(SetContainmentJoin(r, s, algorithm), ReferenceContainment(r, s))
        << "seed " << seed;
  }
}

TEST_P(ContainmentAgreementTest, MatchesReferenceUnderSkew) {
  const auto algorithm = GetParam();
  workload::SetJoinConfig config;
  config.r_groups = 25;
  config.s_groups = 25;
  config.r_group_size = 6;
  config.s_group_size = 2;
  config.domain_size = 15;
  config.zipf_skew = 1.2;
  config.seed = 77;
  const auto instance = workload::MakeSetJoinInstance(config);
  const auto r = GroupedRelation::FromBinary(instance.r);
  const auto s = GroupedRelation::FromBinary(instance.s);
  EXPECT_EQ(SetContainmentJoin(r, s, algorithm), ReferenceContainment(r, s));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ContainmentAgreementTest,
                         ::testing::ValuesIn(AllContainmentAlgorithms()),
                         [](const ::testing::TestParamInfo<ContainmentAlgorithm>& i) {
                           std::string name = ContainmentAlgorithmToString(i.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// ---------------------------------------------------------------------------
// Set-equality join.
// ---------------------------------------------------------------------------

TEST(SetEquality, BothAlgorithmsAgreeWithReference) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    workload::SetJoinConfig config;
    config.r_groups = 25;
    config.s_groups = 25;
    config.r_group_size = 3;
    config.s_group_size = 3;
    config.domain_size = 6;  // Small domain: equal sets actually occur.
    config.seed = seed;
    const auto instance = workload::MakeSetJoinInstance(config);
    const auto r = GroupedRelation::FromBinary(instance.r);
    const auto s = GroupedRelation::FromBinary(instance.s);
    const auto expected = ReferenceEquality(r, s);
    EXPECT_EQ(SetEqualityJoin(r, s, EqualityJoinAlgorithm::kNestedLoop), expected);
    EXPECT_EQ(SetEqualityJoin(r, s, EqualityJoinAlgorithm::kCanonicalHash), expected);
    EXPECT_FALSE(expected.empty()) << "degenerate workload; lower the domain";
  }
}

TEST(SetEquality, DistinguishesProperSubsets) {
  const Relation r = MakeRel(2, {{1, 5}, {1, 6}});
  const Relation s = MakeRel(2, {{9, 5}});
  EXPECT_TRUE(
      SetEqualityJoin(r, s, EqualityJoinAlgorithm::kCanonicalHash).empty());
}

TEST(SetEquality, EdgeShapesAgreeAcrossAlgorithms) {
  const Relation empty(2);
  Relation duplicates(2);
  for (int copies = 0; copies < 3; ++copies) {
    duplicates.Add({1, 5});
    duplicates.Add({2, 5});
  }
  const Relation singletons = MakeRel(2, {{7, 5}, {8, 5}});
  for (auto algorithm : {EqualityJoinAlgorithm::kNestedLoop,
                         EqualityJoinAlgorithm::kCanonicalHash}) {
    // Empty sides.
    EXPECT_TRUE(SetEqualityJoin(empty, singletons, algorithm).empty());
    EXPECT_TRUE(SetEqualityJoin(singletons, empty, algorithm).empty());
    // All-duplicate tuples collapse: both R keys still equal both S keys.
    EXPECT_EQ(SetEqualityJoin(duplicates, singletons, algorithm),
              MakeRel(2, {{1, 7}, {1, 8}, {2, 7}, {2, 8}}))
        << EqualityJoinAlgorithmToString(algorithm);
  }
}

TEST(SetOverlap, EdgeShapes) {
  const Relation empty(2);
  const Relation r = MakeRel(2, {{1, 5}});
  EXPECT_TRUE(SetOverlapJoin(empty, r).empty());
  EXPECT_TRUE(SetOverlapJoin(r, empty).empty());
  Relation duplicates(2);
  for (int copies = 0; copies < 3; ++copies) duplicates.Add({9, 5});
  EXPECT_EQ(SetOverlapJoin(r, duplicates), MakeRel(2, {{1, 9}}));
}

TEST(SetEquality, OutputCanBeQuadratic) {
  // All groups share one set: |output| = groups². (Footnote 1: the result
  // size alone can be quadratic.)
  Relation r(2), s(2);
  for (Value g = 1; g <= 10; ++g) {
    r.Add({g, 100});
    s.Add({g, 100});
  }
  const auto out = SetEqualityJoin(r, s, EqualityJoinAlgorithm::kCanonicalHash);
  EXPECT_EQ(out.size(), 100u);
}

// ---------------------------------------------------------------------------
// Set-overlap join.
// ---------------------------------------------------------------------------

TEST(SetOverlap, MatchesReference) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    workload::SetJoinConfig config;
    config.r_groups = 20;
    config.s_groups = 20;
    config.r_group_size = 5;
    config.s_group_size = 5;
    config.domain_size = 30;
    config.seed = seed;
    const auto instance = workload::MakeSetJoinInstance(config);
    const auto r = GroupedRelation::FromBinary(instance.r);
    const auto s = GroupedRelation::FromBinary(instance.s);
    EXPECT_EQ(SetOverlapJoin(r, s), ReferenceOverlap(r, s)) << "seed " << seed;
  }
}

TEST(SetOverlap, IsTheEquijoinOfThePaper) {
  // The paper: "a set join with predicate 'intersection nonempty' boils
  // down to an ordinary equijoin" — π_{A,C}(R ⋈_{B=D} S).
  const Relation r = MakeRel(2, {{1, 5}, {2, 6}});
  const Relation s = MakeRel(2, {{8, 5}, {9, 7}});
  EXPECT_EQ(SetOverlapJoin(r, s), MakeRel(2, {{1, 8}}));
}

TEST(SetOverlap, DisjointSetsProduceNothing) {
  const Relation r = MakeRel(2, {{1, 5}});
  const Relation s = MakeRel(2, {{9, 6}});
  EXPECT_TRUE(SetOverlapJoin(r, s).empty());
}

// ---------------------------------------------------------------------------
// Cross-predicate sanity: equality ⊆ containment ⊆ overlap (for nonempty
// sets).
// ---------------------------------------------------------------------------

TEST(SetJoins, PredicateInclusionChain) {
  workload::SetJoinConfig config;
  config.r_groups = 20;
  config.s_groups = 20;
  config.r_group_size = 4;
  config.s_group_size = 3;
  config.domain_size = 10;
  config.seed = 5;
  const auto instance = workload::MakeSetJoinInstance(config);
  const auto r = GroupedRelation::FromBinary(instance.r);
  const auto s = GroupedRelation::FromBinary(instance.s);
  const auto equal = SetEqualityJoin(r, s, EqualityJoinAlgorithm::kCanonicalHash);
  const auto contains =
      SetContainmentJoin(r, s, ContainmentAlgorithm::kInvertedIndex);
  const auto overlap = SetOverlapJoin(r, s);
  EXPECT_EQ(core::Intersect(equal, contains), equal);
  EXPECT_EQ(core::Intersect(contains, overlap), contains);
}

// ---------------------------------------------------------------------------
// Partition-boundary edge cases: the engine's partitioned set joins split
// the left side's groups by key hash and share the right side; shapes
// where that degenerates (more partitions than groups, one-key skew,
// empty partitions, contained sets bigger than any left group) must agree
// with the serial kernels for every algorithm, serial and parallel.
// ---------------------------------------------------------------------------

// Runs all three set joins over (r, s) through the engine's operators at
// partition widths {1, 2, 16} and threads {1, 4}, expecting the
// brute-force references everywhere.
void ExpectPartitionedSetJoinsAgree(const Relation& r, const Relation& s,
                                    const char* what) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  core::Database db(schema);
  db.SetRelation("R", r);
  db.SetRelation("S", s);
  const auto gr = AsGrouped(r);
  const auto gs = AsGrouped(s);

  auto check = [&](engine::PhysicalOpPtr root, const Relation& expected,
                   const std::string& label) {
    // The op was built with an explicit partition width; drive it at
    // threads 1 (inline fan-out) and 4 (real pool).
    for (std::size_t threads : {1u, 4u}) {
      engine::PhysicalPlan plan;
      plan.root = root;
      engine::EngineOptions options;
      options.threads = threads;
      auto run = engine::Engine(options).Run(plan, db);
      ASSERT_TRUE(run.ok()) << what << " " << label << ": " << run.error();
      EXPECT_EQ(run->relation, expected)
          << what << " " << label << " threads " << threads;
    }
  };

  for (std::size_t partitions : {1u, 2u, 16u}) {
    const std::string suffix = " partitions " + std::to_string(partitions);
    for (auto algorithm : AllContainmentAlgorithms()) {
      check(engine::MakeSetContainmentJoin(engine::MakeScan("R", 2),
                                           engine::MakeScan("S", 2), algorithm,
                                           nullptr, partitions),
            ReferenceContainment(gr, gs),
            std::string("containment ") + ContainmentAlgorithmToString(algorithm) +
                suffix);
    }
    for (auto algorithm :
         {EqualityJoinAlgorithm::kNestedLoop, EqualityJoinAlgorithm::kCanonicalHash}) {
      check(engine::MakeSetEqualityJoin(engine::MakeScan("R", 2),
                                        engine::MakeScan("S", 2), algorithm, nullptr,
                                        partitions),
            ReferenceEquality(gr, gs),
            std::string("equality ") + EqualityJoinAlgorithmToString(algorithm) +
                suffix);
    }
    check(engine::MakeSetOverlapJoin(engine::MakeScan("R", 2),
                                     engine::MakeScan("S", 2), nullptr, partitions),
          ReferenceOverlap(gr, gs), "overlap" + suffix);
  }
}

TEST(SetJoinPartitionEdges, MorePartitionsThanGroups) {
  ExpectPartitionedSetJoinsAgree(
      MakeRel(2, {{1, 5}, {1, 6}, {2, 5}, {3, 6}, {3, 7}}),
      MakeRel(2, {{9, 5}, {9, 6}, {8, 6}}), "more partitions than groups");
}

TEST(SetJoinPartitionEdges, AllLeftGroupsHashToOnePartition) {
  // One left key: the whole containing side lands in a single partition
  // while the others run the kernels on empty grouped views.
  ExpectPartitionedSetJoinsAgree(MakeRel(2, {{5, 1}, {5, 2}, {5, 3}}),
                                 MakeRel(2, {{7, 1}, {7, 2}, {8, 3}, {9, 4}}),
                                 "single-key left side");
}

TEST(SetJoinPartitionEdges, EmptySidesGiveEmptyPartitionsEverywhere) {
  ExpectPartitionedSetJoinsAgree(Relation(2), MakeRel(2, {{9, 5}}), "empty left");
  ExpectPartitionedSetJoinsAgree(MakeRel(2, {{1, 5}}), Relation(2), "empty right");
  ExpectPartitionedSetJoinsAgree(Relation(2), Relation(2), "both empty");
}

TEST(SetJoinPartitionEdges, ContainedSetsBiggerThanEveryLeftGroup) {
  // Every right set is larger than every left group, so containment and
  // equality are empty in every partition; overlap still fires.
  ExpectPartitionedSetJoinsAgree(
      MakeRel(2, {{1, 5}, {2, 6}, {3, 7}}),
      MakeRel(2, {{8, 5}, {8, 6}, {8, 7}, {9, 5}, {9, 9}, {9, 10}}),
      "right sets bigger than left groups");
}

TEST(SetJoinPartitionEdges, DuplicateHeavyInputsCollapseIdenticallyWhenPartitioned) {
  ExpectPartitionedSetJoinsAgree(
      MakeRel(2, {{1, 5}, {1, 5}, {1, 6}, {2, 5}, {2, 5}}),
      MakeRel(2, {{9, 5}, {9, 5}, {8, 6}}), "duplicate-heavy");
}

TEST(Grouped, AsGroupedIsTheSharedGroupingHelper) {
  const auto r = testing::MakeRel(2, {{2, 9}, {1, 5}, {1, 3}});
  const auto via_helper = AsGrouped(r);
  const auto via_factory = GroupedRelation::FromBinary(r);
  ASSERT_EQ(via_helper.NumGroups(), via_factory.NumGroups());
  for (std::size_t i = 0; i < via_helper.NumGroups(); ++i) {
    EXPECT_EQ(via_helper.group(i).key, via_factory.group(i).key);
    EXPECT_EQ(via_helper.group(i).elements, via_factory.group(i).elements);
  }
  // Keyed on column 2 the roles flip.
  EXPECT_EQ(AsGrouped(r, 2).NumGroups(), 3u);
}

}  // namespace
}  // namespace setalg::setjoin
