#include <gtest/gtest.h>

#include "extalg/extended.h"
#include "setjoin/division.h"
#include "test_util.h"
#include "workload/generators.h"

namespace setalg::extalg {
namespace {

using core::Relation;
using setalg::testing::MakeRel;

TEST(GroupCount, CountsGroupCardinalities) {
  const Relation r = MakeRel(2, {{1, 5}, {1, 6}, {2, 5}});
  EXPECT_EQ(GroupCount(r, {1}), MakeRel(2, {{1, 2}, {2, 1}}));
}

TEST(GroupCount, GroupByMultipleColumns) {
  const Relation r = MakeRel(3, {{1, 5, 9}, {1, 5, 8}, {1, 6, 9}});
  EXPECT_EQ(GroupCount(r, {1, 2}), MakeRel(3, {{1, 5, 2}, {1, 6, 1}}));
}

TEST(GroupCount, GlobalCountOnEmptyInputIsZero) {
  EXPECT_EQ(GroupCount(Relation(2), {}), MakeRel(1, {{0}}));
}

TEST(GroupCount, GlobalCountCountsTuples) {
  const Relation r = MakeRel(2, {{1, 5}, {2, 6}, {2, 7}});
  EXPECT_EQ(GroupCount(r, {}), MakeRel(1, {{3}}));
}

TEST(GroupCount, GroupingByAllColumnsCountsOnes) {
  const Relation r = MakeRel(2, {{1, 5}, {2, 6}});
  EXPECT_EQ(GroupCount(r, {1, 2}), MakeRel(3, {{1, 5, 1}, {2, 6, 1}}));
}

TEST(SortBy, ReturnsSameSet) {
  const Relation r = MakeRel(2, {{2, 1}, {1, 2}});
  EXPECT_EQ(SortBy(r, {2}), r);
}

// ---------------------------------------------------------------------------
// The Section 5 linear division pipelines.
// ---------------------------------------------------------------------------

TEST(LinearDivision, MatchesReferenceAlgorithms) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    workload::DivisionConfig config;
    config.num_groups = 40;
    config.group_size = 6;
    config.domain_size = 24;
    config.divisor_size = 3;
    config.match_fraction = 0.4;
    config.seed = seed;
    const auto instance = workload::MakeDivisionInstance(config);
    EXPECT_EQ(ContainmentDivisionLinear(instance.r, instance.s),
              setjoin::Divide(instance.r, instance.s,
                              setjoin::DivisionAlgorithm::kHashDivision))
        << "seed " << seed;
    EXPECT_EQ(EqualityDivisionLinear(instance.r, instance.s),
              setjoin::DivideEqual(instance.r, instance.s,
                                   setjoin::DivisionAlgorithm::kHashDivision))
        << "seed " << seed;
  }
}

TEST(LinearDivision, EmptyDivisorConventions) {
  const Relation r = MakeRel(2, {{1, 7}, {2, 8}});
  const Relation s(1);
  EXPECT_EQ(ContainmentDivisionLinear(r, s), MakeRel(1, {{1}, {2}}));
  EXPECT_TRUE(EqualityDivisionLinear(r, s).empty());
}

TEST(LinearDivision, StepStatsAreRecorded) {
  const Relation r = MakeRel(2, {{1, 7}, {1, 8}, {2, 7}});
  const Relation s = MakeRel(1, {{7}, {8}});
  std::vector<StepStats> stats;
  const auto out = ContainmentDivisionLinear(r, s, &stats);
  EXPECT_EQ(out, MakeRel(1, {{1}}));
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats[0].name, "join R with S");
  EXPECT_EQ(stats[0].output_size, 3u);
  EXPECT_EQ(stats[1].output_size, 2u);  // Two groups with counts.
  EXPECT_EQ(stats[2].output_size, 1u);  // Global divisor count.
  EXPECT_EQ(stats[3].output_size, 1u);
}

TEST(LinearDivision, EveryStepIsLinearInTheInput) {
  // The extended-algebra pipeline's intermediates never exceed |R| + |S| —
  // the contrast with the classic RA expression (Prop. 26).
  workload::DivisionConfig config;
  config.num_groups = 100;
  config.group_size = 8;
  config.domain_size = 64;
  config.divisor_size = 6;
  config.seed = 3;
  const auto instance = workload::MakeDivisionInstance(config);
  std::vector<StepStats> stats;
  ContainmentDivisionLinear(instance.r, instance.s, &stats);
  EXPECT_LE(MaxStepSize(stats), instance.r.size() + instance.s.size());

  stats.clear();
  EqualityDivisionLinear(instance.r, instance.s, &stats);
  EXPECT_LE(MaxStepSize(stats), instance.r.size() + instance.s.size());
}

TEST(LinearDivision, QuadraticallySmallerThanClassicRa) {
  // Concrete instantiation of the paper's headline contrast on one input.
  workload::DivisionConfig config;
  config.num_groups = 200;
  config.group_size = 4;
  config.domain_size = 64;
  config.divisor_size = 20;
  config.match_fraction = 0.1;
  config.seed = 9;
  const auto instance = workload::MakeDivisionInstance(config);

  std::vector<StepStats> linear_stats;
  ContainmentDivisionLinear(instance.r, instance.s, &linear_stats);

  ra::EvalStats classic_stats;
  setjoin::Divide(instance.r, instance.s, setjoin::DivisionAlgorithm::kClassicRa,
                  &classic_stats);

  EXPECT_GT(classic_stats.max_intermediate, 4 * MaxStepSize(linear_stats));
}

TEST(MaxStepSize, EmptyStatsIsZero) { EXPECT_EQ(MaxStepSize({}), 0u); }

}  // namespace
}  // namespace setalg::extalg
