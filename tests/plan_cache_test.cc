// Cache-differential & invalidation harness for the plan cache and the
// PreparedQuery surface (engine/plan_cache.h).
//
// The property under test: the plan cache is *pure provenance*. However a
// plan reaches the executor — lowered fresh, served as a cache hit,
// re-costed after a mutation (revalidated), or re-costed with an
// algorithm swapped in place (repicked) — the result relation and the
// per-operator PlanStats (labels, sources, distinct output cardinalities,
// aggregates, estimates, recorded choices, batch/partition accounting)
// must be bit-identical to a fresh un-cached Engine::Run under the same
// options. The harness interleaves randomized database mutations
// (in-place inserts, deletes, bulk loads) with repeated prepared and
// transparently-cached executions and checks that identity after every
// mutation, across Reference/planned/CostBased × materializing/batched ×
// threads {1, 2, 7}.
//
// Like tests/batch_exec_test.cc, the suite reads SETALG_BATCH_SEED
// (default 1) as the base of its seed range; CI runs it under ASan/UBSan
// and TSan across a fixed seed matrix.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/plan_cache.h"
#include "engine/result_cache.h"
#include "engine/shared_cache.h"
#include "ra/expr.h"
#include "setjoin/division.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace setalg::engine {
namespace {

using core::Relation;
using setalg::testing::MakeRel;

std::uint64_t BaseSeed() {
  const char* env = std::getenv("SETALG_BATCH_SEED");
  if (env == nullptr) return 1;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  return (end == env || value == 0) ? 1 : static_cast<std::uint64_t>(value);
}

// Bit-identical PlanStats comparison: everything a run reports except the
// cache provenance field itself.
void ExpectIdenticalStats(const PlanStats& expected, const PlanStats& actual,
                          const std::string& context) {
  EXPECT_EQ(actual.max_intermediate, expected.max_intermediate) << context;
  EXPECT_EQ(actual.total_intermediate, expected.total_intermediate) << context;
  EXPECT_EQ(actual.join_rows_emitted, expected.join_rows_emitted) << context;
  EXPECT_EQ(actual.batch_size, expected.batch_size) << context;
  EXPECT_EQ(actual.batches_emitted, expected.batches_emitted) << context;
  EXPECT_EQ(actual.peak_batch_bytes, expected.peak_batch_bytes) << context;
  EXPECT_EQ(actual.threads_used, expected.threads_used) << context;
  EXPECT_EQ(actual.partitions, expected.partitions) << context;
  EXPECT_EQ(actual.rewrites, expected.rewrites) << context;
  ASSERT_EQ(actual.choices.size(), expected.choices.size()) << context;
  for (std::size_t i = 0; i < expected.choices.size(); ++i) {
    EXPECT_EQ(actual.choices[i].site, expected.choices[i].site)
        << context << " choice " << i;
    EXPECT_EQ(actual.choices[i].algorithm, expected.choices[i].algorithm)
        << context << " choice " << i;
  }
  ASSERT_EQ(actual.ops.size(), expected.ops.size()) << context;
  for (std::size_t i = 0; i < expected.ops.size(); ++i) {
    const OpStats& want = expected.ops[i];
    const OpStats& got = actual.ops[i];
    EXPECT_EQ(got.label, want.label) << context << " op " << i;
    EXPECT_EQ(got.source, want.source) << context << " op " << i;
    EXPECT_EQ(got.output_size, want.output_size)
        << context << " op " << i << " (" << want.label << ")";
    EXPECT_EQ(got.has_estimate, want.has_estimate) << context << " op " << i;
    EXPECT_DOUBLE_EQ(got.estimated_output, want.estimated_output)
        << context << " op " << i;
    EXPECT_DOUBLE_EQ(got.estimated_cost, want.estimated_cost)
        << context << " op " << i;
  }
}

// Randomized database mutations over the division schema {R/2, S/1}: the
// three shapes the issue calls out — point inserts (mutable_relation),
// deletes (SetRelation with a subset), and bulk loads (SetRelation with a
// fresh, differently-shaped relation, the move that flips cost-based
// algorithm choices).
void MutateDatabase(core::Database* db, util::Rng* rng, std::uint64_t seed,
                    int step) {
  switch (rng->NextBounded(4)) {
    case 0: {  // Insert a few tuples into R in place.
      core::Relation* r = db->mutable_relation("R");
      const std::size_t count = 1 + rng->NextBounded(4);
      for (std::size_t i = 0; i < count; ++i) {
        r->Add({static_cast<core::Value>(rng->NextBounded(30) + 1),
                static_cast<core::Value>(rng->NextBounded(20) + 1)});
      }
      break;
    }
    case 1: {  // Delete ~half of R.
      const core::Relation& r = db->relation("R");
      core::Relation kept(2);
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (rng->NextBool()) kept.Add(r.tuple(i));
      }
      db->SetRelation("R", std::move(kept));
      break;
    }
    case 2: {  // Bulk-load R with a different shape (flips cost choices).
      const std::size_t rows = 60 + 40 * rng->NextBounded(4);
      const std::size_t domain = 4 + rng->NextBounded(40);
      db->SetRelation(
          "R", workload::UniformBinaryRelation(
                   rows, domain, seed * 1000 + static_cast<std::uint64_t>(step)));
      break;
    }
    default: {  // Replace the divisor.
      core::Relation s(1);
      const std::size_t size = 1 + rng->NextBounded(6);
      for (std::size_t i = 0; i < size; ++i) {
        s.Add({static_cast<core::Value>(rng->NextBounded(20) + 1)});
      }
      db->SetRelation("S", std::move(s));
      break;
    }
  }
}

struct Mode {
  std::string name;
  EngineOptions options;
};

std::vector<Mode> AllModes() {
  return {{"reference", EngineOptions::Reference()},
          {"planned", EngineOptions{}},
          {"cost-based", EngineOptions::CostBased()}};
}

// ---------------------------------------------------------------------------
// The headline harness: randomized mutation/execution interleavings.
// ---------------------------------------------------------------------------

TEST(PlanCache, CacheDifferentialUnderRandomizedMutations) {
  constexpr std::size_t kThreadCounts[] = {1, 2, 7};
  const std::uint64_t base = BaseSeed();
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);

  for (std::uint64_t seed = base; seed < base + 2; ++seed) {
    // The workload: both division shapes (pattern-routed, re-costable)
    // plus a random SA= expression (semijoin strategy points, generic
    // operators), prepared once and replayed across every mutation.
    setalg::testing::RandomSaEqGenerator generator(schema, {1, 2, 3}, seed * 131);
    const std::vector<ra::ExprPtr> exprs = {
        setjoin::ClassicDivisionExpr("R", "S"),
        setjoin::ClassicEqualityDivisionExpr("R", "S"),
        generator.Generate(1, 3),
    };
    for (const Mode& mode : AllModes()) {
      for (std::size_t threads : kThreadCounts) {
        for (bool batched : {false, true}) {
          EngineOptions options = mode.options;
          options.batched = batched;
          options.batch_size = 7;
          options.threads = threads;
          EngineOptions cached_options = options;
          cached_options.plan_cache_entries = 8;
          const Engine cached(cached_options);
          const Engine fresh(options);  // Replans on every Run.
          const std::string what = mode.name + (batched ? " batched" : "") +
                                   " threads=" + std::to_string(threads) +
                                   " seed=" + std::to_string(seed);

          auto db = setalg::testing::RandomDatabase(schema, 40, 12, seed);
          std::vector<PreparedQuery> prepared;
          for (const auto& expr : exprs) {
            auto handle = cached.Prepare(expr, db);
            ASSERT_TRUE(handle.ok()) << what << ": " << handle.error();
            prepared.push_back(std::move(*handle));
          }

          util::Rng rng(seed * 977 + threads * 31 + (batched ? 7 : 0));
          for (int step = 0; step < 5; ++step) {
            MutateDatabase(&db, &rng, seed, step);
            for (std::size_t i = 0; i < exprs.size(); ++i) {
              const std::string context =
                  what + " step=" + std::to_string(step) + " expr=" +
                  std::to_string(i);
              auto want = fresh.Run(exprs[i], db);
              ASSERT_TRUE(want.ok()) << context << ": " << want.error();
              ASSERT_EQ(want->stats.cache, CacheOutcome::kUncached);

              // First cached touch after the mutation: transparent path.
              auto through_cache = cached.Run(exprs[i], db);
              ASSERT_TRUE(through_cache.ok())
                  << context << ": " << through_cache.error();
              EXPECT_EQ(through_cache->relation.flat(), want->relation.flat())
                  << context << " (transparent)";
              ExpectIdenticalStats(want->stats, through_cache->stats,
                                   context + " (transparent)");
              // Something other than a fresh lowering served the run:
              // either the mutation invalidated it (revalidated/repicked)
              // or the versions happened to survive the step (hit).
              EXPECT_NE(through_cache->stats.cache, CacheOutcome::kUncached)
                  << context;
              EXPECT_NE(through_cache->stats.cache, CacheOutcome::kMiss)
                  << context;

              // The prepared handle shares the entry: by now revalidated,
              // so executing it must be a pure hit — and still identical.
              auto via_handle = cached.Run(prepared[i], db);
              ASSERT_TRUE(via_handle.ok()) << context << ": " << via_handle.error();
              EXPECT_EQ(via_handle->relation.flat(), want->relation.flat())
                  << context << " (prepared)";
              ExpectIdenticalStats(want->stats, via_handle->stats,
                                   context + " (prepared)");
              EXPECT_EQ(via_handle->stats.cache, CacheOutcome::kHit) << context;
            }
          }
          // Every run after the warm-up Prepares was served by the cache.
          const PlanCache* cache = cached.plan_cache();
          ASSERT_NE(cache, nullptr) << what;
          EXPECT_EQ(cache->stats().misses, exprs.size()) << what;
          EXPECT_GT(cache->stats().hits, 0u) << what;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Outcome provenance: miss → hit → revalidated/repicked transitions.
// ---------------------------------------------------------------------------

TEST(PlanCache, OutcomeTransitionsAcrossMutations) {
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {1, 20}, {2, 10}, {3, 20}}), MakeRel(1, {{10}, {20}}));
  EngineOptions options = EngineOptions::CostBased();
  options.plan_cache_entries = 4;
  const Engine engine(options);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto first = engine.Run(expr, db);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first->stats.cache, CacheOutcome::kMiss);

  auto second = engine.Run(expr, db);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.cache, CacheOutcome::kHit);

  // A structurally equal but distinct tree shares the entry.
  auto clone = engine.Run(setjoin::ClassicDivisionExpr("R", "S"), db);
  ASSERT_TRUE(clone.ok());
  EXPECT_EQ(clone->stats.cache, CacheOutcome::kHit);

  // Any mutation moves the version vector: the next run re-costs.
  db.mutable_relation("R")->Add({4, 10});
  auto third = engine.Run(expr, db);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->stats.cache == CacheOutcome::kRevalidated ||
              third->stats.cache == CacheOutcome::kRepicked)
      << CacheOutcomeToString(third->stats.cache);

  auto fourth = engine.Run(expr, db);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(fourth->stats.cache, CacheOutcome::kHit);

  const PlanCache::Stats& stats = engine.plan_cache()->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.revalidations, 1u);
}

// ---------------------------------------------------------------------------
// Revalidation is a re-cost, not a re-lowering: when no decision flips,
// the physical operators are the very same objects.
// ---------------------------------------------------------------------------

TEST(PlanCache, RevalidationWithoutFlipKeepsTheSamePlanObjects) {
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {2, 20}, {3, 10}}), MakeRel(1, {{10}}));
  EngineOptions options;  // Fixed algorithm: nothing can flip.
  options.plan_cache_entries = 2;
  const Engine engine(options);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto handle = engine.Prepare(expr, db);
  ASSERT_TRUE(handle.ok()) << handle.error();
  const PhysicalOp* root_before = handle->plan().root.get();
  const stats::VersionVector versions_before = handle->versions();

  db.mutable_relation("R")->Add({5, 10});
  auto run = engine.Run(*handle, db);
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_EQ(run->stats.cache, CacheOutcome::kRevalidated);
  EXPECT_EQ(handle->plan().root.get(), root_before)
      << "a flip-free revalidation must not rebuild any operator";
  EXPECT_NE(handle->versions(), versions_before)
      << "revalidation must advance the handle's version vector";
}

// ---------------------------------------------------------------------------
// Repick: a bulk load flips the cost-based division choice and the cached
// plan swaps the operator in place — sharing the untouched scans.
// ---------------------------------------------------------------------------

TEST(PlanCache, BulkLoadRepicksTheDivisionAlgorithmInPlace) {
  // Tiny instance: the cost model picks a small-input algorithm.
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {1, 20}, {2, 10}}), MakeRel(1, {{10}, {20}}));
  EngineOptions options = EngineOptions::CostBased();
  options.plan_cache_entries = 4;
  const Engine engine(options);
  const Engine fresh(EngineOptions::CostBased());
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto handle = engine.Prepare(expr, db);
  ASSERT_TRUE(handle.ok()) << handle.error();
  ASSERT_EQ(handle->plan().choice_points.size(), 1u);
  const auto small_algorithm = handle->plan().choice_points[0].division_algorithm;
  const PhysicalOp* scan_r = handle->plan().root->child(0).get();
  const PhysicalOp* scan_s = handle->plan().root->child(1).get();

  // Bulk-load to the shape the model prices for hash division (the bench
  // regime: many groups, wide domain).
  workload::DivisionConfig config;
  config.num_groups = 2000;
  config.group_size = 8;
  config.domain_size = 4000;
  config.divisor_size = 250;
  config.seed = 17;
  const auto instance = workload::MakeDivisionInstance(config);
  db.SetRelation("R", instance.r);
  db.SetRelation("S", instance.s);

  auto run = engine.Run(*handle, db);
  ASSERT_TRUE(run.ok()) << run.error();
  auto want = fresh.Run(expr, db);
  ASSERT_TRUE(want.ok()) << want.error();
  EXPECT_EQ(run->relation, want->relation);

  const auto big_algorithm = handle->plan().choice_points[0].division_algorithm;
  ASSERT_NE(big_algorithm, small_algorithm)
      << "the bulk load was chosen to flip the division decision; if the "
         "cost model changed, adjust the shapes so a flip still occurs";
  EXPECT_EQ(run->stats.cache, CacheOutcome::kRepicked);
  // The swap rebuilt only the division spine: both scans are shared.
  EXPECT_EQ(handle->plan().root->child(0).get(), scan_r);
  EXPECT_EQ(handle->plan().root->child(1).get(), scan_s);
  // The re-pick is observable exactly like a fresh lowering's choice.
  ASSERT_FALSE(run->stats.choices.empty());
  EXPECT_EQ(run->stats.choices[0].algorithm,
            setjoin::DivisionAlgorithmToString(big_algorithm));
  ASSERT_FALSE(want->stats.choices.empty());
  EXPECT_EQ(run->stats.choices[0].algorithm, want->stats.choices[0].algorithm);

  // And the flipped decision is sticky: the next run is a pure hit.
  auto again = engine.Run(*handle, db);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.cache, CacheOutcome::kHit);
}

TEST(PlanCache, RepickRechargesTheByteAccounting) {
  // A repick rewrites choice/rewrite strings, resizing the resident
  // entry in place; the cache must re-charge its byte total, or the
  // stale charge drifts on eviction and eventually underflows bytes_
  // (after which a byte-budgeted cache evicts everything forever).
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {1, 20}, {2, 10}}), MakeRel(1, {{10}, {20}}));
  EngineOptions options = EngineOptions::CostBased();
  options.plan_cache_entries = 1;
  const Engine engine(options);
  const auto division = setjoin::ClassicDivisionExpr("R", "S");

  auto handle = engine.Prepare(division, db);
  ASSERT_TRUE(handle.ok()) << handle.error();

  workload::DivisionConfig config;
  config.num_groups = 2000;
  config.group_size = 8;
  config.domain_size = 4000;
  config.divisor_size = 250;
  config.seed = 17;
  const auto instance = workload::MakeDivisionInstance(config);
  db.SetRelation("R", instance.r);
  db.SetRelation("S", instance.s);
  auto repicked = engine.Run(*handle, db);
  ASSERT_TRUE(repicked.ok());
  ASSERT_EQ(repicked->stats.cache, CacheOutcome::kRepicked);
  // The resident entry was resized in place; the cache's total must
  // track it exactly.
  EXPECT_EQ(engine.plan_cache()->bytes(), handle->approx_bytes());

  // Evicting the resized entry (capacity 1) must leave the total equal
  // to the surviving entry's charge — any drift (or a size_t wrap)
  // breaks this equality.
  auto other = engine.Prepare(ra::Project(ra::Rel("R", 2), {1}), db);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(engine.plan_cache()->size(), 1u);
  EXPECT_EQ(engine.plan_cache()->bytes(), other->approx_bytes());
}

TEST(PlanCache, DetachedHandBuiltHandlesDoNotPolluteCacheTallies) {
  // A hand-built-plan handle is never in the expression-keyed cache; its
  // runs must not inflate the cache's hit/revalidation tallies (they are
  // dashboard-facing: they count runs the cache actually served).
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {2, 20}}), MakeRel(1, {{10}}));
  EngineOptions options;
  options.plan_cache_entries = 4;
  const Engine engine(options);

  PhysicalPlan plan;
  plan.root = MakeDivision(MakeScan("R", 2), MakeScan("S", 1),
                           setjoin::DivisionAlgorithm::kHashDivision,
                           /*equality=*/false);
  auto handle = engine.Prepare(std::move(plan), db);
  ASSERT_TRUE(handle.ok());
  for (int i = 0; i < 3; ++i) {
    auto run = engine.Run(*handle, db);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->stats.cache, CacheOutcome::kHit);
  }
  db.mutable_relation("R")->Add({5, 10});
  ASSERT_TRUE(engine.Run(*handle, db).ok());

  const PlanCache::Stats& stats = engine.plan_cache()->stats();
  EXPECT_EQ(engine.plan_cache()->size(), 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.revalidations, 0u);
}

// ---------------------------------------------------------------------------
// LRU budgets: entry-count and byte budgets evict, eviction never breaks
// an outstanding handle, and Clear() forgets without invalidating.
// ---------------------------------------------------------------------------

TEST(PlanCache, LruEvictsPastEntryBudget) {
  const auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {2, 20}}), MakeRel(1, {{10}}));
  EngineOptions options;
  options.plan_cache_entries = 2;
  const Engine engine(options);

  const std::vector<ra::ExprPtr> exprs = {
      ra::Project(ra::Rel("R", 2), {1}),
      ra::Project(ra::Rel("R", 2), {2}),
      ra::Diff(ra::Rel("S", 1), ra::Project(ra::Rel("R", 2), {1})),
  };
  for (const auto& expr : exprs) {
    ASSERT_TRUE(engine.Run(expr, db).ok());
  }
  const PlanCache* cache = engine.plan_cache();
  EXPECT_EQ(cache->size(), 2u);
  EXPECT_EQ(cache->stats().evictions, 1u);

  // The least-recently-used entry (exprs[0]) was evicted: re-running it
  // misses; the hottest (exprs[2]) still hits.
  auto hot = engine.Run(exprs[2], db);
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->stats.cache, CacheOutcome::kHit);
  auto cold = engine.Run(exprs[0], db);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->stats.cache, CacheOutcome::kMiss);
}

TEST(PlanCache, ByteBudgetEvictionLeavesExecutingEntryAlive) {
  const auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {2, 20}, {3, 10}}), MakeRel(1, {{10}, {20}}));
  EngineOptions options;
  options.plan_cache_entries = 8;
  options.plan_cache_bytes = 1;  // Every entry exceeds this: insert-then-evict.
  const Engine engine(options);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  // The handle's entry is evicted the moment it is inserted — while the
  // caller is still holding (and about to execute) it.
  auto handle = engine.Prepare(expr, db);
  ASSERT_TRUE(handle.ok()) << handle.error();
  EXPECT_EQ(engine.plan_cache()->size(), 0u);
  EXPECT_GE(engine.plan_cache()->stats().evictions, 1u);

  auto run = engine.Run(*handle, db);
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_EQ(run->stats.cache, CacheOutcome::kHit);
  EXPECT_EQ(run->relation,
            setjoin::Divide(db.relation("R"), db.relation("S"),
                            setjoin::DivisionAlgorithm::kHashDivision));

  // Transparent runs still work — each is a fresh miss (insert + evict).
  auto transparent = engine.Run(expr, db);
  ASSERT_TRUE(transparent.ok());
  EXPECT_EQ(transparent->stats.cache, CacheOutcome::kMiss);
}

TEST(PlanCache, ClearForgetsEntriesButHandlesSurvive) {
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {2, 20}}), MakeRel(1, {{10}}));
  EngineOptions options;
  options.plan_cache_entries = 4;
  const Engine engine(options);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto handle = engine.Prepare(expr, db);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(engine.Run(expr, db).ok());
  EXPECT_EQ(engine.plan_cache()->size(), 1u);

  engine.ClearPlanCache();
  EXPECT_EQ(engine.plan_cache()->size(), 0u);

  // The cleared cache misses and re-prepares...
  auto rerun = engine.Run(expr, db);
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->stats.cache, CacheOutcome::kMiss);
  // ...while the pre-Clear handle still runs (and still revalidates).
  db.mutable_relation("R")->Add({7, 10});
  auto via_handle = engine.Run(*handle, db);
  ASSERT_TRUE(via_handle.ok());
  EXPECT_EQ(via_handle->stats.cache, CacheOutcome::kRevalidated);

  // Re-preparing shares the entry the transparent rerun re-inserted —
  // one entry, not two.
  auto reprepared = engine.Prepare(expr, db);
  ASSERT_TRUE(reprepared.ok());
  EXPECT_EQ(engine.plan_cache()->size(), 1u);
  auto hit = engine.Run(*reprepared, db);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->stats.cache, CacheOutcome::kHit);
}

// ---------------------------------------------------------------------------
// Prepared handles over hand-built plans (no logical form).
// ---------------------------------------------------------------------------

TEST(PlanCache, PreparedHandBuiltPlanRevalidatesOnMutation) {
  workload::SetJoinConfig config;
  config.r_groups = 20;
  config.s_groups = 15;
  config.domain_size = 12;
  config.containment_fraction = 0.3;
  config.seed = BaseSeed();
  const auto instance = workload::MakeSetJoinInstance(config);
  auto db = workload::SetJoinDatabase(instance);
  const Engine engine;

  PhysicalPlan plan;
  plan.root = MakeSetContainmentJoin(MakeScan("R", 2), MakeScan("S", 2),
                                     setjoin::ContainmentAlgorithm::kInvertedIndex);
  auto handle = engine.Prepare(std::move(plan), db);
  ASSERT_TRUE(handle.ok()) << handle.error();
  EXPECT_EQ(handle->expr(), nullptr);
  // The version vector covers exactly the scanned relations.
  ASSERT_EQ(handle->versions().size(), 2u);
  EXPECT_EQ(handle->versions()[0].first, "R");
  EXPECT_EQ(handle->versions()[1].first, "S");

  auto first = engine.Run(*handle, db);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first->stats.cache, CacheOutcome::kHit);
  EXPECT_EQ(first->relation,
            setjoin::SetContainmentJoin(instance.r, instance.s,
                                        setjoin::ContainmentAlgorithm::kNestedLoop));

  db.mutable_relation("S")->Add({999, 1});
  auto second = engine.Run(*handle, db);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second->stats.cache, CacheOutcome::kRevalidated);
  EXPECT_EQ(second->relation,
            setjoin::SetContainmentJoin(setjoin::AsGrouped(db.relation("R")),
                                        setjoin::AsGrouped(db.relation("S")),
                                        setjoin::ContainmentAlgorithm::kNestedLoop));
}

// ---------------------------------------------------------------------------
// Identity hygiene: the cache never crosses database ids, even when the
// relation names (and contents!) collide.
// ---------------------------------------------------------------------------

TEST(PlanCache, CollidingRelationNamesOnDifferentDatabasesNeverShareEntries) {
  const auto db1 = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {1, 20}, {2, 10}}), MakeRel(1, {{10}, {20}}));
  const auto db2 = setalg::testing::DivisionDb(
      MakeRel(2, {{7, 70}, {8, 70}}), MakeRel(1, {{70}}));
  ASSERT_NE(db1.id(), db2.id());

  EngineOptions options;
  options.plan_cache_entries = 8;
  const Engine engine(options);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto run1 = engine.Run(expr, db1);
  ASSERT_TRUE(run1.ok());
  EXPECT_EQ(run1->stats.cache, CacheOutcome::kMiss);

  // Same expression, same relation names, different database: a separate
  // entry (miss), never a stale hit on db1's plan/costs.
  auto run2 = engine.Run(expr, db2);
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(run2->stats.cache, CacheOutcome::kMiss);
  EXPECT_EQ(engine.plan_cache()->size(), 2u);
  EXPECT_EQ(run2->relation, MakeRel(1, {{7}, {8}}));

  // Both entries hit independently afterwards.
  EXPECT_EQ(engine.Run(expr, db1)->stats.cache, CacheOutcome::kHit);
  EXPECT_EQ(engine.Run(expr, db2)->stats.cache, CacheOutcome::kHit);

  // A prepared handle follows its database id: handed the other database
  // it falls back to that database's own (transparent) entry.
  auto handle = engine.Prepare(expr, db1);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->database_id(), db1.id());
  auto crossed = engine.Run(*handle, db2);
  ASSERT_TRUE(crossed.ok());
  EXPECT_EQ(crossed->relation, MakeRel(1, {{7}, {8}}));
  EXPECT_EQ(crossed->stats.cache, CacheOutcome::kHit);
}

// ---------------------------------------------------------------------------
// Result cache: whole-result replay, invalidation, keying.
// ---------------------------------------------------------------------------

// The result-cache differential: across randomized mutation/execution
// interleavings, a warm engine wired to the process-wide caches returns
// results and stats byte-identical to a fresh cache-free engine, and the
// second touch of any (expression, unchanged data) pair is a whole-result
// replay (cache = kResultHit).
TEST(ResultCacheTest, DifferentialUnderRandomizedMutations) {
  const std::uint64_t base = BaseSeed();
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);

  for (std::uint64_t seed = base; seed < base + 2; ++seed) {
    setalg::testing::RandomSaEqGenerator generator(schema, {1, 2, 3}, seed * 719);
    const std::vector<ra::ExprPtr> exprs = {
        setjoin::ClassicDivisionExpr("R", "S"),
        setjoin::ClassicEqualityDivisionExpr("R", "S"),
        generator.Generate(1, 3),
    };
    for (const Mode& mode : AllModes()) {
      for (bool batched : {false, true}) {
        EngineOptions options = mode.options;
        options.batched = batched;
        options.batch_size = 7;
        EngineOptions cached_options = options;
        cached_options.plan_cache_entries = 0;  // The concurrent wiring.
        cached_options.shared_plan_cache =
            std::make_shared<SharedPlanCache>(16, 0);
        const auto results = std::make_shared<ResultCache>(16, 1u << 20);
        cached_options.result_cache = results;
        const Engine cached(cached_options);
        const Engine fresh(options);
        const std::string what = mode.name + (batched ? " batched" : "") +
                                 " seed=" + std::to_string(seed);

        auto db = setalg::testing::RandomDatabase(schema, 40, 12, seed);
        util::Rng rng(seed * 1013 + (batched ? 7 : 0));
        for (int step = 0; step < 5; ++step) {
          MutateDatabase(&db, &rng, seed, step);
          for (std::size_t i = 0; i < exprs.size(); ++i) {
            const std::string context = what + " step=" + std::to_string(step) +
                                        " expr=" + std::to_string(i);
            auto want = fresh.Run(exprs[i], db);
            ASSERT_TRUE(want.ok()) << context << ": " << want.error();
            ASSERT_EQ(want->stats.cache, CacheOutcome::kUncached);

            // First touch after the mutation: may be served any way —
            // including a result hit, when the mutation happened to leave
            // this expression's read set untouched — but never silently
            // stale: identical to the fresh run or bust.
            auto first = cached.Run(exprs[i], db);
            ASSERT_TRUE(first.ok()) << context << ": " << first.error();
            EXPECT_EQ(first->relation.flat(), want->relation.flat())
                << context << " (first)";
            ExpectIdenticalStats(want->stats, first->stats, context + " (first)");

            // Second touch with no intervening mutation: whole-result
            // replay, still byte-identical.
            auto second = cached.Run(exprs[i], db);
            ASSERT_TRUE(second.ok()) << context << ": " << second.error();
            EXPECT_EQ(second->stats.cache, CacheOutcome::kResultHit) << context;
            EXPECT_EQ(second->relation.flat(), want->relation.flat())
                << context << " (second)";
            ExpectIdenticalStats(want->stats, second->stats,
                                 context + " (second)");
          }
        }
        EXPECT_GT(results->stats().hits, 0u) << what;
        EXPECT_GT(results->stats().insertions, 0u) << what;
      }
    }
  }
}

// The invalidation law, deterministically: a result hit can never survive
// a version-vector change on any relation the expression reads — and is
// unaffected by mutations outside its read set. Also pins down the
// options-fingerprint keying: engines with different semantics never
// share a stored result.
TEST(ResultCacheTest, HitNeverSurvivesVersionVectorChange) {
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {1, 20}, {2, 10}, {3, 20}}), MakeRel(1, {{10}, {20}}));
  const auto results = std::make_shared<ResultCache>(8, 0);
  EngineOptions options;
  options.plan_cache_entries = 0;
  options.result_cache = results;
  const Engine engine(options);

  const auto division = setjoin::ClassicDivisionExpr("R", "S");
  auto run1 = engine.Run(division, db);
  ASSERT_TRUE(run1.ok());
  EXPECT_EQ(run1->stats.cache, CacheOutcome::kUncached);
  EXPECT_EQ(run1->relation, MakeRel(1, {{1}}));

  auto run2 = engine.Run(division, db);
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(run2->stats.cache, CacheOutcome::kResultHit);
  EXPECT_EQ(run2->relation, MakeRel(1, {{1}}));
  EXPECT_EQ(results->stats().hits, 1u);
  EXPECT_EQ(results->stats().invalidations, 0u);

  // Mutate the dividend: the stored vector is stale, the entry must die.
  db.mutable_relation("R")->Add({2, 20});
  auto run3 = engine.Run(division, db);
  ASSERT_TRUE(run3.ok());
  EXPECT_NE(run3->stats.cache, CacheOutcome::kResultHit);
  EXPECT_EQ(run3->relation, MakeRel(1, {{1}, {2}}));
  EXPECT_EQ(results->stats().invalidations, 1u);

  // The re-inserted result serves hits again...
  auto run4 = engine.Run(division, db);
  ASSERT_TRUE(run4.ok());
  EXPECT_EQ(run4->stats.cache, CacheOutcome::kResultHit);
  EXPECT_EQ(run4->relation, MakeRel(1, {{1}, {2}}));

  // ...until the divisor moves: every relation in the read set counts.
  db.SetRelation("S", MakeRel(1, {{10}}));
  auto run5 = engine.Run(division, db);
  ASSERT_TRUE(run5.ok());
  EXPECT_NE(run5->stats.cache, CacheOutcome::kResultHit);
  EXPECT_EQ(results->stats().invalidations, 2u);

  // A projection reading only R is untouched by divisor churn.
  const auto r_only = ra::Project(ra::Rel("R", 2), {1});
  ASSERT_TRUE(engine.Run(r_only, db).ok());
  db.SetRelation("S", MakeRel(1, {{20}}));
  auto r_only_hit = engine.Run(r_only, db);
  ASSERT_TRUE(r_only_hit.ok());
  EXPECT_EQ(r_only_hit->stats.cache, CacheOutcome::kResultHit);

  // A second engine with different semantics shares the cache object but
  // not the entries: the options fingerprint partitions the key space.
  EngineOptions batched_options = options;
  batched_options.batched = true;
  const Engine batched(batched_options);
  auto cross = batched.Run(division, db);
  ASSERT_TRUE(cross.ok());
  EXPECT_NE(cross->stats.cache, CacheOutcome::kResultHit);
  auto plain = Engine().Run(division, db);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(cross->relation.flat(), plain->relation.flat());
}

// The shared plan cache carries the same provenance contract as the
// engine-local one — across engines: a plan lowered by one engine serves
// hits/revalidations to every engine wired to the cache.
TEST(SharedPlanCacheTest, SharedAcrossEnginesWithProvenance) {
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {1, 20}, {2, 10}}), MakeRel(1, {{10}, {20}}));
  const auto shared = std::make_shared<SharedPlanCache>(8, 0);
  EngineOptions options = EngineOptions::CostBased();
  options.plan_cache_entries = 0;
  options.shared_plan_cache = shared;
  const Engine a(options);
  const Engine b(options);
  const Engine fresh(EngineOptions::CostBased());

  const auto division = setjoin::ClassicDivisionExpr("R", "S");
  auto miss = a.Run(division, db);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->stats.cache, CacheOutcome::kMiss);
  EXPECT_EQ(shared->stats().misses, 1u);

  // The other engine hits the plan the first one lowered.
  auto hit = b.Run(division, db);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->stats.cache, CacheOutcome::kHit);
  EXPECT_EQ(hit->relation, miss->relation);
  EXPECT_GE(shared->stats().hits, 1u);

  // After a mutation the entry re-costs (revalidated, or repicked when a
  // cost choice flips) — and stays bit-identical to a cache-free run.
  db.SetRelation("R", workload::UniformBinaryRelation(200, 5, BaseSeed() * 7 + 1));
  auto revalidated = b.Run(division, db);
  ASSERT_TRUE(revalidated.ok());
  EXPECT_TRUE(revalidated->stats.cache == CacheOutcome::kRevalidated ||
              revalidated->stats.cache == CacheOutcome::kRepicked)
      << CacheOutcomeToString(revalidated->stats.cache);
  auto want = fresh.Run(division, db);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(revalidated->relation.flat(), want->relation.flat());
  ExpectIdenticalStats(want->stats, revalidated->stats, "shared revalidation");

  // The republished entry is warm again for everyone.
  auto warm = a.Run(division, db);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats.cache, CacheOutcome::kHit);
}

}  // namespace
}  // namespace setalg::engine
