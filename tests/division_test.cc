#include <gtest/gtest.h>

#include <algorithm>

#include "engine/engine.h"
#include "ra/eval.h"
#include "setjoin/division.h"
#include "setjoin/grouped.h"
#include "test_util.h"
#include "util/rng.h"
#include "witness/figures.h"
#include "workload/generators.h"

namespace setalg::setjoin {
namespace {

using core::Relation;
using core::Value;
using setalg::testing::MakeRel;

// Brute-force references straight from the definitions.
Relation ReferenceDivide(const Relation& r, const Relation& s, bool equality) {
  const auto groups = GroupedRelation::FromBinary(r);
  std::vector<Value> divisor;
  for (std::size_t i = 0; i < s.size(); ++i) divisor.push_back(s.tuple(i)[0]);
  Relation out(1);
  for (const auto& g : groups.groups()) {
    const bool contains = SortedSubset(divisor, g.elements);
    const bool qualifies = equality ? g.elements == divisor : contains;
    if (qualifies) out.Add({g.key});
  }
  return out;
}

TEST(Division, PaperFigure1) {
  // Person ÷ Symptoms = {An, Bob}.
  const auto example = witness::MakeMedicalExample();
  const auto& person = example.db.relation("Person");
  const auto& symptoms = example.db.relation("Symptoms");
  for (auto algorithm : AllDivisionAlgorithms()) {
    const auto result = Divide(person, symptoms, algorithm);
    Relation expected(1);
    expected.Add({example.names.Code("An")});
    expected.Add({example.names.Code("Bob")});
    EXPECT_EQ(result, expected) << DivisionAlgorithmToString(algorithm);
  }
}

TEST(Division, SimpleContainmentExample) {
  const Relation r = MakeRel(2, {{1, 7}, {1, 8}, {2, 7}, {3, 8}, {3, 7}, {3, 9}});
  const Relation s = MakeRel(1, {{7}, {8}});
  for (auto algorithm : AllDivisionAlgorithms()) {
    EXPECT_EQ(Divide(r, s, algorithm), MakeRel(1, {{1}, {3}}))
        << DivisionAlgorithmToString(algorithm);
  }
}

TEST(Division, EqualityVariantRequiresExactSet) {
  const Relation r = MakeRel(2, {{1, 7}, {1, 8}, {3, 8}, {3, 7}, {3, 9}});
  const Relation s = MakeRel(1, {{7}, {8}});
  for (auto algorithm : AllDivisionAlgorithms()) {
    EXPECT_EQ(DivideEqual(r, s, algorithm), MakeRel(1, {{1}}))
        << DivisionAlgorithmToString(algorithm);
  }
}

TEST(Division, EmptyDivisorMeansEveryCandidateQualifies) {
  const Relation r = MakeRel(2, {{1, 7}, {2, 8}});
  const Relation s(1);
  for (auto algorithm : AllDivisionAlgorithms()) {
    EXPECT_EQ(Divide(r, s, algorithm), MakeRel(1, {{1}, {2}}))
        << DivisionAlgorithmToString(algorithm);
    EXPECT_TRUE(DivideEqual(r, s, algorithm).empty())
        << DivisionAlgorithmToString(algorithm);
  }
}

TEST(Division, EmptyDividendYieldsEmptyResult) {
  const Relation r(2);
  const Relation s = MakeRel(1, {{7}});
  for (auto algorithm : AllDivisionAlgorithms()) {
    EXPECT_TRUE(Divide(r, s, algorithm).empty())
        << DivisionAlgorithmToString(algorithm);
    EXPECT_TRUE(DivideEqual(r, s, algorithm).empty())
        << DivisionAlgorithmToString(algorithm);
  }
}

TEST(Division, BothSidesEmpty) {
  const Relation r(2);
  const Relation s(1);
  for (auto algorithm : AllDivisionAlgorithms()) {
    EXPECT_TRUE(Divide(r, s, algorithm).empty())
        << DivisionAlgorithmToString(algorithm);
    EXPECT_TRUE(DivideEqual(r, s, algorithm).empty())
        << DivisionAlgorithmToString(algorithm);
  }
}

TEST(Division, DivisorLargerThanAnyGroup) {
  const Relation r = MakeRel(2, {{1, 7}, {2, 8}});
  const Relation s = MakeRel(1, {{7}, {8}, {9}});
  for (auto algorithm : AllDivisionAlgorithms()) {
    EXPECT_TRUE(Divide(r, s, algorithm).empty())
        << DivisionAlgorithmToString(algorithm);
  }
}

TEST(Division, DivisorContainedInNoGroupDespiteMatchingSizes) {
  // Every group has |S| elements and even shares one of them, but none
  // contains all of S — the per-element probes must not short-circuit on
  // partial hits.
  const Relation r = MakeRel(2, {{1, 7}, {1, 5}, {2, 8}, {2, 5}, {3, 7}, {3, 9}});
  const Relation s = MakeRel(1, {{7}, {8}});
  for (auto algorithm : AllDivisionAlgorithms()) {
    EXPECT_TRUE(Divide(r, s, algorithm).empty())
        << DivisionAlgorithmToString(algorithm);
    EXPECT_TRUE(DivideEqual(r, s, algorithm).empty())
        << DivisionAlgorithmToString(algorithm);
  }
}

TEST(Division, AllDuplicateTuplesCollapseUnderSetSemantics) {
  // The same tuple Add'ed many times must count once everywhere: in
  // particular equality division compares the *distinct* group size
  // against |S|.
  Relation r(2);
  for (int copies = 0; copies < 5; ++copies) {
    r.Add({1, 7});
    r.Add({1, 8});
    r.Add({2, 7});
  }
  const Relation s = MakeRel(1, {{7}, {8}});
  for (auto algorithm : AllDivisionAlgorithms()) {
    EXPECT_EQ(Divide(r, s, algorithm), MakeRel(1, {{1}}))
        << DivisionAlgorithmToString(algorithm);
    EXPECT_EQ(DivideEqual(r, s, algorithm), MakeRel(1, {{1}}))
        << DivisionAlgorithmToString(algorithm);
  }
}

TEST(Division, SingleValueColumns) {
  // Degenerate single-column content: every tuple repeats one key and one
  // element value; the divisor is a single-element set.
  const Relation r = MakeRel(2, {{1, 7}});
  const Relation single = MakeRel(1, {{7}});
  const Relation other = MakeRel(1, {{8}});
  for (auto algorithm : AllDivisionAlgorithms()) {
    EXPECT_EQ(Divide(r, single, algorithm), MakeRel(1, {{1}}))
        << DivisionAlgorithmToString(algorithm);
    EXPECT_EQ(DivideEqual(r, single, algorithm), MakeRel(1, {{1}}))
        << DivisionAlgorithmToString(algorithm);
    EXPECT_TRUE(Divide(r, other, algorithm).empty())
        << DivisionAlgorithmToString(algorithm);
  }
}

TEST(Division, EqualityRejectsProperSupersets) {
  // Group 1 strictly contains S; containment admits it, equality must not.
  const Relation r = MakeRel(2, {{1, 7}, {1, 8}, {1, 9}, {2, 7}, {2, 8}});
  const Relation s = MakeRel(1, {{7}, {8}});
  for (auto algorithm : AllDivisionAlgorithms()) {
    EXPECT_EQ(Divide(r, s, algorithm), MakeRel(1, {{1}, {2}}))
        << DivisionAlgorithmToString(algorithm);
    EXPECT_EQ(DivideEqual(r, s, algorithm), MakeRel(1, {{2}}))
        << DivisionAlgorithmToString(algorithm);
  }
}

// Parameterized agreement across algorithms and workload shapes.
struct DivisionCase {
  const char* name;
  workload::DivisionConfig config;
};

class DivisionAgreementTest
    : public ::testing::TestWithParam<std::tuple<DivisionAlgorithm, DivisionCase>> {};

TEST_P(DivisionAgreementTest, MatchesReference) {
  const auto [algorithm, division_case] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto config = division_case.config;
    config.seed = seed;
    const auto instance = workload::MakeDivisionInstance(config);
    EXPECT_EQ(Divide(instance.r, instance.s, algorithm),
              ReferenceDivide(instance.r, instance.s, false))
        << division_case.name << " seed " << seed;
    EXPECT_EQ(DivideEqual(instance.r, instance.s, algorithm),
              ReferenceDivide(instance.r, instance.s, true))
        << division_case.name << " seed " << seed;
  }
}

workload::DivisionConfig SmallConfig() {
  workload::DivisionConfig config;
  config.num_groups = 40;
  config.group_size = 6;
  config.domain_size = 24;
  config.divisor_size = 3;
  return config;
}

workload::DivisionConfig ExactSizeConfig() {
  workload::DivisionConfig config;
  config.num_groups = 30;
  config.group_size = 4;
  config.domain_size = 16;
  config.divisor_size = 4;  // Same as group size: equality hits possible.
  config.match_fraction = 0.5;
  return config;
}

workload::DivisionConfig SkewedConfig() {
  workload::DivisionConfig config;
  config.num_groups = 40;
  config.group_size = 8;
  config.domain_size = 32;
  config.divisor_size = 2;
  config.zipf_skew = 1.1;
  return config;
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsTimesWorkloads, DivisionAgreementTest,
    ::testing::Combine(::testing::ValuesIn(AllDivisionAlgorithms()),
                       ::testing::Values(DivisionCase{"small", SmallConfig()},
                                         DivisionCase{"exact", ExactSizeConfig()},
                                         DivisionCase{"skewed", SkewedConfig()})),
    [](const ::testing::TestParamInfo<std::tuple<DivisionAlgorithm, DivisionCase>>&
           info) {
      std::string name =
          std::string(DivisionAlgorithmToString(std::get<0>(info.param))) + "_" +
          std::get<1>(info.param).name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Partition-boundary edge cases: shapes where key-hash partitioning
// degenerates — more partitions than groups, every row in one partition,
// empty partitions, a divisor no per-partition group can cover — must
// agree with the serial kernels for every algorithm, executed serial and
// parallel through the engine's division operator.
// ---------------------------------------------------------------------------

// Runs R ÷ S (both variants) through the engine's division operator at
// partition widths {1, 2, 7, 16} and threads {1, 4}, expecting the
// brute-force reference everywhere. partitions=1 is the serial operator;
// width > #groups forces empty partitions; threads=1 runs the fan-out
// inline, threads=4 across a real pool.
void ExpectPartitionedDivisionAgrees(const Relation& r, const Relation& s,
                                     const char* what) {
  const auto db = setalg::testing::DivisionDb(r, s);
  for (auto algorithm : AllDivisionAlgorithms()) {
    for (const bool equality : {false, true}) {
      const Relation expected = ReferenceDivide(r, s, equality);
      for (std::size_t partitions : {1u, 2u, 7u, 16u}) {
        for (std::size_t threads : {1u, 4u}) {
          engine::PhysicalPlan plan;
          plan.root = engine::MakeDivision(engine::MakeScan("R", 2),
                                           engine::MakeScan("S", 1), algorithm,
                                           equality, nullptr, partitions);
          engine::EngineOptions options;
          options.threads = threads;
          auto run = engine::Engine(options).Run(plan, db);
          ASSERT_TRUE(run.ok()) << what << ": " << run.error();
          EXPECT_EQ(run->relation, expected)
              << what << " algorithm " << DivisionAlgorithmToString(algorithm)
              << (equality ? " equality" : " containment") << " partitions "
              << partitions << " threads " << threads;
        }
      }
    }
  }
}

TEST(DivisionPartitionEdges, MorePartitionsThanGroups) {
  // 3 groups against up-to-16-way fan-outs: most partitions are empty.
  ExpectPartitionedDivisionAgrees(
      MakeRel(2, {{1, 7}, {1, 8}, {2, 7}, {3, 7}, {3, 8}, {3, 9}}),
      MakeRel(1, {{7}, {8}}), "more partitions than groups");
}

TEST(DivisionPartitionEdges, AllRowsHashToOnePartition) {
  // A single key: every row lands in one partition at any width, the
  // remaining partitions divide nothing.
  ExpectPartitionedDivisionAgrees(
      MakeRel(2, {{5, 1}, {5, 2}, {5, 3}, {5, 4}, {5, 6}}),
      MakeRel(1, {{2}, {3}}), "single-key skew");
}

TEST(DivisionPartitionEdges, EmptyDividendMeansEveryPartitionIsEmpty) {
  ExpectPartitionedDivisionAgrees(Relation(2), MakeRel(1, {{7}}),
                                  "empty dividend");
}

TEST(DivisionPartitionEdges, EmptyDivisorSharedByEveryPartition) {
  // Containment division by ∅ returns every key; the shared divisor must
  // behave identically in every partition.
  ExpectPartitionedDivisionAgrees(MakeRel(2, {{1, 7}, {2, 8}, {3, 9}}),
                                  Relation(1), "empty divisor");
}

TEST(DivisionPartitionEdges, DivisorLargerThanEveryPerPartitionGroup) {
  // Every group has 2 elements, the divisor 4: no partition can ever
  // produce a row, at any fan-out width.
  ExpectPartitionedDivisionAgrees(
      MakeRel(2, {{1, 7}, {1, 8}, {2, 8}, {2, 9}, {3, 7}, {3, 9}, {4, 10}, {4, 11}}),
      MakeRel(1, {{7}, {8}, {9}, {10}}), "divisor larger than every group");
}

TEST(DivisionPartitionEdges, DivisorDisjointFromGroupsAtMatchingSizes) {
  // Group sizes equal the divisor size but the elements never cover it —
  // the counting/bitmap paths must not confuse size with coverage.
  ExpectPartitionedDivisionAgrees(
      MakeRel(2, {{1, 7}, {1, 8}, {2, 8}, {2, 20}, {3, 20}, {3, 21}}),
      MakeRel(1, {{7}, {21}}), "divisor disjoint at matching sizes");
}

// ---------------------------------------------------------------------------
// The classic RA expression and its quadratic intermediates.
// ---------------------------------------------------------------------------

TEST(ClassicRa, ExpressionShapeIsTextbook) {
  auto expr = ClassicDivisionExpr("R", "S");
  EXPECT_EQ(expr->ToString(),
            "diff(pi[1](R), pi[1](diff(join[](pi[1](R), S), R)))");
}

TEST(ClassicRa, IntermediatesAreProductSized) {
  workload::DivisionConfig config = SmallConfig();
  config.seed = 11;
  const auto instance = workload::MakeDivisionInstance(config);
  ra::EvalStats stats;
  Divide(instance.r, instance.s, DivisionAlgorithm::kClassicRa, &stats);
  const auto groups = GroupedRelation::FromBinary(instance.r);
  EXPECT_GE(stats.max_intermediate, groups.NumGroups() * instance.s.size());
}

TEST(ClassicRa, EqualityExpressionAgreesOnFigure5) {
  // On Fig. 5's A: containment and equality division both give {1,2}.
  const auto a = witness::MakeFig5A();
  ra::EvalStats stats;
  EXPECT_EQ(DivideEqual(a.relation("R"), a.relation("S"),
                        DivisionAlgorithm::kClassicRa, &stats),
            MakeRel(1, {{1}, {2}}));
  // On B both are empty.
  const auto b = witness::MakeFig5B();
  EXPECT_TRUE(Divide(b.relation("R"), b.relation("S"),
                     DivisionAlgorithm::kClassicRa)
                  .empty());
}

// ---------------------------------------------------------------------------
// Grouped relation utilities.
// ---------------------------------------------------------------------------

TEST(Grouped, FromBinaryGroupsAndSorts) {
  const Relation r = MakeRel(2, {{2, 9}, {1, 5}, {1, 3}, {1, 5}});
  const auto grouped = GroupedRelation::FromBinary(r);
  ASSERT_EQ(grouped.NumGroups(), 2u);
  EXPECT_EQ(grouped.group(0).key, 1);
  EXPECT_EQ(grouped.group(0).elements, (std::vector<Value>{3, 5}));
  EXPECT_EQ(grouped.group(1).key, 2);
  EXPECT_EQ(grouped.TotalElements(), 3u);
  EXPECT_EQ(grouped.MaxGroupSize(), 2u);
}

TEST(Grouped, KeyOnSecondColumn) {
  const Relation r = MakeRel(2, {{5, 1}, {3, 1}, {9, 2}});
  const auto grouped = GroupedRelation::FromBinary(r, 2);
  ASSERT_EQ(grouped.NumGroups(), 2u);
  EXPECT_EQ(grouped.group(0).elements, (std::vector<Value>{3, 5}));
}

TEST(Grouped, FindByKey) {
  const Relation r = MakeRel(2, {{1, 5}, {3, 7}});
  const auto grouped = GroupedRelation::FromBinary(r);
  ASSERT_NE(grouped.Find(3), nullptr);
  EXPECT_EQ(grouped.Find(3)->elements, (std::vector<Value>{7}));
  EXPECT_EQ(grouped.Find(2), nullptr);
}

TEST(Grouped, SortedSubsetAndIntersect) {
  EXPECT_TRUE(SortedSubset({2, 4}, {1, 2, 3, 4}));
  EXPECT_FALSE(SortedSubset({2, 5}, {1, 2, 3, 4}));
  EXPECT_TRUE(SortedSubset({}, {1}));
  EXPECT_TRUE(SortedIntersects({1, 9}, {9, 10}));
  EXPECT_FALSE(SortedIntersects({1, 3}, {2, 4}));
  EXPECT_FALSE(SortedIntersects({}, {1}));
}

TEST(Grouped, SignatureIsOneSidedFilter) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Value> super, sub;
    for (int i = 0; i < 12; ++i) super.push_back(rng.NextInt(1, 40));
    std::sort(super.begin(), super.end());
    super.erase(std::unique(super.begin(), super.end()), super.end());
    for (std::size_t i = 0; i < super.size(); i += 2) sub.push_back(super[i]);
    // Subset implies signature-subset. (The converse may fail — that is
    // the point of a filter.)
    EXPECT_EQ(SetSignature(sub) & ~SetSignature(super), 0u);
  }
}

TEST(Grouped, SetHashIsOrderIndependentAndSizeSensitive) {
  EXPECT_EQ(SetHash({1, 2, 3}), SetHash({3, 2, 1}));
  EXPECT_NE(SetHash({1, 2}), SetHash({1, 2, 3}));
}

}  // namespace
}  // namespace setalg::setjoin
