#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/bitset.h"
#include "util/hash.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/str.h"

namespace setalg::util {
namespace {

// ---------------------------------------------------------------------------
// Hashing.
// ---------------------------------------------------------------------------

TEST(Hash, FnvIsDeterministic) {
  EXPECT_EQ(FnvHashString("division"), FnvHashString("division"));
  EXPECT_NE(FnvHashString("division"), FnvHashString("semijoin"));
}

TEST(Hash, FnvEmptyStringIsOffsetBasis) {
  EXPECT_EQ(FnvHashString(""), kFnvOffsetBasis);
}

TEST(Hash, Mix64SeparatesNearbyInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Hash, HashCombineIsOrderDependent) {
  const std::uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  const std::uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(Hash, HashCombineUnorderedIsCommutative) {
  const std::uint64_t ab = HashCombineUnordered(HashCombineUnordered(7, 1), 2);
  const std::uint64_t ba = HashCombineUnordered(HashCombineUnordered(7, 2), 1);
  EXPECT_EQ(ab, ba);
}

// ---------------------------------------------------------------------------
// Rng.
// ---------------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(13), 13u);
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleDistinctProducesDistinctIndices) {
  Rng rng(13);
  for (std::size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.SampleDistinct(k, 100);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (std::size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(Zipf, SamplesWithinRange) {
  Rng rng(17);
  ZipfDistribution zipf(10, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t s = zipf.Sample(&rng);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 10u);
  }
}

TEST(Zipf, SkewFavorsSmallValues) {
  Rng rng(19);
  ZipfDistribution zipf(100, 1.2);
  std::size_t low = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (zipf.Sample(&rng) <= 10) ++low;
  }
  // With s=1.2 the first decile carries well over half the mass.
  EXPECT_GT(low, static_cast<std::size_t>(kTrials) / 2);
}

TEST(Zipf, ZeroSkewIsUniformish) {
  Rng rng(23);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(&rng)];
  for (int v = 1; v <= 10; ++v) {
    EXPECT_GT(counts[v], 700);
    EXPECT_LT(counts[v], 1300);
  }
}

// ---------------------------------------------------------------------------
// Bitset.
// ---------------------------------------------------------------------------

TEST(Bitset, SetTestReset) {
  Bitset b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
}

TEST(Bitset, CountAndAllSet) {
  Bitset b(70, true);
  EXPECT_EQ(b.Count(), 70u);
  EXPECT_TRUE(b.AllSet());
  b.Reset(69);
  EXPECT_EQ(b.Count(), 69u);
  EXPECT_FALSE(b.AllSet());
}

TEST(Bitset, FillTrueClearsTrailingBits) {
  Bitset b(65, true);
  EXPECT_EQ(b.Count(), 65u);
  b.Fill(false);
  EXPECT_TRUE(b.NoneSet());
  b.Fill(true);
  EXPECT_EQ(b.Count(), 65u);
}

TEST(Bitset, SubsetAndIntersect) {
  Bitset a(100), b(100);
  a.Set(3);
  a.Set(64);
  b.Set(3);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  Bitset c(100);
  c.Set(50);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(Bitset, AndOrOperators) {
  Bitset a(10), b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  Bitset and_result = a;
  and_result &= b;
  EXPECT_EQ(and_result.Count(), 1u);
  EXPECT_TRUE(and_result.Test(2));
  Bitset or_result = a;
  or_result |= b;
  EXPECT_EQ(or_result.Count(), 3u);
}

TEST(Bitset, EmptyBitset) {
  Bitset b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.NoneSet());
}

// ---------------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------------

TEST(Stats, FitLineRecoversExactLine) {
  const auto fit = FitLine({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1.
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Stats, FitLineDegenerateXs) {
  const auto fit = FitLine({2, 2, 2}, {1, 2, 3});
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
}

TEST(Stats, GrowthExponentLinearData) {
  std::vector<std::size_t> ns = {100, 200, 400, 800};
  std::vector<std::size_t> sizes = {300, 600, 1200, 2400};
  const auto fit = FitGrowthExponent(ns, sizes);
  EXPECT_NEAR(fit.slope, 1.0, 0.01);
}

TEST(Stats, GrowthExponentQuadraticData) {
  std::vector<std::size_t> ns = {10, 20, 40, 80};
  std::vector<std::size_t> sizes = {100, 400, 1600, 6400};
  const auto fit = FitGrowthExponent(ns, sizes);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
}

TEST(Stats, GrowthExponentClampsZeroSizes) {
  std::vector<std::size_t> ns = {10, 100};
  std::vector<std::size_t> sizes = {0, 0};
  const auto fit = FitGrowthExponent(ns, sizes);
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);
}

TEST(Stats, SummarizeBasics) {
  const auto s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_NEAR(s.mean, 2.5, 1e-9);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-9);
}

TEST(Stats, SummarizeEmpty) {
  const auto s = Summarize({});
  EXPECT_EQ(s.mean, 0.0);
}

// ---------------------------------------------------------------------------
// Strings.
// ---------------------------------------------------------------------------

TEST(Str, StrCatMixesTypes) { EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5"); }

TEST(Str, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "", "c"};
  EXPECT_EQ(Join(parts, ","), "a,,c");
  EXPECT_EQ(Split("a,,c", ','), parts);
}

TEST(Str, SplitSingleField) {
  EXPECT_EQ(Split("abc", ','), std::vector<std::string>{"abc"});
}

TEST(Str, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(Str, ParseInt64Valid) {
  long long v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("  17 ", &v));
  EXPECT_EQ(v, 17);
}

TEST(Str, ParseInt64Invalid) {
  long long v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("x12", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

// ---------------------------------------------------------------------------
// Result.
// ---------------------------------------------------------------------------

TEST(Result, OkCarriesValue) {
  Result<int> r(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
}

TEST(Result, ErrorCarriesMessage) {
  auto r = Result<int>::Error("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "boom");
}

}  // namespace
}  // namespace setalg::util
