// Tests for the stats:: module — the one-pass relation statistics against
// brute-force counts on randomized relations, and the DatabaseStats cache
// against core::Database's mutation counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "core/database.h"
#include "stats/stats.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace setalg::stats {
namespace {

using setalg::testing::MakeRel;

// Brute-force reference for ComputeRelationStats.
RelationStats BruteForceStats(const core::Relation& r) {
  RelationStats stats;
  stats.arity = r.arity();
  stats.cardinality = r.size();
  stats.columns.resize(r.arity());
  std::vector<std::set<core::Value>> distinct(r.arity());
  std::map<core::Value, std::size_t> group_sizes;
  for (std::size_t i = 0; i < r.size(); ++i) {
    core::TupleView t = r.tuple(i);
    for (std::size_t c = 0; c < r.arity(); ++c) {
      distinct[c].insert(t[c]);
      ColumnStats& col = stats.columns[c];
      if (i == 0) {
        col.min_value = col.max_value = t[c];
      } else {
        col.min_value = std::min(col.min_value, t[c]);
        col.max_value = std::max(col.max_value, t[c]);
      }
    }
    if (r.arity() == 2) ++group_sizes[t[0]];
  }
  for (std::size_t c = 0; c < r.arity(); ++c) {
    stats.columns[c].distinct = distinct[c].size();
  }
  if (r.arity() == 2 && !group_sizes.empty()) {
    GroupStats& g = stats.groups;
    g.num_groups = group_sizes.size();
    g.min_group_size = group_sizes.begin()->second;
    for (const auto& [key, size] : group_sizes) {
      g.min_group_size = std::min(g.min_group_size, size);
      g.max_group_size = std::max(g.max_group_size, size);
    }
    g.avg_group_size =
        static_cast<double>(r.size()) / static_cast<double>(g.num_groups);
  }
  return stats;
}

void ExpectSameStats(const RelationStats& got, const RelationStats& want) {
  EXPECT_EQ(got.cardinality, want.cardinality);
  EXPECT_EQ(got.arity, want.arity);
  ASSERT_EQ(got.columns.size(), want.columns.size());
  for (std::size_t c = 0; c < got.columns.size(); ++c) {
    EXPECT_EQ(got.columns[c].distinct, want.columns[c].distinct) << "col " << c;
    EXPECT_EQ(got.columns[c].min_value, want.columns[c].min_value) << "col " << c;
    EXPECT_EQ(got.columns[c].max_value, want.columns[c].max_value) << "col " << c;
  }
  EXPECT_EQ(got.groups.num_groups, want.groups.num_groups);
  EXPECT_EQ(got.groups.min_group_size, want.groups.min_group_size);
  EXPECT_EQ(got.groups.max_group_size, want.groups.max_group_size);
  EXPECT_DOUBLE_EQ(got.groups.avg_group_size, want.groups.avg_group_size);
}

TEST(RelationStats, SmallBinaryRelationByHand) {
  const auto r = MakeRel(2, {{1, 10}, {1, 20}, {1, 30}, {2, 10}, {5, 7}});
  const RelationStats stats = ComputeRelationStats(r);
  EXPECT_EQ(stats.cardinality, 5u);
  EXPECT_EQ(stats.columns[0].distinct, 3u);
  EXPECT_EQ(stats.columns[1].distinct, 4u);
  EXPECT_EQ(stats.columns[0].min_value, 1);
  EXPECT_EQ(stats.columns[0].max_value, 5);
  EXPECT_EQ(stats.columns[1].Width(), 24u);  // 30 - 7 + 1.
  EXPECT_EQ(stats.groups.num_groups, 3u);
  EXPECT_EQ(stats.groups.min_group_size, 1u);
  EXPECT_EQ(stats.groups.max_group_size, 3u);
  EXPECT_DOUBLE_EQ(stats.groups.avg_group_size, 5.0 / 3.0);
}

TEST(RelationStats, EmptyAndZeroAryRelations) {
  const RelationStats empty = ComputeRelationStats(core::Relation(2));
  EXPECT_EQ(empty.cardinality, 0u);
  EXPECT_EQ(empty.columns[0].distinct, 0u);
  EXPECT_EQ(empty.groups.num_groups, 0u);
  EXPECT_EQ(empty.columns[0].Width(), 0u);

  const RelationStats zero = ComputeRelationStats(MakeRel(0, {{}}));
  EXPECT_EQ(zero.cardinality, 1u);
  EXPECT_TRUE(zero.columns.empty());
}

TEST(RelationStats, MatchesBruteForceOnRandomRelations) {
  util::Rng rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t arity = 1 + rng.NextBounded(3);
    const std::size_t rows = rng.NextBounded(200);
    const std::size_t domain = 1 + rng.NextBounded(40);
    core::Relation r(arity);
    core::Tuple t(arity);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t c = 0; c < arity; ++c) {
        t[c] = static_cast<core::Value>(rng.NextBounded(domain) + 1);
      }
      r.Add(t);
    }
    ExpectSameStats(ComputeRelationStats(r), BruteForceStats(r));
  }
}

TEST(RelationStats, MatchesBruteForceOnWorkloadInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    workload::DivisionConfig config;
    config.num_groups = 50;
    config.group_size = 6;
    config.domain_size = 40;
    config.seed = seed;
    const auto instance = workload::MakeDivisionInstance(config);
    ExpectSameStats(ComputeRelationStats(instance.r), BruteForceStats(instance.r));
    ExpectSameStats(ComputeRelationStats(instance.s), BruteForceStats(instance.s));
  }
}

// ---------------------------------------------------------------------------
// Range widths and histograms.
// ---------------------------------------------------------------------------

TEST(RelationStats, WidthSurvivesExtremeValueRanges) {
  constexpr core::Value kMin = std::numeric_limits<core::Value>::min();
  constexpr core::Value kMax = std::numeric_limits<core::Value>::max();

  // The full int64 span: the signed subtraction max - min is UB; the
  // unsigned path saturates at UINT64_MAX (one short of the true span,
  // the closest representable answer).
  const RelationStats full = ComputeRelationStats(MakeRel(1, {{kMin}, {kMax}}));
  EXPECT_EQ(full.columns[0].Width(), std::numeric_limits<std::uint64_t>::max());

  // A wide-but-representable range crossing zero.
  const RelationStats wide = ComputeRelationStats(MakeRel(1, {{kMin}, {5}}));
  EXPECT_EQ(wide.columns[0].Width(),
            static_cast<std::uint64_t>(kMax) + 2u + 5u);

  // Single extreme values behave like any other point range.
  EXPECT_EQ(ComputeRelationStats(MakeRel(1, {{kMin}})).columns[0].Width(), 1u);
  EXPECT_EQ(ComputeRelationStats(MakeRel(1, {{kMax}})).columns[0].Width(), 1u);

  EXPECT_EQ(RangeWidth(10, 3), 0u);
  EXPECT_EQ(RangeWidth(kMin, kMax), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(RangeWidth(-3, 3), 7u);
}

TEST(Histogram, EmptyAndSingleValueColumns) {
  const Histogram empty = BuildHistogram({});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.buckets(), 0u);
  EXPECT_DOUBLE_EQ(empty.SelectivityLeq(100), 0.0);
  EXPECT_DOUBLE_EQ(empty.ExpectedFrequency(), 0.0);

  const Histogram single = BuildHistogram({7, 7, 7, 7});
  ASSERT_EQ(single.buckets(), 1u);
  EXPECT_EQ(single.total, 4u);
  EXPECT_EQ(single.counts[0], 4u);
  EXPECT_EQ(single.distincts[0], 1u);
  EXPECT_DOUBLE_EQ(single.SelectivityLeq(6), 0.0);
  EXPECT_DOUBLE_EQ(single.SelectivityLeq(7), 1.0);
  EXPECT_DOUBLE_EQ(single.SelectivityLeq(1000), 1.0);
  // Every row shares its value with all four rows.
  EXPECT_DOUBLE_EQ(single.ExpectedFrequency(), 4.0);
}

TEST(Histogram, EqualValuesNeverStraddleABucketBoundary) {
  // 8 copies each of 4 values into at most 4 buckets of depth 8: each
  // value must land whole in its own bucket.
  std::vector<core::Value> values;
  for (core::Value v = 1; v <= 4; ++v) {
    for (int i = 0; i < 8; ++i) values.push_back(v);
  }
  const Histogram h = BuildHistogram(values, 4);
  ASSERT_EQ(h.buckets(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(h.counts[b], 8u) << "bucket " << b;
    EXPECT_EQ(h.distincts[b], 1u) << "bucket " << b;
    EXPECT_EQ(h.upper[b], static_cast<core::Value>(b + 1));
  }
  // Cumulative fractions at the boundaries are exact.
  EXPECT_DOUBLE_EQ(h.SelectivityLeq(2), 0.5);
  EXPECT_DOUBLE_EQ(h.DistinctLeq(2), 2.0);
}

TEST(Histogram, SkewedColumnKeepsItsHeavyHitterVisible) {
  // One value holds 90 of 100 rows: expected frequency must reflect that
  // a random row's value matches ~81 rows, not the uniform 100/11.
  std::vector<core::Value> values(90, 42);
  for (core::Value v = 0; v < 10; ++v) values.push_back(100 + v);
  std::sort(values.begin(), values.end());
  const Histogram h = BuildHistogram(values, 8);
  EXPECT_GT(h.ExpectedFrequency(), 70.0);
  // Uniform over the same count/distinct shape would be 100/11 ≈ 9.
  EXPECT_LT(h.ExpectedFrequency(), 90.0 + 1.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLeq(42), 0.9);
}

TEST(Histogram, ExtremeValueBucketsDoNotOverflow) {
  constexpr core::Value kMin = std::numeric_limits<core::Value>::min();
  constexpr core::Value kMax = std::numeric_limits<core::Value>::max();
  const Histogram h = BuildHistogram({kMin, -1, 0, 1, kMax}, 2);
  ASSERT_GE(h.buckets(), 1u);
  EXPECT_EQ(h.total, 5u);
  EXPECT_DOUBLE_EQ(h.SelectivityLeq(kMax), 1.0);
  EXPECT_GE(h.SelectivityLeq(0), 0.0);
  EXPECT_LE(h.SelectivityLeq(0), 1.0);
  EXPECT_GT(h.ExpectedFrequency(), 0.0);
}

TEST(RelationStats, GroupSizeHistogramTracksTheDistribution) {
  // Groups of sizes 1, 1, 1, 5: min/avg/max alone cannot distinguish
  // this from {2, 2, 2, 2}; the size histogram can.
  const auto r = MakeRel(2, {{1, 10}, {2, 10}, {3, 10},
                             {4, 1}, {4, 2}, {4, 3}, {4, 4}, {4, 5}});
  const RelationStats stats = ComputeRelationStats(r);
  const Histogram& sizes = stats.groups.size_histogram;
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.total, 4u);  // One sample per group.
  EXPECT_DOUBLE_EQ(sizes.SelectivityLeq(1), 0.75);
  EXPECT_DOUBLE_EQ(sizes.SelectivityLeq(5), 1.0);
}

// ---------------------------------------------------------------------------
// Database mutation counters and the caching provider.
// ---------------------------------------------------------------------------

TEST(DatabaseVersions, SetRelationAndMutableAccessBumpTheCounter) {
  auto db = setalg::testing::DivisionDb(MakeRel(2, {{1, 2}}), MakeRel(1, {{2}}));
  const auto r0 = db.relation_version("R");
  const auto s0 = db.relation_version("S");
  db.SetRelation("R", MakeRel(2, {{3, 4}}));
  EXPECT_GT(db.relation_version("R"), r0);
  EXPECT_EQ(db.relation_version("S"), s0);
  db.mutable_relation("S")->Add({7});
  EXPECT_GT(db.relation_version("S"), s0);
}

TEST(DatabaseVersions, CopiesGetAFreshIdAndDivergeIndependently) {
  auto db = setalg::testing::DivisionDb(MakeRel(2, {{1, 2}}), MakeRel(1, {{2}}));
  const core::Database copy = db;
  EXPECT_NE(db.id(), copy.id());
  EXPECT_EQ(db.relation("R"), copy.relation("R"));
}

TEST(DatabaseStats, CachesUntilInvalidatedByMutation) {
  auto db = setalg::testing::DivisionDb(MakeRel(2, {{1, 10}, {1, 20}, {2, 10}}),
                                        MakeRel(1, {{10}}));
  DatabaseStats provider(&db);
  const RelationStats* r1 = provider.Get("R");
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->cardinality, 3u);
  EXPECT_EQ(provider.recompute_count(), 1u);

  // Unchanged relation: served from cache.
  provider.Get("R");
  provider.Get("R");
  EXPECT_EQ(provider.recompute_count(), 1u);

  // Another relation: one more computation, then cached.
  ASSERT_NE(provider.Get("S"), nullptr);
  provider.Get("S");
  EXPECT_EQ(provider.recompute_count(), 2u);

  // Mutation invalidates exactly the touched relation.
  db.SetRelation("R", MakeRel(2, {{5, 50}}));
  const RelationStats* r2 = provider.Get("R");
  EXPECT_EQ(provider.recompute_count(), 3u);
  EXPECT_EQ(r2->cardinality, 1u);
  provider.Get("S");
  EXPECT_EQ(provider.recompute_count(), 3u);

  // In-place mutation via mutable_relation invalidates too.
  db.mutable_relation("R")->Add({6, 60});
  EXPECT_EQ(provider.Get("R")->cardinality, 2u);
  EXPECT_EQ(provider.recompute_count(), 4u);
}

// ---------------------------------------------------------------------------
// Version vectors — the plan cache's invalidation snapshot.
// ---------------------------------------------------------------------------

TEST(VersionVector, SnapshotSortsDeduplicatesAndTracksMutations) {
  auto db = setalg::testing::DivisionDb(MakeRel(2, {{1, 2}}), MakeRel(1, {{2}}));
  const VersionVector versions = SnapshotVersions(db, {"S", "R", "S"});
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].first, "R");
  EXPECT_EQ(versions[1].first, "S");
  EXPECT_TRUE(VersionsMatch(db, versions));

  // Mutating any snapshotted relation breaks the match...
  db.mutable_relation("S")->Add({7});
  EXPECT_FALSE(VersionsMatch(db, versions));

  // ...and a fresh snapshot matches again.
  EXPECT_TRUE(VersionsMatch(db, SnapshotVersions(db, {"R", "S"})));
}

TEST(VersionVector, MutationOutsideTheSnapshotDoesNotInvalidate) {
  auto db = setalg::testing::DivisionDb(MakeRel(2, {{1, 2}}), MakeRel(1, {{2}}));
  const VersionVector r_only = SnapshotVersions(db, {"R"});
  db.mutable_relation("S")->Add({9});
  EXPECT_TRUE(VersionsMatch(db, r_only))
      << "a plan that only reads R must survive mutations of S";
}

TEST(VersionVector, CollidingNamesOnDifferentDatabasesAreIndependent) {
  // Two databases, same relation names, independent mutation counters:
  // a version vector snapshotted from one database says nothing about
  // the other — which is why every plan-cache key also carries the
  // database's process-unique id.
  auto db1 = setalg::testing::DivisionDb(MakeRel(2, {{1, 2}}), MakeRel(1, {{2}}));
  core::Database db2 = db1;
  ASSERT_NE(db1.id(), db2.id());

  const VersionVector from_db1 = SnapshotVersions(db1, {"R", "S"});
  // The copy starts with identical counters, so the raw vector *would*
  // match db2 — stale data under a colliding name. Mutating db2 shows
  // the counters diverge independently while db1's snapshot stays valid.
  db2.SetRelation("R", MakeRel(2, {{5, 6}}));
  EXPECT_TRUE(VersionsMatch(db1, from_db1));
  EXPECT_FALSE(VersionsMatch(db2, from_db1));
  EXPECT_GT(db2.relation_version("R"), db1.relation_version("R"));
}

TEST(VersionVector, NamesOutsideTheSchemaSnapshotAsZero) {
  const auto db =
      setalg::testing::DivisionDb(MakeRel(2, {{1, 2}}), MakeRel(1, {{2}}));
  const VersionVector versions = SnapshotVersions(db, {"Missing"});
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].second, 0u);
  EXPECT_TRUE(VersionsMatch(db, versions));
}

TEST(DatabaseStats, UnknownRelationIsNullNotAnAbort) {
  auto db = setalg::testing::DivisionDb(MakeRel(2, {{1, 2}}), MakeRel(1, {{2}}));
  DatabaseStats provider(&db);
  EXPECT_EQ(provider.Get("Missing"), nullptr);
}

}  // namespace
}  // namespace setalg::stats
