// Algebraic-law property tests: classical relational-algebra identities
// checked on randomized databases. These guard the evaluator and the
// rewriters against whole classes of bugs (wrong column arithmetic, broken
// set semantics, asymmetric join handling).
#include <gtest/gtest.h>

#include "ra/eval.h"
#include "ra/expr.h"
#include "setjoin/division.h"
#include "setjoin/setjoin.h"
#include "test_util.h"

namespace setalg {
namespace {

using ra::Cmp;
using ra::ExprPtr;
using setalg::testing::MakeRel;
using setalg::testing::RandomDatabase;

core::Schema TwoBinarySchema() {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("T", 2);
  return schema;
}

class AlgebraLawTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  core::Database Db() const { return RandomDatabase(TwoBinarySchema(), 40, 7,
                                                    GetParam()); }
};

TEST_P(AlgebraLawTest, UnionIsCommutativeAndAssociative) {
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto t = ra::Rel("T", 2);
  EXPECT_EQ(ra::Eval(ra::Union(r, t), db), ra::Eval(ra::Union(t, r), db));
  EXPECT_EQ(ra::Eval(ra::Union(ra::Union(r, t), r), db),
            ra::Eval(ra::Union(r, ra::Union(t, r)), db));
}

TEST_P(AlgebraLawTest, UnionAndDiffIdempotence) {
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  EXPECT_EQ(ra::Eval(ra::Union(r, r), db), ra::Eval(r, db));
  EXPECT_TRUE(ra::Eval(ra::Diff(r, r), db).empty());
}

TEST_P(AlgebraLawTest, DifferenceDistributesOverUnionOnTheRight) {
  // (A ∪ B) − C = (A − C) ∪ (B − C).
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto t = ra::Rel("T", 2);
  auto c = ra::SelectLt(ra::Rel("R", 2), 1, 2);
  EXPECT_EQ(ra::Eval(ra::Diff(ra::Union(r, t), c), db),
            ra::Eval(ra::Union(ra::Diff(r, c), ra::Diff(t, c)), db));
}

TEST_P(AlgebraLawTest, SelectionsCommute) {
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  EXPECT_EQ(ra::Eval(ra::SelectEq(ra::SelectLt(r, 1, 2), 1, 1), db),
            ra::Eval(ra::SelectLt(ra::SelectEq(r, 1, 1), 1, 2), db));
}

TEST_P(AlgebraLawTest, ProjectionComposition) {
  // π_{p}(π_{q}(E)) = π_{q∘p}(E).
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto lhs = ra::Project(ra::Project(r, {2, 1}), {2});
  auto rhs = ra::Project(r, {1});
  EXPECT_EQ(ra::Eval(lhs, db), ra::Eval(rhs, db));
}

TEST_P(AlgebraLawTest, SelectionDistributesOverUnionAndDiff) {
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto t = ra::Rel("T", 2);
  EXPECT_EQ(ra::Eval(ra::SelectLt(ra::Union(r, t), 1, 2), db),
            ra::Eval(ra::Union(ra::SelectLt(r, 1, 2), ra::SelectLt(t, 1, 2)), db));
  EXPECT_EQ(ra::Eval(ra::SelectLt(ra::Diff(r, t), 1, 2), db),
            ra::Eval(ra::Diff(ra::SelectLt(r, 1, 2), ra::SelectLt(t, 1, 2)), db));
}

TEST_P(AlgebraLawTest, JoinIsCommutativeUpToColumnPermutation) {
  const auto db = Db();
  auto rt = ra::Join(ra::Rel("R", 2), ra::Rel("T", 2), {{2, Cmp::kEq, 1}});
  auto tr = ra::Join(ra::Rel("T", 2), ra::Rel("R", 2), {{1, Cmp::kEq, 2}});
  EXPECT_EQ(ra::Eval(rt, db), ra::Eval(ra::Project(tr, {3, 4, 1, 2}), db));
}

TEST_P(AlgebraLawTest, JoinDistributesOverUnion) {
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto t = ra::Rel("T", 2);
  auto lhs = ra::Join(ra::Union(r, t), t, {{2, Cmp::kEq, 1}});
  auto rhs = ra::Union(ra::Join(r, t, {{2, Cmp::kEq, 1}}),
                       ra::Join(t, t, {{2, Cmp::kEq, 1}}));
  EXPECT_EQ(ra::Eval(lhs, db), ra::Eval(rhs, db));
}

TEST_P(AlgebraLawTest, SelectionPushesThroughJoin) {
  // σ on left columns commutes with the join.
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto t = ra::Rel("T", 2);
  auto outside = ra::SelectLt(ra::Join(r, t, {{2, Cmp::kEq, 1}}), 1, 2);
  auto inside = ra::Join(ra::SelectLt(r, 1, 2), t, {{2, Cmp::kEq, 1}});
  EXPECT_EQ(ra::Eval(outside, db), ra::Eval(inside, db));
}

TEST_P(AlgebraLawTest, SemijoinAbsorption) {
  // R ⋉ (R ⋉ T) = R ⋉ T, and R ⋉ R = R on shared key columns.
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto t = ra::Rel("T", 2);
  auto rt = ra::SemiJoin(r, t, {{2, Cmp::kEq, 1}});
  EXPECT_EQ(ra::Eval(ra::SemiJoin(rt, t, {{2, Cmp::kEq, 1}}), db),
            ra::Eval(rt, db));
  EXPECT_EQ(ra::Eval(ra::SemiJoin(r, r, {{1, Cmp::kEq, 1}, {2, Cmp::kEq, 2}}), db),
            ra::Eval(r, db));
}

TEST_P(AlgebraLawTest, SemijoinDistributesOverUnionOnTheLeft) {
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto t = ra::Rel("T", 2);
  auto lhs = ra::SemiJoin(ra::Union(r, t), t, {{1, Cmp::kEq, 2}});
  auto rhs = ra::Union(ra::SemiJoin(r, t, {{1, Cmp::kEq, 2}}),
                       ra::SemiJoin(t, t, {{1, Cmp::kEq, 2}}));
  EXPECT_EQ(ra::Eval(lhs, db), ra::Eval(rhs, db));
}

TEST_P(AlgebraLawTest, SemijoinIgnoresRightSideDuplication) {
  // E1 ⋉ E2 = E1 ⋉ (E2 ∪ E2) — existence is insensitive to multiplicity.
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto t = ra::Rel("T", 2);
  EXPECT_EQ(ra::Eval(ra::SemiJoin(r, t, {{2, Cmp::kLt, 2}}), db),
            ra::Eval(ra::SemiJoin(r, ra::Union(t, t), {{2, Cmp::kLt, 2}}), db));
}

TEST_P(AlgebraLawTest, TagThenProjectIsIdentity) {
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  EXPECT_EQ(ra::Eval(ra::Project(ra::Tag(r, 99), {1, 2}), db), ra::Eval(r, db));
}

TEST_P(AlgebraLawTest, TagsCommute) {
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto ab = ra::Project(ra::Tag(ra::Tag(r, 5), 6), {1, 2, 4, 3});
  auto ba = ra::Tag(ra::Tag(r, 6), 5);
  EXPECT_EQ(ra::Eval(ab, db), ra::Eval(ba, db));
}

TEST_P(AlgebraLawTest, ProductWithSingletonIsTag) {
  // R × τ_c(π_{}(R)) = τ_c(R) whenever R is nonempty.
  const auto db = Db();
  auto r = ra::Rel("R", 2);
  auto singleton = ra::Tag(ra::Project(ra::Rel("R", 2), {}), 42);
  EXPECT_EQ(ra::Eval(ra::Product(r, singleton), db), ra::Eval(ra::Tag(r, 42), db));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLawTest, ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Division laws.
// ---------------------------------------------------------------------------

class DivisionLawTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  core::Relation R() const {
    return setalg::testing::RandomDatabase(TwoBinarySchema(), 60, 8, GetParam())
        .relation("R");
  }
  static core::Relation Divisor(std::initializer_list<core::Value> values) {
    core::Relation s(1);
    for (core::Value v : values) s.Add({v});
    return s;
  }
};

TEST_P(DivisionLawTest, DividingByUnionIntersectsResults) {
  // R ÷ (S1 ∪ S2) = (R ÷ S1) ∩ (R ÷ S2).
  const auto r = R();
  const auto s1 = Divisor({1, 2});
  const auto s2 = Divisor({2, 3});
  const auto both = core::Union(s1, s2);
  const auto lhs =
      setjoin::Divide(r, both, setjoin::DivisionAlgorithm::kHashDivision);
  const auto rhs = core::Intersect(
      setjoin::Divide(r, s1, setjoin::DivisionAlgorithm::kHashDivision),
      setjoin::Divide(r, s2, setjoin::DivisionAlgorithm::kHashDivision));
  EXPECT_EQ(lhs, rhs);
}

TEST_P(DivisionLawTest, DivisionIsAntitoneInTheDivisor) {
  const auto r = R();
  const auto small = Divisor({1});
  const auto large = Divisor({1, 2, 3});
  const auto with_small =
      setjoin::Divide(r, small, setjoin::DivisionAlgorithm::kAggregate);
  const auto with_large =
      setjoin::Divide(r, large, setjoin::DivisionAlgorithm::kAggregate);
  EXPECT_EQ(core::Intersect(with_small, with_large), with_large);
}

TEST_P(DivisionLawTest, EqualityDivisionRefinesContainment) {
  const auto r = R();
  const auto s = Divisor({1, 2});
  const auto equal =
      setjoin::DivideEqual(r, s, setjoin::DivisionAlgorithm::kSortMerge);
  const auto contains =
      setjoin::Divide(r, s, setjoin::DivisionAlgorithm::kSortMerge);
  EXPECT_EQ(core::Intersect(equal, contains), equal);
}

TEST_P(DivisionLawTest, DivisionAgreesWithSetContainmentJoinColumn) {
  // R ÷ S = π_A of the containment join against the single group {S}.
  const auto r = R();
  const auto s = Divisor({2, 4});
  core::Relation s_grouped(2);
  for (std::size_t i = 0; i < s.size(); ++i) s_grouped.Add({7, s.tuple(i)[0]});
  const auto join = setjoin::SetContainmentJoin(
      r, s_grouped, setjoin::ContainmentAlgorithm::kInvertedIndex);
  core::Relation from_join(1);
  for (std::size_t i = 0; i < join.size(); ++i) from_join.Add({join.tuple(i)[0]});
  EXPECT_EQ(setjoin::Divide(r, s, setjoin::DivisionAlgorithm::kHashDivision),
            from_join);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivisionLawTest,
                         ::testing::Range<std::uint64_t>(10, 15));

}  // namespace
}  // namespace setalg
