#include <gtest/gtest.h>

#include "ra/eval.h"
#include "ra/expr.h"
#include "test_util.h"

namespace setalg::ra {
namespace {

using setalg::testing::MakeRel;
using core::Relation;

core::Database TwoRelDb() {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  db.SetRelation("R", MakeRel(2, {{1, 10}, {2, 20}, {3, 10}}));
  db.SetRelation("S", MakeRel(1, {{10}, {30}}));
  return db;
}

TEST(Eval, RelationReference) {
  const auto db = TwoRelDb();
  EXPECT_EQ(Eval(Rel("S", 1), db), MakeRel(1, {{10}, {30}}));
}

TEST(Eval, UnionDeduplicates) {
  const auto db = TwoRelDb();
  auto e = Union(Rel("S", 1), Rel("S", 1));
  EXPECT_EQ(Eval(e, db), MakeRel(1, {{10}, {30}}));
}

TEST(Eval, Difference) {
  const auto db = TwoRelDb();
  auto e = Diff(Rel("S", 1), Project(Rel("R", 2), {2}));
  EXPECT_EQ(Eval(e, db), MakeRel(1, {{30}}));
}

TEST(Eval, ProjectionReorderAndRepeat) {
  const auto db = TwoRelDb();
  auto e = Project(Rel("R", 2), {2, 1, 1});
  EXPECT_EQ(Eval(e, db),
            MakeRel(3, {{10, 1, 1}, {20, 2, 2}, {10, 3, 3}}));
}

TEST(Eval, ProjectionCollapsesDuplicates) {
  const auto db = TwoRelDb();
  auto e = Project(Rel("R", 2), {2});
  EXPECT_EQ(Eval(e, db), MakeRel(1, {{10}, {20}}));
}

TEST(Eval, ProjectionToZeroColumns) {
  const auto db = TwoRelDb();
  auto e = Project(Rel("R", 2), {});
  const Relation out = Eval(e, db);
  EXPECT_EQ(out.arity(), 0u);
  EXPECT_EQ(out.size(), 1u);  // Nonempty input ⇒ {()}.
  core::Schema schema;
  schema.AddRelation("R", 2);
  core::Database empty_db(schema);
  EXPECT_EQ(Eval(e, empty_db).size(), 0u);
}

TEST(Eval, SelectionEqAndLt) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  core::Database db(schema);
  db.SetRelation("R", MakeRel(2, {{1, 1}, {1, 2}, {2, 1}}));
  EXPECT_EQ(Eval(SelectEq(Rel("R", 2), 1, 2), db), MakeRel(2, {{1, 1}}));
  EXPECT_EQ(Eval(SelectLt(Rel("R", 2), 1, 2), db), MakeRel(2, {{1, 2}}));
}

TEST(Eval, ConstTagAppendsConstant) {
  const auto db = TwoRelDb();
  auto e = Tag(Rel("S", 1), -7);
  EXPECT_EQ(Eval(e, db), MakeRel(2, {{10, -7}, {30, -7}}));
}

TEST(Eval, SelectConstComposite) {
  const auto db = TwoRelDb();
  auto e = SelectConst(Rel("R", 2), 2, 10);
  EXPECT_EQ(Eval(e, db), MakeRel(2, {{1, 10}, {3, 10}}));
}

TEST(Eval, EquiJoin) {
  const auto db = TwoRelDb();
  auto e = Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  EXPECT_EQ(Eval(e, db), MakeRel(3, {{1, 10, 10}, {3, 10, 10}}));
}

TEST(Eval, CartesianProduct) {
  const auto db = TwoRelDb();
  auto e = Product(Rel("S", 1), Rel("S", 1));
  EXPECT_EQ(Eval(e, db),
            MakeRel(2, {{10, 10}, {10, 30}, {30, 10}, {30, 30}}));
}

TEST(Eval, ThetaJoinLessThan) {
  const auto db = TwoRelDb();
  auto e = Join(Rel("S", 1), Rel("S", 1), {{1, Cmp::kLt, 1}});
  EXPECT_EQ(Eval(e, db), MakeRel(2, {{10, 30}}));
}

TEST(Eval, ThetaJoinGreaterAndNotEqual) {
  const auto db = TwoRelDb();
  auto gt = Join(Rel("S", 1), Rel("S", 1), {{1, Cmp::kGt, 1}});
  EXPECT_EQ(Eval(gt, db), MakeRel(2, {{30, 10}}));
  auto neq = Join(Rel("S", 1), Rel("S", 1), {{1, Cmp::kNeq, 1}});
  EXPECT_EQ(Eval(neq, db), MakeRel(2, {{10, 30}, {30, 10}}));
}

TEST(Eval, MixedEqAndOrderJoin) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  db.SetRelation("R", MakeRel(2, {{1, 5}, {1, 9}, {2, 5}}));
  db.SetRelation("T", MakeRel(2, {{1, 6}, {2, 4}}));
  // Join on first columns equal and R.2 < T.2.
  auto e = Join(Rel("R", 2), Rel("T", 2),
                {{1, Cmp::kEq, 1}, {2, Cmp::kLt, 2}});
  EXPECT_EQ(Eval(e, db), MakeRel(4, {{1, 5, 1, 6}}));
}

TEST(Eval, JoinWithEmptySideIsEmpty) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  db.SetRelation("R", MakeRel(2, {{1, 2}}));
  auto e = Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  EXPECT_TRUE(Eval(e, db).empty());
}

TEST(Eval, SemiJoinDefinition2Semantics) {
  const auto db = TwoRelDb();
  auto e = SemiJoin(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  EXPECT_EQ(Eval(e, db), MakeRel(2, {{1, 10}, {3, 10}}));
}

TEST(Eval, SemiJoinEmptyThetaChecksNonemptiness) {
  const auto db = TwoRelDb();
  auto e = SemiJoin(Rel("R", 2), Rel("S", 1), {});
  EXPECT_EQ(Eval(e, db).size(), 3u);  // S nonempty ⇒ all of R survives.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db2(schema);
  db2.SetRelation("R", MakeRel(2, {{1, 2}}));
  EXPECT_TRUE(Eval(e, db2).empty());  // S empty ⇒ nothing survives.
}

TEST(Eval, SemiJoinPureOrderAtom) {
  const auto db = TwoRelDb();
  auto e = SemiJoin(Rel("S", 1), Rel("S", 1), {{1, Cmp::kLt, 1}});
  EXPECT_EQ(Eval(e, db), MakeRel(1, {{10}}));
}

TEST(Eval, SemiJoinEqualityEmbeddingEquivalence) {
  // E1 ⋉_θ E2 = π_{1..n}(E1 ⋈_θ E2) — checked on a concrete instance.
  const auto db = TwoRelDb();
  auto semi = SemiJoin(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  auto join = Project(Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}}), {1, 2});
  EXPECT_EQ(Eval(semi, db), Eval(join, db));
}

TEST(Eval, ExampleThreeLousyBars) {
  // The paper's Example 3 on a hand-built beer-drinkers database.
  core::Schema schema;
  schema.AddRelation("Likes", 2);
  schema.AddRelation("Serves", 2);
  schema.AddRelation("Visits", 2);
  core::Database db(schema);
  // Drinkers 1,2; bars 10,11; beers 20,21.
  db.SetRelation("Visits", MakeRel(2, {{1, 10}, {2, 11}}));
  db.SetRelation("Serves", MakeRel(2, {{10, 20}, {11, 21}}));
  db.SetRelation("Likes", MakeRel(2, {{1, 20}}));  // Only beer 20 is liked.
  // Bar 11 serves only unliked beers: lousy. Drinker 2 visits it.
  auto lousy = Diff(
      Project(Rel("Serves", 2), {1}),
      Project(SemiJoin(Rel("Serves", 2), Rel("Likes", 2), {{2, Cmp::kEq, 2}}), {1}));
  auto e = Project(SemiJoin(Rel("Visits", 2), lousy, {{2, Cmp::kEq, 1}}), {1});
  EXPECT_EQ(Eval(e, db), MakeRel(1, {{2}}));
}

// ---------------------------------------------------------------------------
// Instrumentation.
// ---------------------------------------------------------------------------

TEST(EvalStats, RecordsEveryDistinctSubexpressionOnce) {
  const auto db = TwoRelDb();
  auto r = Rel("R", 2);
  auto e = Union(Project(r, {1}), Project(r, {1}));
  EvalStats stats;
  Eval(e, db, &stats);
  // r and the (shared) projection and the union: exactly 3 nodes when the
  // projection subtree is shared... here two distinct Project nodes were
  // built, so: r, proj1, proj2, union = 4.
  EXPECT_EQ(stats.nodes.size(), 4u);
}

TEST(EvalStats, SharedSubtreeEvaluatedOnce) {
  const auto db = TwoRelDb();
  auto shared = Project(Rel("R", 2), {1});
  auto e = Union(shared, shared);
  EvalStats stats;
  Eval(e, db, &stats);
  EXPECT_EQ(stats.nodes.size(), 3u);  // R, shared projection, union.
}

TEST(EvalStats, MaxIntermediateSeesTheProduct) {
  const auto db = TwoRelDb();
  auto e = Project(Product(Rel("R", 2), Rel("S", 1)), {1});
  EvalStats stats;
  Eval(e, db, &stats);
  EXPECT_EQ(stats.max_intermediate, 6u);  // |R| * |S| = 3 * 2.
}

TEST(EvalStats, TotalIntermediateSumsAllNodes) {
  const auto db = TwoRelDb();
  // Distinct leaf nodes are separate subexpressions (counted separately)...
  auto e = Union(Rel("S", 1), Rel("S", 1));
  EvalStats stats;
  Eval(e, db, &stats);
  EXPECT_EQ(stats.total_intermediate, 6u);
  // ...while a shared node contributes once.
  auto s = Rel("S", 1);
  auto shared = Union(s, s);
  EvalStats shared_stats;
  Eval(shared, db, &shared_stats);
  EXPECT_EQ(shared_stats.total_intermediate, 4u);
}

TEST(EvalStats, JoinRowsEmittedCountsMatches) {
  const auto db = TwoRelDb();
  auto e = Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  EvalStats stats;
  Eval(e, db, &stats);
  EXPECT_EQ(stats.join_rows_emitted, 2u);
}

TEST(EvalStats, MaxIntermediateHelper) {
  const auto db = TwoRelDb();
  auto e = Product(Rel("S", 1), Rel("S", 1));
  EXPECT_EQ(MaxIntermediateSize(e, db), 4u);
}

}  // namespace
}  // namespace setalg::ra
