#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "ra/expr.h"
#include "ra/parse.h"
#include "test_util.h"

namespace setalg::ra {
namespace {

core::Schema TestSchema() {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  schema.AddRelation("T", 3);
  return schema;
}

// ---------------------------------------------------------------------------
// Builders and arities.
// ---------------------------------------------------------------------------

TEST(Expr, RelationCarriesNameAndArity) {
  auto e = Rel("R", 2);
  EXPECT_EQ(e->kind(), OpKind::kRelation);
  EXPECT_EQ(e->relation_name(), "R");
  EXPECT_EQ(e->arity(), 2u);
}

TEST(Expr, UnionAndDiffPreserveArity) {
  auto e = Union(Rel("R", 2), Rel("R", 2));
  EXPECT_EQ(e->arity(), 2u);
  auto d = Diff(Rel("R", 2), Rel("R", 2));
  EXPECT_EQ(d->arity(), 2u);
}

TEST(Expr, ProjectionArityIsColumnCount) {
  auto e = Project(Rel("T", 3), {3, 1, 1});
  EXPECT_EQ(e->arity(), 3u);
  EXPECT_EQ(Project(Rel("T", 3), {2})->arity(), 1u);
  EXPECT_EQ(Project(Rel("T", 3), {})->arity(), 0u);
}

TEST(Expr, TagAppendsColumn) {
  auto e = Tag(Rel("S", 1), 42);
  EXPECT_EQ(e->arity(), 2u);
  EXPECT_EQ(e->tag_value(), 42);
}

TEST(Expr, JoinArityIsSum) {
  auto e = Join(Rel("R", 2), Rel("T", 3), {{1, Cmp::kEq, 2}});
  EXPECT_EQ(e->arity(), 5u);
}

TEST(Expr, SemiJoinKeepsLeftArity) {
  auto e = SemiJoin(Rel("R", 2), Rel("T", 3), {{1, Cmp::kLt, 3}});
  EXPECT_EQ(e->arity(), 2u);
}

TEST(Expr, ProductIsJoinWithEmptyTheta) {
  auto e = Product(Rel("R", 2), Rel("S", 1));
  EXPECT_EQ(e->kind(), OpKind::kJoin);
  EXPECT_TRUE(e->atoms().empty());
  EXPECT_EQ(e->arity(), 3u);
}

TEST(Expr, SelectConstBuildsThePaperComposite) {
  // σ_{i='c'}(E) = π_{1..n}(σ_{i=n+1}(τ_c(E))).
  auto e = SelectConst(Rel("R", 2), 1, 7);
  ASSERT_EQ(e->kind(), OpKind::kProjection);
  EXPECT_EQ(e->arity(), 2u);
  const auto& sel = e->child(0);
  ASSERT_EQ(sel->kind(), OpKind::kSelection);
  EXPECT_EQ(sel->selection_i(), 1u);
  EXPECT_EQ(sel->selection_j(), 3u);
  const auto& tag = sel->child(0);
  ASSERT_EQ(tag->kind(), OpKind::kConstTag);
  EXPECT_EQ(tag->tag_value(), 7);
}

TEST(Expr, NumNodesCountsTreeOccurrences) {
  auto r = Rel("R", 2);
  auto e = Union(r, r);  // Shared child counted per use in the tree view.
  EXPECT_EQ(e->NumNodes(), 3u);
}

TEST(Expr, PostOrderVisitsSharedNodesOnce) {
  auto r = Rel("R", 2);
  auto e = Union(r, r);
  EXPECT_EQ(PostOrder(*e).size(), 2u);  // r and the union.
}

// ---------------------------------------------------------------------------
// Classification.
// ---------------------------------------------------------------------------

TEST(Expr, IsRaRejectsSemijoin) {
  auto join = Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  EXPECT_TRUE(IsRa(*join));
  auto semi = SemiJoin(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  EXPECT_FALSE(IsRa(*semi));
  EXPECT_TRUE(IsSa(*semi));
  EXPECT_FALSE(IsSa(*join));
}

TEST(Expr, IsSaEqRequiresEqualityAtoms) {
  auto eq = SemiJoin(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  EXPECT_TRUE(IsSaEq(*eq));
  auto lt = SemiJoin(Rel("R", 2), Rel("S", 1), {{2, Cmp::kLt, 1}});
  EXPECT_TRUE(IsSa(*lt));
  EXPECT_FALSE(IsSaEq(*lt));
}

TEST(Expr, IsRaEqRequiresEqualityJoins) {
  auto eq = Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  EXPECT_TRUE(IsRaEq(*eq));
  auto neq = Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kNeq, 1}});
  EXPECT_FALSE(IsRaEq(*neq));
}

TEST(Expr, SigmaLtIsAllowedInSaEq) {
  // SA= restricts semijoin conditions, not selections.
  auto e = SelectLt(SemiJoin(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}}), 1, 2);
  EXPECT_TRUE(IsSaEq(*e));
}

TEST(Expr, CollectConstantsSortsAndDedupes) {
  auto e = Tag(Tag(Rel("S", 1), 9), 3);
  EXPECT_EQ(CollectConstants(*e), (core::ConstantSet{3, 9}));
  auto dup = Union(Tag(Rel("S", 1), 5), Tag(Rel("S", 1), 5));
  EXPECT_EQ(CollectConstants(*dup), (core::ConstantSet{5}));
  EXPECT_TRUE(CollectConstants(*Rel("R", 2)).empty());
}

TEST(Expr, CollectRelationNames) {
  auto e = Join(Rel("R", 2), Union(Rel("S", 1), Rel("S", 1)), {});
  EXPECT_EQ(CollectRelationNames(*e), (std::vector<std::string>{"R", "S"}));
}

TEST(Expr, ValidateAgainstSchemaDetectsMismatches) {
  const auto schema = TestSchema();
  EXPECT_EQ(ValidateAgainstSchema(*Rel("R", 2), schema), "");
  EXPECT_NE(ValidateAgainstSchema(*Rel("R", 3), schema), "");
  EXPECT_NE(ValidateAgainstSchema(*Rel("Unknown", 1), schema), "");
}

TEST(Expr, CmpHelpers) {
  EXPECT_STREQ(CmpToString(Cmp::kEq), "=");
  EXPECT_STREQ(CmpToString(Cmp::kNeq), "!=");
  EXPECT_EQ(MirrorCmp(Cmp::kLt), Cmp::kGt);
  EXPECT_EQ(MirrorCmp(Cmp::kGt), Cmp::kLt);
  EXPECT_EQ(MirrorCmp(Cmp::kEq), Cmp::kEq);
  EXPECT_EQ(MirrorCmp(Cmp::kNeq), Cmp::kNeq);
}

// ---------------------------------------------------------------------------
// Printing and parsing.
// ---------------------------------------------------------------------------

TEST(Parse, RoundTripsCatalog) {
  const auto schema = TestSchema();
  const std::vector<std::string> catalog = {
      "R",
      "union(R, R)",
      "diff(R, R)",
      "pi[1](R)",
      "pi[2,1](R)",
      "pi[](R)",
      "sigma[1=2](R)",
      "sigma[1<2](R)",
      "tag[7](S)",
      "tag[-3](S)",
      "join[2=1](R, S)",
      "join[](R, S)",
      "join[1=1;2<2](R, R)",
      "join[1!=2;1>3](R, T)",
      "semijoin[2=1](R, S)",
      "semijoin[](R, T)",
      "pi[1](semijoin[2=1](R, diff(pi[1](R), S)))",
  };
  for (const auto& text : catalog) {
    auto parsed = Parse(text, schema);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.error();
    auto reparsed = Parse((*parsed)->ToString(), schema);
    ASSERT_TRUE(reparsed.ok()) << (*parsed)->ToString();
    EXPECT_EQ((*parsed)->ToString(), (*reparsed)->ToString()) << text;
  }
}

TEST(Parse, SigmaConstantBuildsComposite) {
  const auto schema = TestSchema();
  auto parsed = Parse("sigma[1=#5](R)", schema);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ((*parsed)->kind(), OpKind::kProjection);
  EXPECT_EQ(CollectConstants(**parsed), (core::ConstantSet{5}));
}

TEST(Parse, ProductKeyword) {
  const auto schema = TestSchema();
  auto parsed = Parse("product(R, S)", schema);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->arity(), 3u);
  EXPECT_TRUE((*parsed)->atoms().empty());
}

TEST(Parse, ParenthesizedExpression) {
  const auto schema = TestSchema();
  auto parsed = Parse("((R))", schema);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->relation_name(), "R");
}

TEST(Parse, WhitespaceInsensitive) {
  const auto schema = TestSchema();
  auto parsed = Parse("  join [ 2 = 1 ] ( R ,  S )  ", schema);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
}

TEST(Parse, ErrorUnknownRelation) {
  auto parsed = Parse("Q", TestSchema());
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("unknown relation"), std::string::npos);
}

TEST(Parse, ErrorArityMismatchInUnion) {
  auto parsed = Parse("union(R, S)", TestSchema());
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("arity mismatch"), std::string::npos);
}

TEST(Parse, ErrorColumnOutOfRange) {
  EXPECT_FALSE(Parse("pi[3](R)", TestSchema()).ok());
  EXPECT_FALSE(Parse("sigma[3=1](R)", TestSchema()).ok());
  EXPECT_FALSE(Parse("join[3=1](R, S)", TestSchema()).ok());
}

TEST(Parse, ErrorTrailingInput) {
  auto parsed = Parse("R R", TestSchema());
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("trailing"), std::string::npos);
}

TEST(Parse, ErrorMalformedTokens) {
  EXPECT_FALSE(Parse("", TestSchema()).ok());
  EXPECT_FALSE(Parse("pi[1,](R)", TestSchema()).ok());
  EXPECT_FALSE(Parse("join[1~2](R, S)", TestSchema()).ok());
  EXPECT_FALSE(Parse("union(R,)", TestSchema()).ok());
}

TEST(Parse, SigmaRejectsUnsupportedOps) {
  EXPECT_FALSE(Parse("sigma[1>2](R)", TestSchema()).ok());
  EXPECT_FALSE(Parse("sigma[1!=2](R)", TestSchema()).ok());
  EXPECT_FALSE(Parse("sigma[1<#5](R)", TestSchema()).ok());
}

// ---------------------------------------------------------------------------
// Structural hashing and equality (the plan cache's key functions).
// ---------------------------------------------------------------------------

TEST(ExprHash, StructurallyEqualTreesHashEqual) {
  // α-equivalent trees — independently built (or parsed) from the same
  // structure — must collide on purpose: that is what lets one cached
  // plan serve every arrival of the same query shape.
  const auto schema = TestSchema();
  const std::vector<std::string> shapes = {
      "pi[1](join[2=1](R, S))",
      "diff(pi[1](R), pi[1](diff(join[](pi[1](R), S), R)))",
      "union(R, sigma[1=2](R))",
      "semijoin[1=1;2<3](R, T)",
      "pi[2,1,1](tag[42](S))",
  };
  for (const auto& text : shapes) {
    auto a = Parse(text, schema);
    auto b = Parse(text, schema);
    ASSERT_TRUE(a.ok() && b.ok()) << text;
    ASSERT_NE(a->get(), b->get()) << "two independent trees expected";
    EXPECT_TRUE(StructuralEqual(**a, **b)) << text;
    EXPECT_TRUE(ExprEqual{}(*a, *b)) << text;
    EXPECT_EQ(StructuralHash(**a), StructuralHash(**b)) << text;
    EXPECT_EQ(ExprHash{}(*a), ExprHash{}(*b)) << text;
  }
}

TEST(ExprHash, PayloadDifferencesChangeHashAndEquality) {
  // Near-miss pairs differing in exactly one structural fact.
  const std::vector<std::pair<ExprPtr, ExprPtr>> pairs = {
      {Rel("R", 2), Rel("Q", 2)},                            // Name.
      {Project(Rel("R", 2), {1, 2}), Project(Rel("R", 2), {2, 1})},  // Order.
      {Project(Rel("R", 2), {1}), Project(Rel("R", 2), {1, 1})},     // Count.
      {SelectEq(Rel("R", 2), 1, 2), SelectLt(Rel("R", 2), 1, 2)},    // Cmp.
      {Tag(Rel("S", 1), 1), Tag(Rel("S", 1), 2)},            // Constant.
      {Join(Rel("R", 2), Rel("S", 1), {{1, Cmp::kEq, 1}}),
       SemiJoin(Rel("R", 2), Rel("S", 1), {{1, Cmp::kEq, 1}})},  // Kind.
      {Join(Rel("R", 2), Rel("S", 1), {{1, Cmp::kEq, 1}}),
       Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}})},  // Atom column.
      {Union(Rel("R", 2), Rel("T", 2)), Union(Rel("T", 2), Rel("R", 2))},  // Sides.
  };
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& [a, b] = pairs[i];
    EXPECT_FALSE(StructuralEqual(*a, *b)) << "pair " << i;
    EXPECT_FALSE(ExprEqual{}(a, b)) << "pair " << i;
    EXPECT_NE(StructuralHash(*a), StructuralHash(*b)) << "pair " << i;
  }
}

TEST(ExprHash, RandomizedDistinctTreesRarelyCollide) {
  // Randomized property: hash agreement must track structural equality —
  // equal trees always collide, distinct trees (as witnessed by their
  // textual round-trip form) essentially never do. A hot plan cache
  // hinges on both directions.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  schema.AddRelation("T", 2);
  std::vector<ExprPtr> exprs;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    setalg::testing::RandomSaEqGenerator generator(schema, {1, 2, 3}, seed * 53);
    for (int trial = 0; trial < 20; ++trial) {
      exprs.push_back(generator.Generate(1 + trial % 3, 3));
    }
  }
  std::size_t collisions = 0;
  std::size_t distinct_pairs = 0;
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    for (std::size_t j = i + 1; j < exprs.size(); ++j) {
      const bool equal = StructuralEqual(*exprs[i], *exprs[j]);
      EXPECT_EQ(equal, exprs[i]->ToString() == exprs[j]->ToString())
          << exprs[i]->ToString() << " vs " << exprs[j]->ToString();
      if (equal) {
        EXPECT_EQ(StructuralHash(*exprs[i]), StructuralHash(*exprs[j]));
      } else {
        ++distinct_pairs;
        if (StructuralHash(*exprs[i]) == StructuralHash(*exprs[j])) ++collisions;
      }
    }
  }
  ASSERT_GT(distinct_pairs, 1000u);
  // A 64-bit structural hash colliding on randomized small trees at all
  // would point at broken mixing; allow a microscopic margin.
  EXPECT_LE(collisions, distinct_pairs / 1000);
}

TEST(ExprHash, HashIsStableAcrossRunsForDeterministicCacheStats) {
  // The hash is computed from a canonical encoding with fixed constants —
  // never from pointers or libc++'s salted std::hash — so the same tree
  // hashes identically in every process. Pinned golden values enforce it
  // (these change only if the encoding itself changes, which would also
  // silently reshuffle every cache's bucketing — make such a change
  // loudly, here).
  EXPECT_EQ(StructuralHash(*Rel("R", 2)), 7357578177269073690ULL);
  EXPECT_EQ(StructuralHash(*Project(Rel("R", 2), {1})), 13887604441762332082ULL);
  const auto division = Parse(
      "diff(pi[1](R), pi[1](diff(join[](pi[1](R), S), R)))", TestSchema());
  ASSERT_TRUE(division.ok());
  EXPECT_EQ(StructuralHash(**division), 16144500678619415734ULL);
}

}  // namespace
}  // namespace setalg::ra
