// The worst-case-optimal multiway join: AGM bound exactness on
// hand-computable hypergraphs, the generic-join operator differentially
// against reference evaluation of the equivalent binary chain (cyclic,
// acyclic, star, skewed, and empty-input shapes, serial and partitioned),
// and the planner's cost-based multiway-vs-binary routing on data whose
// binary intermediates blow past the AGM bound.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "engine/cost.h"
#include "engine/engine.h"
#include "engine/multiway.h"
#include "ra/expr.h"
#include "test_util.h"
#include "util/rng.h"

namespace setalg::engine {
namespace {

using core::Relation;

// ---------------------------------------------------------------------------
// AGM bound: the fractional-edge-cover LP on hypergraphs whose optima are
// hand-computable.
// ---------------------------------------------------------------------------

JoinHypergraph Graph(std::size_t num_vars,
                     std::vector<JoinHypergraph::Edge> edges) {
  JoinHypergraph g;
  g.num_vars = num_vars;
  g.edges = std::move(edges);
  return g;
}

TEST(AgmBound, TriangleIsNToTheThreeHalves) {
  // R(a,b) ⋈ S(b,c) ⋈ T(c,a): optimal weights (1/2, 1/2, 1/2) → n^1.5.
  const auto g = Graph(3, {{{0, 1}, 100.0}, {{1, 2}, 100.0}, {{2, 0}, 100.0}});
  EXPECT_NEAR(AgmBound(g), 1000.0, 1e-6);
  const auto cover = SolveFractionalEdgeCover(g);
  ASSERT_TRUE(cover.feasible);
  for (double w : cover.weights) EXPECT_NEAR(w, 0.5, 1e-6);
}

TEST(AgmBound, FourCycleIsNSquared) {
  // Opposite edges cover all four variables: weights (1/2, 1/2, 1/2, 1/2).
  const auto g = Graph(4, {{{0, 1}, 50.0}, {{1, 2}, 50.0}, {{2, 3}, 50.0},
                           {{3, 0}, 50.0}});
  EXPECT_NEAR(AgmBound(g), 2500.0, 1e-6);
}

TEST(AgmBound, StarNeedsEveryEdgeFully) {
  // R(a,b) ⋈ S(a,c) ⋈ T(a,d): b, c, d are each covered by exactly one
  // edge, which pins every weight to 1 → n³.
  const auto g = Graph(4, {{{0, 1}, 100.0}, {{0, 2}, 100.0}, {{0, 3}, 100.0}});
  EXPECT_NEAR(AgmBound(g), 1e6, 1e-3);
  const auto cover = SolveFractionalEdgeCover(g);
  ASSERT_TRUE(cover.feasible);
  for (double w : cover.weights) EXPECT_NEAR(w, 1.0, 1e-6);
}

TEST(AgmBound, PathIsProductOfEndpointEdges) {
  // R(a,b) ⋈ S(b,c): both edges at weight 1 → n·m.
  const auto g = Graph(3, {{{0, 1}, 50.0}, {{1, 2}, 80.0}});
  EXPECT_NEAR(AgmBound(g), 4000.0, 1e-6);
}

TEST(AgmBound, UnequalTriangleUsesGeometricMean) {
  const auto g = Graph(3, {{{0, 1}, 100.0}, {{1, 2}, 400.0}, {{2, 0}, 900.0}});
  EXPECT_NEAR(AgmBound(g), std::sqrt(100.0 * 400.0 * 900.0), 1e-6);
}

TEST(AgmBound, EmptyEdgeZeroesTheBound) {
  const auto g = Graph(3, {{{0, 1}, 0.0}, {{1, 2}, 100.0}, {{2, 0}, 100.0}});
  const auto cover = SolveFractionalEdgeCover(g);
  EXPECT_TRUE(cover.feasible);
  EXPECT_EQ(cover.bound, 0.0);
}

TEST(AgmBound, UncoveredVariableIsInfeasible) {
  const auto g = Graph(2, {{{0}, 100.0}});
  const auto cover = SolveFractionalEdgeCover(g);
  EXPECT_FALSE(cover.feasible);
  EXPECT_TRUE(std::isinf(AgmBound(g)));
}

// ---------------------------------------------------------------------------
// The operator, hand-built, vs reference evaluation of the equivalent
// binary chain. Every shape runs serial (threads 1), pooled (2, 7), and
// with an explicit partition count but no pool (the inline fan-out).
// ---------------------------------------------------------------------------

core::Database ThreeBinaryDb(const Relation& r, const Relation& s,
                             const Relation& t) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  db.SetRelation("R", r);
  db.SetRelation("S", s);
  db.SetRelation("T", t);
  return db;
}

Relation RandomEdges(std::size_t rows, std::size_t domain, std::uint64_t seed) {
  util::Rng rng(seed);
  Relation r(2);
  for (std::size_t i = 0; i < rows; ++i) {
    r.Add({static_cast<core::Value>(rng.NextBounded(domain)),
           static_cast<core::Value>(rng.NextBounded(domain))});
  }
  return r;
}

// Runs the hand-built plan under every execution configuration and
// asserts it matches `expected` (already normalized) everywhere.
void ExpectMultiwayPlanMatches(PhysicalOpPtr root, const core::Database& db,
                               const Relation& expected,
                               const std::string& context) {
  PhysicalPlan plan;
  plan.root = std::move(root);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    auto run = Engine(EngineOptions{}.WithThreads(threads)).Run(plan, db);
    ASSERT_TRUE(run.ok()) << context << " threads=" << threads << ": "
                          << run.error();
    EXPECT_EQ(run->relation, expected) << context << " threads=" << threads;
    EXPECT_EQ(run->relation.size(), run->stats.join_rows_emitted)
        << context << " threads=" << threads;
  }
}

TEST(MultiwayJoin, TriangleMatchesReference) {
  const auto db = ThreeBinaryDb(RandomEdges(60, 9, 11), RandomEdges(60, 9, 12),
                                RandomEdges(60, 9, 13));
  const auto expr = ra::Project(
      ra::Join(ra::Join(ra::Rel("R", 2), ra::Rel("S", 2), {{2, ra::Cmp::kEq, 1}}),
               ra::Rel("T", 2), {{4, ra::Cmp::kEq, 1}, {1, ra::Cmp::kEq, 2}}),
      {1, 2, 4});
  auto expected = Engine(EngineOptions::Reference()).Run(expr, db);
  ASSERT_TRUE(expected.ok()) << expected.error();
  ExpectMultiwayPlanMatches(
      MakeMultiwayJoin({MakeScan("R", 2), MakeScan("S", 2), MakeScan("T", 2)},
                       {{0, 1}, {1, 2}, {2, 0}}, 3),
      db, expected->relation, "triangle");
  // Explicit partitions without a pool: the inline fan-out path.
  PhysicalPlan pinned;
  pinned.root =
      MakeMultiwayJoin({MakeScan("R", 2), MakeScan("S", 2), MakeScan("T", 2)},
                       {{0, 1}, {1, 2}, {2, 0}}, 3, nullptr, /*partitions=*/3);
  auto run = Engine().Run(pinned, db);
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_EQ(run->relation, expected->relation);
  EXPECT_EQ(run->stats.partitions, 3u);
}

TEST(MultiwayJoin, FourCycleMatchesReference) {
  core::Schema schema;
  for (const char* name : {"R", "S", "T", "U"}) schema.AddRelation(name, 2);
  core::Database db(schema);
  db.SetRelation("R", RandomEdges(50, 8, 21));
  db.SetRelation("S", RandomEdges(50, 8, 22));
  db.SetRelation("T", RandomEdges(50, 8, 23));
  db.SetRelation("U", RandomEdges(50, 8, 24));
  const auto expr = ra::Project(
      ra::Join(ra::Join(ra::Join(ra::Rel("R", 2), ra::Rel("S", 2),
                                 {{2, ra::Cmp::kEq, 1}}),
                        ra::Rel("T", 2), {{4, ra::Cmp::kEq, 1}}),
               ra::Rel("U", 2), {{6, ra::Cmp::kEq, 1}, {1, ra::Cmp::kEq, 2}}),
      {1, 2, 4, 6});
  auto expected = Engine(EngineOptions::Reference()).Run(expr, db);
  ASSERT_TRUE(expected.ok()) << expected.error();
  ExpectMultiwayPlanMatches(
      MakeMultiwayJoin({MakeScan("R", 2), MakeScan("S", 2), MakeScan("T", 2),
                        MakeScan("U", 2)},
                       {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 4),
      db, expected->relation, "four-cycle");
}

TEST(MultiwayJoin, StarMatchesReference) {
  const auto db = ThreeBinaryDb(RandomEdges(40, 7, 31), RandomEdges(40, 7, 32),
                                RandomEdges(40, 7, 33));
  const auto expr = ra::Project(
      ra::Join(ra::Join(ra::Rel("R", 2), ra::Rel("S", 2), {{1, ra::Cmp::kEq, 1}}),
               ra::Rel("T", 2), {{1, ra::Cmp::kEq, 1}}),
      {1, 2, 4, 6});
  auto expected = Engine(EngineOptions::Reference()).Run(expr, db);
  ASSERT_TRUE(expected.ok()) << expected.error();
  ExpectMultiwayPlanMatches(
      MakeMultiwayJoin({MakeScan("R", 2), MakeScan("S", 2), MakeScan("T", 2)},
                       {{0, 1}, {0, 2}, {0, 3}}, 4),
      db, expected->relation, "star");
}

TEST(MultiwayJoin, SkewedKeyStaysCorrectUnderPartitioning) {
  // One heavy variable-0 value (most rows share key 1): hash-partitioning
  // by variable 0 lands nearly everything in one task; the merge must
  // still be exact.
  Relation r(2), s(2), t(2);
  util::Rng rng(41);
  for (std::size_t i = 0; i < 80; ++i) {
    const core::Value a = i < 70 ? 1 : static_cast<core::Value>(2 + i % 5);
    r.Add({a, static_cast<core::Value>(rng.NextBounded(6))});
    s.Add({static_cast<core::Value>(rng.NextBounded(6)),
           static_cast<core::Value>(rng.NextBounded(6))});
    t.Add({static_cast<core::Value>(rng.NextBounded(6)), a});
  }
  const auto db = ThreeBinaryDb(r, s, t);
  const auto expr = ra::Project(
      ra::Join(ra::Join(ra::Rel("R", 2), ra::Rel("S", 2), {{2, ra::Cmp::kEq, 1}}),
               ra::Rel("T", 2), {{4, ra::Cmp::kEq, 1}, {1, ra::Cmp::kEq, 2}}),
      {1, 2, 4});
  auto expected = Engine(EngineOptions::Reference()).Run(expr, db);
  ASSERT_TRUE(expected.ok()) << expected.error();
  ExpectMultiwayPlanMatches(
      MakeMultiwayJoin({MakeScan("R", 2), MakeScan("S", 2), MakeScan("T", 2)},
                       {{0, 1}, {1, 2}, {2, 0}}, 3),
      db, expected->relation, "skewed");
}

TEST(MultiwayJoin, EmptyInputEmptiesTheJoin) {
  const auto db =
      ThreeBinaryDb(RandomEdges(30, 5, 51), Relation(2), RandomEdges(30, 5, 52));
  ExpectMultiwayPlanMatches(
      MakeMultiwayJoin({MakeScan("R", 2), MakeScan("S", 2), MakeScan("T", 2)},
                       {{0, 1}, {1, 2}, {2, 0}}, 3),
      db, Relation(3), "empty-input");
}

TEST(MultiwayJoin, DuplicateVariableWithinOneInputFiltersRows) {
  // S binds variable 0 with both columns: only its diagonal rows join.
  Relation r(2), s(2);
  for (core::Value v = 0; v < 6; ++v) {
    r.Add({v, v + 10});
    s.Add({v, v});
    s.Add({v, v + 1});
  }
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  core::Database db(schema);
  db.SetRelation("R", r);
  db.SetRelation("S", s);
  const auto expr = ra::Project(
      ra::Join(ra::Rel("R", 2),
               ra::SelectEq(ra::Rel("S", 2), 1, 2),
               {{1, ra::Cmp::kEq, 1}}),
      {1, 2});
  auto expected = Engine(EngineOptions::Reference()).Run(expr, db);
  ASSERT_TRUE(expected.ok()) << expected.error();
  ExpectMultiwayPlanMatches(
      MakeMultiwayJoin({MakeScan("R", 2), MakeScan("S", 2)}, {{0, 1}, {0, 0}}, 2),
      db, expected->relation, "duplicate-variable");
}

// ---------------------------------------------------------------------------
// Planner routing: on skewed data whose binary intermediates blow past
// the AGM bound the cost-based planner must route the chain to the
// multiway operator — and the run's PlanStats must prove it stayed under
// the bound while the binary plan exceeds it.
// ---------------------------------------------------------------------------

// R = X×Y and S = Y×Z complete bipartite through a d-element middle
// domain: est(R⋈S) = n²/d tuples vs AGM bound n^1.5. T is n random
// (c, a) pairs. Disjoint value ranges per variable keep the estimator's
// distinct counts exact.
core::Database SkewedTriangleDb(std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  const std::size_t side = n / d;
  Relation r(2), s(2), t(2);
  for (std::size_t x = 0; x < side; ++x) {
    for (std::size_t y = 0; y < d; ++y) {
      r.Add({static_cast<core::Value>(1 + x),
             static_cast<core::Value>(100001 + y)});
    }
  }
  for (std::size_t y = 0; y < d; ++y) {
    for (std::size_t z = 0; z < side; ++z) {
      s.Add({static_cast<core::Value>(100001 + y),
             static_cast<core::Value>(200001 + z)});
    }
  }
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.Add({static_cast<core::Value>(200001 + rng.NextBounded(side)),
           static_cast<core::Value>(1 + rng.NextBounded(side))});
  }
  return ThreeBinaryDb(r, s, t);
}

ra::ExprPtr BinaryTriangleChain() {
  return ra::Join(
      ra::Join(ra::Rel("R", 2), ra::Rel("S", 2), {{2, ra::Cmp::kEq, 1}}),
      ra::Rel("T", 2), {{4, ra::Cmp::kEq, 1}, {1, ra::Cmp::kEq, 2}});
}

bool RoutedToMultiway(const PhysicalPlan& plan) {
  for (const auto& rewrite : plan.rewrites) {
    if (rewrite.find("multiway generic join") != std::string::npos) return true;
  }
  return false;
}

TEST(MultiwayPlanner, CostBasedRoutingStaysUnderTheAgmBound) {
  const auto db = SkewedTriangleDb(2000, 10, 7);
  const auto expr = BinaryTriangleChain();

  const Engine multiway(EngineOptions::CostBased().WithMultiway());
  auto plan = multiway.Plan(expr, db);
  ASSERT_TRUE(plan.ok()) << plan.error();
  ASSERT_TRUE(plan->has_agm_bound);
  EXPECT_TRUE(RoutedToMultiway(*plan));
  bool priced = false;
  for (const auto& choice : plan->choices) {
    if (choice.site == "join-chain") {
      priced = true;
      EXPECT_EQ(choice.algorithm.rfind("multiway", 0), 0u) << choice.algorithm;
    }
  }
  EXPECT_TRUE(priced);

  auto routed = multiway.Run(expr, db);
  ASSERT_TRUE(routed.ok()) << routed.error();
  ASSERT_TRUE(routed->stats.has_agm_bound);
  // √(n·n·|T|) with |T| a hair under n (random duplicate collisions).
  EXPECT_NEAR(routed->stats.agm_bound, std::pow(2000.0, 1.5),
              0.03 * std::pow(2000.0, 1.5));
  EXPECT_LE(static_cast<double>(routed->stats.max_intermediate),
            routed->stats.agm_bound);

  const Engine binary(EngineOptions::CostBased());
  auto kept = binary.Run(expr, db);
  ASSERT_TRUE(kept.ok()) << kept.error();
  EXPECT_FALSE(kept->stats.has_agm_bound);
  EXPECT_GT(static_cast<double>(kept->stats.max_intermediate),
            routed->stats.agm_bound);

  EXPECT_EQ(routed->relation.flat(), kept->relation.flat());
}

TEST(MultiwayPlanner, PlannedModeRoutesOnIntermediateVsBound) {
  // Without cost_based the router compares the binary plan's estimated
  // max intermediate against the AGM bound directly.
  const auto db = SkewedTriangleDb(2000, 10, 9);
  const Engine engine(EngineOptions{}.WithMultiway());
  auto plan = engine.Plan(BinaryTriangleChain(), db);
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_TRUE(RoutedToMultiway(*plan));
  auto run = engine.Run(BinaryTriangleChain(), db);
  ASSERT_TRUE(run.ok()) << run.error();
  auto reference = Engine(EngineOptions::Reference()).Run(BinaryTriangleChain(), db);
  ASSERT_TRUE(reference.ok()) << reference.error();
  EXPECT_EQ(run->relation, reference->relation);
}

TEST(MultiwayPlanner, UniformDataKeepsTheBinaryPlan) {
  // Uniform random edges: the binary intermediates sit under the AGM
  // bound, so the chain is priced but the written plan survives.
  const auto db = ThreeBinaryDb(RandomEdges(200, 40, 61), RandomEdges(200, 40, 62),
                                RandomEdges(200, 40, 63));
  const Engine engine(EngineOptions::CostBased().WithMultiway());
  auto plan = engine.Plan(BinaryTriangleChain(), db);
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_TRUE(plan->has_agm_bound);  // Priced even when not routed.
  EXPECT_FALSE(RoutedToMultiway(*plan));
  auto run = engine.Run(BinaryTriangleChain(), db);
  auto reference = Engine(EngineOptions::Reference()).Run(BinaryTriangleChain(), db);
  ASSERT_TRUE(run.ok() && reference.ok());
  EXPECT_EQ(run->relation, reference->relation);
}

TEST(MultiwayPlanner, InteriorSelectionBecomesVariableMerge) {
  // σ[2=3] over a product is the same chain as the explicit equality
  // join: the collector pushes the selection into the hypergraph.
  const auto db = SkewedTriangleDb(1000, 10, 13);
  const auto expr = ra::Join(
      ra::SelectEq(ra::Product(ra::Rel("R", 2), ra::Rel("S", 2)), 2, 3),
      ra::Rel("T", 2), {{4, ra::Cmp::kEq, 1}, {1, ra::Cmp::kEq, 2}});
  const Engine engine(EngineOptions::CostBased().WithMultiway());
  auto plan = engine.Plan(expr, db);
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_TRUE(RoutedToMultiway(*plan));
  auto run = engine.Run(expr, db);
  auto reference = Engine(EngineOptions::Reference()).Run(expr, db);
  ASSERT_TRUE(run.ok()) << run.error();
  ASSERT_TRUE(reference.ok()) << reference.error();
  EXPECT_EQ(run->relation, reference->relation);
}

TEST(MultiwayPlanner, InteriorProjectionIsPruned) {
  // π[1,2,4] between the joins drops a duplicate column; the collector
  // re-indexes through it and the restored root projection stays exact.
  const auto db = SkewedTriangleDb(1000, 10, 17);
  const auto expr = ra::Join(
      ra::Project(ra::Join(ra::Rel("R", 2), ra::Rel("S", 2), {{2, ra::Cmp::kEq, 1}}),
                  {1, 2, 4}),
      ra::Rel("T", 2), {{3, ra::Cmp::kEq, 1}, {1, ra::Cmp::kEq, 2}});
  const Engine engine(EngineOptions::CostBased().WithMultiway());
  auto plan = engine.Plan(expr, db);
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_TRUE(RoutedToMultiway(*plan));
  auto run = engine.Run(expr, db);
  auto reference = Engine(EngineOptions::Reference()).Run(expr, db);
  ASSERT_TRUE(run.ok()) << run.error();
  ASSERT_TRUE(reference.ok()) << reference.error();
  EXPECT_EQ(run->relation, reference->relation);
}

}  // namespace
}  // namespace setalg::engine
