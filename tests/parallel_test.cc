// Unit tests for the parallel partitioned-execution building blocks
// (engine/parallel.h, setjoin/grouped.h partitioners): the WorkerPool
// runs every task exactly once, partitioning is deterministic and
// lossless, and the fan-out/fan-in iterator reproduces serial results.
// The end-to-end thread-differential harness lives in batch_exec_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "core/relation.h"
#include "engine/engine.h"
#include "engine/parallel.h"
#include "setjoin/grouped.h"
#include "test_util.h"
#include "workload/generators.h"

namespace setalg::engine {
namespace {

using core::Relation;
using core::Value;
using setalg::testing::MakeRel;

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    WorkerPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    constexpr std::size_t kTasks = 64;
    std::vector<std::atomic<int>> hits(kTasks);
    pool.Run(kTasks, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " threads " << threads;
    }
  }
}

TEST(WorkerPool, ReusableAcrossRunsAndHandlesEmptyAndSingleton) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  pool.Run(0, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 0);
  pool.Run(1, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 1);
  // A second batch through the same pool: no stale generation state.
  pool.Run(10, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 11);
}

TEST(WorkerPool, TasksActuallyRunConcurrentlyWhenWorkersExist) {
  // Not a timing test: two tasks block until both have started, which can
  // only complete if two threads run them simultaneously.
  WorkerPool pool(2);
  std::mutex mutex;
  std::condition_variable cv;
  int started = 0;
  pool.Run(2, [&](std::size_t) {
    std::unique_lock<std::mutex> lock(mutex);
    ++started;
    cv.notify_all();
    cv.wait(lock, [&] { return started == 2; });
  });
  EXPECT_EQ(started, 2);
}

TEST(Partitioning, ByColumnIsLosslessDisjointAndDeterministic) {
  const Relation r = setalg::workload::UniformBinaryRelation(200, 17, 5);
  for (std::size_t parts : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    const auto a = PartitionByColumn(r, 1, parts);
    const auto b = PartitionByColumn(r, 1, parts);
    ASSERT_EQ(a.size(), parts);
    std::size_t total = 0;
    Relation merged(2);
    for (std::size_t p = 0; p < parts; ++p) {
      EXPECT_EQ(a[p], b[p]) << "partitioning must be deterministic";
      total += a[p].size();
      for (std::size_t i = 0; i < a[p].size(); ++i) {
        merged.Add(a[p].tuple(i));
        // Every row is routed by its column-1 value.
        EXPECT_EQ(setjoin::PartitionOfKey(a[p].tuple(i)[0], parts), p);
      }
    }
    EXPECT_EQ(total, r.size()) << "no row may be dropped or duplicated";
    EXPECT_EQ(merged, r);
  }
}

TEST(Partitioning, ByKeyRoutesWholeGroupsConsistentlyWithByColumn) {
  const Relation r =
      MakeRel(2, {{1, 5}, {1, 6}, {2, 5}, {3, 7}, {3, 8}, {3, 9}, {4, 5}});
  constexpr std::size_t kParts = 3;
  const auto grouped_parts = setjoin::PartitionByKey(setjoin::AsGrouped(r), kParts);
  const auto row_parts = PartitionByColumn(r, 1, kParts);
  ASSERT_EQ(grouped_parts.size(), kParts);
  std::size_t groups_seen = 0;
  for (std::size_t p = 0; p < kParts; ++p) {
    // The grouped view of the row partition equals the partitioned
    // grouped view: groups never split across partitions, and both
    // routing paths agree on where each key lives.
    const auto from_rows = setjoin::AsGrouped(row_parts[p]);
    ASSERT_EQ(grouped_parts[p].NumGroups(), from_rows.NumGroups()) << "part " << p;
    for (std::size_t g = 0; g < from_rows.NumGroups(); ++g) {
      EXPECT_EQ(grouped_parts[p].group(g).key, from_rows.group(g).key);
      EXPECT_EQ(grouped_parts[p].group(g).elements, from_rows.group(g).elements);
    }
    groups_seen += grouped_parts[p].NumGroups();
  }
  EXPECT_EQ(groups_seen, setjoin::AsGrouped(r).NumGroups());
}

TEST(Partitioning, MorePartitionsThanKeysLeavesSomeEmpty) {
  const Relation r = MakeRel(2, {{1, 5}, {2, 6}});
  const auto parts = PartitionByColumn(r, 1, 16);
  std::size_t non_empty = 0;
  for (const auto& p : parts) non_empty += p.empty() ? 0 : 1;
  EXPECT_LE(non_empty, 2u);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, r.size());
}

// The fan-out/fan-in iterator through a real plan: an explicit partition
// count must reproduce the serial result at every width, pool or no pool.
TEST(PartitionedExecution, ExplicitPartitionCountsReproduceSerialResults) {
  workload::DivisionConfig config;
  config.num_groups = 40;
  config.group_size = 4;
  config.domain_size = 25;
  config.divisor_size = 3;
  config.match_fraction = 0.3;
  config.seed = 11;
  const auto instance = workload::MakeDivisionInstance(config);
  const auto db = setalg::testing::DivisionDb(instance.r, instance.s);

  PhysicalPlan serial;
  serial.root = MakeDivision(MakeScan("R", 2), MakeScan("S", 1),
                             setjoin::DivisionAlgorithm::kHashDivision,
                             /*equality=*/false, nullptr, /*partitions=*/1);
  const Engine engine;
  auto expected = engine.Run(serial, db);
  ASSERT_TRUE(expected.ok()) << expected.error();

  for (std::size_t partitions : {std::size_t{2}, std::size_t{5}, std::size_t{64}}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      PhysicalPlan plan;
      plan.root = MakeDivision(MakeScan("R", 2), MakeScan("S", 1),
                               setjoin::DivisionAlgorithm::kHashDivision,
                               /*equality=*/false, nullptr, partitions);
      EngineOptions options;
      options.threads = threads;
      auto run = Engine(options).Run(plan, db);
      ASSERT_TRUE(run.ok()) << run.error();
      EXPECT_EQ(run->relation, expected->relation)
          << "partitions " << partitions << " threads " << threads;
      EXPECT_EQ(run->stats.partitions, partitions);
      EXPECT_EQ(run->stats.threads_used, threads);
    }
  }
}

// partitions=0 defers to the run's pool width; serial runs stay serial.
TEST(PartitionedExecution, AutoPartitioningFollowsTheWorkerPoolWidth) {
  const auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 7}, {1, 8}, {2, 7}, {3, 8}, {3, 7}, {3, 9}}),
      MakeRel(1, {{7}, {8}}));
  PhysicalPlan plan;
  plan.root = MakeDivision(MakeScan("R", 2), MakeScan("S", 1),
                           setjoin::DivisionAlgorithm::kAggregate,
                           /*equality=*/false);
  {
    auto run = Engine().Run(plan, db);
    ASSERT_TRUE(run.ok()) << run.error();
    EXPECT_EQ(run->stats.partitions, 0u) << "serial runs must not fan out";
    EXPECT_EQ(run->stats.threads_used, 1u);
  }
  {
    EngineOptions options;
    options.threads = 5;
    auto run = Engine(options).Run(plan, db);
    ASSERT_TRUE(run.ok()) << run.error();
    EXPECT_EQ(run->stats.partitions, 5u);
    EXPECT_EQ(run->stats.threads_used, 5u);
    EXPECT_EQ(run->relation, MakeRel(1, {{1}, {3}}));
  }
}

}  // namespace
}  // namespace setalg::engine
