// Tests for the setalgd line protocol (server/protocol.h): request and
// response-header parsing, including the field-level negatives — most
// importantly empty-valued OK fields like "digest=", which the parser
// used to misfile as unknown fields.
#include <gtest/gtest.h>

#include "server/protocol.h"
#include "test_util.h"

namespace setalg::server {
namespace {

using setalg::testing::MakeRel;

TEST(ParseRequest, RecognizesEveryVerb) {
  auto query = ParseRequest("QUERY pi[1](R)");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->kind, Request::Kind::kQuery);
  EXPECT_EQ(query->statement, "pi[1](R)");

  auto prepare = ParseRequest("PREPARE q1 div(R, S)");
  ASSERT_TRUE(prepare.ok());
  EXPECT_EQ(prepare->kind, Request::Kind::kPrepare);
  EXPECT_EQ(prepare->name, "q1");
  EXPECT_EQ(prepare->statement, "div(R, S)");

  auto execute = ParseRequest("EXECUTE q1");
  ASSERT_TRUE(execute.ok());
  EXPECT_EQ(execute->kind, Request::Kind::kExecute);
  EXPECT_EQ(execute->name, "q1");

  EXPECT_EQ(ParseRequest("PING")->kind, Request::Kind::kPing);
  EXPECT_EQ(ParseRequest("CLOSE")->kind, Request::Kind::kClose);
}

TEST(ParseRequest, RejectsMissingOperandsAndUnknownVerbs) {
  EXPECT_FALSE(ParseRequest("QUERY").ok());
  EXPECT_FALSE(ParseRequest("PREPARE q1").ok());
  EXPECT_FALSE(ParseRequest("EXECUTE q1 extra").ok());
  EXPECT_FALSE(ParseRequest("query lowercase").ok());
  EXPECT_FALSE(ParseRequest("").ok());
}

TEST(ParseResponseHeader, RoundTripsTheFormatters) {
  const std::string ok = FormatOkHeader(12, 34, 0xdeadbeefu, "plan-hit");
  auto header = ParseResponseHeader(ok);
  ASSERT_TRUE(header.ok()) << header.error();
  EXPECT_TRUE(header->ok);
  EXPECT_EQ(header->rows, 12u);
  EXPECT_EQ(header->version, 34u);
  EXPECT_EQ(header->digest, DigestToHex(0xdeadbeefu));
  EXPECT_EQ(header->cache, "plan-hit");

  auto prepared = ParseResponseHeader(FormatPreparedHeader("q2"));
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->name, "q2");

  auto err = ParseResponseHeader(FormatErrHeader("1:5: bad\nthing"));
  ASSERT_TRUE(err.ok());
  EXPECT_FALSE(err->ok);
  EXPECT_EQ(err->error, "1:5: bad thing");
}

TEST(ParseResponseHeader, EmptyValuedFieldsAreReportedPrecisely) {
  // "digest=" is a present key with an empty value — a malformed server
  // response, but it must be diagnosed as such, not as an unknown field
  // (the old parser required at least one value character to match the
  // key at all).
  auto digest = ParseResponseHeader("OK rows=1 version=2 digest= cache=miss");
  ASSERT_FALSE(digest.ok());
  EXPECT_NE(digest.error().find("empty digest field"), std::string::npos)
      << digest.error();

  auto cache = ParseResponseHeader("OK rows=1 version=2 digest=00ff cache=");
  ASSERT_FALSE(cache.ok());
  EXPECT_NE(cache.error().find("empty cache field"), std::string::npos)
      << cache.error();

  // Empty numeric values flow into the numeric-field diagnostics.
  auto rows = ParseResponseHeader("OK rows= version=2");
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.error().find("bad rows field"), std::string::npos)
      << rows.error();

  auto version = ParseResponseHeader("OK rows=1 version=");
  ASSERT_FALSE(version.ok());
  EXPECT_NE(version.error().find("bad version field"), std::string::npos)
      << version.error();

  // Genuinely unknown fields still say so.
  auto unknown = ParseResponseHeader("OK rows=1 wat=1");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().find("unknown OK field 'wat=1'"), std::string::npos)
      << unknown.error();
}

TEST(ParseResponseHeader, RejectsMalformedNumericFields) {
  EXPECT_FALSE(ParseResponseHeader("OK rows=abc").ok());
  EXPECT_FALSE(ParseResponseHeader("OK rows=-3").ok());
  EXPECT_FALSE(ParseResponseHeader("OK version=1x").ok());
  EXPECT_FALSE(ParseResponseHeader("PREPARED").ok());
  EXPECT_FALSE(ParseResponseHeader("HELLO world").ok());
}

TEST(RelationDigest, SensitiveToContentArityAndOrder) {
  const auto a = MakeRel(2, {{1, 2}, {3, 4}});
  const auto b = MakeRel(2, {{1, 2}, {3, 5}});
  EXPECT_NE(RelationDigest(a), RelationDigest(b));
  // Same flat values, different arity.
  const auto flat2 = MakeRel(2, {{1, 2}});
  const auto flat1 = MakeRel(1, {{1}, {2}});
  EXPECT_NE(RelationDigest(flat2), RelationDigest(flat1));
  EXPECT_EQ(DigestToHex(0).size(), 16u);
  EXPECT_EQ(DigestToHex(0xabcdefu), "0000000000abcdef");
}

}  // namespace
}  // namespace setalg::server
