// Differential fuzz harness for the SQL frontend (src/sql/).
//
// The property under test: sql::Compile is a *deterministic lowering* —
// for every statement in the generated workload the frontend must produce
// a tree structurally equal to the hand-built mirror from
// workload::MakeSqlWorkload (which re-implements the lowering rules of
// sql/analyzer.h independently), and running both sides through the
// engine must give bit-identical relations and matching PlanStats across
// every execution surface: {reference, cost-based, batched, parallel} ×
// plan-cache {off, on}. Because the trees are structurally equal, the
// planner's rewrites fire identically on both — the harness additionally
// pins that the division family routes through the division rewrite and
// that the triangle chain routes through the multiway join.
//
// The gfdiv family pairs SQL with gf::GfToSaEq output — semantically
// equal but structurally different trees — so only results compare there.
//
// Negative paths ride along: truncation fuzzing of every valid statement
// (no prefix may crash; every rejection must carry a "line:column:"
// location), unknown names, arity mismatches, ambiguous references.
//
// Reads SETALG_BATCH_SEED (default 1) like tests/batch_exec_test.cc; CI
// runs the seed matrix under ASan/UBSan and TSan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "engine/engine.h"
#include "ra/expr.h"
#include "sql/analyzer.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "workload/generators.h"

namespace setalg {
namespace {

std::uint64_t BaseSeed() {
  const char* env = std::getenv("SETALG_BATCH_SEED");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const std::uint64_t seed = std::strtoull(env, &end, 10);
  return (end == env) ? 1 : seed;
}

/// Full PlanStats comparison for two runs expected to execute the same
/// physical plan (structurally equal inputs, same options). Everything
/// except `cache` must agree — structurally equal trees share plan- and
/// result-cache entries, so the SQL run may hit what the RA run inserted.
void ExpectSameStats(const engine::PlanStats& expected,
                     const engine::PlanStats& actual,
                     const std::string& context) {
  EXPECT_EQ(expected.max_intermediate, actual.max_intermediate) << context;
  EXPECT_EQ(expected.total_intermediate, actual.total_intermediate) << context;
  EXPECT_EQ(expected.join_rows_emitted, actual.join_rows_emitted) << context;
  EXPECT_EQ(expected.rewrites, actual.rewrites) << context;
  EXPECT_EQ(expected.has_agm_bound, actual.has_agm_bound) << context;
  if (expected.has_agm_bound && actual.has_agm_bound) {
    EXPECT_DOUBLE_EQ(expected.agm_bound, actual.agm_bound) << context;
  }
  ASSERT_EQ(expected.choices.size(), actual.choices.size()) << context;
  for (std::size_t i = 0; i < expected.choices.size(); ++i) {
    EXPECT_EQ(expected.choices[i].site, actual.choices[i].site)
        << context << " choice " << i;
    EXPECT_EQ(expected.choices[i].algorithm, actual.choices[i].algorithm)
        << context << " choice " << i;
  }
  ASSERT_EQ(expected.ops.size(), actual.ops.size()) << context;
  for (std::size_t i = 0; i < expected.ops.size(); ++i) {
    EXPECT_EQ(expected.ops[i].label, actual.ops[i].label)
        << context << " op " << i;
    EXPECT_EQ(expected.ops[i].output_size, actual.ops[i].output_size)
        << context << " op " << i;
  }
}

struct ModeConfig {
  std::string name;
  engine::EngineOptions options;
};

std::vector<ModeConfig> Modes() {
  return {
      {"reference", engine::EngineOptions::Reference()},
      {"cost", engine::EngineOptions::CostBased()},
      {"batched", engine::EngineOptions::Batched()},
      {"parallel2", engine::EngineOptions::Parallel(2)},
  };
}

bool HasRewrite(const engine::PlanStats& stats, const std::string& needle) {
  for (const auto& rewrite : stats.rewrites) {
    if (rewrite.find(needle) != std::string::npos) return true;
  }
  return false;
}

// The tentpole invariant: 500 paired statements per seed, every pair
// structurally equal after sql::Compile and bit-identical (result +
// stats) on every execution surface, with and without the plan cache.
TEST(SqlDifferential, FuzzAgainstHandBuiltLowerings) {
  const std::uint64_t seed = BaseSeed();
  const core::Database db = workload::SqlWorkloadDatabase(seed);
  const auto pairs = workload::MakeSqlWorkload({/*count=*/500, seed});
  ASSERT_EQ(pairs.size(), 500u);

  std::map<std::string, std::size_t> families;
  std::size_t division_routed = 0;
  std::size_t nonempty_results = 0;

  for (const auto& [mode, options] : Modes()) {
    for (const std::size_t cache_entries : {std::size_t{0}, std::size_t{8}}) {
      const engine::Engine engine(
          options.WithPlanCache(cache_entries));
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto& pair = pairs[i];
        const std::string context = "pair " + std::to_string(i) + " [" +
                                    pair.family + "] mode=" + mode +
                                    " cache=" + std::to_string(cache_entries) +
                                    " sql: " + pair.sql;
        if (mode == "reference" && cache_entries == 0) {
          families[pair.family]++;
        }

        auto lowered = sql::Compile(pair.sql, db.schema());
        ASSERT_TRUE(lowered.ok()) << context << "\nerror: " << lowered.error();
        if (pair.compare_stats) {
          ASSERT_TRUE(ra::StructuralEqual(**lowered, *pair.expr))
              << context << "\nlowered: " << (*lowered)->ToString()
              << "\nexpected: " << pair.expr->ToString();
        }

        auto from_sql = engine.Run(*lowered, db);
        auto from_ra = engine.Run(pair.expr, db);
        ASSERT_TRUE(from_sql.ok()) << context << "\n" << from_sql.error();
        ASSERT_TRUE(from_ra.ok()) << context << "\n" << from_ra.error();
        ASSERT_EQ(from_sql->relation.arity(), from_ra->relation.arity())
            << context;
        EXPECT_EQ(from_sql->relation.flat(), from_ra->relation.flat())
            << context;
        if (pair.compare_stats) {
          ExpectSameStats(from_ra->stats, from_sql->stats, context);
        }
        if (mode == "cost" && cache_entries == 0) {
          if (!from_sql->relation.empty()) ++nonempty_results;
          if (pair.family == "division" &&
              HasRewrite(from_sql->stats, "division pattern")) {
            ++division_routed;
          }
        }
      }
    }
  }

  // Every family occurs, and the division family actually exercises the
  // planner's division rewrite (not just generic diff/join plans).
  for (const char* family : {"filter", "join2", "chain3", "division",
                             "semijoin", "in", "setop", "gfdiv"}) {
    EXPECT_GE(families[family], 50u) << family;
  }
  EXPECT_EQ(division_routed, families["division"])
      << "every division-family statement must route through the division "
         "rewrite under cost-based planning";
  EXPECT_GT(nonempty_results, 0u)
      << "the workload database must make some queries non-trivial";
}

// The multiway leg: the fixed SQL triangle chain lowers to the binary
// join chain the planner collects into a hypergraph and routes to the
// worst-case-optimal operator on the skewed family.
TEST(SqlDifferential, TriangleRoutesToMultiwayJoin) {
  const auto pair = workload::TriangleSqlPair();
  const core::Database db = workload::SqlTriangleDatabase(2000, 10, 7);

  auto lowered = sql::Compile(pair.sql, db.schema());
  ASSERT_TRUE(lowered.ok()) << lowered.error();
  ASSERT_TRUE(ra::StructuralEqual(**lowered, *pair.expr))
      << (*lowered)->ToString();

  const engine::Engine multiway(
      engine::EngineOptions::CostBased().WithMultiway());
  auto from_sql = multiway.Run(*lowered, db);
  auto from_ra = multiway.Run(pair.expr, db);
  ASSERT_TRUE(from_sql.ok()) << from_sql.error();
  ASSERT_TRUE(from_ra.ok()) << from_ra.error();
  EXPECT_TRUE(HasRewrite(from_sql->stats, "multiway"))
      << "expected a multiway rewrite on the skewed triangle";
  EXPECT_TRUE(from_sql->stats.has_agm_bound);
  EXPECT_EQ(from_sql->relation.flat(), from_ra->relation.flat());
  ExpectSameStats(from_ra->stats, from_sql->stats, "triangle multiway");

  // And the binary baseline agrees on the result.
  const engine::Engine binary(engine::EngineOptions::CostBased());
  auto baseline = binary.Run(*lowered, db);
  ASSERT_TRUE(baseline.ok()) << baseline.error();
  EXPECT_EQ(baseline->relation, from_sql->relation);
  EXPECT_GT(from_sql->relation.size(), 0u);
}

// gfdiv pairs run through structurally different trees (GfToSaEq output
// vs the SQL lowering), so equality of the *relations* is the whole
// point — it pins the frontend's subquery semantics against the
// guarded-fragment translation from the paper's Theorem 8 converse.
TEST(SqlDifferential, GuardedFragmentPairsAgreeOnResults) {
  const std::uint64_t seed = BaseSeed();
  const core::Database db = workload::SqlWorkloadDatabase(seed);
  const auto pairs = workload::MakeSqlWorkload({/*count=*/500, seed});
  const engine::Engine engine{engine::EngineOptions::CostBased()};
  std::size_t gf_pairs = 0;
  for (const auto& pair : pairs) {
    if (pair.family != "gfdiv") continue;
    ++gf_pairs;
    auto lowered = sql::Compile(pair.sql, db.schema());
    ASSERT_TRUE(lowered.ok()) << pair.sql << "\n" << lowered.error();
    auto from_sql = engine.Run(*lowered, db);
    auto from_gf = engine.Run(pair.expr, db);
    ASSERT_TRUE(from_sql.ok()) << pair.sql;
    ASSERT_TRUE(from_gf.ok()) << pair.sql;
    EXPECT_EQ(from_sql->relation, from_gf->relation) << pair.sql;
  }
  EXPECT_GE(gf_pairs, 50u);
}

// ---------------------------------------------------------------------------
// Negative paths: structured errors, never a crash.
// ---------------------------------------------------------------------------

/// Every rejection must carry a parseable "line:column:" location.
void ExpectLocatedError(const std::string& error, const std::string& context) {
  std::size_t line = 0;
  std::size_t column = 0;
  EXPECT_TRUE(sql::ParseErrorLocation(error, &line, &column))
      << context << "\nunlocated error: " << error;
  EXPECT_GE(line, 1u) << context;
  EXPECT_GE(column, 1u) << context;
}

// Truncation fuzzing: every prefix of every valid workload statement
// must either compile or return a located error — never crash, never
// return an unstructured message.
TEST(SqlNegative, TruncationFuzz) {
  const std::uint64_t seed = BaseSeed();
  const core::Database db = workload::SqlWorkloadDatabase(seed);
  // 64 statements × every prefix length is plenty (several thousand
  // parses) without dominating the suite's runtime.
  auto pairs = workload::MakeSqlWorkload({/*count=*/64, seed});
  std::size_t rejected = 0;
  for (const auto& pair : pairs) {
    for (std::size_t len = 0; len <= pair.sql.size(); ++len) {
      const std::string prefix = pair.sql.substr(0, len);
      auto compiled = sql::Compile(prefix, db.schema());
      if (!compiled.ok()) {
        ++rejected;
        ExpectLocatedError(compiled.error(),
                           "prefix [" + std::to_string(len) + "] of: " +
                               pair.sql);
      }
    }
    // The full statement must survive its own fuzz loop.
    ASSERT_TRUE(sql::Compile(pair.sql, db.schema()).ok()) << pair.sql;
  }
  EXPECT_GT(rejected, 0u);
}

TEST(SqlNegative, UnknownNamesAndArityMismatches) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  const struct {
    const char* sql;
    const char* reason;
  } cases[] = {
      {"SELECT * FROM Nope", "unknown table"},
      {"SELECT c9 FROM R", "column out of range"},
      {"SELECT r.c1 FROM R r WHERE r.c3 = 1", "predicate column out of range"},
      {"SELECT x.c1 FROM R r", "unknown alias"},
      {"SELECT * FROM R r, R r", "duplicate alias"},
      {"SELECT c1 FROM R r, S s WHERE c2 = 1",
       "ambiguous bare column over two tables"},
      {"SELECT c1 FROM R UNION SELECT * FROM R", "set-op arity mismatch"},
      {"SELECT * FROM R WHERE c1 IN (SELECT * FROM R)",
       "IN subquery must be unary"},
      {"SELECT * FROM R WHERE EXISTS (SELECT c1 FROM S)",
       "EXISTS subquery must be SELECT *"},
      {"SELECT * FROM R WHERE", "truncated WHERE"},
      {"SELECT FROM R", "empty select list"},
      {"SELECT * FROM R WHERE c1 ^ 2", "unknown operator character"},
      {"SELECT * FROM R r extra tokens", "trailing tokens"},
  };
  for (const auto& c : cases) {
    auto compiled = sql::Compile(c.sql, schema);
    ASSERT_FALSE(compiled.ok()) << c.reason << ": " << c.sql;
    ExpectLocatedError(compiled.error(), std::string(c.reason) + ": " + c.sql);
  }
}

TEST(SqlNegative, CorrelationDepthIsOneLevel) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  // u.c1 two subquery levels down from its binding.
  auto compiled = sql::Compile(
      "SELECT * FROM R u WHERE EXISTS (SELECT * FROM S s WHERE EXISTS "
      "(SELECT * FROM R v WHERE v.c1 = u.c1))",
      schema);
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.error().find("more than one subquery level"),
            std::string::npos)
      << compiled.error();
  ExpectLocatedError(compiled.error(), "deep correlation");
}

TEST(SqlNegative, LooksLikeSqlDispatch) {
  EXPECT_TRUE(sql::LooksLikeSql("SELECT * FROM R"));
  EXPECT_TRUE(sql::LooksLikeSql("  select c1 from R"));
  EXPECT_TRUE(sql::LooksLikeSql("(SELECT * FROM R) UNION (SELECT * FROM S)"));
  EXPECT_FALSE(sql::LooksLikeSql("pi[1](R)"));
  EXPECT_FALSE(sql::LooksLikeSql("SELECTION(R)"));
  EXPECT_FALSE(sql::LooksLikeSql(""));
}

// A targeted end-to-end division statement (independent of the
// generator): the FOR ALL idiom must hit the planner's division rewrite
// and produce the textbook answer.
TEST(SqlDivision, ForAllIdiomRoutesThroughDivisionRewrite) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  core::Relation r(2);
  // Group 1 ⊇ {10, 11}; group 2 misses 11; group 3 ⊇ {10, 11}.
  for (auto row : {std::pair{1, 10}, {1, 11}, {1, 12}, {2, 10}, {3, 10},
                   {3, 11}}) {
    r.Add({row.first, row.second});
  }
  core::Relation s(1);
  s.Add({10});
  s.Add({11});
  db.SetRelation("R", std::move(r));
  db.SetRelation("S", std::move(s));

  auto compiled = sql::Compile(
      "SELECT r.c1 FROM R r WHERE NOT EXISTS (SELECT * FROM S s WHERE "
      "NOT EXISTS (SELECT * FROM R r2 WHERE r2.c1 = r.c1 AND r2.c2 = s.c1))",
      schema);
  ASSERT_TRUE(compiled.ok()) << compiled.error();

  const engine::Engine engine{engine::EngineOptions::CostBased()};
  auto run = engine.Run(*compiled, db);
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_TRUE(HasRewrite(run->stats, "division pattern"))
      << "the FOR ALL idiom must be recognized as division";
  core::Relation expected(1);
  expected.Add({1});
  expected.Add({3});
  EXPECT_EQ(run->relation, expected);
}

}  // namespace
}  // namespace setalg
