#include <gtest/gtest.h>

#include "gf/eval.h"
#include "ra/analysis.h"
#include "ra/eval.h"
#include "setjoin/division.h"
#include "test_util.h"
#include "witness/figures.h"
#include "witness/pumping.h"

namespace setalg::witness {
namespace {

using setalg::testing::MakeRel;

// ---------------------------------------------------------------------------
// Figures as data.
// ---------------------------------------------------------------------------

TEST(Figures, MedicalExampleSizes) {
  const auto example = MakeMedicalExample();
  EXPECT_EQ(example.db.relation("Person").size(), 8u);
  EXPECT_EQ(example.db.relation("Disease").size(), 6u);
  EXPECT_EQ(example.db.relation("Symptoms").size(), 2u);
}

TEST(Figures, MedicalNamesAreLexOrdered) {
  const auto example = MakeMedicalExample();
  EXPECT_LT(example.names.Code("An"), example.names.Code("Bob"));
  EXPECT_LT(example.names.Code("headache"), example.names.Code("neck pain"));
}

TEST(Figures, Fig2MatchesThePaper) {
  const auto db = MakeFig2Database();
  EXPECT_EQ(db.relation("R").size(), 2u);
  EXPECT_EQ(db.relation("S").size(), 1u);
  EXPECT_EQ(db.relation("T").size(), 2u);
  EXPECT_EQ(db.size(), 5u);
}

TEST(Figures, Fig3Sizes) {
  EXPECT_EQ(MakeFig3A().size(), 4u);
  EXPECT_EQ(MakeFig3B().size(), 8u);
}

TEST(Figures, Fig5DivisionSeparates) {
  const auto a = MakeFig5A();
  const auto b = MakeFig5B();
  for (auto algorithm : setjoin::AllDivisionAlgorithms()) {
    EXPECT_EQ(setjoin::Divide(a.relation("R"), a.relation("S"), algorithm),
              MakeRel(1, {{1}, {2}}))
        << setjoin::DivisionAlgorithmToString(algorithm);
    EXPECT_TRUE(
        setjoin::Divide(b.relation("R"), b.relation("S"), algorithm).empty())
        << setjoin::DivisionAlgorithmToString(algorithm);
    // The paper notes the equality variant separates them too.
    EXPECT_EQ(
        setjoin::DivideEqual(a.relation("R"), a.relation("S"), algorithm).size(), 2u);
    EXPECT_TRUE(
        setjoin::DivideEqual(b.relation("R"), b.relation("S"), algorithm).empty());
  }
}

TEST(Figures, DivisionFamiliesSeparateAtEveryScale) {
  for (std::size_t n : {1u, 4u, 10u}) {
    for (std::size_t m : {2u, 5u}) {
      const auto a = MakeDivisionFamilyA(n, m);
      const auto b = MakeDivisionFamilyB(n, m);
      EXPECT_EQ(setjoin::Divide(a.relation("R"), a.relation("S"),
                                setjoin::DivisionAlgorithm::kHashDivision)
                    .size(),
                n);
      EXPECT_TRUE(setjoin::Divide(b.relation("R"), b.relation("S"),
                                  setjoin::DivisionAlgorithm::kHashDivision)
                      .empty());
    }
  }
}

TEST(Figures, DivisionFamilySizesAreLinear) {
  const auto a = MakeDivisionFamilyA(10, 4);
  EXPECT_EQ(a.relation("R").size(), 40u);
  EXPECT_EQ(a.relation("S").size(), 4u);
  const auto b = MakeDivisionFamilyB(10, 4);
  EXPECT_EQ(b.relation("R").size(), 44u);  // 11 keys × 4 elements.
  EXPECT_EQ(b.relation("S").size(), 5u);
}

TEST(Figures, QueryQSeparatesBeerDatabases) {
  const auto beer = MakeBeerExample();
  const auto q = QueryQRa();
  const core::Value alex = beer.names.Code("alex");
  const auto on_a = ra::Eval(q, beer.a);
  EXPECT_TRUE(on_a.Contains(core::Tuple{alex}));
  EXPECT_TRUE(ra::Eval(q, beer.b).empty());
}

TEST(Figures, LousyBarSaAndGfAgreeOnBeerDatabases) {
  const auto beer = MakeBeerExample();
  const auto sa = LousyBarDrinkersSa();
  const auto gf = LousyBarDrinkersGf();
  for (const auto* db : {&beer.a, &beer.b}) {
    const auto via_sa = ra::Eval(sa, *db);
    const auto via_gf = gf::EvaluateCStored(*gf, *db, {"x"}, {});
    // The SA query returns drinkers; the GF evaluation over C-stored
    // singletons returns the same satisfying values.
    for (std::size_t i = 0; i < via_sa.size(); ++i) {
      EXPECT_TRUE(via_gf.Contains(via_sa.tuple(i)));
    }
    for (std::size_t i = 0; i < via_gf.size(); ++i) {
      EXPECT_TRUE(via_sa.Contains(via_gf.tuple(i)));
    }
  }
}

// ---------------------------------------------------------------------------
// Fig. 4 and the pumping construction (Lemma 24).
// ---------------------------------------------------------------------------

TEST(Pumping, Fig4WitnessesValidate) {
  const auto example = MakeFig4Example();
  // E1(D) contains (1,2,3,6,1); E2(D) contains (3,4,5,4,7).
  const auto e1 = ra::Eval(example.expr->child(0), example.db);
  const auto e2 = ra::Eval(example.expr->child(1), example.db);
  EXPECT_TRUE(e1.Contains(example.a_witness));
  EXPECT_TRUE(e2.Contains(example.b_witness));

  PumpingSpec spec;
  spec.expr = example.expr;
  spec.db = &example.db;
  spec.a_witness = example.a_witness;
  spec.b_witness = example.b_witness;
  EXPECT_EQ(ValidatePumpingSpec(spec), "");
}

TEST(Pumping, Fig4FreeValuesIncludePaperChoice) {
  const auto example = MakeFig4Example();
  const auto c = ra::CollectConstants(*example.expr);
  const auto free1 = ra::FreeValues(*example.expr, 1, example.a_witness, c);
  const auto free2 = ra::FreeValues(*example.expr, 2, example.b_witness, c);
  // Definition 22 on the full five-tuples: F1 = {1,2,6} ⊇ the paper's
  // exposition choice {1,2}; F2 = {4,5,7} ⊇ {4,5}.
  EXPECT_EQ(free1, (std::vector<core::Value>{1, 2, 6}));
  EXPECT_EQ(free2, (std::vector<core::Value>{4, 5, 7}));
}

TEST(Pumping, Fig4QuadraticLowerBound) {
  const auto example = MakeFig4Example();
  PumpingSpec spec;
  spec.expr = example.expr;
  spec.db = &example.db;
  spec.a_witness = example.a_witness;
  spec.b_witness = example.b_witness;
  const std::size_t base_size = example.db.size();
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    const auto dn = BuildPumpedDatabase(spec, n);
    EXPECT_LE(dn.size(), 2 * base_size * n) << "n = " << n;
    const auto output = ra::Eval(example.expr, dn);
    EXPECT_GE(output.size(), n * n) << "n = " << n;
  }
}

TEST(Pumping, Fig4WithThePaperSubsetOfFreeValues) {
  // The paper's Fig. 4 pumps only {1,2} and {4,5}; the bound still holds.
  const auto example = MakeFig4Example();
  PumpingSpec spec;
  spec.expr = example.expr;
  spec.db = &example.db;
  spec.a_witness = example.a_witness;
  spec.b_witness = example.b_witness;
  spec.free1 = {1, 2};
  spec.free2 = {4, 5};
  EXPECT_EQ(ValidatePumpingSpec(spec), "");
  for (std::size_t n : {2u, 4u}) {
    const auto dn = BuildPumpedDatabase(spec, n);
    EXPECT_GE(ra::Eval(example.expr, dn).size(), n * n);
  }
}

TEST(Pumping, Fig4MirrorsThePaperD2Shape) {
  // With the paper's free-value choice, D2 adds one copy of each touched
  // tuple per family: R gains (1',2',3), S gains (3,4',5'), T gains
  // (6,1') and (4',7) — sizes 3/2/4 as printed in Fig. 4.
  const auto example = MakeFig4Example();
  PumpingSpec spec;
  spec.expr = example.expr;
  spec.db = &example.db;
  spec.a_witness = example.a_witness;
  spec.b_witness = example.b_witness;
  spec.free1 = {1, 2};
  spec.free2 = {4, 5};
  const auto d2 = BuildPumpedDatabase(spec, 2);
  EXPECT_EQ(d2.relation("R").size(), 3u);
  EXPECT_EQ(d2.relation("S").size(), 2u);
  EXPECT_EQ(d2.relation("T").size(), 4u);
  const auto d3 = BuildPumpedDatabase(spec, 3);
  EXPECT_EQ(d3.relation("R").size(), 4u);
  EXPECT_EQ(d3.relation("S").size(), 3u);
  EXPECT_EQ(d3.relation("T").size(), 6u);
}

TEST(Pumping, MeasurePumpingReportsMonotoneGrowth) {
  const auto example = MakeFig4Example();
  PumpingSpec spec;
  spec.expr = example.expr;
  spec.db = &example.db;
  spec.a_witness = example.a_witness;
  spec.b_witness = example.b_witness;
  const auto samples = MeasurePumping(spec, {1, 2, 4, 8});
  ASSERT_EQ(samples.size(), 4u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].output_size, samples[i].n * samples[i].n);
    if (i > 0) EXPECT_GT(samples[i].db_size, samples[i - 1].db_size);
  }
}

TEST(Pumping, RejectsNonJoiningWitnesses) {
  const auto example = MakeFig4Example();
  PumpingSpec spec;
  spec.expr = example.expr;
  spec.db = &example.db;
  spec.a_witness = example.a_witness;
  spec.b_witness = example.b_witness;
  spec.b_witness[0] = 999;  // No longer in E2(D).
  EXPECT_NE(ValidatePumpingSpec(spec), "");
}

TEST(Pumping, RejectsFreeValuesOutsideDefinition22) {
  const auto example = MakeFig4Example();
  PumpingSpec spec;
  spec.expr = example.expr;
  spec.db = &example.db;
  spec.a_witness = example.a_witness;
  spec.b_witness = example.b_witness;
  spec.free1 = {3};  // 3 is at the equality-constrained position.
  EXPECT_NE(ValidatePumpingSpec(spec), "");
}

TEST(Pumping, ConstantsSurviveEmbedding) {
  // A variant of Fig. 4 whose expression carries a constant: the pumped
  // databases must keep the constant fixed.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  db.mutable_relation("R")->Add({10, 3});
  db.mutable_relation("R")->Add({20, 3});
  db.mutable_relation("T")->Add({30, 3});
  // E = σ_{2='3'}(R) ⋈_{2=2} T: witnesses (10,3) and (30,3).
  auto expr = ra::Join(ra::SelectConst(ra::Rel("R", 2), 2, 3), ra::Rel("T", 2),
                       {{2, ra::Cmp::kEq, 2}});
  PumpingSpec spec;
  spec.expr = expr;
  spec.db = &db;
  spec.a_witness = {10, 3};
  spec.b_witness = {30, 3};
  ASSERT_EQ(ValidatePumpingSpec(spec), "");
  const auto d4 = BuildPumpedDatabase(spec, 4);
  // The constant 3 must still appear (it is fixed by the re-embedding).
  bool found = false;
  for (const auto& t : d4.TupleSpace()) {
    for (core::Value v : t) {
      if (v == 3) found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GE(ra::Eval(expr, d4).size(), 16u);
}

}  // namespace
}  // namespace setalg::witness
