// Differential/property harness for batched AND parallel execution:
// every plan must produce identical (sorted, set-semantics) results and
// identical per-operator PlanStats row counts whether it runs through the
// materializing executor, the pipelined batch surface, or the partitioned
// parallel executor — at every batch size (including the degenerate size
// 1 and the off-power-of-two 7 that exercise batch-boundary carry-over)
// and at every thread count in {1, 2, 7} (1 exercises the partitioned
// code inline, 2 a minimal pool, 7 an off-power-of-two fan-out wider than
// many of the workloads' group counts, so empty partitions occur).
//
// The suite reads SETALG_BATCH_SEED (default 1) as the base of its seed
// range; CI runs it under ASan/UBSan and under ThreadSanitizer with a
// fixed seed matrix so batch-boundary lifetime bugs and cross-thread
// races surface across distinct randomized workloads.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "ra/eval.h"
#include "ra/expr.h"
#include "ra/rewrite.h"
#include "setjoin/division.h"
#include "setjoin/grouped.h"
#include "setjoin/setjoin.h"
#include "test_util.h"
#include "workload/generators.h"

namespace setalg::engine {
namespace {

using core::Relation;
using setalg::testing::MakeRel;

constexpr std::size_t kBatchSizes[] = {1, 2, 7, 1024};

// Thread counts of the differential matrix (see the file comment).
constexpr std::size_t kThreadCounts[] = {1, 2, 7};

std::uint64_t BaseSeed() {
  const char* env = std::getenv("SETALG_BATCH_SEED");
  if (env == nullptr) return 1;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  return (end == env || value == 0) ? 1 : static_cast<std::uint64_t>(value);
}

// Asserts that the pipelined run reproduced the materializing run's
// per-operator instrumentation exactly: same operators in the same
// post-order, same (distinct) output cardinalities, same aggregates.
void ExpectSameStats(const PlanStats& expected, const PlanStats& actual,
                     const std::string& context) {
  EXPECT_EQ(actual.max_intermediate, expected.max_intermediate) << context;
  EXPECT_EQ(actual.total_intermediate, expected.total_intermediate) << context;
  EXPECT_EQ(actual.join_rows_emitted, expected.join_rows_emitted) << context;
  ASSERT_EQ(actual.ops.size(), expected.ops.size()) << context;
  for (std::size_t i = 0; i < expected.ops.size(); ++i) {
    EXPECT_EQ(actual.ops[i].label, expected.ops[i].label) << context << " op " << i;
    EXPECT_EQ(actual.ops[i].source, expected.ops[i].source) << context << " op " << i;
    EXPECT_EQ(actual.ops[i].output_size, expected.ops[i].output_size)
        << context << " op " << i << " (" << expected.ops[i].label << ")";
  }
}

// Plan-cache leg of the harness: a shared Engine with the plan cache
// enabled runs `expr` twice under `options` — the first run populates the
// cache (miss), the second is served from it (hit). Both must match the
// reference relation and row counts, and the hit must be byte-identical
// to the miss on every stat the run reports, including the parallel and
// batch accounting (partitions, batches_emitted, peak_batch_bytes).
void ExpectCachedRunsMatch(const EngineOptions& options, const ra::ExprPtr& expr,
                           const core::Database& db,
                           const core::Relation& expected_relation,
                           const PlanStats& expected_stats,
                           const std::string& context) {
  EngineOptions cached_options = options;
  cached_options.plan_cache_entries = 4;
  const Engine cached(cached_options);
  auto miss = cached.Run(expr, db);
  ASSERT_TRUE(miss.ok()) << context << ": " << miss.error();
  ASSERT_EQ(miss->stats.cache, CacheOutcome::kMiss) << context;
  auto hit = cached.Run(expr, db);
  ASSERT_TRUE(hit.ok()) << context << ": " << hit.error();
  ASSERT_EQ(hit->stats.cache, CacheOutcome::kHit) << context;
  for (const auto* run : {&*miss, &*hit}) {
    EXPECT_EQ(run->relation, expected_relation) << context;
    ExpectSameStats(expected_stats, run->stats, context);
  }
  // Hit path vs miss path: byte-identical, parallel accounting included.
  EXPECT_EQ(hit->relation.flat(), miss->relation.flat()) << context;
  EXPECT_EQ(hit->stats.partitions, miss->stats.partitions) << context;
  EXPECT_EQ(hit->stats.batches_emitted, miss->stats.batches_emitted) << context;
  EXPECT_EQ(hit->stats.peak_batch_bytes, miss->stats.peak_batch_bytes) << context;
  EXPECT_EQ(hit->stats.threads_used, miss->stats.threads_used) << context;
}

// Lowers `expr` once under `base` options and executes the same plan
// through the materializing executor (serial — the semantics reference)
// and through the pipelined executor at every (threads × batch size)
// point of the differential matrix, asserting results and PlanStats row
// counts identical to the serial reference at every point. The parallel
// materializing combination is exercised too (threads > 1, batched off):
// partitioned operators plug into both executors. At one batch size per
// thread count the workload additionally runs through a shared Engine
// with the plan cache enabled (see ExpectCachedRunsMatch).
void ExpectBatchedMatches(const EngineOptions& base, const ra::ExprPtr& expr,
                          const core::Database& db, const std::string& context) {
  const Engine reference(base);
  auto plan = base.cost_based ? reference.Plan(expr, db)
                              : reference.Plan(expr, db.schema());
  ASSERT_TRUE(plan.ok()) << context << ": " << plan.error();
  auto expected = reference.Run(*plan, db);
  ASSERT_TRUE(expected.ok()) << context << ": " << expected.error();

  for (std::size_t threads : kThreadCounts) {
    for (std::size_t batch_size : kBatchSizes) {
      EngineOptions options = base;
      options.batched = true;
      options.batch_size = batch_size;
      options.threads = threads;
      const Engine batched(options);
      auto run = batched.Run(*plan, db);
      const std::string what = context + " batch_size=" +
                               std::to_string(batch_size) +
                               " threads=" + std::to_string(threads);
      ASSERT_TRUE(run.ok()) << what << ": " << run.error();
      EXPECT_EQ(run->relation, expected->relation) << what;
      ExpectSameStats(expected->stats, run->stats, what);
      EXPECT_EQ(run->stats.batch_size, batch_size);
      EXPECT_EQ(run->stats.threads_used, threads) << what;
      if (!expected->relation.empty()) {
        EXPECT_GT(run->stats.batches_emitted, 0u) << what;
        EXPECT_GT(run->stats.peak_batch_bytes, 0u) << what;
      }
      if (batch_size == 7) {
        ExpectCachedRunsMatch(options, expr, db, expected->relation,
                              expected->stats, what + " plan-cache");
      }
    }
    if (threads > 1) {
      // Materializing executor with a worker pool (no batching).
      EngineOptions options = base;
      options.threads = threads;
      auto run = Engine(options).Run(*plan, db);
      const std::string what =
          context + " materializing threads=" + std::to_string(threads);
      ASSERT_TRUE(run.ok()) << what << ": " << run.error();
      EXPECT_EQ(run->relation, expected->relation) << what;
      ExpectSameStats(expected->stats, run->stats, what);
    }
  }
}

// The three planning modes the harness drives every workload through.
std::vector<std::pair<std::string, EngineOptions>> AllModes() {
  return {{"reference", EngineOptions::Reference()},
          {"planned", EngineOptions{}},
          {"cost-based", EngineOptions::CostBased()}};
}

// ---------------------------------------------------------------------------
// Randomized expressions over random databases.
// ---------------------------------------------------------------------------

TEST(BatchExec, DifferentialOnRandomSaExpressions) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  schema.AddRelation("T", 2);
  const std::uint64_t base = BaseSeed();
  for (std::uint64_t seed = base; seed < base + 4; ++seed) {
    const auto db = setalg::testing::RandomDatabase(schema, 30, 12, seed);
    setalg::testing::RandomSaEqGenerator generator(schema, {1, 2, 3}, seed * 97);
    for (int trial = 0; trial < 6; ++trial) {
      const auto expr = generator.Generate(1 + trial % 2, 3);
      for (const auto& [name, options] : AllModes()) {
        ExpectBatchedMatches(options, expr, db,
                             name + " seed " + std::to_string(seed) + " expr " +
                                 expr->ToString());
      }
    }
  }
}

TEST(BatchExec, DifferentialOnJoinFormsOfRandomExpressions) {
  // The RA embedding of semijoins yields π(⋈) shapes — the planner's
  // semijoin reduction plus the join iterator's spill path get exercised.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  const std::uint64_t base = BaseSeed();
  for (std::uint64_t seed = base + 10; seed < base + 13; ++seed) {
    const auto db = setalg::testing::RandomDatabase(schema, 24, 10, seed);
    setalg::testing::RandomSaEqGenerator generator(schema, {1, 2}, seed * 131);
    for (int trial = 0; trial < 5; ++trial) {
      const auto expr = ra::SemiJoinToJoin(generator.Generate(1, 3));
      for (const auto& [name, options] : AllModes()) {
        ExpectBatchedMatches(options, expr, db,
                             name + " seed " + std::to_string(seed) + " expr " +
                                 expr->ToString());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Division workloads (the paper's shapes) through all planning modes.
// ---------------------------------------------------------------------------

TEST(BatchExec, DifferentialOnDivisionWorkloads) {
  const std::uint64_t base = BaseSeed();
  for (std::uint64_t seed = base; seed < base + 3; ++seed) {
    workload::DivisionConfig config;
    config.num_groups = 20 + 15 * (seed % 3);
    config.group_size = 2 + seed % 5;
    config.domain_size = 16 + 8 * (seed % 4);
    config.divisor_size = 2 + seed % 6;
    config.match_fraction = 0.3;
    config.seed = seed;
    const auto instance = workload::MakeDivisionInstance(config);
    const auto db = setalg::testing::DivisionDb(instance.r, instance.s);
    for (const auto& expr : {setjoin::ClassicDivisionExpr("R", "S"),
                             setjoin::ClassicEqualityDivisionExpr("R", "S")}) {
      for (const auto& [name, options] : AllModes()) {
        ExpectBatchedMatches(options, expr, db,
                             name + " division seed " + std::to_string(seed));
      }
    }
  }
}

// Every division algorithm behind the operator, including the streaming
// hash/aggregate probe paths and the blocking kernels.
TEST(BatchExec, DifferentialAcrossDivisionAlgorithms) {
  const std::uint64_t base = BaseSeed();
  workload::DivisionConfig config;
  config.num_groups = 24;
  config.group_size = 5;
  config.domain_size = 20;
  config.divisor_size = 4;
  config.match_fraction = 0.4;
  config.seed = base;
  const auto instance = workload::MakeDivisionInstance(config);
  const auto db = setalg::testing::DivisionDb(instance.r, instance.s);
  for (auto algorithm : setjoin::AllDivisionAlgorithms()) {
    EngineOptions options;
    options.division_algorithm = algorithm;
    ExpectBatchedMatches(
        options, setjoin::ClassicDivisionExpr("R", "S"), db,
        std::string("division algorithm ") +
            setjoin::DivisionAlgorithmToString(algorithm));
  }
}

// ---------------------------------------------------------------------------
// The workload::generators database families.
// ---------------------------------------------------------------------------

TEST(BatchExec, DifferentialOnGeneratorFamilies) {
  const std::uint64_t base = BaseSeed();

  {
    const auto db = workload::DivisionFamilyDatabase(240, 6, base);
    for (const auto& [name, options] : AllModes()) {
      ExpectBatchedMatches(options, setjoin::ClassicDivisionExpr("R", "S"), db,
                           name + " division-family");
    }
  }
  {
    const auto db = workload::SparseBinaryDatabase(200, base + 1);
    setalg::testing::RandomSaEqGenerator generator(db.schema(), {1, 2}, base * 7);
    for (int trial = 0; trial < 4; ++trial) {
      const auto expr = generator.Generate(1 + trial % 2, 3);
      for (const auto& [name, options] : AllModes()) {
        ExpectBatchedMatches(options, expr, db, name + " sparse-binary");
      }
    }
  }
  {
    const auto db = workload::TwoRelationDatabase(150, base + 2);
    setalg::testing::RandomSaEqGenerator generator(db.schema(), {1, 2}, base * 11);
    for (int trial = 0; trial < 4; ++trial) {
      const auto expr = generator.Generate(2, 3);
      for (const auto& [name, options] : AllModes()) {
        ExpectBatchedMatches(options, expr, db, name + " two-relation");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Multiway join chains: the worst-case-optimal operator through every
// executor, differentially against the binary plan.
// ---------------------------------------------------------------------------

// The triangle chain R(a,b) ⋈ S(b,c) ⋈ T(c,a), written the binary way.
ra::ExprPtr TriangleChainExpr() {
  return ra::Join(
      ra::Join(ra::Rel("R", 2), ra::Rel("S", 2), {{2, ra::Cmp::kEq, 1}}),
      ra::Rel("T", 2), {{4, ra::Cmp::kEq, 1}, {1, ra::Cmp::kEq, 2}});
}

// Skewed triangle data: R = X×Y and S = Y×Z are complete bipartite
// through a d-element middle domain Y, so the binary R⋈S intermediate is
// (n/d)·d·(n/d) = n²/d tuples — far past the AGM bound (n·n·n)^(1/2) —
// while T is n random (c, a) pairs keeping the output sparse. Value
// ranges are disjoint per variable so estimator distinct counts are exact.
core::Database TriangleChainDatabase(std::size_t n, std::size_t d,
                                     std::uint64_t seed) {
  const std::size_t side = n / d;
  core::Relation r(2), s(2), t(2);
  for (std::size_t x = 0; x < side; ++x) {
    for (std::size_t y = 0; y < d; ++y) {
      r.Add({static_cast<core::Value>(1 + x),
             static_cast<core::Value>(10001 + y)});
    }
  }
  for (std::size_t y = 0; y < d; ++y) {
    for (std::size_t z = 0; z < side; ++z) {
      s.Add({static_cast<core::Value>(10001 + y),
             static_cast<core::Value>(20001 + z)});
    }
  }
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.Add({static_cast<core::Value>(20001 + rng.NextBounded(side)),
           static_cast<core::Value>(1 + rng.NextBounded(side))});
  }
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  db.SetRelation("R", std::move(r));
  db.SetRelation("S", std::move(s));
  db.SetRelation("T", std::move(t));
  return db;
}

TEST(BatchExec, DifferentialOnMultiwayJoinChains) {
  const auto db = TriangleChainDatabase(300, 6, BaseSeed());
  const auto expr = TriangleChainExpr();
  const EngineOptions on = EngineOptions::CostBased().WithMultiway();
  const EngineOptions off = EngineOptions::CostBased();

  // The skew must actually flip the routing, or the leg below would
  // exercise nothing new.
  auto plan = Engine(on).Plan(expr, db);
  ASSERT_TRUE(plan.ok()) << plan.error();
  ASSERT_TRUE(plan->has_agm_bound);
  bool routed = false;
  for (const auto& choice : plan->choices) {
    if (choice.site == "join-chain" &&
        choice.algorithm.rfind("multiway", 0) == 0) {
      routed = true;
    }
  }
  ASSERT_TRUE(routed) << "triangle chain kept the binary plan";

  ExpectBatchedMatches(on, expr, db, "multiway-on triangle");
  ExpectBatchedMatches(off, expr, db, "multiway-off triangle");

  // Multiway on vs off: different plans, byte-identical results.
  auto with = Engine(on).Run(expr, db);
  auto without = Engine(off).Run(expr, db);
  ASSERT_TRUE(with.ok()) << with.error();
  ASSERT_TRUE(without.ok()) << without.error();
  EXPECT_EQ(with->relation.flat(), without->relation.flat());
  EXPECT_TRUE(with->stats.has_agm_bound);
  EXPECT_FALSE(without->stats.has_agm_bound);
  EXPECT_LE(static_cast<double>(with->stats.max_intermediate),
            with->stats.agm_bound);
  EXPECT_GT(static_cast<double>(without->stats.max_intermediate),
            with->stats.agm_bound);
}

// ---------------------------------------------------------------------------
// Hand-built set-join plans (no logical form) through the batch surface.
// ---------------------------------------------------------------------------

void ExpectPlanBatchedMatches(const PhysicalPlan& plan, const core::Database& db,
                              const Relation& expected, const std::string& context) {
  const Engine materializing;
  auto reference = materializing.Run(plan, db);
  ASSERT_TRUE(reference.ok()) << context << ": " << reference.error();
  EXPECT_EQ(reference->relation, expected) << context;
  for (std::size_t threads : kThreadCounts) {
    for (std::size_t batch_size : kBatchSizes) {
      const Engine batched(EngineOptions::Parallel(threads, batch_size));
      auto run = batched.Run(plan, db);
      const std::string what = context + " batch_size=" + std::to_string(batch_size) +
                               " threads=" + std::to_string(threads);
      ASSERT_TRUE(run.ok()) << what << ": " << run.error();
      EXPECT_EQ(run->relation, expected) << what;
      ExpectSameStats(reference->stats, run->stats, what);
    }
  }
}

TEST(BatchExec, DifferentialOnHandBuiltSetJoinPlans) {
  workload::SetJoinConfig config;
  config.r_groups = 30;
  config.s_groups = 25;
  config.r_group_size = 6;
  config.s_group_size = 3;
  config.domain_size = 15;
  config.containment_fraction = 0.3;
  config.seed = BaseSeed();
  const auto instance = workload::MakeSetJoinInstance(config);
  const auto db = workload::SetJoinDatabase(instance);

  for (auto algorithm : setjoin::AllContainmentAlgorithms()) {
    PhysicalPlan plan;
    plan.root = MakeSetContainmentJoin(MakeScan("R", 2), MakeScan("S", 2), algorithm);
    ExpectPlanBatchedMatches(
        plan, db, setjoin::SetContainmentJoin(instance.r, instance.s, algorithm),
        std::string("containment ") +
            setjoin::ContainmentAlgorithmToString(algorithm));
  }
  for (auto algorithm : {setjoin::EqualityJoinAlgorithm::kNestedLoop,
                         setjoin::EqualityJoinAlgorithm::kCanonicalHash}) {
    PhysicalPlan plan;
    plan.root = MakeSetEqualityJoin(MakeScan("R", 2), MakeScan("S", 2), algorithm);
    ExpectPlanBatchedMatches(
        plan, db, setjoin::SetEqualityJoin(instance.r, instance.s, algorithm),
        std::string("equality ") +
            setjoin::EqualityJoinAlgorithmToString(algorithm));
  }
  {
    PhysicalPlan plan;
    plan.root = MakeSetOverlapJoin(MakeScan("R", 2), MakeScan("S", 2));
    ExpectPlanBatchedMatches(plan, db,
                             setjoin::SetOverlapJoin(instance.r, instance.s),
                             "overlap");
  }
}

// setjoin::AsGrouped consumers vs the reference nested-loop path, on the
// adversarial shapes the batched adapters must also handle. The
// differential harness exposed no semantic divergence between the grouped
// adapters and the nested-loop reference (this suite plus the randomized
// runs above are the repro surface: any future divergence fails here with
// the offending instance printed).
TEST(BatchExec, AsGroupedConsumersAgreeWithNestedLoopReference) {
  const std::vector<std::pair<Relation, Relation>> instances = {
      // Duplicate-heavy inputs (Add'ed twice; set semantics must collapse).
      {MakeRel(2, {{1, 5}, {1, 5}, {1, 6}, {2, 5}, {2, 5}}),
       MakeRel(2, {{9, 5}, {9, 5}, {8, 6}})},
      // Empty sides.
      {Relation(2), MakeRel(2, {{9, 5}})},
      {MakeRel(2, {{1, 5}}), Relation(2)},
      // Singleton groups and a single shared element value.
      {MakeRel(2, {{1, 7}, {2, 7}, {3, 7}}), MakeRel(2, {{4, 7}, {5, 7}})},
  };
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& [r, s] = instances[i];
    const auto gr = setjoin::AsGrouped(r);
    const auto gs = setjoin::AsGrouped(s);
    const Relation expected =
        setjoin::SetContainmentJoin(gr, gs, setjoin::ContainmentAlgorithm::kNestedLoop);
    for (auto algorithm : setjoin::AllContainmentAlgorithms()) {
      EXPECT_EQ(setjoin::SetContainmentJoin(gr, gs, algorithm), expected)
          << "instance " << i << " algorithm "
          << setjoin::ContainmentAlgorithmToString(algorithm) << "\nR = "
          << r.ToString() << "\nS = " << s.ToString();
    }
    EXPECT_EQ(setjoin::SetEqualityJoin(
                  gr, gs, setjoin::EqualityJoinAlgorithm::kCanonicalHash),
              setjoin::SetEqualityJoin(gr, gs,
                                       setjoin::EqualityJoinAlgorithm::kNestedLoop))
        << "instance " << i;
  }
}

// ---------------------------------------------------------------------------
// DAG sharing, budget enforcement, and batch accounting.
// ---------------------------------------------------------------------------

TEST(BatchExec, SharedSubplansMaterializeOnceAndKeepStatsParity) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  core::Database db(schema);
  db.SetRelation("R", workload::UniformBinaryRelation(60, 12, BaseSeed()));

  // One scan shared by two parents: a stream has one consumer, so the
  // pipelined executor must materialize the shared node and re-stream it.
  PhysicalOpPtr scan = MakeScan("R", 2);
  PhysicalPlan plan;
  plan.root = MakeUnion(MakeProject(scan, {1}), MakeProject(scan, {2}));

  const Engine materializing;
  auto expected = materializing.Run(plan, db);
  ASSERT_TRUE(expected.ok()) << expected.error();
  for (std::size_t batch_size : kBatchSizes) {
    const Engine batched(EngineOptions::Batched(batch_size));
    auto run = batched.Run(plan, db);
    ASSERT_TRUE(run.ok()) << run.error();
    EXPECT_EQ(run->relation, expected->relation);
    ExpectSameStats(expected->stats, run->stats,
                    "shared batch_size=" + std::to_string(batch_size));
  }
}

TEST(BatchExec, BudgetAbortsOversizedBatchedRuns) {
  const auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {2, 20}, {3, 10}}), MakeRel(1, {{10}, {30}}));
  EngineOptions options = EngineOptions::Batched(2);
  options.recognize_division = false;
  options.recognize_semijoin_projection = false;
  options.use_fast_semijoin = false;
  options.max_intermediate_budget = 2;
  auto run = Engine::Run(ra::Product(ra::Rel("R", 2), ra::Rel("S", 1)), db, options);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.error().find("budget"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Deterministic parallel merge: repeated parallel runs of the same seed
// must be byte-for-byte identical — same sorted storage, same PlanStats
// (including the parallel accounting), independent of thread scheduling.
// The fan-in concatenates per-partition outputs in partition-index order
// and normalizes, so nothing observable may depend on completion order.
// ---------------------------------------------------------------------------

TEST(BatchExec, ParallelMergeIsDeterministicAcrossRepeatedRuns) {
  const std::uint64_t base = BaseSeed();
  workload::DivisionConfig config;
  config.num_groups = 50;
  config.group_size = 4;
  config.domain_size = 30;
  config.divisor_size = 3;
  config.match_fraction = 0.4;
  config.seed = base;
  const auto instance = workload::MakeDivisionInstance(config);
  const auto db = setalg::testing::DivisionDb(instance.r, instance.s);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  const Engine engine(EngineOptions::Parallel(7, /*batch_size=*/7));
  auto plan = engine.Plan(expr, db.schema());
  ASSERT_TRUE(plan.ok()) << plan.error();

  auto first = engine.Run(*plan, db);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first->stats.threads_used, 7u);
  EXPECT_GT(first->stats.partitions, 0u);
  for (int repeat = 0; repeat < 5; ++repeat) {
    auto run = engine.Run(*plan, db);
    ASSERT_TRUE(run.ok()) << run.error();
    // flat() compares the normalized storage byte-for-byte, a strictly
    // stronger check than relation equality on sorted sets.
    EXPECT_EQ(run->relation.flat(), first->relation.flat()) << "repeat " << repeat;
    ExpectSameStats(first->stats, run->stats,
                    "repeat " + std::to_string(repeat));
    EXPECT_EQ(run->stats.partitions, first->stats.partitions);
    EXPECT_EQ(run->stats.threads_used, first->stats.threads_used);
    EXPECT_EQ(run->stats.batches_emitted, first->stats.batches_emitted);
  }
}

TEST(BatchExec, BatchAccountingBoundsThePipelineFootprint) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  db.SetRelation("R", workload::UniformBinaryRelation(300, 20, BaseSeed()));
  core::Relation s(1);
  for (core::Value v = 1; v <= 10; ++v) s.Add({v});
  db.SetRelation("S", s);

  const auto expr = ra::Join(ra::Rel("R", 2), ra::Rel("S", 1),
                             {{2, ra::Cmp::kEq, 1}});
  for (std::size_t batch_size : kBatchSizes) {
    const Engine batched(EngineOptions::Batched(batch_size));
    auto run = batched.Run(expr, db);
    ASSERT_TRUE(run.ok()) << run.error();
    // Widest stream in this plan is the join output (arity 3): no batch
    // may outgrow its configured capacity.
    EXPECT_LE(run->stats.peak_batch_bytes,
              batch_size * 3 * sizeof(core::Value));
    // Every operator's rows arrive in ceil(rows / batch_size)-or-more
    // batches; with three operators the total must cover the output alone.
    const std::size_t output_rows = run->relation.size();
    EXPECT_GE(run->stats.batches_emitted,
              (output_rows + batch_size - 1) / batch_size);
  }
}

}  // namespace
}  // namespace setalg::engine
