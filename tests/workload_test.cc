#include <gtest/gtest.h>

#include <algorithm>

#include "setjoin/grouped.h"
#include "test_util.h"
#include "workload/generators.h"

namespace setalg::workload {
namespace {

TEST(DivisionWorkload, IsReproducible) {
  DivisionConfig config;
  config.seed = 42;
  const auto a = MakeDivisionInstance(config);
  const auto b = MakeDivisionInstance(config);
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.s, b.s);
}

TEST(DivisionWorkload, DifferentSeedsDiffer) {
  DivisionConfig config;
  config.seed = 1;
  const auto a = MakeDivisionInstance(config);
  config.seed = 2;
  const auto b = MakeDivisionInstance(config);
  EXPECT_NE(a.r, b.r);
}

TEST(DivisionWorkload, DivisorHasRequestedSize) {
  DivisionConfig config;
  config.divisor_size = 7;
  config.domain_size = 32;
  const auto instance = MakeDivisionInstance(config);
  EXPECT_EQ(instance.s.size(), 7u);
}

TEST(DivisionWorkload, MatchFractionForcesContainingGroups) {
  DivisionConfig config;
  config.num_groups = 200;
  config.group_size = 4;
  config.divisor_size = 3;
  config.domain_size = 64;
  config.match_fraction = 1.0;
  const auto instance = MakeDivisionInstance(config);
  // Every group contains the divisor by construction.
  const auto groups = setjoin::GroupedRelation::FromBinary(instance.r);
  std::vector<core::Value> divisor;
  for (std::size_t i = 0; i < instance.s.size(); ++i) {
    divisor.push_back(instance.s.tuple(i)[0]);
  }
  for (const auto& g : groups.groups()) {
    EXPECT_TRUE(setjoin::SortedSubset(divisor, g.elements));
  }
}

TEST(DivisionWorkload, ZeroMatchFractionRarelyContains) {
  DivisionConfig config;
  config.num_groups = 50;
  config.group_size = 4;
  config.divisor_size = 4;
  config.domain_size = 256;
  config.match_fraction = 0.0;
  const auto instance = MakeDivisionInstance(config);
  const auto groups = setjoin::GroupedRelation::FromBinary(instance.r);
  std::vector<core::Value> divisor;
  for (std::size_t i = 0; i < instance.s.size(); ++i) {
    divisor.push_back(instance.s.tuple(i)[0]);
  }
  std::size_t containing = 0;
  for (const auto& g : groups.groups()) {
    if (setjoin::SortedSubset(divisor, g.elements)) ++containing;
  }
  EXPECT_LT(containing, 3u);  // 4 random picks covering 4 of 256 values.
}

TEST(SetJoinWorkload, GroupCountsAreRespected) {
  SetJoinConfig config;
  config.r_groups = 17;
  config.s_groups = 9;
  const auto instance = MakeSetJoinInstance(config);
  EXPECT_EQ(setjoin::GroupedRelation::FromBinary(instance.r).NumGroups(), 17u);
  EXPECT_EQ(setjoin::GroupedRelation::FromBinary(instance.s).NumGroups(), 9u);
}

TEST(SetJoinWorkload, ContainmentFractionCreatesMatches) {
  SetJoinConfig config;
  config.r_groups = 30;
  config.s_groups = 30;
  config.r_group_size = 8;
  config.s_group_size = 3;
  config.domain_size = 64;
  config.containment_fraction = 1.0;
  config.seed = 5;
  const auto instance = MakeSetJoinInstance(config);
  const auto r = setjoin::GroupedRelation::FromBinary(instance.r);
  const auto s = setjoin::GroupedRelation::FromBinary(instance.s);
  // Every S group is a subset of some R group.
  for (const auto& sg : s.groups()) {
    bool contained = false;
    for (const auto& rg : r.groups()) {
      if (setjoin::SortedSubset(sg.elements, rg.elements)) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained);
  }
}

TEST(UniformBinary, RowCountUpToDuplicates) {
  const auto r = UniformBinaryRelation(500, 1000, 3);
  EXPECT_LE(r.size(), 500u);
  EXPECT_GT(r.size(), 400u);  // Few collisions at this density.
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_GE(r.tuple(i)[0], 1);
    EXPECT_LE(r.tuple(i)[0], 1000);
  }
}

TEST(PathRelation, IsAChain) {
  const auto r = PathRelation(5);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_TRUE(r.Contains(core::Tuple{1, 2}));
  EXPECT_TRUE(r.Contains(core::Tuple{4, 5}));
  EXPECT_TRUE(PathRelation(1).empty());
}

TEST(Families, DivisionFamilyScalesLinearly) {
  const auto small = DivisionFamilyDatabase(400, 4, 1);
  const auto large = DivisionFamilyDatabase(3200, 4, 1);
  EXPECT_GT(large.size(), small.size() * 6);
  EXPECT_LT(large.size(), small.size() * 10);
}

TEST(Families, SparseBinaryHasSchemaR) {
  const auto db = SparseBinaryDatabase(100, 2);
  EXPECT_TRUE(db.schema().HasRelation("R"));
  EXPECT_LE(db.relation("R").size(), 100u);
}

TEST(Families, TwoRelationSharesDomain) {
  const auto db = TwoRelationDatabase(200, 5);
  EXPECT_TRUE(db.schema().HasRelation("R"));
  EXPECT_TRUE(db.schema().HasRelation("T"));
  EXPECT_GT(db.relation("T").size(), 0u);
}

}  // namespace
}  // namespace setalg::workload
