#include <gtest/gtest.h>

#include "bisim/bisimulation.h"
#include "bisim/partial_iso.h"
#include "test_util.h"
#include "witness/figures.h"

namespace setalg::bisim {
namespace {

using setalg::testing::MakeRel;

// ---------------------------------------------------------------------------
// PartialIso.
// ---------------------------------------------------------------------------

TEST(PartialIso, FromTuplesBuildsPositionalMap) {
  auto iso = PartialIso::FromTuples(core::Tuple{1, 2}, core::Tuple{6, 7});
  ASSERT_TRUE(iso.has_value());
  EXPECT_EQ(iso->Map(1), 6);
  EXPECT_EQ(iso->Map(2), 7);
  EXPECT_EQ(iso->MapInverse(7), 2);
  EXPECT_EQ(iso->size(), 2u);
}

TEST(PartialIso, RepeatedConsistentValuesAllowed) {
  auto iso = PartialIso::FromTuples(core::Tuple{1, 1, 2}, core::Tuple{5, 5, 6});
  ASSERT_TRUE(iso.has_value());
  EXPECT_EQ(iso->size(), 2u);
}

TEST(PartialIso, NotAFunctionRejected) {
  // 1 would map to both 5 and 6.
  EXPECT_FALSE(PartialIso::FromTuples(core::Tuple{1, 1}, core::Tuple{5, 6}).has_value());
}

TEST(PartialIso, NotInjectiveRejected) {
  EXPECT_FALSE(PartialIso::FromTuples(core::Tuple{1, 2}, core::Tuple{5, 5}).has_value());
}

TEST(PartialIso, ArityMismatchRejected) {
  EXPECT_FALSE(PartialIso::FromTuples(core::Tuple{1, 2}, core::Tuple{5}).has_value());
}

TEST(PartialIso, DomainRangeSorted) {
  auto iso = PartialIso::FromTuples(core::Tuple{3, 1}, core::Tuple{9, 7});
  ASSERT_TRUE(iso.has_value());
  EXPECT_EQ(iso->Domain(), (std::vector<core::Value>{1, 3}));
  EXPECT_EQ(iso->Range(), (std::vector<core::Value>{7, 9}));
}

TEST(PartialIso, AgreesOnSharedValues) {
  auto f = *PartialIso::FromTuples(core::Tuple{1, 2}, core::Tuple{6, 7});
  auto g = *PartialIso::FromTuples(core::Tuple{2, 3}, core::Tuple{7, 8});
  EXPECT_TRUE(f.AgreesOn(g, {2}));
  EXPECT_TRUE(f.AgreesOn(g, {1, 2, 3}));  // Non-shared values ignored.
  auto h = *PartialIso::FromTuples(core::Tuple{2, 3}, core::Tuple{9, 8});
  EXPECT_FALSE(f.AgreesOn(h, {2}));
}

TEST(PartialIso, InverseAgreement) {
  auto f = *PartialIso::FromTuples(core::Tuple{1, 2}, core::Tuple{6, 7});
  auto g = *PartialIso::FromTuples(core::Tuple{2, 3}, core::Tuple{7, 8});
  EXPECT_TRUE(f.InverseAgreesOn(g, {7}));
  auto h = *PartialIso::FromTuples(core::Tuple{9, 3}, core::Tuple{7, 8});
  EXPECT_FALSE(f.InverseAgreesOn(h, {7}));
}

// ---------------------------------------------------------------------------
// CheckCPartialIso (Definition 10).
// ---------------------------------------------------------------------------

core::Database OnePairDb(core::Value a, core::Value b) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  core::Database db(schema);
  db.mutable_relation("R")->Add({a, b});
  return db;
}

TEST(CPartialIso, AcceptsRelationAndOrderPreservingMap) {
  const auto a = OnePairDb(1, 2);
  const auto b = OnePairDb(6, 7);
  auto iso = *PartialIso::FromTuples(core::Tuple{1, 2}, core::Tuple{6, 7});
  EXPECT_EQ(CheckCPartialIso(iso, a, b, {}), "");
}

TEST(CPartialIso, RejectsOrderViolation) {
  const auto a = OnePairDb(1, 2);
  const auto b = OnePairDb(7, 6);  // Reversed order.
  auto iso = *PartialIso::FromTuples(core::Tuple{1, 2}, core::Tuple{7, 6});
  EXPECT_NE(CheckCPartialIso(iso, a, b, {}), "");
}

TEST(CPartialIso, RejectsRelationViolation) {
  const auto a = OnePairDb(1, 2);
  auto b = OnePairDb(6, 7);
  b.mutable_relation("R")->Add({7, 6});
  // Map {1→6, 2→7}: fine on (1,2)→(6,7); but A lacks (2,1) while B has
  // (7,6) — relation preservation fails on the reverse tuple.
  auto iso = *PartialIso::FromTuples(core::Tuple{1, 2}, core::Tuple{6, 7});
  EXPECT_NE(CheckCPartialIso(iso, a, b, {}), "");
}

TEST(CPartialIso, RejectsConstantRemap) {
  const auto a = OnePairDb(1, 6);
  const auto b = OnePairDb(1, 7);
  // 6 → 7 with 6 ∈ C: the extension with id_C is not a function.
  auto iso = *PartialIso::FromTuples(core::Tuple{1, 6}, core::Tuple{1, 7});
  EXPECT_NE(CheckCPartialIso(iso, a, b, {6}), "");
}

TEST(CPartialIso, RejectsOrderViolationRelativeToConstants) {
  // The paper-intent strengthening documented in DESIGN.md: 5 → 7 with
  // C = {6} flips the order relative to the constant.
  const auto a = OnePairDb(1, 5);
  const auto b = OnePairDb(1, 7);
  auto iso = *PartialIso::FromTuples(core::Tuple{1, 5}, core::Tuple{1, 7});
  EXPECT_EQ(CheckCPartialIso(iso, a, b, {}), "");   // Fine without constants.
  EXPECT_NE(CheckCPartialIso(iso, a, b, {6}), "");  // Violates with C = {6}.
}

TEST(CPartialIso, ZeroAryRelationMustMatch) {
  core::Schema schema;
  schema.AddRelation("B", 0);
  schema.AddRelation("R", 1);
  core::Database a(schema), b(schema);
  a.mutable_relation("R")->Add({1});
  b.mutable_relation("R")->Add({2});
  a.mutable_relation("B")->Add(core::Tuple{});
  auto iso = *PartialIso::FromTuples(core::Tuple{1}, core::Tuple{2});
  EXPECT_NE(CheckCPartialIso(iso, a, b, {}), "");
  b.mutable_relation("B")->Add(core::Tuple{});
  EXPECT_EQ(CheckCPartialIso(iso, a, b, {}), "");
}

// ---------------------------------------------------------------------------
// VerifyBisimulation — the paper's explicit sets.
// ---------------------------------------------------------------------------

TEST(Verify, Example12BisimulationIsValid) {
  const auto a = witness::MakeFig3A();
  const auto b = witness::MakeFig3B();
  EXPECT_EQ(VerifyBisimulation(witness::MakeFig3Bisimulation(), a, b, {}), "");
}

TEST(Verify, Example12BrokenWithoutAMember) {
  const auto a = witness::MakeFig3A();
  const auto b = witness::MakeFig3B();
  auto isos = witness::MakeFig3Bisimulation();
  isos.pop_back();  // Drop (2,3)→(10,11): back fails for (1,2)→(9,10).
  EXPECT_NE(VerifyBisimulation(isos, a, b, {}), "");
}

TEST(Verify, Proposition26BisimulationIsValid) {
  EXPECT_EQ(VerifyBisimulation(witness::MakeFig5Bisimulation(), witness::MakeFig5A(),
                               witness::MakeFig5B(), {}),
            "");
}

TEST(Verify, Fig6BeerBisimulationIsValid) {
  const auto beer = witness::MakeBeerExample();
  EXPECT_EQ(VerifyBisimulation(witness::MakeFig6Bisimulation(beer), beer.a, beer.b, {}),
            "");
}

TEST(Verify, EmptySetRejected) {
  EXPECT_NE(VerifyBisimulation({}, witness::MakeFig5A(), witness::MakeFig5B(), {}),
            "");
}

TEST(Verify, NonIsoMemberRejected) {
  const auto a = witness::MakeFig5A();
  const auto b = witness::MakeFig5B();
  auto isos = witness::MakeFig5Bisimulation();
  // (1) → (7) maps a drinker onto a divisor value: S membership differs.
  isos.push_back(*PartialIso::FromTuples(core::Tuple{1}, core::Tuple{7}));
  EXPECT_NE(VerifyBisimulation(isos, a, b, {}), "");
}

// ---------------------------------------------------------------------------
// BisimulationChecker (greatest fixpoint).
// ---------------------------------------------------------------------------

TEST(Checker, Fig3TuplesAreBisimilar) {
  const auto a = witness::MakeFig3A();
  const auto b = witness::MakeFig3B();
  BisimulationChecker checker(&a, &b, {});
  EXPECT_TRUE(checker.AreBisimilar(core::Tuple{1, 2}, core::Tuple{6, 7}));
  EXPECT_TRUE(checker.AreBisimilar(core::Tuple{1, 2}, core::Tuple{9, 10}));
  EXPECT_TRUE(checker.AreBisimilar(core::Tuple{2, 3}, core::Tuple{7, 8}));
  // (1,2) is in S but (7,8) is not: the positional map is not even a
  // partial isomorphism.
  EXPECT_FALSE(checker.AreBisimilar(core::Tuple{1, 2}, core::Tuple{7, 8}));
}

TEST(Checker, Proposition26Fig5Bisimilar) {
  const auto a = witness::MakeFig5A();
  const auto b = witness::MakeFig5B();
  BisimulationChecker checker(&a, &b, {});
  EXPECT_TRUE(checker.AreBisimilar(core::Tuple{1}, core::Tuple{1}));
  EXPECT_TRUE(checker.AreBisimilar(core::Tuple{1, 7}, core::Tuple{1, 7}));
  EXPECT_TRUE(checker.AreBisimilar(core::Tuple{7}, core::Tuple{8}));
}

TEST(Checker, Fig6BeerBisimilar) {
  const auto beer = witness::MakeBeerExample();
  BisimulationChecker checker(&beer.a, &beer.b, {});
  const core::Value alex = beer.names.Code("alex");
  EXPECT_TRUE(checker.AreBisimilar(core::Tuple{alex}, core::Tuple{alex}));
}

TEST(Checker, DetectsNonBisimilarDatabases) {
  // A: value with a successor in S; B: successor missing from S.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database a(schema), b(schema);
  a.mutable_relation("R")->Add({1, 2});
  a.mutable_relation("S")->Add({2});
  b.mutable_relation("R")->Add({1, 2});
  BisimulationChecker checker(&a, &b, {});
  EXPECT_FALSE(checker.AreBisimilar(core::Tuple{1, 2}, core::Tuple{1, 2}));
}

TEST(Checker, ScaledDivisionFamiliesAreBisimilar) {
  for (std::size_t n : {1u, 2u, 3u}) {
    for (std::size_t m : {2u, 3u}) {
      const auto a = witness::MakeDivisionFamilyA(n, m);
      const auto b = witness::MakeDivisionFamilyB(n, m);
      BisimulationChecker checker(&a, &b, {});
      EXPECT_TRUE(checker.AreBisimilar(core::Tuple{1}, core::Tuple{1}))
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(Checker, ExplicitBisimulationMembersSurviveFixpoint) {
  const auto a = witness::MakeFig5A();
  const auto b = witness::MakeFig5B();
  BisimulationChecker checker(&a, &b, {});
  const auto maximal = checker.MaximalBisimulation();
  for (const auto& iso : witness::MakeFig5Bisimulation()) {
    if (iso.size() == 1 && iso.Domain()[0] == 1) continue;  // {1}→{1} is a
    // query pair, not a guarded-domain candidate (domain {1} unguarded).
    bool found = false;
    for (const auto& survivor : maximal) {
      if (survivor.pairs() == iso.pairs()) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << iso.ToString();
  }
}

TEST(Checker, StatsAreReported) {
  const auto a = witness::MakeFig5A();
  const auto b = witness::MakeFig5B();
  BisimulationChecker checker(&a, &b, {});
  EXPECT_GT(checker.initial_candidates(), 0u);
  EXPECT_LE(checker.surviving_candidates(), checker.initial_candidates());
  EXPECT_GE(checker.refinement_passes(), 1u);
}

TEST(Checker, ConstantsRestrictBisimilarity) {
  // Fig. 5 with the divisor values declared as constants: now 7 cannot map
  // to 8 (constants must be fixed), so far fewer candidates survive.
  const auto a = witness::MakeFig5A();
  const auto b = witness::MakeFig5B();
  BisimulationChecker unconstrained(&a, &b, {});
  BisimulationChecker constrained(&a, &b, {7, 8, 9});
  EXPECT_FALSE(constrained.AreBisimilar(core::Tuple{7}, core::Tuple{8}));
  EXPECT_TRUE(unconstrained.AreBisimilar(core::Tuple{7}, core::Tuple{8}));
  EXPECT_LT(constrained.initial_candidates(), unconstrained.initial_candidates());
}

TEST(Checker, IdenticalDatabasesSelfBisimilar) {
  const auto a = witness::MakeFig5A();
  BisimulationChecker checker(&a, &a, {});
  for (const auto& t : a.TupleSpace()) {
    EXPECT_TRUE(checker.AreBisimilar(t, t)) << core::TupleToString(t);
  }
}

}  // namespace
}  // namespace setalg::bisim
