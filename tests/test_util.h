// Shared helpers for the test suites.
#ifndef SETALG_TESTS_TEST_UTIL_H_
#define SETALG_TESTS_TEST_UTIL_H_

#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "ra/expr.h"
#include "util/rng.h"

namespace setalg::testing {

/// Shorthand relation builder.
inline core::Relation MakeRel(
    std::size_t arity, std::initializer_list<std::initializer_list<core::Value>> rows) {
  return core::Relation::FromRows(arity, rows);
}

/// A database over {R/2, S/1} (the division schema).
inline core::Database DivisionDb(const core::Relation& r, const core::Relation& s) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  db.SetRelation("R", r);
  db.SetRelation("S", s);
  return db;
}

/// Random database over an arbitrary schema: each relation gets `rows`
/// uniform tuples over values 1..domain.
inline core::Database RandomDatabase(const core::Schema& schema, std::size_t rows,
                                     std::size_t domain, std::uint64_t seed) {
  util::Rng rng(seed);
  core::Database db(schema);
  for (const auto& name : schema.Names()) {
    const std::size_t arity = schema.Arity(name);
    core::Relation r(arity);
    core::Tuple t(arity);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t p = 0; p < arity; ++p) {
        t[p] = static_cast<core::Value>(rng.NextBounded(domain) + 1);
      }
      r.Add(t);
    }
    db.SetRelation(name, std::move(r));
  }
  return db;
}

/// Generates a random SA= expression of the given target arity over a
/// schema of binary/unary relations. Used for the Corollary 14 and
/// Theorem 8 property tests. Depth-bounded; constants drawn from
/// `constants` (may be empty).
class RandomSaEqGenerator {
 public:
  RandomSaEqGenerator(const core::Schema& schema, std::vector<core::Value> constants,
                      std::uint64_t seed)
      : schema_(schema), constants_(std::move(constants)), rng_(seed) {}

  ra::ExprPtr Generate(std::size_t arity, std::size_t depth) {
    ra::ExprPtr e = GenerateAnyArity(depth);
    // Coerce to the requested arity by projection (with repetition when
    // the expression is too narrow).
    std::vector<std::size_t> columns(arity);
    for (std::size_t i = 0; i < arity; ++i) {
      columns[i] = e->arity() == 0 ? 0 : rng_.NextBounded(e->arity()) + 1;
    }
    if (e->arity() == 0) {
      // Tag constants to produce columns.
      for (std::size_t i = 0; i < arity; ++i) {
        e = ra::Tag(e, constants_.empty() ? 1 : constants_[0]);
        columns[i] = i + 1;
      }
    }
    return ra::Project(e, columns);
  }

 private:
  ra::ExprPtr GenerateAnyArity(std::size_t depth) {
    if (depth == 0) return RandomLeaf();
    switch (rng_.NextBounded(8)) {
      case 0: {
        ra::ExprPtr left = GenerateAnyArity(depth - 1);
        ra::ExprPtr right = CoerceArity(GenerateAnyArity(depth - 1), left->arity());
        return ra::Union(left, right);
      }
      case 1: {
        ra::ExprPtr left = GenerateAnyArity(depth - 1);
        ra::ExprPtr right = CoerceArity(GenerateAnyArity(depth - 1), left->arity());
        return ra::Diff(left, right);
      }
      case 2: {
        ra::ExprPtr input = GenerateAnyArity(depth - 1);
        if (input->arity() == 0) return input;
        std::vector<std::size_t> columns(rng_.NextBounded(input->arity()) + 1);
        for (auto& c : columns) c = rng_.NextBounded(input->arity()) + 1;
        return ra::Project(input, columns);
      }
      case 3: {
        ra::ExprPtr input = GenerateAnyArity(depth - 1);
        if (input->arity() < 2) return input;
        const std::size_t i = rng_.NextBounded(input->arity()) + 1;
        const std::size_t j = rng_.NextBounded(input->arity()) + 1;
        return rng_.NextBool() ? ra::SelectEq(input, i, j)
                               : ra::SelectLt(input, i, j);
      }
      case 4: {
        ra::ExprPtr input = GenerateAnyArity(depth - 1);
        if (constants_.empty()) return input;
        return ra::Tag(input,
                       constants_[rng_.NextBounded(constants_.size())]);
      }
      case 5:
      case 6: {
        ra::ExprPtr left = GenerateAnyArity(depth - 1);
        ra::ExprPtr right = GenerateAnyArity(depth - 1);
        if (left->arity() == 0 || right->arity() == 0) {
          return ra::SemiJoin(left, right, {});
        }
        std::vector<ra::JoinAtom> atoms;
        const std::size_t count = rng_.NextBounded(2) + 1;
        for (std::size_t k = 0; k < count; ++k) {
          atoms.push_back({rng_.NextBounded(left->arity()) + 1, ra::Cmp::kEq,
                           rng_.NextBounded(right->arity()) + 1});
        }
        return ra::SemiJoin(left, right, atoms);
      }
      default:
        return RandomLeaf();
    }
  }

  ra::ExprPtr CoerceArity(ra::ExprPtr e, std::size_t arity) {
    if (e->arity() == arity) return e;
    while (e->arity() < arity) {
      e = ra::Tag(e, constants_.empty() ? 1 : constants_[0]);
    }
    std::vector<std::size_t> columns(arity);
    for (std::size_t i = 0; i < arity; ++i) columns[i] = i + 1;
    return ra::Project(e, columns);
  }

  ra::ExprPtr RandomLeaf() {
    const auto& names = schema_.Names();
    const auto& name = names[rng_.NextBounded(names.size())];
    return ra::Rel(name, schema_.Arity(name));
  }

  const core::Schema& schema_;
  std::vector<core::Value> constants_;
  util::Rng rng_;
};

}  // namespace setalg::testing

#endif  // SETALG_TESTS_TEST_UTIL_H_
