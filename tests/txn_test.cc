// Reader/writer stress harness for the MVCC snapshot subsystem
// (txn/snapshot.h) and the concurrency-grade shared caches it feeds.
//
// The property under test: a snapshot is a *frozen database*. However many
// writers keep committing to the head, and however a reader's run is
// served — planned fresh, through the process-wide shared plan cache, or
// replayed whole from the result cache — the result relation and the full
// PlanStats of every read must be bit-identical to a serial replay of the
// same expression against a plain core::Database holding exactly the
// contents of that snapshot's version. The harness runs N reader threads
// (each grabbing fresh snapshots between queries) against one continuously
// mutating head (point inserts, deletes, bulk loads, divisor swaps, and
// multi-relation WriteBatch commits), logs one database copy per published
// version, and replays every recorded read serially after the join.
//
// Like tests/plan_cache_test.cc, the suite reads SETALG_BATCH_SEED
// (default 1) as the base of its seed range; CI runs it under ASan/UBSan
// and TSan across a fixed seed matrix — TSan is the point: readers never
// lock anything after `snapshot()` returns.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "core/schema.h"
#include "engine/engine.h"
#include "engine/result_cache.h"
#include "engine/shared_cache.h"
#include "gf/formula.h"
#include "gf/translate.h"
#include "ra/expr.h"
#include "setjoin/division.h"
#include "setjoin/grouped.h"
#include "test_util.h"
#include "txn/sharded.h"
#include "txn/snapshot.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace setalg::txn {
namespace {

using core::Relation;
using setalg::testing::MakeRel;

std::uint64_t BaseSeed() {
  const char* env = std::getenv("SETALG_BATCH_SEED");
  if (env == nullptr) return 1;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  return (end == env || value == 0) ? 1 : static_cast<std::uint64_t>(value);
}

// Bit-identical PlanStats comparison: everything a run reports except the
// cache provenance field itself (a concurrent read may be a shared-cache
// hit or a whole-result replay; the serial replay never is).
void ExpectIdenticalStats(const engine::PlanStats& expected,
                          const engine::PlanStats& actual,
                          const std::string& context) {
  EXPECT_EQ(actual.max_intermediate, expected.max_intermediate) << context;
  EXPECT_EQ(actual.total_intermediate, expected.total_intermediate) << context;
  EXPECT_EQ(actual.join_rows_emitted, expected.join_rows_emitted) << context;
  EXPECT_EQ(actual.batch_size, expected.batch_size) << context;
  EXPECT_EQ(actual.batches_emitted, expected.batches_emitted) << context;
  EXPECT_EQ(actual.peak_batch_bytes, expected.peak_batch_bytes) << context;
  EXPECT_EQ(actual.threads_used, expected.threads_used) << context;
  EXPECT_EQ(actual.partitions, expected.partitions) << context;
  EXPECT_EQ(actual.rewrites, expected.rewrites) << context;
  ASSERT_EQ(actual.choices.size(), expected.choices.size()) << context;
  for (std::size_t i = 0; i < expected.choices.size(); ++i) {
    EXPECT_EQ(actual.choices[i].site, expected.choices[i].site)
        << context << " choice " << i;
    EXPECT_EQ(actual.choices[i].algorithm, expected.choices[i].algorithm)
        << context << " choice " << i;
  }
  ASSERT_EQ(actual.ops.size(), expected.ops.size()) << context;
  for (std::size_t i = 0; i < expected.ops.size(); ++i) {
    const engine::OpStats& want = expected.ops[i];
    const engine::OpStats& got = actual.ops[i];
    EXPECT_EQ(got.label, want.label) << context << " op " << i;
    EXPECT_EQ(got.source, want.source) << context << " op " << i;
    EXPECT_EQ(got.output_size, want.output_size)
        << context << " op " << i << " (" << want.label << ")";
    EXPECT_EQ(got.has_estimate, want.has_estimate) << context << " op " << i;
    EXPECT_DOUBLE_EQ(got.estimated_output, want.estimated_output)
        << context << " op " << i;
    EXPECT_DOUBLE_EQ(got.estimated_cost, want.estimated_cost)
        << context << " op " << i;
  }
}

core::Schema DivisionSchema() {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  return schema;
}

// The query family every reader draws from: the two division shapes the
// paper centers on, one gf-generated guarded formula pushed through the
// Theorem 8 converse translation, and two random SA= expressions.
std::vector<ra::ExprPtr> QueryFamily(const core::Schema& schema,
                                     std::uint64_t seed) {
  std::vector<ra::ExprPtr> exprs;
  exprs.push_back(setjoin::ClassicDivisionExpr("R", "S"));
  exprs.push_back(setjoin::ClassicEqualityDivisionExpr("R", "S"));
  // φ(x) = ∃y [R(x,y) ∧ S(y)]: a guarded semijoin shape.
  gf::FormulaPtr guarded =
      gf::Exists(gf::Atom("R", {"x", "y"}), {"y"},
                 gf::And(gf::Atom("R", {"x", "y"}), gf::Atom("S", {"y"})));
  exprs.push_back(gf::GfToSaEq(*guarded, {"x"}, schema));
  setalg::testing::RandomSaEqGenerator gen(schema, {1, 2, 3}, seed * 977 + 5);
  exprs.push_back(gen.Generate(1, 2));
  exprs.push_back(gen.Generate(2, 2));
  return exprs;
}

// One randomized mutation applied identically to the serial mirror and
// (by the caller) to the versioned head. Returns the touched relations'
// fresh contents, copied out of the mirror.
std::vector<std::pair<std::string, Relation>> MutateMirror(
    core::Database* mirror, util::Rng* rng, std::uint64_t seed, int step) {
  switch (rng->NextBounded(5)) {
    case 0: {  // Point inserts into R.
      Relation r = mirror->relation("R");
      const std::size_t count = 1 + rng->NextBounded(4);
      for (std::size_t i = 0; i < count; ++i) {
        r.Add({static_cast<core::Value>(rng->NextBounded(30) + 1),
               static_cast<core::Value>(rng->NextBounded(20) + 1)});
      }
      mirror->SetRelation("R", r);
      return {{"R", std::move(r)}};
    }
    case 1: {  // Delete ~half of R.
      const Relation& r = mirror->relation("R");
      Relation kept(2);
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (rng->NextBool()) kept.Add(r.tuple(i));
      }
      mirror->SetRelation("R", kept);
      return {{"R", std::move(kept)}};
    }
    case 2: {  // Bulk-load R with a different shape (flips cost choices).
      const std::size_t rows = 60 + 40 * rng->NextBounded(4);
      const std::size_t domain = 4 + rng->NextBounded(40);
      Relation r = workload::UniformBinaryRelation(
          rows, domain, seed * 1000 + static_cast<std::uint64_t>(step));
      mirror->SetRelation("R", r);
      return {{"R", std::move(r)}};
    }
    case 3: {  // Replace the divisor.
      Relation s(1);
      const std::size_t size = 1 + rng->NextBounded(6);
      for (std::size_t i = 0; i < size; ++i) {
        s.Add({static_cast<core::Value>(rng->NextBounded(20) + 1)});
      }
      mirror->SetRelation("S", s);
      return {{"S", std::move(s)}};
    }
    default: {  // Multi-relation batch: shrink R and re-derive S together.
      const Relation& r = mirror->relation("R");
      Relation kept(2);
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (rng->NextBounded(4) != 0) kept.Add(r.tuple(i));
      }
      Relation s(1);
      const std::size_t size = 1 + rng->NextBounded(4);
      for (std::size_t i = 0; i < size; ++i) {
        s.Add({static_cast<core::Value>(rng->NextBounded(20) + 1)});
      }
      mirror->SetRelation("R", kept);
      mirror->SetRelation("S", s);
      return {{"R", std::move(kept)}, {"S", std::move(s)}};
    }
  }
}

TEST(SnapshotTest, SnapshotsAreImmutableAndVersioned) {
  VersionedDatabase head(DivisionSchema());
  const SnapshotPtr v0 = head.snapshot();
  EXPECT_EQ(v0->version(), 0u);
  EXPECT_EQ(v0->relation("R").size(), 0u);
  EXPECT_EQ(v0->relation_version("R"), 0u);
  EXPECT_EQ(v0->id(), head.id());

  const SnapshotPtr v1 =
      head.SetRelation("R", MakeRel(2, {{1, 2}, {3, 4}}));
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->relation("R").size(), 2u);
  EXPECT_EQ(v1->relation_version("R"), 1u);
  EXPECT_EQ(v1->relation_version("S"), 0u);
  // The old snapshot is untouched — and still readable.
  EXPECT_EQ(v0->relation("R").size(), 0u);
  EXPECT_EQ(v0->relation_version("R"), 0u);

  const SnapshotPtr v2 = head.Mutate("R", [](Relation& r) { r.Add({5, 6}); });
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_EQ(v2->relation("R").size(), 3u);
  EXPECT_EQ(v2->relation_version("R"), 2u);
  EXPECT_EQ(v1->relation("R").size(), 2u);
  EXPECT_EQ(head.snapshot()->version(), 2u);

  // Distinct heads never share an id (cache keys can't collide).
  VersionedDatabase other(DivisionSchema());
  EXPECT_NE(other.id(), head.id());
  core::Database plain(DivisionSchema());
  EXPECT_NE(plain.id(), head.id());
}

TEST(SnapshotTest, WriteBatchPublishesOnce) {
  VersionedDatabase head(DivisionSchema());
  const SnapshotPtr before = head.snapshot();

  WriteBatch batch;
  batch.Set("R", MakeRel(2, {{1, 1}, {1, 2}}));
  batch.Set("S", MakeRel(1, {{1}, {2}}));
  batch.Set("S", MakeRel(1, {{2}}));  // Last write per name wins.
  const SnapshotPtr after = head.Commit(std::move(batch));

  EXPECT_EQ(after->version(), before->version() + 1);
  EXPECT_EQ(after->relation("R").size(), 2u);
  EXPECT_EQ(after->relation("S").flat(), MakeRel(1, {{2}}).flat());
  EXPECT_EQ(after->relation_version("R"), 1u);
  EXPECT_EQ(after->relation_version("S"), 1u);
  EXPECT_EQ(before->relation("R").size(), 0u);

  const stats::VersionVector versions = after->Versions();
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_TRUE(stats::VersionsMatch(*after, versions));
  EXPECT_FALSE(stats::VersionsMatch(*before, versions));
}

// Cost-based runs against a snapshot must match the same runs against a
// plain Database with identical contents: the snapshot's lazy thread-safe
// statistics provider feeds the cost model the same numbers.
TEST(SnapshotTest, SnapshotRunsMatchPlainDatabase) {
  const std::uint64_t seed = BaseSeed();
  core::Database db = setalg::testing::RandomDatabase(DivisionSchema(), 120, 12,
                                                      seed * 31 + 7);
  VersionedDatabase head(db);
  const SnapshotPtr snap = head.snapshot();

  const engine::Engine plain(engine::EngineOptions::CostBased());
  const engine::Engine mvcc(engine::EngineOptions::CostBased());
  for (const auto& expr : QueryFamily(db.schema(), seed)) {
    auto want = plain.Run(expr, db);
    auto got = mvcc.Run(expr, *snap);
    ASSERT_TRUE(want.ok()) << want.error();
    ASSERT_TRUE(got.ok()) << got.error();
    EXPECT_EQ(got->relation.flat(), want->relation.flat());
    ExpectIdenticalStats(want->stats, got->stats, "snapshot vs database");
  }
}

// Atomicity under fire: the writer keeps the invariant "S is exactly the
// set of second-column values of R" within every single WriteBatch, so any
// torn publication — readers seeing the new R with the old S — breaks the
// per-snapshot check.
TEST(SnapshotTest, ConcurrentReadersSeeAtomicCommits) {
  const std::uint64_t seed = BaseSeed();
  VersionedDatabase head(DivisionSchema());
  {
    WriteBatch init;
    init.Set("R", MakeRel(2, {{1, 1}}));
    init.Set("S", MakeRel(1, {{1}}));
    head.Commit(std::move(init));
  }

  constexpr int kCommits = 40;
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&head, t] {
      std::uint64_t last = 0;
      for (int i = 0; i < 4 * kCommits; ++i) {
        const SnapshotPtr snap = head.snapshot();
        ASSERT_GE(snap->version(), last);  // Publication order is monotone.
        last = snap->version();
        const Relation& r = snap->relation("R");
        Relation derived(1);
        for (std::size_t row = 0; row < r.size(); ++row) {
          derived.Add({r.tuple(row)[1]});
        }
        ASSERT_EQ(snap->relation("S").flat(), derived.flat())
            << "torn commit seen by reader " << t << " at version "
            << snap->version();
      }
    });
  }

  util::Rng rng(seed * 131 + 3);
  for (int step = 0; step < kCommits; ++step) {
    Relation r = workload::UniformBinaryRelation(
        20 + rng.NextBounded(60), 4 + rng.NextBounded(10),
        seed * 10000 + static_cast<std::uint64_t>(step));
    Relation s(1);
    for (std::size_t row = 0; row < r.size(); ++row) s.Add({r.tuple(row)[1]});
    WriteBatch batch;
    batch.Set("R", std::move(r));
    batch.Set("S", std::move(s));
    head.Commit(std::move(batch));
  }
  for (auto& reader : readers) reader.join();
}

// ---------------------------------------------------------------------------
// The headline harness: concurrent reads vs. serial replay.

struct ReadRecord {
  std::uint64_t version = 0;
  std::size_t expr_idx = 0;
  std::size_t arity = 0;
  std::vector<core::Value> flat;
  engine::PlanStats stats;
};

struct StressMode {
  std::string name;
  engine::EngineOptions options;  // Caches added by the harness.
};

std::vector<StressMode> StressModes() {
  StressMode cost{"cost-based", engine::EngineOptions::CostBased()};
  StressMode batched{"planned-batched", engine::EngineOptions{}};
  batched.options.batched = true;
  batched.options.batch_size = 64;
  return {std::move(cost), std::move(batched)};
}

void RunReaderWriterStress(const StressMode& mode, std::uint64_t seed) {
  const core::Schema schema = DivisionSchema();
  const std::vector<ra::ExprPtr> exprs = QueryFamily(schema, seed);

  core::Database mirror = setalg::testing::RandomDatabase(
      schema, 100, 10, seed * 53 + static_cast<std::uint64_t>(mode.name.size()));
  VersionedDatabase head(mirror);

  // One database copy per published version: the serial-replay key.
  std::map<std::uint64_t, core::Database> log;
  log.emplace(0, mirror);

  // The shared engine every session thread uses: engine-local plan cache
  // off (the single-threaded path), process-wide striped caches on.
  engine::EngineOptions options = mode.options;
  options.plan_cache_entries = 0;
  options.shared_plan_cache = std::make_shared<engine::SharedPlanCache>(64, 0);
  options.result_cache =
      std::make_shared<engine::ResultCache>(64, 8u << 20);
  const engine::Engine shared_engine(options);

  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 12;
  constexpr int kCommits = 10;

  std::vector<std::vector<ReadRecord>> records(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      util::Rng rng(seed * 7919 + static_cast<std::uint64_t>(t) * 17 + 1);
      std::uint64_t last = 0;
      for (int i = 0; i < kReadsPerReader; ++i) {
        const SnapshotPtr snap = head.snapshot();
        ASSERT_GE(snap->version(), last);
        last = snap->version();
        const std::size_t idx = rng.NextBounded(exprs.size());
        auto run = shared_engine.Run(exprs[idx], *snap);
        ASSERT_TRUE(run.ok())
            << mode.name << " reader " << t << ": " << run.error();
        ReadRecord record;
        record.version = snap->version();
        record.expr_idx = idx;
        record.arity = run->relation.arity();
        record.flat = run->relation.flat();
        record.stats = run->stats;
        records[static_cast<std::size_t>(t)].push_back(std::move(record));
      }
    });
  }

  // The writer: every commit is mirrored into `log` keyed by the version
  // it published, so each snapshot has exactly one serial counterpart.
  util::Rng wrng(seed * 331 + 11);
  for (int step = 0; step < kCommits; ++step) {
    auto writes = MutateMirror(&mirror, &wrng, seed, step);
    SnapshotPtr published;
    if (writes.size() == 1 && wrng.NextBool()) {
      published = head.SetRelation(writes[0].first, std::move(writes[0].second));
    } else {
      WriteBatch batch;
      for (auto& [name, relation] : writes) {
        batch.Set(name, std::move(relation));
      }
      published = head.Commit(std::move(batch));
    }
    ASSERT_EQ(published->version(), static_cast<std::uint64_t>(step) + 1);
    log.emplace(published->version(), mirror);
    std::this_thread::yield();
  }
  for (auto& reader : readers) reader.join();

  // Serial replay: a fresh, cache-free engine per mode over the logged
  // database of each read's version. Bit-identical or bust.
  engine::EngineOptions replay_options = mode.options;
  replay_options.plan_cache_entries = 0;
  const engine::Engine replay_engine(replay_options);
  for (int t = 0; t < kReaders; ++t) {
    for (const ReadRecord& record : records[static_cast<std::size_t>(t)]) {
      const auto it = log.find(record.version);
      ASSERT_NE(it, log.end()) << "unlogged version " << record.version;
      auto want = replay_engine.Run(exprs[record.expr_idx], it->second);
      ASSERT_TRUE(want.ok()) << want.error();
      const std::string context = mode.name + " reader " + std::to_string(t) +
                                  " version " + std::to_string(record.version) +
                                  " expr " + std::to_string(record.expr_idx);
      EXPECT_EQ(record.arity, want->relation.arity()) << context;
      EXPECT_EQ(record.flat, want->relation.flat()) << context;
      ExpectIdenticalStats(want->stats, record.stats, context);
    }
  }
}

TEST(TxnStressTest, ConcurrentReadsMatchSerialReplay) {
  const std::uint64_t base = BaseSeed();
  for (const StressMode& mode : StressModes()) {
    for (std::uint64_t seed = base; seed < base + 3; ++seed) {
      SCOPED_TRACE(mode.name + " seed " + std::to_string(seed));
      RunReaderWriterStress(mode, seed);
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded storage (txn/sharded.h).

TEST(ShardedTest, ShardsPartitionTheRelationByKeyHash) {
  const std::uint64_t seed = BaseSeed();
  const core::Database db = setalg::testing::RandomDatabase(
      DivisionSchema(), 150, 12, seed * 61 + 13);
  constexpr std::size_t kShards = 4;
  ShardedDatabase head(db, kShards);
  const SnapshotPtr snap = head.snapshot();

  const auto* sharded = dynamic_cast<const core::ShardedView*>(snap.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->shard_count(), kShards);
  EXPECT_EQ(sharded->shard_key_column("R"), 1u);
  EXPECT_EQ(sharded->shard_key_column("S"), 1u);

  for (const char* name : {"R", "S"}) {
    Relation merged(db.relation(name).arity());
    for (std::size_t s = 0; s < kShards; ++s) {
      const Relation& shard = sharded->shard(name, s);
      for (std::size_t i = 0; i < shard.size(); ++i) {
        const core::TupleView row = shard.tuple(i);
        EXPECT_EQ(setjoin::PartitionOfKey(row[0], kShards), s)
            << name << " shard " << s << " row " << i;
        merged.Add(row);
      }
    }
    merged.Normalize();
    EXPECT_EQ(merged.flat(), db.relation(name).flat()) << name;
  }
}

TEST(ShardedTest, CommitReusesUntouchedShardSlices) {
  const core::Database db = setalg::testing::RandomDatabase(
      DivisionSchema(), 80, 8, BaseSeed() * 67 + 1);
  ShardedDatabase head(db, 3);
  const SnapshotPtr v0 = head.snapshot();
  const auto* sharded0 = dynamic_cast<const core::ShardedView*>(v0.get());
  ASSERT_NE(sharded0, nullptr);
  const Relation* r_shard0 = &sharded0->shard("R", 0);

  head.SetRelation("S", MakeRel(1, {{1}, {2}}));
  const SnapshotPtr v1 = head.snapshot();
  const auto* sharded1 = dynamic_cast<const core::ShardedView*>(v1.get());
  ASSERT_NE(sharded1, nullptr);
  // The commit only touched S: R's slices are shared with the previous
  // snapshot, not recomputed.
  EXPECT_EQ(&sharded1->shard("R", 0), r_shard0);
  // And S was re-sliced from the new contents.
  Relation s_merged(1);
  for (std::size_t s = 0; s < 3; ++s) {
    const Relation& shard = sharded1->shard("S", s);
    for (std::size_t i = 0; i < shard.size(); ++i) s_merged.Add(shard.tuple(i));
  }
  s_merged.Normalize();
  EXPECT_EQ(s_merged.flat(), MakeRel(1, {{1}, {2}}).flat());
}

TEST(ShardedTest, MergedStatsMatchDirectComputation) {
  const core::Database db = setalg::testing::RandomDatabase(
      DivisionSchema(), 200, 15, BaseSeed() * 71 + 5);
  ShardedDatabase head(db, 5);
  const SnapshotPtr snap = head.snapshot();
  const stats::RelationStats direct = stats::ComputeRelationStats(db.relation("R"));
  const stats::RelationStats* merged = snap->Get("R");
  ASSERT_NE(merged, nullptr);
  // Key-disjoint shards merge these fields exactly.
  EXPECT_EQ(merged->cardinality, direct.cardinality);
  EXPECT_EQ(merged->columns[0].distinct, direct.columns[0].distinct);
  EXPECT_EQ(merged->groups.num_groups, direct.groups.num_groups);
  EXPECT_EQ(merged->groups.max_group_size, direct.groups.max_group_size);
  EXPECT_EQ(merged->groups.min_group_size, direct.groups.min_group_size);
}

// The tentpole differential: every query family member over a sharded
// snapshot — serial, 2 and 7 threads, plain and batched — must be
// bit-identical to the serial run over the plain unsharded database, and
// shard-aligned parallel runs must actually skip partition passes.
TEST(ShardedTest, ShardedRunsMatchUnshardedSerialAcrossThreads) {
  const std::uint64_t seed = BaseSeed();
  const core::Schema schema = DivisionSchema();
  const core::Database db =
      setalg::testing::RandomDatabase(schema, 400, 16, seed * 41 + 9);
  const std::vector<ra::ExprPtr> exprs = QueryFamily(schema, seed);

  const engine::Engine reference{engine::EngineOptions{}};
  for (const int shards : {2, 5}) {
    ShardedDatabase head(db, static_cast<std::size_t>(shards));
    const SnapshotPtr snap = head.snapshot();
    for (const int threads : {1, 2, 7}) {
      engine::EngineOptions options;
      options = options.WithThreads(static_cast<std::size_t>(threads));
      const engine::Engine engine(options);
      for (std::size_t q = 0; q < exprs.size(); ++q) {
        auto want = reference.Run(exprs[q], db);
        auto got = engine.Run(exprs[q], *snap);
        ASSERT_TRUE(want.ok()) << want.error();
        ASSERT_TRUE(got.ok()) << got.error();
        const std::string context = "shards=" + std::to_string(shards) +
                                    " threads=" + std::to_string(threads) +
                                    " expr=" + std::to_string(q);
        EXPECT_EQ(got->relation.arity(), want->relation.arity()) << context;
        EXPECT_EQ(got->relation.flat(), want->relation.flat()) << context;
        if (threads == 1) {
          EXPECT_EQ(got->stats.partition_passes_skipped, 0u) << context;
        }
      }
    }
  }
}

TEST(ShardedTest, AlignedDivisionSkipsThePartitionPass) {
  const std::uint64_t seed = BaseSeed();
  const core::Schema schema = DivisionSchema();
  const core::Database db =
      setalg::testing::RandomDatabase(schema, 300, 12, seed * 43 + 3);
  const ra::ExprPtr division = setjoin::ClassicDivisionExpr("R", "S");

  const engine::Engine serial{engine::EngineOptions{}};
  auto want = serial.Run(division, db);
  ASSERT_TRUE(want.ok()) << want.error();

  ShardedDatabase sharded_head(db, 4);
  VersionedDatabase plain_head(db);
  const SnapshotPtr sharded_snap = sharded_head.snapshot();
  const SnapshotPtr plain_snap = plain_head.snapshot();
  for (const int threads : {2, 7}) {
    engine::EngineOptions options;
    options = options.WithThreads(static_cast<std::size_t>(threads));
    const engine::Engine engine(options);

    // Sharded on the dividend's group-key column: the partition pass is
    // skipped and the result is still bit-identical to the serial run.
    auto sharded_run = engine.Run(division, *sharded_snap);
    ASSERT_TRUE(sharded_run.ok()) << sharded_run.error();
    EXPECT_EQ(sharded_run->relation.flat(), want->relation.flat());
    EXPECT_GT(sharded_run->stats.partition_passes_skipped, 0u)
        << "threads=" << threads;

    // A plain (unsharded) snapshot keeps partitioning the classic way.
    auto plain_run = engine.Run(division, *plain_snap);
    ASSERT_TRUE(plain_run.ok()) << plain_run.error();
    EXPECT_EQ(plain_run->relation.flat(), want->relation.flat());
    EXPECT_EQ(plain_run->stats.partition_passes_skipped, 0u)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace setalg::txn
