// End-to-end reproductions of the paper's results, tying the modules
// together:
//   - Corollary 14: bisimilar pairs are indistinguishable by SA= (random
//     expression property test on Figs. 5/6 and Example 12's databases);
//   - Theorem 17: the empirical dichotomy over an expression catalog;
//   - Theorem 18 / Corollary 19: rewriteability coincides with measured
//     linearity on the catalog;
//   - Proposition 26: the full division lower-bound story.
#include <gtest/gtest.h>

#include <cmath>

#include "bisim/bisimulation.h"
#include "extalg/extended.h"
#include "gf/eval.h"
#include "gf/translate.h"
#include "ra/eval.h"
#include "ra/expr.h"
#include "ra/growth.h"
#include "ra/parse.h"
#include "ra/rewrite.h"
#include "setjoin/division.h"
#include "test_util.h"
#include "witness/figures.h"
#include "witness/pumping.h"
#include "workload/generators.h"

namespace setalg {
namespace {

using ra::Cmp;
using setalg::testing::MakeRel;
using setalg::testing::RandomSaEqGenerator;

// ---------------------------------------------------------------------------
// Corollary 14 property: no SA= expression separates bisimilar pairs.
// ---------------------------------------------------------------------------

void ExpectSaEqCannotSeparate(const core::Database& a, const core::Database& b,
                              core::TupleView a_tuple, core::TupleView b_tuple,
                              const std::vector<core::Value>& constants,
                              std::uint64_t seed, int trials) {
  bisim::BisimulationChecker checker(&a, &b, core::ConstantSet(constants));
  ASSERT_TRUE(checker.AreBisimilar(a_tuple, b_tuple));
  RandomSaEqGenerator generator(a.schema(), constants, seed);
  for (int trial = 0; trial < trials; ++trial) {
    auto expr = generator.Generate(a_tuple.size(), 3);
    ASSERT_TRUE(ra::IsSaEq(*expr));
    const bool in_a = ra::Eval(expr, a).Contains(a_tuple);
    const bool in_b = ra::Eval(expr, b).Contains(b_tuple);
    EXPECT_EQ(in_a, in_b) << "separating SA= expression found (contradicts "
                          << "Corollary 14): " << expr->ToString();
  }
}

TEST(Corollary14, Figure5DivisionPairIsInseparable) {
  const auto a = witness::MakeFig5A();
  const auto b = witness::MakeFig5B();
  ExpectSaEqCannotSeparate(a, b, core::Tuple{1}, core::Tuple{1}, {}, 101, 60);
}

TEST(Corollary14, Figure3PairIsInseparable) {
  const auto a = witness::MakeFig3A();
  const auto b = witness::MakeFig3B();
  ExpectSaEqCannotSeparate(a, b, core::Tuple{1, 2}, core::Tuple{6, 7}, {}, 202, 60);
}

TEST(Corollary14, BeerDrinkersPairIsInseparable) {
  const auto beer = witness::MakeBeerExample();
  const core::Value alex = beer.names.Code("alex");
  ExpectSaEqCannotSeparate(beer.a, beer.b, core::Tuple{alex}, core::Tuple{alex}, {},
                           303, 40);
}

TEST(Corollary14, DivisionSeparatesWhereSaEqCannot) {
  // The punchline of Proposition 26: division distinguishes A,1 from B,1...
  const auto a = witness::MakeFig5A();
  const auto b = witness::MakeFig5B();
  const auto div_a = setjoin::Divide(a.relation("R"), a.relation("S"),
                                     setjoin::DivisionAlgorithm::kHashDivision);
  const auto div_b = setjoin::Divide(b.relation("R"), b.relation("S"),
                                     setjoin::DivisionAlgorithm::kHashDivision);
  EXPECT_TRUE(div_a.Contains(core::Tuple{1}));
  EXPECT_FALSE(div_b.Contains(core::Tuple{1}));
  // ...while A,1 and B,1 are C-guarded bisimilar (checked inside the
  // Corollary 14 tests above). Hence no SA= expression computes division,
  // and by Theorem 18 every RA expression for it is quadratic.
}

TEST(Corollary14, GfFormulasCannotSeparateEither) {
  // Proposition 13 directly: random SA= expressions translated to GF also
  // agree across the bisimilar pair.
  const auto a = witness::MakeFig5A();
  const auto b = witness::MakeFig5B();
  RandomSaEqGenerator generator(a.schema(), {}, 404);
  for (int trial = 0; trial < 8; ++trial) {
    auto expr = generator.Generate(1, 2);
    auto formula = gf::SaEqToGf(expr, {"x"}, a.schema());
    const bool in_a = gf::Holds(*formula, a, {{"x", 1}});
    const bool in_b = gf::Holds(*formula, b, {{"x", 1}});
    EXPECT_EQ(in_a, in_b) << formula->ToString();
  }
}

// ---------------------------------------------------------------------------
// Theorem 17: the dichotomy, empirically, over a catalog.
// ---------------------------------------------------------------------------

enum class FamilyKind {
  kDefault,             // R uniform over domain n, S with n/4 values.
  kSkewedSecondColumn,  // R's second column drawn from a tiny domain.
};

struct CatalogEntry {
  const char* name;
  const char* text;  // Parsed against {R/2, S/1}.
  bool quadratic;
  FamilyKind family = FamilyKind::kDefault;
};

const CatalogEntry kCatalog[] = {
    {"base_relation", "R", false},
    {"projection", "pi[1](R)", false},
    {"selection", "sigma[1=2](R)", false},
    {"union", "union(R, R)", false},
    {"semijoin_embedding", "pi[1,2](join[2=1](R, S))", false},
    {"constrained_join", "join[2=1](R, S)", false},
    {"doubly_constrained", "join[1=1;2=2](R, R)", false},
    {"tagged_filter", "sigma[2=#3](R)", false},
    {"product", "product(pi[1](R), S)", true},
    {"classic_division", "diff(pi[1](R), pi[1](diff(join[](pi[1](R), S), R)))",
     true},
    {"inequality_join", "join[1<1](pi[1](R), S)", true},
    {"neq_join", "join[1!=1](pi[1](R), S)", true},
    // Quadratic only on skewed data: the worst case of Definition 16's max
    // needs repeated join values, which the uniform family does not give.
    {"half_constrained", "join[2=2](R, R)", true, FamilyKind::kSkewedSecondColumn},
};

// Database family of size Θ(n) over {R/2, S/1}.
core::Database CatalogFamily(std::size_t n, FamilyKind kind) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database out(schema);
  util::Rng rng(11);
  core::Relation r(2);
  const std::size_t second_domain = kind == FamilyKind::kSkewedSecondColumn ? 4 : n;
  for (std::size_t i = 0; i < n; ++i) {
    r.Add({static_cast<core::Value>(rng.NextBounded(n) + 1),
           static_cast<core::Value>(rng.NextBounded(second_domain) + 1)});
  }
  out.SetRelation("R", std::move(r));
  core::Relation s(1);
  for (std::size_t i = 0; i < n / 4; ++i) {
    s.Add({static_cast<core::Value>(rng.NextBounded(n) + 1)});
  }
  out.SetRelation("S", std::move(s));
  return out;
}

class DichotomyTest : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(DichotomyTest, ExponentMatchesPrediction) {
  const auto& entry = GetParam();
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  auto expr = ra::Parse(entry.text, schema);
  ASSERT_TRUE(expr.ok()) << expr.error();
  auto family = [&entry](std::size_t n) { return CatalogFamily(n, entry.family); };
  const auto report =
      ra::MeasureGrowth(*expr, family, ra::GeometricSizes(400, 6400, 5));
  if (entry.quadratic) {
    EXPECT_EQ(report.classification, ra::GrowthClass::kQuadratic)
        << entry.name << " exponent " << report.exponent();
  } else {
    EXPECT_EQ(report.classification, ra::GrowthClass::kLinear)
        << entry.name << " exponent " << report.exponent();
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, DichotomyTest, ::testing::ValuesIn(kCatalog),
                         [](const ::testing::TestParamInfo<CatalogEntry>& info) {
                           return info.param.name;
                         });

// Theorem 17 says the exponents cluster at 1 and 2 with nothing between:
// check the gap explicitly across the catalog (on each entry's worst-case
// family).
TEST(Dichotomy, NoIntermediateExponents) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  for (const auto& entry : kCatalog) {
    auto expr = ra::Parse(entry.text, schema);
    ASSERT_TRUE(expr.ok());
    const auto report = ra::MeasureGrowth(
        *expr,
        [&entry](std::size_t n) { return CatalogFamily(n, entry.family); },
        ra::GeometricSizes(400, 6400, 5));
    const double e = report.exponent();
    EXPECT_TRUE(e < 1.35 || e > 1.65)
        << entry.name << " lands in the forbidden band: " << e;
  }
}

// ---------------------------------------------------------------------------
// Theorem 18 / Corollary 19: rewriteability matches measured linearity.
// ---------------------------------------------------------------------------

TEST(Theorem18, CatalogRewritesMatchClassification) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  for (const auto& entry : kCatalog) {
    auto expr = ra::Parse(entry.text, schema);
    ASSERT_TRUE(expr.ok());
    auto rewritten = ra::RewriteRaToSaEq(*expr);
    if (entry.quadratic) {
      // Quadratic expressions must not be rewriteable (soundness).
      EXPECT_FALSE(rewritten.has_value()) << entry.name;
    } else {
      // Every linear catalog entry is certified by the rewriter and the
      // rewrite is equivalent on random instances.
      ASSERT_TRUE(rewritten.has_value()) << entry.name;
      EXPECT_TRUE(ra::IsSaEq(**rewritten));
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto db = setalg::testing::RandomDatabase(schema, 30, 8, seed);
        EXPECT_EQ(ra::Eval(*expr, db), ra::Eval(*rewritten, db))
            << entry.name << " seed " << seed;
      }
    }
  }
}

TEST(Theorem18, RewrittenExpressionsEvaluateLinearly) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  for (const auto& entry : kCatalog) {
    if (entry.quadratic) continue;
    auto expr = ra::Parse(entry.text, schema);
    ASSERT_TRUE(expr.ok());
    auto rewritten = ra::RewriteRaToSaEq(*expr);
    ASSERT_TRUE(rewritten.has_value());
    const auto db = workload::DivisionFamilyDatabase(2000, 8, 5);
    ra::EvalStats stats;
    ra::Eval(*rewritten, db, &stats);
    // SA expressions are linear by definition: every intermediate is
    // bounded by |D| (+1 for the zero-ary/tag edge cases).
    EXPECT_LE(stats.max_intermediate, db.size() + 1) << entry.name;
  }
}

// ---------------------------------------------------------------------------
// Proposition 26, quantitatively.
// ---------------------------------------------------------------------------

TEST(Proposition26, ClassicRaDivisionIsQuadraticAggregateIsNot) {
  // The divisor must grow with n for the quadratic lower bound to bite
  // (with |S| fixed, even the product π_A(R) × S stays linear).
  auto family = [](std::size_t n) { return CatalogFamily(n, FamilyKind::kDefault); };
  const auto classic = setjoin::ClassicDivisionExpr("R", "S");
  const auto classic_report =
      ra::MeasureGrowth(classic, family, ra::GeometricSizes(400, 6400, 5));
  EXPECT_EQ(classic_report.classification, ra::GrowthClass::kQuadratic)
      << classic_report.exponent();

  // The extended-algebra pipeline stays linear on the same family.
  std::vector<double> ratios;
  for (std::size_t n : ra::GeometricSizes(400, 6400, 5)) {
    const auto db = family(n);
    std::vector<extalg::StepStats> steps;
    extalg::ContainmentDivisionLinear(db.relation("R"), db.relation("S"), &steps);
    ratios.push_back(static_cast<double>(extalg::MaxStepSize(steps)) /
                     static_cast<double>(db.size()));
  }
  // Bounded ratio = linear growth.
  for (double ratio : ratios) EXPECT_LE(ratio, 1.5);
}

TEST(Proposition26, AllDivisionAlgorithmsAgreeWithQuadraticBaseline) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    workload::DivisionConfig config;
    config.num_groups = 60;
    config.group_size = 6;
    config.domain_size = 30;
    config.divisor_size = 4;
    config.seed = seed;
    const auto instance = workload::MakeDivisionInstance(config);
    const auto reference = setjoin::Divide(instance.r, instance.s,
                                           setjoin::DivisionAlgorithm::kClassicRa);
    for (auto algorithm : setjoin::AllDivisionAlgorithms()) {
      EXPECT_EQ(setjoin::Divide(instance.r, instance.s, algorithm), reference)
          << setjoin::DivisionAlgorithmToString(algorithm) << " seed " << seed;
    }
  }
}

TEST(Proposition26, PumpingTheProductNodeOfClassicDivision) {
  // Lemma 24 applied to the product inside the classic division expression
  // on a concrete witness: quadratic output from linear databases.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  db.mutable_relation("R")->Add({1, 7});
  db.mutable_relation("S")->Add({7});
  auto product = ra::Product(ra::Project(ra::Rel("R", 2), {1}), ra::Rel("S", 1));
  witness::PumpingSpec spec;
  spec.expr = product;
  spec.db = &db;
  spec.a_witness = {1};
  spec.b_witness = {7};
  ASSERT_EQ(witness::ValidatePumpingSpec(spec), "");
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    const auto dn = witness::BuildPumpedDatabase(spec, n);
    EXPECT_LE(dn.size(), 2 * db.size() * n);
    EXPECT_GE(ra::Eval(product, dn).size(), n * n);
  }
}

// ---------------------------------------------------------------------------
// Query Q (Section 4.1).
// ---------------------------------------------------------------------------

TEST(QueryQ, NotRewriteableAndMeasuredQuadratic) {
  const auto q = witness::QueryQRa();
  EXPECT_FALSE(ra::RewriteRaToSaEq(q).has_value());

  auto family = [](std::size_t n) {
    core::Schema schema;
    schema.AddRelation("Likes", 2);
    schema.AddRelation("Serves", 2);
    schema.AddRelation("Visits", 2);
    core::Database db(schema);
    const std::size_t third = n / 3 + 1;
    // Dense bipartite layers: visits and serves fan out, likes is sparse;
    // the first join materializes ~|Visits|·|Serves|/bars rows.
    util::Rng rng(21);
    core::Relation visits(2), serves(2), likes(2);
    const std::size_t bars = 4;
    for (std::size_t i = 0; i < third; ++i) {
      visits.Add({static_cast<core::Value>(1000 + i),
                  static_cast<core::Value>(rng.NextBounded(bars))});
      serves.Add({static_cast<core::Value>(rng.NextBounded(bars)),
                  static_cast<core::Value>(2000 + i)});
      likes.Add({static_cast<core::Value>(1000 + rng.NextBounded(third)),
                 static_cast<core::Value>(2000 + rng.NextBounded(third))});
    }
    db.SetRelation("Visits", std::move(visits));
    db.SetRelation("Serves", std::move(serves));
    db.SetRelation("Likes", std::move(likes));
    return db;
  };
  const auto report = ra::MeasureGrowth(q, family, ra::GeometricSizes(300, 4800, 5));
  EXPECT_EQ(report.classification, ra::GrowthClass::kQuadratic)
      << report.exponent();
}

}  // namespace
}  // namespace setalg
