// Concurrency soak for the setalgd serving path (src/server/).
//
// The property under test mirrors tests/txn_test.cc, one layer up: a
// response's `version` field pins exactly which published snapshot the
// statement saw, so every (statement, version, digest) a client records
// must be reproducible by a serial, cache-free replay of that statement
// against the snapshot published under that version — while N client
// threads hammer one server over loopback with mixed QUERY / PREPARE /
// EXECUTE traffic and a writer keeps committing randomized batches to
// the shared txn::VersionedDatabase head. All sessions share the
// process-wide plan and result caches; the replay uses neither, so any
// cross-session cache pollution or snapshot tearing shows up as a
// digest mismatch.
//
// Functional coverage rides along: ad-hoc parity with a local engine
// run, PREPARE/EXECUTE (including revalidation across commits), ERR
// responses that keep the session usable, PING/CLOSE, and graceful
// Stop() mid-traffic.
//
// Reads SETALG_BATCH_SEED (default 1); CI runs the seed matrix under
// ASan/UBSan and TSan — TSan is the point for the soak.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "sql/analyzer.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "ra/parse.h"
#include "txn/snapshot.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace setalg {
namespace {

std::uint64_t BaseSeed() {
  const char* env = std::getenv("SETALG_BATCH_SEED");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const std::uint64_t seed = std::strtoull(env, &end, 10);
  return (end == env) ? 1 : seed;
}

/// The statements the soak sends — a mix of SQL (division idiom,
/// semijoin, join) and RA text, all over SqlWorkloadDatabase's schema
/// {R/2, S/1, T/2, U/2}.
std::vector<std::string> SoakStatements() {
  return {
      "SELECT * FROM R",
      "SELECT c1 FROM S",
      "SELECT r.c1 FROM R r WHERE NOT EXISTS (SELECT * FROM S s WHERE "
      "NOT EXISTS (SELECT * FROM R r2 WHERE r2.c1 = r.c1 AND r2.c2 = s.c1))",
      "SELECT t.c1, u.c2 FROM T t, U u WHERE t.c2 = u.c1",
      "SELECT r.c1 FROM R r WHERE EXISTS (SELECT * FROM S s WHERE "
      "s.c1 = r.c2)",
      "SELECT c1 FROM T WHERE c1 < c2",
      "SELECT c1 FROM R UNION SELECT c1 FROM S",
      "pi[1](R)",
      "diff(pi[1](R), pi[1](join[2=1](R, S)))",
  };
}

/// Compiles a soak statement the way the server does.
ra::ExprPtr MustCompile(const std::string& statement,
                        const core::Schema& schema) {
  auto expr = sql::LooksLikeSql(statement) ? sql::Compile(statement, schema)
                                           : ra::Parse(statement, schema);
  SETALG_CHECK_STREAM(expr.ok()) << statement << ": " << expr.error();
  return *expr;
}

struct ServerFixture {
  std::shared_ptr<txn::VersionedDatabase> head;
  std::unique_ptr<server::Server> server;
  int port = 0;

  explicit ServerFixture(const engine::EngineOptions& options,
                         std::uint64_t seed) {
    head = std::make_shared<txn::VersionedDatabase>(
        workload::SqlWorkloadDatabase(seed));
    server = std::make_unique<server::Server>(head, options, nullptr);
    auto bound = server->Start(0);
    SETALG_CHECK_STREAM(bound.ok()) << bound.error();
    port = *bound;
  }
};

TEST(ServerTest, AdHocParityWithLocalEngine) {
  const std::uint64_t seed = BaseSeed();
  ServerFixture fixture(engine::EngineOptions::CostBased(), seed);
  auto client = server::Client::Connect("127.0.0.1", fixture.port);
  ASSERT_TRUE(client.ok()) << client.error();

  const engine::Engine local{engine::EngineOptions::CostBased()};
  const auto snapshot = fixture.head->snapshot();
  for (const auto& statement : SoakStatements()) {
    auto response = client->Roundtrip("QUERY " + statement);
    ASSERT_TRUE(response.ok()) << statement << ": " << response.error();
    ASSERT_TRUE(response->header.ok) << statement << ": "
                                     << response->header.error;
    EXPECT_EQ(response->header.version, snapshot->version()) << statement;

    auto expr = MustCompile(statement, snapshot->schema());
    auto run = local.Run(expr, *snapshot);
    ASSERT_TRUE(run.ok()) << statement;
    EXPECT_EQ(response->header.rows, run->relation.size()) << statement;
    EXPECT_EQ(response->header.digest,
              server::DigestToHex(server::RelationDigest(run->relation)))
        << statement;
    EXPECT_EQ(response->rows.size(), run->relation.size()) << statement;
  }
  client->Close();
}

TEST(ServerTest, PrepareExecuteAndRevalidationAcrossCommits) {
  const std::uint64_t seed = BaseSeed();
  ServerFixture fixture(engine::EngineOptions::CostBased(), seed);
  auto client = server::Client::Connect("127.0.0.1", fixture.port);
  ASSERT_TRUE(client.ok()) << client.error();

  const std::string statement = "SELECT c1 FROM R UNION SELECT c1 FROM S";
  auto prepared = client->Roundtrip("PREPARE q1 " + statement);
  ASSERT_TRUE(prepared.ok()) << prepared.error();
  ASSERT_TRUE(prepared->header.ok) << prepared->header.error;
  EXPECT_EQ(prepared->header.verb, "PREPARED");
  EXPECT_EQ(prepared->header.name, "q1");

  auto direct = client->Roundtrip("QUERY " + statement);
  auto executed = client->Roundtrip("EXECUTE q1");
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(executed.ok());
  ASSERT_TRUE(executed->header.ok) << executed->header.error;
  EXPECT_EQ(executed->header.digest, direct->header.digest);
  EXPECT_EQ(executed->header.version, direct->header.version);

  // Commit a change to R; the prepared handle must revalidate and serve
  // the new version with the new answer.
  core::Relation r(2);
  r.Add({7, 8});
  const auto published = fixture.head->SetRelation("R", std::move(r));
  auto after = client->Roundtrip("EXECUTE q1");
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->header.ok) << after->header.error;
  EXPECT_EQ(after->header.version, published->version());
  EXPECT_NE(after->header.digest, executed->header.digest);

  const engine::Engine local{engine::EngineOptions::CostBased()};
  auto replay = local.Run(MustCompile(statement, published->schema()),
                          *published);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(after->header.digest,
            server::DigestToHex(server::RelationDigest(replay->relation)));

  // EXECUTE of an unknown name is an error that keeps the session open.
  auto unknown = client->Roundtrip("EXECUTE nope");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown->header.ok);
  auto ping = client->Roundtrip("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->header.verb, "PONG");
  client->Close();
}

TEST(ServerTest, ErrorsAreLocatedAndSessionSurvives) {
  ServerFixture fixture(engine::EngineOptions{}, BaseSeed());
  auto client = server::Client::Connect("127.0.0.1", fixture.port);
  ASSERT_TRUE(client.ok()) << client.error();

  const char* bad[] = {
      "QUERY SELECT * FROM Nope",
      "QUERY SELECT c9 FROM R",
      "QUERY SELECT * FROM R WHERE",
      "QUERY pi[9](R)",
      "FROBNICATE",
      "PREPARE onlyname",
  };
  for (const char* request : bad) {
    auto response = client->Roundtrip(request);
    ASSERT_TRUE(response.ok()) << request << ": " << response.error();
    EXPECT_FALSE(response->header.ok) << request;
    EXPECT_EQ(response->header.verb, "ERR") << request;
    EXPECT_FALSE(response->header.error.empty()) << request;
  }
  // Compile errors from statements carry a location.
  auto located = client->Roundtrip("QUERY SELECT * FROM Nope");
  ASSERT_TRUE(located.ok());
  std::size_t line = 0, column = 0;
  EXPECT_TRUE(sql::ParseErrorLocation(located->header.error, &line, &column))
      << located->header.error;

  // The session is still fully usable.
  auto good = client->Roundtrip("QUERY SELECT * FROM R");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->header.ok) << good->header.error;
  client->Close();
}

// The soak. Clients record (statement, version, digest); a writer keeps
// publishing randomized commits; afterwards every record is replayed
// serially (fresh engine, no caches) against the snapshot that was
// published under that version.
TEST(ServerTest, ConcurrencySoakReplaysBitIdentical) {
  const std::uint64_t seed = BaseSeed();
  constexpr int kClients = 4;
  constexpr int kStatementsPerClient = 48;
  constexpr int kCommits = 40;

  ServerFixture fixture(engine::EngineOptions::CostBased(), seed);
  const auto statements = SoakStatements();

  // version -> snapshot published under it, maintained by the writer.
  std::mutex log_mu;
  std::map<std::uint64_t, txn::SnapshotPtr> published;
  {
    const auto initial = fixture.head->snapshot();
    published[initial->version()] = initial;
  }

  struct Record {
    std::string statement;
    std::uint64_t version = 0;
    std::string digest;
    std::size_t rows = 0;
  };
  std::vector<std::vector<Record>> records(kClients);
  std::vector<std::string> failures;

  std::thread writer([&] {
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
    for (int c = 0; c < kCommits; ++c) {
      txn::SnapshotPtr snap;
      if (rng.Next() % 3 == 0) {
        // Multi-relation batch: replace T and U together.
        txn::WriteBatch batch;
        batch.Set("T", workload::UniformBinaryRelation(
                           80 + rng.Next() % 80, 24, rng.Next()));
        batch.Set("U", workload::UniformBinaryRelation(
                           60 + rng.Next() % 80, 24, rng.Next()));
        snap = fixture.head->Commit(std::move(batch));
      } else if (rng.Next() % 2 == 0) {
        // Divisor swap: S gets a fresh small set.
        core::Relation s(1);
        const std::size_t n = 2 + rng.Next() % 4;
        for (std::size_t i = 0; i < n; ++i) {
          s.Add({static_cast<core::Value>(1 + rng.Next() % 24)});
        }
        snap = fixture.head->SetRelation("S", std::move(s));
      } else {
        // Point mutation on R.
        snap = fixture.head->Mutate("R", [&](core::Relation& r) {
          r.Add({static_cast<core::Value>(1 + rng.Next() % 40),
                 static_cast<core::Value>(1 + rng.Next() % 24)});
        });
      }
      {
        std::lock_guard<std::mutex> lock(log_mu);
        published[snap->version()] = snap;
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = server::Client::Connect("127.0.0.1", fixture.port);
      if (!client.ok()) {
        std::lock_guard<std::mutex> lock(log_mu);
        failures.push_back("connect: " + client.error());
        return;
      }
      util::Rng rng(seed + 1000 + static_cast<std::uint64_t>(c));
      // Each client prepares one statement under its own name.
      const std::string prepared_statement =
          statements[static_cast<std::size_t>(c) % statements.size()];
      const std::string name = "p" + std::to_string(c);
      auto prep = client->Roundtrip("PREPARE " + name + " " +
                                    prepared_statement);
      if (!prep.ok() || !prep->header.ok) {
        std::lock_guard<std::mutex> lock(log_mu);
        failures.push_back("prepare: " +
                           (prep.ok() ? prep->header.error : prep.error()));
        return;
      }
      for (int q = 0; q < kStatementsPerClient; ++q) {
        std::string statement;
        std::string request;
        if (q % 5 == 4) {
          statement = prepared_statement;
          request = "EXECUTE " + name;
        } else {
          statement = statements[rng.Next() % statements.size()];
          request = "QUERY " + statement;
        }
        auto response = client->Roundtrip(request);
        if (!response.ok() || !response->header.ok) {
          std::lock_guard<std::mutex> lock(log_mu);
          failures.push_back(request + ": " +
                             (response.ok() ? response->header.error
                                            : response.error()));
          return;
        }
        records[static_cast<std::size_t>(c)].push_back(
            {statement, response->header.version, response->header.digest,
             response->header.rows});
      }
      client->Close();
    });
  }
  for (auto& thread : clients) thread.join();
  writer.join();
  ASSERT_TRUE(failures.empty()) << failures.front();

  // Serial replay: no shared caches, no plan cache, fresh engine.
  const engine::Engine replayer{engine::EngineOptions::CostBased()};
  const core::Schema& schema = fixture.head->snapshot()->schema();
  std::map<std::string, ra::ExprPtr> compiled;
  for (const auto& statement : statements) {
    compiled[statement] = MustCompile(statement, schema);
  }
  std::size_t replayed = 0;
  std::size_t distinct_versions_seen = 0;
  {
    std::map<std::uint64_t, bool> seen;
    for (const auto& log : records) {
      for (const auto& record : log) seen[record.version] = true;
    }
    distinct_versions_seen = seen.size();
  }
  for (const auto& log : records) {
    ASSERT_EQ(log.size(), static_cast<std::size_t>(kStatementsPerClient));
    for (const auto& record : log) {
      auto it = published.find(record.version);
      ASSERT_NE(it, published.end())
          << "response pinned unpublished version " << record.version;
      auto run = replayer.Run(compiled.at(record.statement), *it->second);
      ASSERT_TRUE(run.ok()) << record.statement;
      EXPECT_EQ(record.digest,
                server::DigestToHex(server::RelationDigest(run->relation)))
          << record.statement << " @v" << record.version;
      EXPECT_EQ(record.rows, run->relation.size())
          << record.statement << " @v" << record.version;
      ++replayed;
    }
  }
  EXPECT_EQ(replayed,
            static_cast<std::size_t>(kClients * kStatementsPerClient));
  // The writer really raced the readers: responses span multiple
  // versions (40 commits against 192 statements makes a single-version
  // run astronomically unlikely — it would mean every query finished
  // before the first commit).
  EXPECT_GT(distinct_versions_seen, 1u);
  EXPECT_EQ(fixture.server->sessions_accepted(),
            static_cast<std::size_t>(kClients));
}

// Sequential connect/query/close cycles must not accumulate session
// state: the accept loop reaps finished sessions, so the tracked count
// stays bounded by live connections, not total connections served.
TEST(ServerTest, ConnectionChurnKeepsSessionListBounded) {
  ServerFixture fixture(engine::EngineOptions{}, BaseSeed());
  constexpr std::size_t kCycles = 32;
  for (std::size_t i = 0; i < kCycles; ++i) {
    auto client = server::Client::Connect("127.0.0.1", fixture.port);
    ASSERT_TRUE(client.ok()) << client.error();
    auto response = client->Roundtrip("QUERY SELECT * FROM R");
    ASSERT_TRUE(response.ok()) << response.error();
    EXPECT_TRUE(response->header.ok) << response->header.error;
    client->Close();
  }
  EXPECT_EQ(fixture.server->sessions_accepted(), kCycles);

  // Reaping happens on the accept path, and a just-closed client's
  // session thread needs a moment to observe EOF — so probe with fresh
  // connections (each accept sweeps) until the backlog drains to at most
  // the probe's own not-yet-reaped session.
  std::size_t live = kCycles;
  for (int attempt = 0; attempt < 200 && live > 1; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto probe = server::Client::Connect("127.0.0.1", fixture.port);
    ASSERT_TRUE(probe.ok()) << probe.error();
    auto ping = probe->Roundtrip("PING");
    ASSERT_TRUE(ping.ok()) << ping.error();
    probe->Close();
    live = fixture.server->live_sessions();
  }
  EXPECT_LE(live, 1u);
}

// A request line past the 1 MiB cap draws "ERR line too long" and a
// dropped connection; the per-session read buffer stays bounded. Uses a
// raw socket because Client::Roundtrip always appends the newline this
// test must withhold. The payload is exactly one byte over the cap so
// the server consumes all of it before erroring — the close is then a
// clean FIN (an unread tail would turn it into an RST that could race
// ahead of the error response).
TEST(ServerTest, OversizedLineGetsErrorAndDisconnect) {
  ServerFixture fixture(engine::EngineOptions{}, BaseSeed());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(fixture.port));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  const std::string payload((std::size_t{1} << 20) + 1, 'x');
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent,
                             MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send failed after " << sent << " bytes";
    sent += static_cast<std::size_t>(n);
  }
  std::string received;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    received.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(received.find("ERR"), std::string::npos) << received;
  EXPECT_NE(received.find("line too long"), std::string::npos) << received;
}

TEST(ServerTest, GracefulStopMidTraffic) {
  ServerFixture fixture(engine::EngineOptions{}, BaseSeed());
  auto client = server::Client::Connect("127.0.0.1", fixture.port);
  ASSERT_TRUE(client.ok()) << client.error();
  auto ok = client->Roundtrip("QUERY SELECT * FROM R");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->header.ok);

  fixture.server->Stop();
  // The session socket is shut down: the next roundtrip fails cleanly.
  auto after = client->Roundtrip("PING");
  EXPECT_FALSE(after.ok());
  // Stop is idempotent.
  fixture.server->Stop();
  // And new connections are refused.
  auto late = server::Client::Connect("127.0.0.1", fixture.port);
  if (late.ok()) {
    auto response = late->Roundtrip("PING");
    EXPECT_FALSE(response.ok());
  }
}

}  // namespace
}  // namespace setalg
