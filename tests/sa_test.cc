#include <gtest/gtest.h>

#include "core/database.h"
#include "ra/eval.h"
#include "ra/expr.h"
#include "sa/fast_semijoin.h"
#include "sa/full_reducer.h"
#include "test_util.h"
#include "util/rng.h"

namespace setalg::sa {
namespace {

using ra::Cmp;
using ra::JoinAtom;
using setalg::testing::MakeRel;

// Reference semijoin via the generic evaluator.
core::Relation ReferenceSemijoin(const core::Relation& left,
                                 const core::Relation& right,
                                 const std::vector<JoinAtom>& atoms) {
  core::Schema schema;
  schema.AddRelation("L", left.arity());
  schema.AddRelation("Rr", right.arity());
  core::Database db(schema);
  db.SetRelation("L", left);
  db.SetRelation("Rr", right);
  return ra::Eval(
      ra::SemiJoin(ra::Rel("L", left.arity()), ra::Rel("Rr", right.arity()), atoms),
      db);
}

core::Relation RandomBinary(std::size_t rows, std::size_t domain, std::uint64_t seed) {
  util::Rng rng(seed);
  core::Relation r(2);
  for (std::size_t i = 0; i < rows; ++i) {
    r.Add({static_cast<core::Value>(rng.NextBounded(domain) + 1),
           static_cast<core::Value>(rng.NextBounded(domain) + 1)});
  }
  return r;
}

// ---------------------------------------------------------------------------
// Kernel selection.
// ---------------------------------------------------------------------------

TEST(FastSemijoin, TrivialOnEmptyInputs) {
  SemijoinKernel kernel;
  core::Relation empty(2);
  core::Relation some = MakeRel(2, {{1, 2}});
  EXPECT_TRUE(Semijoin(empty, some, {{1, Cmp::kEq, 1}}, &kernel).empty());
  EXPECT_EQ(kernel, SemijoinKernel::kTrivial);
  EXPECT_TRUE(Semijoin(some, empty, {{1, Cmp::kEq, 1}}, &kernel).empty());
  EXPECT_EQ(kernel, SemijoinKernel::kTrivial);
}

TEST(FastSemijoin, EmptyConditionChecksNonemptiness) {
  SemijoinKernel kernel;
  core::Relation left = MakeRel(2, {{1, 2}, {3, 4}});
  core::Relation right = MakeRel(1, {{9}});
  EXPECT_EQ(Semijoin(left, right, {}, &kernel), left);
  EXPECT_EQ(kernel, SemijoinKernel::kTrivial);
}

TEST(FastSemijoin, HashExistenceKernelForEqualityOnly) {
  SemijoinKernel kernel;
  core::Relation left = MakeRel(2, {{1, 10}, {2, 20}});
  core::Relation right = MakeRel(1, {{10}});
  EXPECT_EQ(Semijoin(left, right, {{2, Cmp::kEq, 1}}, &kernel),
            MakeRel(2, {{1, 10}}));
  EXPECT_EQ(kernel, SemijoinKernel::kHashExistence);
}

TEST(FastSemijoin, GlobalMinMaxKernelForPureOrder) {
  SemijoinKernel kernel;
  core::Relation left = MakeRel(1, {{1}, {5}, {9}});
  core::Relation right = MakeRel(1, {{5}});
  EXPECT_EQ(Semijoin(left, right, {{1, Cmp::kLt, 1}}, &kernel),
            MakeRel(1, {{1}}));
  EXPECT_EQ(kernel, SemijoinKernel::kGlobalMinMax);
  EXPECT_EQ(Semijoin(left, right, {{1, Cmp::kGt, 1}}, &kernel),
            MakeRel(1, {{9}}));
  EXPECT_EQ(Semijoin(left, right, {{1, Cmp::kNeq, 1}}, &kernel),
            MakeRel(1, {{1}, {9}}));
}

TEST(FastSemijoin, KeyedMinMaxKernelForEqPlusOrder) {
  SemijoinKernel kernel;
  core::Relation left = MakeRel(2, {{1, 5}, {1, 9}, {2, 5}});
  core::Relation right = MakeRel(2, {{1, 6}, {2, 4}});
  // Keep left rows with a right row of equal key and greater second column.
  EXPECT_EQ(Semijoin(left, right, {{1, Cmp::kEq, 1}, {2, Cmp::kLt, 2}}, &kernel),
            MakeRel(2, {{1, 5}}));
  EXPECT_EQ(kernel, SemijoinKernel::kKeyedMinMax);
}

TEST(FastSemijoin, GroupedScanForMultipleResiduals) {
  SemijoinKernel kernel;
  core::Relation left = MakeRel(2, {{1, 5}, {3, 4}});
  core::Relation right = MakeRel(2, {{2, 4}, {0, 9}});
  // Two order atoms force the fallback.
  Semijoin(left, right, {{1, Cmp::kGt, 1}, {2, Cmp::kLt, 2}}, &kernel);
  EXPECT_EQ(kernel, SemijoinKernel::kGroupedScan);
}

TEST(FastSemijoin, KernelNamesAreStable) {
  EXPECT_STREQ(SemijoinKernelToString(SemijoinKernel::kHashExistence),
               "hash-existence");
  EXPECT_STREQ(SemijoinKernelToString(SemijoinKernel::kGroupedScan), "grouped-scan");
}

// ---------------------------------------------------------------------------
// Randomized agreement with the reference evaluator.
// ---------------------------------------------------------------------------

struct AtomPattern {
  const char* name;
  std::vector<JoinAtom> atoms;
};

class SemijoinAgreementTest : public ::testing::TestWithParam<AtomPattern> {};

TEST_P(SemijoinAgreementTest, MatchesReferenceEvaluator) {
  const auto& pattern = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto left = RandomBinary(60, 8, seed);
    const auto right = RandomBinary(60, 8, seed + 100);
    SemijoinKernel kernel;
    const auto fast = Semijoin(left, right, pattern.atoms, &kernel);
    const auto reference = ReferenceSemijoin(left, right, pattern.atoms);
    EXPECT_EQ(fast, reference) << pattern.name << " seed " << seed << " kernel "
                               << SemijoinKernelToString(kernel);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AtomPatterns, SemijoinAgreementTest,
    ::testing::Values(
        AtomPattern{"empty", {}},
        AtomPattern{"eq", {{1, Cmp::kEq, 1}}},
        AtomPattern{"eq2", {{1, Cmp::kEq, 1}, {2, Cmp::kEq, 2}}},
        AtomPattern{"lt", {{2, Cmp::kLt, 2}}},
        AtomPattern{"gt", {{2, Cmp::kGt, 2}}},
        AtomPattern{"neq", {{1, Cmp::kNeq, 1}}},
        AtomPattern{"eq_lt", {{1, Cmp::kEq, 1}, {2, Cmp::kLt, 2}}},
        AtomPattern{"eq_gt", {{1, Cmp::kEq, 1}, {2, Cmp::kGt, 2}}},
        AtomPattern{"eq_neq", {{1, Cmp::kEq, 1}, {2, Cmp::kNeq, 2}}},
        AtomPattern{"lt_gt", {{1, Cmp::kLt, 1}, {2, Cmp::kGt, 2}}},
        AtomPattern{"eq_lt_neq",
                    {{1, Cmp::kEq, 1}, {2, Cmp::kLt, 2}, {1, Cmp::kNeq, 2}}}),
    [](const ::testing::TestParamInfo<AtomPattern>& info) {
      return info.param.name;
    });

TEST(FastSemijoin, AntiSemijoinIsComplement) {
  const auto left = RandomBinary(50, 6, 5);
  const auto right = RandomBinary(50, 6, 6);
  const std::vector<JoinAtom> atoms = {{1, Cmp::kEq, 1}};
  const auto semi = Semijoin(left, right, atoms);
  const auto anti = AntiSemijoin(left, right, atoms);
  EXPECT_EQ(core::Union(semi, anti), left);
  EXPECT_TRUE(core::Intersect(semi, anti).empty());
}

// ---------------------------------------------------------------------------
// Full reducer (Bernstein–Chiu).
// ---------------------------------------------------------------------------

core::Database ChainDatabase() {
  // R(a,b) — S(b,c) — T(c,d) with some dangling tuples.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  db.SetRelation("R", MakeRel(2, {{1, 10}, {2, 20}, {3, 30}}));
  db.SetRelation("S", MakeRel(2, {{10, 100}, {20, 200}, {40, 400}}));
  db.SetRelation("T", MakeRel(2, {{100, 7}, {300, 9}}));
  return db;
}

std::vector<JoinLink> ChainLinks() {
  return {{"R", 2, "S", 1}, {"S", 2, "T", 1}};
}

TEST(FullReducer, FixpointRemovesDanglingTuples) {
  auto db = ChainDatabase();
  const auto report = ReduceToFixpoint(&db, ChainLinks());
  // Only the 1-10-100-7 chain is globally consistent.
  EXPECT_EQ(db.relation("R"), MakeRel(2, {{1, 10}}));
  EXPECT_EQ(db.relation("S"), MakeRel(2, {{10, 100}}));
  EXPECT_EQ(db.relation("T"), MakeRel(2, {{100, 7}}));
  EXPECT_GT(report.tuples_removed, 0u);
}

TEST(FullReducer, TreeReduceMatchesFixpointOnTrees) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    core::Schema schema;
    schema.AddRelation("R", 2);
    schema.AddRelation("S", 2);
    schema.AddRelation("T", 2);
    core::Database fixpoint_db(schema), tree_db(schema);
    for (const char* name : {"R", "S", "T"}) {
      auto r = RandomBinary(40, 10, seed * 31 + static_cast<std::uint64_t>(name[0]));
      fixpoint_db.SetRelation(name, r);
      tree_db.SetRelation(name, r);
    }
    ReduceToFixpoint(&fixpoint_db, ChainLinks());
    TreeReduce(&tree_db, ChainLinks());
    EXPECT_TRUE(fixpoint_db == tree_db) << "seed " << seed;
  }
}

TEST(FullReducer, ReductionPreservesJoinResults) {
  // The full reducer must not change the answer of the join query itself.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    core::Schema schema;
    schema.AddRelation("R", 2);
    schema.AddRelation("S", 2);
    core::Database db(schema);
    db.SetRelation("R", RandomBinary(50, 8, seed));
    db.SetRelation("S", RandomBinary(50, 8, seed + 7));
    auto join = ra::Join(ra::Rel("R", 2), ra::Rel("S", 2), {{2, Cmp::kEq, 1}});
    const auto before = ra::Eval(join, db);
    ReduceToFixpoint(&db, {{"R", 2, "S", 1}});
    const auto after = ra::Eval(join, db);
    EXPECT_EQ(before, after) << "seed " << seed;
  }
}

TEST(FullReducer, LinksFormForestDetection) {
  EXPECT_TRUE(LinksFormForest(ChainLinks()));
  std::vector<JoinLink> cyclic = {{"R", 1, "S", 1}, {"S", 2, "T", 1},
                                  {"T", 2, "R", 2}};
  EXPECT_FALSE(LinksFormForest(cyclic));
  EXPECT_TRUE(LinksFormForest({}));
}

TEST(FullReducer, CyclicQueryStillReachesAFixpoint) {
  // Triangle query: semijoin reduction terminates, but (as the theory of
  // the paper's refs [4-6] predicts) a semijoin-consistent instance can
  // remain even when the global cyclic join is empty.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  db.SetRelation("R", MakeRel(2, {{1, 2}, {2, 1}}));
  db.SetRelation("S", MakeRel(2, {{1, 2}, {2, 1}}));
  db.SetRelation("T", MakeRel(2, {{1, 2}, {2, 1}}));
  std::vector<JoinLink> links = {{"R", 2, "S", 1}, {"S", 2, "T", 1},
                                 {"T", 2, "R", 1}};
  const auto report = ReduceToFixpoint(&db, links);
  EXPECT_EQ(report.tuples_removed, 0u);  // Pairwise consistent as is.
  // Yet the cyclic join R(a,b) S(b,c) T(c,a) is empty: the only chains are
  // 1-2-1-2 and 2-1-2-1, and T never maps back onto the starting value.
  auto rs = ra::Join(ra::Rel("R", 2), ra::Rel("S", 2), {{2, Cmp::kEq, 1}});
  auto rst = ra::Join(rs, ra::Rel("T", 2),
                      {{4, Cmp::kEq, 1}, {1, Cmp::kEq, 2}});
  EXPECT_TRUE(ra::Eval(rst, db).empty());
}

TEST(FullReducer, EmptyRelationPropagatesEverywhere) {
  auto db = ChainDatabase();
  db.SetRelation("T", core::Relation(2));
  ReduceToFixpoint(&db, ChainLinks());
  EXPECT_TRUE(db.relation("R").empty());
  EXPECT_TRUE(db.relation("S").empty());
}

}  // namespace
}  // namespace setalg::sa
