#include <gtest/gtest.h>

#include "core/csv.h"
#include "core/database.h"
#include "core/index.h"
#include "core/name_map.h"
#include "core/relation.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "test_util.h"
#include "witness/figures.h"

namespace setalg::core {
namespace {

using setalg::testing::MakeRel;

// ---------------------------------------------------------------------------
// Tuples.
// ---------------------------------------------------------------------------

TEST(Tuple, CompareLexicographic) {
  Tuple a = {1, 2}, b = {1, 3}, c = {1, 2};
  EXPECT_LT(CompareTuples(a, b), 0);
  EXPECT_GT(CompareTuples(b, a), 0);
  EXPECT_EQ(CompareTuples(a, c), 0);
}

TEST(Tuple, ComparePrefixOrdersFirst) {
  Tuple shorter = {1, 2}, longer = {1, 2, 0};
  EXPECT_LT(CompareTuples(shorter, longer), 0);
}

TEST(Tuple, EqualsChecksLengthAndContent) {
  EXPECT_TRUE(TupleEquals(Tuple{1, 2}, Tuple{1, 2}));
  EXPECT_FALSE(TupleEquals(Tuple{1, 2}, Tuple{1, 2, 3}));
  EXPECT_FALSE(TupleEquals(Tuple{1, 2}, Tuple{2, 1}));
}

TEST(Tuple, HashDiffersForPermutations) {
  EXPECT_NE(HashTuple(Tuple{1, 2}), HashTuple(Tuple{2, 1}));
  EXPECT_NE(HashTuple(Tuple{1}), HashTuple(Tuple{1, 1}));
}

TEST(Tuple, ValueSetSortsAndDedupes) {
  EXPECT_EQ(TupleValueSet(Tuple{3, 1, 3, 2}), (std::vector<Value>{1, 2, 3}));
  EXPECT_TRUE(TupleValueSet(Tuple{}).empty());
}

TEST(Tuple, ToStringFormat) {
  EXPECT_EQ(TupleToString(Tuple{1, 2, 3}), "(1, 2, 3)");
  EXPECT_EQ(TupleToString(Tuple{}), "()");
}

// ---------------------------------------------------------------------------
// Relations.
// ---------------------------------------------------------------------------

TEST(Relation, SetSemanticsDeduplicate) {
  Relation r(2);
  r.Add({1, 2});
  r.Add({1, 2});
  r.Add({3, 4});
  EXPECT_EQ(r.size(), 2u);
}

TEST(Relation, TuplesComeOutSorted) {
  Relation r(2);
  r.Add({3, 4});
  r.Add({1, 2});
  r.Add({1, 1});
  EXPECT_TRUE(TupleEquals(r.tuple(0), Tuple{1, 1}));
  EXPECT_TRUE(TupleEquals(r.tuple(1), Tuple{1, 2}));
  EXPECT_TRUE(TupleEquals(r.tuple(2), Tuple{3, 4}));
}

TEST(Relation, ContainsBinarySearches) {
  Relation r = MakeRel(2, {{1, 2}, {3, 4}, {5, 6}});
  EXPECT_TRUE(r.Contains(Tuple{3, 4}));
  EXPECT_FALSE(r.Contains(Tuple{3, 5}));
  EXPECT_FALSE(r.Contains(Tuple{0, 0}));
}

TEST(Relation, AddAfterReadRenormalizes) {
  Relation r = MakeRel(2, {{1, 2}});
  EXPECT_EQ(r.size(), 1u);
  r.Add({0, 0});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(TupleEquals(r.tuple(0), Tuple{0, 0}));
}

TEST(Relation, ArityZeroActsAsBoolean) {
  Relation empty(0);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.Contains(Tuple{}));
  Relation full(0);
  full.Add(Tuple{});
  full.Add(Tuple{});
  EXPECT_EQ(full.size(), 1u);
  EXPECT_TRUE(full.Contains(Tuple{}));
}

TEST(Relation, ActiveDomainSortedUnique) {
  Relation r = MakeRel(2, {{5, 1}, {1, 3}});
  EXPECT_EQ(r.ActiveDomain(), (std::vector<Value>{1, 3, 5}));
}

TEST(Relation, EqualityIgnoresInsertionOrder) {
  Relation a(2), b(2);
  a.Add({1, 2});
  a.Add({3, 4});
  b.Add({3, 4});
  b.Add({1, 2});
  b.Add({1, 2});
  EXPECT_EQ(a, b);
  b.Add({9, 9});
  EXPECT_NE(a, b);
}

TEST(Relation, UnionDifferenceIntersect) {
  Relation a = MakeRel(1, {{1}, {2}, {3}});
  Relation b = MakeRel(1, {{2}, {4}});
  EXPECT_EQ(Union(a, b), MakeRel(1, {{1}, {2}, {3}, {4}}));
  EXPECT_EQ(Difference(a, b), MakeRel(1, {{1}, {3}}));
  EXPECT_EQ(Intersect(a, b), MakeRel(1, {{2}}));
}

TEST(Relation, SetOpsWithEmpty) {
  Relation a = MakeRel(1, {{1}});
  Relation empty(1);
  EXPECT_EQ(Union(a, empty), a);
  EXPECT_EQ(Difference(a, empty), a);
  EXPECT_EQ(Difference(empty, a), empty);
  EXPECT_EQ(Intersect(a, empty), empty);
}

TEST(Relation, FlatLayoutIsRowMajorSorted) {
  Relation r = MakeRel(2, {{3, 4}, {1, 2}});
  EXPECT_EQ(r.flat(), (std::vector<Value>{1, 2, 3, 4}));
}

TEST(Relation, ToStringListsTuples) {
  EXPECT_EQ(MakeRel(1, {{2}, {1}}).ToString(), "{(1), (2)}");
}

// ---------------------------------------------------------------------------
// Schema and database.
// ---------------------------------------------------------------------------

TEST(Schema, TracksNamesAndArities) {
  Schema s;
  s.AddRelation("R", 2);
  s.AddRelation("S", 1);
  EXPECT_TRUE(s.HasRelation("R"));
  EXPECT_FALSE(s.HasRelation("T"));
  EXPECT_EQ(s.Arity("S"), 1u);
  EXPECT_EQ(s.NumRelations(), 2u);
  EXPECT_EQ(s.ToString(), "{R/2, S/1}");
}

TEST(Database, SizeIsSumOfCardinalities) {
  auto db = setalg::testing::DivisionDb(MakeRel(2, {{1, 2}, {3, 4}}),
                                        MakeRel(1, {{2}}));
  EXPECT_EQ(db.size(), 3u);
}

TEST(Database, ActiveDomainAcrossRelations) {
  auto db = setalg::testing::DivisionDb(MakeRel(2, {{1, 5}}), MakeRel(1, {{7}}));
  EXPECT_EQ(db.ActiveDomain(), (std::vector<Value>{1, 5, 7}));
}

TEST(Database, TupleSpaceDeduplicatesAcrossRelations) {
  Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("T", 2);
  Database db(schema);
  db.mutable_relation("R")->Add({1, 2});
  db.mutable_relation("T")->Add({1, 2});
  db.mutable_relation("T")->Add({3, 4});
  EXPECT_EQ(db.TupleSpace().size(), 2u);
}

TEST(Database, GuardedSetsAreValueSets) {
  auto db = setalg::testing::DivisionDb(MakeRel(2, {{1, 1}, {1, 2}}),
                                        MakeRel(1, {{9}}));
  const auto sets = db.GuardedSets();
  // {1}, {1,2}, {9}.
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], (std::vector<Value>{1}));
  EXPECT_EQ(sets[1], (std::vector<Value>{1, 2}));
  EXPECT_EQ(sets[2], (std::vector<Value>{9}));
}

// Example 5 of the paper, on the Fig. 2 database (a..g = 1..7).
TEST(Database, CStoredTuplesMatchExample5) {
  const Database db = witness::MakeFig2Database();
  const ConstantSet c = {1};  // C = {a}.
  EXPECT_TRUE(db.IsCStored(Tuple{2, 3}, c));     // (b,c) via π_{2,3}(R).
  EXPECT_TRUE(db.IsCStored(Tuple{1, 6}, c));     // (a,f): reduced (f) ∈ π₁(T).
  EXPECT_FALSE(db.IsCStored(Tuple{5, 3}, c));    // (e,c) not C-stored.
  EXPECT_FALSE(db.IsCStored(Tuple{7}, c));       // (g) not C-stored.
}

TEST(Database, EmptyReducedTupleCStoredIffNonempty) {
  Schema schema;
  schema.AddRelation("R", 1);
  Database db(schema);
  const ConstantSet c = {5};
  EXPECT_FALSE(db.IsCStored(Tuple{5, 5}, c));  // All relations empty.
  db.mutable_relation("R")->Add({1});
  EXPECT_TRUE(db.IsCStored(Tuple{5, 5}, c));
}

TEST(Database, EqualityComparesAllRelations) {
  auto a = setalg::testing::DivisionDb(MakeRel(2, {{1, 2}}), MakeRel(1, {{2}}));
  auto b = setalg::testing::DivisionDb(MakeRel(2, {{1, 2}}), MakeRel(1, {{2}}));
  EXPECT_TRUE(a == b);
  b.mutable_relation("S")->Add({3});
  EXPECT_FALSE(a == b);
}

// ---------------------------------------------------------------------------
// NameMap.
// ---------------------------------------------------------------------------

TEST(NameMap, InternSortedAssignsLexicographicCodes) {
  NameMap names;
  names.InternSorted({"cherry", "apple", "banana"}, 10);
  EXPECT_EQ(names.Code("apple"), 10);
  EXPECT_EQ(names.Code("banana"), 11);
  EXPECT_EQ(names.Code("cherry"), 12);
  // Code order equals lexicographic order.
  EXPECT_LT(names.Code("apple"), names.Code("banana"));
}

TEST(NameMap, InternSortedDeduplicates) {
  NameMap names;
  names.InternSorted({"x", "x", "y"});
  EXPECT_EQ(names.size(), 2u);
}

TEST(NameMap, IncrementalInternReturnsStableCodes) {
  NameMap names;
  const Value a = names.Intern("a");
  const Value b = names.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(names.Intern("a"), a);
}

TEST(NameMap, NameFallsBackToNumber) {
  NameMap names;
  names.Intern("x");
  EXPECT_EQ(names.Name(names.Code("x")), "x");
  EXPECT_EQ(names.Name(999), "999");
}

// ---------------------------------------------------------------------------
// Indexes.
// ---------------------------------------------------------------------------

TEST(HashIndex, FindsAllMatches) {
  Relation r = MakeRel(2, {{1, 2}, {1, 3}, {2, 2}});
  HashIndex index(&r, {0});
  std::size_t count = 0;
  index.ForEachMatch(Tuple{1}, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 2u);
  EXPECT_TRUE(index.HasMatch(Tuple{2}));
  EXPECT_FALSE(index.HasMatch(Tuple{3}));
  EXPECT_EQ(index.CountMatches(Tuple{1}), 2u);
}

TEST(HashIndex, CompositeKey) {
  Relation r = MakeRel(2, {{1, 2}, {1, 3}});
  HashIndex index(&r, {0, 1});
  EXPECT_TRUE(index.HasMatch(Tuple{1, 2}));
  EXPECT_FALSE(index.HasMatch(Tuple{2, 1}));
}

TEST(SortedIndex, RangeScans) {
  Relation r = MakeRel(2, {{1, 10}, {2, 20}, {3, 30}});
  SortedIndex index(&r, 1);
  std::vector<std::size_t> less;
  index.ForEachLess(25, [&](std::size_t row) { less.push_back(row); });
  EXPECT_EQ(less.size(), 2u);
  std::vector<std::size_t> greater;
  index.ForEachGreater(15, [&](std::size_t row) { greater.push_back(row); });
  EXPECT_EQ(greater.size(), 2u);
  Value v = 0;
  EXPECT_TRUE(index.MinValue(&v));
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(index.MaxValue(&v));
  EXPECT_EQ(v, 30);
}

TEST(SortedIndex, EmptyRelation) {
  Relation r(2);
  SortedIndex index(&r, 0);
  Value v = 0;
  EXPECT_FALSE(index.MinValue(&v));
  EXPECT_FALSE(index.MaxValue(&v));
}

// ---------------------------------------------------------------------------
// CSV.
// ---------------------------------------------------------------------------

TEST(Csv, RoundTripsIntegers) {
  Relation r = MakeRel(2, {{1, 2}, {3, 4}});
  const std::string text = WriteRelationCsv(r, nullptr);
  auto parsed = ReadRelationCsv(text, nullptr);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, r);
}

TEST(Csv, SkipsEmptyLinesAndTrimsFields) {
  auto parsed = ReadRelationCsv("1 , 2\n\n 3,4 \n", nullptr);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, MakeRel(2, {{1, 2}, {3, 4}}));
}

TEST(Csv, RejectsRaggedRows) {
  auto parsed = ReadRelationCsv("1,2\n3\n", nullptr);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("expected 2 fields"), std::string::npos);
}

TEST(Csv, RejectsNonIntegerWithoutNameMap) {
  auto parsed = ReadRelationCsv("1,alice\n", nullptr);
  EXPECT_FALSE(parsed.ok());
}

TEST(Csv, InternsStringsWithNameMap) {
  NameMap names;
  auto parsed = ReadRelationCsv("alice,red\nbob,blue\n", &names);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_TRUE(names.Has("alice"));
  EXPECT_TRUE(names.Has("bob"));
  // Writing back with the map restores the names.
  const std::string text = WriteRelationCsv(*parsed, &names);
  EXPECT_NE(text.find("alice,red"), std::string::npos);
  EXPECT_NE(text.find("bob,blue"), std::string::npos);
}

TEST(Csv, EmptyInputIsError) {
  auto parsed = ReadRelationCsv("\n\n", nullptr);
  EXPECT_FALSE(parsed.ok());
}

}  // namespace
}  // namespace setalg::core
