#include <gtest/gtest.h>

#include <algorithm>

#include "gf/eval.h"
#include "gf/formula.h"
#include "gf/translate.h"
#include "ra/eval.h"
#include "test_util.h"
#include "witness/figures.h"

namespace setalg::gf {
namespace {

using ra::Cmp;
using setalg::testing::MakeRel;
using setalg::testing::RandomDatabase;

core::Schema BinarySchema() {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  return schema;
}

// ---------------------------------------------------------------------------
// Formula structure.
// ---------------------------------------------------------------------------

TEST(Formula, FreeVariablesOfAtoms) {
  EXPECT_EQ(VarEq("x", "y")->FreeVariables(), (std::set<std::string>{"x", "y"}));
  EXPECT_EQ(ConstCmp("x", Cmp::kLt, 5)->FreeVariables(),
            (std::set<std::string>{"x"}));
  EXPECT_EQ(Atom("R", {"x", "x", "y"})->FreeVariables(),
            (std::set<std::string>{"x", "y"}));
  EXPECT_TRUE(True()->FreeVariables().empty());
}

TEST(Formula, ExistsBindsQuantifiedVariables) {
  auto f = Exists(Atom("R", {"x", "y"}), {"y"}, VarEq("x", "y"));
  EXPECT_EQ(f->FreeVariables(), (std::set<std::string>{"x"}));
}

TEST(Formula, ConstantsAreCollected) {
  auto f = And(ConstCmp("x", Cmp::kEq, 5),
               Exists(Atom("R", {"x", "y"}), {"y"}, ConstCmp("y", Cmp::kLt, 3)));
  EXPECT_EQ(f->Constants(), (core::ConstantSet{3, 5}));
}

TEST(Formula, ConnectiveSimplification) {
  EXPECT_EQ(And(True(), VarEq("x", "y"))->kind(), FormulaKind::kVarCompare);
  EXPECT_EQ(And(False(), VarEq("x", "y"))->kind(), FormulaKind::kFalse);
  EXPECT_EQ(Or(True(), VarEq("x", "y"))->kind(), FormulaKind::kTrue);
  EXPECT_EQ(Not(True())->kind(), FormulaKind::kFalse);
  EXPECT_EQ(Not(False())->kind(), FormulaKind::kTrue);
}

TEST(Formula, ToStringReadable) {
  auto f = Exists(Atom("R", {"x", "y"}), {"y"}, VarLt("x", "y"));
  EXPECT_EQ(f->ToString(), "exists y (R(x, y) & x < y)");
}

TEST(Formula, ValidateGfAcceptsExample7Shape) {
  core::Schema schema;
  schema.AddRelation("Likes", 2);
  schema.AddRelation("Serves", 2);
  schema.AddRelation("Visits", 2);
  EXPECT_EQ(ValidateGf(*witness::LousyBarDrinkersGf(), schema), "");
}

TEST(Formula, ValidateGfRejectsUnknownRelation) {
  EXPECT_NE(ValidateGf(*Atom("Nope", {"x"}), BinarySchema()), "");
}

TEST(Formula, ValidateGfRejectsArityMismatch) {
  EXPECT_NE(ValidateGf(*Atom("R", {"x"}), BinarySchema()), "");
}

// ---------------------------------------------------------------------------
// Evaluation.
// ---------------------------------------------------------------------------

core::Database SmallDb() {
  core::Database db(BinarySchema());
  db.SetRelation("R", MakeRel(2, {{1, 2}, {2, 3}, {3, 3}}));
  db.SetRelation("S", MakeRel(1, {{2}}));
  return db;
}

TEST(Eval, AtomsAndComparisons) {
  const auto db = SmallDb();
  EXPECT_TRUE(Holds(*Atom("R", {"x", "y"}), db, {{"x", 1}, {"y", 2}}));
  EXPECT_FALSE(Holds(*Atom("R", {"x", "y"}), db, {{"x", 2}, {"y", 1}}));
  EXPECT_TRUE(Holds(*VarLt("x", "y"), db, {{"x", 1}, {"y", 2}}));
  EXPECT_FALSE(Holds(*VarEq("x", "y"), db, {{"x", 1}, {"y", 2}}));
  EXPECT_TRUE(Holds(*ConstCmp("x", Cmp::kGt, 0), db, {{"x", 1}}));
}

TEST(Eval, RepeatedVariableInAtom) {
  const auto db = SmallDb();
  // R(x, x) only holds for (3,3).
  EXPECT_TRUE(Holds(*Atom("R", {"x", "x"}), db, {{"x", 3}}));
  EXPECT_FALSE(Holds(*Atom("R", {"x", "x"}), db, {{"x", 2}}));
}

TEST(Eval, BooleanConnectives) {
  const auto db = SmallDb();
  Assignment a = {{"x", 1}, {"y", 2}};
  auto r = Atom("R", {"x", "y"});
  EXPECT_FALSE(Holds(*Not(r), db, a));
  EXPECT_TRUE(Holds(*Or(Not(r), r), db, a));
  EXPECT_TRUE(Holds(*Implies(Not(r), r), db, a));
  EXPECT_TRUE(Holds(*Iff(r, r), db, a));
  EXPECT_FALSE(Holds(*Iff(r, Not(r)), db, a));
}

TEST(Eval, GuardedExistsRangesOverGuard) {
  const auto db = SmallDb();
  // ∃y (R(x,y) ∧ S(y)): only x=1 has a successor in S.
  auto f = Exists(Atom("R", {"x", "y"}), {"y"}, Atom("S", {"y"}));
  EXPECT_TRUE(Holds(*f, db, {{"x", 1}}));
  EXPECT_FALSE(Holds(*f, db, {{"x", 2}}));
}

TEST(Eval, ExistsWithRepeatedQuantifiedVariable) {
  const auto db = SmallDb();
  // ∃y R(y,y): witness (3,3).
  auto f = Exists(Atom("R", {"y", "y"}), {"y"}, True());
  EXPECT_TRUE(Holds(*f, db, {}));
}

TEST(Eval, QuantifiedVariableShadowsOuterBinding) {
  const auto db = SmallDb();
  // x bound outside to 999; the inner ∃x R(x,y) rebinds it.
  auto f = Exists(Atom("R", {"x", "y"}), {"x", "y"}, True());
  EXPECT_TRUE(Holds(*f, db, {{"x", 999}}));
}

TEST(Eval, Example7OnBeerDatabases) {
  const auto beer = witness::MakeBeerExample();
  auto f = witness::LousyBarDrinkersGf();
  // Nobody visits a lousy bar in either database (every served beer is
  // liked by someone).
  for (const auto* db : {&beer.a, &beer.b}) {
    for (core::Value d : db->ActiveDomain()) {
      EXPECT_FALSE(Holds(*f, *db, {{"x", d}}));
    }
  }
}

TEST(Eval, EvaluateCStoredRestrictsToCStoredTuples) {
  const auto db = SmallDb();
  // x = x over one variable: all C-stored 1-tuples = active domain values.
  auto f = VarEq("x", "x");
  const auto out = EvaluateCStored(*f, db, {"x"}, {});
  EXPECT_EQ(out, MakeRel(1, {{1}, {2}, {3}}));
}

TEST(Eval, EvaluateCStoredPairsNeedAGuard) {
  const auto db = SmallDb();
  auto f = VarEq("x", "x");
  const auto out = EvaluateCStored(*f, db, {"x", "y"}, {});
  // Only pairs inside one guarded set: {1,2},{2,3},{3},{2} ⇒ e.g. (1,3) absent.
  EXPECT_TRUE(out.Contains(core::Tuple{1, 2}));
  EXPECT_TRUE(out.Contains(core::Tuple{3, 3}));
  EXPECT_FALSE(out.Contains(core::Tuple{1, 3}));
}

TEST(Eval, EvaluateOverValuesIsExhaustive) {
  const auto db = SmallDb();
  auto f = Atom("R", {"x", "y"});
  const auto out = EvaluateOverValues(*f, db, {"x", "y"}, {1, 2, 3});
  EXPECT_EQ(out, MakeRel(2, {{1, 2}, {2, 3}, {3, 3}}));
}

// ---------------------------------------------------------------------------
// C-stored universe.
// ---------------------------------------------------------------------------

TEST(Universe, MatchesDefinitionFour) {
  const auto db = SmallDb();
  const core::ConstantSet constants = {9};
  for (std::size_t k : {0u, 1u, 2u}) {
    auto universe = CStoredUniverse(k, db.schema(), constants);
    const auto result = ra::Eval(universe, db);
    // Compare against direct enumeration via Database::IsCStored.
    std::vector<core::Value> pool = db.ActiveDomain();
    pool.insert(pool.end(), constants.begin(), constants.end());
    std::sort(pool.begin(), pool.end());
    core::Relation expected(k);
    if (k == 0) {
      expected.Add(core::Tuple{});
    } else {
      std::vector<std::size_t> idx(k, 0);
      core::Tuple t(k);
      for (;;) {
        for (std::size_t p = 0; p < k; ++p) t[p] = pool[idx[p]];
        if (db.IsCStored(t, constants)) expected.Add(t);
        std::size_t p = 0;
        while (p < k && ++idx[p] == pool.size()) {
          idx[p] = 0;
          ++p;
        }
        if (p == k) break;
      }
    }
    EXPECT_EQ(result, expected) << "k = " << k;
  }
}

TEST(Universe, EmptyDatabaseHasEmptyUniverse) {
  core::Database db(BinarySchema());
  auto universe = CStoredUniverse(1, db.schema(), {5});
  EXPECT_TRUE(ra::Eval(universe, db).empty());
}

// ---------------------------------------------------------------------------
// Theorem 8, converse: GF → SA=.
// ---------------------------------------------------------------------------

void ExpectGfToSaAgree(const FormulaPtr& f, const std::vector<std::string>& vars,
                       const core::Schema& schema, std::uint64_t seeds = 4) {
  ASSERT_EQ(ValidateGf(*f, schema), "");
  auto expr = GfToSaEq(*f, vars, schema);
  EXPECT_TRUE(ra::IsSaEq(*expr));
  const core::ConstantSet constants = f->Constants();
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const auto db = RandomDatabase(schema, 12, 5, seed);
    const auto via_sa = ra::Eval(expr, db);
    const auto via_gf = EvaluateCStored(*f, db, vars, constants);
    EXPECT_EQ(via_sa, via_gf) << f->ToString() << " seed " << seed;
  }
}

TEST(GfToSa, RelationAtom) {
  ExpectGfToSaAgree(Atom("R", {"x", "y"}), {"x", "y"}, BinarySchema());
}

TEST(GfToSa, AtomWithRepeatedVariable) {
  ExpectGfToSaAgree(Atom("R", {"x", "x"}), {"x"}, BinarySchema());
}

TEST(GfToSa, VariableComparisons) {
  ExpectGfToSaAgree(VarEq("x", "y"), {"x", "y"}, BinarySchema());
  ExpectGfToSaAgree(VarLt("x", "y"), {"x", "y"}, BinarySchema());
  ExpectGfToSaAgree(VarCmp("x", Cmp::kNeq, "y"), {"x", "y"}, BinarySchema());
  ExpectGfToSaAgree(VarCmp("x", Cmp::kGt, "y"), {"x", "y"}, BinarySchema());
}

TEST(GfToSa, ConstantComparisons) {
  ExpectGfToSaAgree(ConstCmp("x", Cmp::kEq, 3), {"x"}, BinarySchema());
  ExpectGfToSaAgree(ConstCmp("x", Cmp::kLt, 3), {"x"}, BinarySchema());
  ExpectGfToSaAgree(ConstCmp("x", Cmp::kGt, 3), {"x"}, BinarySchema());
  ExpectGfToSaAgree(ConstCmp("x", Cmp::kNeq, 3), {"x"}, BinarySchema());
}

TEST(GfToSa, BooleanConnectives) {
  auto r = Atom("R", {"x", "y"});
  ExpectGfToSaAgree(Not(r), {"x", "y"}, BinarySchema());
  ExpectGfToSaAgree(And(r, VarLt("x", "y")), {"x", "y"}, BinarySchema());
  ExpectGfToSaAgree(Or(r, VarEq("x", "y")), {"x", "y"}, BinarySchema());
  ExpectGfToSaAgree(Implies(r, VarLt("x", "y")), {"x", "y"}, BinarySchema());
  ExpectGfToSaAgree(Iff(r, VarEq("x", "y")), {"x", "y"}, BinarySchema());
}

TEST(GfToSa, GuardedExists) {
  auto f = Exists(Atom("R", {"x", "y"}), {"y"}, Atom("S", {"y"}));
  ExpectGfToSaAgree(f, {"x"}, BinarySchema());
}

TEST(GfToSa, NestedExistsWithNegation) {
  // x visits some R-successor y that has no S-membership.
  auto f = Exists(Atom("R", {"x", "y"}), {"y"}, Not(Atom("S", {"y"})));
  ExpectGfToSaAgree(f, {"x"}, BinarySchema());
}

TEST(GfToSa, LousyBarsFormulaMatchesSaExpression) {
  core::Schema schema;
  schema.AddRelation("Likes", 2);
  schema.AddRelation("Serves", 2);
  schema.AddRelation("Visits", 2);
  auto formula = witness::LousyBarDrinkersGf();
  auto translated = GfToSaEq(*formula, {"x"}, schema);
  auto hand_written = witness::LousyBarDrinkersSa();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto db = RandomDatabase(schema, 15, 6, seed);
    // Example 3 (SA) and Example 7 (GF) diverge on bars that serve
    // nothing: the GF formula calls them (vacuously) lousy while the SA
    // expression only ranges over π₁(Serves). Make every visited bar serve
    // something so the two readings coincide, as in the paper's data.
    core::Relation serves = db.relation("Serves");
    const auto& visits = db.relation("Visits");
    for (std::size_t i = 0; i < visits.size(); ++i) {
      serves.Add({visits.tuple(i)[1], visits.tuple(i)[1] + 100});
    }
    db.SetRelation("Serves", std::move(serves));
    EXPECT_EQ(ra::Eval(translated, db), ra::Eval(hand_written, db))
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Theorem 8, forward: SA= → GF.
// ---------------------------------------------------------------------------

void ExpectSaToGfAgree(const ra::ExprPtr& expr, const core::Schema& schema,
                       std::uint64_t seeds = 4) {
  std::vector<std::string> vars;
  for (std::size_t i = 0; i < expr->arity(); ++i) {
    vars.push_back("x" + std::to_string(i + 1));
  }
  auto formula = SaEqToGf(expr, vars, schema);
  ASSERT_EQ(ValidateGf(*formula, schema), "") << formula->ToString();
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const auto db = RandomDatabase(schema, 10, 5, seed);
    // The theorem claims equality over ALL tuples; check over the active
    // domain plus constants plus fresh values.
    std::vector<core::Value> pool = db.ActiveDomain();
    for (core::Value c : ra::CollectConstants(*expr)) pool.push_back(c);
    pool.push_back(97);
    pool.push_back(-5);
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    const auto via_gf = EvaluateOverValues(*formula, db, vars, pool);
    const auto via_sa = ra::Eval(expr, db);
    EXPECT_EQ(via_gf, via_sa) << expr->ToString() << " seed " << seed;
  }
}

TEST(SaToGf, BaseRelation) { ExpectSaToGfAgree(ra::Rel("R", 2), BinarySchema()); }

TEST(SaToGf, UnionAndDifference) {
  auto r = ra::Rel("R", 2);
  ExpectSaToGfAgree(ra::Union(r, r), BinarySchema());
  ExpectSaToGfAgree(ra::Diff(r, ra::SelectEq(r, 1, 2)), BinarySchema());
}

TEST(SaToGf, Selections) {
  ExpectSaToGfAgree(ra::SelectEq(ra::Rel("R", 2), 1, 2), BinarySchema());
  ExpectSaToGfAgree(ra::SelectLt(ra::Rel("R", 2), 1, 2), BinarySchema());
}

TEST(SaToGf, ConstTag) {
  ExpectSaToGfAgree(ra::Tag(ra::Rel("S", 1), 3), BinarySchema());
}

TEST(SaToGf, SelectConstComposite) {
  ExpectSaToGfAgree(ra::SelectConst(ra::Rel("R", 2), 1, 3), BinarySchema());
}

TEST(SaToGf, Projection) {
  ExpectSaToGfAgree(ra::Project(ra::Rel("R", 2), {2}), BinarySchema());
  ExpectSaToGfAgree(ra::Project(ra::Rel("R", 2), {2, 1}), BinarySchema());
  ExpectSaToGfAgree(ra::Project(ra::Rel("R", 2), {1, 1}), BinarySchema());
}

TEST(SaToGf, SemiJoin) {
  auto e = ra::SemiJoin(ra::Rel("R", 2), ra::Rel("S", 1), {{2, Cmp::kEq, 1}});
  ExpectSaToGfAgree(e, BinarySchema());
}

TEST(SaToGf, SemiJoinWithEmptyCondition) {
  auto e = ra::SemiJoin(ra::Rel("R", 2), ra::Rel("S", 1), {});
  ExpectSaToGfAgree(e, BinarySchema());
}

TEST(SaToGf, LousyBarsExpression) {
  core::Schema schema;
  schema.AddRelation("Likes", 2);
  schema.AddRelation("Serves", 2);
  schema.AddRelation("Visits", 2);
  ExpectSaToGfAgree(witness::LousyBarDrinkersSa(), schema, 3);
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

TEST(RoundTrip, GfToSaToGf) {
  const auto schema = BinarySchema();
  auto f = Exists(Atom("R", {"x", "y"}), {"y"}, Not(Atom("S", {"y"})));
  auto expr = GfToSaEq(*f, {"x"}, schema);
  auto back = SaEqToGf(expr, {"x"}, schema);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto db = RandomDatabase(schema, 10, 5, seed);
    const auto original = EvaluateCStored(*f, db, {"x"}, f->Constants());
    const auto round_tripped = EvaluateCStored(*back, db, {"x"}, f->Constants());
    EXPECT_EQ(original, round_tripped) << "seed " << seed;
  }
}

TEST(RoundTrip, RandomSaExpressionsSurviveBothTranslations) {
  const auto schema = BinarySchema();
  setalg::testing::RandomSaEqGenerator generator(schema, {3}, 99);
  for (int trial = 0; trial < 10; ++trial) {
    auto expr = generator.Generate(1, 2);
    std::vector<std::string> vars = {"v1"};
    auto formula = SaEqToGf(expr, vars, schema);
    ASSERT_EQ(ValidateGf(*formula, schema), "");
    const auto db = RandomDatabase(schema, 8, 4, trial + 1);
    const core::ConstantSet constants = ra::CollectConstants(*expr);
    // Forward translation: φ_E selects exactly E(D).
    std::vector<core::Value> pool = db.ActiveDomain();
    pool.insert(pool.end(), constants.begin(), constants.end());
    pool.push_back(55);
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    EXPECT_EQ(EvaluateOverValues(*formula, db, vars, pool), ra::Eval(expr, db))
        << expr->ToString();
  }
}

}  // namespace
}  // namespace setalg::gf
