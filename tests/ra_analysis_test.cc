#include <gtest/gtest.h>

#include "ra/analysis.h"
#include "ra/eval.h"
#include "ra/expr.h"
#include "ra/growth.h"
#include "ra/rewrite.h"
#include "test_util.h"
#include "workload/generators.h"

namespace setalg::ra {
namespace {

using setalg::testing::MakeRel;
using setalg::testing::RandomDatabase;

// ---------------------------------------------------------------------------
// Definition 20 (constrained / unconstrained positions) — Example 21.
// ---------------------------------------------------------------------------

TEST(Analysis, Example21ConstrainedSets) {
  // E = R ⋈_{3=1} S with R, S ternary.
  auto e = Join(Rel("R", 3), Rel("S", 3), {{3, Cmp::kEq, 1}});
  const auto sets = ComputeConstrainedSets(*e);
  EXPECT_EQ(sets.constrained1, (std::vector<std::size_t>{3}));
  EXPECT_EQ(sets.unc1, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(sets.constrained2, (std::vector<std::size_t>{1}));
  EXPECT_EQ(sets.unc2, (std::vector<std::size_t>{2, 3}));
}

TEST(Analysis, OrderAtomsDoNotConstrain) {
  auto e = Join(Rel("R", 3), Rel("S", 3),
                {{3, Cmp::kEq, 1}, {1, Cmp::kLt, 2}, {2, Cmp::kNeq, 3}});
  const auto sets = ComputeConstrainedSets(*e);
  EXPECT_EQ(sets.constrained1, (std::vector<std::size_t>{3}));
  EXPECT_EQ(sets.constrained2, (std::vector<std::size_t>{1}));
}

TEST(Analysis, EmptyThetaLeavesAllUnconstrained) {
  auto e = Product(Rel("R", 3), Rel("S", 3));
  const auto sets = ComputeConstrainedSets(*e);
  EXPECT_TRUE(sets.constrained1.empty());
  EXPECT_EQ(sets.unc1.size(), 3u);
  EXPECT_EQ(sets.unc2.size(), 3u);
}

// ---------------------------------------------------------------------------
// Definition 22 (free values) — Example 23.
// ---------------------------------------------------------------------------

TEST(Analysis, Example23FreeValues) {
  // E = σ_{2='2'}(R) ⋈_{3=1} σ_{3='5'}(S); C = {2, 5}.
  auto e1 = SelectConst(Rel("R", 3), 2, 2);
  auto e2 = SelectConst(Rel("S", 3), 3, 5);
  auto e = Join(e1, e2, {{3, Cmp::kEq, 1}});
  const core::ConstantSet c = CollectConstants(*e);
  ASSERT_EQ(c, (core::ConstantSet{2, 5}));

  EXPECT_EQ(FreeValues(*e, 1, core::Tuple{1, 2, 3}, c),
            (std::vector<core::Value>{1}));
  EXPECT_EQ(FreeValues(*e, 1, core::Tuple{4, 6, 3}, c),
            (std::vector<core::Value>{6}));
  EXPECT_EQ(FreeValues(*e, 2, core::Tuple{3, 5, 6}, c),
            (std::vector<core::Value>{6}));
  EXPECT_TRUE(FreeValues(*e, 2, core::Tuple{1, 1, 1}, c).empty());
}

TEST(Analysis, FreeValuesWithoutConstants) {
  auto e = Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  // Position 2 constrained; value 7 bound, 1 free.
  EXPECT_EQ(FreeValues(*e, 1, core::Tuple{1, 7}, {}),
            (std::vector<core::Value>{1}));
  // Repeated bound value is removed everywhere it occurs.
  EXPECT_TRUE(FreeValues(*e, 1, core::Tuple{7, 7}, {}).empty());
}

// ---------------------------------------------------------------------------
// Constant-column analysis.
// ---------------------------------------------------------------------------

TEST(Analysis, ConstantColumnsFromTag) {
  auto e = Tag(Rel("R", 2), 5);
  const auto columns = ConstantColumns(*e);
  ASSERT_EQ(columns.size(), 1u);
  EXPECT_EQ(columns.at(3), 5);
}

TEST(Analysis, ConstantColumnsThroughProjection) {
  auto e = Project(Tag(Rel("R", 2), 5), {3, 1});
  const auto columns = ConstantColumns(*e);
  ASSERT_EQ(columns.size(), 1u);
  EXPECT_EQ(columns.at(1), 5);
}

TEST(Analysis, ConstantColumnsPropagateThroughSelectionEq) {
  auto e = SelectEq(Tag(Rel("R", 2), 5), 1, 3);
  const auto columns = ConstantColumns(*e);
  EXPECT_EQ(columns.at(1), 5);
  EXPECT_EQ(columns.at(3), 5);
}

TEST(Analysis, ConstantColumnsUnionIntersects) {
  auto left = Tag(Rel("R", 2), 5);
  auto right = Tag(Rel("R", 2), 6);
  EXPECT_TRUE(ConstantColumns(*Union(left, right)).empty());
  auto same = Union(Tag(Rel("R", 2), 5), Tag(Rel("R", 2), 5));
  EXPECT_EQ(ConstantColumns(*same).at(3), 5);
}

TEST(Analysis, ConstantColumnsJoinShiftsRightSide) {
  auto e = Join(Rel("R", 2), Tag(Rel("S", 1), 9), {});
  const auto columns = ConstantColumns(*e);
  ASSERT_EQ(columns.size(), 1u);
  EXPECT_EQ(columns.at(4), 9);
}

TEST(Analysis, ConstantColumnsPropagateAcrossJoinEquality) {
  auto e = Join(Tag(Rel("R", 2), 5), Rel("S", 1), {{3, Cmp::kEq, 1}});
  const auto columns = ConstantColumns(*e);
  EXPECT_EQ(columns.at(3), 5);
  EXPECT_EQ(columns.at(4), 5);  // Right column forced equal to the tag.
}

// ---------------------------------------------------------------------------
// SemiJoinToJoin embedding.
// ---------------------------------------------------------------------------

TEST(Rewrite, SemiJoinToJoinIsEquivalent) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  auto semi = SemiJoin(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  auto joined = SemiJoinToJoin(semi);
  EXPECT_TRUE(IsRa(*joined));
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto db = RandomDatabase(schema, 30, 10, seed);
    EXPECT_EQ(Eval(semi, db), Eval(joined, db)) << "seed " << seed;
  }
}

TEST(Rewrite, SemiJoinToJoinOrderAtoms) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  auto semi = SemiJoin(Rel("R", 2), Rel("S", 1), {{2, Cmp::kLt, 1}});
  auto joined = SemiJoinToJoin(semi);
  EXPECT_TRUE(IsRa(*joined));
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto db = RandomDatabase(schema, 30, 10, seed);
    EXPECT_EQ(Eval(semi, db), Eval(joined, db)) << "seed " << seed;
  }
}

TEST(Rewrite, SemiJoinToJoinEqualityEmbeddingIsLinear) {
  // For equality semijoins the embedding keeps intermediates linear:
  // the right side is projected to the joined columns first.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  auto semi = SemiJoin(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  auto joined = SemiJoinToJoin(semi);
  const auto db = RandomDatabase(schema, 200, 5, 3);
  EvalStats stats;
  Eval(joined, db, &stats);
  // No intermediate exceeds |R| + |S|.
  EXPECT_LE(stats.max_intermediate, db.size());
}

// ---------------------------------------------------------------------------
// RewriteRaToSaEq (Theorem 18 constructive rewriter).
// ---------------------------------------------------------------------------

core::Schema DivisionSchema() {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  return schema;
}

void ExpectRewriteEquivalent(const ExprPtr& e, const core::Schema& schema) {
  auto rewritten = RewriteRaToSaEq(e);
  ASSERT_TRUE(rewritten.has_value()) << e->ToString();
  EXPECT_TRUE(IsSaEq(**rewritten));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto db = RandomDatabase(schema, 40, 8, seed);
    EXPECT_EQ(Eval(e, db), Eval(*rewritten, db))
        << e->ToString() << " vs " << (*rewritten)->ToString() << " seed " << seed;
  }
}

TEST(Rewrite, EquiJoinWithFullyConstrainedRightSide) {
  // R ⋈_{2=1} π₁(S): the right side is a single constrained column.
  auto e = Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  ExpectRewriteEquivalent(e, DivisionSchema());
}

TEST(Rewrite, EquiJoinWithFullyConstrainedLeftSide) {
  auto e = Join(Rel("S", 1), Rel("R", 2), {{1, Cmp::kEq, 2}});
  ExpectRewriteEquivalent(e, DivisionSchema());
}

TEST(Rewrite, JoinWithResidualOrderAtoms) {
  // Right side fully constrained by equality; a second < atom is residual.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("T", 2);
  auto e = Join(Rel("R", 2), Project(Rel("T", 2), {1}),
                {{2, Cmp::kEq, 1}, {1, Cmp::kLt, 1}});
  auto rewritten = RewriteRaToSaEq(e);
  ASSERT_TRUE(rewritten.has_value());
  EXPECT_TRUE(IsSaEq(**rewritten));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto db = RandomDatabase(schema, 40, 8, seed);
    EXPECT_EQ(Eval(e, db), Eval(*rewritten, db)) << "seed " << seed;
  }
}

TEST(Rewrite, JoinWithNeqResidual) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("T", 2);
  auto e = Join(Rel("R", 2), Project(Rel("T", 2), {2}),
                {{2, Cmp::kEq, 1}, {1, Cmp::kNeq, 1}});
  auto rewritten = RewriteRaToSaEq(e);
  ASSERT_TRUE(rewritten.has_value());
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto db = RandomDatabase(schema, 40, 8, seed);
    EXPECT_EQ(Eval(e, db), Eval(*rewritten, db)) << "seed " << seed;
  }
}

TEST(Rewrite, ConstantTaggedRightSideIsDetermined) {
  // R × τ_c(π_{}(S)): right side is one constant column — still linear.
  auto right = Tag(Project(Rel("S", 1), {}), 42);
  auto e = Join(Rel("R", 2), right, {});
  ExpectRewriteEquivalent(e, DivisionSchema());
}

TEST(Rewrite, ConstantComparisonAgainstTaggedColumn) {
  // Residual predicate against a constant right column.
  auto right = Tag(Project(Rel("S", 1), {}), 4);
  auto e = Join(Rel("R", 2), right, {{1, Cmp::kLt, 1}});
  ExpectRewriteEquivalent(e, DivisionSchema());
}

TEST(Rewrite, BooleanOperatorsPassThrough) {
  auto join = Join(Rel("R", 2), Rel("S", 1), {{2, Cmp::kEq, 1}});
  auto e = Diff(Union(join, join), join);
  ExpectRewriteEquivalent(e, DivisionSchema());
}

TEST(Rewrite, ClassicDivisionIsNotSyntacticallyLinear) {
  // π_A(R) − π_A((π_A(R) × S) − R): the product has no constrained side.
  auto candidates = Project(Rel("R", 2), {1});
  auto product = Product(candidates, Rel("S", 1));
  auto division = Diff(candidates, Project(Diff(product, Rel("R", 2)), {1}));
  EXPECT_FALSE(RewriteRaToSaEq(division).has_value());
}

TEST(Rewrite, PureProductFails) {
  EXPECT_FALSE(RewriteRaToSaEq(Product(Rel("R", 2), Rel("S", 1))).has_value());
}

TEST(Rewrite, PureInequalityJoinFails) {
  auto e = Join(Rel("R", 2), Rel("S", 1), {{1, Cmp::kLt, 1}});
  EXPECT_FALSE(RewriteRaToSaEq(e).has_value());
}

// ---------------------------------------------------------------------------
// Growth measurement (Theorem 17 empirically).
// ---------------------------------------------------------------------------

TEST(Growth, GeometricSizesCoverRange) {
  const auto sizes = GeometricSizes(100, 1600, 5);
  EXPECT_EQ(sizes.front(), 100u);
  EXPECT_EQ(sizes.back(), 1600u);
  for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(Growth, ClassifiesLinearExpression) {
  auto e = Project(SemiJoinToJoin(SemiJoin(Rel("R", 2), Rel("S", 1),
                                           {{2, Cmp::kEq, 1}})),
                   {1});
  const auto report = MeasureGrowth(
      e, [](std::size_t n) { return workload::DivisionFamilyDatabase(n, 4, 7); },
      GeometricSizes(200, 3200, 5));
  EXPECT_EQ(report.classification, GrowthClass::kLinear)
      << "exponent " << report.exponent();
}

TEST(Growth, ClassifiesQuadraticExpression) {
  auto candidates = Project(Rel("R", 2), {1});
  auto e = Product(candidates, Rel("S", 1));
  // Family with |D| = Θ(n): R uniform with n tuples, S with n/4 values;
  // the product then grows ~ n²/8 while the database grows ~ 5n/4.
  auto family = [](std::size_t n) {
    core::Schema schema;
    schema.AddRelation("R", 2);
    schema.AddRelation("S", 1);
    core::Database db(schema);
    db.SetRelation("R", workload::UniformBinaryRelation(n, n, 7));
    core::Relation s(1);
    for (std::size_t v = 0; v < n / 4; ++v) {
      s.Add({static_cast<core::Value>(2 * n + v)});
    }
    db.SetRelation("S", std::move(s));
    return db;
  };
  const auto report = MeasureGrowth(e, family, GeometricSizes(200, 3200, 5));
  EXPECT_EQ(report.classification, GrowthClass::kQuadratic)
      << "exponent " << report.exponent();
}

TEST(Growth, SamplesRecordDatabaseAndOutputSizes) {
  auto e = Rel("R", 2);
  const auto report = MeasureGrowth(
      e, [](std::size_t n) { return workload::SparseBinaryDatabase(n, 3); },
      {100, 200, 400});
  ASSERT_EQ(report.samples.size(), 3u);
  for (const auto& sample : report.samples) {
    EXPECT_GT(sample.db_size, 0u);
    EXPECT_EQ(sample.output_size, sample.db_size);  // E = R.
    EXPECT_EQ(sample.max_intermediate, sample.db_size);
  }
  EXPECT_EQ(report.classification, GrowthClass::kLinear);
}

}  // namespace
}  // namespace setalg::ra
