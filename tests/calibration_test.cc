// Tests for the self-tuning optimizer loop: the CalibrationStore's
// update rules (engine/calibration.h), the skew-aware histogram paths of
// the calibrated CostModel, and the end-to-end Engine feedback that makes
// repeated runs correct their own estimates.
#include <gtest/gtest.h>

#include <memory>

#include "engine/calibration.h"
#include "engine/cost.h"
#include "engine/engine.h"
#include "setjoin/division.h"
#include "setjoin/setjoin.h"
#include "test_util.h"
#include "workload/generators.h"

namespace setalg::engine {
namespace {

TEST(CalibrationStore, NeutralUntilWarmThenCorrects) {
  CalibrationStore store;
  const auto min_obs = store.params().min_observations;
  // Cold key: neutral factor, fallback selectivity.
  EXPECT_DOUBLE_EQ(store.OutputFactor("out:division"), 1.0);
  EXPECT_DOUBLE_EQ(store.Selectivity("sel:semijoin", 0.5), 0.5);

  // The model consistently estimates 4x the actual output.
  for (std::uint64_t i = 0; i < min_obs; ++i) {
    EXPECT_DOUBLE_EQ(store.OutputFactor("out:division"), 1.0)
        << "factor must stay neutral below min_observations";
    store.ObserveOutput("out:division", 400.0, 100.0);
  }
  const double warm = store.OutputFactor("out:division");
  EXPECT_LT(warm, 1.0);
  EXPECT_GT(warm, 1.0 / store.params().max_factor);
  EXPECT_EQ(store.observations(), min_obs);
}

TEST(CalibrationStore, ConvergesWhenEstimatesCarryTheAppliedFactor) {
  // The real loop: each round's estimate already includes the current
  // factor, so the observed residual shrinks as the factor approaches
  // the truth. The multiplicative-residual update must converge to
  // actual/base instead of oscillating.
  CalibrationStore store;
  const double base_estimate = 1000.0;
  const double actual = 125.0;
  for (int round = 0; round < 64; ++round) {
    const double applied = base_estimate * store.OutputFactor("out:join");
    store.ObserveOutput("out:join", applied, actual);
  }
  EXPECT_NEAR(store.OutputFactor("out:join"), actual / base_estimate,
              0.01 * (actual / base_estimate));
}

TEST(CalibrationStore, FactorsClampAndZeroActualsAreSafe) {
  CalibrationStore store;
  for (int i = 0; i < 200; ++i) {
    store.ObserveOutput("out:division", 1.0, 1e9);  // Wildly underestimated.
    store.ObserveOutput("out:division=", 1e9, 0.0);  // Actual empty.
  }
  EXPECT_DOUBLE_EQ(store.OutputFactor("out:division"), store.params().max_factor);
  EXPECT_DOUBLE_EQ(store.OutputFactor("out:division="),
                   1.0 / store.params().max_factor);
}

TEST(CalibrationStore, SelectivityEwmaTracksObservedRatios) {
  CalibrationStore store;
  // First observation seeds the value directly; later ones smooth.
  for (std::uint64_t i = 0; i < store.params().min_observations; ++i) {
    store.ObserveSelectivity("sel:select:=", 1000.0, 20.0);
  }
  EXPECT_NEAR(store.Selectivity("sel:select:=", 0.1), 0.02, 1e-9);
  // An empty input is not an observation.
  store.ObserveSelectivity("sel:select:=", 0.0, 0.0);
  EXPECT_NEAR(store.Selectivity("sel:select:=", 0.1), 0.02, 1e-9);
  EXPECT_NE(store.Summary().find("sel:select:="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Skew-aware containment pricing (the histogram path of the tentpole).
// ---------------------------------------------------------------------------

TEST(CostModel, SkewAwarePostingLengthFlipsTheContainmentChoice) {
  // Uniform assumption: postings average nr/domain = 20 elements, which
  // makes the inverted index the cheapest kernel. The histogram knows a
  // heavy hitter dominates (a random probe meets ~5000 rows), which the
  // uncalibrated model cannot see.
  ExprEstimate r;
  r.cardinality = 200000.0;
  r.key_distinct = 2000.0;
  r.elem_distinct = 10000.0;
  r.avg_group = 100.0;
  r.elem_expected_freq = 5000.0;
  ExprEstimate s;
  s.cardinality = 20000.0;
  s.key_distinct = 2000.0;
  s.elem_distinct = 10000.0;
  s.avg_group = 10.0;

  const CostModel uncalibrated(nullptr);
  const auto before = uncalibrated.ChooseContainment(r, s);
  EXPECT_EQ(before.algorithm, setjoin::ContainmentAlgorithm::kInvertedIndex);

  CalibrationStore store;
  const CostModel calibrated(nullptr, &store);
  const auto after = calibrated.ChooseContainment(r, s);
  EXPECT_NE(after.algorithm, setjoin::ContainmentAlgorithm::kInvertedIndex)
      << "a ~5000-row expected posting must price the inverted index out";
  const auto inverted = calibrated.EstimateContainment(
      setjoin::ContainmentAlgorithm::kInvertedIndex, r, s);
  const auto inverted_uniform = uncalibrated.EstimateContainment(
      setjoin::ContainmentAlgorithm::kInvertedIndex, r, s);
  EXPECT_GT(inverted.cost, 10.0 * inverted_uniform.cost);
}

TEST(CostModel, NullCalibrationIsBitIdenticalToTheFixedModel) {
  ExprEstimate r;
  r.cardinality = 50000.0;
  r.key_distinct = 500.0;
  r.elem_distinct = 900.0;
  r.avg_group = 100.0;
  r.elem_expected_freq = 4000.0;  // Present but must be ignored.
  ExprEstimate s = r;
  const CostModel model(nullptr);
  for (const auto algorithm : {setjoin::ContainmentAlgorithm::kNestedLoop,
                               setjoin::ContainmentAlgorithm::kSignatureNestedLoop,
                               setjoin::ContainmentAlgorithm::kPartitioned,
                               setjoin::ContainmentAlgorithm::kInvertedIndex}) {
    const auto est = model.EstimateContainment(algorithm, r, s);
    ExprEstimate plain_r = r;
    plain_r.elem_expected_freq = 0.0;
    const auto plain = model.EstimateContainment(algorithm, plain_r, s);
    EXPECT_DOUBLE_EQ(est.cost, plain.cost);
    EXPECT_DOUBLE_EQ(est.output_size, plain.output_size);
  }
}

// ---------------------------------------------------------------------------
// The end-to-end feedback loop.
// ---------------------------------------------------------------------------

TEST(Engine, RepeatedRunsFeedTheStoreAndShrinkTheDivisionEstimate) {
  // 5% of groups divide, but the fixed model always guesses 25%: the
  // learned output factor must move below 1 once warm.
  workload::DivisionConfig config;
  config.num_groups = 200;
  config.group_size = 6;
  config.domain_size = 64;
  config.divisor_size = 12;
  config.match_fraction = 0.05;
  config.seed = 11;
  const auto instance = workload::MakeDivisionInstance(config);
  const auto db = setalg::testing::DivisionDb(instance.r, instance.s);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto store = std::make_shared<CalibrationStore>();
  const Engine engine(EngineOptions::CostBased().WithCalibration(store));
  for (int i = 0; i < 8; ++i) {
    auto run = engine.Run(expr, db);
    ASSERT_TRUE(run.ok()) << run.error();
  }
  EXPECT_GT(store->observations(), 0u);
  EXPECT_LT(store->OutputFactor("out:division"), 1.0)
      << store->Summary();
}

TEST(Engine, CalibrationLeavesResultsUnchanged) {
  // Self-tuning may only change plans, never answers: every run must
  // stay bit-identical to the uncalibrated engine's result.
  workload::DivisionConfig config;
  config.num_groups = 120;
  config.group_size = 5;
  config.domain_size = 48;
  config.divisor_size = 10;
  config.match_fraction = 0.3;
  config.seed = 23;
  const auto instance = workload::MakeDivisionInstance(config);
  const auto db = setalg::testing::DivisionDb(instance.r, instance.s);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto run_plain = Engine::Run(expr, db, EngineOptions::CostBased());
  ASSERT_TRUE(run_plain.ok());
  const Engine calibrated(EngineOptions::CostBased().WithCalibration());
  for (int i = 0; i < 6; ++i) {
    auto run = calibrated.Run(expr, db);
    ASSERT_TRUE(run.ok()) << run.error();
    EXPECT_EQ(run->relation, run_plain->relation) << "iteration " << i;
  }
}

TEST(Engine, SharedStoreTunesAcrossEngines) {
  // Two engines sharing one store (the setalgd/session setup): traffic
  // through the first must warm the key the second consults.
  workload::DivisionConfig config;
  config.num_groups = 100;
  config.group_size = 4;
  config.domain_size = 32;
  config.divisor_size = 8;
  config.match_fraction = 0.02;
  config.seed = 5;
  const auto instance = workload::MakeDivisionInstance(config);
  const auto db = setalg::testing::DivisionDb(instance.r, instance.s);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto store = std::make_shared<CalibrationStore>();
  {
    const Engine first(EngineOptions::CostBased().WithCalibration(store));
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(first.Run(expr, db).ok());
  }
  const double learned = store->OutputFactor("out:division");
  EXPECT_LT(learned, 1.0);
  const Engine second(EngineOptions::CostBased().WithCalibration(store));
  auto run = second.Run(expr, db);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->relation,
            setjoin::Divide(instance.r, instance.s,
                            setjoin::DivisionAlgorithm::kHashDivision));
  // The second engine's traffic keeps feeding the same store.
  EXPECT_GT(store->observations(), 8u);
}

TEST(EngineOptions, CalibrationChangesTheFingerprint) {
  const EngineOptions plain = EngineOptions::CostBased();
  const EngineOptions tuned = plain.WithCalibration();
  EXPECT_NE(OptionsFingerprint(plain), OptionsFingerprint(tuned))
      << "calibrated and uncalibrated plans must not share cache entries";
  // Two different stores plan alike: only presence is semantic.
  EXPECT_EQ(OptionsFingerprint(tuned), OptionsFingerprint(plain.WithCalibration()));
}

}  // namespace
}  // namespace setalg::engine
