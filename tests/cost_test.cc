// Tests for cost-based planning: CostBased() parity with Reference() on
// randomized databases, the model's algorithm choices at the paper's
// benchmark shapes (hash division / hash set-join at scale), and the
// estimated-vs-actual instrumentation in PlanStats.
#include <gtest/gtest.h>

#include <string>

#include "engine/cost.h"
#include "engine/engine.h"
#include "ra/eval.h"
#include "ra/expr.h"
#include "ra/rewrite.h"
#include "setjoin/division.h"
#include "stats/stats.h"
#include "test_util.h"
#include "workload/generators.h"

namespace setalg::engine {
namespace {

using core::Relation;
using setalg::testing::MakeRel;

core::Database InstanceDb(const workload::DivisionInstance& instance) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  db.SetRelation("R", instance.r);
  db.SetRelation("S", instance.s);
  return db;
}

// The bench's workload shape at a given n (bench_division.cc::Instance).
workload::DivisionInstance BenchInstance(std::size_t n, std::uint64_t seed = 17) {
  workload::DivisionConfig config;
  config.num_groups = n / 8;
  config.group_size = 8;
  config.domain_size = std::max<std::size_t>(64, n / 4);
  config.divisor_size = std::max<std::size_t>(4, n / 64);
  config.match_fraction = 0.2;
  config.seed = seed;
  return workload::MakeDivisionInstance(config);
}

ExprEstimate EstimateOf(const Relation& relation) {
  return FromStats(stats::ComputeRelationStats(relation));
}

// ---------------------------------------------------------------------------
// Parity: cost-based planning must never change results.
// ---------------------------------------------------------------------------

TEST(CostBased, MatchesReferenceOnRandomizedDivisionInstances) {
  const Engine cost_based(EngineOptions::CostBased());
  const Engine reference(EngineOptions::Reference());
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::DivisionConfig config;
    config.num_groups = 20 + 30 * (seed % 3);
    config.group_size = 2 + seed % 5;
    config.domain_size = 16 + 8 * (seed % 4);
    config.divisor_size = 2 + seed % 6;
    config.match_fraction = 0.3;
    config.seed = seed;
    const auto db = InstanceDb(workload::MakeDivisionInstance(config));
    for (const auto& expr : {setjoin::ClassicDivisionExpr("R", "S"),
                             setjoin::ClassicEqualityDivisionExpr("R", "S")}) {
      auto fast = cost_based.Run(expr, db);
      auto slow = reference.Run(expr, db);
      ASSERT_TRUE(fast.ok()) << fast.error();
      ASSERT_TRUE(slow.ok()) << slow.error();
      EXPECT_EQ(fast->relation, slow->relation) << "seed " << seed;
    }
  }
}

TEST(CostBased, MatchesReferenceOnRandomExpressions) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  schema.AddRelation("T", 2);
  const Engine cost_based(EngineOptions::CostBased());
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    const auto db = setalg::testing::RandomDatabase(schema, 30, 12, seed);
    setalg::testing::RandomSaEqGenerator generator(schema, {1, 2, 3}, seed * 89);
    for (int trial = 0; trial < 10; ++trial) {
      const auto expr = generator.Generate(1 + trial % 2, 3);
      const Relation expected = ra::Eval(expr, db);
      auto run = cost_based.Run(expr, db);
      ASSERT_TRUE(run.ok()) << run.error();
      EXPECT_EQ(run->relation, expected) << expr->ToString();
    }
  }
}

TEST(CostBased, MatchesReferenceOnJoinFormsOfRandomExpressions) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  const Engine cost_based(EngineOptions::CostBased());
  for (std::uint64_t seed = 31; seed <= 34; ++seed) {
    const auto db = setalg::testing::RandomDatabase(schema, 24, 10, seed);
    setalg::testing::RandomSaEqGenerator generator(schema, {1, 2}, seed * 131);
    for (int trial = 0; trial < 8; ++trial) {
      const auto expr = ra::SemiJoinToJoin(generator.Generate(1, 3));
      const Relation expected = ra::Eval(expr, db);
      auto run = cost_based.Run(expr, db);
      ASSERT_TRUE(run.ok()) << run.error();
      EXPECT_EQ(run->relation, expected) << expr->ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Algorithm choices.
// ---------------------------------------------------------------------------

TEST(CostBased, PicksHashDivisionAtBenchScale) {
  // The acceptance shape: at n=16000 the model must route the classic RA
  // expression to hash division (the bench JSON asserts the same).
  const auto db = InstanceDb(BenchInstance(16000));
  const Engine engine(EngineOptions::CostBased());
  auto run = engine.Run(setjoin::ClassicDivisionExpr("R", "S"), db);
  ASSERT_TRUE(run.ok()) << run.error();
  ASSERT_FALSE(run->stats.choices.empty());
  bool found = false;
  for (const auto& choice : run->stats.choices) {
    if (choice.site == "division") {
      EXPECT_EQ(choice.algorithm, "hash-division");
      EXPECT_GT(choice.estimate.cost, 0.0);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no division choice recorded";
}

TEST(CostModel, DivisionFormulasSeparateTheAsymptoticRegimes) {
  const auto instance = BenchInstance(16000);
  const ExprEstimate r = EstimateOf(instance.r);
  const ExprEstimate s = EstimateOf(instance.s);
  ASSERT_TRUE(r.exact);

  const CostModel model(nullptr);
  const auto choice = model.ChooseDivision(r, s, /*equality=*/false);
  EXPECT_EQ(choice.algorithm, setjoin::DivisionAlgorithm::kHashDivision);

  // The g·m-probing algorithms must price far above the single-pass ones
  // at this shape, and the classic plan's intermediate must reflect the
  // Ω(n²) product (Proposition 26).
  const auto nested =
      model.EstimateDivision(setjoin::DivisionAlgorithm::kNestedLoop, r, s, false);
  const auto classic =
      model.EstimateDivision(setjoin::DivisionAlgorithm::kClassicRa, r, s, false);
  EXPECT_GT(nested.cost, 4 * choice.estimate.cost);
  EXPECT_GT(classic.max_intermediate, 10 * choice.estimate.max_intermediate);
}

TEST(CostModel, PicksHashSetJoinsAtBenchScale) {
  workload::SetJoinConfig config;
  config.r_groups = 4000;
  config.s_groups = 4000;
  config.r_group_size = 4;
  config.s_group_size = 4;
  config.domain_size = 12;
  config.seed = 29;
  const auto instance = workload::MakeSetJoinInstance(config);
  const auto equality =
      CostModel(nullptr).ChooseSetEquality(EstimateOf(instance.r), EstimateOf(instance.s));
  EXPECT_EQ(equality.algorithm, setjoin::EqualityJoinAlgorithm::kCanonicalHash);

  workload::SetJoinConfig containment_config;
  containment_config.r_groups = 2000;
  containment_config.s_groups = 2000;
  containment_config.r_group_size = 8;
  containment_config.s_group_size = 4;
  containment_config.domain_size = 1000;
  const auto big = workload::MakeSetJoinInstance(containment_config);
  const auto containment =
      CostModel(nullptr).ChooseContainment(EstimateOf(big.r), EstimateOf(big.s));
  // At scale the counting inverted index must beat the plain nested loop
  // by a wide margin in the model, as it does in the measurements.
  const auto nested = CostModel(nullptr).EstimateContainment(
      setjoin::ContainmentAlgorithm::kNestedLoop, EstimateOf(big.r), EstimateOf(big.s));
  EXPECT_NE(containment.algorithm, setjoin::ContainmentAlgorithm::kNestedLoop);
  EXPECT_GT(nested.cost, 4 * containment.estimate.cost);
}

TEST(CostModel, ParallelismPricingSeparatesTinyFromBenchScaleInputs) {
  const auto instance = BenchInstance(16000);
  const ExprEstimate r = EstimateOf(instance.r);
  const ExprEstimate s = EstimateOf(instance.s);
  const CostModel model(nullptr);
  const auto serial = model.ChooseDivision(r, s, /*equality=*/false).estimate;

  // At bench scale, a 4-wide pool must price the partitioned plan under
  // the serial one; on a tiny input the dispatch overhead must keep the
  // site serial; with one thread the question never arises.
  const auto at_scale = model.ChooseParallelism(
      serial, r.cardinality + s.cardinality, r.key_distinct, 4);
  EXPECT_GT(at_scale.partitions, 1u);
  EXPECT_LT(at_scale.estimate.cost, serial.cost);

  CostEstimate tiny_serial{/*cost=*/200.0, /*output_size=*/10.0,
                           /*max_intermediate=*/10.0};
  EXPECT_EQ(model.ChooseParallelism(tiny_serial, 100.0, 20.0, 4).partitions, 1u);
  EXPECT_EQ(model.ChooseParallelism(serial, r.cardinality, r.key_distinct, 1)
                .partitions,
            1u);

  // More partitions than groups buys only empty tasks: the fan-out is
  // capped by the distinct-key estimate.
  const auto few_keys = model.ChooseParallelism(
      CostEstimate{1e9, 100.0, 100.0}, 1e6, /*key_distinct=*/3.0, 16);
  EXPECT_LE(few_keys.partitions, 3u);
}

TEST(CostBased, RecordsSerialVsPartitionedChoicePerCallSite) {
  // Cost-based planning with a worker pool records a division-execution
  // decision; at bench scale it must be partitioned, and the partitioned
  // run must still match the serial cost-based result.
  const auto db = InstanceDb(BenchInstance(8000));
  EngineOptions parallel = EngineOptions::CostBased();
  parallel.threads = 4;
  const Engine engine(parallel);
  auto run = engine.Run(setjoin::ClassicDivisionExpr("R", "S"), db);
  ASSERT_TRUE(run.ok()) << run.error();
  bool found = false;
  for (const auto& choice : run->stats.choices) {
    if (choice.site == "division-execution") {
      EXPECT_EQ(choice.algorithm, "partitioned[4]");
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no division-execution choice recorded";
  EXPECT_GT(run->stats.partitions, 0u);

  auto serial = Engine(EngineOptions::CostBased())
                    .Run(setjoin::ClassicDivisionExpr("R", "S"), db);
  ASSERT_TRUE(serial.ok()) << serial.error();
  EXPECT_EQ(run->relation, serial->relation);
  EXPECT_EQ(run->stats.max_intermediate, serial->stats.max_intermediate);
}

TEST(CostBased, NoPartitionedChoiceForSemijoinsWithoutAnEqualityAtom) {
  // A pure-inequality semijoin has no co-partitioning key: the operator
  // always runs serial, so the planner must not record (or price) a
  // partitioned execution that can never happen.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  db.SetRelation("R", workload::UniformBinaryRelation(300, 40, 3));
  db.SetRelation("T", workload::UniformBinaryRelation(300, 40, 4));
  EngineOptions parallel = EngineOptions::CostBased();
  parallel.threads = 4;
  const auto expr = ra::SemiJoin(ra::Rel("R", 2), ra::Rel("T", 2),
                                 {{1, ra::Cmp::kLt, 1}});
  auto run = Engine(parallel).Run(expr, db);
  ASSERT_TRUE(run.ok()) << run.error();
  for (const auto& choice : run->stats.choices) {
    EXPECT_NE(choice.site, "semijoin-execution")
        << "recorded a " << choice.algorithm << " decision for a semijoin "
        << "that cannot partition";
  }
  EXPECT_EQ(run->stats.partitions, 0u);
  auto serial = Engine(EngineOptions::CostBased()).Run(expr, db);
  ASSERT_TRUE(serial.ok()) << serial.error();
  EXPECT_EQ(run->relation, serial->relation);
}

TEST(CostModel, SemijoinKernelChoiceDegradesToGenericOnTinyInputs) {
  ExprEstimate tiny;
  tiny.cardinality = 4;
  ExprEstimate big;
  big.cardinality = 100000;
  const std::vector<ra::JoinAtom> eq = {{1, ra::Cmp::kEq, 1}};
  const CostModel model(nullptr);
  EXPECT_EQ(model.ChooseSemijoin(tiny, tiny, eq), SemijoinStrategy::kGeneric);
  EXPECT_EQ(model.ChooseSemijoin(big, big, eq), SemijoinStrategy::kFastKernel);
  EXPECT_EQ(model.ChooseSemijoin(big, big, {}), SemijoinStrategy::kGeneric);
}

// ---------------------------------------------------------------------------
// Estimated-vs-actual instrumentation.
// ---------------------------------------------------------------------------

TEST(CostBased, ScanEstimatesAreExactAndPairedWithActuals) {
  const auto db = InstanceDb(BenchInstance(1000));
  const Engine engine(EngineOptions::CostBased());
  auto run = engine.Run(setjoin::ClassicDivisionExpr("R", "S"), db);
  ASSERT_TRUE(run.ok()) << run.error();
  bool saw_scan = false;
  for (const auto& op : run->stats.ops) {
    ASSERT_TRUE(op.has_estimate) << op.label;
    if (op.label.rfind("scan", 0) == 0) {
      // Scans are backed by real statistics: the prediction is exact.
      EXPECT_DOUBLE_EQ(op.estimated_output, static_cast<double>(op.output_size))
          << op.label;
      saw_scan = true;
    }
  }
  EXPECT_TRUE(saw_scan);
}

TEST(CostBased, SchemaOnlyPlanningFallsBackToDefaults) {
  // Without a database there are no statistics: Plan(expr, schema) must
  // still work, with no estimates and no recorded choices.
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  const Engine engine(EngineOptions::CostBased());
  auto plan = engine.Plan(setjoin::ClassicDivisionExpr("R", "S"), schema);
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_TRUE(plan->choices.empty());
  EXPECT_TRUE(plan->estimates.empty());
  // The division rewrite still fires with the fixed default algorithm.
  ASSERT_FALSE(plan->rewrites.empty());
  EXPECT_NE(plan->rewrites[0].find("hash-division"), std::string::npos);
}

TEST(CostBased, ExplainShowsTheChoice) {
  const auto db = InstanceDb(BenchInstance(2000));
  const Engine engine(EngineOptions::CostBased());
  auto text = engine.Explain(setjoin::ClassicDivisionExpr("R", "S"), db);
  ASSERT_TRUE(text.ok()) << text.error();
  EXPECT_NE(text->find("cost-based: division → hash-division"), std::string::npos)
      << *text;
}

}  // namespace
}  // namespace setalg::engine
