// Tests for the engine:: facade — parity with the legacy ra::Eval
// reference on random expressions, the planner's pattern rewrites
// (division, semijoin reduction), stats fidelity, budget enforcement, and
// hand-built physical plans for the set-join operators.
#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"
#include "ra/eval.h"
#include "ra/expr.h"
#include "ra/rewrite.h"
#include "setjoin/division.h"
#include "setjoin/setjoin.h"
#include "test_util.h"
#include "workload/generators.h"

namespace setalg::engine {
namespace {

using setalg::testing::MakeRel;
using core::Relation;

core::Database SmallDb() {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  db.SetRelation("R", MakeRel(2, {{1, 10}, {2, 20}, {3, 10}}));
  db.SetRelation("S", MakeRel(1, {{10}, {30}}));
  return db;
}

// A division instance whose classic-RA product π₁(R) × S is strictly
// larger than the database, so routing matters.
workload::DivisionInstance QuadraticInstance() {
  workload::DivisionConfig config;
  config.num_groups = 80;
  config.group_size = 4;
  config.domain_size = 64;
  config.divisor_size = 20;
  config.match_fraction = 0.25;
  config.seed = 7;
  return workload::MakeDivisionInstance(config);
}

// ---------------------------------------------------------------------------
// Facade basics.
// ---------------------------------------------------------------------------

TEST(Engine, EvaluatesSimpleExpressions) {
  const auto db = SmallDb();
  auto e = ra::Diff(ra::Rel("S", 1), ra::Project(ra::Rel("R", 2), {2}));
  auto run = Engine::Run(e, db, EngineOptions{});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->relation, MakeRel(1, {{30}}));
}

TEST(Engine, UnknownRelationIsAnErrorNotAnAbort) {
  const auto db = SmallDb();
  auto run = Engine::Run(ra::Rel("Missing", 2), db, EngineOptions{});
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.error().find("Missing"), std::string::npos);
}

TEST(Engine, ArityMismatchIsAnError) {
  const auto db = SmallDb();
  auto run = Engine::Run(ra::Rel("S", 3), db, EngineOptions{});
  EXPECT_FALSE(run.ok());
}

// ---------------------------------------------------------------------------
// Parity with the legacy evaluator on random expressions.
// ---------------------------------------------------------------------------

TEST(Engine, ParityWithEvalOnRandomSaExpressions) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  schema.AddRelation("T", 2);
  const Engine engine;  // Default options: every rewrite and fast kernel on.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto db = setalg::testing::RandomDatabase(schema, 30, 12, seed);
    setalg::testing::RandomSaEqGenerator generator(schema, {1, 2, 3}, seed * 97);
    for (int trial = 0; trial < 12; ++trial) {
      const auto expr = generator.Generate(1 + trial % 2, 3);
      const Relation expected = ra::Eval(expr, db);
      auto run = engine.Run(expr, db);
      ASSERT_TRUE(run.ok()) << run.error();
      EXPECT_EQ(run->relation, expected) << expr->ToString();
    }
  }
}

TEST(Engine, ParityWithEvalOnJoinFormsOfRandomExpressions) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  const Engine engine;
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const auto db = setalg::testing::RandomDatabase(schema, 24, 10, seed);
    setalg::testing::RandomSaEqGenerator generator(schema, {1, 2}, seed * 131);
    for (int trial = 0; trial < 8; ++trial) {
      // The RA embedding of semijoins produces π(⋈) shapes — exactly what
      // the planner's semijoin reduction targets.
      const auto expr = ra::SemiJoinToJoin(generator.Generate(1, 3));
      const Relation expected = ra::Eval(expr, db);
      auto run = engine.Run(expr, db);
      ASSERT_TRUE(run.ok()) << run.error();
      EXPECT_EQ(run->relation, expected) << expr->ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Reference mode: exact legacy instrumentation.
// ---------------------------------------------------------------------------

TEST(Engine, ReferenceModeReproducesLegacyStats) {
  const auto db = SmallDb();
  auto shared = ra::Project(ra::Rel("R", 2), {1});
  auto e = ra::Union(shared,
                     ra::Project(ra::Join(ra::Rel("R", 2), ra::Rel("S", 1),
                                          {{2, ra::Cmp::kEq, 1}}),
                                 {1}));
  ra::EvalStats legacy;
  const Relation expected = ra::Eval(e, db, &legacy);

  auto run = Engine::Run(e, db, EngineOptions::Reference());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->relation, expected);
  const ra::EvalStats stats = ToEvalStats(run->stats);
  ASSERT_EQ(stats.nodes.size(), legacy.nodes.size());
  for (std::size_t i = 0; i < stats.nodes.size(); ++i) {
    EXPECT_EQ(stats.nodes[i].node, legacy.nodes[i].node);
    EXPECT_EQ(stats.nodes[i].output_size, legacy.nodes[i].output_size);
  }
  EXPECT_EQ(stats.max_intermediate, legacy.max_intermediate);
  EXPECT_EQ(stats.total_intermediate, legacy.total_intermediate);
  EXPECT_EQ(stats.join_rows_emitted, legacy.join_rows_emitted);
}

// ---------------------------------------------------------------------------
// Division-pattern routing (the acceptance criterion).
// ---------------------------------------------------------------------------

TEST(Engine, DivisionPatternRoutesToSubquadraticOperator) {
  const auto instance = QuadraticInstance();
  const auto db = setalg::testing::DivisionDb(instance.r, instance.s);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto planned = Engine::Run(expr, db, EngineOptions{});
  auto reference = Engine::Run(expr, db, EngineOptions::Reference());
  ASSERT_TRUE(planned.ok());
  ASSERT_TRUE(reference.ok());

  // Identical results...
  EXPECT_EQ(planned->relation, reference->relation);
  EXPECT_EQ(planned->relation,
            setjoin::Divide(instance.r, instance.s,
                            setjoin::DivisionAlgorithm::kHashDivision));

  // ...but the planner never materializes the classic plan's product: its
  // largest intermediate is an input relation, O(n), while classic RA is
  // Ω(#groups · |S|) — quadratic in the paper's regime (Prop. 26).
  ASSERT_FALSE(planned->stats.rewrites.empty());
  const std::size_t groups = setjoin::AsGrouped(instance.r).NumGroups();
  EXPECT_LE(planned->stats.max_intermediate, db.size());
  EXPECT_GE(reference->stats.max_intermediate, groups * instance.s.size());
  EXPECT_LT(planned->stats.max_intermediate, reference->stats.max_intermediate);
}

TEST(Engine, EqualityDivisionPatternRecognized) {
  const auto instance = QuadraticInstance();
  const auto db = setalg::testing::DivisionDb(instance.r, instance.s);
  const auto expr = setjoin::ClassicEqualityDivisionExpr("R", "S");

  auto planned = Engine::Run(expr, db, EngineOptions{});
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->relation, ra::Eval(expr, db));
  EXPECT_EQ(planned->relation,
            setjoin::DivideEqual(instance.r, instance.s,
                                 setjoin::DivisionAlgorithm::kHashDivision));
  ASSERT_FALSE(planned->stats.rewrites.empty());
  EXPECT_LE(planned->stats.max_intermediate, db.size());
}

TEST(Engine, ExplainShowsTheRoutedOperator) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto plan_text = Engine().Explain(expr, schema);
  ASSERT_TRUE(plan_text.ok());
  EXPECT_NE(plan_text->find("division[hash-division]"), std::string::npos)
      << *plan_text;

  EngineOptions aggregate;
  aggregate.division_algorithm = setjoin::DivisionAlgorithm::kAggregate;
  auto aggregate_text = Engine(aggregate).Explain(expr, schema);
  ASSERT_TRUE(aggregate_text.ok());
  EXPECT_NE(aggregate_text->find("division[aggregate]"), std::string::npos);

  auto reference_text = Engine(EngineOptions::Reference()).Explain(expr, schema);
  ASSERT_TRUE(reference_text.ok());
  EXPECT_EQ(reference_text->find("division["), std::string::npos)
      << "reference mode must lower 1:1";
}

// ---------------------------------------------------------------------------
// Semijoin reduction of one-sided projections.
// ---------------------------------------------------------------------------

TEST(Engine, SemijoinReductionAvoidsTheProduct) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  db.SetRelation("R", workload::UniformBinaryRelation(200, 50, 3));
  core::Relation s(1);
  for (core::Value v = 1; v <= 30; ++v) s.Add({v});
  db.SetRelation("S", s);

  const auto expr = ra::Project(ra::Product(ra::Rel("R", 2), ra::Rel("S", 1)), {1});
  auto planned = Engine::Run(expr, db, EngineOptions{});
  auto reference = Engine::Run(expr, db, EngineOptions::Reference());
  ASSERT_TRUE(planned.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(planned->relation, reference->relation);
  ASSERT_FALSE(planned->stats.rewrites.empty());
  EXPECT_LE(planned->stats.max_intermediate, db.size());
  EXPECT_GE(reference->stats.max_intermediate,
            db.relation("R").size() * db.relation("S").size());
}

TEST(Engine, MirroredSemijoinReductionKeepsParity) {
  const auto db = SmallDb();
  // Columns {3} live entirely on the right side of R(2) × S(1).
  const auto expr = ra::Project(ra::Product(ra::Rel("R", 2), ra::Rel("S", 1)), {3});
  auto planned = Engine::Run(expr, db, EngineOptions{});
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->relation, ra::Eval(expr, db));
  EXPECT_FALSE(planned->stats.rewrites.empty());
}

TEST(Engine, MixedSideProjectionIsNotReduced) {
  const auto db = SmallDb();
  const auto expr =
      ra::Project(ra::Product(ra::Rel("R", 2), ra::Rel("S", 1)), {1, 3});
  auto planned = Engine::Run(expr, db, EngineOptions{});
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->relation, ra::Eval(expr, db));
  EXPECT_TRUE(planned->stats.rewrites.empty());
}

// ---------------------------------------------------------------------------
// Intermediate-size budget.
// ---------------------------------------------------------------------------

TEST(Engine, BudgetAbortsOversizedRuns) {
  const auto db = SmallDb();
  EngineOptions options = EngineOptions::Reference();
  options.max_intermediate_budget = 2;
  auto run = Engine::Run(
      ra::Product(ra::Rel("R", 2), ra::Rel("S", 1)), db, options);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.error().find("budget"), std::string::npos);
}

TEST(Engine, BudgetAdmitsThePlannedDivisionButNotTheClassicPlan) {
  const auto instance = QuadraticInstance();
  const auto db = setalg::testing::DivisionDb(instance.r, instance.s);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  EngineOptions planned = EngineOptions{};
  planned.max_intermediate_budget = db.size();
  EXPECT_TRUE(Engine::Run(expr, db, planned).ok());

  EngineOptions reference = EngineOptions::Reference();
  reference.max_intermediate_budget = db.size();
  EXPECT_FALSE(Engine::Run(expr, db, reference).ok());
}

// ---------------------------------------------------------------------------
// Hand-built physical plans: the set-join operators.
// ---------------------------------------------------------------------------

TEST(Engine, RunExecutesHandBuiltSetJoinPlans) {
  workload::SetJoinConfig config;
  config.r_groups = 40;
  config.s_groups = 40;
  config.domain_size = 24;
  config.containment_fraction = 0.2;
  config.seed = 5;
  const auto instance = workload::MakeSetJoinInstance(config);
  const auto db = workload::SetJoinDatabase(instance);
  const Engine engine;

  PhysicalPlan contain;
  contain.root = MakeSetContainmentJoin(
      MakeScan("R", 2), MakeScan("S", 2),
      setjoin::ContainmentAlgorithm::kInvertedIndex);
  auto contain_run = engine.Run(contain, db);
  ASSERT_TRUE(contain_run.ok());
  EXPECT_EQ(contain_run->relation,
            setjoin::SetContainmentJoin(instance.r, instance.s,
                                        setjoin::ContainmentAlgorithm::kNestedLoop));

  PhysicalPlan equal;
  equal.root = MakeSetEqualityJoin(MakeScan("R", 2), MakeScan("S", 2),
                                   setjoin::EqualityJoinAlgorithm::kCanonicalHash);
  auto equal_run = engine.Run(equal, db);
  ASSERT_TRUE(equal_run.ok());
  EXPECT_EQ(equal_run->relation,
            setjoin::SetEqualityJoin(instance.r, instance.s,
                                     setjoin::EqualityJoinAlgorithm::kNestedLoop));

  PhysicalPlan overlap;
  overlap.root = MakeSetOverlapJoin(MakeScan("R", 2), MakeScan("S", 2));
  auto overlap_run = engine.Run(overlap, db);
  ASSERT_TRUE(overlap_run.ok());
  EXPECT_EQ(overlap_run->relation,
            setjoin::SetOverlapJoin(instance.r, instance.s));
}

// ---------------------------------------------------------------------------
// Parallel execution through the facade: EngineOptions::threads must
// never change results or row counts, on lowered and hand-built plans.
// ---------------------------------------------------------------------------

TEST(Engine, ParallelParityOnRandomSaExpressions) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  const auto db = setalg::testing::RandomDatabase(schema, 40, 14, 3);
  setalg::testing::RandomSaEqGenerator generator(schema, {1, 2, 3}, 41);
  EngineOptions parallel;
  parallel.threads = 3;
  for (int trial = 0; trial < 8; ++trial) {
    const auto expr = generator.Generate(1 + trial % 2, 3);
    auto serial = Engine().Run(expr, db);
    auto threaded = Engine(parallel).Run(expr, db);
    ASSERT_TRUE(serial.ok()) << serial.error();
    ASSERT_TRUE(threaded.ok()) << threaded.error();
    EXPECT_EQ(threaded->relation, serial->relation) << expr->ToString();
    EXPECT_EQ(threaded->stats.max_intermediate, serial->stats.max_intermediate);
    EXPECT_EQ(threaded->stats.total_intermediate, serial->stats.total_intermediate);
    EXPECT_EQ(threaded->stats.threads_used, 3u);
  }
}

TEST(Engine, ParallelDivisionMatchesSerialAndRecordsFanOut) {
  const auto instance = QuadraticInstance();
  const auto db = setalg::testing::DivisionDb(instance.r, instance.s);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");
  auto serial = Engine().Run(expr, db);
  ASSERT_TRUE(serial.ok()) << serial.error();
  for (std::size_t threads : {2u, 7u}) {
    EngineOptions options;
    options.threads = threads;
    auto run = Engine(options).Run(expr, db);
    ASSERT_TRUE(run.ok()) << run.error();
    EXPECT_EQ(run->relation, serial->relation) << threads << " threads";
    EXPECT_EQ(run->stats.threads_used, threads);
    EXPECT_EQ(run->stats.partitions, threads)
        << "the lowered division op must fan out pool-wide";
  }
}

TEST(Engine, BudgetStillEnforcedOnParallelRuns) {
  const auto db = SmallDb();
  EngineOptions options = EngineOptions::Parallel(4, /*batch_size=*/2);
  options.recognize_division = false;
  options.recognize_semijoin_projection = false;
  options.use_fast_semijoin = false;
  options.max_intermediate_budget = 2;
  auto run = Engine::Run(ra::Product(ra::Rel("R", 2), ra::Rel("S", 1)), db, options);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.error().find("budget"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prepared statements & the plan cache through the facade: invalidation
// edge cases (the randomized interleavings live in plan_cache_test.cc).
// ---------------------------------------------------------------------------

TEST(Engine, MutationDuringOpenPreparedHandleStaysCorrect) {
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {1, 20}, {2, 10}}), MakeRel(1, {{10}, {20}}));
  const Engine engine(EngineOptions::CostBased());
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto handle = engine.Prepare(expr, db);
  ASSERT_TRUE(handle.ok()) << handle.error();

  // The handle stays open across a whole sequence of mutations; every
  // execution must match a fresh evaluation of the *current* data.
  for (int step = 0; step < 4; ++step) {
    db.mutable_relation("R")->Add({10 + step, 10});
    db.mutable_relation("R")->Add({10 + step, 20});
    auto run = engine.Run(*handle, db);
    ASSERT_TRUE(run.ok()) << run.error();
    EXPECT_EQ(run->relation, ra::Eval(expr, db)) << "step " << step;
    EXPECT_TRUE(run->stats.cache == CacheOutcome::kRevalidated ||
                run->stats.cache == CacheOutcome::kRepicked)
        << "step " << step << ": " << CacheOutcomeToString(run->stats.cache);
  }
}

TEST(Engine, PreparedHandleNeverLeaksAcrossCollidingDatabases) {
  // Same schema, same relation names, different Database::id(): the
  // handle was costed for db1 and must not carry those plans onto db2.
  auto db1 = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {1, 20}, {2, 10}}), MakeRel(1, {{10}, {20}}));
  const core::Database db2 = db1;  // Copy: fresh id, then diverge.
  ASSERT_NE(db1.id(), db2.id());

  const Engine engine;
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");
  auto handle = engine.Prepare(expr, db1);
  ASSERT_TRUE(handle.ok());

  db1.SetRelation("R", MakeRel(2, {{9, 10}, {9, 20}}));
  // db2 still holds the original data; the handle must evaluate each
  // database's own relations, not the other's.
  auto on_db2 = engine.Run(*handle, db2);
  ASSERT_TRUE(on_db2.ok());
  EXPECT_EQ(on_db2->relation, MakeRel(1, {{1}}));
  auto on_db1 = engine.Run(*handle, db1);
  ASSERT_TRUE(on_db1.ok());
  EXPECT_EQ(on_db1->relation, MakeRel(1, {{9}}));
}

TEST(Engine, PreparedHandleSurvivesCacheEvictionMidSequence) {
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {2, 20}, {3, 10}}), MakeRel(1, {{10}}));
  EngineOptions options;
  options.plan_cache_entries = 1;  // Any other query evicts the handle's entry.
  const Engine engine(options);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  auto handle = engine.Prepare(expr, db);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(engine.Run(*handle, db).ok());

  // Evict the handle's entry by running a different query through the
  // 1-entry cache, then mutate and run the evicted handle again.
  ASSERT_TRUE(engine.Run(ra::Project(ra::Rel("R", 2), {1}), db).ok());
  EXPECT_GE(engine.plan_cache()->stats().evictions, 1u);
  db.mutable_relation("R")->Add({4, 10});
  auto run = engine.Run(*handle, db);
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_EQ(run->stats.cache, CacheOutcome::kRevalidated);
  EXPECT_EQ(run->relation, ra::Eval(expr, db));
}

TEST(Engine, ClearPlanCacheThenRePrepareIsAFreshStart) {
  auto db = setalg::testing::DivisionDb(
      MakeRel(2, {{1, 10}, {2, 20}}), MakeRel(1, {{10}}));
  EngineOptions options;
  options.plan_cache_entries = 4;
  const Engine engine(options);
  const auto expr = setjoin::ClassicDivisionExpr("R", "S");

  ASSERT_TRUE(engine.Prepare(expr, db).ok());
  ASSERT_TRUE(engine.Run(expr, db).ok());
  engine.ClearPlanCache();
  EXPECT_EQ(engine.plan_cache()->size(), 0u);

  auto handle = engine.Prepare(expr, db);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(engine.plan_cache()->size(), 1u);
  auto run = engine.Run(*handle, db);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.cache, CacheOutcome::kHit);
  EXPECT_EQ(run->relation, ra::Eval(expr, db));
}

TEST(Engine, RunRecordsPerOperatorStats) {
  const auto db = SmallDb();
  const Engine engine;
  PhysicalPlan plan;
  plan.root = MakeDivision(MakeScan("R", 2), MakeScan("S", 1),
                           setjoin::DivisionAlgorithm::kSortMerge,
                           /*equality=*/false);
  auto run = engine.Run(plan, db);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->stats.ops.size(), 3u);  // Two scans + the division.
  EXPECT_EQ(run->stats.ops.back().label, "division[sort-merge]");
  EXPECT_EQ(run->relation, setjoin::Divide(db.relation("R"), db.relation("S"),
                                           setjoin::DivisionAlgorithm::kSortMerge));
}

}  // namespace
}  // namespace setalg::engine
