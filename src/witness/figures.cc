#include "witness/figures.h"

#include "util/check.h"

namespace setalg::witness {

using core::Database;
using core::Relation;
using core::Schema;
using core::Value;

MedicalExample MakeMedicalExample() {
  MedicalExample example;
  example.schema.AddRelation("Person", 2);
  example.schema.AddRelation("Disease", 2);
  example.schema.AddRelation("Symptoms", 1);

  example.names.InternSorted({"An", "Bob", "Carol", "flu", "Lyme", "headache",
                              "memory loss", "neck pain", "sore throat"});
  auto v = [&](const char* name) { return example.names.Code(name); };

  Database db(example.schema);
  Relation person(2);
  person.Add({v("An"), v("headache")});
  person.Add({v("An"), v("sore throat")});
  person.Add({v("An"), v("neck pain")});
  person.Add({v("Bob"), v("headache")});
  person.Add({v("Bob"), v("sore throat")});
  person.Add({v("Bob"), v("memory loss")});
  person.Add({v("Bob"), v("neck pain")});
  person.Add({v("Carol"), v("headache")});
  db.SetRelation("Person", std::move(person));

  Relation disease(2);
  disease.Add({v("flu"), v("headache")});
  disease.Add({v("flu"), v("sore throat")});
  disease.Add({v("Lyme"), v("headache")});
  disease.Add({v("Lyme"), v("sore throat")});
  disease.Add({v("Lyme"), v("memory loss")});
  disease.Add({v("Lyme"), v("neck pain")});
  db.SetRelation("Disease", std::move(disease));

  Relation symptoms(1);
  symptoms.Add({v("headache")});
  symptoms.Add({v("neck pain")});
  db.SetRelation("Symptoms", std::move(symptoms));

  example.db = std::move(db);
  return example;
}

core::Database MakeFig2Database() {
  Schema schema;
  schema.AddRelation("R", 3);
  schema.AddRelation("S", 3);
  schema.AddRelation("T", 2);
  Database db(schema);
  // a..g encoded 1..7.
  const Value a = 1, b = 2, c = 3, d = 4, e = 5, f = 6;
  db.mutable_relation("R")->Add({a, b, c});
  db.mutable_relation("R")->Add({d, e, f});
  db.mutable_relation("S")->Add({d, a, b});
  db.mutable_relation("T")->Add({e, a});
  db.mutable_relation("T")->Add({f, c});
  return db;
}

namespace {

Schema Fig3Schema() {
  Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 2);
  return schema;
}

}  // namespace

core::Database MakeFig3A() {
  Database db(Fig3Schema());
  db.mutable_relation("R")->Add({1, 2});
  db.mutable_relation("R")->Add({2, 3});
  db.mutable_relation("S")->Add({1, 2});
  db.mutable_relation("T")->Add({2, 3});
  return db;
}

core::Database MakeFig3B() {
  Database db(Fig3Schema());
  db.mutable_relation("R")->Add({6, 7});
  db.mutable_relation("R")->Add({7, 8});
  db.mutable_relation("R")->Add({9, 10});
  db.mutable_relation("R")->Add({10, 11});
  db.mutable_relation("S")->Add({6, 7});
  db.mutable_relation("S")->Add({9, 10});
  db.mutable_relation("T")->Add({7, 8});
  db.mutable_relation("T")->Add({10, 11});
  return db;
}

std::vector<bisim::PartialIso> MakeFig3Bisimulation() {
  auto iso = [](core::Tuple from, core::Tuple to) {
    auto result = bisim::PartialIso::FromTuples(from, to);
    SETALG_CHECK(result.has_value());
    return *result;
  };
  return {
      iso({1, 2}, {6, 7}),
      iso({2, 3}, {7, 8}),
      iso({1, 2}, {9, 10}),
      iso({2, 3}, {10, 11}),
  };
}

Fig4Example MakeFig4Example() {
  Fig4Example example;
  example.schema.AddRelation("R", 3);
  example.schema.AddRelation("S", 3);
  example.schema.AddRelation("T", 2);
  Database db(example.schema);
  db.mutable_relation("R")->Add({1, 2, 3});
  db.mutable_relation("R")->Add({8, 9, 10});
  db.mutable_relation("S")->Add({3, 4, 5});
  db.mutable_relation("T")->Add({6, 1});
  db.mutable_relation("T")->Add({4, 7});
  example.db = std::move(db);

  // E = (R ⋈_{1=2} T) ⋈_{3=1} (S ⋈_{2=1} T).
  ra::ExprPtr e1 = ra::Join(ra::Rel("R", 3), ra::Rel("T", 2),
                            {{1, ra::Cmp::kEq, 2}});
  ra::ExprPtr e2 = ra::Join(ra::Rel("S", 3), ra::Rel("T", 2),
                            {{2, ra::Cmp::kEq, 1}});
  example.expr = ra::Join(std::move(e1), std::move(e2), {{3, ra::Cmp::kEq, 1}});
  example.a_witness = {1, 2, 3, 6, 1};
  example.b_witness = {3, 4, 5, 4, 7};
  return example;
}

namespace {

Schema DivisionSchema() {
  Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  return schema;
}

}  // namespace

core::Database MakeFig5A() {
  Database db(DivisionSchema());
  for (Value a : {1, 2}) {
    for (Value s : {7, 8}) db.mutable_relation("R")->Add({a, s});
  }
  db.mutable_relation("S")->Add({7});
  db.mutable_relation("S")->Add({8});
  return db;
}

core::Database MakeFig5B() {
  Database db(DivisionSchema());
  db.mutable_relation("R")->Add({1, 7});
  db.mutable_relation("R")->Add({1, 8});
  db.mutable_relation("R")->Add({2, 8});
  db.mutable_relation("R")->Add({2, 9});
  db.mutable_relation("R")->Add({3, 7});
  db.mutable_relation("R")->Add({3, 9});
  for (Value s : {7, 8, 9}) db.mutable_relation("S")->Add({s});
  return db;
}

std::vector<bisim::PartialIso> MakeFig5Bisimulation() {
  const Database a = MakeFig5A();
  const Database b = MakeFig5B();
  std::vector<bisim::PartialIso> isos;
  auto add = [&isos](core::TupleView from, core::TupleView to) {
    auto iso = bisim::PartialIso::FromTuples(from, to);
    SETALG_CHECK(iso.has_value());
    isos.push_back(*iso);
  };
  add(core::Tuple{1}, core::Tuple{1});
  for (const char* name : {"R", "S"}) {
    const Relation& ra = a.relation(name);
    const Relation& rb = b.relation(name);
    for (std::size_t i = 0; i < ra.size(); ++i) {
      for (std::size_t j = 0; j < rb.size(); ++j) {
        add(ra.tuple(i), rb.tuple(j));
      }
    }
  }
  return isos;
}

core::Database MakeDivisionFamilyA(std::size_t n, std::size_t m) {
  SETALG_CHECK(n >= 1 && m >= 2);
  Database db(DivisionSchema());
  const Value base = static_cast<Value>(n) + 2;
  Relation r(2);
  r.Reserve(n * m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      r.Add({static_cast<Value>(i + 1), base + static_cast<Value>(j)});
    }
  }
  db.SetRelation("R", std::move(r));
  Relation s(1);
  for (std::size_t j = 0; j < m; ++j) s.Add({base + static_cast<Value>(j)});
  db.SetRelation("S", std::move(s));
  return db;
}

core::Database MakeDivisionFamilyB(std::size_t n, std::size_t m) {
  SETALG_CHECK(n >= 1 && m >= 2);
  Database db(DivisionSchema());
  const Value base = static_cast<Value>(n) + 2;
  Relation r(2);
  r.Reserve((n + 1) * m);
  for (std::size_t i = 0; i < n + 1; ++i) {
    for (std::size_t j = 0; j < m + 1; ++j) {
      if (j == i % (m + 1)) continue;  // Key i misses one divisor value.
      r.Add({static_cast<Value>(i + 1), base + static_cast<Value>(j)});
    }
  }
  db.SetRelation("R", std::move(r));
  Relation s(1);
  for (std::size_t j = 0; j < m + 1; ++j) s.Add({base + static_cast<Value>(j)});
  db.SetRelation("S", std::move(s));
  return db;
}

BeerExample MakeBeerExample() {
  BeerExample example;
  example.schema.AddRelation("Likes", 2);
  example.schema.AddRelation("Serves", 2);
  example.schema.AddRelation("Visits", 2);
  example.names.InternSorted({"alex", "bart", "pareto bar", "qwerty bar", "westmalle",
                              "westvleteren"});
  auto v = [&](const char* name) { return example.names.Code(name); };

  Database a(example.schema);
  a.mutable_relation("Visits")->Add({v("alex"), v("pareto bar")});
  a.mutable_relation("Serves")->Add({v("pareto bar"), v("westmalle")});
  a.mutable_relation("Likes")->Add({v("alex"), v("westmalle")});
  example.a = std::move(a);

  Database b(example.schema);
  b.mutable_relation("Visits")->Add({v("alex"), v("pareto bar")});
  b.mutable_relation("Visits")->Add({v("bart"), v("qwerty bar")});
  b.mutable_relation("Serves")->Add({v("pareto bar"), v("westmalle")});
  b.mutable_relation("Serves")->Add({v("qwerty bar"), v("westvleteren")});
  b.mutable_relation("Likes")->Add({v("alex"), v("westvleteren")});
  b.mutable_relation("Likes")->Add({v("bart"), v("westmalle")});
  example.b = std::move(b);
  return example;
}

std::vector<bisim::PartialIso> MakeFig6Bisimulation(const BeerExample& example) {
  std::vector<bisim::PartialIso> isos;
  auto add = [&isos](core::TupleView from, core::TupleView to) {
    auto iso = bisim::PartialIso::FromTuples(from, to);
    SETALG_CHECK(iso.has_value());
    isos.push_back(*iso);
  };
  const Value alex = example.names.Code("alex");
  add(core::Tuple{alex}, core::Tuple{alex});
  for (const char* name : {"Likes", "Serves", "Visits"}) {
    const Relation& ra = example.a.relation(name);
    const Relation& rb = example.b.relation(name);
    for (std::size_t i = 0; i < ra.size(); ++i) {
      for (std::size_t j = 0; j < rb.size(); ++j) {
        add(ra.tuple(i), rb.tuple(j));
      }
    }
  }
  return isos;
}

ra::ExprPtr LousyBarDrinkersSa() {
  ra::ExprPtr serves = ra::Rel("Serves", 2);
  ra::ExprPtr likes = ra::Rel("Likes", 2);
  ra::ExprPtr visits = ra::Rel("Visits", 2);
  ra::ExprPtr lousy = ra::Diff(
      ra::Project(serves, {1}),
      ra::Project(ra::SemiJoin(serves, likes, {{2, ra::Cmp::kEq, 2}}), {1}));
  return ra::Project(ra::SemiJoin(visits, lousy, {{2, ra::Cmp::kEq, 1}}), {1});
}

gf::FormulaPtr LousyBarDrinkersGf() {
  // ∃y(Visits(x,y) ∧ ¬∃z(Serves(y,z) ∧ ∃w Likes(w,z))).
  gf::FormulaPtr someone_likes =
      gf::Exists(gf::Atom("Likes", {"w", "z"}), {"w"}, gf::True());
  gf::FormulaPtr bar_ok =
      gf::Exists(gf::Atom("Serves", {"y", "z"}), {"z"}, someone_likes);
  return gf::Exists(gf::Atom("Visits", {"x", "y"}), {"y"}, gf::Not(bar_ok));
}

ra::ExprPtr QueryQRa() {
  ra::ExprPtr visits = ra::Rel("Visits", 2);
  ra::ExprPtr serves = ra::Rel("Serves", 2);
  ra::ExprPtr likes = ra::Rel("Likes", 2);
  // (Visits ⋈_{bar} Serves) ⋈_{drinker, beer} Likes, projected to drinker.
  ra::ExprPtr vs = ra::Join(visits, serves, {{2, ra::Cmp::kEq, 1}});
  ra::ExprPtr vsl = ra::Join(vs, likes, {{1, ra::Cmp::kEq, 1}, {4, ra::Cmp::kEq, 2}});
  return ra::Project(vsl, {1});
}

}  // namespace setalg::witness
