// The Lemma 24 pumping construction: given a join E = E1 ⋈_θ E2, a
// database D, and a joining witness pair (ā, b̄) with nonempty free values
// on both sides, builds the database family (D_n) with |D_n| ≤ 2|D|·n
// while |E(D_n)| ≥ n².
//
// Fresh-value bookkeeping (the paper's "isomorphic copy / translate"
// step): D's domain is first re-embedded order-preservingly, fixing the
// constants pointwise and stretching everything outside [min C, max C] by
// a stride > n. Free values (which by Definition 22 never lie between
// consecutive constants) then receive their n−1 fresh neighbours
// new⁽ᵏ⁾(x) = embed(x) + k, which keeps every fresh value in the same
// relative order as x with respect to all other (embedded) values and the
// constants.
#ifndef SETALG_WITNESS_PUMPING_H_
#define SETALG_WITNESS_PUMPING_H_

#include <vector>

#include "core/database.h"
#include "ra/expr.h"

namespace setalg::witness {

/// Inputs of the construction.
struct PumpingSpec {
  /// The join node E = E1 ⋈_θ E2 (kind must be kJoin).
  ra::ExprPtr expr;
  /// The base database D.
  const core::Database* db = nullptr;
  /// ā ∈ E1(D) and b̄ ∈ E2(D), joining under θ (validated).
  core::Tuple a_witness;
  core::Tuple b_witness;
  /// Free-value sets to pump. Empty means "use FreeValues(...)" (Def. 22);
  /// any nonempty subset of the free values is also valid (the paper's
  /// Fig. 4 pumps the subset {1,2} on the left).
  std::vector<core::Value> free1;
  std::vector<core::Value> free2;
};

/// Validates the spec (witnesses evaluate and join; free sets are
/// nonempty subsets of the Definition 22 free values). Returns an error
/// message or "".
std::string ValidatePumpingSpec(const PumpingSpec& spec);

/// Builds D_n (n >= 1; D_1 is the embedded copy of D).
core::Database BuildPumpedDatabase(const PumpingSpec& spec, std::size_t n);

/// One measurement row of the Lemma 24 experiment.
struct PumpingSample {
  std::size_t n = 0;
  std::size_t db_size = 0;      // |D_n|
  std::size_t output_size = 0;  // |E(D_n)|
};

/// Evaluates E on D_n for each n and reports sizes (the Lemma predicts
/// db_size ≤ 2|D|·n and output_size ≥ n²).
std::vector<PumpingSample> MeasurePumping(const PumpingSpec& spec,
                                          const std::vector<std::size_t>& ns);

}  // namespace setalg::witness

#endif  // SETALG_WITNESS_PUMPING_H_
