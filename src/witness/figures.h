// Every figure and worked example of the paper as an executable artifact:
//
//   Fig. 1  medical database (Person/Disease/Symptoms) for set joins,
//   Fig. 2  the C-stored-tuples illustration over {R/3, S/3, T/2},
//   Fig. 3  + Example 12: the guarded-bisimilar pair with its explicit
//           bisimulation,
//   Fig. 4  the Lemma 24 running example (database D, expression
//           E = (R ⋈₁₌₂ T) ⋈₃₌₁ (S ⋈₂₌₁ T), witness tuples),
//   Fig. 5  + Proposition 26: the division-separating bisimilar pair and
//           its scaled generalization A_n/B_n,
//   Fig. 6  + Section 4.1: the beer-drinkers pair separating query Q,
//   Examples 3/7: the lousy-bar query in SA and GF.
#ifndef SETALG_WITNESS_FIGURES_H_
#define SETALG_WITNESS_FIGURES_H_

#include <vector>

#include "bisim/partial_iso.h"
#include "core/database.h"
#include "core/name_map.h"
#include "gf/formula.h"
#include "ra/expr.h"

namespace setalg::witness {

// --------------------------------------------------------------------------
// Fig. 1: the medical example.
// --------------------------------------------------------------------------

struct MedicalExample {
  core::Schema schema;  // Person/2, Disease/2, Symptoms/1.
  core::Database db;
  core::NameMap names;
};

/// Person, Disease and Symptoms exactly as printed in Fig. 1 (strings
/// interned in lexicographic order).
MedicalExample MakeMedicalExample();

// --------------------------------------------------------------------------
// Fig. 2: C-stored tuples.
// --------------------------------------------------------------------------

/// The database D over {R/3, S/3, T/2} of Fig. 2, with values a..g encoded
/// as 1..7 in alphabetical order.
core::Database MakeFig2Database();

// --------------------------------------------------------------------------
// Fig. 3 and Example 12.
// --------------------------------------------------------------------------

/// Schema {R/2, S/2, T/2}.
core::Database MakeFig3A();
core::Database MakeFig3B();

/// Example 12's explicit ∅-guarded bisimulation between Fig. 3's A and B.
std::vector<bisim::PartialIso> MakeFig3Bisimulation();

// --------------------------------------------------------------------------
// Fig. 4: Lemma 24 running example.
// --------------------------------------------------------------------------

struct Fig4Example {
  core::Schema schema;  // R/3, S/3, T/2.
  core::Database db;    // D of Fig. 4.
  ra::ExprPtr expr;     // E = (R ⋈_{1=2} T) ⋈_{3=1} (S ⋈_{2=1} T).
  core::Tuple a_witness;  // ā = (1,2,3,6,1) ∈ E1(D).
  core::Tuple b_witness;  // b̄ = (3,4,5,4,7) ∈ E2(D).
};

Fig4Example MakeFig4Example();

// --------------------------------------------------------------------------
// Fig. 5 and Proposition 26.
// --------------------------------------------------------------------------

/// Schema {R/2, S/1}. A: R = {1,2}×{7,8}, S = {7,8} (division = {1,2});
/// B: three drinkers each missing one of {7,8,9} (division = ∅).
core::Database MakeFig5A();
core::Database MakeFig5B();

/// Proposition 26's bisimulation: {1→1} ∪ all same-relation tuple pairs.
std::vector<bisim::PartialIso> MakeFig5Bisimulation();

/// Scaled generalization: A(n,m) is the full bipartite R = [1..n] ×
/// [base..base+m-1] with S the full divisor (division = all n keys);
/// B(n,m) has n+1 keys over m+1 divisor values, key i missing the i-th
/// value (division = ∅). For m ≥ 2 the pairs are ∅-guarded bisimilar.
core::Database MakeDivisionFamilyA(std::size_t n, std::size_t m);
core::Database MakeDivisionFamilyB(std::size_t n, std::size_t m);

// --------------------------------------------------------------------------
// Fig. 6 and Section 4.1 (beer drinkers).
// --------------------------------------------------------------------------

struct BeerExample {
  core::Schema schema;  // Likes/2, Serves/2, Visits/2.
  core::Database a;     // Fig. 6 left.
  core::Database b;     // Fig. 6 right.
  core::NameMap names;
};

BeerExample MakeBeerExample();

/// Section 4.1's bisimulation: {alex→alex} ∪ all same-relation pairs.
std::vector<bisim::PartialIso> MakeFig6Bisimulation(const BeerExample& example);

/// Example 3: drinkers visiting a lousy bar, in SA= —
/// π₁(Visits ⋉_{2=1} (π₁(Serves) − π₁(Serves ⋉_{2=2} Likes))).
ra::ExprPtr LousyBarDrinkersSa();

/// Example 7: the same query as a GF formula
/// ∃y(Visits(x,y) ∧ ¬∃z(Serves(y,z) ∧ ∃w Likes(w,z))) over variable "x".
gf::FormulaPtr LousyBarDrinkersGf();

/// Section 4.1's query Q, "drinkers that visit a bar that serves a beer
/// they like", as (cyclic, quadratic) RA:
/// π₁((Visits ⋈_{2=1} Serves) ⋈_{1=1;4=2} Likes).
ra::ExprPtr QueryQRa();

}  // namespace setalg::witness

#endif  // SETALG_WITNESS_FIGURES_H_
