#include "witness/pumping.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "ra/analysis.h"
#include "ra/eval.h"
#include "util/check.h"
#include "util/str.h"

namespace setalg::witness {
namespace {

using core::Database;
using core::Relation;
using core::Tuple;
using core::TupleView;
using core::Value;

bool IsSubset(const std::vector<Value>& sub, const std::vector<Value>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

// Order-preserving re-embedding fixing the constants: values in
// [min C, max C] stay put; values above/below are stretched by `stride`.
// With C empty, everything is scaled by the stride.
Value Embed(Value v, const core::ConstantSet& constants, Value stride) {
  if (constants.empty()) {
    SETALG_CHECK_STREAM(v < (1LL << 40) && v > -(1LL << 40)) << "value too large";
    return v * stride;
  }
  const Value lo = constants.front();
  const Value hi = constants.back();
  if (v >= lo && v <= hi) return v;
  if (v > hi) return hi + (v - hi) * stride;
  return lo - (lo - v) * stride;
}

}  // namespace

std::string ValidatePumpingSpec(const PumpingSpec& spec) {
  if (spec.db == nullptr) return "spec.db is null";
  if (spec.expr == nullptr || spec.expr->kind() != ra::OpKind::kJoin) {
    return "spec.expr must be a join node";
  }
  const core::ConstantSet constants = ra::CollectConstants(*spec.expr);
  const Relation e1 = ra::Eval(spec.expr->child(0), *spec.db);
  const Relation e2 = ra::Eval(spec.expr->child(1), *spec.db);
  if (!e1.Contains(spec.a_witness)) return "a_witness is not in E1(D)";
  if (!e2.Contains(spec.b_witness)) return "b_witness is not in E2(D)";
  for (const auto& atom : spec.expr->atoms()) {
    const Value a = spec.a_witness[atom.left - 1];
    const Value b = spec.b_witness[atom.right - 1];
    bool holds = false;
    switch (atom.op) {
      case ra::Cmp::kEq:
        holds = a == b;
        break;
      case ra::Cmp::kNeq:
        holds = a != b;
        break;
      case ra::Cmp::kLt:
        holds = a < b;
        break;
      case ra::Cmp::kGt:
        holds = a > b;
        break;
    }
    if (!holds) return "witness pair does not satisfy θ";
  }
  const auto max_free1 = ra::FreeValues(*spec.expr, 1, spec.a_witness, constants);
  const auto max_free2 = ra::FreeValues(*spec.expr, 2, spec.b_witness, constants);
  auto effective = [](const std::vector<Value>& chosen,
                      const std::vector<Value>& maximal) {
    return chosen.empty() ? maximal : chosen;
  };
  std::vector<Value> f1 = effective(spec.free1, max_free1);
  std::vector<Value> f2 = effective(spec.free2, max_free2);
  std::sort(f1.begin(), f1.end());
  std::sort(f2.begin(), f2.end());
  if (f1.empty()) return "no free values on the left (Lemma 24 needs both)";
  if (f2.empty()) return "no free values on the right";
  if (!IsSubset(f1, max_free1)) return "free1 is not a subset of FreeValues(E1, ā)";
  if (!IsSubset(f2, max_free2)) return "free2 is not a subset of FreeValues(E2, b̄)";
  return "";
}

core::Database BuildPumpedDatabase(const PumpingSpec& spec, std::size_t n) {
  SETALG_CHECK_GE(n, 1u);
  SETALG_CHECK_STREAM(ValidatePumpingSpec(spec).empty()) << ValidatePumpingSpec(spec);
  const core::ConstantSet constants = ra::CollectConstants(*spec.expr);

  std::vector<Value> free1 = spec.free1, free2 = spec.free2;
  if (free1.empty()) free1 = ra::FreeValues(*spec.expr, 1, spec.a_witness, constants);
  if (free2.empty()) free2 = ra::FreeValues(*spec.expr, 2, spec.b_witness, constants);
  std::set<Value> free_union(free1.begin(), free1.end());
  free_union.insert(free2.begin(), free2.end());
  const std::set<Value> f1(free1.begin(), free1.end());
  const std::set<Value> f2(free2.begin(), free2.end());

  const Value stride = static_cast<Value>(n) + 1;
  auto embed = [&](Value v) { return Embed(v, constants, stride); };
  // new⁽ᵏ⁾(x) = embed(x) + k (same relative order as x; see header).
  auto fresh = [&](Value v, std::size_t k) {
    return embed(v) + static_cast<Value>(k);
  };

  Database out(spec.db->schema());
  for (const auto& name : spec.db->schema().Names()) {
    const Relation& source = spec.db->relation(name);
    Relation target(source.arity());
    target.Reserve(source.size() * (2 * n));
    Tuple row(source.arity());
    for (std::size_t i = 0; i < source.size(); ++i) {
      TupleView t = source.tuple(i);
      // Embedded original.
      for (std::size_t p = 0; p < t.size(); ++p) row[p] = embed(t[p]);
      target.Add(row);
      // Family-1 copies: rename the free1 values.
      bool touches1 = std::any_of(t.begin(), t.end(),
                                  [&](Value v) { return f1.count(v) > 0; });
      if (touches1) {
        for (std::size_t k = 1; k < n; ++k) {
          for (std::size_t p = 0; p < t.size(); ++p) {
            row[p] = f1.count(t[p]) > 0 ? fresh(t[p], k) : embed(t[p]);
          }
          target.Add(row);
        }
      }
      // Family-2 copies: rename the free2 values.
      bool touches2 = std::any_of(t.begin(), t.end(),
                                  [&](Value v) { return f2.count(v) > 0; });
      if (touches2) {
        for (std::size_t k = 1; k < n; ++k) {
          for (std::size_t p = 0; p < t.size(); ++p) {
            row[p] = f2.count(t[p]) > 0 ? fresh(t[p], k) : embed(t[p]);
          }
          target.Add(row);
        }
      }
    }
    out.SetRelation(name, std::move(target));
  }
  return out;
}

std::vector<PumpingSample> MeasurePumping(const PumpingSpec& spec,
                                          const std::vector<std::size_t>& ns) {
  std::vector<PumpingSample> samples;
  samples.reserve(ns.size());
  for (std::size_t n : ns) {
    const Database dn = BuildPumpedDatabase(spec, n);
    PumpingSample sample;
    sample.n = n;
    sample.db_size = dn.size();
    sample.output_size = ra::Eval(spec.expr, dn).size();
    samples.push_back(sample);
  }
  return samples;
}

}  // namespace setalg::witness
