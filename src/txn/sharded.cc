#include "txn/sharded.h"

#include <utility>

#include "setjoin/grouped.h"
#include "util/check.h"

namespace setalg::txn {
namespace {

// Routes every row of a normalized relation to its shard. Rows are
// visited in sorted order, so each shard is already sorted and
// duplicate-free — Normalize() is the no-op fast path (the same argument
// as engine::PartitionByColumn, with which this must agree).
ShardedSnapshot::ShardVectorPtr SliceRelation(const core::Relation& relation,
                                              std::size_t key_column,
                                              std::size_t shards) {
  auto out = std::make_shared<ShardedSnapshot::ShardVector>();
  out->reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) out->emplace_back(relation.arity());
  for (std::size_t i = 0; i < relation.size(); ++i) {
    const core::TupleView row = relation.tuple(i);
    (*out)[setjoin::PartitionOfKey(row[key_column - 1], shards)].Add(row);
  }
  for (auto& shard : *out) shard.Normalize();
  return out;
}

}  // namespace

std::size_t ShardedSnapshot::shard_key_column(const std::string& name) const {
  auto it = key_columns_.find(name);
  return it == key_columns_.end() ? 0 : it->second;
}

const core::Relation& ShardedSnapshot::shard(const std::string& name,
                                             std::size_t s) const {
  auto it = shards_.find(name);
  SETALG_CHECK_STREAM(it != shards_.end()) << "relation not sharded: " << name;
  SETALG_CHECK(s < it->second->size());
  return (*it->second)[s];
}

const stats::RelationStats* ShardedSnapshot::ShardStatsLocked(
    const std::string& name, std::size_t s) const {
  auto& slots = shard_stats_[name];
  if (slots.empty()) slots.resize(shard_count_);
  SETALG_CHECK(s < slots.size());
  if (slots[s] == nullptr) {
    slots[s] = std::make_unique<stats::RelationStats>(
        stats::ComputeRelationStats(shard(name, s)));
  }
  return slots[s].get();
}

const stats::RelationStats* ShardedSnapshot::ShardStats(const std::string& name,
                                                        std::size_t s) const {
  if (shard_key_column(name) == 0) return nullptr;
  std::lock_guard<std::mutex> lock(shard_stats_mu_);
  return ShardStatsLocked(name, s);
}

const stats::RelationStats* ShardedSnapshot::Get(const std::string& name) const {
  const std::size_t key = shard_key_column(name);
  if (key == 0) return Snapshot::Get(name);
  // A binary relation sharded on column 2 splits its column-1 groups
  // across shards, so the group profile would not merge exactly — use
  // the direct computation there.
  if (schema().Arity(name) == 2 && key != 1) return Snapshot::Get(name);
  std::lock_guard<std::mutex> lock(shard_stats_mu_);
  auto it = merged_stats_.find(name);
  if (it == merged_stats_.end()) {
    std::vector<const stats::RelationStats*> parts;
    parts.reserve(shard_count_);
    for (std::size_t s = 0; s < shard_count_; ++s) {
      parts.push_back(ShardStatsLocked(name, s));
    }
    it = merged_stats_.emplace(name, stats::MergeShardStats(parts, key)).first;
  }
  return &it->second;
}

ShardedDatabase::ShardedDatabase(core::Schema schema, ShardingOptions options)
    : VersionedDatabase(std::move(schema)), options_(std::move(options)) {
  SETALG_CHECK(options_.shards >= 1);
  RepublishHead();
}

ShardedDatabase::ShardedDatabase(const core::Database& db, ShardingOptions options)
    : VersionedDatabase(db), options_(std::move(options)) {
  SETALG_CHECK(options_.shards >= 1);
  RepublishHead();
}

ShardedDatabase::ShardedDatabase(const core::Database& db, std::size_t shards)
    : ShardedDatabase(db, ShardingOptions{shards, {}}) {}

std::size_t ShardedDatabase::KeyColumnFor(const std::string& name,
                                          std::size_t arity) const {
  auto it = options_.key_columns.find(name);
  const std::size_t key = it == options_.key_columns.end() ? 1 : it->second;
  if (key == 0 || key > arity) return 0;
  return key;
}

SnapshotPtr ShardedDatabase::MakeSnapshot(
    Snapshot::RelationMap relations,
    std::unordered_map<std::string, std::uint64_t> versions,
    std::uint64_t version, const Snapshot* prev) const {
  const auto* sharded_prev = dynamic_cast<const ShardedSnapshot*>(prev);
  std::unordered_map<std::string, std::size_t> key_columns;
  std::unordered_map<std::string, ShardedSnapshot::ShardVectorPtr> shards;
  for (const auto& [name, relation] : relations) {
    const std::size_t key = KeyColumnFor(name, relation->arity());
    if (key == 0) continue;
    key_columns.emplace(name, key);
    if (sharded_prev != nullptr) {
      auto prev_relation = sharded_prev->relations_.find(name);
      auto prev_shards = sharded_prev->shards_.find(name);
      if (prev_relation != sharded_prev->relations_.end() &&
          prev_relation->second == relation &&
          prev_shards != sharded_prev->shards_.end()) {
        // Untouched by this commit: the slices are still exact.
        shards.emplace(name, prev_shards->second);
        continue;
      }
    }
    shards.emplace(name, SliceRelation(*relation, key, options_.shards));
  }
  return SnapshotPtr(new ShardedSnapshot(
      schema(), std::move(relations), std::move(versions), id(), version,
      options_.shards, std::move(key_columns), std::move(shards)));
}

}  // namespace setalg::txn
