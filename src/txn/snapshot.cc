#include "txn/snapshot.h"

#include <algorithm>

#include "util/check.h"

namespace setalg::txn {

const core::Relation& Snapshot::relation(const std::string& name) const {
  auto it = relations_.find(name);
  SETALG_CHECK_STREAM(it != relations_.end()) << "unknown relation: " << name;
  return *it->second;
}

std::uint64_t Snapshot::relation_version(const std::string& name) const {
  auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second;
}

stats::VersionVector Snapshot::Versions() const {
  std::vector<std::string> names = schema_.Names();
  return stats::SnapshotVersions(*this, std::move(names));
}

const stats::RelationStats* Snapshot::Get(const std::string& name) const {
  if (!schema_.HasRelation(name)) return nullptr;
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    it = stats_.emplace(name, stats::ComputeRelationStats(relation(name)))
             .first;
  }
  return &it->second;
}

void WriteBatch::Set(std::string name, core::Relation relation) {
  // Last write per name wins — and counts as one write: re-staging a name
  // replaces the earlier entry so a commit bumps each touched relation's
  // version exactly once.
  for (auto& [staged_name, staged_relation] : writes_) {
    if (staged_name == name) {
      staged_relation = std::move(relation);
      return;
    }
  }
  writes_.emplace_back(std::move(name), std::move(relation));
}

VersionedDatabase::VersionedDatabase(core::Schema schema)
    : schema_(std::move(schema)), id_(core::NextDatabaseId()) {
  Snapshot::RelationMap relations;
  std::unordered_map<std::string, std::uint64_t> versions;
  for (const auto& name : schema_.Names()) {
    relations.emplace(name,
                      std::make_shared<core::Relation>(schema_.Arity(name)));
    versions.emplace(name, 0);
  }
  head_ = SnapshotPtr(new Snapshot(schema_, std::move(relations),
                                   std::move(versions), id_, 0));
}

VersionedDatabase::VersionedDatabase(const core::Database& db)
    : schema_(db.schema()), id_(core::NextDatabaseId()) {
  Snapshot::RelationMap relations;
  std::unordered_map<std::string, std::uint64_t> versions;
  for (const auto& name : schema_.Names()) {
    relations.emplace(name, std::make_shared<core::Relation>(db.relation(name)));
    versions.emplace(name, 0);
  }
  head_ = SnapshotPtr(new Snapshot(schema_, std::move(relations),
                                   std::move(versions), id_, 0));
}

SnapshotPtr VersionedDatabase::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

SnapshotPtr VersionedDatabase::SetRelation(const std::string& name,
                                           core::Relation relation) {
  std::vector<std::pair<std::string, core::Relation>> writes;
  writes.emplace_back(name, std::move(relation));
  std::lock_guard<std::mutex> lock(mu_);
  return PublishLocked(std::move(writes));
}

SnapshotPtr VersionedDatabase::Mutate(
    const std::string& name, const std::function<void(core::Relation&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  core::Relation copy = head_->relation(name);
  fn(copy);
  std::vector<std::pair<std::string, core::Relation>> writes;
  writes.emplace_back(name, std::move(copy));
  return PublishLocked(std::move(writes));
}

SnapshotPtr VersionedDatabase::Commit(WriteBatch batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return PublishLocked(std::move(batch.writes_));
}

SnapshotPtr VersionedDatabase::MakeSnapshot(
    Snapshot::RelationMap relations,
    std::unordered_map<std::string, std::uint64_t> versions,
    std::uint64_t version, const Snapshot* /*prev*/) const {
  return SnapshotPtr(new Snapshot(schema_, std::move(relations),
                                  std::move(versions), id_, version));
}

void VersionedDatabase::RepublishHead() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = MakeSnapshot(head_->relations_, head_->versions_, head_->version(),
                       nullptr);
}

SnapshotPtr VersionedDatabase::PublishLocked(
    std::vector<std::pair<std::string, core::Relation>> writes) {
  // Copy-on-write: shallow-copy the published maps (shared_ptr per
  // relation), then replace only the touched entries. Readers holding
  // the old snapshot keep the old relation objects alive; nothing they
  // can reach is ever modified.
  Snapshot::RelationMap relations = head_->relations_;
  std::unordered_map<std::string, std::uint64_t> versions = head_->versions_;
  for (auto& [name, relation] : writes) {
    SETALG_CHECK_STREAM(schema_.HasRelation(name))
        << "unknown relation: " << name;
    SETALG_CHECK_EQ(schema_.Arity(name), relation.arity());
    relations.insert_or_assign(
        name, std::make_shared<core::Relation>(std::move(relation)));
    ++versions[name];
  }
  head_ = MakeSnapshot(std::move(relations), std::move(versions),
                       head_->version() + 1, head_.get());
  return head_;
}

}  // namespace setalg::txn
