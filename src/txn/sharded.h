// Sharded MVCC storage: a VersionedDatabase head whose snapshots also
// carry every relation pre-partitioned into K shards, routed by
// setjoin::PartitionOfKey on a declared key column — the exact routing
// the parallel executor's partition pass uses, so a partitioned operator
// whose partitioning column matches the shard key can consume the shards
// directly (via core::ShardedView) and skip the partition pass entirely.
//
// Sharding is pure representation. Snapshot::relation() still returns
// the full combined relation, the head id and per-relation version
// counters are exactly the plain VersionedDatabase's, and therefore the
// (id, version vector) cache keys, stats::DatabaseStats and every
// Engine::Run overload work unchanged. Shard slices are copy-on-write at
// relation granularity: a commit re-slices only the relations it
// touched; untouched relations share the previous snapshot's slice
// vector by shared_ptr.
#ifndef SETALG_TXN_SHARDED_H_
#define SETALG_TXN_SHARDED_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "core/schema.h"
#include "stats/stats.h"
#include "txn/snapshot.h"

namespace setalg::txn {

/// How a ShardedDatabase splits its relations.
struct ShardingOptions {
  /// Number of shards every sharded relation is split into (>= 1).
  std::size_t shards = 1;
  /// 1-based shard key column per relation. Relations absent from the
  /// map shard on column 1 (when their arity allows it — the column the
  /// grouped operators partition on); an explicit 0 keeps a relation
  /// unsharded.
  std::unordered_map<std::string, std::size_t> key_columns;
};

/// One immutable published version of a sharded head: a plain Snapshot
/// (full relations, lazy statistics) that additionally exposes the
/// per-shard slices through core::ShardedView. Full-relation statistics
/// of sharded relations are aggregated from lazily computed per-shard
/// statistics (stats::MergeShardStats), so the per-shard shapes feed the
/// same cost formulas the unsharded provider does.
class ShardedSnapshot final : public Snapshot, public core::ShardedView {
 public:
  using ShardVector = std::vector<core::Relation>;
  using ShardVectorPtr = std::shared_ptr<const ShardVector>;

  std::size_t shard_count() const override { return shard_count_; }
  std::size_t shard_key_column(const std::string& name) const override;
  const core::Relation& shard(const std::string& name,
                              std::size_t s) const override;

  /// Lazily computed statistics of shard `s` of a sharded relation; same
  /// thread-safety contract as Get(). nullptr for unsharded names.
  const stats::RelationStats* ShardStats(const std::string& name,
                                         std::size_t s) const;

  /// stats::StatsProvider: sharded relations aggregate their per-shard
  /// statistics; unsharded relations (and binary relations sharded on a
  /// column whose group profile would not merge exactly) fall back to
  /// the direct full-relation computation.
  const stats::RelationStats* Get(const std::string& name) const override;

 private:
  friend class ShardedDatabase;

  ShardedSnapshot(core::Schema schema, RelationMap relations,
                  std::unordered_map<std::string, std::uint64_t> versions,
                  std::uint64_t id, std::uint64_t version,
                  std::size_t shard_count,
                  std::unordered_map<std::string, std::size_t> key_columns,
                  std::unordered_map<std::string, ShardVectorPtr> shards)
      : Snapshot(std::move(schema), std::move(relations), std::move(versions),
                 id, version),
        shard_count_(shard_count),
        key_columns_(std::move(key_columns)),
        shards_(std::move(shards)) {}

  const stats::RelationStats* ShardStatsLocked(const std::string& name,
                                               std::size_t s) const;

  std::size_t shard_count_ = 1;
  // 1-based shard key per sharded relation; absence means unsharded.
  std::unordered_map<std::string, std::size_t> key_columns_;
  std::unordered_map<std::string, ShardVectorPtr> shards_;

  // Lazy per-shard and merged statistics (same stability argument as the
  // base snapshot's stats_: entries are inserted once, never replaced).
  mutable std::mutex shard_stats_mu_;
  mutable std::unordered_map<std::string,
                             std::vector<std::unique_ptr<stats::RelationStats>>>
      shard_stats_;
  mutable std::unordered_map<std::string, stats::RelationStats> merged_stats_;
};

/// A sharded head: same commit protocol, ids and version vectors as
/// VersionedDatabase, publishing ShardedSnapshots. Commits pay one
/// re-slice pass per touched relation so every reader gets the partition
/// pass for free.
class ShardedDatabase : public VersionedDatabase {
 public:
  ShardedDatabase(core::Schema schema, ShardingOptions options);
  ShardedDatabase(const core::Database& db, ShardingOptions options);

  /// Shards every relation on column 1 into `shards` shards.
  ShardedDatabase(const core::Database& db, std::size_t shards);

  std::size_t shard_count() const { return options_.shards; }

 protected:
  SnapshotPtr MakeSnapshot(Snapshot::RelationMap relations,
                           std::unordered_map<std::string, std::uint64_t> versions,
                           std::uint64_t version,
                           const Snapshot* prev) const override;

 private:
  /// The effective 1-based shard key of `name` (0 = unsharded).
  std::size_t KeyColumnFor(const std::string& name, std::size_t arity) const;

  ShardingOptions options_;
};

}  // namespace setalg::txn

#endif  // SETALG_TXN_SHARDED_H_
