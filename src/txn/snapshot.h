// MVCC storage: a mutable head (`VersionedDatabase`) that publishes
// immutable snapshots (`Snapshot`) by copy-on-write.
//
// The concurrency contract, in one paragraph: writers serialize on the
// head's mutex; each commit shallow-copies the head's relation map
// (shared_ptr per relation), replaces only the touched relations with
// freshly allocated copies, bumps their mutation counters, and publishes
// a new `Snapshot` under the same mutex. Readers call `snapshot()` —
// also under the mutex, a handful of instructions — and from then on
// never synchronize with anyone: a snapshot is deeply immutable, its
// relation pointers are frozen at commit time, and the shared_ptr keeps
// every relation alive for as long as any reader holds the snapshot.
// Any number of threads may therefore execute queries against the same
// (or different) snapshots while writers keep committing.
//
// Identity: the head allocates its id from the same process-wide counter
// as core::Database (`core::NextDatabaseId`), and every snapshot reports
// that head id with the per-relation mutation counters frozen at its
// commit. The (id, version vector) pair is thus a precise cache key:
// equal pairs imply byte-identical relation contents, across snapshots
// and across time — which is exactly what the shared plan cache and the
// result cache index on.
#ifndef SETALG_TXN_SNAPSHOT_H_
#define SETALG_TXN_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "core/schema.h"
#include "stats/stats.h"

namespace setalg::txn {

class Snapshot;
using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// One immutable published version of a versioned database. Implements
/// the engine's read interface (core::DatabaseView) and the planner's
/// statistics interface (stats::StatsProvider); the statistics are
/// computed lazily, once per relation per snapshot, behind a mutex — so
/// a snapshot is safe to share between any number of query threads.
class Snapshot : public core::DatabaseView, public stats::StatsProvider {
 public:
  using RelationMap =
      std::unordered_map<std::string, std::shared_ptr<const core::Relation>>;

  const core::Schema& schema() const override { return schema_; }
  const core::Relation& relation(const std::string& name) const override;

  /// The id of the head this snapshot was published from (NOT unique per
  /// snapshot — snapshots of one head share the lineage; the version
  /// vector distinguishes them).
  std::uint64_t id() const override { return id_; }
  std::uint64_t relation_version(const std::string& name) const override;

  /// Publication counter: 0 for the head's initial snapshot, +1 per
  /// commit. Strictly increasing along a head's publication order.
  std::uint64_t version() const { return version_; }

  /// The full version vector (every relation in the schema, sorted by
  /// name) — the replay key used by the differential harnesses.
  stats::VersionVector Versions() const;

  /// stats::StatsProvider: lazily computed per-relation statistics,
  /// safe to call from multiple threads concurrently. Pointers stay
  /// valid for the snapshot's lifetime (entries are never replaced:
  /// the underlying relation can not change).
  const stats::RelationStats* Get(const std::string& name) const override;

 protected:
  /// Derived snapshot kinds (txn::ShardedSnapshot) construct through here;
  /// plain snapshots are built by VersionedDatabase (a friend).
  Snapshot(core::Schema schema, RelationMap relations,
           std::unordered_map<std::string, std::uint64_t> versions,
           std::uint64_t id, std::uint64_t version)
      : schema_(std::move(schema)),
        relations_(std::move(relations)),
        versions_(std::move(versions)),
        id_(id),
        version_(version) {}

 private:
  friend class VersionedDatabase;
  friend class ShardedDatabase;  // Reads relations_/versions_ to re-slice.

  core::Schema schema_;
  RelationMap relations_;
  std::unordered_map<std::string, std::uint64_t> versions_;
  std::uint64_t id_ = 0;
  std::uint64_t version_ = 0;

  // Lazy statistics. unordered_map node storage keeps value references
  // stable across rehashes, and entries are inserted once and never
  // replaced, so a pointer returned under the mutex stays valid without
  // further locking.
  mutable std::mutex stats_mu_;
  mutable std::unordered_map<std::string, stats::RelationStats> stats_;
};

/// A set of relation replacements applied (and published) atomically:
/// readers observe either none or all of the writes of one batch.
class WriteBatch {
 public:
  /// Stages a full replacement of `name` (last write per name wins).
  void Set(std::string name, core::Relation relation);

  bool empty() const { return writes_.empty(); }

 private:
  friend class VersionedDatabase;
  std::vector<std::pair<std::string, core::Relation>> writes_;
};

/// The mutable head: accepts writes, publishes snapshots. All members
/// are thread-safe; writers serialize on an internal mutex, readers only
/// take it for the duration of a pointer copy.
///
/// Derived heads (txn::ShardedDatabase) publish richer snapshot kinds by
/// overriding MakeSnapshot; everything else — commit serialization, the
/// copy-on-write relation maps, ids and version vectors — is shared, so
/// every consumer keyed on (id, version vector) works unchanged.
class VersionedDatabase {
 public:
  explicit VersionedDatabase(core::Schema schema);

  /// Seeds the head from an existing database (relation contents are
  /// copied; the head gets a fresh lineage id and version counters
  /// starting at 0).
  explicit VersionedDatabase(const core::Database& db);

  virtual ~VersionedDatabase() = default;

  /// The lineage id shared by all snapshots of this head.
  std::uint64_t id() const { return id_; }

  /// The schema every snapshot of this head is over.
  const core::Schema& schema() const { return schema_; }

  /// The currently published snapshot. O(1); safe from any thread.
  SnapshotPtr snapshot() const;

  /// Replaces one relation and publishes. Arity must match the schema.
  SnapshotPtr SetRelation(const std::string& name, core::Relation relation);

  /// Copies the named relation, lets `fn` mutate the copy, publishes the
  /// result as a replacement. The copy-modify-publish is atomic with
  /// respect to other writers and invisible to readers until published.
  SnapshotPtr Mutate(const std::string& name,
                     const std::function<void(core::Relation&)>& fn);

  /// Applies every write of `batch` and publishes exactly one snapshot.
  SnapshotPtr Commit(WriteBatch batch);

 protected:
  /// Builds the snapshot object a commit publishes. `prev` is the
  /// snapshot being superseded (nullptr when rebuilding the head in
  /// place), so derived kinds can reuse derived state of untouched
  /// relations. Called under the head mutex; must not touch head state.
  virtual SnapshotPtr MakeSnapshot(
      Snapshot::RelationMap relations,
      std::unordered_map<std::string, std::uint64_t> versions,
      std::uint64_t version, const Snapshot* prev) const;

  /// Re-publishes the current head through MakeSnapshot at the same
  /// version. Derived-class constructors call this once: the base
  /// constructor publishes a plain Snapshot (virtual dispatch is
  /// unavailable there), and this swaps in the derived representation.
  void RepublishHead();

 private:
  SnapshotPtr PublishLocked(
      std::vector<std::pair<std::string, core::Relation>> writes);

  core::Schema schema_;
  std::uint64_t id_ = 0;

  mutable std::mutex mu_;
  SnapshotPtr head_;  // Guarded by mu_; never null after construction.
};

}  // namespace setalg::txn

#endif  // SETALG_TXN_SNAPSHOT_H_
