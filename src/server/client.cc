#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "util/str.h"

namespace setalg::server {

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

util::Result<Client> Client::Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Result<Client>::Error(
        util::StrCat("socket: ", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Result<Client>::Error(
        util::StrCat("bad host '", host, "' (want an IPv4 address)"));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return util::Result<Client>::Error(
        util::StrCat("connect to ", host, ":", port, ": ", error));
  }
  Client client;
  client.fd_ = fd;
  return client;
}

bool Client::ReadLine(std::string* line) {
  line->clear();
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

util::Result<Client::Response> Client::Roundtrip(const std::string& request_line) {
  if (fd_ < 0) return util::Result<Response>::Error("not connected");
  std::string out = request_line;
  if (out.empty() || out.back() != '\n') out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return util::Result<Response>::Error(
          util::StrCat("send: ", std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string line;
  if (!ReadLine(&line)) {
    return util::Result<Response>::Error("connection closed before response");
  }
  auto header = ParseResponseHeader(line);
  if (!header.ok()) return util::Result<Response>::Error(header.error());
  Response response;
  response.header = std::move(*header);
  for (;;) {
    if (!ReadLine(&line)) {
      return util::Result<Response>::Error("connection closed mid-response");
    }
    if (line == kTerminator) break;
    response.rows.push_back(line);
  }
  return response;
}

void Client::Close() {
  if (fd_ < 0) return;
  (void)Roundtrip("CLOSE");
  ::close(fd_);
  fd_ = -1;
}

}  // namespace setalg::server
