// The setalgd wire protocol: line-oriented, one request per line, one
// framed response per request.
//
// Requests (first word is the verb, case-sensitive):
//   QUERY <statement>           run one statement (SQL or RA text)
//   PREPARE <name> <statement>  compile + prepare under a session name
//   EXECUTE <name>              run a prepared statement
//   PING                        liveness probe
//   CLOSE                       end the session
//
// Every response is one header line, zero or more CSV data rows, and a
// terminating "." line:
//   OK rows=<n> version=<v> digest=<16 hex> cache=<outcome>   (+ n rows)
//   PREPARED <name>
//   PONG
//   BYE
//   ERR <line>:<column>: <message>
//
// Statements are dispatched on sql::LooksLikeSql: SELECT-led text goes
// through the SQL frontend (sql/analyzer.h), anything else through the
// RA expression grammar (ra/parse.h). `version` is the MVCC snapshot the
// statement ran against (txn::Snapshot::version()), `digest` the
// RelationDigest of the result — the invariant the server soak test
// leans on: equal (version, statement) implies equal digest.
#ifndef SETALG_SERVER_PROTOCOL_H_
#define SETALG_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "core/relation.h"
#include "util/result.h"

namespace setalg::server {

/// The response terminator line.
inline constexpr char kTerminator[] = ".";

/// Order-dependent FNV digest of a relation's normalized flat storage
/// (value bytes, then arity, then size). The digest raq prints in
/// --sessions mode and setalgd returns in every OK header.
std::uint64_t RelationDigest(const core::Relation& relation);

/// 16-character lowercase hex rendering of a digest.
std::string DigestToHex(std::uint64_t digest);

/// One parsed request line.
struct Request {
  enum class Kind { kQuery, kPrepare, kExecute, kPing, kClose };
  Kind kind = Kind::kPing;
  std::string name;       // PREPARE / EXECUTE target.
  std::string statement;  // QUERY / PREPARE payload.
};

/// Parses one request line. Unknown verbs and missing operands are
/// errors (the server answers ERR and keeps the session open).
util::Result<Request> ParseRequest(const std::string& line);

/// One parsed response header line.
struct ResponseHeader {
  std::string verb;  // "OK", "PREPARED", "PONG", "BYE" or "ERR".
  bool ok = false;   // True for every verb except ERR.
  std::size_t rows = 0;       // OK only.
  std::uint64_t version = 0;  // OK only.
  std::string digest;         // OK only (16 hex chars).
  std::string cache;          // OK only (CacheOutcomeToString spelling).
  std::string name;           // PREPARED only.
  std::string error;          // ERR only (located "line:column: ..." text).
};

/// Parses a response header line (the counterpart used by raq --connect
/// and the server tests).
util::Result<ResponseHeader> ParseResponseHeader(const std::string& line);

/// Header formatters — the exact lines the server writes.
std::string FormatOkHeader(std::size_t rows, std::uint64_t version,
                           std::uint64_t digest, const std::string& cache);
std::string FormatPreparedHeader(const std::string& name);
std::string FormatErrHeader(const std::string& error);

}  // namespace setalg::server

#endif  // SETALG_SERVER_PROTOCOL_H_
