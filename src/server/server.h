// setalgd's serving core: a TCP server speaking the line protocol of
// server/protocol.h over a txn::VersionedDatabase head.
//
// Concurrency model, matching the engine's documented contract
// (engine/engine.h): every connection gets its own session thread and
// its own engine::Engine (prepared handles are session-scoped and
// single-threaded), the engine-local plan cache is forced off, and all
// sessions share the process-wide SharedPlanCache / ResultCache supplied
// through EngineOptions. Each statement runs against a fresh
// head->snapshot(), so sessions never block writers and a response's
// `version` field pins exactly which published state it saw.
//
// Lifecycle: Start() binds (port 0 picks a free port — the bound port is
// returned and reported by port()), spawns the accept loop, and returns.
// Stop() is graceful and idempotent: it shuts down the listener and
// every live session socket, then joins all threads; in-flight
// statements finish and their responses are flushed first. The
// destructor calls Stop().
#ifndef SETALG_SERVER_SERVER_H_
#define SETALG_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/name_map.h"
#include "engine/planner.h"
#include "txn/snapshot.h"
#include "util/result.h"

namespace setalg::server {

class Server {
 public:
  /// `head` is the versioned database every session serves from;
  /// `options` configures the per-session engines (shared caches are
  /// created when absent; the engine-local plan cache is forced off —
  /// it is single-threaded by contract). `names` renders interned
  /// string values in CSV rows; may be null.
  Server(std::shared_ptr<txn::VersionedDatabase> head,
         engine::EngineOptions options,
         std::shared_ptr<const core::NameMap> names);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:`port` (0 = any free port), starts the accept loop
  /// and returns the bound port.
  util::Result<int> Start(int port = 0);

  /// The bound port (0 before Start succeeds).
  int port() const { return port_; }

  /// Graceful shutdown; safe to call repeatedly and from any thread
  /// other than a session thread.
  void Stop();

  /// Number of sessions accepted so far (monotonic; for tests).
  std::size_t sessions_accepted() const { return sessions_accepted_.load(); }

  /// Number of sessions not yet reaped (live connections plus finished
  /// ones awaiting the accept loop's next sweep; for tests). Bounded by
  /// the live connection count plus the finished sessions since the last
  /// accept — it does not grow with total connections served.
  std::size_t live_sessions() const;

 private:
  struct Session {
    int fd = -1;
    std::thread thread;
    /// Set (under sessions_mu_, after the fd is closed) when the session
    /// loop has returned; the accept loop reaps done sessions.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void SessionLoop(Session* session);
  /// The protocol loop proper; returns when the client hangs up, CLOSEs,
  /// a write fails, or the reader hits the line-length cap.
  void ServeSession(int fd);
  /// Joins and destroys every done session (swept from AcceptLoop).
  void ReapFinishedSessions();

  std::shared_ptr<txn::VersionedDatabase> head_;
  engine::EngineOptions options_;
  std::shared_ptr<const core::NameMap> names_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> sessions_accepted_{0};
  std::thread accept_thread_;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace setalg::server

#endif  // SETALG_SERVER_SERVER_H_
