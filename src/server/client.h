// A minimal blocking client for the setalgd wire protocol — the
// counterpart raq --connect and the server tests use. One request line
// out, one framed response (header + data rows + ".") back.
#ifndef SETALG_SERVER_CLIENT_H_
#define SETALG_SERVER_CLIENT_H_

#include <string>
#include <vector>

#include "server/protocol.h"
#include "util/result.h"

namespace setalg::server {

class Client {
 public:
  /// One complete server response.
  struct Response {
    ResponseHeader header;
    std::vector<std::string> rows;  // CSV data rows (OK responses only).
  };

  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `host`:`port` (host is a dotted-quad or "localhost").
  static util::Result<Client> Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }

  /// Sends one request line and reads the full framed response.
  /// Transport failures (send/recv) come back as errors; protocol-level
  /// failures come back as an ok Result with header.ok == false.
  util::Result<Response> Roundtrip(const std::string& request_line);

  /// Sends CLOSE (ignoring the BYE) and closes the socket.
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  // recv carry-over between lines.

  bool ReadLine(std::string* line);
};

}  // namespace setalg::server

#endif  // SETALG_SERVER_CLIENT_H_
