#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/csv.h"
#include "engine/engine.h"
#include "engine/result_cache.h"
#include "engine/shared_cache.h"
#include "ra/parse.h"
#include "server/protocol.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "util/str.h"

namespace setalg::server {
namespace {

/// Longest accepted request line. A client that streams more than this
/// without a newline gets "ERR line too long" and is disconnected — the
/// per-session read buffer stays bounded no matter what arrives.
constexpr std::size_t kMaxLineBytes = std::size_t{1} << 20;  // 1 MiB

/// Writes the whole buffer, swallowing EPIPE (a client that hung up
/// mid-response just ends the session). Retries on EINTR.
bool WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Buffered line reader over a socket; lines are '\n'-terminated,
/// carriage returns stripped. Lines are capped at kMaxLineBytes:
/// ReadLine then fails with overflowed() set and the caller drops the
/// connection.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool ReadLine(std::string* line) {
    line->clear();
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      if (buffer_.size() > kMaxLineBytes) {
        overflowed_ = true;
        return false;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the last ReadLine failed because the line-length cap was
  /// exceeded (rather than EOF or a socket error).
  bool overflowed() const { return overflowed_; }

 private:
  int fd_;
  std::string buffer_;
  bool overflowed_ = false;
};

}  // namespace

Server::Server(std::shared_ptr<txn::VersionedDatabase> head,
               engine::EngineOptions options,
               std::shared_ptr<const core::NameMap> names)
    : head_(std::move(head)), options_(std::move(options)), names_(std::move(names)) {
  // Per the engine's thread-safety contract: the engine-local plan cache
  // is single-threaded, so concurrent serving goes through the shared
  // caches instead.
  options_.plan_cache_entries = 0;
  if (options_.shared_plan_cache == nullptr) {
    options_.shared_plan_cache = std::make_shared<engine::SharedPlanCache>(256, 0);
  }
  if (options_.result_cache == nullptr) {
    options_.result_cache =
        std::make_shared<engine::ResultCache>(256, std::size_t{64} << 20);
  }
}

Server::~Server() { Stop(); }

util::Result<int> Server::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Result<int>::Error(
        util::StrCat("socket: ", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Result<int>::Error(util::StrCat("bind: ", std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Result<int>::Error(util::StrCat("listen: ", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void Server::Stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Unblock accept(), then every session's recv(); the loops observe the
  // shutdown and exit after flushing their in-flight response. Sessions
  // that already finished closed their own fd (fd == -1).
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (session->fd >= 0) ::shutdown(session->fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
    if (session->fd >= 0) ::close(session->fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

std::size_t Server::live_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

void Server::ReapFinishedSessions() {
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto keep = sessions_.begin();
    for (auto& session : sessions_) {
      if (session->done.load()) {
        finished.push_back(std::move(session));
      } else {
        *keep++ = std::move(session);
      }
    }
    sessions_.erase(keep, sessions_.end());
  }
  // done == true means the loop already released sessions_mu_ and is
  // about to return, so these joins do not block on session work.
  for (auto& session : finished) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void Server::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && running_.load()) continue;
      if (!running_.load()) break;
      continue;
    }
    // Sweep finished sessions on every accept so the session list tracks
    // live connections instead of total connections served.
    ReapFinishedSessions();
    sessions_accepted_.fetch_add(1);
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    sessions_.push_back(std::move(session));
    raw->thread = std::thread([this, raw] { SessionLoop(raw); });
  }
}

void Server::SessionLoop(Session* session) {
  ServeSession(session->fd);
  // Close under sessions_mu_ so Stop() never shuts down a closed (and
  // possibly reused) descriptor; mark done last so the reaper only sees
  // sessions whose fd is already released.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  ::close(session->fd);
  session->fd = -1;
  session->done.store(true);
}

void Server::ServeSession(int fd) {
  // One engine per session: prepared handles are session-scoped, and the
  // shared caches (copied into options_) do the cross-session sharing.
  const engine::Engine engine(options_);
  std::unordered_map<std::string, engine::PreparedQuery> prepared;
  LineReader reader(fd);
  std::string line;

  const auto respond_error = [&](const std::string& message) {
    return WriteAll(fd, util::StrCat(FormatErrHeader(message), "\n",
                                     kTerminator, "\n"));
  };
  const auto compile = [&](const std::string& statement,
                           const core::Schema& schema) {
    return sql::LooksLikeSql(statement) ? sql::Compile(statement, schema)
                                        : ra::Parse(statement, schema);
  };

  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    auto request = ParseRequest(line);
    if (!request.ok()) {
      if (!respond_error(request.error())) break;
      continue;
    }
    switch (request->kind) {
      case Request::Kind::kPing:
        if (!WriteAll(fd, util::StrCat("PONG\n", kTerminator, "\n"))) return;
        continue;
      case Request::Kind::kClose:
        WriteAll(fd, util::StrCat("BYE\n", kTerminator, "\n"));
        return;
      case Request::Kind::kPrepare: {
        const txn::SnapshotPtr snapshot = head_->snapshot();
        auto expr = compile(request->statement, snapshot->schema());
        if (!expr.ok()) {
          if (!respond_error(expr.error())) return;
          continue;
        }
        auto handle = engine.Prepare(*expr, *snapshot);
        if (!handle.ok()) {
          if (!respond_error(handle.error())) return;
          continue;
        }
        prepared[request->name] = std::move(*handle);
        if (!WriteAll(fd, util::StrCat(FormatPreparedHeader(request->name), "\n",
                                       kTerminator, "\n"))) {
          return;
        }
        continue;
      }
      case Request::Kind::kQuery:
      case Request::Kind::kExecute: {
        const txn::SnapshotPtr snapshot = head_->snapshot();
        util::Result<engine::RunResult> run =
            util::Result<engine::RunResult>::Error("unreachable");
        if (request->kind == Request::Kind::kQuery) {
          auto expr = compile(request->statement, snapshot->schema());
          if (!expr.ok()) {
            if (!respond_error(expr.error())) return;
            continue;
          }
          run = engine.Run(*expr, *snapshot);
        } else {
          const auto it = prepared.find(request->name);
          if (it == prepared.end()) {
            if (!respond_error(util::StrCat("no prepared statement named '",
                                            request->name, "'"))) {
              return;
            }
            continue;
          }
          run = engine.Run(it->second, *snapshot);
        }
        if (!run.ok()) {
          if (!respond_error(run.error())) return;
          continue;
        }
        std::string response = FormatOkHeader(
            run->relation.size(), snapshot->version(),
            RelationDigest(run->relation),
            engine::CacheOutcomeToString(run->stats.cache));
        response += "\n";
        response += core::WriteRelationCsv(run->relation, names_.get());
        response += kTerminator;
        response += "\n";
        if (!WriteAll(fd, response)) return;
        continue;
      }
    }
  }
  if (reader.overflowed()) {
    // Best effort — the connection is dropped either way, keeping the
    // read buffer bounded at kMaxLineBytes per session.
    respond_error("line too long");
  }
}

}  // namespace setalg::server
