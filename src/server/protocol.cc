#include "server/protocol.h"

#include <cctype>
#include <cstdio>
#include <optional>

#include "core/value.h"
#include "util/hash.h"
#include "util/str.h"

namespace setalg::server {
namespace {

/// Splits off the first whitespace-delimited word of `text` starting at
/// `*pos`; advances `*pos` past it and any following spaces.
std::string NextWord(const std::string& text, std::size_t* pos) {
  while (*pos < text.size() && std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
  const std::size_t start = *pos;
  while (*pos < text.size() && !std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
  std::string word = text.substr(start, *pos - start);
  while (*pos < text.size() && std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
  return word;
}

/// Value of a "key=value" field, or nullopt when the key does not match.
/// A present key with an empty value ("digest=") returns an empty string
/// — distinct from nullopt, so callers can report it precisely instead
/// of misfiling the word as an unknown field.
std::optional<std::string> FieldValue(const std::string& word, const char* key) {
  const std::size_t n = std::string(key).size();
  if (word.size() >= n + 1 && word.compare(0, n, key) == 0 && word[n] == '=') {
    return word.substr(n + 1);
  }
  return std::nullopt;
}

}  // namespace

std::uint64_t RelationDigest(const core::Relation& relation) {
  std::uint64_t h = util::FnvHashBytes(relation.flat().data(),
                                       relation.flat().size() * sizeof(core::Value));
  h = util::HashCombine(h, relation.arity());
  return util::HashCombine(h, relation.size());
}

std::string DigestToHex(std::uint64_t digest) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buffer);
}

util::Result<Request> ParseRequest(const std::string& line) {
  std::size_t pos = 0;
  const std::string verb = NextWord(line, &pos);
  Request request;
  if (verb == "QUERY") {
    request.kind = Request::Kind::kQuery;
    request.statement = line.substr(pos);
    if (request.statement.empty()) {
      return util::Result<Request>::Error("QUERY needs a statement");
    }
    return request;
  }
  if (verb == "PREPARE") {
    request.kind = Request::Kind::kPrepare;
    request.name = NextWord(line, &pos);
    request.statement = line.substr(pos);
    if (request.name.empty() || request.statement.empty()) {
      return util::Result<Request>::Error("PREPARE needs a name and a statement");
    }
    return request;
  }
  if (verb == "EXECUTE") {
    request.kind = Request::Kind::kExecute;
    request.name = NextWord(line, &pos);
    if (request.name.empty() || pos < line.size()) {
      return util::Result<Request>::Error("EXECUTE needs exactly one name");
    }
    return request;
  }
  if (verb == "PING") {
    request.kind = Request::Kind::kPing;
    return request;
  }
  if (verb == "CLOSE") {
    request.kind = Request::Kind::kClose;
    return request;
  }
  return util::Result<Request>::Error(
      util::StrCat("unknown request verb '", verb,
                   "' (want QUERY, PREPARE, EXECUTE, PING or CLOSE)"));
}

util::Result<ResponseHeader> ParseResponseHeader(const std::string& line) {
  std::size_t pos = 0;
  ResponseHeader header;
  header.verb = NextWord(line, &pos);
  if (header.verb == "OK") {
    header.ok = true;
    while (pos < line.size()) {
      const std::string word = NextWord(line, &pos);
      if (auto v = FieldValue(word, "rows")) {
        long long rows = 0;
        if (!util::ParseInt64(*v, &rows) || rows < 0) {
          return util::Result<ResponseHeader>::Error(
              util::StrCat("bad rows field '", word, "'"));
        }
        header.rows = static_cast<std::size_t>(rows);
      } else if (auto v2 = FieldValue(word, "version")) {
        long long version = 0;
        if (!util::ParseInt64(*v2, &version) || version < 0) {
          return util::Result<ResponseHeader>::Error(
              util::StrCat("bad version field '", word, "'"));
        }
        header.version = static_cast<std::uint64_t>(version);
      } else if (auto v3 = FieldValue(word, "digest")) {
        if (v3->empty()) {
          return util::Result<ResponseHeader>::Error(
              util::StrCat("empty digest field '", word, "'"));
        }
        header.digest = *v3;
      } else if (auto v4 = FieldValue(word, "cache")) {
        if (v4->empty()) {
          return util::Result<ResponseHeader>::Error(
              util::StrCat("empty cache field '", word, "'"));
        }
        header.cache = *v4;
      } else {
        return util::Result<ResponseHeader>::Error(
            util::StrCat("unknown OK field '", word, "'"));
      }
    }
    return header;
  }
  if (header.verb == "PREPARED") {
    header.ok = true;
    header.name = NextWord(line, &pos);
    if (header.name.empty()) {
      return util::Result<ResponseHeader>::Error("PREPARED without a name");
    }
    return header;
  }
  if (header.verb == "PONG" || header.verb == "BYE") {
    header.ok = true;
    return header;
  }
  if (header.verb == "ERR") {
    header.ok = false;
    header.error = line.substr(pos);
    return header;
  }
  return util::Result<ResponseHeader>::Error(
      util::StrCat("unrecognized response header '", line, "'"));
}

std::string FormatOkHeader(std::size_t rows, std::uint64_t version,
                           std::uint64_t digest, const std::string& cache) {
  return util::StrCat("OK rows=", rows, " version=", version,
                      " digest=", DigestToHex(digest), " cache=", cache);
}

std::string FormatPreparedHeader(const std::string& name) {
  return util::StrCat("PREPARED ", name);
}

std::string FormatErrHeader(const std::string& error) {
  // Keep the response single-line whatever the message contains.
  std::string flat = error;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return util::StrCat("ERR ", flat);
}

}  // namespace setalg::server
