// The extended relational algebra of the paper's Section 5: grouping (γ)
// with count aggregation and sorting, and the *linear* division
// expressions they enable:
//
//   containment-division:
//     π_A( γ_{A,count(B)}(R ⋈_{B=C} S)  ⋈_{count(B)=count(C)}  γ_{∅,count(C)}(S) )
//
// Every step's output is at most linear in its input, so the pipeline's
// intermediate sizes stay O(n) — in contrast with Theorem 17/Prop. 26,
// which show plain RA cannot do this. Each building block is exposed, and
// the pipelines record per-step cardinalities for the experiments.
#ifndef SETALG_EXTALG_EXTENDED_H_
#define SETALG_EXTALG_EXTENDED_H_

#include <string>
#include <vector>

#include "core/relation.h"

namespace setalg::extalg {

/// γ_{group_columns, count(*)}: groups the input by the given (1-based)
/// columns and appends the group cardinality as a new last column. With an
/// empty column list this is the global count γ_{∅,count} (arity-1 output).
core::Relation GroupCount(const core::Relation& input,
                          const std::vector<std::size_t>& group_columns);

/// Sort operator: returns the input's tuples ordered by the given columns
/// (our relations are canonically sorted sets, so this materializes the
/// projection-compatible reordering — exposed mainly to mirror the paper's
/// "grouping, sorting and aggregation" operator set).
core::Relation SortBy(const core::Relation& input,
                      const std::vector<std::size_t>& columns);

/// One pipeline step's instrumentation.
struct StepStats {
  std::string name;
  std::size_t output_size = 0;
};

/// The Section 5 linear containment-division: R(A,B) ÷⊇ S(B).
/// Steps recorded (when `stats` non-null): semijoin-filtered join,
/// per-group count, global divisor count, count-match selection.
core::Relation ContainmentDivisionLinear(const core::Relation& r,
                                         const core::Relation& s,
                                         std::vector<StepStats>* stats = nullptr);

/// The analogous linear equality-division (paper's remark after the
/// containment expression, following Graefe–Cole): additionally the total
/// group count must equal |S|.
core::Relation EqualityDivisionLinear(const core::Relation& r,
                                      const core::Relation& s,
                                      std::vector<StepStats>* stats = nullptr);

/// Max step output across the pipeline (the extended-algebra analogue of
/// Definition 16's c(E')).
std::size_t MaxStepSize(const std::vector<StepStats>& stats);

}  // namespace setalg::extalg

#endif  // SETALG_EXTALG_EXTENDED_H_
