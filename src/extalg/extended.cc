#include "extalg/extended.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace setalg::extalg {

using core::Relation;
using core::Tuple;
using core::TupleView;
using core::Value;

core::Relation GroupCount(const core::Relation& input,
                          const std::vector<std::size_t>& group_columns) {
  for (std::size_t c : group_columns) {
    SETALG_CHECK(c >= 1 && c <= input.arity());
  }
  std::map<Tuple, std::size_t> counts;
  Tuple key(group_columns.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    TupleView t = input.tuple(i);
    for (std::size_t k = 0; k < group_columns.size(); ++k) {
      key[k] = t[group_columns[k] - 1];
    }
    ++counts[key];
  }
  Relation out(group_columns.size() + 1);
  if (group_columns.empty()) {
    // Global aggregate: defined even on empty input (count 0).
    out.Add({static_cast<Value>(input.size())});
    return out;
  }
  Tuple row(group_columns.size() + 1);
  for (const auto& [group, count] : counts) {
    std::copy(group.begin(), group.end(), row.begin());
    row.back() = static_cast<Value>(count);
    out.Add(row);
  }
  return out;
}

core::Relation SortBy(const core::Relation& input,
                      const std::vector<std::size_t>& columns) {
  for (std::size_t c : columns) {
    SETALG_CHECK(c >= 1 && c <= input.arity());
  }
  // Set semantics make the sort a no-op on contents; returning a copy keeps
  // the operator total and the pipeline uniform.
  return input;
}

namespace {

// Appends a step record.
void Record(std::vector<StepStats>* stats, const char* name, const Relation& r) {
  if (stats != nullptr) stats->push_back({name, r.size()});
}

// R ⋈_{B=C} S for binary R and unary S: keeps the R pairs whose element is
// in the divisor. Linear via a hash set.
Relation FilterByDivisor(const Relation& r, const Relation& s) {
  std::unordered_set<Value> divisor;
  divisor.reserve(s.size() * 2);
  for (std::size_t i = 0; i < s.size(); ++i) divisor.insert(s.tuple(i)[0]);
  Relation out(2);
  for (std::size_t i = 0; i < r.size(); ++i) {
    TupleView t = r.tuple(i);
    if (divisor.count(t[1]) > 0) out.Add(t);
  }
  return out;
}

}  // namespace

core::Relation ContainmentDivisionLinear(const core::Relation& r,
                                         const core::Relation& s,
                                         std::vector<StepStats>* stats) {
  SETALG_CHECK_EQ(r.arity(), 2u);
  SETALG_CHECK_EQ(s.arity(), 1u);
  // Step 1: R ⋈_{B=C} S — each R tuple joins at most one divisor value.
  Relation joined = FilterByDivisor(r, s);
  Record(stats, "join R with S", joined);
  // Step 2: γ_{A,count(B)} over the join.
  Relation per_group = GroupCount(joined, {1});
  Record(stats, "gamma A,count(B)", per_group);
  // Step 3: γ_{∅,count(C)}(S).
  Relation total = GroupCount(s, {});
  Record(stats, "gamma count(C) of S", total);
  // Step 4: join on count equality and project A.
  const Value divisor_size = total.tuple(0)[0];
  Relation out(1);
  for (std::size_t i = 0; i < per_group.size(); ++i) {
    TupleView t = per_group.tuple(i);
    if (t[1] == divisor_size) out.Add({t[0]});
  }
  Record(stats, "count-match and project A", out);
  if (divisor_size == 0) {
    // ÷ by the empty set: every candidate qualifies (vacuous containment).
    Relation all(1);
    for (std::size_t i = 0; i < r.size(); ++i) all.Add({r.tuple(i)[0]});
    return all;
  }
  return out;
}

core::Relation EqualityDivisionLinear(const core::Relation& r,
                                      const core::Relation& s,
                                      std::vector<StepStats>* stats) {
  SETALG_CHECK_EQ(r.arity(), 2u);
  SETALG_CHECK_EQ(s.arity(), 1u);
  Relation joined = FilterByDivisor(r, s);
  Record(stats, "join R with S", joined);
  Relation matched_counts = GroupCount(joined, {1});
  Record(stats, "gamma A,count(matched B)", matched_counts);
  Relation group_counts = GroupCount(r, {1});
  Record(stats, "gamma A,count(all B)", group_counts);
  Relation total = GroupCount(s, {});
  Record(stats, "gamma count(C) of S", total);
  const Value divisor_size = total.tuple(0)[0];

  // Equality needs matched == |S| and total == |S|; merge the two grouped
  // counts (both sorted by A).
  std::unordered_map<Value, Value> totals;
  totals.reserve(group_counts.size() * 2);
  for (std::size_t i = 0; i < group_counts.size(); ++i) {
    TupleView t = group_counts.tuple(i);
    totals[t[0]] = t[1];
  }
  Relation out(1);
  for (std::size_t i = 0; i < matched_counts.size(); ++i) {
    TupleView t = matched_counts.tuple(i);
    if (t[1] == divisor_size && totals[t[0]] == divisor_size) out.Add({t[0]});
  }
  Record(stats, "count-match both and project A", out);
  return out;
}

std::size_t MaxStepSize(const std::vector<StepStats>& stats) {
  std::size_t max_size = 0;
  for (const auto& step : stats) max_size = std::max(max_size, step.output_size);
  return max_size;
}

}  // namespace setalg::extalg
