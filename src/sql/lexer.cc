#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "util/str.h"

namespace setalg::sql {
namespace {

// The keyword set of the supported subset. Anything else that lexes as a
// word is an identifier.
const std::unordered_set<std::string>& Keywords() {
  static const auto* keywords = new std::unordered_set<std::string>{
      "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "NOT", "EXISTS",
      "IN",     "UNION",    "EXCEPT", "INTERSECT",
  };
  return *keywords;
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

std::string LocatedError(std::size_t line, std::size_t column,
                         const std::string& message) {
  return util::StrCat(line, ":", column, ": ", message);
}

bool ParseErrorLocation(const std::string& error, std::size_t* line,
                        std::size_t* column) {
  std::size_t i = 0;
  std::size_t l = 0;
  while (i < error.size() && std::isdigit(static_cast<unsigned char>(error[i]))) {
    l = l * 10 + static_cast<std::size_t>(error[i] - '0');
    ++i;
  }
  if (i == 0 || i >= error.size() || error[i] != ':') return false;
  std::size_t j = ++i;
  std::size_t c = 0;
  while (j < error.size() && std::isdigit(static_cast<unsigned char>(error[j]))) {
    c = c * 10 + static_cast<std::size_t>(error[j] - '0');
    ++j;
  }
  if (j == i || j >= error.size() || error[j] != ':') return false;
  if (line != nullptr) *line = l;
  if (column != nullptr) *column = c;
  return true;
}

util::Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;
  const auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k, ++i) {
      if (text[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    Token token;
    token.line = line;
    token.column = column;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) || text[j] == '_')) {
        ++j;
      }
      token.text = text.substr(i, j - i);
      const std::string upper = Upper(token.text);
      if (Keywords().count(upper) > 0) {
        token.kind = TokenKind::kKeyword;
        token.text = upper;
      } else {
        token.kind = TokenKind::kIdent;
      }
      advance(j - i);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < text.size() &&
                std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t j = i + 1;
      while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      long long value = 0;
      if (!util::ParseInt64(text.substr(i, j - i), &value)) {
        return util::Result<std::vector<Token>>::Error(
            LocatedError(line, column, util::StrCat("integer literal '",
                                                    text.substr(i, j - i),
                                                    "' out of range")));
      }
      token.kind = TokenKind::kNumber;
      token.number = static_cast<core::Value>(value);
      token.text = text.substr(i, j - i);
      advance(j - i);
    } else {
      switch (c) {
        case ',': token.kind = TokenKind::kComma; token.text = ","; advance(1); break;
        case '.': token.kind = TokenKind::kDot; token.text = "."; advance(1); break;
        case '(': token.kind = TokenKind::kLParen; token.text = "("; advance(1); break;
        case ')': token.kind = TokenKind::kRParen; token.text = ")"; advance(1); break;
        case '*': token.kind = TokenKind::kStar; token.text = "*"; advance(1); break;
        case '=': token.kind = TokenKind::kEq; token.text = "="; advance(1); break;
        case '<':
          if (i + 1 < text.size() && text[i + 1] == '>') {
            token.kind = TokenKind::kNeq;
            token.text = "<>";
            advance(2);
          } else {
            token.kind = TokenKind::kLt;
            token.text = "<";
            advance(1);
          }
          break;
        case '>': token.kind = TokenKind::kGt; token.text = ">"; advance(1); break;
        case '!':
          if (i + 1 < text.size() && text[i + 1] == '=') {
            token.kind = TokenKind::kNeq;
            token.text = "!=";
            advance(2);
          } else {
            return util::Result<std::vector<Token>>::Error(
                LocatedError(line, column, "stray '!' (did you mean '!='?)"));
          }
          break;
        default:
          return util::Result<std::vector<Token>>::Error(LocatedError(
              line, column,
              util::StrCat("unexpected character '", std::string(1, c), "'")));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.text = "<end of statement>";
  end.line = line;
  end.column = column;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace setalg::sql
