// Semantic analysis: resolves a parsed SQL query against a core::Schema
// and lowers it to a ra::ExprPtr, so every planner rewrite (division
// pattern, semijoin projection, AGM-routed multiway chains) applies to
// SQL exactly as it does to hand-built algebra trees.
//
// The lowering is deterministic and documented here because the workload
// generator (workload/generators.h) mirrors it independently — the
// differential fuzz harness in tests/sql_test.cc asserts the two agree
// structurally, query by query:
//
//   1. Each FROM table becomes a scan; the table's single-table WHERE
//      conjuncts apply to it in WHERE order:
//        ci = cj   -> sigma_{i=j}         ci < cj  -> sigma_{i<j}
//        ci > cj   -> sigma_{j<i}         ci <> cj -> E - sigma_{i=j}(E)
//        ci = k    -> sigma_{i='k'} (the tag/select/project composite)
//        ci <> k   -> E - sigma_{i='k'}(E)
//        ci < k    -> pi_{1..n}(sigma_{i<n+1}(tag_k(E)))
//        ci > k    -> pi_{1..n}(sigma_{n+1<i}(tag_k(E)))
//   2. The FROM list joins left-deep in FROM order. A cross-table
//      conjunct becomes a join atom at the join that brings in the later
//      table (atoms in WHERE order, oriented earlier-table-left; the left
//      index is the column's offset in the accumulated tuple).
//   3. Subquery conjuncts apply after the join tree, in WHERE order:
//        EXISTS (sub)      -> E semijoin_theta sub
//        NOT EXISTS (sub)  -> E - (E semijoin_theta sub)
//        c [NOT] IN (sub)  -> same with theta = {c = 1} (sub arity 1)
//      where theta for EXISTS is the subquery's correlated conjuncts (in
//      the subquery's WHERE order, oriented outer-left, both sides as
//      offsets into the respective FROM-concatenated tuples). Correlated
//      references reach the immediately enclosing SELECT only.
//   4. The select list becomes a final projection (SELECT * adds none).
//      DISTINCT is a no-op: the algebra is set-semantics throughout.
//   5. UNION -> union, EXCEPT -> difference, and
//      INTERSECT(l, r) -> l - (l - r).
//
// One family is recognized before the generic rules: the FOR ALL-style
// double-NOT-EXISTS division idiom
//
//   SELECT r.c1 FROM R r WHERE NOT EXISTS (SELECT * FROM S s
//     WHERE NOT EXISTS (SELECT * FROM R r2
//       WHERE r2.c1 = r.c1 AND r2.c2 = s.c1))
//
// (R binary, S unary; the inner correlation legitimately spans two
// levels) lowers to the textbook division pattern
// pi_1(R) - pi_1((pi_1(R) x S) - R), which the planner's division rewrite
// then routes to the direct sub-quadratic operator.
//
// Errors are located ("line:column: message"), never aborts: unknown
// tables/columns, ambiguous bare columns, arity mismatches in set
// operations, non-unary IN subqueries, and correlations deeper than one
// level all come back as Result errors.
#ifndef SETALG_SQL_ANALYZER_H_
#define SETALG_SQL_ANALYZER_H_

#include <string>

#include "core/schema.h"
#include "ra/expr.h"
#include "sql/ast.h"
#include "util/result.h"

namespace setalg::sql {

/// Lowers a parsed query against `schema`.
util::Result<ra::ExprPtr> Lower(const Query& query, const core::Schema& schema);

/// Parse + Lower in one call — the entry point raq and setalgd use.
util::Result<ra::ExprPtr> Compile(const std::string& text,
                                  const core::Schema& schema);

}  // namespace setalg::sql

#endif  // SETALG_SQL_ANALYZER_H_
