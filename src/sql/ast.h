// Parse tree for the SQL subset — the parser's output, the analyzer's
// input (sql/parser.h, sql/analyzer.h).
//
// Column naming convention: a relation of arity k exposes the positional
// columns c1..ck (the core schema stores names and arities only, so column
// identity is positional by construction). References are `alias.cN` or,
// when exactly one table is in scope, a bare `cN`.
#ifndef SETALG_SQL_AST_H_
#define SETALG_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "core/value.h"
#include "ra/expr.h"

namespace setalg::sql {

/// `alias.cN` or bare `cN` (qualifier empty). Position of the reference's
/// first token, for located analysis errors.
struct ColumnRef {
  std::string qualifier;  // Table alias; empty for an unqualified reference.
  std::string column;     // As written, e.g. "c2"; decoded by the analyzer.
  std::size_t line = 1;
  std::size_t column_pos = 1;
};

/// One FROM entry `Table [alias]`; the alias defaults to the table name.
struct TableRef {
  std::string table;
  std::string alias;
  std::size_t line = 1;
  std::size_t column_pos = 1;
};

struct Query;
using QueryPtr = std::unique_ptr<Query>;

/// One WHERE conjunct. The parser normalizes literal comparisons so the
/// column is always on the left (mirroring the operator as needed).
struct Predicate {
  enum class Kind {
    kColumnColumn,  // lhs op rhs
    kColumnConst,   // lhs op constant
    kIn,            // lhs [NOT] IN (subquery)
    kExists,        // [NOT] EXISTS (subquery)
  };
  Kind kind = Kind::kColumnColumn;
  bool negated = false;  // NOT IN / NOT EXISTS.
  ColumnRef lhs;
  ColumnRef rhs;
  ra::Cmp op = ra::Cmp::kEq;
  core::Value constant = 0;
  QueryPtr subquery;
  std::size_t line = 1;
  std::size_t column_pos = 1;
};

/// SELECT [DISTINCT] cols FROM tables [WHERE conjuncts].
struct Select {
  bool distinct = false;
  bool select_star = false;         // SELECT * — no projection applied.
  std::vector<ColumnRef> columns;   // Empty iff select_star.
  std::vector<TableRef> from;
  std::vector<Predicate> where;
  std::size_t line = 1;
  std::size_t column_pos = 1;
};

/// A query term tree: a Select leaf, or a left-associative set operation
/// over two subtrees (UNION / EXCEPT / INTERSECT; arities must agree).
struct Query {
  enum class Op { kSelect, kUnion, kExcept, kIntersect };
  Op op = Op::kSelect;
  std::unique_ptr<Select> select;  // kSelect payload.
  QueryPtr left;                   // Set-operation payloads.
  QueryPtr right;
  std::size_t line = 1;
  std::size_t column_pos = 1;
};

}  // namespace setalg::sql

#endif  // SETALG_SQL_AST_H_
