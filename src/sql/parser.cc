#include "sql/parser.h"

#include <cctype>
#include <utility>

#include "sql/lexer.h"
#include "util/str.h"

namespace setalg::sql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Result<QueryPtr> ParseStatement() {
    auto query = ParseQuery();
    if (!query.ok()) return query;
    if (Peek().kind != TokenKind::kEnd) {
      return Err(Peek(), util::StrCat("unexpected '", Peek().text,
                                      "' after the end of the query"));
    }
    return query;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return tokens_[i < tokens_.size() ? i : tokens_.size() - 1];
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool AtKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }
  bool EatKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    Next();
    return true;
  }
  bool Eat(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Next();
    return true;
  }

  static util::Result<QueryPtr> Err(const Token& at, const std::string& message) {
    return util::Result<QueryPtr>::Error(LocatedError(at.line, at.column, message));
  }

  util::Result<QueryPtr> Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Err(Peek(), util::StrCat("expected ", what, ", got '", Peek().text, "'"));
    }
    Next();
    return QueryPtr();  // Dummy ok value; callers only check ok().
  }

  util::Result<QueryPtr> ParseQuery() {
    auto left = ParseTerm();
    if (!left.ok()) return left;
    QueryPtr tree = std::move(*left);
    for (;;) {
      Query::Op op;
      if (AtKeyword("UNION")) {
        op = Query::Op::kUnion;
      } else if (AtKeyword("EXCEPT")) {
        op = Query::Op::kExcept;
      } else if (AtKeyword("INTERSECT")) {
        op = Query::Op::kIntersect;
      } else {
        break;
      }
      const Token& op_token = Next();
      auto right = ParseTerm();
      if (!right.ok()) return right;
      auto node = std::make_unique<Query>();
      node->op = op;
      node->left = std::move(tree);
      node->right = std::move(*right);
      node->line = op_token.line;
      node->column_pos = op_token.column;
      tree = std::move(node);
    }
    return tree;
  }

  util::Result<QueryPtr> ParseTerm() {
    if (Peek().kind == TokenKind::kLParen) {
      Next();
      auto inner = ParseQuery();
      if (!inner.ok()) return inner;
      auto close = Expect(TokenKind::kRParen, "')'");
      if (!close.ok()) return close;
      return inner;
    }
    return ParseSelect();
  }

  util::Result<QueryPtr> ParseSelect() {
    if (!AtKeyword("SELECT")) {
      return Err(Peek(), util::StrCat("expected SELECT, got '", Peek().text, "'"));
    }
    const Token& select_token = Next();
    auto select = std::make_unique<Select>();
    select->line = select_token.line;
    select->column_pos = select_token.column;
    select->distinct = EatKeyword("DISTINCT");

    if (Eat(TokenKind::kStar)) {
      select->select_star = true;
    } else {
      for (;;) {
        auto column = ParseColumnRef();
        if (!column.ok()) return util::Result<QueryPtr>::Error(column.error());
        select->columns.push_back(std::move(*column));
        if (!Eat(TokenKind::kComma)) break;
      }
    }

    if (!EatKeyword("FROM")) {
      return Err(Peek(), util::StrCat("expected FROM, got '", Peek().text, "'"));
    }
    for (;;) {
      if (Peek().kind != TokenKind::kIdent) {
        return Err(Peek(),
                   util::StrCat("expected a table name, got '", Peek().text, "'"));
      }
      const Token& table = Next();
      TableRef ref;
      ref.table = table.text;
      ref.alias = table.text;
      ref.line = table.line;
      ref.column_pos = table.column;
      if (Peek().kind == TokenKind::kIdent) {
        ref.alias = Next().text;
      }
      select->from.push_back(std::move(ref));
      if (!Eat(TokenKind::kComma)) break;
    }

    if (EatKeyword("WHERE")) {
      for (;;) {
        auto conjunct = ParseConjunct();
        if (!conjunct.ok()) return util::Result<QueryPtr>::Error(conjunct.error());
        select->where.push_back(std::move(*conjunct));
        if (!EatKeyword("AND")) break;
      }
    }

    auto query = std::make_unique<Query>();
    query->op = Query::Op::kSelect;
    query->line = select->line;
    query->column_pos = select->column_pos;
    query->select = std::move(select);
    return QueryPtr(std::move(query));
  }

  util::Result<ColumnRef> ParseColumnRef() {
    if (Peek().kind != TokenKind::kIdent) {
      return util::Result<ColumnRef>::Error(LocatedError(
          Peek().line, Peek().column,
          util::StrCat("expected a column reference, got '", Peek().text, "'")));
    }
    const Token& first = Next();
    ColumnRef ref;
    ref.line = first.line;
    ref.column_pos = first.column;
    if (Eat(TokenKind::kDot)) {
      if (Peek().kind != TokenKind::kIdent) {
        return util::Result<ColumnRef>::Error(LocatedError(
            Peek().line, Peek().column,
            util::StrCat("expected a column name after '", first.text, ".', got '",
                         Peek().text, "'")));
      }
      ref.qualifier = first.text;
      ref.column = Next().text;
    } else {
      ref.column = first.text;
    }
    return ref;
  }

  util::Result<ra::Cmp> ParseCmp() {
    switch (Peek().kind) {
      case TokenKind::kEq: Next(); return ra::Cmp::kEq;
      case TokenKind::kNeq: Next(); return ra::Cmp::kNeq;
      case TokenKind::kLt: Next(); return ra::Cmp::kLt;
      case TokenKind::kGt: Next(); return ra::Cmp::kGt;
      default:
        return util::Result<ra::Cmp>::Error(LocatedError(
            Peek().line, Peek().column,
            util::StrCat("expected a comparison operator, got '", Peek().text, "'")));
    }
  }

  util::Result<Predicate> ParseConjunct() {
    Predicate pred;
    pred.line = Peek().line;
    pred.column_pos = Peek().column;

    // [NOT] EXISTS (query)
    const bool not_prefix = AtKeyword("NOT");
    if (not_prefix && Peek(1).kind == TokenKind::kKeyword && Peek(1).text == "EXISTS") {
      Next();
    }
    if (AtKeyword("EXISTS")) {
      Next();
      pred.kind = Predicate::Kind::kExists;
      pred.negated = not_prefix;
      auto sub = ParseParenQuery();
      if (!sub.ok()) return util::Result<Predicate>::Error(sub.error());
      pred.subquery = std::move(*sub);
      return pred;
    }
    if (not_prefix) {
      return util::Result<Predicate>::Error(LocatedError(
          Peek().line, Peek().column,
          util::StrCat("expected EXISTS after NOT, got '", Peek().text, "'")));
    }

    // NUMBER cmp columnRef — normalized to columnRef cmp' NUMBER.
    if (Peek().kind == TokenKind::kNumber) {
      const Token& literal = Next();
      auto cmp = ParseCmp();
      if (!cmp.ok()) return util::Result<Predicate>::Error(cmp.error());
      auto column = ParseColumnRef();
      if (!column.ok()) return util::Result<Predicate>::Error(column.error());
      pred.kind = Predicate::Kind::kColumnConst;
      pred.lhs = std::move(*column);
      pred.op = ra::MirrorCmp(*cmp);
      pred.constant = literal.number;
      return pred;
    }

    auto lhs = ParseColumnRef();
    if (!lhs.ok()) return util::Result<Predicate>::Error(lhs.error());
    pred.lhs = std::move(*lhs);

    // columnRef [NOT] IN (query)
    if (AtKeyword("NOT") || AtKeyword("IN")) {
      pred.negated = EatKeyword("NOT");
      if (!EatKeyword("IN")) {
        return util::Result<Predicate>::Error(LocatedError(
            Peek().line, Peek().column,
            util::StrCat("expected IN after NOT, got '", Peek().text, "'")));
      }
      pred.kind = Predicate::Kind::kIn;
      auto sub = ParseParenQuery();
      if (!sub.ok()) return util::Result<Predicate>::Error(sub.error());
      pred.subquery = std::move(*sub);
      return pred;
    }

    auto cmp = ParseCmp();
    if (!cmp.ok()) return util::Result<Predicate>::Error(cmp.error());
    pred.op = *cmp;
    if (Peek().kind == TokenKind::kNumber) {
      pred.kind = Predicate::Kind::kColumnConst;
      pred.constant = Next().number;
      return pred;
    }
    auto rhs = ParseColumnRef();
    if (!rhs.ok()) return util::Result<Predicate>::Error(rhs.error());
    pred.kind = Predicate::Kind::kColumnColumn;
    pred.rhs = std::move(*rhs);
    return pred;
  }

  util::Result<QueryPtr> ParseParenQuery() {
    auto open = Expect(TokenKind::kLParen, "'('");
    if (!open.ok()) return open;
    auto inner = ParseQuery();
    if (!inner.ok()) return inner;
    auto close = Expect(TokenKind::kRParen, "')'");
    if (!close.ok()) return close;
    return inner;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<QueryPtr> Parse(const std::string& text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return util::Result<QueryPtr>::Error(tokens.error());
  Parser parser(std::move(*tokens));
  return parser.ParseStatement();
}

bool LooksLikeSql(const std::string& statement) {
  std::size_t i = 0;
  while (i < statement.size() &&
         (std::isspace(static_cast<unsigned char>(statement[i])) ||
          statement[i] == '(')) {
    ++i;
  }
  static constexpr char kSelect[] = "select";
  for (std::size_t k = 0; k < 6; ++k) {
    if (i + k >= statement.size() ||
        std::tolower(static_cast<unsigned char>(statement[i + k])) != kSelect[k]) {
      return false;
    }
  }
  // A following identifier character would make it a plain identifier
  // (e.g. an RA relation named "selection").
  const std::size_t after = i + 6;
  return after >= statement.size() ||
         (!std::isalnum(static_cast<unsigned char>(statement[after])) &&
          statement[after] != '_');
}

}  // namespace setalg::sql
