#include "sql/analyzer.h"

#include <cctype>
#include <optional>
#include <utility>
#include <vector>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "util/str.h"

namespace setalg::sql {
namespace {

using ra::ExprPtr;

template <typename T>
util::Result<T> Err(std::size_t line, std::size_t column, const std::string& message) {
  return util::Result<T>::Error(LocatedError(line, column, message));
}

// Decodes the positional column convention "c<N>" (1-based). Returns 0 for
// anything else.
std::size_t DecodeColumn(const std::string& name) {
  if (name.size() < 2 || (name[0] != 'c' && name[0] != 'C')) return 0;
  std::size_t n = 0;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return 0;
    n = n * 10 + static_cast<std::size_t>(name[i] - '0');
  }
  return n;
}

/// One FROM table in scope: its alias, schema name, and the offset of its
/// first column in the SELECT's accumulated (FROM-concatenated) tuple.
struct Binding {
  std::string alias;
  std::string table;
  std::size_t offset = 0;
  std::size_t arity = 0;
  std::size_t index = 0;  // Position in the FROM list.
};

struct Scope {
  std::vector<Binding> bindings;
  const Scope* parent = nullptr;
};

/// A resolved column: which FROM table (in which scope) and the 1-based
/// positions, local to the table and global in the accumulated tuple.
struct ResolvedColumn {
  std::size_t table_index = 0;
  std::size_t local = 0;
  std::size_t global = 0;
  std::size_t depth = 0;  // 0 = local scope, 1 = immediately enclosing SELECT.
};

util::Result<ResolvedColumn> ResolveColumn(const ColumnRef& ref, const Scope& scope) {
  const std::size_t col = DecodeColumn(ref.column);
  if (col == 0) {
    return Err<ResolvedColumn>(
        ref.line, ref.column_pos,
        util::StrCat("unknown column '", ref.column,
                     "' (columns are positional: c1..cK)"));
  }
  std::size_t depth = 0;
  for (const Scope* s = &scope; s != nullptr; s = s->parent, ++depth) {
    const Binding* found = nullptr;
    if (ref.qualifier.empty()) {
      if (s->bindings.size() > 1 && depth == 0) {
        return Err<ResolvedColumn>(
            ref.line, ref.column_pos,
            util::StrCat("bare column '", ref.column,
                         "' is ambiguous with more than one table in scope; "
                         "qualify it with a table alias"));
      }
      if (!s->bindings.empty()) found = &s->bindings.front();
    } else {
      for (const Binding& b : s->bindings) {
        if (b.alias == ref.qualifier) {
          found = &b;
          break;
        }
      }
    }
    if (found != nullptr) {
      if (col > found->arity) {
        return Err<ResolvedColumn>(
            ref.line, ref.column_pos,
            util::StrCat("column '", ref.column, "' out of range: table '",
                         found->table, "' has arity ", found->arity));
      }
      return ResolvedColumn{found->index, col, found->offset + col, depth};
    }
  }
  return Err<ResolvedColumn>(
      ref.line, ref.column_pos,
      ref.qualifier.empty()
          ? util::StrCat("column '", ref.column, "' cannot be resolved")
          : util::StrCat("unknown table alias '", ref.qualifier, "'"));
}

// ---------------------------------------------------------------------------
// Single-table predicate composites (rules 1 of the header comment).
// ---------------------------------------------------------------------------

ExprPtr IdentityColumns(std::size_t n, std::vector<std::size_t>* out) {
  out->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*out)[i] = i + 1;
  return nullptr;
}

ExprPtr ApplyColumnColumn(ExprPtr e, std::size_t i, ra::Cmp op, std::size_t j) {
  switch (op) {
    case ra::Cmp::kEq: return ra::SelectEq(e, i, j);
    case ra::Cmp::kLt: return ra::SelectLt(e, i, j);
    case ra::Cmp::kGt: return ra::SelectLt(e, j, i);
    case ra::Cmp::kNeq: return ra::Diff(e, ra::SelectEq(e, i, j));
  }
  return e;
}

ExprPtr ApplyColumnConst(ExprPtr e, std::size_t i, ra::Cmp op, core::Value c) {
  const std::size_t n = e->arity();
  std::vector<std::size_t> identity;
  IdentityColumns(n, &identity);
  switch (op) {
    case ra::Cmp::kEq: return ra::SelectConst(e, i, c);
    case ra::Cmp::kNeq: return ra::Diff(e, ra::SelectConst(e, i, c));
    case ra::Cmp::kLt:
      return ra::Project(ra::SelectLt(ra::Tag(e, c), i, n + 1), identity);
    case ra::Cmp::kGt:
      return ra::Project(ra::SelectLt(ra::Tag(e, c), n + 1, i), identity);
  }
  return e;
}

// ---------------------------------------------------------------------------
// The analyzer proper.
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  explicit Analyzer(const core::Schema& schema) : schema_(schema) {}

  util::Result<ExprPtr> LowerQuery(const Query& query, const Scope* outer) {
    switch (query.op) {
      case Query::Op::kSelect:
        return LowerSelect(*query.select, outer, nullptr, nullptr);
      case Query::Op::kUnion:
      case Query::Op::kExcept:
      case Query::Op::kIntersect:
        break;
    }
    auto left = LowerQuery(*query.left, outer);
    if (!left.ok()) return left;
    auto right = LowerQuery(*query.right, outer);
    if (!right.ok()) return right;
    if ((*left)->arity() != (*right)->arity()) {
      return Err<ExprPtr>(
          query.line, query.column_pos,
          util::StrCat("set operation over mismatched arities (",
                       (*left)->arity(), " vs ", (*right)->arity(), ")"));
    }
    switch (query.op) {
      case Query::Op::kUnion: return ra::Union(*left, *right);
      case Query::Op::kExcept: return ra::Diff(*left, *right);
      case Query::Op::kIntersect:
        return ra::Diff(*left, ra::Diff(*left, *right));
      case Query::Op::kSelect: break;  // Unreachable.
    }
    return *left;
  }

 private:
  /// Lowers one SELECT. When the select is an EXISTS subquery,
  /// `correlations` receives its correlated conjuncts as outer-left join
  /// atoms (and `outer` is the enclosing scope chain); otherwise any
  /// reference leaving the local scope is an error.
  util::Result<ExprPtr> LowerSelect(const Select& select, const Scope* outer,
                                    std::vector<ra::JoinAtom>* correlations,
                                    std::size_t* subquery_arity) {
    if (auto division = RecognizeDivision(select, outer != nullptr)) {
      return *division;
    }

    // Scope construction (FROM list).
    Scope scope;
    scope.parent = outer;
    std::size_t offset = 0;
    for (const TableRef& ref : select.from) {
      if (!schema_.HasRelation(ref.table)) {
        return Err<ExprPtr>(ref.line, ref.column_pos,
                            util::StrCat("unknown table '", ref.table, "'"));
      }
      for (const Binding& b : scope.bindings) {
        if (b.alias == ref.alias) {
          return Err<ExprPtr>(ref.line, ref.column_pos,
                              util::StrCat("duplicate table alias '", ref.alias, "'"));
        }
      }
      const std::size_t arity = schema_.Arity(ref.table);
      scope.bindings.push_back(
          {ref.alias, ref.table, offset, arity, scope.bindings.size()});
      offset += arity;
    }

    // Classification pass over the WHERE conjuncts (rules 1-3).
    struct TableStep {  // One single-table predicate, in WHERE order.
      std::size_t local_i = 0;
      ra::Cmp op = ra::Cmp::kEq;
      bool is_const = false;
      std::size_t local_j = 0;
      core::Value constant = 0;
    };
    struct SubStep {  // One EXISTS / IN application, in WHERE order.
      bool negated = false;
      ExprPtr inner;
      std::vector<ra::JoinAtom> atoms;
    };
    std::vector<std::vector<TableStep>> table_steps(select.from.size());
    std::vector<std::vector<ra::JoinAtom>> join_atoms(select.from.size());
    std::vector<SubStep> sub_steps;

    for (const Predicate& pred : select.where) {
      switch (pred.kind) {
        case Predicate::Kind::kColumnColumn: {
          auto lhs = ResolveColumn(pred.lhs, scope);
          if (!lhs.ok()) return util::Result<ExprPtr>::Error(lhs.error());
          auto rhs = ResolveColumn(pred.rhs, scope);
          if (!rhs.ok()) return util::Result<ExprPtr>::Error(rhs.error());
          if (lhs->depth > 0 && rhs->depth > 0) {
            return Err<ExprPtr>(pred.line, pred.column_pos,
                                "predicate references only enclosing-query tables");
          }
          if (lhs->depth > 0 || rhs->depth > 0) {
            // Correlated conjunct: outer column on the left.
            const ResolvedColumn& outer_col = lhs->depth > 0 ? *lhs : *rhs;
            const ResolvedColumn& inner_col = lhs->depth > 0 ? *rhs : *lhs;
            const ra::Cmp op = lhs->depth > 0 ? pred.op : ra::MirrorCmp(pred.op);
            if (outer_col.depth > 1) {
              return Err<ExprPtr>(
                  pred.line, pred.column_pos,
                  "correlated reference crosses more than one subquery level");
            }
            if (correlations == nullptr) {
              return Err<ExprPtr>(pred.line, pred.column_pos,
                                  "correlated reference outside an EXISTS subquery");
            }
            correlations->push_back({outer_col.global, op, inner_col.global});
            break;
          }
          if (lhs->table_index == rhs->table_index) {
            table_steps[lhs->table_index].push_back(
                {lhs->local, pred.op, false, rhs->local, 0});
          } else {
            // Attach at the join that brings in the later table, oriented
            // earlier-table-left (rule 2).
            const ResolvedColumn& early =
                lhs->table_index < rhs->table_index ? *lhs : *rhs;
            const ResolvedColumn& later =
                lhs->table_index < rhs->table_index ? *rhs : *lhs;
            const ra::Cmp op = lhs->table_index < rhs->table_index
                                   ? pred.op
                                   : ra::MirrorCmp(pred.op);
            join_atoms[later.table_index].push_back(
                {early.global, op, later.local});
          }
          break;
        }
        case Predicate::Kind::kColumnConst: {
          auto lhs = ResolveColumn(pred.lhs, scope);
          if (!lhs.ok()) return util::Result<ExprPtr>::Error(lhs.error());
          if (lhs->depth > 0) {
            return Err<ExprPtr>(pred.line, pred.column_pos,
                                "literal comparison against an enclosing-query "
                                "column is not supported");
          }
          table_steps[lhs->table_index].push_back(
              {lhs->local, pred.op, true, 0, pred.constant});
          break;
        }
        case Predicate::Kind::kIn: {
          auto lhs = ResolveColumn(pred.lhs, scope);
          if (!lhs.ok()) return util::Result<ExprPtr>::Error(lhs.error());
          if (lhs->depth > 0) {
            return Err<ExprPtr>(pred.line, pred.column_pos,
                                "IN over an enclosing-query column is not supported");
          }
          auto sub = LowerQuery(*pred.subquery, nullptr);
          if (!sub.ok()) return sub;
          if ((*sub)->arity() != 1) {
            return Err<ExprPtr>(pred.line, pred.column_pos,
                                util::StrCat("IN subquery must produce one column, "
                                             "got ", (*sub)->arity()));
          }
          sub_steps.push_back(
              {pred.negated, *sub, {{lhs->global, ra::Cmp::kEq, std::size_t{1}}}});
          break;
        }
        case Predicate::Kind::kExists: {
          if (pred.subquery->op != Query::Op::kSelect) {
            return Err<ExprPtr>(pred.line, pred.column_pos,
                                "EXISTS subquery must be a plain SELECT");
          }
          const Select& sub_select = *pred.subquery->select;
          if (!sub_select.select_star) {
            return Err<ExprPtr>(sub_select.line, sub_select.column_pos,
                                "EXISTS subquery must be SELECT *");
          }
          std::vector<ra::JoinAtom> atoms;
          std::size_t sub_arity = 0;
          auto sub = LowerSelect(sub_select, &scope, &atoms, &sub_arity);
          if (!sub.ok()) return sub;
          sub_steps.push_back({pred.negated, *sub, std::move(atoms)});
          break;
        }
      }
    }

    // Rule 1: per-table subtrees.
    std::vector<ExprPtr> tables;
    for (std::size_t t = 0; t < select.from.size(); ++t) {
      ExprPtr e = ra::Rel(scope.bindings[t].table, scope.bindings[t].arity);
      for (const TableStep& step : table_steps[t]) {
        e = step.is_const ? ApplyColumnConst(e, step.local_i, step.op, step.constant)
                          : ApplyColumnColumn(e, step.local_i, step.op, step.local_j);
      }
      tables.push_back(std::move(e));
    }

    // Rule 2: left-deep join in FROM order.
    ExprPtr expr = tables[0];
    for (std::size_t t = 1; t < tables.size(); ++t) {
      expr = ra::Join(expr, tables[t], join_atoms[t]);
    }

    // Rule 3: subquery steps, in WHERE order.
    for (SubStep& step : sub_steps) {
      ExprPtr applied = ra::SemiJoin(expr, step.inner, step.atoms);
      expr = step.negated ? ra::Diff(expr, applied) : applied;
    }

    if (subquery_arity != nullptr) *subquery_arity = expr->arity();

    // Rule 4: final projection (none for SELECT *; DISTINCT is a no-op).
    if (!select.select_star) {
      std::vector<std::size_t> columns;
      for (const ColumnRef& ref : select.columns) {
        auto resolved = ResolveColumn(ref, scope);
        if (!resolved.ok()) return util::Result<ExprPtr>::Error(resolved.error());
        if (resolved->depth > 0) {
          return Err<ExprPtr>(ref.line, ref.column_pos,
                              "select list cannot reference enclosing-query tables");
        }
        columns.push_back(resolved->global);
      }
      expr = ra::Project(expr, columns);
    }
    return expr;
  }

  /// The FOR ALL-style division idiom (see the header comment). Returns
  /// nullopt when the select is not that exact shape — the generic rules
  /// then apply (and reject the two-level correlation with a located
  /// error, so near-misses fail loudly instead of silently changing
  /// meaning).
  std::optional<ExprPtr> RecognizeDivision(const Select& select, bool in_subquery) {
    if (in_subquery) return std::nullopt;
    if (select.from.size() != 1 || select.where.size() != 1 ||
        select.select_star || select.columns.size() != 1) {
      return std::nullopt;
    }
    const TableRef& outer = select.from[0];
    if (!schema_.HasRelation(outer.table) || schema_.Arity(outer.table) != 2) {
      return std::nullopt;
    }
    const ColumnRef& out_col = select.columns[0];
    if (DecodeColumn(out_col.column) != 1 ||
        (!out_col.qualifier.empty() && out_col.qualifier != outer.alias)) {
      return std::nullopt;
    }
    const Predicate& not_exists = select.where[0];
    if (not_exists.kind != Predicate::Kind::kExists || !not_exists.negated ||
        not_exists.subquery->op != Query::Op::kSelect) {
      return std::nullopt;
    }
    const Select& mid = *not_exists.subquery->select;
    if (!mid.select_star || mid.from.size() != 1 || mid.where.size() != 1 ||
        !schema_.HasRelation(mid.from[0].table) ||
        schema_.Arity(mid.from[0].table) != 1) {
      return std::nullopt;
    }
    const Predicate& inner_ne = mid.where[0];
    if (inner_ne.kind != Predicate::Kind::kExists || !inner_ne.negated ||
        inner_ne.subquery->op != Query::Op::kSelect) {
      return std::nullopt;
    }
    const Select& inner = *inner_ne.subquery->select;
    if (!inner.select_star || inner.from.size() != 1 || inner.where.size() != 2 ||
        inner.from[0].table != outer.table) {
      return std::nullopt;
    }
    // The two inner conjuncts must be {inner.c1 = outer.c1} and
    // {inner.c2 = mid.c1}, in either order and either direction.
    bool ties_outer = false;
    bool ties_mid = false;
    for (const Predicate& pred : inner.where) {
      if (pred.kind != Predicate::Kind::kColumnColumn || pred.op != ra::Cmp::kEq) {
        return std::nullopt;
      }
      const auto matches = [&](const ColumnRef& a, const ColumnRef& b) {
        // a must be the inner alias; b decides which tie this is.
        if (a.qualifier != inner.from[0].alias) return false;
        if (b.qualifier == outer.alias) {
          if (DecodeColumn(a.column) == 1 && DecodeColumn(b.column) == 1) {
            ties_outer = true;
            return true;
          }
        } else if (b.qualifier == mid.from[0].alias) {
          if (DecodeColumn(a.column) == 2 && DecodeColumn(b.column) == 1) {
            ties_mid = true;
            return true;
          }
        }
        return false;
      };
      if (!matches(pred.lhs, pred.rhs) && !matches(pred.rhs, pred.lhs)) {
        return std::nullopt;
      }
    }
    if (!ties_outer || !ties_mid) return std::nullopt;

    // pi_1(R) - pi_1((pi_1(R) x S) - R) — the planner's division pattern.
    const ExprPtr r = ra::Rel(outer.table, 2);
    const ExprPtr s = ra::Rel(mid.from[0].table, 1);
    const ExprPtr cand = ra::Project(r, {1});
    return ra::Diff(cand,
                    ra::Project(ra::Diff(ra::Product(cand, s), r), {1}));
  }

  const core::Schema& schema_;
};

}  // namespace

util::Result<ExprPtr> Lower(const Query& query, const core::Schema& schema) {
  Analyzer analyzer(schema);
  return analyzer.LowerQuery(query, nullptr);
}

util::Result<ExprPtr> Compile(const std::string& text, const core::Schema& schema) {
  auto parsed = Parse(text);
  if (!parsed.ok()) return util::Result<ExprPtr>::Error(parsed.error());
  return Lower(**parsed, schema);
}

}  // namespace setalg::sql
