// Tokenizer for the SQL subset (sql/parser.h). Keywords are recognized
// case-insensitively; identifiers keep their spelling. Every token carries
// the 1-based line/column it started at, so parse and analysis errors can
// point into the statement text — the structured-error contract the
// negative-path tests in tests/sql_test.cc lock down.
#ifndef SETALG_SQL_LEXER_H_
#define SETALG_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/value.h"
#include "util/result.h"

namespace setalg::sql {

enum class TokenKind {
  kIdent,      // bare identifier (table, alias, or column name)
  kNumber,     // signed integer literal
  kKeyword,    // upper-cased member of the keyword set
  kComma,      // ,
  kDot,        // .
  kLParen,     // (
  kRParen,     // )
  kStar,       // *
  kEq,         // =
  kNeq,        // <> or !=
  kLt,         // <
  kGt,         // >
  kEnd,        // end of input (always the last token)
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier spelling, upper-cased keyword, or operator text.
  std::string text;
  /// kNumber payload.
  core::Value number = 0;
  /// 1-based position of the token's first character.
  std::size_t line = 1;
  std::size_t column = 1;
};

/// Formats "line:column: message" — the one spelling every SQL-layer error
/// uses, so callers (and tests) can recover the location mechanically.
std::string LocatedError(std::size_t line, std::size_t column,
                         const std::string& message);

/// Recovers the "line:column: " prefix of a LocatedError message. Returns
/// false when `error` does not carry one.
bool ParseErrorLocation(const std::string& error, std::size_t* line,
                        std::size_t* column);

/// Tokenizes `text`. The result always ends with a kEnd token; malformed
/// input (stray characters, bare '!' without '=') is a located error.
util::Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace setalg::sql

#endif  // SETALG_SQL_LEXER_H_
