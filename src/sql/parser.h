// Recursive-descent parser for the SQL subset.
//
// Grammar (case-insensitive keywords; whitespace-insensitive):
//   query     := term (('UNION' | 'EXCEPT' | 'INTERSECT') term)*
//   term      := select | '(' query ')'
//   select    := 'SELECT' ['DISTINCT'] selectList 'FROM' tableList
//                ['WHERE' conjunct ('AND' conjunct)*]
//   selectList:= '*' | columnRef (',' columnRef)*
//   tableList := IDENT [IDENT] (',' IDENT [IDENT])*
//   conjunct  := columnRef cmp (columnRef | NUMBER)
//              | NUMBER cmp columnRef
//              | columnRef ['NOT'] 'IN' '(' query ')'
//              | ['NOT'] 'EXISTS' '(' query ')'
//   columnRef := IDENT ['.' IDENT]
//   cmp       := '=' | '<>' | '!=' | '<' | '>'
//
// Pure syntax: names are not resolved here (sql/analyzer.h does that
// against a core::Schema). Every error is a located "line:column: ..."
// message; malformed input never crashes and never partially succeeds.
#ifndef SETALG_SQL_PARSER_H_
#define SETALG_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"
#include "util/result.h"

namespace setalg::sql {

/// Parses one statement. Trailing tokens after the query are an error.
util::Result<QueryPtr> Parse(const std::string& text);

/// True when `statement` reads as SQL (its first word, ignoring leading
/// parentheses, is SELECT) rather than the RA expression syntax of
/// ra/parse.h. The raq CLI and the setalgd server share this dispatch.
bool LooksLikeSql(const std::string& statement);

}  // namespace setalg::sql

#endif  // SETALG_SQL_PARSER_H_
