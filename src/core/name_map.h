// String interning for string-valued example databases.
//
// The paper's universe is totally ordered; Fig. 6 uses lexicographically
// ordered strings. InternSorted assigns integer codes in lexicographic
// order so that Value comparison agrees with string comparison.
#ifndef SETALG_CORE_NAME_MAP_H_
#define SETALG_CORE_NAME_MAP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/value.h"

namespace setalg::core {

/// Bidirectional string <-> Value mapping.
class NameMap {
 public:
  /// Interns all strings at once, assigning codes (base, base+1, ...) in
  /// lexicographic order of the distinct strings. This is the only way to
  /// get order-compatible codes; it must be called before any lookup and
  /// at most once.
  void InternSorted(std::vector<std::string> names, Value base = 0);

  /// Interns one string incrementally (codes in arrival order — the code
  /// order then has no relation to lexicographic order). Returns the code.
  Value Intern(const std::string& name);

  /// True iff the string has been interned.
  bool Has(const std::string& name) const;

  /// Code lookup; the string must be interned.
  Value Code(const std::string& name) const;

  /// Reverse lookup; falls back to the decimal rendering of the value for
  /// codes that were never interned.
  std::string Name(Value code) const;

  std::size_t size() const { return codes_.size(); }

 private:
  std::unordered_map<std::string, Value> codes_;
  std::unordered_map<Value, std::string> names_;
  Value next_code_ = 0;
};

}  // namespace setalg::core

#endif  // SETALG_CORE_NAME_MAP_H_
