// The universe U of data values.
//
// The paper assumes an infinite, totally ordered universe. We use int64:
// all the results need is a total order and unboundedly many fresh values
// on either side of any finite constant set. String-valued examples (the
// medical and beer-drinkers databases) go through core::NameMap, which
// interns strings order-preservingly so `<` on codes is lexicographic.
#ifndef SETALG_CORE_VALUE_H_
#define SETALG_CORE_VALUE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace setalg::core {

/// A basic data value from the totally ordered universe U.
using Value = std::int64_t;

/// A set of distinguished constants C (always kept sorted and unique).
using ConstantSet = std::vector<Value>;

}  // namespace setalg::core

#endif  // SETALG_CORE_VALUE_H_
