// Tuples over the universe: an owning Tuple and a non-owning TupleView,
// with lexicographic comparison and hashing.
#ifndef SETALG_CORE_TUPLE_H_
#define SETALG_CORE_TUPLE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/value.h"

namespace setalg::core {

/// An owning tuple.
using Tuple = std::vector<Value>;

/// A non-owning view of a tuple (e.g. a row inside a Relation).
using TupleView = std::span<const Value>;

/// Lexicographic three-way comparison. Shorter tuples order before longer
/// ones when one is a prefix of the other.
int CompareTuples(TupleView a, TupleView b);

bool TupleEquals(TupleView a, TupleView b);

/// Order-dependent 64-bit hash of the tuple contents.
std::uint64_t HashTuple(TupleView t);

/// Materializes a view into an owning tuple.
Tuple ToTuple(TupleView t);

/// The set of elements occurring in the tuple — set(d̄) in the paper —
/// returned sorted and deduplicated.
std::vector<Value> TupleValueSet(TupleView t);

/// Renders as "(v1, v2, ...)".
std::string TupleToString(TupleView t);

/// Strict-weak-order functor for sorted containers of owning tuples.
struct TupleLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    return CompareTuples(a, b) < 0;
  }
};

/// Hash functor for unordered containers of owning tuples.
struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    return static_cast<std::size_t>(HashTuple(t));
  }
};

struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const { return TupleEquals(a, b); }
};

}  // namespace setalg::core

#endif  // SETALG_CORE_TUPLE_H_
