#include "core/tuple.h"

#include <algorithm>

#include "util/hash.h"
#include "util/str.h"

namespace setalg::core {

int CompareTuples(TupleView a, TupleView b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

bool TupleEquals(TupleView a, TupleView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

std::uint64_t HashTuple(TupleView t) {
  std::uint64_t h = util::Mix64(t.size());
  for (Value v : t) h = util::HashCombine(h, static_cast<std::uint64_t>(v));
  return h;
}

Tuple ToTuple(TupleView t) { return Tuple(t.begin(), t.end()); }

std::vector<Value> TupleValueSet(TupleView t) {
  std::vector<Value> values(t.begin(), t.end());
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::string TupleToString(TupleView t) {
  std::string out = "(";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(t[i]);
  }
  out += ")";
  return out;
}

}  // namespace setalg::core
