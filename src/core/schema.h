// Database schemas: relation names with fixed arities.
#ifndef SETALG_CORE_SCHEMA_H_
#define SETALG_CORE_SCHEMA_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace setalg::core {

/// A finite set of relation names, each with an arity.
class Schema {
 public:
  Schema() = default;

  /// Declares a relation. The name must be fresh.
  void AddRelation(const std::string& name, std::size_t arity);

  bool HasRelation(const std::string& name) const;

  /// Arity lookup; the relation must exist.
  std::size_t Arity(const std::string& name) const;

  /// Relation names in declaration order.
  const std::vector<std::string>& Names() const { return names_; }

  std::size_t NumRelations() const { return names_.size(); }

  bool operator==(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> arities_;
};

}  // namespace setalg::core

#endif  // SETALG_CORE_SCHEMA_H_
