#include "core/database.h"

#include <algorithm>
#include <atomic>
#include <set>

#include "util/check.h"
#include "util/str.h"

namespace setalg::core {

std::uint64_t NextDatabaseId() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

std::uint64_t Database::NextId() { return NextDatabaseId(); }

Database::Database() : id_(NextId()) {}

Database::Database(Schema schema) : schema_(std::move(schema)), id_(NextId()) {
  for (const auto& name : schema_.Names()) {
    relations_.emplace(name, Relation(schema_.Arity(name)));
  }
}

Database::Database(const Database& other)
    : schema_(other.schema_),
      relations_(other.relations_),
      versions_(other.versions_),
      id_(NextId()) {}

Database& Database::operator=(const Database& other) {
  if (this != &other) {
    schema_ = other.schema_;
    relations_ = other.relations_;
    versions_ = other.versions_;
    id_ = NextId();
  }
  return *this;
}

const Relation& Database::relation(const std::string& name) const {
  auto it = relations_.find(name);
  SETALG_CHECK_STREAM(it != relations_.end()) << "unknown relation: " << name;
  return it->second;
}

void Database::SetRelation(const std::string& name, Relation relation) {
  SETALG_CHECK_EQ(schema_.Arity(name), relation.arity());
  relations_.insert_or_assign(name, std::move(relation));
  ++versions_[name];
}

Relation* Database::mutable_relation(const std::string& name) {
  auto it = relations_.find(name);
  SETALG_CHECK_STREAM(it != relations_.end()) << "unknown relation: " << name;
  ++versions_[name];
  return &it->second;
}

std::uint64_t Database::relation_version(const std::string& name) const {
  auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second;
}

std::size_t Database::size() const {
  std::size_t total = 0;
  for (const auto& name : schema_.Names()) total += relation(name).size();
  return total;
}

std::vector<Value> Database::ActiveDomain() const {
  std::vector<Value> domain;
  for (const auto& name : schema_.Names()) {
    const auto part = relation(name).ActiveDomain();
    domain.insert(domain.end(), part.begin(), part.end());
  }
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  return domain;
}

std::vector<Tuple> Database::TupleSpace() const {
  std::set<Tuple> space;
  for (const auto& name : schema_.Names()) {
    const Relation& r = relation(name);
    for (std::size_t i = 0; i < r.size(); ++i) {
      space.insert(ToTuple(r.tuple(i)));
    }
  }
  return std::vector<Tuple>(space.begin(), space.end());
}

std::vector<std::vector<Value>> Database::GuardedSets() const {
  std::set<std::vector<Value>> sets;
  for (const auto& name : schema_.Names()) {
    const Relation& r = relation(name);
    for (std::size_t i = 0; i < r.size(); ++i) {
      sets.insert(TupleValueSet(r.tuple(i)));
    }
  }
  return std::vector<std::vector<Value>>(sets.begin(), sets.end());
}

bool Database::IsCStored(TupleView t, const ConstantSet& constants) const {
  SETALG_DCHECK(std::is_sorted(constants.begin(), constants.end()));
  std::vector<Value> reduced;
  for (Value v : t) {
    if (!std::binary_search(constants.begin(), constants.end(), v)) {
      reduced.push_back(v);
    }
  }
  std::sort(reduced.begin(), reduced.end());
  reduced.erase(std::unique(reduced.begin(), reduced.end()), reduced.end());
  if (reduced.empty()) {
    // π with zero columns of any nonempty relation yields {()} ∋ ().
    for (const auto& name : schema_.Names()) {
      if (!relation(name).empty()) return true;
    }
    return false;
  }
  for (const auto& name : schema_.Names()) {
    const Relation& r = relation(name);
    for (std::size_t i = 0; i < r.size(); ++i) {
      const auto guarded = TupleValueSet(r.tuple(i));
      if (std::includes(guarded.begin(), guarded.end(), reduced.begin(),
                        reduced.end())) {
        return true;
      }
    }
  }
  return false;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& name : schema_.Names()) {
    out += util::StrCat(name, " = ", relation(name).ToString(), "\n");
  }
  return out;
}

bool Database::operator==(const Database& other) const {
  if (!(schema_ == other.schema_)) return false;
  for (const auto& name : schema_.Names()) {
    if (!(relation(name) == other.relation(name))) return false;
  }
  return true;
}

}  // namespace setalg::core
