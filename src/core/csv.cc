#include "core/csv.h"

#include <fstream>
#include <sstream>

#include "util/str.h"

namespace setalg::core {

util::Result<Relation> ReadRelationCsv(const std::string& text, NameMap* names) {
  std::vector<Tuple> rows;
  std::size_t arity = 0;
  bool arity_known = false;
  std::size_t line_number = 0;
  for (const auto& raw_line : util::Split(text, '\n')) {
    ++line_number;
    const auto line = util::StripWhitespace(raw_line);
    if (line.empty()) continue;
    Tuple row;
    for (const auto& raw_field : util::Split(std::string(line), ',')) {
      const auto field = util::StripWhitespace(raw_field);
      long long value = 0;
      if (util::ParseInt64(field, &value)) {
        row.push_back(static_cast<Value>(value));
      } else if (names != nullptr) {
        row.push_back(names->Intern(std::string(field)));
      } else {
        return util::Result<Relation>::Error(util::StrCat(
            "line ", line_number, ": non-integer field '", std::string(field),
            "' and no name map provided"));
      }
    }
    if (!arity_known) {
      arity = row.size();
      arity_known = true;
    } else if (row.size() != arity) {
      return util::Result<Relation>::Error(
          util::StrCat("line ", line_number, ": expected ", arity, " fields, got ",
                       row.size()));
    }
    rows.push_back(std::move(row));
  }
  if (!arity_known) {
    return util::Result<Relation>::Error("empty input: cannot infer arity");
  }
  return Relation::FromRows(arity, rows);
}

util::Result<Relation> ReadRelationCsvFile(const std::string& path, NameMap* names) {
  std::ifstream in(path);
  if (!in) {
    return util::Result<Relation>::Error(util::StrCat("cannot open file: ", path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadRelationCsv(buffer.str(), names);
}

std::string WriteRelationCsv(const Relation& relation, const NameMap* names) {
  std::string out;
  for (std::size_t i = 0; i < relation.size(); ++i) {
    TupleView t = relation.tuple(i);
    for (std::size_t j = 0; j < t.size(); ++j) {
      if (j > 0) out += ",";
      out += names != nullptr ? names->Name(t[j]) : std::to_string(t[j]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace setalg::core
