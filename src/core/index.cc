#include "core/index.h"

#include <algorithm>

#include "util/check.h"

namespace setalg::core {

HashIndex::HashIndex(const Relation* relation, std::vector<std::size_t> key_columns)
    : relation_(relation), key_columns_(std::move(key_columns)) {
  for (std::size_t c : key_columns_) SETALG_CHECK_LT(c, relation_->arity());
  Tuple key(key_columns_.size());
  for (std::size_t row = 0; row < relation_->size(); ++row) {
    TupleView t = relation_->tuple(row);
    for (std::size_t k = 0; k < key_columns_.size(); ++k) key[k] = t[key_columns_[k]];
    buckets_[HashTuple(key)].push_back(static_cast<std::uint32_t>(row));
  }
}

bool HashIndex::HasMatch(TupleView key) const {
  auto it = buckets_.find(HashTuple(key));
  if (it == buckets_.end()) return false;
  for (std::uint32_t row : it->second) {
    if (MatchesKey(row, key)) return true;
  }
  return false;
}

std::size_t HashIndex::CountMatches(TupleView key) const {
  auto it = buckets_.find(HashTuple(key));
  if (it == buckets_.end()) return 0;
  std::size_t count = 0;
  for (std::uint32_t row : it->second) {
    if (MatchesKey(row, key)) ++count;
  }
  return count;
}

bool HashIndex::MatchesKey(std::uint32_t row, TupleView key) const {
  SETALG_DCHECK(key.size() == key_columns_.size());
  TupleView t = relation_->tuple(row);
  for (std::size_t k = 0; k < key_columns_.size(); ++k) {
    if (t[key_columns_[k]] != key[k]) return false;
  }
  return true;
}

SortedIndex::SortedIndex(const Relation* relation, std::size_t column) {
  SETALG_CHECK_LT(column, relation->arity());
  entries_.reserve(relation->size());
  for (std::size_t row = 0; row < relation->size(); ++row) {
    entries_.emplace_back(relation->tuple(row)[column],
                          static_cast<std::uint32_t>(row));
  }
  std::sort(entries_.begin(), entries_.end());
}

bool SortedIndex::MinValue(Value* out) const {
  if (entries_.empty()) return false;
  *out = entries_.front().first;
  return true;
}

bool SortedIndex::MaxValue(Value* out) const {
  if (entries_.empty()) return false;
  *out = entries_.back().first;
  return true;
}

}  // namespace setalg::core
