// Access paths over relations: an equality hash index on a column subset
// and a single-column sorted index for range predicates. These back the
// join/semijoin evaluators and several set-join algorithms.
#ifndef SETALG_CORE_INDEX_H_
#define SETALG_CORE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/relation.h"

namespace setalg::core {

/// Hash index mapping a key (values of `key_columns` in order) to the rows
/// of the indexed relation carrying that key. The relation must outlive
/// and not mutate under the index.
class HashIndex {
 public:
  HashIndex(const Relation* relation, std::vector<std::size_t> key_columns);

  /// Invokes fn(row_index) for every row whose key equals `key`
  /// (hash probe + exact verification).
  template <typename Fn>
  void ForEachMatch(TupleView key, Fn&& fn) const {
    auto it = buckets_.find(HashTuple(key));
    if (it == buckets_.end()) return;
    for (std::uint32_t row : it->second) {
      if (MatchesKey(row, key)) fn(static_cast<std::size_t>(row));
    }
  }

  /// True iff some row matches the key.
  bool HasMatch(TupleView key) const;

  /// Number of rows matching the key.
  std::size_t CountMatches(TupleView key) const;

  const std::vector<std::size_t>& key_columns() const { return key_columns_; }

 private:
  bool MatchesKey(std::uint32_t row, TupleView key) const;

  const Relation* relation_;
  std::vector<std::size_t> key_columns_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
};

/// Rows of a relation ordered by one column; supports range scans for the
/// order predicates < and >.
class SortedIndex {
 public:
  SortedIndex(const Relation* relation, std::size_t column);

  /// Rows whose column value is strictly less than `bound`, via callback.
  template <typename Fn>
  void ForEachLess(Value bound, Fn&& fn) const {
    for (const auto& [value, row] : entries_) {
      if (value >= bound) break;
      fn(static_cast<std::size_t>(row));
    }
  }

  /// Rows whose column value is strictly greater than `bound`.
  template <typename Fn>
  void ForEachGreater(Value bound, Fn&& fn) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->first <= bound) break;
      fn(static_cast<std::size_t>(it->second));
    }
  }

  /// Smallest column value, if any.
  bool MinValue(Value* out) const;
  /// Largest column value, if any.
  bool MaxValue(Value* out) const;

 private:
  std::vector<std::pair<Value, std::uint32_t>> entries_;
};

}  // namespace setalg::core

#endif  // SETALG_CORE_INDEX_H_
