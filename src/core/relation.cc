#include "core/relation.h"

#include <algorithm>

#include "util/check.h"

namespace setalg::core {
namespace {

// Sorts the flat storage's rows lexicographically and removes duplicates.
// Returns the resulting row count.
std::size_t SortUniqueRows(std::vector<Value>* values, std::size_t arity) {
  if (arity == 0) {
    // Zero-ary relation: it holds either zero or one (empty) tuple. The
    // flat representation cannot carry rows, so row presence is tracked by
    // a one-element sentinel vector.
    return values->empty() ? 0 : 1;
  }
  const std::size_t rows = values->size() / arity;
  // Strictly-sorted input (the common case: rows re-added in normalized
  // order, e.g. from the engine's batch streams) needs no index sort.
  // Checked with a tight loop over the flat storage — this runs on every
  // normalization of freshly built relations.
  {
    const Value* v = values->data();
    bool already_sorted = true;
    for (std::size_t i = 1; i < rows; ++i) {
      const Value* prev = v + (i - 1) * arity;
      const Value* cur = prev + arity;
      std::size_t k = 0;
      while (k < arity && prev[k] == cur[k]) ++k;
      if (k == arity || prev[k] > cur[k]) {  // Duplicate or out of order.
        already_sorted = false;
        break;
      }
    }
    if (already_sorted) return rows;
  }
  std::vector<std::size_t> order(rows);
  for (std::size_t i = 0; i < rows; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return CompareTuples(TupleView(values->data() + a * arity, arity),
                         TupleView(values->data() + b * arity, arity)) < 0;
  });
  std::vector<Value> sorted;
  sorted.reserve(values->size());
  for (std::size_t k = 0; k < rows; ++k) {
    TupleView row(values->data() + order[k] * arity, arity);
    if (!sorted.empty()) {
      TupleView prev(sorted.data() + sorted.size() - arity, arity);
      if (TupleEquals(prev, row)) continue;
    }
    sorted.insert(sorted.end(), row.begin(), row.end());
  }
  *values = std::move(sorted);
  return values->size() / arity;
}

}  // namespace

Relation::Relation(std::size_t arity) : arity_(arity) {}

Relation Relation::FromRows(std::size_t arity,
                            std::initializer_list<std::initializer_list<Value>> rows) {
  Relation r(arity);
  for (const auto& row : rows) {
    SETALG_CHECK_EQ(row.size(), arity);
    r.Add(std::vector<Value>(row.begin(), row.end()));
  }
  return r;
}

Relation Relation::FromRows(std::size_t arity, const std::vector<Tuple>& rows) {
  Relation r(arity);
  r.Reserve(rows.size());
  for (const auto& row : rows) r.Add(row);
  return r;
}

std::size_t Relation::size() const {
  Normalize();
  return row_count_;
}

TupleView Relation::tuple(std::size_t i) const {
  Normalize();
  SETALG_DCHECK(i < row_count_);
  return TupleView(values_.data() + i * arity_, arity_);
}

void Relation::Add(TupleView t) {
  SETALG_CHECK_EQ(t.size(), arity_);
  if (arity_ == 0) {
    // Presence sentinel; see SortUniqueRows.
    if (values_.empty()) values_.push_back(0);
  } else {
    values_.insert(values_.end(), t.begin(), t.end());
  }
  dirty_ = true;
}

void Relation::Add(std::initializer_list<Value> t) {
  Add(TupleView(t.begin(), t.size()));
}

void Relation::AddRows(const Value* data, std::size_t rows) {
  SETALG_CHECK(arity_ > 0);
  if (rows == 0) return;
  values_.insert(values_.end(), data, data + rows * arity_);
  dirty_ = true;
}

void Relation::Reserve(std::size_t rows) { values_.reserve(values_.size() + rows * arity_); }

bool Relation::Contains(TupleView t) const {
  SETALG_CHECK_EQ(t.size(), arity_);
  Normalize();
  if (arity_ == 0) return row_count_ == 1;
  std::size_t lo = 0, hi = row_count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const int cmp = CompareTuples(TupleView(values_.data() + mid * arity_, arity_), t);
    if (cmp == 0) return true;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

void Relation::Normalize() const {
  if (!dirty_) return;
  row_count_ = SortUniqueRows(&values_, arity_);
  dirty_ = false;
}

std::vector<Value> Relation::ActiveDomain() const {
  Normalize();
  if (arity_ == 0) return {};
  std::vector<Value> domain(values_.begin(), values_.end());
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  return domain;
}

bool Relation::operator==(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  Normalize();
  other.Normalize();
  if (arity_ == 0) return row_count_ == other.row_count_;
  return values_ == other.values_;
}

std::string Relation::ToString() const {
  Normalize();
  std::string out = "{";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += TupleToString(tuple(i));
  }
  out += "}";
  return out;
}

const std::vector<Value>& Relation::flat() const {
  Normalize();
  return values_;
}

Relation Union(const Relation& a, const Relation& b) {
  SETALG_CHECK_EQ(a.arity(), b.arity());
  Relation out(a.arity());
  out.Reserve(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.Add(a.tuple(i));
  for (std::size_t i = 0; i < b.size(); ++i) out.Add(b.tuple(i));
  return out;
}

Relation Difference(const Relation& a, const Relation& b) {
  SETALG_CHECK_EQ(a.arity(), b.arity());
  Relation out(a.arity());
  // Both sides are sorted; merge-style anti-join.
  std::size_t j = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    TupleView row = a.tuple(i);
    while (j < b.size() && CompareTuples(b.tuple(j), row) < 0) ++j;
    if (j < b.size() && TupleEquals(b.tuple(j), row)) continue;
    out.Add(row);
  }
  return out;
}

Relation Intersect(const Relation& a, const Relation& b) {
  SETALG_CHECK_EQ(a.arity(), b.arity());
  Relation out(a.arity());
  std::size_t j = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    TupleView row = a.tuple(i);
    while (j < b.size() && CompareTuples(b.tuple(j), row) < 0) ++j;
    if (j < b.size() && TupleEquals(b.tuple(j), row)) out.Add(row);
  }
  return out;
}

}  // namespace setalg::core
