// Databases over a schema, plus the paper's derived notions:
// size |D| (Definition 15), tuple space (Definition 25), guarded sets
// (Definition 9), and C-stored tuples (Definition 4).
#ifndef SETALG_CORE_DATABASE_H_
#define SETALG_CORE_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "core/value.h"

namespace setalg::core {

/// Draws the next value from the process-wide database-identity counter.
/// Every storage lineage that can serve as a cache key — a `Database`, a
/// `txn::VersionedDatabase` head — must allocate its id here so ids never
/// collide across storage kinds.
std::uint64_t NextDatabaseId();

/// Read-only view of a database: the minimal interface the engine needs
/// to plan and execute a query. Both the live, mutable `Database` and the
/// immutable `txn::Snapshot` implement it, so every consumer — the
/// planner, the executors, stats collection, the caches — is agnostic to
/// whether it reads a head being mutated or a frozen version.
///
/// The identity contract mirrors Database: `id()` names the storage
/// lineage and `relation_version(name)` is a monotone per-relation
/// mutation counter within that lineage. Two views with equal id and
/// equal relation versions (for the relations a query reads) are
/// guaranteed to expose byte-identical relation contents.
class DatabaseView {
 public:
  virtual ~DatabaseView() = default;

  virtual const Schema& schema() const = 0;

  /// Read access to a stored relation; the name must be in the schema.
  virtual const Relation& relation(const std::string& name) const = 0;

  /// Identity of the storage lineage this view reads.
  virtual std::uint64_t id() const = 0;

  /// Monotone per-relation mutation counter (see Database).
  virtual std::uint64_t relation_version(const std::string& name) const = 0;
};

/// Optional capability interface of a DatabaseView whose relations are
/// stored pre-partitioned into K disjoint shards. The contract: shard s
/// of a sharded relation holds exactly the rows whose declared key-column
/// value routes to s under `setjoin::PartitionOfKey(value, shard_count())`
/// — the same routing function the parallel executor uses — and each
/// shard is normalized (sorted, duplicate-free). A partitioned operator
/// whose partitioning column equals the relation's shard key can
/// therefore consume the shards directly and skip its partition pass.
/// Consumers discover the capability by dynamic_cast from DatabaseView.
class ShardedView {
 public:
  virtual ~ShardedView() = default;

  /// Number of shards every sharded relation is split into (>= 1).
  virtual std::size_t shard_count() const = 0;

  /// The 1-based key column `name` is sharded on, or 0 when the relation
  /// is not sharded (consumers must then fall back to the full relation).
  virtual std::size_t shard_key_column(const std::string& name) const = 0;

  /// Shard `s` (in [0, shard_count())) of a sharded relation. Must only
  /// be called when shard_key_column(name) != 0. The reference stays
  /// valid for the lifetime of the view.
  virtual const Relation& shard(const std::string& name,
                                std::size_t s) const = 0;
};

/// An assignment of a finite relation to each relation name of a schema.
///
/// Every database carries a process-unique `id()` and a per-relation
/// mutation counter (`relation_version()`), so derived data — e.g. the
/// cached relation statistics of stats::DatabaseStats — can be invalidated
/// precisely when a stored relation changes instead of being recomputed
/// per query. Copies get a fresh id (they diverge independently).
class Database : public DatabaseView {
 public:
  /// An empty database over the empty schema (useful as a placeholder).
  Database();

  explicit Database(Schema schema);

  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const Schema& schema() const override { return schema_; }

  /// Read access to a stored relation; the name must be in the schema.
  const Relation& relation(const std::string& name) const override;

  /// Replaces the stored relation; arity must match the schema.
  void SetRelation(const std::string& name, Relation relation);

  /// Mutable access (e.g. to Add tuples in place). Handing out mutable
  /// access conservatively counts as a mutation for relation_version().
  Relation* mutable_relation(const std::string& name);

  /// Process-unique identity of this database instance (fresh on
  /// construction and on copy; preserved by moves).
  std::uint64_t id() const override { return id_; }

  /// Monotone counter bumped every time `name` is (potentially) mutated —
  /// by SetRelation or mutable_relation. Derived caches store the counter
  /// they computed against and recompute when it moves.
  std::uint64_t relation_version(const std::string& name) const override;

  /// |D|: the sum of the cardinalities of all relations (Definition 15).
  std::size_t size() const;

  /// All values occurring in any relation, sorted and unique.
  std::vector<Value> ActiveDomain() const;

  /// The tuple space T_D (Definition 25): the set union of all relations.
  /// Tuples of different arities are all included; the result is
  /// deduplicated (a tuple present in two relations appears once).
  std::vector<Tuple> TupleSpace() const;

  /// The guarded sets of D (Definition 9): { set(t̄) | t̄ ∈ T_D }, each
  /// sorted and unique, with duplicate sets removed.
  std::vector<std::vector<Value>> GuardedSets() const;

  /// Definition 4: d̄ is C-stored in D iff the tuple obtained by deleting
  /// all C-values from d̄ appears in some projection π_{i1..ip}(D(R)).
  /// Equivalently: all non-C values of d̄ occur together in one stored
  /// tuple. The empty reduced tuple is C-stored iff some relation is
  /// nonempty (the empty projection of a nonempty relation is {()}).
  bool IsCStored(TupleView t, const ConstantSet& constants) const;

  std::string ToString() const;

  bool operator==(const Database& other) const;

 private:
  static std::uint64_t NextId();

  Schema schema_;
  std::unordered_map<std::string, Relation> relations_;
  std::unordered_map<std::string, std::uint64_t> versions_;
  std::uint64_t id_ = 0;
};

}  // namespace setalg::core

#endif  // SETALG_CORE_DATABASE_H_
