// Databases over a schema, plus the paper's derived notions:
// size |D| (Definition 15), tuple space (Definition 25), guarded sets
// (Definition 9), and C-stored tuples (Definition 4).
#ifndef SETALG_CORE_DATABASE_H_
#define SETALG_CORE_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "core/value.h"

namespace setalg::core {

/// An assignment of a finite relation to each relation name of a schema.
class Database {
 public:
  /// An empty database over the empty schema (useful as a placeholder).
  Database() = default;

  explicit Database(Schema schema);

  const Schema& schema() const { return schema_; }

  /// Read access to a stored relation; the name must be in the schema.
  const Relation& relation(const std::string& name) const;

  /// Replaces the stored relation; arity must match the schema.
  void SetRelation(const std::string& name, Relation relation);

  /// Mutable access (e.g. to Add tuples in place).
  Relation* mutable_relation(const std::string& name);

  /// |D|: the sum of the cardinalities of all relations (Definition 15).
  std::size_t size() const;

  /// All values occurring in any relation, sorted and unique.
  std::vector<Value> ActiveDomain() const;

  /// The tuple space T_D (Definition 25): the set union of all relations.
  /// Tuples of different arities are all included; the result is
  /// deduplicated (a tuple present in two relations appears once).
  std::vector<Tuple> TupleSpace() const;

  /// The guarded sets of D (Definition 9): { set(t̄) | t̄ ∈ T_D }, each
  /// sorted and unique, with duplicate sets removed.
  std::vector<std::vector<Value>> GuardedSets() const;

  /// Definition 4: d̄ is C-stored in D iff the tuple obtained by deleting
  /// all C-values from d̄ appears in some projection π_{i1..ip}(D(R)).
  /// Equivalently: all non-C values of d̄ occur together in one stored
  /// tuple. The empty reduced tuple is C-stored iff some relation is
  /// nonempty (the empty projection of a nonempty relation is {()}).
  bool IsCStored(TupleView t, const ConstantSet& constants) const;

  std::string ToString() const;

  bool operator==(const Database& other) const;

 private:
  Schema schema_;
  std::unordered_map<std::string, Relation> relations_;
};

}  // namespace setalg::core

#endif  // SETALG_CORE_DATABASE_H_
