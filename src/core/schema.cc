#include "core/schema.h"

#include "util/check.h"
#include "util/str.h"

namespace setalg::core {

void Schema::AddRelation(const std::string& name, std::size_t arity) {
  SETALG_CHECK_STREAM(!HasRelation(name)) << "duplicate relation name: " << name;
  SETALG_CHECK(!name.empty());
  names_.push_back(name);
  arities_[name] = arity;
}

bool Schema::HasRelation(const std::string& name) const {
  return arities_.find(name) != arities_.end();
}

std::size_t Schema::Arity(const std::string& name) const {
  auto it = arities_.find(name);
  SETALG_CHECK_STREAM(it != arities_.end()) << "unknown relation: " << name;
  return it->second;
}

bool Schema::operator==(const Schema& other) const {
  return names_ == other.names_ && arities_ == other.arities_;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(names_.size());
  for (const auto& name : names_) {
    parts.push_back(util::StrCat(name, "/", arities_.at(name)));
  }
  return util::StrCat("{", util::Join(parts, ", "), "}");
}

}  // namespace setalg::core
