// A relation: a finite *set* of same-arity tuples over the universe.
//
// Storage is flat and row-major (one std::vector<Value>), kept sorted and
// deduplicated lazily. Per Definition 15 the size of a relation is its
// cardinality, which is what all the complexity statements count.
#ifndef SETALG_CORE_RELATION_H_
#define SETALG_CORE_RELATION_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/tuple.h"
#include "core/value.h"

namespace setalg::core {

/// A finite relation with set semantics.
///
/// Mutation model: Add() appends rows; the relation re-normalizes (sorts and
/// deduplicates) lazily before any read. Not thread-safe.
class Relation {
 public:
  /// An empty relation of the given arity. Arity 0 is allowed (the two
  /// zero-ary relations {} and {()} act as booleans).
  explicit Relation(std::size_t arity);

  /// Convenience constructor from a list of rows, e.g.
  /// `Relation::FromRows(2, {{1, 2}, {3, 4}})`.
  static Relation FromRows(std::size_t arity,
                           std::initializer_list<std::initializer_list<Value>> rows);
  static Relation FromRows(std::size_t arity, const std::vector<Tuple>& rows);

  std::size_t arity() const { return arity_; }

  /// Cardinality (Definition 15).
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// The i-th tuple in sorted order, 0 <= i < size().
  TupleView tuple(std::size_t i) const;

  /// Appends a tuple (duplicates are eliminated on normalization).
  void Add(TupleView t);
  void Add(std::initializer_list<Value> t);

  /// Bulk-appends `rows` tuples stored row-major at `data` (arity must be
  /// non-zero). The batch-execution hot path: one range insert instead of
  /// per-tuple calls.
  void AddRows(const Value* data, std::size_t rows);

  /// Reserves space for `rows` additional tuples.
  void Reserve(std::size_t rows);

  /// Membership test (binary search over the normalized storage).
  bool Contains(TupleView t) const;

  /// Forces normalization now (sort + unique). Reads normalize implicitly.
  void Normalize() const;

  /// All values occurring anywhere in the relation, sorted and unique.
  std::vector<Value> ActiveDomain() const;

  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Multi-line human-readable rendering (for examples and test failures).
  std::string ToString() const;

  /// Direct access to the flat normalized storage (row-major).
  const std::vector<Value>& flat() const;

 private:
  std::size_t arity_;
  mutable std::vector<Value> values_;
  mutable bool dirty_ = false;
  // Cardinality cache, valid when !dirty_.
  mutable std::size_t row_count_ = 0;
};

/// Set union of two relations of equal arity.
Relation Union(const Relation& a, const Relation& b);

/// Set difference a − b (equal arity).
Relation Difference(const Relation& a, const Relation& b);

/// Set intersection (equal arity).
Relation Intersect(const Relation& a, const Relation& b);

}  // namespace setalg::core

#endif  // SETALG_CORE_RELATION_H_
