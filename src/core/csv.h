// CSV import/export for relations, used by the raq CLI example and tests.
//
// Fields that parse as integers become those integer values; other fields
// are interned through a caller-supplied NameMap (arrival order).
#ifndef SETALG_CORE_CSV_H_
#define SETALG_CORE_CSV_H_

#include <iosfwd>
#include <string>

#include "core/name_map.h"
#include "core/relation.h"
#include "util/result.h"

namespace setalg::core {

/// Parses CSV text (one tuple per line, comma-separated, no header) into a
/// relation. All rows must have the same width. Empty lines are skipped.
/// `names` may be nullptr, in which case non-integer fields are an error.
util::Result<Relation> ReadRelationCsv(const std::string& text, NameMap* names);

/// Reads a relation from a file; see ReadRelationCsv.
util::Result<Relation> ReadRelationCsvFile(const std::string& path, NameMap* names);

/// Writes one tuple per line; values that have interned names are written
/// as those names when `names` is non-null.
std::string WriteRelationCsv(const Relation& relation, const NameMap* names);

}  // namespace setalg::core

#endif  // SETALG_CORE_CSV_H_
