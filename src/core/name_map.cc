#include "core/name_map.h"

#include <algorithm>

#include "util/check.h"

namespace setalg::core {

void NameMap::InternSorted(std::vector<std::string> names, Value base) {
  SETALG_CHECK_STREAM(codes_.empty()) << "InternSorted on a non-empty NameMap";
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  Value code = base;
  for (auto& name : names) {
    names_[code] = name;
    codes_[std::move(name)] = code;
    ++code;
  }
  next_code_ = code;
}

Value NameMap::Intern(const std::string& name) {
  auto it = codes_.find(name);
  if (it != codes_.end()) return it->second;
  const Value code = next_code_++;
  codes_[name] = code;
  names_[code] = name;
  return code;
}

bool NameMap::Has(const std::string& name) const {
  return codes_.find(name) != codes_.end();
}

Value NameMap::Code(const std::string& name) const {
  auto it = codes_.find(name);
  SETALG_CHECK_STREAM(it != codes_.end()) << "name not interned: " << name;
  return it->second;
}

std::string NameMap::Name(Value code) const {
  auto it = names_.find(code);
  if (it == names_.end()) return std::to_string(code);
  return it->second;
}

}  // namespace setalg::core
