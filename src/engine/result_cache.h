// An invalidation-aware, thread-safe whole-result cache.
//
// The paper's division / set-join serving workloads are read-heavy and
// repetitive: the same handful of query shapes arrive over and over while
// the data mutates slowly. The plan cache removes the *planning* cost of
// that pattern; this cache removes the *execution* cost whenever the data
// a query reads has not changed since the last run. Entries are keyed on
//
//   (database id, EngineOptions fingerprint, expression structure)
//
// and each stores the version vector of every relation the expression
// reads. A lookup whose stored vector still matches the view is a hit:
// the stored relation and the producing run's full PlanStats are replayed
// (with PlanStats::cache = kResultHit — the one field that legally
// differs from the producing run). A mutated vector makes the entry
// unreachable immediately — the lookup erases it and reports a miss, so
// a hit can never survive a version-vector change — and the follow-up
// insert re-keys the fresh result in its place.
//
// Storage is striped/locked like the shared plan cache, LRU-bounded by
// entry count and by an approximate byte budget dominated by the stored
// relations' flat payloads. Each entry pins the producing plan's root
// operator and canonical expression so the provenance pointers inside
// the replayed OpStats (`op`, `source`) stay valid for entry lifetime —
// they are labels for inspection, never dereferenced by the engine.
#ifndef SETALG_ENGINE_RESULT_CACHE_H_
#define SETALG_ENGINE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/database.h"
#include "core/relation.h"
#include "engine/physical.h"
#include "ra/expr.h"
#include "stats/stats.h"

namespace setalg::engine {

class ResultCache {
 public:
  /// Aggregated observable behavior (summed over stripes).
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    /// Lookups that found an entry whose version vector no longer
    /// matched; the entry was dropped on the spot (also counted in
    /// `misses`).
    std::size_t invalidations = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
  };

  /// A replayable hit: the stored relation plus the producing run's
  /// stats, already marked cache = kResultHit.
  struct Hit {
    core::Relation relation{0};
    PlanStats stats;
  };

  /// `max_entries` >= 1 (whole-cache, split evenly over stripes);
  /// `max_bytes` 0 = unbounded. The byte charge per entry is dominated
  /// by the stored relation's flat payload.
  ResultCache(std::size_t max_entries, std::size_t max_bytes);

  /// The cached result of `expr` on the view, iff the stored version
  /// vector still matches. Thread-safe.
  std::optional<Hit> Lookup(const ra::ExprPtr& expr, const core::DatabaseView& db,
                            std::uint64_t options_fp) const;

  /// Stores one finished run. `versions` must be the version vector of
  /// every relation `expr` reads, snapshotted consistently with the data
  /// the run saw (trivial for a txn::Snapshot; the caller's job for a
  /// live Database). `plan_root` and the canonical `expr` are pinned for
  /// stats provenance.
  void Insert(const ra::ExprPtr& expr, std::uint64_t db_id,
              std::uint64_t options_fp, stats::VersionVector versions,
              const core::Relation& relation, const PlanStats& stats,
              PhysicalOpPtr plan_root) const;

  /// Drops every entry.
  void Clear() const;

  std::size_t size() const;
  std::size_t bytes() const;
  std::size_t max_entries() const { return max_entries_; }
  std::size_t max_bytes() const { return max_bytes_; }
  Stats stats() const;

 private:
  struct Key {
    std::uint64_t db_id = 0;
    std::uint64_t options_fp = 0;
    std::uint64_t hash = 0;  // ra::StructuralHash(*expr), precomputed.
    ra::ExprPtr expr;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct KeyEqual {
    bool operator()(const Key& a, const Key& b) const;
  };
  struct Entry {
    stats::VersionVector versions;
    core::Relation relation{0};
    PlanStats stats;
    /// Keeps OpStats::op (and through the ops' source pointers, the
    /// lowered expression nodes) alive with the entry.
    PhysicalOpPtr plan_root;
    ra::ExprPtr expr;
    std::size_t approx_bytes = 0;
  };
  struct Node {
    std::shared_ptr<const Entry> entry;
    std::list<Key>::iterator lru;
    std::size_t charged_bytes = 0;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, Node, KeyHash, KeyEqual> map;
    std::list<Key> lru;  // Front = hottest.
    std::size_t bytes = 0;
    Stats stats;
  };

  static std::size_t ApproxEntryBytes(const Entry& entry);
  Stripe& StripeFor(const Key& key) const;
  static void EvictPastBudgetLocked(Stripe& stripe, std::size_t max_entries,
                                    std::size_t max_bytes);

  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::size_t stripe_max_entries_;
  std::size_t stripe_max_bytes_;
  std::size_t num_stripes_;
  mutable std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_RESULT_CACHE_H_
