// The unified query engine: the one public entry point for evaluating
// algebra expressions (and hand-built physical plans) over a database.
//
//   engine::Engine engine;                       // pattern-aware planner
//   auto result = engine.Run(expr, db);          // util::Result<RunResult>
//   if (result.ok()) use(result->relation, result->stats);
//
// Engine::Run subsumes the legacy ra::Eval / ra::MaxIntermediateSize
// tree-walker: those are now thin wrappers over the engine's reference
// lowering (EngineOptions::Reference()), which reproduces the legacy
// semantics and per-node statistics exactly. The default options enable
// the planner rewrites — most notably routing the classic division
// pattern to a sub-quadratic operator — so the same logical expression
// runs with O(n) instead of Ω(n²) intermediates (Prop. 26 vs. Section 5).
#ifndef SETALG_ENGINE_ENGINE_H_
#define SETALG_ENGINE_ENGINE_H_

#include <memory>
#include <string>

#include "core/database.h"
#include "core/relation.h"
#include "engine/physical.h"
#include "engine/planner.h"
#include "ra/eval.h"
#include "ra/expr.h"
#include "stats/stats.h"
#include "util/result.h"

namespace setalg::engine {

/// The outcome of one engine run.
struct RunResult {
  core::Relation relation{0};
  PlanStats stats;
};

/// Not thread-safe: the engine memoizes relation statistics for the last
/// database it ran against (stats::DatabaseStats, invalidated via the
/// database's mutation counters), so concurrent Runs on one Engine would
/// race on the cache.
class Engine {
 public:
  /// An engine with the default (rewrite-enabled) options.
  Engine() = default;
  explicit Engine(EngineOptions options) : options_(std::move(options)) {}

  const EngineOptions& options() const { return options_; }

  /// Plans and executes `expr` on `db`. Schema mismatches and budget
  /// violations come back as Result errors, never aborts.
  util::Result<RunResult> Run(const ra::ExprPtr& expr, const core::Database& db) const;

  /// Lowers without executing. Without a database there are no statistics:
  /// the plan carries no cost estimates and cost_based options fall back
  /// to the fixed algorithm defaults.
  util::Result<PhysicalPlan> Plan(const ra::ExprPtr& expr,
                                  const core::Schema& schema) const;

  /// Statistics-aware lowering: the plan is annotated with cost estimates
  /// and cost_based options pick algorithms from `db`'s relation stats.
  util::Result<PhysicalPlan> Plan(const ra::ExprPtr& expr,
                                  const core::Database& db) const;

  /// The plan rendered as text (operator tree + rewrite notes).
  util::Result<std::string> Explain(const ra::ExprPtr& expr,
                                    const core::Schema& schema) const;

  /// Statistics-aware Explain: additionally shows cost-based choices.
  util::Result<std::string> Explain(const ra::ExprPtr& expr,
                                    const core::Database& db) const;

  /// Executes a plan built by Plan() or assembled by hand from the
  /// physical.h factories (e.g. a set-containment join operator, which has
  /// no succinct logical form).
  util::Result<RunResult> RunPlan(const PhysicalPlan& plan,
                                  const core::Database& db) const;

  /// One-shot convenience. Computes statistics only when
  /// `options.cost_based` needs them (a throwaway engine cannot amortize
  /// the pass); use a persistent Engine for cached stats and
  /// estimated-vs-actual annotations on every run.
  static util::Result<RunResult> Run(const ra::ExprPtr& expr, const core::Database& db,
                                     const EngineOptions& options);

 private:
  /// The statistics provider for `db`, rebuilt when a different database
  /// (by id) comes through; per-relation stats within it refresh via the
  /// database's mutation counters.
  const stats::DatabaseStats* StatsFor(const core::Database& db) const;

  EngineOptions options_;
  mutable std::unique_ptr<stats::DatabaseStats> db_stats_;
  mutable std::uint64_t db_stats_id_ = 0;
};

/// Projects PlanStats onto the legacy ra::EvalStats view: operators that
/// carry a logical source become NodeStats entries. For a reference-mode
/// plan this is exactly the legacy instrumentation; for rewritten plans,
/// synthesized operators still count toward max/total but have no node
/// entry.
ra::EvalStats ToEvalStats(const PlanStats& stats);

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_ENGINE_H_
