// The unified query engine: the one public entry point for evaluating
// algebra expressions (and hand-built physical plans) over a database.
//
//   engine::Engine engine;                       // pattern-aware planner
//   auto result = engine.Run(expr, db);          // util::Result<RunResult>
//   if (result.ok()) use(result->relation, result->stats);
//
// Engine::Run subsumes the legacy ra::Eval / ra::MaxIntermediateSize
// tree-walker: those are now thin wrappers over the engine's reference
// lowering (EngineOptions::Reference()), which reproduces the legacy
// semantics and per-node statistics exactly. The default options enable
// the planner rewrites — most notably routing the classic division
// pattern to a sub-quadratic operator — so the same logical expression
// runs with O(n) instead of Ω(n²) intermediates (Prop. 26 vs. Section 5).
#ifndef SETALG_ENGINE_ENGINE_H_
#define SETALG_ENGINE_ENGINE_H_

#include <string>

#include "core/database.h"
#include "core/relation.h"
#include "engine/physical.h"
#include "engine/planner.h"
#include "ra/eval.h"
#include "ra/expr.h"
#include "util/result.h"

namespace setalg::engine {

/// The outcome of one engine run.
struct RunResult {
  core::Relation relation{0};
  PlanStats stats;
};

class Engine {
 public:
  /// An engine with the default (rewrite-enabled) options.
  Engine() = default;
  explicit Engine(EngineOptions options) : options_(std::move(options)) {}

  const EngineOptions& options() const { return options_; }

  /// Plans and executes `expr` on `db`. Schema mismatches and budget
  /// violations come back as Result errors, never aborts.
  util::Result<RunResult> Run(const ra::ExprPtr& expr, const core::Database& db) const;

  /// Lowers without executing.
  util::Result<PhysicalPlan> Plan(const ra::ExprPtr& expr,
                                  const core::Schema& schema) const;

  /// The plan rendered as text (operator tree + rewrite notes).
  util::Result<std::string> Explain(const ra::ExprPtr& expr,
                                    const core::Schema& schema) const;

  /// Executes a plan built by Plan() or assembled by hand from the
  /// physical.h factories (e.g. a set-containment join operator, which has
  /// no succinct logical form).
  util::Result<RunResult> RunPlan(const PhysicalPlan& plan,
                                  const core::Database& db) const;

  /// One-shot convenience.
  static util::Result<RunResult> Run(const ra::ExprPtr& expr, const core::Database& db,
                                     const EngineOptions& options);

 private:
  EngineOptions options_;
};

/// Projects PlanStats onto the legacy ra::EvalStats view: operators that
/// carry a logical source become NodeStats entries. For a reference-mode
/// plan this is exactly the legacy instrumentation; for rewritten plans,
/// synthesized operators still count toward max/total but have no node
/// entry.
ra::EvalStats ToEvalStats(const PlanStats& stats);

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_ENGINE_H_
