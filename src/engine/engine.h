// The unified query engine: the one public entry point for evaluating
// algebra expressions (and hand-built physical plans) over a database.
//
//   engine::Engine engine;                       // pattern-aware planner
//   auto result = engine.Run(expr, db);          // util::Result<RunResult>
//   if (result.ok()) use(result->relation, result->stats);
//
// Engine::Run subsumes the legacy ra::Eval / ra::MaxIntermediateSize
// tree-walker: those are now thin wrappers over the engine's reference
// lowering (EngineOptions::Reference()), which reproduces the legacy
// semantics and per-node statistics exactly. The default options enable
// the planner rewrites — most notably routing the classic division
// pattern to a sub-quadratic operator — so the same logical expression
// runs with O(n) instead of Ω(n²) intermediates (Prop. 26 vs. Section 5).
#ifndef SETALG_ENGINE_ENGINE_H_
#define SETALG_ENGINE_ENGINE_H_

#include <memory>
#include <string>

#include "core/database.h"
#include "core/relation.h"
#include "engine/physical.h"
#include "engine/plan_cache.h"
#include "engine/planner.h"
#include "ra/eval.h"
#include "ra/expr.h"
#include "stats/stats.h"
#include "util/result.h"

namespace setalg::engine {

/// The outcome of one engine run.
struct RunResult {
  core::Relation relation{0};
  PlanStats stats;
};

/// A prepared statement: a handle owning one lowered physical plan, its
/// canonical cache key (structural expression hash), and the per-relation
/// version vector it was last costed against. Obtained from
/// Engine::Prepare and executed with Engine::Run(prepared, db); cheap to
/// copy (shared ownership of the underlying entry). The handle keeps its
/// plan alive across cache eviction and Engine::ClearPlanCache — and
/// stays correct across database mutation: every execution revalidates
/// the version vector first and re-costs (never re-lowers) on mismatch.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  bool valid() const { return entry_ != nullptr; }

  /// The canonical key expression (null for handles prepared from
  /// hand-built plans, which have no logical form).
  const ra::ExprPtr& expr() const { return entry().expr; }

  /// Structural hash of the key expression (0 for hand-built plans).
  std::uint64_t key() const { return entry().expr_hash; }

  /// Id of the database instance the handle was prepared against.
  std::uint64_t database_id() const { return entry().db_id; }

  /// The version vector the plan was last costed against (mutates on
  /// revalidation).
  const stats::VersionVector& versions() const { return entry().versions; }

  const PhysicalPlan& plan() const { return entry().plan; }

  /// Runs served from this handle's entry so far.
  std::size_t uses() const { return entry().uses; }

  /// Approximate resident footprint of the owned plan (what the cache's
  /// byte budget charges; revalidation may resize it in place).
  std::size_t approx_bytes() const { return entry().approx_bytes; }

 private:
  friend class Engine;
  explicit PreparedQuery(CachedPlanPtr entry) : entry_(std::move(entry)) {}

  /// Every accessor funnels through here so an empty (default-constructed
  /// or moved-from) handle fails the valid() check loudly instead of
  /// dereferencing null.
  const CachedPlan& entry() const {
    SETALG_CHECK_STREAM(entry_ != nullptr)
        << "PreparedQuery is empty (default-constructed or moved-from); "
           "check valid() first";
    return *entry_;
  }

  CachedPlanPtr entry_;
};

/// Every entry point takes a core::DatabaseView — a live core::Database
/// or an immutable txn::Snapshot — so the same engine serves one-shot
/// evaluation and MVCC snapshot serving.
///
/// Thread-safety: an Engine is safe for concurrent Run(expr, view) calls
/// iff (a) every view passed is its own thread-safe statistics provider
/// (txn::Snapshot is; a live Database routes through the engine's
/// memoized, single-threaded stats::DatabaseStats) and (b) the
/// engine-local plan cache is disabled (plan_cache_entries == 0) — use
/// the process-wide EngineOptions::shared_plan_cache / result_cache
/// instead, which are striped/locked and shareable across engines and
/// threads. Prepared handles remain session-scoped (single-threaded).
/// The worker-pool parallelism of EngineOptions::threads lives *inside*
/// a run and is unaffected by any of this.
class Engine {
 public:
  /// An engine with the default (rewrite-enabled) options.
  Engine() = default;
  explicit Engine(EngineOptions options) : options_(std::move(options)) {}

  const EngineOptions& options() const { return options_; }

  /// Plans and executes `expr` on `db`. Schema mismatches and budget
  /// violations come back as Result errors, never aborts. With
  /// EngineOptions::plan_cache_entries > 0 the lowered plan is cached
  /// transparently, keyed on the expression's structure and db.id():
  /// repeated runs of the same shape skip lowering entirely (hit) or
  /// re-cost the cached plan from fresh statistics after a mutation
  /// (revalidated/repicked) — PlanStats::cache reports which. Results
  /// and row counts are identical either way.
  util::Result<RunResult> Run(const ra::ExprPtr& expr, const core::DatabaseView& db) const;

  /// Prepares `expr` against `db`: lowers it once (statistics-annotated)
  /// and returns a handle that owns the plan, its structural cache key,
  /// and the version vector it was costed against. When the plan cache
  /// is enabled the entry is shared with it (a later Run(expr, db) of a
  /// structurally equal expression hits the same entry); otherwise the
  /// handle is detached and self-contained.
  util::Result<PreparedQuery> Prepare(const ra::ExprPtr& expr,
                                      const core::DatabaseView& db) const;

  /// Prepares a hand-assembled physical plan (e.g. a set-join operator
  /// tree, which has no logical form). The version vector covers every
  /// relation the plan scans; revalidation refreshes cost annotations
  /// but has no recorded choice points to re-pick.
  util::Result<PreparedQuery> Prepare(PhysicalPlan plan,
                                      const core::DatabaseView& db) const;

  /// Executes a prepared statement: revalidates the handle's version
  /// vector against `db` (hit → run as-is; mismatch → re-cost the cached
  /// plan, swapping algorithm choices in place when a decision flips) and
  /// runs the plan. Handed a database other than the one the handle was
  /// prepared against (by id), falls back to the transparent Run(expr,
  /// db) path — plans never leak across database identities. Results are
  /// always identical to a fresh un-cached Run.
  util::Result<RunResult> Run(const PreparedQuery& prepared,
                              const core::DatabaseView& db) const;

  /// The transparent plan cache (created on first access), or nullptr
  /// when options().plan_cache_entries == 0. Observable state only
  /// (sizes, hit/miss/revalidated/repicked tallies).
  const PlanCache* plan_cache() const { return EnsureCache(); }

  /// Drops every cached plan (prepared handles keep theirs and stay
  /// runnable; the next Run re-lowers and re-inserts).
  void ClearPlanCache() const;

  /// Lowers without executing. Without a database there are no statistics:
  /// the plan carries no cost estimates and cost_based options fall back
  /// to the fixed algorithm defaults.
  util::Result<PhysicalPlan> Plan(const ra::ExprPtr& expr,
                                  const core::Schema& schema) const;

  /// Statistics-aware lowering: the plan is annotated with cost estimates
  /// and cost_based options pick algorithms from `db`'s relation stats.
  util::Result<PhysicalPlan> Plan(const ra::ExprPtr& expr,
                                  const core::DatabaseView& db) const;

  /// The plan rendered as text (operator tree + rewrite notes).
  util::Result<std::string> Explain(const ra::ExprPtr& expr,
                                    const core::Schema& schema) const;

  /// Statistics-aware Explain: additionally shows cost-based choices.
  util::Result<std::string> Explain(const ra::ExprPtr& expr,
                                    const core::DatabaseView& db) const;

  /// Executes a plan built by Plan() or assembled by hand from the
  /// physical.h factories (e.g. a set-containment join operator, which has
  /// no succinct logical form). One spelling per intent: Run(expr, db)
  /// plans and executes, Run(prepared, db) serves a handle, Run(plan, db)
  /// executes what you already lowered — all funnel into one RunImpl.
  util::Result<RunResult> Run(const PhysicalPlan& plan,
                              const core::DatabaseView& db) const;

  /// One-shot convenience. Computes statistics only when
  /// `options.cost_based` needs them (a throwaway engine cannot amortize
  /// the pass); use a persistent Engine for cached stats and
  /// estimated-vs-actual annotations on every run.
  static util::Result<RunResult> Run(const ra::ExprPtr& expr, const core::DatabaseView& db,
                                     const EngineOptions& options);

 private:
  /// The single execution tail every Run overload lands on: builds the
  /// worker pool, picks the executor, copies plan-level annotations
  /// (rewrites, choices, AGM bound) into the run's PlanStats.
  util::Result<RunResult> RunImpl(const PhysicalPlan& plan,
                                  const core::DatabaseView& db) const;

  /// The statistics provider for `db`. Views that are their own provider
  /// (txn::Snapshot) are returned directly — thread-safe, no engine
  /// state touched. Otherwise the memoized stats::DatabaseStats is
  /// rebuilt when a different database (by id) comes through;
  /// per-relation stats within it refresh via the mutation counters.
  const stats::StatsProvider* StatsFor(const core::DatabaseView& db) const;

  /// The plan cache, created on first use (null when disabled).
  PlanCache* EnsureCache() const;

  /// Shared tail of the cached execution paths: revalidate, tally, run.
  util::Result<RunResult> RunCached(const CachedPlanPtr& entry,
                                    const core::DatabaseView& db) const;

  /// Run through the plan caches (shared first, then engine-local, then
  /// uncached), leaving PlanStats::cache set. `*pin` receives the root
  /// of the plan that actually ran (for result-cache provenance).
  util::Result<RunResult> RunWithPlanCaches(const ra::ExprPtr& expr,
                                            const core::DatabaseView& db,
                                            PhysicalOpPtr* pin) const;

  EngineOptions options_;
  mutable std::unique_ptr<stats::DatabaseStats> db_stats_;
  mutable std::uint64_t db_stats_id_ = 0;
  mutable std::unique_ptr<PlanCache> plan_cache_;
};

/// Projects PlanStats onto the legacy ra::EvalStats view: operators that
/// carry a logical source become NodeStats entries. For a reference-mode
/// plan this is exactly the legacy instrumentation; for rewritten plans,
/// synthesized operators still count toward max/total but have no node
/// entry.
ra::EvalStats ToEvalStats(const PlanStats& stats);

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_ENGINE_H_
