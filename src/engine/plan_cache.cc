#include "engine/plan_cache.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/cost.h"
#include "engine/multiway.h"
#include "util/check.h"
#include "util/hash.h"

namespace setalg::engine {
namespace {

// The decision revalidation computed for one choice point, compared
// against what is baked into the cached operator.
struct NewDecision {
  const ChoicePoint* point = nullptr;
  setjoin::DivisionAlgorithm division_algorithm =
      setjoin::DivisionAlgorithm::kHashDivision;
  SemijoinStrategy strategy = SemijoinStrategy::kFastKernel;
  std::size_t partitions = 0;
};

// Bottom-up structural substitution: flipped operators are rebuilt with
// their new decision, and every ancestor of a rebuilt node is copied via
// WithChildren. Untouched subtrees are shared with the old plan — the
// swap is O(spine), not O(plan).
PhysicalOpPtr RebuildOp(
    const PhysicalOpPtr& op,
    const std::unordered_map<const PhysicalOp*, NewDecision>& flips,
    std::unordered_map<const PhysicalOp*, PhysicalOpPtr>* memo) {
  auto it = memo->find(op.get());
  if (it != memo->end()) return it->second;
  std::vector<PhysicalOpPtr> children;
  children.reserve(op->children().size());
  bool changed = false;
  for (const auto& child : op->children()) {
    PhysicalOpPtr rebuilt = RebuildOp(child, flips, memo);
    changed |= rebuilt.get() != child.get();
    children.push_back(std::move(rebuilt));
  }
  PhysicalOpPtr out;
  const auto flip = flips.find(op.get());
  if (flip != flips.end()) {
    const ChoicePoint& point = *flip->second.point;
    if (point.kind == ChoicePoint::Kind::kDivision) {
      out = MakeDivision(std::move(children[0]), std::move(children[1]),
                         flip->second.division_algorithm, point.equality,
                         point.source, flip->second.partitions);
    } else if (point.kind == ChoicePoint::Kind::kMultiway) {
      // The routing itself is structural (pinned at lowering); only the
      // serial-vs-partitioned execution decision can flip here.
      out = MakeMultiwayJoin(std::move(children), point.multiway_var_maps,
                             point.multiway_num_vars, point.source,
                             flip->second.partitions);
    } else {
      out = MakeSemiJoin(std::move(children[0]), std::move(children[1]),
                         point.op_atoms, flip->second.strategy, point.source,
                         flip->second.partitions);
    }
  } else if (changed) {
    out = op->WithChildren(std::move(children));
  } else {
    out = op;
  }
  memo->emplace(op.get(), out);
  return out;
}

std::size_t CountOps(const PhysicalOpPtr& root) {
  if (root == nullptr) return 0;
  std::unordered_set<const PhysicalOp*> seen;
  std::vector<const PhysicalOp*> stack{root.get()};
  while (!stack.empty()) {
    const PhysicalOp* op = stack.back();
    stack.pop_back();
    if (!seen.insert(op).second) continue;
    for (const auto& child : op->children()) stack.push_back(child.get());
  }
  return seen.size();
}

}  // namespace

std::size_t ApproxPlanBytes(const CachedPlan& entry) {
  // Deterministic constants stand in for per-node allocations the
  // operators make (children vectors, name/atom payloads): the budget
  // needs a reproducible order-of-magnitude charge, not malloc truth.
  std::size_t bytes = sizeof(CachedPlan);
  bytes += CountOps(entry.plan.root) * 96;
  if (entry.expr != nullptr) bytes += entry.expr->NumNodes() * 64;
  bytes += entry.plan.estimates.size() * 48;
  bytes += entry.plan.op_sources.size() * 24;
  bytes += entry.plan.choice_points.size() * sizeof(ChoicePoint);
  for (const auto& choice : entry.plan.choices) {
    bytes += sizeof(AlgorithmChoice) + choice.site.size() + choice.algorithm.size();
  }
  for (const auto& rewrite : entry.plan.rewrites) bytes += rewrite.size();
  for (const auto& [name, version] : entry.versions) {
    (void)version;
    bytes += sizeof(std::pair<std::string, std::uint64_t>) + name.size();
  }
  return bytes;
}

CachedPlanPtr MakeCachedPlan(ra::ExprPtr expr, const core::DatabaseView& db,
                             PhysicalPlan plan) {
  auto entry = std::make_shared<CachedPlan>();
  entry->expr_hash = expr == nullptr ? 0 : ra::StructuralHash(*expr);
  entry->db_id = db.id();
  const std::vector<std::string> names = expr != nullptr
                                             ? ra::CollectRelationNames(*expr)
                                             : CollectScanRelations(plan.root);
  entry->versions = stats::SnapshotVersions(db, names);
  entry->expr = std::move(expr);
  entry->plan = std::move(plan);
  entry->approx_bytes = ApproxPlanBytes(*entry);
  return entry;
}

CacheOutcome RevalidateCachedPlan(CachedPlan& entry, const core::DatabaseView& db,
                                  const stats::StatsProvider* stats,
                                  const EngineOptions& options) {
  if (stats::VersionsMatch(db, entry.versions)) return CacheOutcome::kHit;

  // Mirrors the planner's decision procedure exactly (same Choose*
  // formulas, same choices/rewrite spellings, same slice layout) so a
  // revalidated plan is indistinguishable from a freshly lowered one —
  // minus the lowering: no validation, no pattern matching, no tree walk
  // beyond the recorded choice points.
  PhysicalPlan& plan = entry.plan;
  const CostModel model(stats, options.calibration.get());
  const bool cost_based = options.cost_based && stats != nullptr;
  // Mirrors Lowering::ShardAligned: a scan of a relation stored sharded
  // on the partitioning column executes without a partition pass, so the
  // re-pricing drops the split term exactly like the fresh lowering.
  const auto* sharded = dynamic_cast<const core::ShardedView*>(&db);
  const auto shard_aligned = [sharded](const ra::ExprPtr& e, std::size_t column) {
    return sharded != nullptr && sharded->shard_count() > 1 && column != 0 &&
           e != nullptr && e->kind() == ra::OpKind::kRelation &&
           sharded->shard_key_column(e->relation_name()) == column;
  };
  std::unordered_map<const PhysicalOp*, NewDecision> flips;
  // Fresh dedicated estimates for routed multiway points, applied after
  // the structural swap remaps point.op.
  std::vector<std::pair<const ChoicePoint*, CostEstimate>> multiway_estimates;
  bool agm_refreshed = false;
  for (ChoicePoint& point : plan.choice_points) {
    std::vector<AlgorithmChoice> entries;
    NewDecision decision;
    decision.point = &point;
    if (point.kind == ChoicePoint::Kind::kDivision) {
      const ExprEstimate r_est = model.Estimate(point.left);
      const ExprEstimate s_est = model.Estimate(point.right);
      setjoin::DivisionAlgorithm algorithm = options.division_algorithm;
      if (cost_based) {
        const auto choice = model.ChooseDivision(r_est, s_est, point.equality);
        algorithm = choice.algorithm;
        entries.push_back({point.equality ? "equality-division" : "division",
                           setjoin::DivisionAlgorithmToString(algorithm),
                           choice.estimate});
      }
      std::size_t partitions = 0;
      if (options.threads > 1 && cost_based) {
        const auto parallel = model.ChooseParallelism(
            model.EstimateDivision(algorithm, r_est, s_est, point.equality),
            r_est.cardinality + s_est.cardinality, r_est.key_distinct,
            options.threads, shard_aligned(point.left, 1));
        entries.push_back({point.equality ? "equality-division-execution"
                                          : "division-execution",
                           ParallelChoiceLabel(parallel.partitions),
                           parallel.estimate});
        partitions = parallel.partitions;
      }
      decision.division_algorithm = algorithm;
      decision.partitions = partitions;
      if (algorithm != point.division_algorithm || partitions != point.partitions) {
        flips.emplace(point.op, decision);
        if (point.rewrite_index < plan.rewrites.size()) {
          plan.rewrites[point.rewrite_index] =
              DivisionRewriteNote(algorithm, point.equality, cost_based);
        }
        point.division_algorithm = algorithm;
        point.partitions = partitions;
      }
    } else if (point.kind == ChoicePoint::Kind::kMultiway) {
      // The multiway-vs-binary routing is baked into the plan's shape and
      // never flips on revalidation (re-routing would be a re-lowering);
      // the point re-prices the pinned alternative from fresh statistics
      // and, for a routed chain, re-decides only the execution fan-out.
      JoinHypergraph graph;
      graph.num_vars = point.multiway_num_vars;
      double sum_inputs = 0.0;
      for (std::size_t i = 0; i < point.multiway_inputs.size(); ++i) {
        JoinHypergraph::Edge edge;
        edge.vars = point.multiway_var_maps[i];
        std::sort(edge.vars.begin(), edge.vars.end());
        edge.vars.erase(std::unique(edge.vars.begin(), edge.vars.end()),
                        edge.vars.end());
        edge.cardinality = model.Estimate(point.multiway_inputs[i]).cardinality;
        sum_inputs += edge.cardinality;
        graph.edges.push_back(std::move(edge));
      }
      std::vector<double> interior_cards;
      interior_cards.reserve(point.multiway_interior.size());
      for (const auto& node : point.multiway_interior) {
        interior_cards.push_back(model.Estimate(node).cardinality);
      }
      const auto choice =
          model.ChooseMultiwayJoin(graph, interior_cards, cost_based);
      if (cost_based) {
        entries.push_back(
            {"join-chain",
             MultiwayChoiceLabel(point.multiway_routed, point.multiway_inputs.size()),
             point.multiway_routed ? choice.multiway : choice.binary});
      }
      if (std::isfinite(choice.agm_bound) && !agm_refreshed) {
        plan.agm_bound = choice.agm_bound;  // Plan-level bound: first chain.
        agm_refreshed = true;
      }
      if (point.multiway_routed) {
        std::size_t partitions = 0;
        if (options.threads > 1 && cost_based) {
          const ra::ExprPtr& key_leaf = point.multiway_inputs[point.multiway_key_leaf];
          const auto parallel = model.ChooseParallelism(
              choice.multiway, sum_inputs,
              EstimateColumnDistinct(model.Estimate(key_leaf),
                                     point.multiway_key_column, key_leaf->arity()),
              options.threads);
          entries.push_back({"multiway-execution",
                             ParallelChoiceLabel(parallel.partitions),
                             parallel.estimate});
          partitions = parallel.partitions;
        }
        if (point.rewrite_index < plan.rewrites.size() &&
            std::isfinite(choice.agm_bound)) {
          plan.rewrites[point.rewrite_index] =
              MultiwayRewriteNote(point.multiway_inputs.size(), choice.agm_bound);
        }
        if (stats != nullptr) multiway_estimates.emplace_back(&point, choice.multiway);
        decision.partitions = partitions;
        if (partitions != point.partitions) {
          flips.emplace(point.op, decision);
          point.partitions = partitions;
        }
      }
    } else {
      SemijoinStrategy strategy = options.use_fast_semijoin
                                      ? SemijoinStrategy::kFastKernel
                                      : SemijoinStrategy::kGeneric;
      std::size_t partitions = 0;
      if (cost_based) {
        const ExprEstimate l = model.Estimate(point.left);
        const ExprEstimate r = model.Estimate(point.right);
        strategy = model.ChooseSemijoin(l, r, point.atoms);
        const CostEstimate estimate =
            model.EstimateSemijoin(l, r, point.atoms, strategy);
        entries.push_back({"semijoin",
                           strategy == SemijoinStrategy::kFastKernel ? "fast-kernel"
                                                                     : "generic",
                           estimate});
        const ra::JoinAtom* eq = nullptr;
        for (const auto& atom : point.atoms) {
          if (atom.op == ra::Cmp::kEq) {
            eq = &atom;
            break;
          }
        }
        if (eq == nullptr) {
          partitions = 1;
        } else if (options.threads > 1) {
          const auto parallel = model.ChooseParallelism(
              estimate, l.cardinality + r.cardinality,
              EstimateColumnDistinct(l, eq->left, point.left->arity()),
              options.threads,
              shard_aligned(point.left, eq->left) ||
                  shard_aligned(point.right, eq->right));
          entries.push_back({"semijoin-execution",
                             ParallelChoiceLabel(parallel.partitions),
                             parallel.estimate});
          partitions = parallel.partitions;
        }
      }
      decision.strategy = strategy;
      decision.partitions = partitions;
      if (strategy != point.semijoin_strategy || partitions != point.partitions) {
        flips.emplace(point.op, decision);
        point.semijoin_strategy = strategy;
        point.partitions = partitions;
      }
    }
    // Refresh this decision's slice of the recorded choices in place —
    // the slice layout is fixed by the options the plan was lowered
    // under, so a width mismatch means the plan predates this options
    // set; leave its (still truthful-at-lowering) notes alone then.
    if (entries.size() == point.num_choices) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        plan.choices[point.first_choice + i] = std::move(entries[i]);
      }
    }
  }

  if (!flips.empty()) {
    std::unordered_map<const PhysicalOp*, PhysicalOpPtr> memo;
    PhysicalOpPtr root = RebuildOp(plan.root, flips, &memo);
    std::unordered_map<const PhysicalOp*, const PhysicalOp*> remap;
    remap.reserve(memo.size());
    for (const auto& [old_op, new_op] : memo) remap.emplace(old_op, new_op.get());
    plan.root = std::move(root);
    for (auto& [op, expr] : plan.op_sources) {
      (void)expr;
      const auto it = remap.find(op);
      if (it != remap.end()) op = it->second;
    }
    for (ChoicePoint& point : plan.choice_points) {
      const auto it = remap.find(point.op);
      if (it != remap.end()) point.op = it->second;
    }
  }

  // Re-annotate estimated-vs-actual predictions from the fresh
  // statistics, with the same precedence as fresh lowering: the division
  // points' dedicated formulas first, then the generic per-node output
  // guess wherever no richer estimate exists.
  plan.estimates.clear();
  if (stats != nullptr) {
    for (const ChoicePoint& point : plan.choice_points) {
      if (point.kind != ChoicePoint::Kind::kDivision) continue;
      plan.estimates[point.op] = model.EstimateDivision(
          point.division_algorithm, model.Estimate(point.left),
          model.Estimate(point.right), point.equality);
    }
    for (const auto& [point, estimate] : multiway_estimates) {
      plan.estimates[point->op] = estimate;
    }
    for (const auto& [op, expr] : plan.op_sources) {
      if (plan.estimates.find(op) != plan.estimates.end()) continue;
      const ExprEstimate guess = model.Estimate(expr);
      plan.estimates[op] = {0.0, guess.cardinality, guess.cardinality};
    }
  }

  for (auto& [name, version] : entry.versions) {
    version = db.relation_version(name);
  }
  entry.approx_bytes = ApproxPlanBytes(entry);
  return flips.empty() ? CacheOutcome::kRevalidated : CacheOutcome::kRepicked;
}

// ---------------------------------------------------------------------------
// PlanCache.
// ---------------------------------------------------------------------------

std::size_t PlanCache::KeyHash::operator()(const Key& key) const {
  return static_cast<std::size_t>(util::HashCombine(key.db_id, key.hash));
}

bool PlanCache::KeyEqual::operator()(const Key& a, const Key& b) const {
  return a.db_id == b.db_id && a.hash == b.hash && ra::ExprEqual{}(a.expr, b.expr);
}

PlanCache::PlanCache(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_(std::max<std::size_t>(1, max_entries)), max_bytes_(max_bytes) {}

CachedPlanPtr PlanCache::Lookup(const ra::ExprPtr& expr, std::uint64_t db_id) {
  SETALG_CHECK(expr != nullptr);
  const auto it = map_.find(Key{db_id, ra::StructuralHash(*expr), expr});
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.entry;
}

CachedPlanPtr PlanCache::Insert(CachedPlanPtr entry) {
  SETALG_CHECK(entry != nullptr);
  Key key{entry->db_id, entry->expr_hash, entry->expr};
  const auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second.charged_bytes;
    bytes_ += entry->approx_bytes;
    it->second.entry = entry;
    it->second.charged_bytes = entry->approx_bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  } else {
    lru_.push_front(key);
    bytes_ += entry->approx_bytes;
    map_.emplace(std::move(key), Node{entry, lru_.begin(), entry->approx_bytes});
  }
  EvictPastBudget();
  return entry;
}

void PlanCache::NoteUse(const CachedPlanPtr& entry, CacheOutcome outcome) {
  if (entry == nullptr || entry->expr == nullptr) return;  // Never keyed.
  const auto it = map_.find(Key{entry->db_id, entry->expr_hash, entry->expr});
  if (it == map_.end() || it->second.entry != entry) return;  // Not resident.
  bytes_ += entry->approx_bytes;
  bytes_ -= it->second.charged_bytes;
  it->second.charged_bytes = entry->approx_bytes;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  RecordOutcome(outcome);
  EvictPastBudget();
}

void PlanCache::EvictPastBudget() {
  while (!lru_.empty() &&
         (map_.size() > max_entries_ || (max_bytes_ != 0 && bytes_ > max_bytes_))) {
    const auto it = map_.find(lru_.back());
    SETALG_CHECK(it != map_.end());
    bytes_ -= it->second.charged_bytes;
    map_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::RecordOutcome(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kHit:
      ++stats_.hits;
      break;
    case CacheOutcome::kMiss:
      ++stats_.misses;
      break;
    case CacheOutcome::kRevalidated:
      ++stats_.revalidations;
      break;
    case CacheOutcome::kRepicked:
      ++stats_.revalidations;
      ++stats_.repicks;
      break;
    case CacheOutcome::kUncached:
    case CacheOutcome::kResultHit:
      // Result-cache hits never touch the plan cache (no plan ran).
      break;
  }
}

void PlanCache::Clear() {
  map_.clear();
  lru_.clear();
  bytes_ = 0;
}

}  // namespace setalg::engine
