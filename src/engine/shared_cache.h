// A process-wide, thread-safe plan cache shared between engines.
//
// The engine-local PlanCache (engine/plan_cache.h) revalidates entries
// *in place* — fine inside one single-threaded Engine, a data race the
// moment two threads share a cache. This cache keeps the same hit /
// revalidated / repicked semantics but makes every resident entry
// immutable (`shared_ptr<const CachedPlan>`): a version-vector mismatch
// revalidates a private *copy* of the entry (re-pricing and operator
// swaps touch only freshly allocated nodes — PhysicalOps themselves are
// immutable and safely shared between the old and new plan) and then
// publishes the copy as the new resident entry. Readers still executing
// the old plan keep it alive through their shared_ptr; last writer wins
// on concurrent revalidations of the same key, which costs a duplicated
// re-cost, never correctness.
//
// Keys add an EngineOptions fingerprint to the (expression structure,
// database id) key of the local cache: the shared cache outlives any one
// engine, so two engines configured with different rewrite/algorithm/
// execution options must never exchange plans.
//
// Locking is striped: the key hash selects one of a fixed number of
// stripes, each a mutex + hash map + LRU list with its own slice of the
// entry/byte budgets. Two sessions running different query shapes
// typically hit different stripes and never contend.
#ifndef SETALG_ENGINE_SHARED_CACHE_H_
#define SETALG_ENGINE_SHARED_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/database.h"
#include "engine/plan_cache.h"
#include "engine/planner.h"
#include "ra/expr.h"
#include "stats/stats.h"

namespace setalg::engine {

/// An immutable resident entry of the shared cache.
using SharedPlanPtr = std::shared_ptr<const CachedPlan>;

class SharedPlanCache {
 public:
  /// Aggregated observable behavior (summed over stripes).
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t revalidations = 0;  // Includes repicks.
    std::size_t repicks = 0;
    std::size_t evictions = 0;
  };

  /// What Acquire resolved: `entry` is null for a miss (the caller lowers
  /// and Inserts); otherwise a plan ready to run, with `outcome` saying
  /// whether it ran untouched (kHit) or was revalidated/repicked against
  /// the view's current versions (always on a private copy — the entry
  /// returned is the copy, already published).
  struct Acquired {
    SharedPlanPtr entry;
    CacheOutcome outcome = CacheOutcome::kMiss;
  };

  /// `max_entries` >= 1 (whole-cache budget, split evenly over stripes);
  /// `max_bytes` 0 = unbounded bytes.
  SharedPlanCache(std::size_t max_entries, std::size_t max_bytes);

  /// Looks up (expr, db.id(), options fingerprint) and ensures the
  /// returned plan is costed against `db`'s current version vector.
  /// `stats` supplies statistics for revalidation (pass the provider the
  /// plan would be lowered with; must be safe for this thread). Thread-
  /// safe; never blocks on another stripe.
  Acquired Acquire(const ra::ExprPtr& expr, const core::DatabaseView& db,
                   const stats::StatsProvider* stats,
                   const EngineOptions& options) const;

  /// Publishes a freshly lowered entry (the miss path), replacing any
  /// entry that raced in under the same key. Returns the resident entry.
  SharedPlanPtr Insert(CachedPlanPtr entry, const EngineOptions& options) const;

  /// Drops every entry (plans being executed stay alive via shared_ptr).
  void Clear() const;

  std::size_t size() const;
  std::size_t bytes() const;
  std::size_t max_entries() const { return max_entries_; }
  std::size_t max_bytes() const { return max_bytes_; }
  Stats stats() const;

  /// Stripe count (a power of two, fixed at construction).
  std::size_t stripes() const { return num_stripes_; }

 private:
  struct Key {
    std::uint64_t db_id = 0;
    std::uint64_t options_fp = 0;
    std::uint64_t hash = 0;  // ra::StructuralHash(*expr), precomputed.
    ra::ExprPtr expr;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct KeyEqual {
    bool operator()(const Key& a, const Key& b) const;
  };
  struct Node {
    SharedPlanPtr entry;
    std::list<Key>::iterator lru;
    std::size_t charged_bytes = 0;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, Node, KeyHash, KeyEqual> map;
    std::list<Key> lru;  // Front = hottest.
    std::size_t bytes = 0;
    Stats stats;
  };

  Stripe& StripeFor(const Key& key) const;
  /// Publishes `entry` under `key` in `stripe` (lock held), evicting past
  /// the stripe budgets. Returns the published entry.
  SharedPlanPtr PublishLocked(Stripe& stripe, Key key, SharedPlanPtr entry) const;
  static void EvictPastBudgetLocked(Stripe& stripe, std::size_t max_entries,
                                    std::size_t max_bytes);

  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::size_t stripe_max_entries_;
  std::size_t stripe_max_bytes_;
  std::size_t num_stripes_;
  // A fixed array (stripes hold a mutex, so they never move).
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_SHARED_CACHE_H_
