// The engine's physical-plan layer: a tree (DAG — shared subplans are
// evaluated once) of operators, each implemented once against the batched
// Open/NextBatch/Close surface (engine/batch.h).
//
// Every operator's kernel is batch-at-a-time. The materializing
// Execute() — the semantics reference every complexity statement in the
// paper is phrased against (the cardinality of materialized intermediates,
// Definition 16) — is a thin loop over that surface: it wraps the
// children's materialized outputs in relation streamers and drains the
// operator's own iterator. EngineOptions::batched instead composes the
// iterators across operators into a pipeline (engine.cc), so streaming
// operators never materialize at all while PlanStats still records the
// same per-operator (distinct) output cardinalities.
//
// Concrete operators cover the relational algebra one-to-one (scan, union,
// difference, projection, selection, const-tag, join, semijoin) plus the
// set-join/division algorithms (setjoin/, sa/) wrapped as first-class
// physical operators, so the planner can route a logical pattern — e.g.
// the textbook division expression — to a sub-quadratic implementation.
#ifndef SETALG_ENGINE_PHYSICAL_H_
#define SETALG_ENGINE_PHYSICAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "engine/batch.h"
#include "ra/expr.h"
#include "setjoin/division.h"
#include "setjoin/setjoin.h"

namespace setalg::engine {

class PhysicalOp;
using PhysicalOpPtr = std::shared_ptr<const PhysicalOp>;

/// A cost-model estimate for one physical operator (see engine/cost.h for
/// the formulas).
struct CostEstimate {
  /// Abstract work units (~one hash probe / merge step / emitted tuple).
  double cost = 0.0;
  /// Estimated output cardinality.
  double output_size = 0.0;
  /// Estimated largest materialization the alternative needs (its own
  /// output or any internal table), in tuples.
  double max_intermediate = 0.0;
};

/// One cost-based planner decision, kept on the plan and copied into
/// PlanStats, so benches/tests can assert which algorithm the model
/// picked and how far off its estimate was.
struct AlgorithmChoice {
  /// Call site, e.g. "division", "set-containment-join", "semijoin".
  std::string site;
  /// Chosen algorithm name, e.g. "hash-division".
  std::string algorithm;
  CostEstimate estimate;
};

/// Per-operator instrumentation (one entry per distinct operator, in
/// execution post-order).
struct OpStats {
  const PhysicalOp* op = nullptr;
  /// The logical node this operator's output coincides with, or nullptr
  /// for operators synthesized by a rewrite (their output has no 1:1
  /// logical counterpart).
  const ra::Expr* source = nullptr;
  std::string label;
  std::size_t output_size = 0;
  /// Cost-model predictions made at plan time, for calibration against
  /// `output_size`; absent (has_estimate false) when the plan was built
  /// without statistics.
  bool has_estimate = false;
  double estimated_output = 0.0;
  double estimated_cost = 0.0;
};

/// How one Engine run obtained its physical plan from the plan cache
/// (engine/plan_cache.h). kUncached for runs that never consulted it
/// (cache disabled, or Run on a hand-assembled plan).
enum class CacheOutcome {
  kUncached,     // The cache was not consulted.
  kMiss,         // Lowered fresh (and inserted when the cache is enabled).
  kHit,          // Version vector matched: the cached plan ran as-is.
  kRevalidated,  // Versions moved; re-costed, every algorithm choice held.
  kRepicked,     // Versions moved; re-costing flipped >= 1 choice in place.
  kResultHit,    // Served from the result cache (engine/result_cache.h):
                 // no plan ran at all — the stored relation and the
                 // producing run's stats were replayed verbatim.
};

/// The outcome's raq/-v spelling ("hit", "repicked", ...).
const char* CacheOutcomeToString(CacheOutcome outcome);

/// Instrumentation collected by one Engine run — the physical-plan
/// analogue of ra::EvalStats.
struct PlanStats {
  std::vector<OpStats> ops;
  /// max over operators of the materialized output size — c(E') of
  /// Definition 16 when the plan is a 1:1 lowering.
  std::size_t max_intermediate = 0;
  std::size_t total_intermediate = 0;
  /// Rows emitted by join operators before deduplication.
  std::uint64_t join_rows_emitted = 0;
  /// Human-readable notes of the planner rewrites that shaped this plan.
  std::vector<std::string> rewrites;
  /// Cost-based algorithm selections made while planning (empty unless
  /// EngineOptions::cost_based was set and statistics were available).
  std::vector<AlgorithmChoice> choices;
  /// The batch size the run used on the batch surface (both execution
  /// modes loop it; see engine/batch.h).
  std::size_t batch_size = 0;
  /// Operator-output batches that crossed the batch surface.
  std::uint64_t batches_emitted = 0;
  /// Largest single operator-output batch footprint observed, in bytes —
  /// the per-edge buffering cost of the pipelined mode.
  std::size_t peak_batch_bytes = 0;
  /// Worker threads available to the run (EngineOptions::threads; 1 for a
  /// serial run). Partitioned operators never change results or the row
  /// counts above — this field, `partitions`, and
  /// `partition_passes_skipped` are the only stats that may differ
  /// between a serial and a parallel run of the same plan.
  std::size_t threads_used = 1;
  /// Partition tasks executed by partitioned operators, summed across the
  /// run (0 when every operator ran serial). Deterministic for fixed
  /// options: partition counts are resolved per operator, never from load.
  std::size_t partitions = 0;
  /// Partition passes partitioned operators skipped because the scanned
  /// source was stored pre-sharded on the operator's partitioning column
  /// (the core::ShardedView alignment fast path, one count per bypassed
  /// input side). Like `partitions`, purely an execution-strategy
  /// counter: results and per-operator row counts are unchanged.
  std::size_t partition_passes_skipped = 0;
  /// The AGM (fractional edge cover) output bound of the first join chain
  /// the planner collected into a hypergraph, in tuples — the provable
  /// worst-case output size the multiway router budgets against. Present
  /// (has_agm_bound) whenever a chain was collected with statistics,
  /// whether or not the multiway operator was chosen.
  double agm_bound = 0.0;
  bool has_agm_bound = false;
  /// How the plan was obtained from the plan cache. Purely provenance:
  /// every other field (and the result) is identical whichever way the
  /// plan arrived — the cache-differential harness in
  /// tests/plan_cache_test.cc enforces it.
  CacheOutcome cache = CacheOutcome::kUncached;
};

class WorkerPool;  // engine/parallel.h

/// Execution-time context handed to every operator.
class ExecContext {
 public:
  ExecContext(const core::DatabaseView* db, PlanStats* stats,
              std::size_t batch_size = kDefaultBatchSize, WorkerPool* pool = nullptr)
      : db_(db), stats_(stats), batch_size_(batch_size == 0 ? 1 : batch_size),
        pool_(pool) {}

  const core::DatabaseView& db() const { return *db_; }
  PlanStats* stats() const { return stats_; }

  /// Tuples per batch on the batch surface (always >= 1).
  std::size_t batch_size() const { return batch_size_; }

  /// The run's worker pool, or nullptr for a serial run. Operators only
  /// use it through PartitionedIterator (engine/parallel.h).
  WorkerPool* pool() const { return pool_; }

  /// Total parallelism available to partitioned operators (>= 1).
  std::size_t threads() const;

  void CountJoinRows(std::uint64_t rows) {
    if (stats_ != nullptr) stats_->join_rows_emitted += rows;
  }

  /// Records one operator-output batch (count + peak footprint).
  void CountBatch(const Batch& batch) {
    if (stats_ == nullptr) return;
    ++stats_->batches_emitted;
    if (batch.memory_bytes() > stats_->peak_batch_bytes) {
      stats_->peak_batch_bytes = batch.memory_bytes();
    }
  }

  /// Records one partitioned operator's fan-out width. Called from the
  /// driving thread only (PartitionedIterator::Open after the fan-in).
  void CountPartitions(std::size_t partitions) {
    if (stats_ != nullptr) stats_->partitions += partitions;
  }

  /// Records one input side a partitioned operator fed from pre-sharded
  /// storage instead of running its partition pass. Driving thread only.
  void CountSkippedPartitionPass() {
    if (stats_ != nullptr) ++stats_->partition_passes_skipped;
  }

 private:
  const core::DatabaseView* db_;
  PlanStats* stats_;
  std::size_t batch_size_;
  WorkerPool* pool_;
};

/// An immutable physical operator. Build via the factory functions below;
/// compose by sharing PhysicalOpPtr children (shared subplans execute once).
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  std::size_t arity() const { return arity_; }
  const std::vector<PhysicalOpPtr>& children() const { return children_; }
  const PhysicalOpPtr& child(std::size_t i) const { return children_[i]; }
  const ra::Expr* source() const { return source_; }

  /// One-line description, e.g. "division[hash-division]" or "join[2=1]".
  virtual std::string label() const = 0;

  /// The operator's batch-at-a-time kernel: returns an iterator producing
  /// this operator's output from the children's streams (`inputs`, in
  /// child order, consumed at most once each). Input streams are always
  /// duplicate-free (relation streamers in materializing mode, deduped
  /// pipeline edges in batched mode); the output stream may carry
  /// duplicates unless its distinct() says otherwise. `ctx` must outlive
  /// the iterator.
  virtual std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx, std::vector<std::unique_ptr<BatchIterator>> inputs) const = 0;

  /// Materializes this operator's output — a thin loop over
  /// MakeBatchIterator with the children's materialized outputs as input
  /// streams. The result need not be normalized — the executor normalizes
  /// before recording stats.
  core::Relation Execute(ExecContext& ctx,
                         const std::vector<const core::Relation*>& inputs) const;

  /// A copy of this operator over different children (same kind, payload
  /// and source; `children` must match the original count and arities).
  /// The structural substitution primitive behind plan-cache revalidation:
  /// a cached plan swaps a re-picked operator in place by rebuilding only
  /// the spine above it, never re-lowering the logical expression.
  virtual PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const = 0;

  /// The stored relation this operator scans, or nullptr for every
  /// non-scan operator (used to derive a plan's version vector).
  virtual const std::string* scan_relation() const { return nullptr; }

  /// Indented rendering of the subplan rooted here.
  std::string ToString() const;

 protected:
  PhysicalOp(std::size_t arity, std::vector<PhysicalOpPtr> children,
             const ra::Expr* source)
      : arity_(arity), children_(std::move(children)), source_(source) {}

 private:
  std::size_t arity_;
  std::vector<PhysicalOpPtr> children_;
  const ra::Expr* source_;
};

/// Which implementation a semijoin operator uses.
enum class SemijoinStrategy {
  kGeneric,     // The reference hash/scan evaluator (legacy ra::Eval path).
  kFastKernel,  // sa::Semijoin kernel auto-selection.
};

// ---------------------------------------------------------------------------
// Factories. `source` marks the logical node whose output the operator
// reproduces (nullptr for rewrite-synthesized operators).
// ---------------------------------------------------------------------------

/// Scan of a stored relation.
PhysicalOpPtr MakeScan(std::string relation_name, std::size_t arity,
                       const ra::Expr* source = nullptr);

PhysicalOpPtr MakeUnion(PhysicalOpPtr left, PhysicalOpPtr right,
                        const ra::Expr* source = nullptr);

PhysicalOpPtr MakeDifference(PhysicalOpPtr left, PhysicalOpPtr right,
                             const ra::Expr* source = nullptr);

PhysicalOpPtr MakeProject(PhysicalOpPtr input, std::vector<std::size_t> columns,
                          const ra::Expr* source = nullptr);

PhysicalOpPtr MakeSelect(PhysicalOpPtr input, ra::Cmp op, std::size_t i,
                         std::size_t j, const ra::Expr* source = nullptr);

PhysicalOpPtr MakeConstTag(PhysicalOpPtr input, core::Value value,
                           const ra::Expr* source = nullptr);

/// θ-join: hash join on the equality conjuncts with a residual filter;
/// nested loop when θ has no equalities (or is empty — cartesian product).
PhysicalOpPtr MakeJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                       std::vector<ra::JoinAtom> atoms,
                       const ra::Expr* source = nullptr);

/// `partitions` (here and below) configures partitioned parallel
/// execution of the operator (see engine/parallel.h): 0 follows the
/// run's worker-pool width (EngineOptions::threads), 1 pins the operator
/// serial, N forces an N-way fan-out. Any value yields results and
/// PlanStats row counts identical to the serial operator. Semijoins
/// partition both sides by the first equality atom; conditions without an
/// equality fall back to the serial kernel.
PhysicalOpPtr MakeSemiJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                           std::vector<ra::JoinAtom> atoms,
                           SemijoinStrategy strategy,
                           const ra::Expr* source = nullptr,
                           std::size_t partitions = 0);

/// Division: child 0 is the binary dividend R(A,B), child 1 the unary
/// divisor S(B). With `equality` the B-set must equal S, else contain it.
/// Partitioned execution splits the dividend by key and shares the
/// divisor; kClassicRa always runs serial (its plan is one RA expression).
PhysicalOpPtr MakeDivision(PhysicalOpPtr dividend, PhysicalOpPtr divisor,
                           setjoin::DivisionAlgorithm algorithm, bool equality,
                           const ra::Expr* source = nullptr,
                           std::size_t partitions = 0);

/// Set-containment join over two binary inputs grouped on column 1.
/// Partitioned execution splits the containing (left) side's groups by
/// key and shares the contained side.
PhysicalOpPtr MakeSetContainmentJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                                     setjoin::ContainmentAlgorithm algorithm,
                                     const ra::Expr* source = nullptr,
                                     std::size_t partitions = 0);

/// Set-equality join over two binary inputs grouped on column 1.
/// Partitioned execution splits the left side's groups by key.
PhysicalOpPtr MakeSetEqualityJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                                  setjoin::EqualityJoinAlgorithm algorithm,
                                  const ra::Expr* source = nullptr,
                                  std::size_t partitions = 0);

/// Set-overlap join over two binary inputs grouped on column 1.
/// Partitioned execution splits the left side's groups by key.
PhysicalOpPtr MakeSetOverlapJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                                 const ra::Expr* source = nullptr,
                                 std::size_t partitions = 0);

/// All stored-relation names scanned anywhere in the plan rooted at
/// `root`, sorted and unique — the relation set a plan's cache entry
/// snapshots its version vector over.
std::vector<std::string> CollectScanRelations(const PhysicalOpPtr& root);

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_PHYSICAL_H_
