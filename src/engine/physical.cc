#include "engine/physical.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/index.h"
#include "sa/fast_semijoin.h"
#include "setjoin/grouped.h"
#include "util/check.h"

namespace setalg::engine {
namespace {

using core::Relation;

bool CompareValues(core::Value a, ra::Cmp op, core::Value b) {
  switch (op) {
    case ra::Cmp::kEq:
      return a == b;
    case ra::Cmp::kNeq:
      return a != b;
    case ra::Cmp::kLt:
      return a < b;
    case ra::Cmp::kGt:
      return a > b;
  }
  return false;
}

// Checks the non-equality conjuncts of θ against a pair of rows.
bool ResidualHolds(const std::vector<ra::JoinAtom>& residual, core::TupleView left,
                   core::TupleView right) {
  for (const auto& atom : residual) {
    if (!CompareValues(left[atom.left - 1], atom.op, right[atom.right - 1])) {
      return false;
    }
  }
  return true;
}

// Splits θ into its equality part (used for hashing) and the residual.
void SplitAtoms(const std::vector<ra::JoinAtom>& atoms, std::vector<ra::JoinAtom>* eq,
                std::vector<ra::JoinAtom>* residual) {
  for (const auto& atom : atoms) {
    (atom.op == ra::Cmp::kEq ? eq : residual)->push_back(atom);
  }
}

std::string AtomsToString(const std::vector<ra::JoinAtom>& atoms) {
  std::ostringstream out;
  for (std::size_t k = 0; k < atoms.size(); ++k) {
    if (k > 0) out << ",";
    out << atoms[k].left << ra::CmpToString(atoms[k].op) << atoms[k].right;
  }
  return out.str();
}

std::string ColumnsToString(const std::vector<std::size_t>& columns) {
  std::ostringstream out;
  for (std::size_t k = 0; k < columns.size(); ++k) {
    if (k > 0) out << ",";
    out << columns[k];
  }
  return out.str();
}

class ScanOp final : public PhysicalOp {
 public:
  ScanOp(std::string name, std::size_t arity, const ra::Expr* source)
      : PhysicalOp(arity, {}, source), name_(std::move(name)) {}

  std::string label() const override { return "scan " + name_; }

  Relation Execute(ExecContext& ctx,
                   const std::vector<const Relation*>&) const override {
    SETALG_CHECK_STREAM(ctx.db().schema().HasRelation(name_))
        << "plan references unknown relation " << name_;
    const Relation& r = ctx.db().relation(name_);
    SETALG_CHECK_EQ(r.arity(), arity());
    return r;  // Copy; keeps the executor's memoization simple.
  }

 private:
  std::string name_;
};

class UnionOp final : public PhysicalOp {
 public:
  UnionOp(PhysicalOpPtr left, PhysicalOpPtr right, const ra::Expr* source)
      : PhysicalOp(left->arity(), {left, right}, source) {}

  std::string label() const override { return "union"; }

  Relation Execute(ExecContext&,
                   const std::vector<const Relation*>& inputs) const override {
    return core::Union(*inputs[0], *inputs[1]);
  }
};

class DifferenceOp final : public PhysicalOp {
 public:
  DifferenceOp(PhysicalOpPtr left, PhysicalOpPtr right, const ra::Expr* source)
      : PhysicalOp(left->arity(), {left, right}, source) {}

  std::string label() const override { return "difference"; }

  Relation Execute(ExecContext&,
                   const std::vector<const Relation*>& inputs) const override {
    return core::Difference(*inputs[0], *inputs[1]);
  }
};

class ProjectOp final : public PhysicalOp {
 public:
  ProjectOp(PhysicalOpPtr input, std::vector<std::size_t> columns,
            const ra::Expr* source)
      : PhysicalOp(columns.size(), {std::move(input)}, source),
        columns_(std::move(columns)) {}

  std::string label() const override {
    return "project[" + ColumnsToString(columns_) + "]";
  }

  Relation Execute(ExecContext&,
                   const std::vector<const Relation*>& inputs) const override {
    const Relation& in = *inputs[0];
    Relation out(arity());
    out.Reserve(in.size());
    core::Tuple row(arity());
    for (std::size_t i = 0; i < in.size(); ++i) {
      core::TupleView t = in.tuple(i);
      for (std::size_t k = 0; k < columns_.size(); ++k) {
        row[k] = t[columns_[k] - 1];
      }
      out.Add(row);
    }
    return out;
  }

  const std::vector<std::size_t>& columns() const { return columns_; }

 private:
  std::vector<std::size_t> columns_;
};

class SelectOp final : public PhysicalOp {
 public:
  SelectOp(PhysicalOpPtr input, ra::Cmp op, std::size_t i, std::size_t j,
           const ra::Expr* source)
      : PhysicalOp(input->arity(), {input}, source), op_(op), i_(i), j_(j) {}

  std::string label() const override {
    std::ostringstream out;
    out << "select[" << i_ << ra::CmpToString(op_) << j_ << "]";
    return out.str();
  }

  Relation Execute(ExecContext&,
                   const std::vector<const Relation*>& inputs) const override {
    const Relation& in = *inputs[0];
    Relation out(arity());
    for (std::size_t i = 0; i < in.size(); ++i) {
      core::TupleView t = in.tuple(i);
      if (CompareValues(t[i_ - 1], op_, t[j_ - 1])) out.Add(t);
    }
    return out;
  }

 private:
  ra::Cmp op_;
  std::size_t i_;
  std::size_t j_;
};

class ConstTagOp final : public PhysicalOp {
 public:
  ConstTagOp(PhysicalOpPtr input, core::Value value, const ra::Expr* source)
      : PhysicalOp(input->arity() + 1, {input}, source), value_(value) {}

  std::string label() const override {
    std::ostringstream out;
    out << "tag[" << value_ << "]";
    return out.str();
  }

  Relation Execute(ExecContext&,
                   const std::vector<const Relation*>& inputs) const override {
    const Relation& in = *inputs[0];
    Relation out(arity());
    out.Reserve(in.size());
    core::Tuple row(arity());
    for (std::size_t i = 0; i < in.size(); ++i) {
      core::TupleView t = in.tuple(i);
      std::copy(t.begin(), t.end(), row.begin());
      row.back() = value_;
      out.Add(row);
    }
    return out;
  }

 private:
  core::Value value_;
};

class JoinOp final : public PhysicalOp {
 public:
  JoinOp(PhysicalOpPtr left, PhysicalOpPtr right, std::vector<ra::JoinAtom> atoms,
         const ra::Expr* source)
      : PhysicalOp(left->arity() + right->arity(), {left, right}, source),
        atoms_(std::move(atoms)) {}

  std::string label() const override { return "join[" + AtomsToString(atoms_) + "]"; }

  Relation Execute(ExecContext& ctx,
                   const std::vector<const Relation*>& inputs) const override {
    const Relation& left = *inputs[0];
    const Relation& right = *inputs[1];
    Relation out(arity());
    if (left.empty() || right.empty()) return out;

    std::vector<ra::JoinAtom> eq, residual;
    SplitAtoms(atoms_, &eq, &residual);

    core::Tuple row(arity());
    const std::size_t n = left.arity();
    auto emit = [&](core::TupleView lt, core::TupleView rt) {
      std::copy(lt.begin(), lt.end(), row.begin());
      std::copy(rt.begin(), rt.end(), row.begin() + static_cast<std::ptrdiff_t>(n));
      out.Add(row);
      ctx.CountJoinRows(1);
    };

    if (!eq.empty()) {
      std::vector<std::size_t> right_cols;
      right_cols.reserve(eq.size());
      for (const auto& atom : eq) right_cols.push_back(atom.right - 1);
      core::HashIndex index(&right, right_cols);
      core::Tuple key(eq.size());
      for (std::size_t i = 0; i < left.size(); ++i) {
        core::TupleView lt = left.tuple(i);
        for (std::size_t k = 0; k < eq.size(); ++k) key[k] = lt[eq[k].left - 1];
        index.ForEachMatch(key, [&](std::size_t r) {
          core::TupleView rt = right.tuple(r);
          if (ResidualHolds(residual, lt, rt)) emit(lt, rt);
        });
      }
    } else {
      // Pure inequality (or cartesian) join: nested loop.
      for (std::size_t i = 0; i < left.size(); ++i) {
        core::TupleView lt = left.tuple(i);
        for (std::size_t j = 0; j < right.size(); ++j) {
          core::TupleView rt = right.tuple(j);
          if (ResidualHolds(residual, lt, rt)) emit(lt, rt);
        }
      }
    }
    return out;
  }

 private:
  std::vector<ra::JoinAtom> atoms_;
};

class SemiJoinOp final : public PhysicalOp {
 public:
  SemiJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, std::vector<ra::JoinAtom> atoms,
             SemijoinStrategy strategy, const ra::Expr* source)
      : PhysicalOp(left->arity(), {left, right}, source),
        atoms_(std::move(atoms)),
        strategy_(strategy) {}

  std::string label() const override {
    return std::string("semijoin[") + AtomsToString(atoms_) + "]" +
           (strategy_ == SemijoinStrategy::kFastKernel ? " (fast)" : " (generic)");
  }

  Relation Execute(ExecContext&,
                   const std::vector<const Relation*>& inputs) const override {
    const Relation& left = *inputs[0];
    const Relation& right = *inputs[1];
    if (strategy_ == SemijoinStrategy::kFastKernel) {
      return sa::Semijoin(left, right, atoms_);
    }
    return GenericSemijoin(left, right);
  }

 private:
  Relation GenericSemijoin(const Relation& left, const Relation& right) const {
    Relation out(arity());
    if (left.empty() || right.empty()) return out;

    std::vector<ra::JoinAtom> eq, residual;
    SplitAtoms(atoms_, &eq, &residual);

    if (!eq.empty()) {
      std::vector<std::size_t> right_cols;
      right_cols.reserve(eq.size());
      for (const auto& atom : eq) right_cols.push_back(atom.right - 1);
      core::HashIndex index(&right, right_cols);
      core::Tuple key(eq.size());
      for (std::size_t i = 0; i < left.size(); ++i) {
        core::TupleView lt = left.tuple(i);
        for (std::size_t k = 0; k < eq.size(); ++k) key[k] = lt[eq[k].left - 1];
        bool found = false;
        index.ForEachMatch(key, [&](std::size_t r) {
          if (!found && ResidualHolds(residual, lt, right.tuple(r))) found = true;
        });
        if (found) out.Add(lt);
      }
    } else if (residual.empty()) {
      // θ empty and right nonempty: every left tuple survives.
      return left;
    } else {
      for (std::size_t i = 0; i < left.size(); ++i) {
        core::TupleView lt = left.tuple(i);
        for (std::size_t j = 0; j < right.size(); ++j) {
          if (ResidualHolds(residual, lt, right.tuple(j))) {
            out.Add(lt);
            break;
          }
        }
      }
    }
    return out;
  }

  std::vector<ra::JoinAtom> atoms_;
  SemijoinStrategy strategy_;
};

class DivisionOp final : public PhysicalOp {
 public:
  DivisionOp(PhysicalOpPtr dividend, PhysicalOpPtr divisor,
             setjoin::DivisionAlgorithm algorithm, bool equality,
             const ra::Expr* source)
      : PhysicalOp(1, {std::move(dividend), std::move(divisor)}, source),
        algorithm_(algorithm),
        equality_(equality) {}

  std::string label() const override {
    return std::string(equality_ ? "division=[" : "division[") +
           setjoin::DivisionAlgorithmToString(algorithm_) + "]";
  }

  Relation Execute(ExecContext&,
                   const std::vector<const Relation*>& inputs) const override {
    return equality_ ? setjoin::DivideEqual(*inputs[0], *inputs[1], algorithm_)
                     : setjoin::Divide(*inputs[0], *inputs[1], algorithm_);
  }

 private:
  setjoin::DivisionAlgorithm algorithm_;
  bool equality_;
};

class SetContainmentJoinOp final : public PhysicalOp {
 public:
  SetContainmentJoinOp(PhysicalOpPtr left, PhysicalOpPtr right,
                       setjoin::ContainmentAlgorithm algorithm, const ra::Expr* source)
      : PhysicalOp(2, {std::move(left), std::move(right)}, source),
        algorithm_(algorithm) {}

  std::string label() const override {
    return std::string("set-containment-join[") +
           setjoin::ContainmentAlgorithmToString(algorithm_) + "]";
  }

  Relation Execute(ExecContext&,
                   const std::vector<const Relation*>& inputs) const override {
    return setjoin::SetContainmentJoin(setjoin::AsGrouped(*inputs[0]),
                                       setjoin::AsGrouped(*inputs[1]), algorithm_);
  }

 private:
  setjoin::ContainmentAlgorithm algorithm_;
};

class SetEqualityJoinOp final : public PhysicalOp {
 public:
  SetEqualityJoinOp(PhysicalOpPtr left, PhysicalOpPtr right,
                    setjoin::EqualityJoinAlgorithm algorithm, const ra::Expr* source)
      : PhysicalOp(2, {std::move(left), std::move(right)}, source),
        algorithm_(algorithm) {}

  std::string label() const override {
    return std::string("set-equality-join[") +
           setjoin::EqualityJoinAlgorithmToString(algorithm_) + "]";
  }

  Relation Execute(ExecContext&,
                   const std::vector<const Relation*>& inputs) const override {
    return setjoin::SetEqualityJoin(setjoin::AsGrouped(*inputs[0]),
                                    setjoin::AsGrouped(*inputs[1]), algorithm_);
  }

 private:
  setjoin::EqualityJoinAlgorithm algorithm_;
};

class SetOverlapJoinOp final : public PhysicalOp {
 public:
  SetOverlapJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, const ra::Expr* source)
      : PhysicalOp(2, {std::move(left), std::move(right)}, source) {}

  std::string label() const override { return "set-overlap-join"; }

  Relation Execute(ExecContext&,
                   const std::vector<const Relation*>& inputs) const override {
    return setjoin::SetOverlapJoin(setjoin::AsGrouped(*inputs[0]),
                                   setjoin::AsGrouped(*inputs[1]));
  }
};

void AppendTree(const PhysicalOp& op, std::size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  out->append(op.label());
  out->push_back('\n');
  for (const auto& child : op.children()) AppendTree(*child, depth + 1, out);
}

}  // namespace

std::string PhysicalOp::ToString() const {
  std::string out;
  AppendTree(*this, 0, &out);
  return out;
}

PhysicalOpPtr MakeScan(std::string relation_name, std::size_t arity,
                       const ra::Expr* source) {
  return std::make_shared<ScanOp>(std::move(relation_name), arity, source);
}

PhysicalOpPtr MakeUnion(PhysicalOpPtr left, PhysicalOpPtr right,
                        const ra::Expr* source) {
  SETALG_CHECK_EQ(left->arity(), right->arity());
  return std::make_shared<UnionOp>(std::move(left), std::move(right), source);
}

PhysicalOpPtr MakeDifference(PhysicalOpPtr left, PhysicalOpPtr right,
                             const ra::Expr* source) {
  SETALG_CHECK_EQ(left->arity(), right->arity());
  return std::make_shared<DifferenceOp>(std::move(left), std::move(right), source);
}

PhysicalOpPtr MakeProject(PhysicalOpPtr input, std::vector<std::size_t> columns,
                          const ra::Expr* source) {
  for (std::size_t c : columns) {
    SETALG_CHECK_STREAM(c >= 1 && c <= input->arity())
        << "projection column " << c << " out of range for arity " << input->arity();
  }
  return std::make_shared<ProjectOp>(std::move(input), std::move(columns), source);
}

PhysicalOpPtr MakeSelect(PhysicalOpPtr input, ra::Cmp op, std::size_t i, std::size_t j,
                         const ra::Expr* source) {
  SETALG_CHECK_STREAM(i >= 1 && i <= input->arity() && j >= 1 && j <= input->arity())
      << "selection columns " << i << "," << j << " out of range";
  return std::make_shared<SelectOp>(std::move(input), op, i, j, source);
}

PhysicalOpPtr MakeConstTag(PhysicalOpPtr input, core::Value value,
                           const ra::Expr* source) {
  return std::make_shared<ConstTagOp>(std::move(input), value, source);
}

PhysicalOpPtr MakeJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                       std::vector<ra::JoinAtom> atoms, const ra::Expr* source) {
  for (const auto& atom : atoms) {
    SETALG_CHECK_STREAM(atom.left >= 1 && atom.left <= left->arity() &&
                        atom.right >= 1 && atom.right <= right->arity())
        << "join atom out of range";
  }
  return std::make_shared<JoinOp>(std::move(left), std::move(right), std::move(atoms),
                                  source);
}

PhysicalOpPtr MakeSemiJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                           std::vector<ra::JoinAtom> atoms, SemijoinStrategy strategy,
                           const ra::Expr* source) {
  for (const auto& atom : atoms) {
    SETALG_CHECK_STREAM(atom.left >= 1 && atom.left <= left->arity() &&
                        atom.right >= 1 && atom.right <= right->arity())
        << "semijoin atom out of range";
  }
  return std::make_shared<SemiJoinOp>(std::move(left), std::move(right),
                                      std::move(atoms), strategy, source);
}

PhysicalOpPtr MakeDivision(PhysicalOpPtr dividend, PhysicalOpPtr divisor,
                           setjoin::DivisionAlgorithm algorithm, bool equality,
                           const ra::Expr* source) {
  SETALG_CHECK_EQ(dividend->arity(), 2u);
  SETALG_CHECK_EQ(divisor->arity(), 1u);
  return std::make_shared<DivisionOp>(std::move(dividend), std::move(divisor),
                                      algorithm, equality, source);
}

PhysicalOpPtr MakeSetContainmentJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                                     setjoin::ContainmentAlgorithm algorithm,
                                     const ra::Expr* source) {
  SETALG_CHECK_EQ(left->arity(), 2u);
  SETALG_CHECK_EQ(right->arity(), 2u);
  return std::make_shared<SetContainmentJoinOp>(std::move(left), std::move(right),
                                                algorithm, source);
}

PhysicalOpPtr MakeSetEqualityJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                                  setjoin::EqualityJoinAlgorithm algorithm,
                                  const ra::Expr* source) {
  SETALG_CHECK_EQ(left->arity(), 2u);
  SETALG_CHECK_EQ(right->arity(), 2u);
  return std::make_shared<SetEqualityJoinOp>(std::move(left), std::move(right),
                                             algorithm, source);
}

PhysicalOpPtr MakeSetOverlapJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                                 const ra::Expr* source) {
  SETALG_CHECK_EQ(left->arity(), 2u);
  SETALG_CHECK_EQ(right->arity(), 2u);
  return std::make_shared<SetOverlapJoinOp>(std::move(left), std::move(right), source);
}

}  // namespace setalg::engine
