#include "engine/physical.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "core/index.h"
#include "engine/parallel.h"
#include "sa/fast_semijoin.h"
#include "setjoin/grouped.h"
#include "util/check.h"

namespace setalg::engine {

std::size_t ExecContext::threads() const {
  return pool_ == nullptr ? 1 : pool_->threads();
}

namespace {

using core::Relation;
using core::TupleView;
using core::Value;

bool CompareValues(core::Value a, ra::Cmp op, core::Value b) {
  switch (op) {
    case ra::Cmp::kEq:
      return a == b;
    case ra::Cmp::kNeq:
      return a != b;
    case ra::Cmp::kLt:
      return a < b;
    case ra::Cmp::kGt:
      return a > b;
  }
  return false;
}

// Checks the non-equality conjuncts of θ against a pair of rows.
bool ResidualHolds(const std::vector<ra::JoinAtom>& residual, core::TupleView left,
                   core::TupleView right) {
  for (const auto& atom : residual) {
    if (!CompareValues(left[atom.left - 1], atom.op, right[atom.right - 1])) {
      return false;
    }
  }
  return true;
}

// Splits θ into its equality part (used for hashing) and the residual.
void SplitAtoms(const std::vector<ra::JoinAtom>& atoms, std::vector<ra::JoinAtom>* eq,
                std::vector<ra::JoinAtom>* residual) {
  for (const auto& atom : atoms) {
    (atom.op == ra::Cmp::kEq ? eq : residual)->push_back(atom);
  }
}

std::string AtomsToString(const std::vector<ra::JoinAtom>& atoms) {
  std::ostringstream out;
  for (std::size_t k = 0; k < atoms.size(); ++k) {
    if (k > 0) out << ",";
    out << atoms[k].left << ra::CmpToString(atoms[k].op) << atoms[k].right;
  }
  return out.str();
}

std::string ColumnsToString(const std::vector<std::size_t>& columns) {
  std::ostringstream out;
  for (std::size_t k = 0; k < columns.size(); ++k) {
    if (k > 0) out << ",";
    out << columns[k];
  }
  return out.str();
}

// Consumes a binary batch stream into the shared grouping adapter — the
// batched spelling of setjoin::AsGrouped (to which it short-circuits when
// the stream is a plain relation streamer).
setjoin::GroupedRelation DrainGrouped(BatchIterator* input, std::size_t batch_size) {
  if (auto* direct = dynamic_cast<RelationBatchIterator*>(input)) {
    return setjoin::AsGrouped(direct->relation());
  }
  setjoin::GroupedBuilder builder;
  RowCursor cursor(input, 2, batch_size);
  cursor.Open();
  TupleView row;
  while (cursor.Next(&row)) builder.Add(row[0], row[1]);
  cursor.Close();
  return std::move(builder).Build();
}

// The generic semijoin as a whole-relation kernel — the partitioned
// spelling of GenericSemiJoinIterator's probe (the streaming iterator
// remains the serial path). Requires at least one equality atom (the
// partitioned path never runs without one).
Relation GenericSemijoinRelation(const Relation& left, const Relation& right,
                                 const std::vector<ra::JoinAtom>& atoms) {
  std::vector<ra::JoinAtom> eq;
  std::vector<ra::JoinAtom> residual;
  SplitAtoms(atoms, &eq, &residual);
  SETALG_CHECK(!eq.empty());
  std::vector<std::size_t> right_cols;
  right_cols.reserve(eq.size());
  for (const auto& atom : eq) right_cols.push_back(atom.right - 1);
  const core::HashIndex index(&right, std::move(right_cols));
  core::Tuple key(eq.size());
  Relation out(left.arity());
  for (std::size_t i = 0; i < left.size(); ++i) {
    const TupleView lt = left.tuple(i);
    for (std::size_t k = 0; k < eq.size(); ++k) key[k] = lt[eq[k].left - 1];
    bool found = false;
    index.ForEachMatch(key, [&](std::size_t r) {
      if (!found && ResidualHolds(residual, lt, right.tuple(r))) found = true;
    });
    if (found) out.Add(lt);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Generic iterator adapters.
// ---------------------------------------------------------------------------

// Streaming unary transform: pulls input rows one at a time, emits 0..1
// output rows per input row via Emit().
class StreamingUnaryIterator : public BatchIterator {
 public:
  StreamingUnaryIterator(std::unique_ptr<BatchIterator> input, std::size_t in_arity,
                         std::size_t batch_size)
      : input_(std::move(input)), cursor_(input_.get(), in_arity, batch_size) {}

  void Open() override { cursor_.Open(); }
  void Close() override { cursor_.Close(); }

  bool NextBatch(Batch& out) override {
    out.Clear();
    TupleView row;
    while (!out.full() && cursor_.Next(&row)) Emit(row, &out);
    return !out.empty();
  }

 protected:
  virtual void Emit(TupleView row, Batch* out) = 0;

 private:
  std::unique_ptr<BatchIterator> input_;
  RowCursor cursor_;
};

// Blocking adapter: `compute` consumes every input stream during Open()
// (each via DrainStream/DrainGrouped, which open and close it), then the
// normalized result streams out in batches.
class BlockingIterator final : public BatchIterator {
 public:
  using ComputeFn =
      std::function<Relation(std::vector<std::unique_ptr<BatchIterator>>&)>;

  BlockingIterator(std::vector<std::unique_ptr<BatchIterator>> inputs,
                   ComputeFn compute)
      : inputs_(std::move(inputs)), compute_(std::move(compute)) {}

  void Open() override {
    result_ = compute_(inputs_);
    result_.Normalize();
    pos_ = 0;
  }

  bool NextBatch(Batch& out) override {
    pos_ = StreamRelationRows(result_, pos_, &out);
    return !out.empty();
  }

  void Close() override {}
  bool distinct() const override { return true; }  // Normalized result.

 private:
  std::vector<std::unique_ptr<BatchIterator>> inputs_;
  ComputeFn compute_;
  Relation result_{0};
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Relational-algebra operators.
// ---------------------------------------------------------------------------

class ScanIterator final : public BatchIterator {
 public:
  ScanIterator(ExecContext& ctx, const std::string* name, std::size_t arity)
      : ctx_(ctx), name_(name), arity_(arity) {}

  void Open() override {
    SETALG_CHECK_STREAM(ctx_.db().schema().HasRelation(*name_))
        << "plan references unknown relation " << *name_;
    relation_ = &ctx_.db().relation(*name_);
    SETALG_CHECK_EQ(relation_->arity(), arity_);
    pos_ = 0;
  }

  bool NextBatch(Batch& out) override {
    pos_ = StreamRelationRows(*relation_, pos_, &out);
    return !out.empty();
  }

  void Close() override {}
  bool distinct() const override { return true; }  // Stored sets are normalized.

 private:
  ExecContext& ctx_;
  const std::string* name_;
  std::size_t arity_;
  const Relation* relation_ = nullptr;
  std::size_t pos_ = 0;
};

class ScanOp final : public PhysicalOp {
 public:
  ScanOp(std::string name, std::size_t arity, const ra::Expr* source)
      : PhysicalOp(arity, {}, source), name_(std::move(name)) {}

  std::string label() const override { return "scan " + name_; }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx, std::vector<std::unique_ptr<BatchIterator>>) const override {
    return std::make_unique<ScanIterator>(ctx, &name_, arity());
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK(children.empty());
    return std::make_shared<ScanOp>(name_, arity(), source());
  }

  const std::string* scan_relation() const override { return &name_; }

 private:
  std::string name_;
};

// Streams the left input's batches through untouched, then the right's;
// the overlap makes the stream non-distinct — downstream dedup restores
// set semantics.
class UnionIterator final : public BatchIterator {
 public:
  explicit UnionIterator(std::vector<std::unique_ptr<BatchIterator>> inputs)
      : inputs_(std::move(inputs)) {}

  void Open() override {
    inputs_[0]->Open();
    inputs_[1]->Open();
  }

  bool NextBatch(Batch& out) override {
    if (!left_done_) {
      if (inputs_[0]->NextBatch(out)) return true;
      left_done_ = true;
    }
    return inputs_[1]->NextBatch(out);
  }

  void Close() override {
    inputs_[0]->Close();
    inputs_[1]->Close();
  }

 private:
  std::vector<std::unique_ptr<BatchIterator>> inputs_;
  bool left_done_ = false;
};

class UnionOp final : public PhysicalOp {
 public:
  UnionOp(PhysicalOpPtr left, PhysicalOpPtr right, const ra::Expr* source)
      : PhysicalOp(left->arity(), {left, right}, source) {}

  std::string label() const override { return "union"; }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext&,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    return std::make_unique<UnionIterator>(std::move(inputs));
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 2u);
    return std::make_shared<UnionOp>(std::move(children[0]), std::move(children[1]),
                                     source());
  }
};

// Anti-join by hash: the right side builds a row set on Open, the left
// side streams through it.
class DifferenceIterator final : public BatchIterator {
 public:
  DifferenceIterator(std::vector<std::unique_ptr<BatchIterator>> inputs,
                     std::size_t arity, std::size_t batch_size)
      : inputs_(std::move(inputs)),
        left_(inputs_[0].get(), arity, batch_size),
        right_(inputs_[1].get(), arity, batch_size),
        excluded_(arity) {}

  void Open() override {
    left_.Open();
    right_.Open();
    TupleView row;
    while (right_.Next(&row)) excluded_.Insert(row);
  }

  bool NextBatch(Batch& out) override {
    out.Clear();
    TupleView row;
    while (!out.full() && left_.Next(&row)) {
      if (!excluded_.Contains(row)) out.Add(row);
    }
    return !out.empty();
  }

  void Close() override {
    left_.Close();
    right_.Close();
  }

  bool distinct() const override { return true; }  // Subset of the left set.

 private:
  std::vector<std::unique_ptr<BatchIterator>> inputs_;
  RowCursor left_;
  RowCursor right_;
  RowSet excluded_;
};

class DifferenceOp final : public PhysicalOp {
 public:
  DifferenceOp(PhysicalOpPtr left, PhysicalOpPtr right, const ra::Expr* source)
      : PhysicalOp(left->arity(), {left, right}, source) {}

  std::string label() const override { return "difference"; }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    return std::make_unique<DifferenceIterator>(std::move(inputs), arity(),
                                                ctx.batch_size());
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 2u);
    return std::make_shared<DifferenceOp>(std::move(children[0]),
                                          std::move(children[1]), source());
  }
};

class ProjectIterator final : public StreamingUnaryIterator {
 public:
  ProjectIterator(std::unique_ptr<BatchIterator> input, std::size_t in_arity,
                  const std::vector<std::size_t>* columns, std::size_t batch_size)
      : StreamingUnaryIterator(std::move(input), in_arity, batch_size),
        columns_(columns),
        row_(columns->size()) {}

 protected:
  void Emit(TupleView t, Batch* out) override {
    for (std::size_t k = 0; k < columns_->size(); ++k) {
      row_[k] = t[(*columns_)[k] - 1];
    }
    out->Add(row_);
  }

 private:
  const std::vector<std::size_t>* columns_;
  core::Tuple row_;
  // distinct() stays false: dropping columns merges rows.
};

class ProjectOp final : public PhysicalOp {
 public:
  ProjectOp(PhysicalOpPtr input, std::vector<std::size_t> columns,
            const ra::Expr* source)
      : PhysicalOp(columns.size(), {std::move(input)}, source),
        columns_(std::move(columns)) {}

  std::string label() const override {
    return "project[" + ColumnsToString(columns_) + "]";
  }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    return std::make_unique<ProjectIterator>(std::move(inputs[0]), child(0)->arity(),
                                             &columns_, ctx.batch_size());
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 1u);
    return std::make_shared<ProjectOp>(std::move(children[0]), columns_, source());
  }

  const std::vector<std::size_t>& columns() const { return columns_; }

 private:
  std::vector<std::size_t> columns_;
};

class SelectIterator final : public StreamingUnaryIterator {
 public:
  SelectIterator(std::unique_ptr<BatchIterator> input, std::size_t in_arity,
                 ra::Cmp op, std::size_t i, std::size_t j, std::size_t batch_size)
      : StreamingUnaryIterator(std::move(input), in_arity, batch_size),
        op_(op),
        i_(i),
        j_(j) {}

  bool distinct() const override { return true; }  // Subset of a set input.

 protected:
  void Emit(TupleView t, Batch* out) override {
    if (CompareValues(t[i_ - 1], op_, t[j_ - 1])) out->Add(t);
  }

 private:
  ra::Cmp op_;
  std::size_t i_;
  std::size_t j_;
};

class SelectOp final : public PhysicalOp {
 public:
  SelectOp(PhysicalOpPtr input, ra::Cmp op, std::size_t i, std::size_t j,
           const ra::Expr* source)
      : PhysicalOp(input->arity(), {input}, source), op_(op), i_(i), j_(j) {}

  std::string label() const override {
    std::ostringstream out;
    out << "select[" << i_ << ra::CmpToString(op_) << j_ << "]";
    return out.str();
  }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    return std::make_unique<SelectIterator>(std::move(inputs[0]), arity(), op_, i_, j_,
                                            ctx.batch_size());
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 1u);
    return std::make_shared<SelectOp>(std::move(children[0]), op_, i_, j_, source());
  }

 private:
  ra::Cmp op_;
  std::size_t i_;
  std::size_t j_;
};

class ConstTagIterator final : public StreamingUnaryIterator {
 public:
  ConstTagIterator(std::unique_ptr<BatchIterator> input, std::size_t in_arity,
                   core::Value value, std::size_t batch_size)
      : StreamingUnaryIterator(std::move(input), in_arity, batch_size),
        value_(value),
        row_(in_arity + 1) {}

  bool distinct() const override { return true; }  // Injective on a set input.

 protected:
  void Emit(TupleView t, Batch* out) override {
    std::copy(t.begin(), t.end(), row_.begin());
    row_.back() = value_;
    out->Add(row_);
  }

 private:
  core::Value value_;
  core::Tuple row_;
};

class ConstTagOp final : public PhysicalOp {
 public:
  ConstTagOp(PhysicalOpPtr input, core::Value value, const ra::Expr* source)
      : PhysicalOp(input->arity() + 1, {input}, source), value_(value) {}

  std::string label() const override {
    std::ostringstream out;
    out << "tag[" << value_ << "]";
    return out.str();
  }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    return std::make_unique<ConstTagIterator>(std::move(inputs[0]), arity() - 1,
                                              value_, ctx.batch_size());
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 1u);
    return std::make_shared<ConstTagOp>(std::move(children[0]), value_, source());
  }

 private:
  core::Value value_;
};

// θ-join with a streaming probe side: Open() materializes the right
// (build) input and hashes its equality columns; NextBatch() probes one
// left row at a time, spilling past-capacity matches into a carry-over
// buffer so a single wide probe never loses rows.
class JoinIterator final : public BatchIterator {
 public:
  JoinIterator(ExecContext& ctx, std::vector<std::unique_ptr<BatchIterator>> inputs,
               const std::vector<ra::JoinAtom>* atoms, std::size_t left_arity,
               std::size_t right_arity)
      : ctx_(ctx),
        inputs_(std::move(inputs)),
        left_(inputs_[0].get(), left_arity, ctx.batch_size()),
        left_arity_(left_arity),
        right_arity_(right_arity),
        out_arity_(left_arity + right_arity),
        row_(out_arity_) {
    SplitAtoms(*atoms, &eq_, &residual_);
  }

  void Open() override {
    left_.Open();
    right_ = MaterializedInput::From(inputs_[1].get(), right_arity_,
                                     ctx_.batch_size());
    if (!eq_.empty()) {
      std::vector<std::size_t> right_cols;
      right_cols.reserve(eq_.size());
      for (const auto& atom : eq_) right_cols.push_back(atom.right - 1);
      index_.emplace(&right_.get(), std::move(right_cols));
      key_.resize(eq_.size());
    }
  }

  bool NextBatch(Batch& out) override {
    out.Clear();
    FlushPending(&out);
    const Relation& right = right_.get();
    TupleView lt;
    // After FlushPending either the spill is empty or `out` is full, so
    // this loop never interleaves spilled and fresh probes out of order.
    while (!out.full() && left_.Next(&lt)) {
      if (!eq_.empty()) {
        for (std::size_t k = 0; k < eq_.size(); ++k) key_[k] = lt[eq_[k].left - 1];
        index_->ForEachMatch(key_, [&](std::size_t r) {
          TupleView rt = right.tuple(r);
          if (ResidualHolds(residual_, lt, rt)) EmitRow(lt, rt, &out);
        });
      } else {
        // Pure inequality (or cartesian) join: nested loop over the build.
        for (std::size_t j = 0; j < right.size(); ++j) {
          TupleView rt = right.tuple(j);
          if (ResidualHolds(residual_, lt, rt)) EmitRow(lt, rt, &out);
        }
      }
    }
    return !out.empty();
  }

  void Close() override { left_.Close(); }

  // Distinct inputs make every (left, right) combination unique.
  bool distinct() const override { return true; }

 private:
  void EmitRow(TupleView lt, TupleView rt, Batch* out) {
    std::copy(lt.begin(), lt.end(), row_.begin());
    std::copy(rt.begin(), rt.end(),
              row_.begin() + static_cast<std::ptrdiff_t>(left_arity_));
    ctx_.CountJoinRows(1);
    if (!out->full()) {
      out->Add(row_);
    } else {
      pending_.insert(pending_.end(), row_.begin(), row_.end());
    }
  }

  void FlushPending(Batch* out) {
    while (pending_pos_ < pending_.size() && !out->full()) {
      out->Add(TupleView(pending_.data() + pending_pos_, out_arity_));
      pending_pos_ += out_arity_;
    }
    if (pending_pos_ >= pending_.size()) {
      pending_.clear();
      pending_pos_ = 0;
    }
  }

  ExecContext& ctx_;
  std::vector<std::unique_ptr<BatchIterator>> inputs_;
  RowCursor left_;
  std::size_t left_arity_;
  std::size_t right_arity_;
  std::size_t out_arity_;
  std::vector<ra::JoinAtom> eq_;
  std::vector<ra::JoinAtom> residual_;
  MaterializedInput right_;
  std::optional<core::HashIndex> index_;
  core::Tuple key_;
  core::Tuple row_;
  std::vector<Value> pending_;  // Rows overflowing a full output batch.
  std::size_t pending_pos_ = 0;
};

class JoinOp final : public PhysicalOp {
 public:
  JoinOp(PhysicalOpPtr left, PhysicalOpPtr right, std::vector<ra::JoinAtom> atoms,
         const ra::Expr* source)
      : PhysicalOp(left->arity() + right->arity(), {left, right}, source),
        atoms_(std::move(atoms)) {}

  std::string label() const override { return "join[" + AtomsToString(atoms_) + "]"; }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    return std::make_unique<JoinIterator>(ctx, std::move(inputs), &atoms_,
                                          child(0)->arity(), child(1)->arity());
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 2u);
    return std::make_shared<JoinOp>(std::move(children[0]), std::move(children[1]),
                                    atoms_, source());
  }

 private:
  std::vector<ra::JoinAtom> atoms_;
};

// The generic (reference) semijoin with a streaming probe side: right is
// built on Open, each left row passes through at most once.
class GenericSemiJoinIterator final : public BatchIterator {
 public:
  GenericSemiJoinIterator(ExecContext& ctx,
                          std::vector<std::unique_ptr<BatchIterator>> inputs,
                          const std::vector<ra::JoinAtom>* atoms,
                          std::size_t left_arity, std::size_t right_arity)
      : ctx_(ctx),
        inputs_(std::move(inputs)),
        left_(inputs_[0].get(), left_arity, ctx.batch_size()),
        right_arity_(right_arity) {
    SplitAtoms(*atoms, &eq_, &residual_);
  }

  void Open() override {
    left_.Open();
    right_ = MaterializedInput::From(inputs_[1].get(), right_arity_,
                                     ctx_.batch_size());
    if (!eq_.empty()) {
      std::vector<std::size_t> right_cols;
      right_cols.reserve(eq_.size());
      for (const auto& atom : eq_) right_cols.push_back(atom.right - 1);
      index_.emplace(&right_.get(), std::move(right_cols));
      key_.resize(eq_.size());
    }
  }

  bool NextBatch(Batch& out) override {
    out.Clear();
    TupleView lt;
    while (!out.full() && left_.Next(&lt)) {
      if (Matches(lt)) out.Add(lt);
    }
    return !out.empty();
  }

  void Close() override { left_.Close(); }
  bool distinct() const override { return true; }  // Subset of the left set.

 private:
  bool Matches(TupleView lt) {
    const Relation& right = right_.get();
    if (!eq_.empty()) {
      for (std::size_t k = 0; k < eq_.size(); ++k) key_[k] = lt[eq_[k].left - 1];
      bool found = false;
      index_->ForEachMatch(key_, [&](std::size_t r) {
        if (!found && ResidualHolds(residual_, lt, right.tuple(r))) found = true;
      });
      return found;
    }
    if (residual_.empty()) {
      // θ empty: the left tuple survives iff the right side is nonempty.
      return !right.empty();
    }
    for (std::size_t j = 0; j < right.size(); ++j) {
      if (ResidualHolds(residual_, lt, right.tuple(j))) return true;
    }
    return false;
  }

  ExecContext& ctx_;
  std::vector<std::unique_ptr<BatchIterator>> inputs_;
  RowCursor left_;
  std::size_t right_arity_;
  std::vector<ra::JoinAtom> eq_;
  std::vector<ra::JoinAtom> residual_;
  MaterializedInput right_;
  std::optional<core::HashIndex> index_;
  core::Tuple key_;
};

class SemiJoinOp final : public PhysicalOp {
 public:
  SemiJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, std::vector<ra::JoinAtom> atoms,
             SemijoinStrategy strategy, const ra::Expr* source, std::size_t partitions)
      : PhysicalOp(left->arity(), {left, right}, source),
        atoms_(std::move(atoms)),
        strategy_(strategy),
        partitions_(partitions) {}

  std::string label() const override {
    return std::string("semijoin[") + AtomsToString(atoms_) + "]" +
           (strategy_ == SemijoinStrategy::kFastKernel ? " (fast)" : " (generic)");
  }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    const std::size_t parts = ResolvePartitions(partitions_, ctx);
    if (parts > 1) {
      // Co-partition both sides by the first equality atom: rows that can
      // match share that atom's value, hence a partition, so the disjoint
      // (left is partitioned) per-partition semijoins union to the serial
      // output. No equality atom → no co-partitioning key → stay serial.
      const ra::JoinAtom* eq = nullptr;
      for (const auto& atom : atoms_) {
        if (atom.op == ra::Cmp::kEq) {
          eq = &atom;
          break;
        }
      }
      if (eq != nullptr) {
        const std::size_t batch_size = ctx.batch_size();
        const std::size_t left_arity = child(0)->arity();
        const std::size_t right_arity = child(1)->arity();
        const bool fast = strategy_ == SemijoinStrategy::kFastKernel;
        const auto* atoms = &atoms_;
        // Shard-aligned fast path: a side scanned straight from storage
        // sharded on its co-partitioning column is already routed exactly
        // the way PartitionByColumn routes (both use
        // setjoin::PartitionOfKey), so its partition pass can be skipped
        // and the shards paired index-for-index with the other side's
        // partitions. Partition count is pinned to the shard count so the
        // pairing stays aligned; no shard splitting (a split slice would
        // break the index pairing).
        if (const auto* sharded =
                dynamic_cast<const core::ShardedView*>(&ctx.db());
            sharded != nullptr && sharded->shard_count() > 1) {
          const std::size_t shard_parts = sharded->shard_count();
          const auto slice_side =
              [&](const PhysicalOp* side,
                  std::size_t column) -> std::shared_ptr<std::vector<ShardSlice>> {
            const std::string* name = side->scan_relation();
            if (name == nullptr) return nullptr;
            auto slices =
                ShardAlignedSlices(ctx.db(), *name, column, shard_parts, false);
            if (!slices.has_value()) return nullptr;
            return std::make_shared<std::vector<ShardSlice>>(std::move(*slices));
          };
          auto left_slices = slice_side(child(0).get(), eq->left);
          auto right_slices = slice_side(child(1).get(), eq->right);
          if (left_slices != nullptr || right_slices != nullptr) {
            const std::size_t left_rows =
                left_slices ? ctx.db().relation(*child(0)->scan_relation()).size()
                            : 0;
            const std::size_t right_rows =
                right_slices
                    ? ctx.db().relation(*child(1)->scan_relation()).size()
                    : 0;
            const std::size_t eq_left = eq->left;
            const std::size_t eq_right = eq->right;
            ExecContext* ctx_ptr = &ctx;
            return std::make_unique<PartitionedIterator>(
                ctx, arity(), std::move(inputs),
                [shard_parts, batch_size, left_arity, right_arity, fast, atoms,
                 left_slices, right_slices, left_rows, right_rows, eq_left,
                 eq_right,
                 ctx_ptr](std::vector<std::unique_ptr<BatchIterator>>& streams) {
                  auto left_parts = std::make_shared<std::vector<Relation>>();
                  auto right_parts = std::make_shared<std::vector<Relation>>();
                  if (left_slices != nullptr) {
                    ctx_ptr->CountSkippedPartitionPass();
                    ConsumeBypassedScan(streams[0].get(), left_rows);
                  } else {
                    const MaterializedInput left = MaterializedInput::From(
                        streams[0].get(), left_arity, batch_size);
                    *left_parts =
                        PartitionByColumn(left.get(), eq_left, shard_parts);
                  }
                  if (right_slices != nullptr) {
                    ctx_ptr->CountSkippedPartitionPass();
                    ConsumeBypassedScan(streams[1].get(), right_rows);
                  } else {
                    const MaterializedInput right = MaterializedInput::From(
                        streams[1].get(), right_arity, batch_size);
                    *right_parts =
                        PartitionByColumn(right.get(), eq_right, shard_parts);
                  }
                  std::vector<PartitionTask> tasks;
                  tasks.reserve(shard_parts);
                  for (std::size_t p = 0; p < shard_parts; ++p) {
                    tasks.push_back([left_slices, right_slices, left_parts,
                                     right_parts, p, fast, atoms] {
                      const Relation& l = left_slices != nullptr
                                              ? (*left_slices)[p].get()
                                              : (*left_parts)[p];
                      const Relation& r = right_slices != nullptr
                                              ? (*right_slices)[p].get()
                                              : (*right_parts)[p];
                      return fast ? sa::Semijoin(l, r, *atoms)
                                  : GenericSemijoinRelation(l, r, *atoms);
                    });
                  }
                  return tasks;
                });
          }
        }
        return std::make_unique<PartitionedIterator>(
            ctx, arity(), std::move(inputs),
            [parts, batch_size, left_arity, right_arity, fast, eq,
             atoms](std::vector<std::unique_ptr<BatchIterator>>& streams) {
              const MaterializedInput left =
                  MaterializedInput::From(streams[0].get(), left_arity, batch_size);
              const MaterializedInput right =
                  MaterializedInput::From(streams[1].get(), right_arity, batch_size);
              auto left_parts = std::make_shared<std::vector<Relation>>(
                  PartitionByColumn(left.get(), eq->left, parts));
              auto right_parts = std::make_shared<std::vector<Relation>>(
                  PartitionByColumn(right.get(), eq->right, parts));
              std::vector<PartitionTask> tasks;
              tasks.reserve(parts);
              for (std::size_t p = 0; p < parts; ++p) {
                tasks.push_back([left_parts, right_parts, p, fast, atoms] {
                  const Relation& l = (*left_parts)[p];
                  const Relation& r = (*right_parts)[p];
                  return fast ? sa::Semijoin(l, r, *atoms)
                              : GenericSemijoinRelation(l, r, *atoms);
                });
              }
              return tasks;
            });
      }
    }
    if (strategy_ == SemijoinStrategy::kFastKernel) {
      // The sa:: kernels pick their own access paths over whole relations;
      // they consume batches and emit their result in batches.
      const std::size_t left_arity = child(0)->arity();
      const std::size_t right_arity = child(1)->arity();
      const std::size_t batch_size = ctx.batch_size();
      return std::make_unique<BlockingIterator>(
          std::move(inputs),
          [this, left_arity, right_arity,
           batch_size](std::vector<std::unique_ptr<BatchIterator>>& streams) {
            const MaterializedInput left =
                MaterializedInput::From(streams[0].get(), left_arity, batch_size);
            const MaterializedInput right =
                MaterializedInput::From(streams[1].get(), right_arity, batch_size);
            return sa::Semijoin(left.get(), right.get(), atoms_);
          });
    }
    return std::make_unique<GenericSemiJoinIterator>(
        ctx, std::move(inputs), &atoms_, child(0)->arity(), child(1)->arity());
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 2u);
    return std::make_shared<SemiJoinOp>(std::move(children[0]), std::move(children[1]),
                                        atoms_, strategy_, source(), partitions_);
  }

 private:
  std::vector<ra::JoinAtom> atoms_;
  SemijoinStrategy strategy_;
  std::size_t partitions_;
};

// ---------------------------------------------------------------------------
// Division.
// ---------------------------------------------------------------------------

// Division: the divisor (build side) is always consumed first; the
// hash/aggregate algorithms then probe the dividend stream with O(#groups)
// state, while the remaining algorithms (sort-merge needs sorted runs,
// nested-loop an index, classic-ra a database) materialize it and call
// the setjoin:: kernel — blocking, but still batch-in/batch-out.
class DivisionIterator final : public BatchIterator {
 public:
  DivisionIterator(ExecContext& ctx, std::vector<std::unique_ptr<BatchIterator>> inputs,
                   setjoin::DivisionAlgorithm algorithm, bool equality)
      : ctx_(ctx),
        inputs_(std::move(inputs)),
        algorithm_(algorithm),
        equality_(equality) {}

  void Open() override {
    const std::size_t batch_size = ctx_.batch_size();
    const MaterializedInput divisor =
        MaterializedInput::From(inputs_[1].get(), 1, batch_size);
    switch (algorithm_) {
      case setjoin::DivisionAlgorithm::kHashDivision:
      case setjoin::DivisionAlgorithm::kAggregate: {
        // An already-materialized dividend (the materializing Execute
        // path) goes straight to the kernel; a live pipeline edge is
        // probed batch-at-a-time with O(#groups) state.
        if (auto* direct = dynamic_cast<RelationBatchIterator*>(inputs_[0].get())) {
          result_ = equality_
                        ? setjoin::DivideEqual(direct->relation(), divisor.get(),
                                               algorithm_)
                        : setjoin::Divide(direct->relation(), divisor.get(),
                                          algorithm_);
          break;
        }
        // The shared single-pass kernels (setjoin::DivideStream), fed the
        // probe stream: duplicate-free by the batch-surface contract, so
        // group sizes count distinct pairs exactly like the relation path.
        RowCursor dividend(inputs_[0].get(), 2, batch_size);
        dividend.Open();
        result_ = setjoin::DivideStream(
            [&dividend](TupleView* t) { return dividend.Next(t); }, divisor.get(),
            algorithm_, equality_);
        dividend.Close();
        break;
      }
      default: {
        const MaterializedInput dividend =
            MaterializedInput::From(inputs_[0].get(), 2, batch_size);
        result_ = equality_
                      ? setjoin::DivideEqual(dividend.get(), divisor.get(), algorithm_)
                      : setjoin::Divide(dividend.get(), divisor.get(), algorithm_);
        break;
      }
    }
    result_.Normalize();
    pos_ = 0;
  }

  bool NextBatch(Batch& out) override {
    pos_ = StreamRelationRows(result_, pos_, &out);
    return !out.empty();
  }

  void Close() override {}
  bool distinct() const override { return true; }  // One row per key.

 private:
  ExecContext& ctx_;
  std::vector<std::unique_ptr<BatchIterator>> inputs_;
  setjoin::DivisionAlgorithm algorithm_;
  bool equality_;
  Relation result_{1};
  std::size_t pos_ = 0;
};

class DivisionOp final : public PhysicalOp {
 public:
  DivisionOp(PhysicalOpPtr dividend, PhysicalOpPtr divisor,
             setjoin::DivisionAlgorithm algorithm, bool equality,
             const ra::Expr* source, std::size_t partitions)
      : PhysicalOp(1, {std::move(dividend), std::move(divisor)}, source),
        algorithm_(algorithm),
        equality_(equality),
        partitions_(partitions) {}

  std::string label() const override {
    return std::string(equality_ ? "division=[" : "division[") +
           setjoin::DivisionAlgorithmToString(algorithm_) + "]";
  }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    const std::size_t parts = ResolvePartitions(partitions_, ctx);
    // Every group lies wholly in its key's partition, so dividing each
    // partition against the shared divisor yields key-disjoint slices of
    // the serial result — for every direct algorithm. kClassicRa stays
    // serial: it evaluates one RA expression over the whole dividend.
    if (parts > 1 && algorithm_ != setjoin::DivisionAlgorithm::kClassicRa) {
      const std::size_t batch_size = ctx.batch_size();
      const auto algorithm = algorithm_;
      const bool equality = equality_;
      // Shard-aligned fast path: a dividend scanned straight from storage
      // that is sharded on the group-key column is already partitioned
      // exactly the way PartitionByColumn would — feed the stored shards
      // (heavy ones subdivided at key boundaries) to the workers and skip
      // the partition pass.
      if (const std::string* name = child(0)->scan_relation()) {
        if (auto aligned = ShardAlignedSlices(ctx.db(), *name, 1, parts, true)) {
          auto slices =
              std::make_shared<std::vector<ShardSlice>>(std::move(*aligned));
          const std::size_t rows = ctx.db().relation(*name).size();
          ExecContext* ctx_ptr = &ctx;
          return std::make_unique<PartitionedIterator>(
              ctx, arity(), std::move(inputs),
              [slices, rows, batch_size, algorithm, equality,
               ctx_ptr](std::vector<std::unique_ptr<BatchIterator>>& streams) {
                ctx_ptr->CountSkippedPartitionPass();
                ConsumeBypassedScan(streams[0].get(), rows);
                auto divisor = std::make_shared<MaterializedInput>(
                    MaterializedInput::From(streams[1].get(), 1, batch_size));
                divisor->get().Normalize();
                std::vector<PartitionTask> tasks;
                tasks.reserve(slices->size());
                for (std::size_t p = 0; p < slices->size(); ++p) {
                  tasks.push_back([slices, divisor, p, algorithm, equality] {
                    const Relation& slice = (*slices)[p].get();
                    return equality ? setjoin::DivideEqual(slice, divisor->get(),
                                                           algorithm)
                                    : setjoin::Divide(slice, divisor->get(),
                                                      algorithm);
                  });
                }
                return tasks;
              });
        }
      }
      return std::make_unique<PartitionedIterator>(
          ctx, arity(), std::move(inputs),
          [parts, batch_size, algorithm,
           equality](std::vector<std::unique_ptr<BatchIterator>>& streams) {
            // Both inputs are consumed on the driving thread; the divisor
            // is normalized here so workers only ever read it.
            auto divisor = std::make_shared<MaterializedInput>(
                MaterializedInput::From(streams[1].get(), 1, batch_size));
            divisor->get().Normalize();
            const MaterializedInput dividend =
                MaterializedInput::From(streams[0].get(), 2, batch_size);
            auto slices = std::make_shared<std::vector<Relation>>(
                PartitionByColumn(dividend.get(), 1, parts));
            std::vector<PartitionTask> tasks;
            tasks.reserve(parts);
            for (std::size_t p = 0; p < parts; ++p) {
              tasks.push_back([slices, divisor, p, algorithm, equality] {
                const Relation& slice = (*slices)[p];
                return equality
                           ? setjoin::DivideEqual(slice, divisor->get(), algorithm)
                           : setjoin::Divide(slice, divisor->get(), algorithm);
              });
            }
            return tasks;
          });
    }
    return std::make_unique<DivisionIterator>(ctx, std::move(inputs), algorithm_,
                                              equality_);
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 2u);
    return std::make_shared<DivisionOp>(std::move(children[0]), std::move(children[1]),
                                        algorithm_, equality_, source(), partitions_);
  }

 private:
  setjoin::DivisionAlgorithm algorithm_;
  bool equality_;
  std::size_t partitions_;
};

// ---------------------------------------------------------------------------
// Set joins. Grouping is inherently blocking (a group's elements may span
// the whole stream), so these consume their inputs through the shared
// GroupedBuilder adapter and emit the kernel's result in batches.
//
// Partitioned execution splits the left side's groups by key
// (setjoin::PartitionByKey) and shares the right side read-only: the
// output is keyed on the left group in column 1, so per-partition kernel
// outputs are disjoint and the fan-in reproduces the serial result.
// ---------------------------------------------------------------------------

// The shared fan-out plan of the partitioned set joins: `kernel` is the
// serial per-partition kernel (left partition × whole right side).
// `left_child` (may be null) lets the shard-aligned fast path recognize a
// left side scanned straight from storage sharded on the set-key column:
// the stored shards already respect group boundaries (shard routing and
// PartitionByKey share setjoin::PartitionOfKey), so the drain-and-
// partition pass is skipped and each task groups its own slice.
std::unique_ptr<BatchIterator> MakePartitionedSetJoin(
    ExecContext& ctx, std::vector<std::unique_ptr<BatchIterator>> inputs,
    std::size_t parts,
    std::function<Relation(const setjoin::GroupedRelation&,
                           const setjoin::GroupedRelation&)>
        kernel,
    const PhysicalOp* left_child) {
  const std::size_t batch_size = ctx.batch_size();
  auto shared_kernel = std::make_shared<
      std::function<Relation(const setjoin::GroupedRelation&,
                             const setjoin::GroupedRelation&)>>(std::move(kernel));
  if (left_child != nullptr) {
    if (const std::string* name = left_child->scan_relation()) {
      if (auto aligned = ShardAlignedSlices(ctx.db(), *name, 1, parts, true)) {
        auto slices =
            std::make_shared<std::vector<ShardSlice>>(std::move(*aligned));
        const std::size_t rows = ctx.db().relation(*name).size();
        ExecContext* ctx_ptr = &ctx;
        return std::make_unique<PartitionedIterator>(
            ctx, 2, std::move(inputs),
            [slices, rows, batch_size, shared_kernel,
             ctx_ptr](std::vector<std::unique_ptr<BatchIterator>>& streams) {
              ctx_ptr->CountSkippedPartitionPass();
              ConsumeBypassedScan(streams[0].get(), rows);
              auto right = std::make_shared<setjoin::GroupedRelation>(
                  DrainGrouped(streams[1].get(), batch_size));
              std::vector<PartitionTask> tasks;
              tasks.reserve(slices->size());
              for (std::size_t p = 0; p < slices->size(); ++p) {
                tasks.push_back([slices, right, p, shared_kernel] {
                  // Grouping the slice happens on the worker, so the
                  // serial partition pass's grouping cost is parallelized
                  // too, not just skipped.
                  return (*shared_kernel)(
                      setjoin::AsGrouped((*slices)[p].get()), *right);
                });
              }
              return tasks;
            });
      }
    }
  }
  return std::make_unique<PartitionedIterator>(
      ctx, 2, std::move(inputs),
      [parts, batch_size,
       shared_kernel](std::vector<std::unique_ptr<BatchIterator>>& streams) {
        auto left = std::make_shared<std::vector<setjoin::GroupedRelation>>(
            setjoin::PartitionByKey(DrainGrouped(streams[0].get(), batch_size),
                                    parts));
        auto right = std::make_shared<setjoin::GroupedRelation>(
            DrainGrouped(streams[1].get(), batch_size));
        std::vector<PartitionTask> tasks;
        tasks.reserve(parts);
        for (std::size_t p = 0; p < parts; ++p) {
          tasks.push_back([left, right, p, shared_kernel] {
            return (*shared_kernel)((*left)[p], *right);
          });
        }
        return tasks;
      });
}

class SetContainmentJoinOp final : public PhysicalOp {
 public:
  SetContainmentJoinOp(PhysicalOpPtr left, PhysicalOpPtr right,
                       setjoin::ContainmentAlgorithm algorithm, const ra::Expr* source,
                       std::size_t partitions)
      : PhysicalOp(2, {std::move(left), std::move(right)}, source),
        algorithm_(algorithm),
        partitions_(partitions) {}

  std::string label() const override {
    return std::string("set-containment-join[") +
           setjoin::ContainmentAlgorithmToString(algorithm_) + "]";
  }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    const std::size_t batch_size = ctx.batch_size();
    const std::size_t parts = ResolvePartitions(partitions_, ctx);
    if (parts > 1) {
      const auto algorithm = algorithm_;
      return MakePartitionedSetJoin(
          ctx, std::move(inputs), parts,
          [algorithm](const setjoin::GroupedRelation& l,
                      const setjoin::GroupedRelation& r) {
            return setjoin::SetContainmentJoin(l, r, algorithm);
          },
          child(0).get());
    }
    return std::make_unique<BlockingIterator>(
        std::move(inputs),
        [this, batch_size](std::vector<std::unique_ptr<BatchIterator>>& streams) {
          return setjoin::SetContainmentJoin(DrainGrouped(streams[0].get(), batch_size),
                                             DrainGrouped(streams[1].get(), batch_size),
                                             algorithm_);
        });
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 2u);
    return std::make_shared<SetContainmentJoinOp>(
        std::move(children[0]), std::move(children[1]), algorithm_, source(),
        partitions_);
  }

 private:
  setjoin::ContainmentAlgorithm algorithm_;
  std::size_t partitions_;
};

class SetEqualityJoinOp final : public PhysicalOp {
 public:
  SetEqualityJoinOp(PhysicalOpPtr left, PhysicalOpPtr right,
                    setjoin::EqualityJoinAlgorithm algorithm, const ra::Expr* source,
                    std::size_t partitions)
      : PhysicalOp(2, {std::move(left), std::move(right)}, source),
        algorithm_(algorithm),
        partitions_(partitions) {}

  std::string label() const override {
    return std::string("set-equality-join[") +
           setjoin::EqualityJoinAlgorithmToString(algorithm_) + "]";
  }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    const std::size_t batch_size = ctx.batch_size();
    const std::size_t parts = ResolvePartitions(partitions_, ctx);
    if (parts > 1) {
      const auto algorithm = algorithm_;
      return MakePartitionedSetJoin(
          ctx, std::move(inputs), parts,
          [algorithm](const setjoin::GroupedRelation& l,
                      const setjoin::GroupedRelation& r) {
            return setjoin::SetEqualityJoin(l, r, algorithm);
          },
          child(0).get());
    }
    return std::make_unique<BlockingIterator>(
        std::move(inputs),
        [this, batch_size](std::vector<std::unique_ptr<BatchIterator>>& streams) {
          return setjoin::SetEqualityJoin(DrainGrouped(streams[0].get(), batch_size),
                                          DrainGrouped(streams[1].get(), batch_size),
                                          algorithm_);
        });
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 2u);
    return std::make_shared<SetEqualityJoinOp>(std::move(children[0]),
                                               std::move(children[1]), algorithm_,
                                               source(), partitions_);
  }

 private:
  setjoin::EqualityJoinAlgorithm algorithm_;
  std::size_t partitions_;
};

class SetOverlapJoinOp final : public PhysicalOp {
 public:
  SetOverlapJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, const ra::Expr* source,
                   std::size_t partitions)
      : PhysicalOp(2, {std::move(left), std::move(right)}, source),
        partitions_(partitions) {}

  std::string label() const override { return "set-overlap-join"; }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx,
      std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    const std::size_t batch_size = ctx.batch_size();
    const std::size_t parts = ResolvePartitions(partitions_, ctx);
    if (parts > 1) {
      return MakePartitionedSetJoin(
          ctx, std::move(inputs), parts,
          [](const setjoin::GroupedRelation& l, const setjoin::GroupedRelation& r) {
            return setjoin::SetOverlapJoin(l, r);
          },
          child(0).get());
    }
    return std::make_unique<BlockingIterator>(
        std::move(inputs),
        [batch_size](std::vector<std::unique_ptr<BatchIterator>>& streams) {
          return setjoin::SetOverlapJoin(DrainGrouped(streams[0].get(), batch_size),
                                         DrainGrouped(streams[1].get(), batch_size));
        });
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> children) const override {
    SETALG_CHECK_EQ(children.size(), 2u);
    return std::make_shared<SetOverlapJoinOp>(std::move(children[0]),
                                              std::move(children[1]), source(),
                                              partitions_);
  }

 private:
  std::size_t partitions_;
};

void AppendTree(const PhysicalOp& op, std::size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  out->append(op.label());
  out->push_back('\n');
  for (const auto& child : op.children()) AppendTree(*child, depth + 1, out);
}

void CollectScans(const PhysicalOpPtr& op,
                  std::unordered_set<const PhysicalOp*>* seen,
                  std::vector<std::string>* names) {
  if (!seen->insert(op.get()).second) return;  // Shared subplans walk once.
  if (const std::string* name = op->scan_relation()) names->push_back(*name);
  for (const auto& child : op->children()) CollectScans(child, seen, names);
}

}  // namespace

const char* CacheOutcomeToString(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kUncached:
      return "uncached";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kRevalidated:
      return "revalidated";
    case CacheOutcome::kRepicked:
      return "repicked";
    case CacheOutcome::kResultHit:
      return "result-hit";
  }
  return "?";
}

std::vector<std::string> CollectScanRelations(const PhysicalOpPtr& root) {
  std::vector<std::string> names;
  std::unordered_set<const PhysicalOp*> seen;
  if (root != nullptr) CollectScans(root, &seen, &names);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

core::Relation PhysicalOp::Execute(
    ExecContext& ctx, const std::vector<const core::Relation*>& inputs) const {
  SETALG_CHECK_EQ(inputs.size(), children_.size());
  std::vector<std::unique_ptr<BatchIterator>> streams;
  streams.reserve(inputs.size());
  for (const core::Relation* input : inputs) {
    streams.push_back(std::make_unique<RelationBatchIterator>(input));
  }
  std::unique_ptr<BatchIterator> it = MakeBatchIterator(ctx, std::move(streams));
  it->Open();
  Batch batch(arity(), ctx.batch_size());
  core::Relation out(arity());
  while (it->NextBatch(batch)) {
    ctx.CountBatch(batch);
    AppendBatchTo(batch, &out);
  }
  it->Close();
  return out;
}

std::string PhysicalOp::ToString() const {
  std::string out;
  AppendTree(*this, 0, &out);
  return out;
}

PhysicalOpPtr MakeScan(std::string relation_name, std::size_t arity,
                       const ra::Expr* source) {
  return std::make_shared<ScanOp>(std::move(relation_name), arity, source);
}

PhysicalOpPtr MakeUnion(PhysicalOpPtr left, PhysicalOpPtr right,
                        const ra::Expr* source) {
  SETALG_CHECK_EQ(left->arity(), right->arity());
  return std::make_shared<UnionOp>(std::move(left), std::move(right), source);
}

PhysicalOpPtr MakeDifference(PhysicalOpPtr left, PhysicalOpPtr right,
                             const ra::Expr* source) {
  SETALG_CHECK_EQ(left->arity(), right->arity());
  return std::make_shared<DifferenceOp>(std::move(left), std::move(right), source);
}

PhysicalOpPtr MakeProject(PhysicalOpPtr input, std::vector<std::size_t> columns,
                          const ra::Expr* source) {
  for (std::size_t c : columns) {
    SETALG_CHECK_STREAM(c >= 1 && c <= input->arity())
        << "projection column " << c << " out of range for arity " << input->arity();
  }
  return std::make_shared<ProjectOp>(std::move(input), std::move(columns), source);
}

PhysicalOpPtr MakeSelect(PhysicalOpPtr input, ra::Cmp op, std::size_t i, std::size_t j,
                         const ra::Expr* source) {
  SETALG_CHECK_STREAM(i >= 1 && i <= input->arity() && j >= 1 && j <= input->arity())
      << "selection columns " << i << "," << j << " out of range";
  return std::make_shared<SelectOp>(std::move(input), op, i, j, source);
}

PhysicalOpPtr MakeConstTag(PhysicalOpPtr input, core::Value value,
                           const ra::Expr* source) {
  return std::make_shared<ConstTagOp>(std::move(input), value, source);
}

PhysicalOpPtr MakeJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                       std::vector<ra::JoinAtom> atoms, const ra::Expr* source) {
  for (const auto& atom : atoms) {
    SETALG_CHECK_STREAM(atom.left >= 1 && atom.left <= left->arity() &&
                        atom.right >= 1 && atom.right <= right->arity())
        << "join atom out of range";
  }
  return std::make_shared<JoinOp>(std::move(left), std::move(right), std::move(atoms),
                                  source);
}

PhysicalOpPtr MakeSemiJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                           std::vector<ra::JoinAtom> atoms, SemijoinStrategy strategy,
                           const ra::Expr* source, std::size_t partitions) {
  for (const auto& atom : atoms) {
    SETALG_CHECK_STREAM(atom.left >= 1 && atom.left <= left->arity() &&
                        atom.right >= 1 && atom.right <= right->arity())
        << "semijoin atom out of range";
  }
  return std::make_shared<SemiJoinOp>(std::move(left), std::move(right),
                                      std::move(atoms), strategy, source, partitions);
}

PhysicalOpPtr MakeDivision(PhysicalOpPtr dividend, PhysicalOpPtr divisor,
                           setjoin::DivisionAlgorithm algorithm, bool equality,
                           const ra::Expr* source, std::size_t partitions) {
  SETALG_CHECK_EQ(dividend->arity(), 2u);
  SETALG_CHECK_EQ(divisor->arity(), 1u);
  return std::make_shared<DivisionOp>(std::move(dividend), std::move(divisor),
                                      algorithm, equality, source, partitions);
}

PhysicalOpPtr MakeSetContainmentJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                                     setjoin::ContainmentAlgorithm algorithm,
                                     const ra::Expr* source, std::size_t partitions) {
  SETALG_CHECK_EQ(left->arity(), 2u);
  SETALG_CHECK_EQ(right->arity(), 2u);
  return std::make_shared<SetContainmentJoinOp>(std::move(left), std::move(right),
                                                algorithm, source, partitions);
}

PhysicalOpPtr MakeSetEqualityJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                                  setjoin::EqualityJoinAlgorithm algorithm,
                                  const ra::Expr* source, std::size_t partitions) {
  SETALG_CHECK_EQ(left->arity(), 2u);
  SETALG_CHECK_EQ(right->arity(), 2u);
  return std::make_shared<SetEqualityJoinOp>(std::move(left), std::move(right),
                                             algorithm, source, partitions);
}

PhysicalOpPtr MakeSetOverlapJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                                 const ra::Expr* source, std::size_t partitions) {
  SETALG_CHECK_EQ(left->arity(), 2u);
  SETALG_CHECK_EQ(right->arity(), 2u);
  return std::make_shared<SetOverlapJoinOp>(std::move(left), std::move(right), source,
                                            partitions);
}

}  // namespace setalg::engine
