// The engine's plan cache: lowered physical plans shared across runs on
// changing databases.
//
// PRs 1–4 made *planning* — lowering, pattern routing, cost-based
// algorithm choice, partition pricing — a per-call cost on every
// Engine::Run. At serving traffic that path is the hot path: the same
// handful of query shapes arrive millions of times while the data slowly
// mutates underneath. The cache closes that gap with the invalidation
// signal the statistics cache already relies on
// (core::Database::relation_version()):
//
//   - Entries are keyed on the *structure* of the logical expression
//     (ra::ExprHash / ra::ExprEqual — never on pointers, so α-identical
//     trees from different parses share one plan) plus the database's
//     process-unique id (two databases with colliding relation names can
//     never exchange plans).
//   - Each entry snapshots the per-relation version vector its costs were
//     computed against. A matching vector is a *hit*: the plan runs
//     untouched. A moved vector is *revalidated*: the recorded choice
//     points (PhysicalPlan::choice_points) are re-priced from fresh
//     statistics — never re-lowered — and when a decision flips (e.g.
//     hash-division → sort-merge after a bulk load) the operator is
//     swapped in place by rebuilding only the spine above it
//     (PhysicalOp::WithChildren); the run reports *repicked*.
//   - Capacity is LRU-bounded by entry count (EngineOptions::
//     plan_cache_entries) and by an approximate byte budget
//     (plan_cache_bytes). Entries are shared_ptr-owned: evicting the
//     entry a PreparedQuery holds — or the one currently executing —
//     only forgets it; the plan stays alive until its last user is done.
//
// Whatever the outcome, results and per-operator PlanStats row counts are
// bit-identical to a fresh un-cached run — the cache-differential harness
// in tests/plan_cache_test.cc interleaves randomized mutations with
// cached executions to enforce exactly that.
#ifndef SETALG_ENGINE_PLAN_CACHE_H_
#define SETALG_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "core/database.h"
#include "engine/planner.h"
#include "ra/expr.h"
#include "stats/stats.h"

namespace setalg::engine {

/// One cached lowered plan: the canonical key (structural expression,
/// its hash, the owning database's id), the plan itself, and the
/// per-relation version vector the plan's costs were computed against.
struct CachedPlan {
  /// The canonical key expression (the first structurally-equal tree the
  /// cache saw). Null for entries prepared from hand-built plans.
  ra::ExprPtr expr;
  std::uint64_t expr_hash = 0;
  std::uint64_t db_id = 0;
  /// Versions of every relation the plan reads, as of the last
  /// lowering/revalidation.
  stats::VersionVector versions;
  PhysicalPlan plan;
  /// Approximate resident footprint (operators, key expression, estimate
  /// tables) charged against the cache's byte budget.
  std::size_t approx_bytes = 0;
  /// Runs served from this entry (any outcome), for observability.
  std::size_t uses = 0;
};

using CachedPlanPtr = std::shared_ptr<CachedPlan>;

/// Builds a cache entry (detached — not registered anywhere) for `plan`
/// as lowered for `db`. `expr` may be null for hand-built plans; the
/// version vector then comes from the plan's scans.
CachedPlanPtr MakeCachedPlan(ra::ExprPtr expr, const core::DatabaseView& db,
                             PhysicalPlan plan);

/// Approximate bytes held live by `entry` (deterministic, so cache-budget
/// eviction behavior is reproducible across runs).
std::size_t ApproxPlanBytes(const CachedPlan& entry);

/// Re-prices `entry`'s plan against `db`'s current statistics. Returns
///   kHit         — version vector unchanged; the plan is untouched;
///   kRevalidated — versions moved; estimates and recorded choices were
///                  refreshed from fresh statistics, every algorithm
///                  decision held;
///   kRepicked    — versions moved and >= 1 decision flipped; the
///                  affected operators were swapped in place (only the
///                  spine above each rebuilt — the expression is never
///                  re-lowered) and the choice/rewrite notes updated.
/// `options` must be the options the plan was lowered under (the Engine
/// guarantees this: one cache per engine, one options set per engine).
/// `db` must be the instance the entry is keyed on (same id).
CacheOutcome RevalidateCachedPlan(CachedPlan& entry, const core::DatabaseView& db,
                                  const stats::StatsProvider* stats,
                                  const EngineOptions& options);

/// LRU map from (expression structure, database id) to cached plans.
/// Not thread-safe — it lives inside an Engine, which is documented
/// single-threaded (the worker pool parallelism is *inside* a run).
class PlanCache {
 public:
  /// Observable behavior for tests, raq -v and ops dashboards.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t revalidations = 0;  // Includes repicks.
    std::size_t repicks = 0;
    std::size_t evictions = 0;
  };

  /// `max_entries` >= 1; `max_bytes` 0 = unbounded bytes.
  PlanCache(std::size_t max_entries, std::size_t max_bytes);

  /// The entry for (expr, db_id), refreshed to most-recently-used, or
  /// null. Does not record an outcome — the caller knows whether the
  /// lookup ends as a hit, a revalidation or a miss.
  CachedPlanPtr Lookup(const ra::ExprPtr& expr, std::uint64_t db_id);

  /// Inserts (replacing any previous entry under the same key) and
  /// evicts least-recently-used entries past either budget. The returned
  /// entry stays valid even if immediately evicted.
  CachedPlanPtr Insert(CachedPlanPtr entry);

  /// Tallies one run's outcome into stats().
  void RecordOutcome(CacheOutcome outcome);

  /// Records one use of `entry` — outcome tally, LRU refresh, and byte
  /// re-charge (revalidation may resize an entry in place) — iff it is
  /// the resident entry under its key. Detached handles (hand-built
  /// plans) and evicted entries leave the cache's observable state
  /// untouched: the cache only accounts for runs it actually served.
  void NoteUse(const CachedPlanPtr& entry, CacheOutcome outcome);

  /// Drops every entry (outstanding PreparedQuery handles keep theirs).
  void Clear();

  std::size_t size() const { return map_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::size_t max_entries() const { return max_entries_; }
  std::size_t max_bytes() const { return max_bytes_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Key {
    std::uint64_t db_id = 0;
    /// ra::StructuralHash(*expr), carried in the key so the hot path
    /// hashes each expression tree once per operation (Lookup) or not at
    /// all (Insert/NoteUse reuse CachedPlan::expr_hash) instead of
    /// re-walking the tree inside every map probe.
    std::uint64_t hash = 0;
    ra::ExprPtr expr;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct KeyEqual {
    bool operator()(const Key& a, const Key& b) const;
  };
  struct Node {
    CachedPlanPtr entry;
    std::list<Key>::iterator lru;  // Position in lru_ (front = hottest).
    /// What bytes_ was charged for this entry. Revalidation resizes
    /// entries in place (NoteUse re-charges), so eviction must subtract
    /// the charged value, never the entry's current approx_bytes.
    std::size_t charged_bytes = 0;
  };

  void EvictPastBudget();

  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::unordered_map<Key, Node, KeyHash, KeyEqual> map_;
  std::list<Key> lru_;
  std::size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_PLAN_CACHE_H_
