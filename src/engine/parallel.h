// Parallel partitioned execution on the batch seam.
//
// The paper's fast division and set-join algorithms are embarrassingly
// partitionable by group key: hash-partition the grouped side so every
// group lands wholly in one partition, run the unchanged serial kernel on
// each partition, and concatenate the per-partition outputs — which are
// disjoint by construction, so the merged, normalized result (and hence
// every per-operator PlanStats row count) is bit-identical to the serial
// run. This header provides the three pieces that make that a reusable
// execution strategy rather than per-operator thread code:
//
//   - WorkerPool: a fixed pool of worker threads (EngineOptions::threads,
//     raq --threads) that runs one batch of independent tasks at a time;
//     the calling thread participates, so `threads` is total parallelism.
//   - PartitionByColumn: deterministic hash routing of a relation's rows
//     by one column (setjoin::PartitionOfKey, shared with the grouped
//     builders so row- and group-level partitioning always agree).
//   - PartitionedIterator: the fan-out/fan-in BatchIterator. It is a
//     blocking operator under the ordinary Open/NextBatch/Close contract:
//     Open() consumes the input streams into per-partition work units
//     (serial), fans the per-partition kernels out across the pool, fans
//     the outputs back in — in partition-index order, so repeated runs
//     merge identically — and streams the normalized result out in
//     batches. Downstream consumers cannot tell it from the serial
//     operator; the differential harness in tests/batch_exec_test.cc
//     enforces exactly that.
//
// Threading discipline: partitioning happens on the calling thread before
// the fan-out, tasks touch only their own partition's state (plus shared
// read-only inputs), and the merge happens on the calling thread after
// every task has completed — so no PlanStats field, ExecContext, or
// core::Relation is ever touched concurrently. Tasks must not throw.
#ifndef SETALG_ENGINE_PARALLEL_H_
#define SETALG_ENGINE_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "engine/batch.h"
#include "engine/physical.h"

namespace setalg::engine {

/// A fixed pool of worker threads executing one batch of independent
/// tasks at a time. Constructed with the total parallelism `threads`
/// (>= 1); the pool spawns `threads - 1` workers and the thread calling
/// Run() works alongside them, so `threads == 1` degenerates to inline
/// serial execution with no threads spawned.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total parallelism (workers + the calling thread).
  std::size_t threads() const { return workers_.size() + 1; }

  /// Runs task(0) .. task(count - 1) across the pool and the calling
  /// thread; returns when all have completed. One Run at a time (the
  /// executors drive operators sequentially); tasks must not throw and
  /// must not call Run() recursively.
  void Run(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;  // Guarded by mutex_.
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Hash-partitions the rows of a normalized relation by `column`
/// (1-based) into `partitions` relations via setjoin::PartitionOfKey.
/// Every row with a given column value lands in exactly one partition,
/// partitions preserve the input's sorted order (so they normalize for
/// free), and the multiset union of the partitions is the input.
std::vector<core::Relation> PartitionByColumn(const core::Relation& relation,
                                              std::size_t column,
                                              std::size_t partitions);

/// One shard-aligned partition input (ShardAlignedSlices): a borrowed
/// whole stored shard, or an owned key-contiguous sub-range of a heavy
/// shard. The borrowed relation must outlive the slice (stored shards
/// are owned by the run's snapshot, which does).
struct ShardSlice {
  const core::Relation* borrowed = nullptr;
  core::Relation owned{0};

  const core::Relation& get() const {
    return borrowed != nullptr ? *borrowed : owned;
  }
};

/// The storage-aligned fast path of the partitioned operators: when the
/// run's database stores `source` pre-sharded on `column`
/// (core::ShardedView — txn::ShardedDatabase snapshots), returns the
/// shards as ready-made partition inputs so the operator can skip its
/// partition pass. With `allow_split` (effective only for column 1,
/// whose key runs are contiguous in sorted storage), heavy-hitter
/// shards are subdivided at key boundaries toward `target_tasks` total
/// slices — the split floor is the largest group size from the view's
/// statistics, since a single key's rows can never span tasks — so one
/// hot shard does not serialize the fan-out. Pass allow_split=false
/// when slices must pair index-for-index with a co-partitioned side
/// (semijoin). Returns nullopt when the database is not sharded on
/// (source, column).
std::optional<std::vector<ShardSlice>> ShardAlignedSlices(
    const core::DatabaseView& db, const std::string& source, std::size_t column,
    std::size_t target_tasks, bool allow_split);

/// Marks a scan stream whose relation the caller read straight from
/// sharded storage as consumed: opens it, accounts its `rows` (see
/// BatchIterator::AccountBypassedScan) and closes it, so per-operator
/// instrumentation and the iterator contract hold without a drain.
void ConsumeBypassedScan(BatchIterator* stream, std::size_t rows);

/// One partition's work: computes that partition's share of the
/// operator's output. Runs on a worker thread; must only touch state
/// captured at construction (its own partition plus shared read-only
/// inputs) and must not throw.
using PartitionTask = std::function<core::Relation()>;

/// Builds the partition tasks from the operator's input streams. Runs on
/// the calling thread during Open(): consume every input here (drain /
/// borrow via MaterializedInput or setjoin::GroupedBuilder), partition,
/// and capture per-partition state into the returned tasks.
using PartitionPlanFn =
    std::function<std::vector<PartitionTask>(std::vector<std::unique_ptr<BatchIterator>>&)>;

/// The fan-out/fan-in operator kernel (see the file comment). Output is
/// normalized, hence distinct(); PlanStats::partitions counts the tasks.
class PartitionedIterator final : public BatchIterator {
 public:
  PartitionedIterator(ExecContext& ctx, std::size_t arity,
                      std::vector<std::unique_ptr<BatchIterator>> inputs,
                      PartitionPlanFn plan)
      : ctx_(ctx), arity_(arity), inputs_(std::move(inputs)), plan_(std::move(plan)),
        result_(arity) {}

  void Open() override;

  bool NextBatch(Batch& out) override {
    pos_ = StreamRelationRows(result_, pos_, &out);
    return !out.empty();
  }

  void Close() override {}
  bool distinct() const override { return true; }  // Normalized merge.

 private:
  ExecContext& ctx_;
  std::size_t arity_;
  std::vector<std::unique_ptr<BatchIterator>> inputs_;
  PartitionPlanFn plan_;
  core::Relation result_;
  std::size_t pos_ = 0;
};

/// The partition count an operator configured with `configured` uses
/// under `ctx`: an explicit count wins (1 pins the operator serial — the
/// cost model's "don't partition this site" decision), 0 defers to the
/// run's worker-pool width (1 when the run is serial).
std::size_t ResolvePartitions(std::size_t configured, const ExecContext& ctx);

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_PARALLEL_H_
