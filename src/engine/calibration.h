// Trace calibration: the self-tuning half of the cost model.
//
// Every Engine run already records estimated-vs-actual output sizes per
// operator (PlanStats::ops). A CalibrationStore accumulates those pairs
// — striped and process-wide, like SharedPlanCache, so every session of
// a server shares one store — and fits two kinds of corrections with
// exponential decay:
//
//   - per-operator-kind output factors ("out:division", "out:join", ...):
//     multiplicative residuals in the log domain. Observed estimates
//     already include the applied factor, so each observation nudges the
//     factor by learning_rate · log(actual/estimated); the update
//     converges instead of oscillating, and factors clamp to
//     [1/max_factor, max_factor].
//   - learned selectivities ("sel:select:=", "sel:semijoin", ...):
//     a log-domain EWMA of observed output/input ratios, replacing the
//     hand-fixed constants once min_observations have arrived.
//
// CostModel consults the store (engine/cost.h) when EngineOptions::
// calibration is set; Engine::Run feeds it after every successful
// execution. Until a key is warm (min_observations) the model's fixed
// constants apply unchanged, so an empty store is bit-identical to no
// store at all.
#ifndef SETALG_ENGINE_CALIBRATION_H_
#define SETALG_ENGINE_CALIBRATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace setalg::engine {

/// Thread-safe store of learned cost corrections. Keys are small strings
/// ("out:<operator-kind>", "sel:<site>"); entries live in 8 mutex-striped
/// maps, so concurrent sessions feed and consult it without contention.
class CalibrationStore {
 public:
  struct Params {
    /// Per-observation step size of both updates (exponential decay:
    /// older traffic fades with weight (1 - learning_rate)^age).
    double learning_rate = 0.25;
    /// Output factors clamp to [1/max_factor, max_factor].
    double max_factor = 16.0;
    /// Observations before a key starts to override the fixed constants.
    std::uint64_t min_observations = 4;
  };

  CalibrationStore() : CalibrationStore(Params()) {}
  explicit CalibrationStore(Params params);

  CalibrationStore(const CalibrationStore&) = delete;
  CalibrationStore& operator=(const CalibrationStore&) = delete;

  // -- Feedback (Engine::Run, after every successful execution) -----------

  /// One estimate/actual output-size pair for an operator kind.
  void ObserveOutput(const std::string& op_kind, double estimated,
                     double actual);

  /// One observed input→output pair for a selectivity site.
  void ObserveSelectivity(const std::string& key, double input, double output);

  // -- Consumption (CostModel) ---------------------------------------------

  /// Multiplier for estimated output sizes of `op_kind`; 1.0 until warm.
  double OutputFactor(const std::string& op_kind) const;

  /// Learned selectivity for `key`; `fallback` until warm.
  double Selectivity(const std::string& key, double fallback) const;

  /// Total observations across every key (feedback-loop liveness signal).
  std::uint64_t observations() const;

  /// Sorted "key=value ×count" dump of every entry (raq -v, debugging).
  std::string Summary() const;

  const Params& params() const { return params_; }

 private:
  struct Entry {
    double log_value = 0.0;
    std::uint64_t count = 0;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
  };
  static constexpr std::size_t kStripes = 8;

  Stripe& StripeFor(const std::string& key) const;

  Params params_;
  /// A fixed array (stripes hold a mutex and never move).
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_CALIBRATION_H_
