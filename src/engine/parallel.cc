#include "engine/parallel.h"

#include <algorithm>
#include <utility>

#include "setjoin/grouped.h"
#include "stats/stats.h"
#include "util/check.h"

namespace setalg::engine {

WorkerPool::WorkerPool(std::size_t threads) {
  const std::size_t workers = threads <= 1 ? 0 : threads - 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void WorkerPool::Run(std::size_t count, const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SETALG_CHECK(task_ == nullptr);  // One Run at a time, never recursive.
    task_ = &task;
    count_ = count;
    next_ = 0;
    completed_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread works alongside the pool on the same index stream.
  for (;;) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_ >= count_) break;
      index = next_++;
    }
    task(index);
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return completed_ == count_; });
  task_ = nullptr;
}

void WorkerPool::WorkerLoop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    while (next_ < count_) {
      const std::size_t index = next_++;
      const auto* task = task_;
      lock.unlock();
      (*task)(index);
      lock.lock();
      if (++completed_ == count_) done_cv_.notify_all();
    }
  }
}

std::vector<core::Relation> PartitionByColumn(const core::Relation& relation,
                                              std::size_t column,
                                              std::size_t partitions) {
  SETALG_CHECK(partitions >= 1);
  SETALG_CHECK(column >= 1 && column <= relation.arity());
  std::vector<core::Relation> out;
  out.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) out.emplace_back(relation.arity());
  for (std::size_t i = 0; i < relation.size(); ++i) {
    const core::TupleView row = relation.tuple(i);
    out[setjoin::PartitionOfKey(row[column - 1], partitions)].Add(row);
  }
  // Rows were routed in sorted input order, so each partition is already
  // sorted and duplicate-free: normalization is the no-op fast path.
  for (auto& partition : out) partition.Normalize();
  return out;
}

std::optional<std::vector<ShardSlice>> ShardAlignedSlices(
    const core::DatabaseView& db, const std::string& source, std::size_t column,
    std::size_t target_tasks, bool allow_split) {
  const auto* sharded = dynamic_cast<const core::ShardedView*>(&db);
  if (sharded == nullptr || column == 0 ||
      sharded->shard_key_column(source) != column) {
    return std::nullopt;
  }
  const std::size_t shard_count = sharded->shard_count();
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    total += sharded->shard(source, s).size();
  }
  // Rows per slice above which a shard is subdivided. Splitting is only
  // sound on column 1: normalized storage sorts by it, so each key's run
  // is contiguous and a cut at a key boundary keeps groups whole. The
  // group-size histogram gives the split floor — no slice can be smaller
  // than the largest single group.
  std::size_t target = 0;
  if (allow_split && column == 1 && target_tasks > 0 && total > 0) {
    target = (total + target_tasks - 1) / target_tasks;
    if (const auto* provider = dynamic_cast<const stats::StatsProvider*>(&db)) {
      if (const auto* stats = provider->Get(source);
          stats != nullptr && stats->arity == 2 && stats->groups.num_groups > 0) {
        target = std::max(target, stats->groups.max_group_size);
      }
    }
  }
  std::vector<ShardSlice> slices;
  slices.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const core::Relation& shard = sharded->shard(source, s);
    if (target == 0 || shard.size() <= 2 * target || shard.arity() == 0) {
      slices.emplace_back();
      slices.back().borrowed = &shard;
      continue;
    }
    const std::size_t arity = shard.arity();
    std::size_t begin = 0;
    while (begin < shard.size()) {
      std::size_t end = std::min(begin + target, shard.size());
      // Advance the cut to the next key boundary so no group spans slices.
      while (end < shard.size() &&
             shard.tuple(end)[0] == shard.tuple(end - 1)[0]) {
        ++end;
      }
      ShardSlice slice;
      slice.owned = core::Relation(arity);
      slice.owned.Reserve(end - begin);
      slice.owned.AddRows(shard.flat().data() + begin * arity, end - begin);
      // A key-contiguous range of a normalized relation is itself
      // normalized, so this is the no-op fast path.
      slice.owned.Normalize();
      slices.push_back(std::move(slice));
      begin = end;
    }
  }
  return slices;
}

void ConsumeBypassedScan(BatchIterator* stream, std::size_t rows) {
  stream->Open();
  stream->AccountBypassedScan(rows);
  stream->Close();
}

void PartitionedIterator::Open() {
  std::vector<PartitionTask> tasks = plan_(inputs_);
  std::vector<core::Relation> outputs;
  outputs.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) outputs.emplace_back(arity_);
  WorkerPool* pool = ctx_.pool();
  if (pool != nullptr && tasks.size() > 1) {
    // Fan-out: each task writes only its own pre-sized slot, so the
    // output vector needs no synchronization beyond Run()'s completion.
    pool->Run(tasks.size(),
              [&](std::size_t i) { outputs[i] = tasks[i](); });
  } else {
    for (std::size_t i = 0; i < tasks.size(); ++i) outputs[i] = tasks[i]();
  }
  // Fan-in on the calling thread, in partition-index order: partitions
  // hold disjoint key sets, so the concatenation is duplicate-free and
  // the normalized merge is identical across runs and thread counts.
  std::size_t total = 0;
  for (const auto& output : outputs) total += output.size();
  result_ = core::Relation(arity_);
  result_.Reserve(total);
  for (const auto& output : outputs) {
    if (!output.empty() && arity_ > 0) {
      result_.AddRows(output.flat().data(), output.size());
    } else if (!output.empty()) {
      for (std::size_t i = 0; i < output.size(); ++i) result_.Add(output.tuple(i));
    }
  }
  result_.Normalize();
  ctx_.CountPartitions(tasks.size());
  pos_ = 0;
}

std::size_t ResolvePartitions(std::size_t configured, const ExecContext& ctx) {
  if (configured != 0) return configured;
  return ctx.threads();
}

}  // namespace setalg::engine
