#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <utility>

#include "engine/calibration.h"
#include "engine/cost.h"
#include "engine/multiway.h"
#include "util/check.h"
#include "util/hash.h"
#include "util/str.h"

namespace setalg::engine {
namespace {

using ra::ExprPtr;
using ra::OpKind;

// Structural equality (pointer short-circuit inside) — the same predicate
// the engine's plan cache keys on.
bool SameExpr(const ExprPtr& a, const ExprPtr& b) {
  return ra::StructuralEqual(*a, *b);
}

bool IsProjectionOf(const ExprPtr& e, const std::vector<std::size_t>& columns) {
  return e->kind() == OpKind::kProjection && e->projection() == columns;
}

struct DivisionMatch {
  ExprPtr r;  // Binary dividend subexpression.
  ExprPtr s;  // Unary divisor subexpression.
};

// Matches the textbook containment division π₁(R) − π₁((π₁(R) × S) − R)
// where R is any binary and S any unary subexpression.
std::optional<DivisionMatch> MatchContainmentDivision(const ExprPtr& e) {
  if (e->kind() != OpKind::kDifference) return std::nullopt;
  const ExprPtr& cand = e->child(0);  // π₁(R)
  if (!IsProjectionOf(cand, {1})) return std::nullopt;
  const ExprPtr& r = cand->child(0);
  if (r->arity() != 2) return std::nullopt;

  const ExprPtr& missing_proj = e->child(1);  // π₁((π₁(R) × S) − R)
  if (!IsProjectionOf(missing_proj, {1})) return std::nullopt;
  const ExprPtr& missing = missing_proj->child(0);
  if (missing->kind() != OpKind::kDifference) return std::nullopt;
  if (!SameExpr(missing->child(1), r)) return std::nullopt;

  const ExprPtr& required = missing->child(0);  // π₁(R) × S
  if (required->kind() != OpKind::kJoin || !required->atoms().empty()) {
    return std::nullopt;
  }
  if (!SameExpr(required->child(0), cand)) return std::nullopt;
  const ExprPtr& s = required->child(1);
  if (s->arity() != 1) return std::nullopt;
  return DivisionMatch{r, s};
}

// Matches the equality-division extension: containment division minus the
// keys related to some element outside S (ClassicEqualityDivisionExpr).
std::optional<DivisionMatch> MatchEqualityDivision(const ExprPtr& e) {
  if (e->kind() != OpKind::kDifference) return std::nullopt;
  auto contained = MatchContainmentDivision(e->child(0));
  if (!contained) return std::nullopt;

  const ExprPtr& outside = e->child(1);  // π₁(R − π₁,₂(R ⋈₂₌₁ S))
  if (!IsProjectionOf(outside, {1})) return std::nullopt;
  const ExprPtr& diff = outside->child(0);
  if (diff->kind() != OpKind::kDifference) return std::nullopt;
  if (!SameExpr(diff->child(0), contained->r)) return std::nullopt;

  const ExprPtr& inside = diff->child(1);
  if (!IsProjectionOf(inside, {1, 2})) return std::nullopt;
  const ExprPtr& join = inside->child(0);
  if (join->kind() != OpKind::kJoin ||
      join->atoms() != std::vector<ra::JoinAtom>{{2, ra::Cmp::kEq, 1}}) {
    return std::nullopt;
  }
  if (!SameExpr(join->child(0), contained->r)) return std::nullopt;
  if (!SameExpr(join->child(1), contained->s)) return std::nullopt;
  return contained;
}

class Lowering {
 public:
  Lowering(const EngineOptions& options, const stats::StatsProvider* stats)
      : options_(options), stats_(stats), model_(stats, options.calibration.get()) {}

  PhysicalOpPtr Lower(const ExprPtr& e) {
    auto it = memo_.find(e.get());
    if (it != memo_.end()) return it->second;
    PhysicalOpPtr op = LowerUncached(e);
    // Annotate every operator that mirrors a logical node with the cost
    // model's output prediction — the estimated half of the
    // estimated-vs-actual pairs in PlanStats. Rewrite-specific operators
    // record their own, richer estimates in LowerUncached.
    if (stats_ != nullptr && estimates_.find(op.get()) == estimates_.end()) {
      const ExprEstimate guess = model_.Estimate(e);
      estimates_[op.get()] = {0.0, guess.cardinality, guess.cardinality};
    }
    // Pair the operator with its logical node so a cached plan can
    // refresh the estimate from fresh statistics without re-lowering.
    op_sources_.emplace_back(op.get(), e);
    memo_.emplace(e.get(), op);
    return op;
  }

  std::vector<std::string> TakeRewrites() { return std::move(rewrites_); }
  std::vector<AlgorithmChoice> TakeChoices() { return std::move(choices_); }
  std::unordered_map<const PhysicalOp*, CostEstimate> TakeEstimates() {
    return std::move(estimates_);
  }
  std::vector<std::pair<const PhysicalOp*, ExprPtr>> TakeOpSources() {
    return std::move(op_sources_);
  }
  std::vector<ChoicePoint> TakeChoicePoints() { return std::move(choice_points_); }
  double agm_bound() const { return agm_bound_; }
  bool has_agm_bound() const { return has_agm_bound_; }

 private:
  bool CostBased() const { return options_.cost_based && stats_ != nullptr; }

  SemijoinStrategy Strategy() const {
    return options_.use_fast_semijoin ? SemijoinStrategy::kFastKernel
                                      : SemijoinStrategy::kGeneric;
  }

  /// Plan-time serial-vs-partitioned decision for one call site: under
  /// cost_based planning with a worker pool configured, consult the
  /// partition pricing and pin the operator (1 = serial, N = N-way);
  /// otherwise defer to the execution context (0 = pool width).
  /// `aligned` declares the partitioned input pre-sharded in storage
  /// (the executor skips the partition pass — see ShardAligned below).
  std::size_t PartitionsFor(const char* site, const CostEstimate& serial,
                            double input_cardinality, double key_distinct,
                            bool aligned = false) {
    if (options_.threads <= 1 || !CostBased()) return 0;
    const CostModel::ParallelChoice choice = model_.ChooseParallelism(
        serial, input_cardinality, key_distinct, options_.threads, aligned);
    choices_.push_back({site, ParallelChoiceLabel(choice.partitions),
                        choice.estimate});
    return choice.partitions;
  }

  /// True when `e` is a scan of a relation the run's database stores
  /// sharded on `column`: the executor's shard-aligned fast path will
  /// skip the partition pass there (engine::ShardAlignedSlices), so the
  /// pricing drops its split term. Detected through the statistics
  /// provider — a sharded snapshot is its own StatsProvider and
  /// ShardedView at once.
  bool ShardAligned(const ExprPtr& e, std::size_t column) const {
    if (column == 0 || e->kind() != OpKind::kRelation) return false;
    const auto* sharded = dynamic_cast<const core::ShardedView*>(stats_);
    return sharded != nullptr && sharded->shard_count() > 1 &&
           sharded->shard_key_column(e->relation_name()) == column;
  }

  struct SemijoinPlan {
    SemijoinStrategy strategy;
    std::size_t partitions;
    /// Slice of choices_ this decision wrote (for the plan's ChoicePoint).
    std::size_t first_choice;
    std::size_t num_choices;
  };

  SemijoinPlan SemijoinStrategyFor(const ExprPtr& left, const ExprPtr& right,
                                   const std::vector<ra::JoinAtom>& atoms) {
    const std::size_t first_choice = choices_.size();
    if (!CostBased()) return {Strategy(), 0, first_choice, 0};
    const ExprEstimate l = model_.Estimate(left);
    const ExprEstimate r = model_.Estimate(right);
    const SemijoinStrategy strategy = model_.ChooseSemijoin(l, r, atoms);
    const CostEstimate estimate = model_.EstimateSemijoin(l, r, atoms, strategy);
    choices_.push_back(
        {"semijoin",
         strategy == SemijoinStrategy::kFastKernel ? "fast-kernel" : "generic",
         estimate});
    // The operator co-partitions both sides by the first equality atom:
    // without one there is no routing key and the kernel stays serial, so
    // no execution decision exists to price or record; with one, the
    // fan-out cap must come from that atom's column (not column 1 — a
    // near-constant partitioning column would leave all but one task
    // empty while still paying the dispatch overhead).
    const ra::JoinAtom* eq = nullptr;
    for (const auto& atom : atoms) {
      if (atom.op == ra::Cmp::kEq) {
        eq = &atom;
        break;
      }
    }
    if (eq == nullptr) return {strategy, 1, first_choice, choices_.size() - first_choice};
    const std::size_t partitions = PartitionsFor(
        "semijoin-execution", estimate, l.cardinality + r.cardinality,
        EstimateColumnDistinct(l, eq->left, left->arity()),
        ShardAligned(left, eq->left) || ShardAligned(right, eq->right));
    return {strategy, partitions, first_choice, choices_.size() - first_choice};
  }

  /// Records the re-costable decision behind one lowered semijoin
  /// operator (both the direct lowering and the π(⋈) reductions).
  void RecordSemijoinPoint(const PhysicalOpPtr& op, const ExprPtr& left,
                           const ExprPtr& right,
                           const std::vector<ra::JoinAtom>& pricing_atoms,
                           std::vector<ra::JoinAtom> op_atoms,
                           const ra::Expr* source, const SemijoinPlan& plan) {
    ChoicePoint point;
    point.kind = ChoicePoint::Kind::kSemijoin;
    point.op = op.get();
    point.left = left;
    point.right = right;
    point.atoms = pricing_atoms;
    point.op_atoms = std::move(op_atoms);
    point.source = source;
    point.semijoin_strategy = plan.strategy;
    point.partitions = plan.partitions;
    point.first_choice = plan.first_choice;
    point.num_choices = plan.num_choices;
    choice_points_.push_back(std::move(point));
  }

  PhysicalOpPtr LowerDivision(const DivisionMatch& m, bool equality,
                              const ra::Expr* source) {
    setjoin::DivisionAlgorithm algorithm = options_.division_algorithm;
    const ExprEstimate r_est = model_.Estimate(m.r);
    const ExprEstimate s_est = model_.Estimate(m.s);
    const std::size_t first_choice = choices_.size();
    if (CostBased()) {
      const auto choice = model_.ChooseDivision(r_est, s_est, equality);
      algorithm = choice.algorithm;
      choices_.push_back({equality ? "equality-division" : "division",
                          setjoin::DivisionAlgorithmToString(algorithm),
                          choice.estimate});
    }
    const std::size_t rewrite_index = rewrites_.size();
    rewrites_.push_back(DivisionRewriteNote(algorithm, equality, CostBased()));
    const std::size_t partitions = PartitionsFor(
        equality ? "equality-division-execution" : "division-execution",
        model_.EstimateDivision(algorithm, r_est, s_est, equality),
        r_est.cardinality + s_est.cardinality, r_est.key_distinct,
        ShardAligned(m.r, 1));
    const std::size_t num_choices = choices_.size() - first_choice;
    PhysicalOpPtr op = MakeDivision(Lower(m.r), Lower(m.s), algorithm, equality, source,
                                    partitions);
    if (stats_ != nullptr) {
      estimates_[op.get()] =
          model_.EstimateDivision(algorithm, r_est, s_est, equality);
    }
    ChoicePoint point;
    point.kind = ChoicePoint::Kind::kDivision;
    point.op = op.get();
    point.left = m.r;
    point.right = m.s;
    point.equality = equality;
    point.source = source;
    point.division_algorithm = algorithm;
    point.partitions = partitions;
    point.first_choice = first_choice;
    point.num_choices = num_choices;
    point.rewrite_index = rewrite_index;
    choice_points_.push_back(std::move(point));
    return op;
  }

  // -- Multiway join chains --------------------------------------------------
  // CollectChain flattens a maximal all-equality binary-join chain into a
  // join hypergraph: equality joins union the variables their atoms
  // relate, equality selections union two variables of one subtree
  // (selection pushdown — the filter becomes a duplicate-variable
  // constraint on a leaf or a variable merge), and projections re-index
  // (projection pruning — dropped columns survive as join variables, which
  // only constrains further, and the chain root's projection restores the
  // visible columns exactly). Anything else is a leaf, lowered normally.

  struct CollectedChain {
    std::vector<ExprPtr> leaves;
    /// Raw (pre-union) variable ids per leaf column.
    std::vector<std::vector<std::size_t>> leaf_vars;
    /// Collected interior nodes in post-order, chain root last.
    std::vector<ExprPtr> interior;
    /// Union-find over raw variable ids.
    std::vector<std::size_t> uf;

    std::size_t Find(std::size_t v) {
      while (uf[v] != v) {
        uf[v] = uf[uf[v]];
        v = uf[v];
      }
      return v;
    }
    void Union(std::size_t a, std::size_t b) { uf[Find(a)] = Find(b); }
  };

  static bool AllEqualityAtoms(const ExprPtr& e) {
    return std::all_of(e->atoms().begin(), e->atoms().end(),
                       [](const ra::JoinAtom& a) { return a.op == ra::Cmp::kEq; });
  }

  /// Returns the raw variable id of each output column of `e`.
  std::vector<std::size_t> CollectChain(const ExprPtr& e, CollectedChain& chain) {
    if (e->kind() == OpKind::kJoin && AllEqualityAtoms(e)) {
      std::vector<std::size_t> left = CollectChain(e->child(0), chain);
      std::vector<std::size_t> right = CollectChain(e->child(1), chain);
      for (const auto& atom : e->atoms()) {
        chain.Union(left[atom.left - 1], right[atom.right - 1]);
      }
      chain.interior.push_back(e);
      left.insert(left.end(), right.begin(), right.end());
      return left;
    }
    if (e->kind() == OpKind::kSelection && e->selection_op() == ra::Cmp::kEq) {
      std::vector<std::size_t> cols = CollectChain(e->child(0), chain);
      chain.Union(cols[e->selection_i() - 1], cols[e->selection_j() - 1]);
      chain.interior.push_back(e);
      return cols;
    }
    if (e->kind() == OpKind::kProjection) {
      std::vector<std::size_t> cols = CollectChain(e->child(0), chain);
      std::vector<std::size_t> mapped;
      mapped.reserve(e->projection().size());
      for (std::size_t c : e->projection()) mapped.push_back(cols[c - 1]);
      chain.interior.push_back(e);
      return mapped;
    }
    std::vector<std::size_t> vars;
    vars.reserve(e->arity());
    for (std::size_t c = 0; c < e->arity(); ++c) {
      vars.push_back(chain.uf.size());
      chain.uf.push_back(chain.uf.size());
    }
    chain.leaves.push_back(e);
    chain.leaf_vars.push_back(vars);
    return vars;
  }

  /// Collects the join chain rooted at `e` and routes it to the multiway
  /// operator (or keeps the written binary plan, recording the priced
  /// decision) per CostModel::ChooseMultiwayJoin. Returns nullptr when no
  /// viable chain exists — the caller falls through to 1:1 lowering.
  PhysicalOpPtr TryMultiwayChain(const ExprPtr& e) {
    if (!AllEqualityAtoms(e)) return nullptr;
    CollectedChain chain;
    const std::vector<std::size_t> root_raw = CollectChain(e, chain);
    if (chain.leaves.size() < 3 || chain.leaves.size() > kMaxHypergraphEdges) {
      return nullptr;
    }
    for (const ExprPtr& leaf : chain.leaves) {
      if (leaf->arity() == 0) return nullptr;
    }
    // Compress union-find classes to dense variable ids in first-appearance
    // order (variable 0 is leaf 0's column 1 — the partitioning key).
    std::unordered_map<std::size_t, std::size_t> dense;
    std::vector<std::vector<std::size_t>> var_maps(chain.leaves.size());
    for (std::size_t i = 0; i < chain.leaves.size(); ++i) {
      var_maps[i].reserve(chain.leaf_vars[i].size());
      for (std::size_t raw : chain.leaf_vars[i]) {
        const std::size_t root = chain.Find(raw);
        const auto it = dense.emplace(root, dense.size()).first;
        var_maps[i].push_back(it->second);
      }
    }
    const std::size_t num_vars = dense.size();
    if (num_vars == 0 || num_vars > kMaxHypergraphVars) return nullptr;

    JoinHypergraph graph;
    graph.num_vars = num_vars;
    double sum_inputs = 0.0;
    for (std::size_t i = 0; i < chain.leaves.size(); ++i) {
      JoinHypergraph::Edge edge;
      edge.vars = var_maps[i];
      std::sort(edge.vars.begin(), edge.vars.end());
      edge.vars.erase(std::unique(edge.vars.begin(), edge.vars.end()),
                      edge.vars.end());
      edge.cardinality = model_.Estimate(chain.leaves[i]).cardinality;
      sum_inputs += edge.cardinality;
      graph.edges.push_back(std::move(edge));
    }
    std::vector<double> interior_cards;
    interior_cards.reserve(chain.interior.size());
    for (const ExprPtr& node : chain.interior) {
      interior_cards.push_back(model_.Estimate(node).cardinality);
    }
    const CostModel::MultiwayChoice choice =
        model_.ChooseMultiwayJoin(graph, interior_cards, CostBased());
    if (!std::isfinite(choice.agm_bound)) return nullptr;
    if (!has_agm_bound_) {  // The plan-level bound: first chain collected.
      agm_bound_ = choice.agm_bound;
      has_agm_bound_ = true;
    }

    const std::size_t first_choice = choices_.size();
    if (CostBased()) {
      choices_.push_back(
          {"join-chain", MultiwayChoiceLabel(choice.use_multiway, chain.leaves.size()),
           choice.use_multiway ? choice.multiway : choice.binary});
    }

    ChoicePoint point;
    point.kind = ChoicePoint::Kind::kMultiway;
    point.left = e;
    point.multiway_inputs = chain.leaves;
    point.multiway_var_maps = var_maps;
    point.multiway_num_vars = num_vars;
    point.multiway_interior = chain.interior;
    point.first_choice = first_choice;

    if (!choice.use_multiway) {
      // Keep the written binary plan; the recorded point lets a cached
      // plan re-price the (pinned) decision from fresh statistics.
      PhysicalOpPtr op =
          MakeJoin(Lower(e->child(0)), Lower(e->child(1)), e->atoms(), e.get());
      point.op = op.get();
      point.source = e.get();
      point.multiway_routed = false;
      point.num_choices = choices_.size() - first_choice;
      choice_points_.push_back(std::move(point));
      return op;
    }

    // Variable 0's first binding column: the partitioning key the
    // parallel fan-out is priced on.
    std::size_t key_leaf = 0;
    std::size_t key_column = 1;
    for (std::size_t i = 0; i < var_maps.size(); ++i) {
      const auto it = std::find(var_maps[i].begin(), var_maps[i].end(), 0u);
      if (it != var_maps[i].end()) {
        key_leaf = i;
        key_column = static_cast<std::size_t>(it - var_maps[i].begin()) + 1;
        break;
      }
    }
    const std::size_t partitions = PartitionsFor(
        "multiway-execution", choice.multiway, sum_inputs,
        EstimateColumnDistinct(model_.Estimate(chain.leaves[key_leaf]), key_column,
                               chain.leaves[key_leaf]->arity()));
    const std::size_t rewrite_index = rewrites_.size();
    rewrites_.push_back(MultiwayRewriteNote(chain.leaves.size(), choice.agm_bound));

    std::vector<PhysicalOpPtr> children;
    children.reserve(chain.leaves.size());
    for (const ExprPtr& leaf : chain.leaves) children.push_back(Lower(leaf));
    PhysicalOpPtr mw = MakeMultiwayJoin(std::move(children), var_maps, num_vars,
                                        /*source=*/nullptr, partitions);
    if (stats_ != nullptr) estimates_[mw.get()] = choice.multiway;
    std::vector<std::size_t> projection;
    projection.reserve(root_raw.size());
    for (std::size_t raw : root_raw) {
      projection.push_back(dense.at(chain.Find(raw)) + 1);
    }
    point.op = mw.get();
    point.source = nullptr;  // Rewrite-synthesized, like the reduced semijoin.
    point.multiway_routed = true;
    point.multiway_key_leaf = key_leaf;
    point.multiway_key_column = key_column;
    point.partitions = partitions;
    point.num_choices = choices_.size() - first_choice;
    point.rewrite_index = rewrite_index;
    choice_points_.push_back(std::move(point));
    return MakeProject(std::move(mw), std::move(projection), e.get());
  }

  PhysicalOpPtr LowerUncached(const ExprPtr& e) {
    if (options_.recognize_division) {
      if (auto m = MatchEqualityDivision(e)) {
        return LowerDivision(*m, /*equality=*/true, e.get());
      }
      if (auto m = MatchContainmentDivision(e)) {
        return LowerDivision(*m, /*equality=*/false, e.get());
      }
    }
    if (options_.recognize_semijoin_projection && e->kind() == OpKind::kProjection &&
        e->child(0)->kind() == OpKind::kJoin) {
      if (PhysicalOpPtr reduced = TrySemijoinReduction(e)) return reduced;
    }
    if (options_.multiway && stats_ != nullptr && e->kind() == OpKind::kJoin) {
      if (PhysicalOpPtr chained = TryMultiwayChain(e)) return chained;
    }

    switch (e->kind()) {
      case OpKind::kRelation:
        return MakeScan(e->relation_name(), e->arity(), e.get());
      case OpKind::kUnion:
        return MakeUnion(Lower(e->child(0)), Lower(e->child(1)), e.get());
      case OpKind::kDifference:
        return MakeDifference(Lower(e->child(0)), Lower(e->child(1)), e.get());
      case OpKind::kProjection:
        return MakeProject(Lower(e->child(0)), e->projection(), e.get());
      case OpKind::kSelection:
        return MakeSelect(Lower(e->child(0)), e->selection_op(), e->selection_i(),
                          e->selection_j(), e.get());
      case OpKind::kConstTag:
        return MakeConstTag(Lower(e->child(0)), e->tag_value(), e.get());
      case OpKind::kJoin:
        return MakeJoin(Lower(e->child(0)), Lower(e->child(1)), e->atoms(), e.get());
      case OpKind::kSemiJoin: {
        const SemijoinPlan semi =
            SemijoinStrategyFor(e->child(0), e->child(1), e->atoms());
        PhysicalOpPtr op = MakeSemiJoin(Lower(e->child(0)), Lower(e->child(1)),
                                        e->atoms(), semi.strategy, e.get(),
                                        semi.partitions);
        RecordSemijoinPoint(op, e->child(0), e->child(1), e->atoms(), e->atoms(),
                            e.get(), semi);
        return op;
      }
    }
    SETALG_CHECK_STREAM(false) << "unreachable";
    return nullptr;
  }

  // π_cols(E1 ⋈_θ E2) with cols all on one side never needs the join's
  // output: under set semantics it equals π(E1 ⋉_θ E2) (or the mirrored
  // form), whose intermediate is bounded by the surviving input.
  PhysicalOpPtr TrySemijoinReduction(const ExprPtr& e) {
    const ExprPtr& join = e->child(0);
    const std::vector<std::size_t>& columns = e->projection();
    const std::size_t left_arity = join->child(0)->arity();

    bool all_left = true;
    bool all_right = true;
    for (std::size_t c : columns) {
      (c <= left_arity ? all_right : all_left) = false;
    }
    if (all_left) {
      // The semijoin op is rewrite-synthesized: its output matches no
      // logical node, so it carries no source.
      const SemijoinPlan plan =
          SemijoinStrategyFor(join->child(0), join->child(1), join->atoms());
      PhysicalOpPtr semi =
          MakeSemiJoin(Lower(join->child(0)), Lower(join->child(1)), join->atoms(),
                       plan.strategy, nullptr, plan.partitions);
      RecordSemijoinPoint(semi, join->child(0), join->child(1), join->atoms(),
                          join->atoms(), nullptr, plan);
      rewrites_.push_back("π(join) reduced to π(semijoin) at " + e->ToString());
      return MakeProject(std::move(semi), columns, e.get());
    }
    if (all_right && !columns.empty()) {
      std::vector<ra::JoinAtom> mirrored;
      mirrored.reserve(join->atoms().size());
      for (const auto& atom : join->atoms()) {
        mirrored.push_back({atom.right, ra::MirrorCmp(atom.op), atom.left});
      }
      std::vector<std::size_t> shifted;
      shifted.reserve(columns.size());
      for (std::size_t c : columns) shifted.push_back(c - left_arity);
      const SemijoinPlan plan =
          SemijoinStrategyFor(join->child(1), join->child(0), join->atoms());
      PhysicalOpPtr semi =
          MakeSemiJoin(Lower(join->child(1)), Lower(join->child(0)), mirrored,
                       plan.strategy, nullptr, plan.partitions);
      RecordSemijoinPoint(semi, join->child(1), join->child(0), join->atoms(),
                          std::move(mirrored), nullptr, plan);
      rewrites_.push_back("π(join) reduced to π(mirrored semijoin) at " +
                          e->ToString());
      return MakeProject(std::move(semi), std::move(shifted), e.get());
    }
    return nullptr;
  }

  const EngineOptions& options_;
  const stats::StatsProvider* stats_;
  CostModel model_;
  std::unordered_map<const ra::Expr*, PhysicalOpPtr> memo_;
  std::vector<std::string> rewrites_;
  std::vector<AlgorithmChoice> choices_;
  std::unordered_map<const PhysicalOp*, CostEstimate> estimates_;
  std::vector<std::pair<const PhysicalOp*, ExprPtr>> op_sources_;
  std::vector<ChoicePoint> choice_points_;
  double agm_bound_ = 0.0;
  bool has_agm_bound_ = false;
};

}  // namespace

std::string ParallelChoiceLabel(std::size_t partitions) {
  return partitions > 1
             ? util::StrCat("partitioned[", std::to_string(partitions), "]")
             : std::string("serial");
}

std::string DivisionRewriteNote(setjoin::DivisionAlgorithm algorithm, bool equality,
                                bool cost_based) {
  return util::StrCat(equality ? "equality-division pattern → division=["
                               : "division pattern → division[",
                      setjoin::DivisionAlgorithmToString(algorithm), "]",
                      cost_based ? " (cost-based)" : "");
}

std::string MultiwayRewriteNote(std::size_t relations, double agm_bound) {
  return util::StrCat("join chain [", std::to_string(relations),
                      " relations] → multiway generic join (AGM bound ",
                      std::to_string(static_cast<std::size_t>(agm_bound)), ")");
}

std::string MultiwayChoiceLabel(bool routed, std::size_t relations) {
  return routed ? util::StrCat("multiway[", std::to_string(relations), "]")
                : std::string("binary");
}

EngineOptions EngineOptions::Reference() {
  EngineOptions options;
  options.recognize_division = false;
  options.recognize_semijoin_projection = false;
  options.use_fast_semijoin = false;
  return options;
}

EngineOptions EngineOptions::CostBased() {
  EngineOptions options;
  options.cost_based = true;
  return options;
}

EngineOptions EngineOptions::Batched(std::size_t batch_size) {
  EngineOptions options;
  options.batched = true;
  options.batch_size = batch_size;
  return options;
}

EngineOptions EngineOptions::Parallel(std::size_t threads, std::size_t batch_size) {
  EngineOptions options = Batched(batch_size);
  options.threads = threads;
  return options;
}

EngineOptions EngineOptions::WithCalibration(
    std::shared_ptr<CalibrationStore> store) const {
  EngineOptions o = *this;
  o.calibration =
      store != nullptr ? std::move(store) : std::make_shared<CalibrationStore>();
  return o;
}

std::uint64_t OptionsFingerprint(const EngineOptions& options) {
  std::uint64_t h = util::kFnvOffsetBasis;
  auto mix = [&h](std::uint64_t value) { h = util::HashCombine(h, value); };
  mix(options.recognize_division);
  mix(options.recognize_semijoin_projection);
  mix(options.use_fast_semijoin);
  mix(static_cast<std::uint64_t>(options.division_algorithm));
  mix(static_cast<std::uint64_t>(options.containment_algorithm));
  mix(static_cast<std::uint64_t>(options.set_equality_algorithm));
  mix(options.cost_based);
  mix(options.multiway);
  mix(options.batched);
  mix(options.batch_size);
  mix(options.threads);
  mix(options.collect_node_stats);
  mix(options.max_intermediate_budget);
  // A calibrated model prices (and so lowers) differently from an
  // uncalibrated one; keep their cache entries apart. Store contents
  // drift over time either way — revalidation handles that.
  mix(options.calibration != nullptr);
  return h;
}

std::string PhysicalPlan::ToString() const {
  std::string out = root == nullptr ? std::string("(empty plan)\n") : root->ToString();
  for (const auto& rewrite : rewrites) {
    out += "-- rewrite: " + rewrite + "\n";
  }
  for (const auto& choice : choices) {
    out += util::StrCat("-- cost-based: ", choice.site, " → ", choice.algorithm,
                        " (est cost ", static_cast<std::size_t>(choice.estimate.cost),
                        ", est rows ",
                        static_cast<std::size_t>(choice.estimate.output_size), ")\n");
  }
  return out;
}

util::Result<PhysicalPlan> Planner::Lower(const ra::ExprPtr& expr,
                                          const core::Schema& schema,
                                          const stats::StatsProvider* stats) const {
  SETALG_CHECK(expr != nullptr);
  const std::string error = ra::ValidateAgainstSchema(*expr, schema);
  if (!error.empty()) return util::Result<PhysicalPlan>::Error(error);
  Lowering lowering(options_, stats);
  PhysicalPlan plan;
  plan.root = lowering.Lower(expr);
  plan.rewrites = lowering.TakeRewrites();
  plan.choices = lowering.TakeChoices();
  plan.estimates = lowering.TakeEstimates();
  plan.op_sources = lowering.TakeOpSources();
  plan.choice_points = lowering.TakeChoicePoints();
  plan.agm_bound = lowering.agm_bound();
  plan.has_agm_bound = lowering.has_agm_bound();
  return plan;
}

}  // namespace setalg::engine
