#include "engine/planner.h"

#include <optional>
#include <unordered_map>
#include <utility>

#include "engine/cost.h"
#include "util/check.h"
#include "util/str.h"

namespace setalg::engine {
namespace {

using ra::ExprPtr;
using ra::OpKind;

// Structural equality. Expr trees round-trip through their textual form
// (Expr::ToString feeds the parser), so string equality is exact.
bool SameExpr(const ExprPtr& a, const ExprPtr& b) {
  return a == b || a->ToString() == b->ToString();
}

bool IsProjectionOf(const ExprPtr& e, const std::vector<std::size_t>& columns) {
  return e->kind() == OpKind::kProjection && e->projection() == columns;
}

struct DivisionMatch {
  ExprPtr r;  // Binary dividend subexpression.
  ExprPtr s;  // Unary divisor subexpression.
};

// Matches the textbook containment division π₁(R) − π₁((π₁(R) × S) − R)
// where R is any binary and S any unary subexpression.
std::optional<DivisionMatch> MatchContainmentDivision(const ExprPtr& e) {
  if (e->kind() != OpKind::kDifference) return std::nullopt;
  const ExprPtr& cand = e->child(0);  // π₁(R)
  if (!IsProjectionOf(cand, {1})) return std::nullopt;
  const ExprPtr& r = cand->child(0);
  if (r->arity() != 2) return std::nullopt;

  const ExprPtr& missing_proj = e->child(1);  // π₁((π₁(R) × S) − R)
  if (!IsProjectionOf(missing_proj, {1})) return std::nullopt;
  const ExprPtr& missing = missing_proj->child(0);
  if (missing->kind() != OpKind::kDifference) return std::nullopt;
  if (!SameExpr(missing->child(1), r)) return std::nullopt;

  const ExprPtr& required = missing->child(0);  // π₁(R) × S
  if (required->kind() != OpKind::kJoin || !required->atoms().empty()) {
    return std::nullopt;
  }
  if (!SameExpr(required->child(0), cand)) return std::nullopt;
  const ExprPtr& s = required->child(1);
  if (s->arity() != 1) return std::nullopt;
  return DivisionMatch{r, s};
}

// Matches the equality-division extension: containment division minus the
// keys related to some element outside S (ClassicEqualityDivisionExpr).
std::optional<DivisionMatch> MatchEqualityDivision(const ExprPtr& e) {
  if (e->kind() != OpKind::kDifference) return std::nullopt;
  auto contained = MatchContainmentDivision(e->child(0));
  if (!contained) return std::nullopt;

  const ExprPtr& outside = e->child(1);  // π₁(R − π₁,₂(R ⋈₂₌₁ S))
  if (!IsProjectionOf(outside, {1})) return std::nullopt;
  const ExprPtr& diff = outside->child(0);
  if (diff->kind() != OpKind::kDifference) return std::nullopt;
  if (!SameExpr(diff->child(0), contained->r)) return std::nullopt;

  const ExprPtr& inside = diff->child(1);
  if (!IsProjectionOf(inside, {1, 2})) return std::nullopt;
  const ExprPtr& join = inside->child(0);
  if (join->kind() != OpKind::kJoin ||
      join->atoms() != std::vector<ra::JoinAtom>{{2, ra::Cmp::kEq, 1}}) {
    return std::nullopt;
  }
  if (!SameExpr(join->child(0), contained->r)) return std::nullopt;
  if (!SameExpr(join->child(1), contained->s)) return std::nullopt;
  return contained;
}

class Lowering {
 public:
  Lowering(const EngineOptions& options, const stats::StatsProvider* stats)
      : options_(options), stats_(stats), model_(stats) {}

  PhysicalOpPtr Lower(const ExprPtr& e) {
    auto it = memo_.find(e.get());
    if (it != memo_.end()) return it->second;
    PhysicalOpPtr op = LowerUncached(e);
    // Annotate every operator that mirrors a logical node with the cost
    // model's output prediction — the estimated half of the
    // estimated-vs-actual pairs in PlanStats. Rewrite-specific operators
    // record their own, richer estimates in LowerUncached.
    if (stats_ != nullptr && estimates_.find(op.get()) == estimates_.end()) {
      const ExprEstimate guess = model_.Estimate(e);
      estimates_[op.get()] = {0.0, guess.cardinality, guess.cardinality};
    }
    memo_.emplace(e.get(), op);
    return op;
  }

  std::vector<std::string> TakeRewrites() { return std::move(rewrites_); }
  std::vector<AlgorithmChoice> TakeChoices() { return std::move(choices_); }
  std::unordered_map<const PhysicalOp*, CostEstimate> TakeEstimates() {
    return std::move(estimates_);
  }

 private:
  bool CostBased() const { return options_.cost_based && stats_ != nullptr; }

  SemijoinStrategy Strategy() const {
    return options_.use_fast_semijoin ? SemijoinStrategy::kFastKernel
                                      : SemijoinStrategy::kGeneric;
  }

  SemijoinStrategy SemijoinStrategyFor(const ExprPtr& left, const ExprPtr& right,
                                       const std::vector<ra::JoinAtom>& atoms) {
    if (!CostBased()) return Strategy();
    const ExprEstimate l = model_.Estimate(left);
    const ExprEstimate r = model_.Estimate(right);
    const SemijoinStrategy strategy = CostModel::ChooseSemijoin(l, r, atoms);
    choices_.push_back(
        {"semijoin",
         strategy == SemijoinStrategy::kFastKernel ? "fast-kernel" : "generic",
         CostModel::EstimateSemijoin(l, r, atoms, strategy)});
    return strategy;
  }

  PhysicalOpPtr LowerDivision(const DivisionMatch& m, bool equality,
                              const ra::Expr* source) {
    setjoin::DivisionAlgorithm algorithm = options_.division_algorithm;
    if (CostBased()) {
      const auto choice = CostModel::ChooseDivision(model_.Estimate(m.r),
                                                    model_.Estimate(m.s), equality);
      algorithm = choice.algorithm;
      choices_.push_back({equality ? "equality-division" : "division",
                          setjoin::DivisionAlgorithmToString(algorithm),
                          choice.estimate});
    }
    rewrites_.push_back(
        util::StrCat(equality ? "equality-division pattern → division=["
                              : "division pattern → division[",
                     setjoin::DivisionAlgorithmToString(algorithm), "]",
                     CostBased() ? " (cost-based)" : ""));
    PhysicalOpPtr op = MakeDivision(Lower(m.r), Lower(m.s), algorithm, equality, source);
    if (stats_ != nullptr) {
      estimates_[op.get()] = CostModel::EstimateDivision(algorithm, model_.Estimate(m.r),
                                                         model_.Estimate(m.s), equality);
    }
    return op;
  }

  PhysicalOpPtr LowerUncached(const ExprPtr& e) {
    if (options_.recognize_division) {
      if (auto m = MatchEqualityDivision(e)) {
        return LowerDivision(*m, /*equality=*/true, e.get());
      }
      if (auto m = MatchContainmentDivision(e)) {
        return LowerDivision(*m, /*equality=*/false, e.get());
      }
    }
    if (options_.recognize_semijoin_projection && e->kind() == OpKind::kProjection &&
        e->child(0)->kind() == OpKind::kJoin) {
      if (PhysicalOpPtr reduced = TrySemijoinReduction(e)) return reduced;
    }

    switch (e->kind()) {
      case OpKind::kRelation:
        return MakeScan(e->relation_name(), e->arity(), e.get());
      case OpKind::kUnion:
        return MakeUnion(Lower(e->child(0)), Lower(e->child(1)), e.get());
      case OpKind::kDifference:
        return MakeDifference(Lower(e->child(0)), Lower(e->child(1)), e.get());
      case OpKind::kProjection:
        return MakeProject(Lower(e->child(0)), e->projection(), e.get());
      case OpKind::kSelection:
        return MakeSelect(Lower(e->child(0)), e->selection_op(), e->selection_i(),
                          e->selection_j(), e.get());
      case OpKind::kConstTag:
        return MakeConstTag(Lower(e->child(0)), e->tag_value(), e.get());
      case OpKind::kJoin:
        return MakeJoin(Lower(e->child(0)), Lower(e->child(1)), e->atoms(), e.get());
      case OpKind::kSemiJoin:
        return MakeSemiJoin(Lower(e->child(0)), Lower(e->child(1)), e->atoms(),
                            SemijoinStrategyFor(e->child(0), e->child(1), e->atoms()),
                            e.get());
    }
    SETALG_CHECK_STREAM(false) << "unreachable";
    return nullptr;
  }

  // π_cols(E1 ⋈_θ E2) with cols all on one side never needs the join's
  // output: under set semantics it equals π(E1 ⋉_θ E2) (or the mirrored
  // form), whose intermediate is bounded by the surviving input.
  PhysicalOpPtr TrySemijoinReduction(const ExprPtr& e) {
    const ExprPtr& join = e->child(0);
    const std::vector<std::size_t>& columns = e->projection();
    const std::size_t left_arity = join->child(0)->arity();

    bool all_left = true;
    bool all_right = true;
    for (std::size_t c : columns) {
      (c <= left_arity ? all_right : all_left) = false;
    }
    if (all_left) {
      // The semijoin op is rewrite-synthesized: its output matches no
      // logical node, so it carries no source.
      PhysicalOpPtr semi = MakeSemiJoin(
          Lower(join->child(0)), Lower(join->child(1)), join->atoms(),
          SemijoinStrategyFor(join->child(0), join->child(1), join->atoms()));
      rewrites_.push_back("π(join) reduced to π(semijoin) at " + e->ToString());
      return MakeProject(std::move(semi), columns, e.get());
    }
    if (all_right && !columns.empty()) {
      std::vector<ra::JoinAtom> mirrored;
      mirrored.reserve(join->atoms().size());
      for (const auto& atom : join->atoms()) {
        mirrored.push_back({atom.right, ra::MirrorCmp(atom.op), atom.left});
      }
      std::vector<std::size_t> shifted;
      shifted.reserve(columns.size());
      for (std::size_t c : columns) shifted.push_back(c - left_arity);
      PhysicalOpPtr semi = MakeSemiJoin(
          Lower(join->child(1)), Lower(join->child(0)), std::move(mirrored),
          SemijoinStrategyFor(join->child(1), join->child(0), join->atoms()));
      rewrites_.push_back("π(join) reduced to π(mirrored semijoin) at " +
                          e->ToString());
      return MakeProject(std::move(semi), std::move(shifted), e.get());
    }
    return nullptr;
  }

  const EngineOptions& options_;
  const stats::StatsProvider* stats_;
  CostModel model_;
  std::unordered_map<const ra::Expr*, PhysicalOpPtr> memo_;
  std::vector<std::string> rewrites_;
  std::vector<AlgorithmChoice> choices_;
  std::unordered_map<const PhysicalOp*, CostEstimate> estimates_;
};

}  // namespace

EngineOptions EngineOptions::Reference() {
  EngineOptions options;
  options.recognize_division = false;
  options.recognize_semijoin_projection = false;
  options.use_fast_semijoin = false;
  return options;
}

EngineOptions EngineOptions::CostBased() {
  EngineOptions options;
  options.cost_based = true;
  return options;
}

EngineOptions EngineOptions::Batched(std::size_t batch_size) {
  EngineOptions options;
  options.batched = true;
  options.batch_size = batch_size;
  return options;
}

std::string PhysicalPlan::ToString() const {
  std::string out = root == nullptr ? std::string("(empty plan)\n") : root->ToString();
  for (const auto& rewrite : rewrites) {
    out += "-- rewrite: " + rewrite + "\n";
  }
  for (const auto& choice : choices) {
    out += util::StrCat("-- cost-based: ", choice.site, " → ", choice.algorithm,
                        " (est cost ", static_cast<std::size_t>(choice.estimate.cost),
                        ", est rows ",
                        static_cast<std::size_t>(choice.estimate.output_size), ")\n");
  }
  return out;
}

util::Result<PhysicalPlan> Planner::Lower(const ra::ExprPtr& expr,
                                          const core::Schema& schema,
                                          const stats::StatsProvider* stats) const {
  SETALG_CHECK(expr != nullptr);
  const std::string error = ra::ValidateAgainstSchema(*expr, schema);
  if (!error.empty()) return util::Result<PhysicalPlan>::Error(error);
  Lowering lowering(options_, stats);
  PhysicalPlan plan;
  plan.root = lowering.Lower(expr);
  plan.rewrites = lowering.TakeRewrites();
  plan.choices = lowering.TakeChoices();
  plan.estimates = lowering.TakeEstimates();
  return plan;
}

}  // namespace setalg::engine
