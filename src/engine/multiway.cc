#include "engine/multiway.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "core/relation.h"
#include "engine/parallel.h"
#include "util/check.h"

namespace setalg::engine {
namespace {

// One input relation prepared for the generic-join kernel: columns
// permuted into ascending join-variable order (one column per distinct
// variable; rows where duplicate-variable columns disagree are dropped),
// then normalized — the flat sorted storage *is* the trie the leapfrog
// cursors walk.
struct PreparedInput {
  core::Relation relation{0};
  std::vector<std::size_t> vars;  // Ascending distinct variables.
};

PreparedInput PrepareInput(const core::Relation& input,
                           const std::vector<std::size_t>& column_vars) {
  PreparedInput prepared;
  const std::size_t arity = column_vars.size();
  prepared.vars = column_vars;
  std::sort(prepared.vars.begin(), prepared.vars.end());
  prepared.vars.erase(std::unique(prepared.vars.begin(), prepared.vars.end()),
                      prepared.vars.end());
  core::Relation out(prepared.vars.size());
  out.Reserve(input.size());
  // For each output column (a distinct variable), the first input column
  // bound to it; the remaining columns bound to it must agree row-wise.
  std::vector<std::size_t> pick(prepared.vars.size());
  for (std::size_t v = 0; v < prepared.vars.size(); ++v) {
    pick[v] = std::find(column_vars.begin(), column_vars.end(), prepared.vars[v]) -
              column_vars.begin();
  }
  const std::vector<core::Value>& flat = input.flat();
  std::vector<core::Value> row(prepared.vars.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const core::Value* t = flat.data() + i * arity;
    bool consistent = true;
    for (std::size_t c = 0; c < arity && consistent; ++c) {
      consistent = t[c] == t[pick[std::lower_bound(prepared.vars.begin(),
                                                   prepared.vars.end(), column_vars[c]) -
                                 prepared.vars.begin()]];
    }
    if (!consistent) continue;
    for (std::size_t v = 0; v < prepared.vars.size(); ++v) row[v] = t[pick[v]];
    out.Add(core::TupleView(row.data(), row.size()));
  }
  out.Normalize();
  prepared.relation = std::move(out);
  return prepared;
}

// Binary search over one column of a flat sorted row-major range. Within
// [lo, hi) all columns left of `col` are constant (the bound prefix), so
// column `col` is sorted there.
std::size_t LowerBoundRow(const core::Value* flat, std::size_t arity, std::size_t col,
                          std::size_t lo, std::size_t hi, core::Value v) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (flat[mid * arity + col] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t UpperBoundRow(const core::Value* flat, std::size_t arity, std::size_t col,
                          std::size_t lo, std::size_t hi, core::Value v) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (flat[mid * arity + col] <= v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// The generic-join recursion over prepared inputs: binds variables in
// ascending order; at each level leapfrogs the relations containing the
// variable to their common values, narrowing each one's row range to the
// matching block before recursing. Emits bindings in lexicographic order
// (each level iterates values ascending), so the output is born sorted
// and distinct.
class GenericJoin {
 public:
  GenericJoin(const std::vector<const PreparedInput*>& inputs, std::size_t num_vars,
              core::Relation* out)
      : num_vars_(num_vars), out_(out) {
    rels_.reserve(inputs.size());
    for (const PreparedInput* p : inputs) {
      rels_.push_back(Rel{p->relation.flat().data(), p->relation.arity(), 0,
                          p->relation.size()});
    }
    occupants_.resize(num_vars);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const auto& vars = inputs[i]->vars;
      for (std::size_t c = 0; c < vars.size(); ++c) {
        occupants_[vars[c]].push_back(Occupant{i, c});
      }
    }
    scratch_.resize(num_vars);
    for (std::size_t d = 0; d < num_vars; ++d) {
      scratch_[d].resize(occupants_[d].size());
    }
    binding_.resize(num_vars);
  }

  void Run() {
    for (std::size_t d = 0; d < num_vars_; ++d) {
      SETALG_CHECK(!occupants_[d].empty());  // Factory-validated coverage.
    }
    Search(0);
  }

 private:
  struct Rel {
    const core::Value* flat;
    std::size_t arity;
    std::size_t lo;
    std::size_t hi;
  };
  struct Occupant {
    std::size_t rel;
    std::size_t col;
  };
  struct Cursor {
    std::size_t saved_lo;
    std::size_t saved_hi;
    std::size_t pos;
    std::size_t end;
  };

  core::Value ValueAt(const Rel& r, std::size_t col, std::size_t row) const {
    return r.flat[row * r.arity + col];
  }

  void Search(std::size_t d) {
    if (d == num_vars_) {
      out_->Add(core::TupleView(binding_.data(), num_vars_));
      return;
    }
    const auto& occ = occupants_[d];
    auto& cur = scratch_[d];
    for (std::size_t j = 0; j < occ.size(); ++j) {
      Rel& r = rels_[occ[j].rel];
      cur[j] = Cursor{r.lo, r.hi, r.lo, r.lo};
      if (r.lo == r.hi) return;  // An empty range: no binding at this level.
    }
    // Leapfrog: seek every occupant to >= the current max value; when all
    // agree, recurse into the matching blocks and resume past them.
    core::Value v = ValueAt(rels_[occ[0].rel], occ[0].col, cur[0].pos);
    for (std::size_t j = 1; j < occ.size(); ++j) {
      v = std::max(v, ValueAt(rels_[occ[j].rel], occ[j].col, cur[j].pos));
    }
    bool exhausted = false;
    while (!exhausted) {
      std::size_t agree = 0;
      std::size_t j = 0;
      while (agree < occ.size()) {
        const Rel& r = rels_[occ[j].rel];
        cur[j].pos = LowerBoundRow(r.flat, r.arity, occ[j].col, cur[j].pos,
                                   cur[j].saved_hi, v);
        if (cur[j].pos == cur[j].saved_hi) {
          exhausted = true;
          break;
        }
        const core::Value val = ValueAt(r, occ[j].col, cur[j].pos);
        if (val > v) {
          v = val;
          agree = 1;
        } else {
          ++agree;
        }
        j = (j + 1) % occ.size();
      }
      if (exhausted) break;
      for (std::size_t i = 0; i < occ.size(); ++i) {
        Rel& r = rels_[occ[i].rel];
        cur[i].end = UpperBoundRow(r.flat, r.arity, occ[i].col, cur[i].pos,
                                   cur[i].saved_hi, v);
        r.lo = cur[i].pos;
        r.hi = cur[i].end;
      }
      binding_[d] = v;
      Search(d + 1);
      for (std::size_t i = 0; i < occ.size(); ++i) {
        Rel& r = rels_[occ[i].rel];
        r.lo = cur[i].saved_lo;  // Restore before the next value.
        r.hi = cur[i].saved_hi;
        cur[i].pos = cur[i].end;
        exhausted |= cur[i].pos == cur[i].saved_hi;
      }
      if (exhausted) break;
      v = ValueAt(rels_[occ[0].rel], occ[0].col, cur[0].pos);
      for (std::size_t i = 1; i < occ.size(); ++i) {
        v = std::max(v, ValueAt(rels_[occ[i].rel], occ[i].col, cur[i].pos));
      }
    }
    for (std::size_t i = 0; i < occ.size(); ++i) {
      Rel& r = rels_[occ[i].rel];
      r.lo = cur[i].saved_lo;
      r.hi = cur[i].saved_hi;
    }
  }

  std::size_t num_vars_;
  core::Relation* out_;
  std::vector<Rel> rels_;
  std::vector<std::vector<Occupant>> occupants_;
  std::vector<std::vector<Cursor>> scratch_;  // Per depth; recursion is
                                              // depth-sequential, so safe.
  std::vector<core::Value> binding_;
};

// Runs the kernel over one set of prepared inputs. Zero-ary inputs (no
// variables) act as booleans: an empty one empties the join, a non-empty
// one is the unit {()}.
core::Relation RunGenericJoin(const std::vector<const PreparedInput*>& prepared,
                              std::size_t num_vars) {
  core::Relation out(num_vars);
  for (const PreparedInput* p : prepared) {
    if (p->vars.empty() && p->relation.empty()) return out;
  }
  std::vector<const PreparedInput*> active;
  active.reserve(prepared.size());
  for (const PreparedInput* p : prepared) {
    if (!p->vars.empty()) active.push_back(p);
  }
  if (active.empty()) {  // All-boolean, all non-empty: the unit relation.
    out.Add(core::TupleView());
    return out;
  }
  GenericJoin(active, num_vars, &out).Run();
  out.Normalize();
  return out;
}

class MultiwayJoinOp;

// Blocking iterator: Open() materializes and prepares every input, runs
// the kernel (serial, or partitioned by variable 0 across the run's
// worker pool), and streams the normalized result.
class MultiwayIterator final : public BatchIterator {
 public:
  MultiwayIterator(ExecContext& ctx, std::vector<std::unique_ptr<BatchIterator>> inputs,
                   const MultiwayJoinOp* op)
      : ctx_(ctx), inputs_(std::move(inputs)), op_(op), result_(0) {}

  void Open() override;

  bool NextBatch(Batch& out) override {
    pos_ = StreamRelationRows(result_, pos_, &out);
    return !out.empty();
  }

  void Close() override {}
  bool distinct() const override { return true; }  // Normalized result.

 private:
  ExecContext& ctx_;
  std::vector<std::unique_ptr<BatchIterator>> inputs_;
  const MultiwayJoinOp* op_;
  core::Relation result_;
  std::size_t pos_ = 0;
};

class MultiwayJoinOp final : public PhysicalOp {
 public:
  MultiwayJoinOp(std::vector<PhysicalOpPtr> children,
                 std::vector<std::vector<std::size_t>> column_vars, std::size_t num_vars,
                 const ra::Expr* source, std::size_t partitions)
      : PhysicalOp(num_vars, std::move(children), source),
        column_vars_(std::move(column_vars)), num_vars_(num_vars),
        partitions_(partitions) {}

  std::string label() const override {
    return "multiway-join[k=" + std::to_string(children().size()) +
           ", vars=" + std::to_string(num_vars_) + "]";
  }

  std::unique_ptr<BatchIterator> MakeBatchIterator(
      ExecContext& ctx, std::vector<std::unique_ptr<BatchIterator>> inputs) const override {
    return std::make_unique<MultiwayIterator>(ctx, std::move(inputs), this);
  }

  PhysicalOpPtr WithChildren(std::vector<PhysicalOpPtr> new_children) const override {
    return MakeMultiwayJoin(std::move(new_children), column_vars_, num_vars_, source(),
                            partitions_);
  }

  const std::vector<std::vector<std::size_t>>& column_vars() const {
    return column_vars_;
  }
  std::size_t num_vars() const { return num_vars_; }
  std::size_t partitions() const { return partitions_; }

 private:
  std::vector<std::vector<std::size_t>> column_vars_;
  std::size_t num_vars_;
  std::size_t partitions_;
};

void MultiwayIterator::Open() {
  const std::size_t k = inputs_.size();
  // Consume every input on the driving thread (the batch contract: each
  // stream consumed at most once, front to back).
  std::vector<MaterializedInput> materialized;
  materialized.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    inputs_[i]->Open();
    materialized.push_back(MaterializedInput::From(
        inputs_[i].get(), op_->column_vars()[i].size(), ctx_.batch_size()));
  }
  std::vector<PreparedInput> prepared;
  prepared.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    prepared.push_back(PrepareInput(materialized[i].get(), op_->column_vars()[i]));
  }
  for (std::size_t i = 0; i < k; ++i) inputs_[i]->Close();

  const std::size_t num_vars = op_->num_vars();
  const std::size_t parts = ResolvePartitions(op_->partitions(), ctx_);
  if (parts > 1 && num_vars > 0) {
    // Split every input containing variable 0 by its value (column 1 of
    // the prepared relation — variables are stored ascending); share the
    // rest read-only. Each binding's variable-0 value routes it to
    // exactly one partition, so the per-partition outputs are disjoint
    // and their ordered merge — in partition-index order — equals the
    // serial result bit for bit.
    std::vector<std::vector<PreparedInput>> splits(k);
    bool any_split = false;
    for (std::size_t i = 0; i < k; ++i) {
      if (!prepared[i].vars.empty() && prepared[i].vars[0] == 0) {
        std::vector<core::Relation> pieces =
            PartitionByColumn(prepared[i].relation, 1, parts);
        splits[i].reserve(parts);
        for (auto& piece : pieces) {
          splits[i].push_back(PreparedInput{std::move(piece), prepared[i].vars});
        }
        any_split = true;
      }
    }
    if (any_split) {
      std::vector<core::Relation> outputs(parts, core::Relation(num_vars));
      const auto run_partition = [&](std::size_t p) {
        // Shared (unsplit) inputs are pre-normalized on this (driving)
        // thread, so concurrent reads never race on lazy normalization.
        std::vector<const PreparedInput*> local;
        local.reserve(k);
        for (std::size_t i = 0; i < k; ++i) {
          local.push_back(splits[i].empty() ? &prepared[i] : &splits[i][p]);
        }
        outputs[p] = RunGenericJoin(local, num_vars);
      };
      WorkerPool* pool = ctx_.pool();
      if (pool != nullptr) {
        pool->Run(parts, run_partition);
      } else {
        for (std::size_t p = 0; p < parts; ++p) run_partition(p);
      }
      core::Relation merged(num_vars);
      std::size_t total = 0;
      for (const auto& output : outputs) total += output.size();
      merged.Reserve(total);
      for (const auto& output : outputs) {
        if (!output.empty()) merged.AddRows(output.flat().data(), output.size());
      }
      merged.Normalize();
      result_ = std::move(merged);
      ctx_.CountPartitions(parts);
      ctx_.CountJoinRows(result_.size());
      pos_ = 0;
      return;
    }
  }
  std::vector<const PreparedInput*> all;
  all.reserve(k);
  for (const PreparedInput& p : prepared) all.push_back(&p);
  result_ = RunGenericJoin(all, num_vars);
  ctx_.CountJoinRows(result_.size());
  pos_ = 0;
}

}  // namespace

PhysicalOpPtr MakeMultiwayJoin(std::vector<PhysicalOpPtr> children,
                               std::vector<std::vector<std::size_t>> column_vars,
                               std::size_t num_vars, const ra::Expr* source,
                               std::size_t partitions) {
  SETALG_CHECK(children.size() >= 2);
  SETALG_CHECK(children.size() == column_vars.size());
  std::vector<bool> covered(num_vars, false);
  for (std::size_t i = 0; i < children.size(); ++i) {
    SETALG_CHECK(children[i]->arity() == column_vars[i].size());
    for (std::size_t v : column_vars[i]) {
      SETALG_CHECK(v < num_vars);
      covered[v] = true;
    }
  }
  for (std::size_t v = 0; v < num_vars; ++v) SETALG_CHECK(covered[v]);
  return std::make_shared<MultiwayJoinOp>(std::move(children), std::move(column_vars),
                                          num_vars, source, partitions);
}

}  // namespace setalg::engine
