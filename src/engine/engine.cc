#include "engine/engine.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace setalg::engine {
namespace {

// Post-order DAG execution with memoization: shared operators run once.
class Executor {
 public:
  Executor(const core::Database* db, const EngineOptions* options,
           const PhysicalPlan* plan, PlanStats* stats)
      : ctx_(db, stats), options_(options), plan_(plan), stats_(stats) {}

  const core::Relation* Execute(const PhysicalOpPtr& op) {
    auto it = memo_.find(op.get());
    if (it != memo_.end()) return &it->second;

    std::vector<const core::Relation*> inputs;
    inputs.reserve(op->children().size());
    for (const auto& child : op->children()) {
      const core::Relation* input = Execute(child);
      if (input == nullptr) return nullptr;
      inputs.push_back(input);
    }

    core::Relation out = op->Execute(ctx_, inputs);
    out.Normalize();
    const std::size_t size = out.size();
    if (stats_ != nullptr) {
      if (options_->collect_node_stats) {
        OpStats entry{op.get(), op->source(), op->label(), size, false, 0.0, 0.0};
        // Pair the actual output with the plan-time prediction, if any —
        // this is what makes every run a cost-model calibration point.
        auto estimate = plan_->estimates.find(op.get());
        if (estimate != plan_->estimates.end()) {
          entry.has_estimate = true;
          entry.estimated_output = estimate->second.output_size;
          entry.estimated_cost = estimate->second.cost;
        }
        stats_->ops.push_back(std::move(entry));
      }
      stats_->max_intermediate = std::max(stats_->max_intermediate, size);
      stats_->total_intermediate += size;
    }
    if (options_->max_intermediate_budget != 0 &&
        size > options_->max_intermediate_budget) {
      std::ostringstream message;
      message << "intermediate-size budget exceeded: " << op->label()
              << " materialized " << size << " tuples (budget "
              << options_->max_intermediate_budget << ")";
      error_ = message.str();
      return nullptr;
    }
    return &memo_.emplace(op.get(), std::move(out)).first->second;
  }

  const std::string& error() const { return error_; }

  core::Relation TakeOutput(const PhysicalOpPtr& root) {
    return std::move(memo_.at(root.get()));
  }

 private:
  ExecContext ctx_;
  const EngineOptions* options_;
  const PhysicalPlan* plan_;
  PlanStats* stats_;
  std::unordered_map<const PhysicalOp*, core::Relation> memo_;
  std::string error_;
};

}  // namespace

const stats::DatabaseStats* Engine::StatsFor(const core::Database& db) const {
  if (db_stats_ == nullptr || db_stats_id_ != db.id() || &db_stats_->db() != &db) {
    db_stats_ = std::make_unique<stats::DatabaseStats>(&db);
    db_stats_id_ = db.id();
  }
  return db_stats_.get();
}

util::Result<RunResult> Engine::Run(const ra::ExprPtr& expr,
                                    const core::Database& db) const {
  auto plan = Plan(expr, db);
  if (!plan.ok()) return util::Result<RunResult>::Error(plan.error());
  return RunPlan(*plan, db);
}

util::Result<PhysicalPlan> Engine::Plan(const ra::ExprPtr& expr,
                                        const core::Schema& schema) const {
  return Planner(options_).Lower(expr, schema);
}

util::Result<PhysicalPlan> Engine::Plan(const ra::ExprPtr& expr,
                                        const core::Database& db) const {
  return Planner(options_).Lower(expr, db.schema(), StatsFor(db));
}

util::Result<std::string> Engine::Explain(const ra::ExprPtr& expr,
                                          const core::Schema& schema) const {
  auto plan = Plan(expr, schema);
  if (!plan.ok()) return util::Result<std::string>::Error(plan.error());
  return plan->ToString();
}

util::Result<std::string> Engine::Explain(const ra::ExprPtr& expr,
                                          const core::Database& db) const {
  auto plan = Plan(expr, db);
  if (!plan.ok()) return util::Result<std::string>::Error(plan.error());
  return plan->ToString();
}

util::Result<RunResult> Engine::RunPlan(const PhysicalPlan& plan,
                                        const core::Database& db) const {
  SETALG_CHECK(plan.root != nullptr);
  RunResult result;
  result.stats.rewrites = plan.rewrites;
  result.stats.choices = plan.choices;
  Executor executor(&db, &options_, &plan, &result.stats);
  if (executor.Execute(plan.root) == nullptr) {
    return util::Result<RunResult>::Error(executor.error());
  }
  result.relation = executor.TakeOutput(plan.root);
  return result;
}

util::Result<RunResult> Engine::Run(const ra::ExprPtr& expr, const core::Database& db,
                                    const EngineOptions& options) {
  // The throwaway engine cannot amortize a statistics pass across calls
  // (this is the hot path behind legacy ra::Eval), so it only computes
  // stats when the options actually need them for algorithm choice. Use a
  // persistent Engine to get cached stats and estimate annotations.
  const Engine engine(options);
  auto plan = options.cost_based ? engine.Plan(expr, db)
                                 : engine.Plan(expr, db.schema());
  if (!plan.ok()) return util::Result<RunResult>::Error(plan.error());
  return engine.RunPlan(*plan, db);
}

ra::EvalStats ToEvalStats(const PlanStats& stats) {
  ra::EvalStats out;
  out.nodes.reserve(stats.ops.size());
  for (const auto& op : stats.ops) {
    if (op.source != nullptr) out.nodes.push_back({op.source, op.output_size});
  }
  out.max_intermediate = stats.max_intermediate;
  out.total_intermediate = stats.total_intermediate;
  out.join_rows_emitted = stats.join_rows_emitted;
  return out;
}

}  // namespace setalg::engine
