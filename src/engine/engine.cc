#include "engine/engine.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "engine/calibration.h"
#include "engine/parallel.h"
#include "engine/result_cache.h"
#include "engine/shared_cache.h"
#include "util/check.h"

namespace setalg::engine {
namespace {

// One operator's stats entry with the plan-time prediction paired in, if
// any — this is what makes every run a cost-model calibration point.
// Shared by both executors so the execution modes can never diverge.
OpStats MakeOpStats(const PhysicalOp* op, std::size_t output_size,
                    const PhysicalPlan* plan) {
  OpStats entry{op, op->source(), op->label(), output_size, false, 0.0, 0.0};
  auto estimate = plan->estimates.find(op);
  if (estimate != plan->estimates.end()) {
    entry.has_estimate = true;
    entry.estimated_output = estimate->second.output_size;
    entry.estimated_cost = estimate->second.cost;
  }
  return entry;
}

// Label prefix up to the first of "[( " — the calibration op-kind, e.g.
// "division=" from "division=[hash-division]" or "join" from "join[2=1]".
std::string OpKindOf(const std::string& label) {
  return label.substr(0, label.find_first_of("[( "));
}

// Feeds one finished run's estimate/actual pairs into the calibration
// store: every estimated operator contributes an output-size residual,
// and selections/semijoins additionally contribute observed
// input-to-output selectivities (their input is the first child's
// recorded output in the same ops list).
void FeedCalibration(CalibrationStore* store, const PlanStats& stats) {
  std::unordered_map<const PhysicalOp*, std::size_t> outputs;
  for (const OpStats& op : stats.ops) {
    if (op.op != nullptr) outputs[op.op] = op.output_size;
  }
  for (const OpStats& op : stats.ops) {
    const std::string kind = OpKindOf(op.label);
    if (op.has_estimate) {
      store->ObserveOutput("out:" + kind, op.estimated_output,
                           static_cast<double>(op.output_size));
    }
    if (op.op == nullptr || op.op->children().empty()) continue;
    auto in = outputs.find(op.op->child(0).get());
    if (in == outputs.end()) continue;
    const double input = static_cast<double>(in->second);
    if (kind == "select") {
      // "select[1<2]": the comparator between the columns, "!=" first so
      // its '=' is not mistaken for equality.
      const std::string& l = op.label;
      const char* cmp = l.find("!=") != std::string::npos   ? "!="
                        : l.find('=') != std::string::npos  ? "="
                        : l.find('<') != std::string::npos  ? "<"
                        : l.find('>') != std::string::npos  ? ">"
                                                            : nullptr;
      if (cmp != nullptr) {
        store->ObserveSelectivity(std::string("sel:select:") + cmp, input,
                                  static_cast<double>(op.output_size));
      }
    } else if (kind == "semijoin") {
      store->ObserveSelectivity("sel:semijoin", input,
                                static_cast<double>(op.output_size));
    }
  }
}

// Post-order DAG execution with memoization: shared operators run once.
class Executor {
 public:
  Executor(const core::DatabaseView* db, const EngineOptions* options,
           const PhysicalPlan* plan, PlanStats* stats, WorkerPool* pool)
      : ctx_(db, stats, options->batch_size, pool), options_(options), plan_(plan),
        stats_(stats) {}

  const core::Relation* Execute(const PhysicalOpPtr& op) {
    auto it = memo_.find(op.get());
    if (it != memo_.end()) return &it->second;

    std::vector<const core::Relation*> inputs;
    inputs.reserve(op->children().size());
    for (const auto& child : op->children()) {
      const core::Relation* input = Execute(child);
      if (input == nullptr) return nullptr;
      inputs.push_back(input);
    }

    core::Relation out = op->Execute(ctx_, inputs);
    out.Normalize();
    const std::size_t size = out.size();
    if (stats_ != nullptr) {
      if (options_->collect_node_stats) {
        stats_->ops.push_back(MakeOpStats(op.get(), size, plan_));
      }
      stats_->max_intermediate = std::max(stats_->max_intermediate, size);
      stats_->total_intermediate += size;
    }
    if (options_->max_intermediate_budget != 0 &&
        size > options_->max_intermediate_budget) {
      std::ostringstream message;
      message << "intermediate-size budget exceeded: " << op->label()
              << " materialized " << size << " tuples (budget "
              << options_->max_intermediate_budget << ")";
      error_ = message.str();
      return nullptr;
    }
    return &memo_.emplace(op.get(), std::move(out)).first->second;
  }

  const std::string& error() const { return error_; }

  core::Relation TakeOutput(const PhysicalOpPtr& root) {
    return std::move(memo_.at(root.get()));
  }

 private:
  ExecContext ctx_;
  const EngineOptions* options_;
  const PhysicalPlan* plan_;
  PlanStats* stats_;
  std::unordered_map<const PhysicalOp*, core::Relation> memo_;
  std::string error_;
};

class BatchedExecutor;

// Wraps one operator's batch stream on a pipeline edge: guarantees set
// semantics downstream (deduping streams that may carry duplicates),
// counts the operator's distinct output rows for PlanStats — the same
// per-operator cardinalities the materializing executor records — and
// enforces the intermediate-size budget as the stream grows.
class InstrumentedIterator final : public BatchIterator {
 public:
  InstrumentedIterator(BatchedExecutor* executor, const PhysicalOp* op,
                       std::unique_ptr<BatchIterator> inner, std::size_t batch_size)
      : executor_(executor), op_(op), inner_(std::move(inner)),
        batch_size_(batch_size) {}

  void Open() override { inner_->Open(); }
  void Close() override { inner_->Close(); }
  bool distinct() const override { return true; }

  bool NextBatch(Batch& out) override;

  // A bypassed scan stream still produces its operator's stats entry —
  // the rows the consumer read from sharded storage are exactly what a
  // full drain would have counted, so per-op PlanStats (and the budget
  // check) match the materializing executor either way.
  void AccountBypassedScan(std::size_t rows) override;

 private:
  bool NextDeduped(Batch& out);
  void FinalizeOnce();

  BatchedExecutor* executor_;
  const PhysicalOp* op_;
  std::unique_ptr<BatchIterator> inner_;
  std::size_t batch_size_;
  std::size_t rows_ = 0;
  bool finalized_ = false;
  // Dedup state, engaged only when the inner stream may repeat tuples.
  std::optional<RowSet> seen_;
  Batch scratch_;
};

// Pipelined execution over the batch surface: composes the operators'
// iterators edge-to-edge so streaming operators never materialize their
// output. Shared subplans (DAG nodes with more than one parent) cannot
// share one stream, so they are materialized once and re-streamed to each
// parent. Per-operator PlanStats (distinct output rows, max/total
// intermediate, join rows) match the materializing executor exactly; the
// batch fields (batches_emitted, peak_batch_bytes) describe this mode's
// actual buffering.
class BatchedExecutor {
 public:
  BatchedExecutor(const core::DatabaseView* db, const EngineOptions* options,
                  const PhysicalPlan* plan, PlanStats* stats, WorkerPool* pool)
      : ctx_(db, stats, options->batch_size, pool), options_(options), plan_(plan),
        stats_(stats) {}

  util::Result<core::Relation> Run(const PhysicalOpPtr& root) {
    {
      std::unordered_set<const PhysicalOp*> visited;
      CountParents(root, &visited);
    }
    std::unique_ptr<BatchIterator> it = Build(root);
    core::Relation out = DrainToRelation(it.get(), root->arity(), ctx_.batch_size());
    if (!error_.empty()) return util::Result<core::Relation>::Error(error_);
    {
      // Emit OpStats in the same post-order the materializing executor
      // uses, independent of the streams' interleaved completion order.
      std::unordered_set<const PhysicalOp*> visited;
      AppendStats(root, &visited);
    }
    out.Normalize();
    return out;
  }

  ExecContext& ctx() { return ctx_; }
  bool failed() const { return !error_.empty(); }

  /// Returns false (and records the error) once an operator's distinct
  /// output exceeds the budget.
  bool CheckBudget(const PhysicalOp* op, std::size_t rows) {
    if (options_->max_intermediate_budget == 0 ||
        rows <= options_->max_intermediate_budget) {
      return true;
    }
    if (error_.empty()) {
      std::ostringstream message;
      message << "intermediate-size budget exceeded: " << op->label() << " produced "
              << rows << " tuples (budget " << options_->max_intermediate_budget
              << ")";
      error_ = message.str();
    }
    return false;
  }

  /// Records an exhausted stream's distinct row count — the operator's
  /// output cardinality.
  void Finalize(const PhysicalOp* op, std::size_t rows) {
    stats_->max_intermediate = std::max(stats_->max_intermediate, rows);
    stats_->total_intermediate += rows;
    if (!options_->collect_node_stats) return;
    finished_.emplace(op, MakeOpStats(op, rows, plan_));
  }

 private:
  // Counts incoming DAG edges per operator (each node's subtree is walked
  // once; extra edges only bump the count).
  void CountParents(const PhysicalOpPtr& op,
                    std::unordered_set<const PhysicalOp*>* visited) {
    for (const auto& child : op->children()) {
      ++parents_[child.get()];
      if (visited->insert(child.get()).second) CountParents(child, visited);
    }
  }

  std::unique_ptr<BatchIterator> Build(const PhysicalOpPtr& op) {
    if (parents_[op.get()] > 1) {
      // A stream has one consumer; shared subplans materialize once and
      // each parent re-streams the stored result.
      auto it = materialized_.find(op.get());
      if (it == materialized_.end()) {
        std::unique_ptr<BatchIterator> inner = BuildFresh(op);
        core::Relation relation =
            DrainToRelation(inner.get(), op->arity(), ctx_.batch_size());
        relation.Normalize();
        it = materialized_.emplace(op.get(), std::move(relation)).first;
      }
      return std::make_unique<RelationBatchIterator>(&it->second);
    }
    return BuildFresh(op);
  }

  std::unique_ptr<BatchIterator> BuildFresh(const PhysicalOpPtr& op) {
    std::vector<std::unique_ptr<BatchIterator>> inputs;
    inputs.reserve(op->children().size());
    for (const auto& child : op->children()) inputs.push_back(Build(child));
    return std::make_unique<InstrumentedIterator>(
        this, op.get(), op->MakeBatchIterator(ctx_, std::move(inputs)),
        ctx_.batch_size());
  }

  void AppendStats(const PhysicalOpPtr& op,
                   std::unordered_set<const PhysicalOp*>* visited) {
    if (!visited->insert(op.get()).second) return;
    for (const auto& child : op->children()) AppendStats(child, visited);
    auto it = finished_.find(op.get());
    if (it != finished_.end()) stats_->ops.push_back(std::move(it->second));
  }

  ExecContext ctx_;
  const EngineOptions* options_;
  const PhysicalPlan* plan_;
  PlanStats* stats_;
  std::unordered_map<const PhysicalOp*, std::size_t> parents_;
  std::unordered_map<const PhysicalOp*, core::Relation> materialized_;
  std::unordered_map<const PhysicalOp*, OpStats> finished_;
  std::string error_;
};

bool InstrumentedIterator::NextBatch(Batch& out) {
  if (executor_->failed()) return false;
  for (;;) {
    bool more;
    if (inner_->distinct()) {
      more = inner_->NextBatch(out);
      if (more) {
        executor_->ctx().CountBatch(out);
        rows_ += out.size();
      }
    } else {
      more = NextDeduped(out);
    }
    if (!more) {
      FinalizeOnce();
      return false;
    }
    if (!executor_->CheckBudget(op_, rows_)) return false;
    // A fully-duplicate batch dedups to nothing; pull again rather than
    // hand the consumer an empty batch.
    if (!out.empty()) return true;
  }
}

bool InstrumentedIterator::NextDeduped(Batch& out) {
  if (!seen_.has_value()) {
    seen_.emplace(op_->arity());
    scratch_.Reset(op_->arity(), batch_size_);
  }
  if (!inner_->NextBatch(scratch_)) return false;
  executor_->ctx().CountBatch(scratch_);
  out.Clear();
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    core::TupleView row = scratch_.row(i);
    if (seen_->Insert(row)) out.Add(row);
  }
  rows_ += out.size();
  return true;
}

void InstrumentedIterator::AccountBypassedScan(std::size_t rows) {
  rows_ += rows;
  executor_->CheckBudget(op_, rows_);
  FinalizeOnce();
}

void InstrumentedIterator::FinalizeOnce() {
  if (finalized_) return;
  finalized_ = true;
  executor_->Finalize(op_, rows_);
}

}  // namespace

const stats::StatsProvider* Engine::StatsFor(const core::DatabaseView& db) const {
  // Views that double as their own statistics provider — txn::Snapshot
  // computes per-relation stats lazily behind its own mutex — bypass the
  // engine's memoized provider entirely. This keeps concurrent
  // Run(expr, snapshot) calls off the engine's mutable state.
  if (const auto* provider = dynamic_cast<const stats::StatsProvider*>(&db)) {
    return provider;
  }
  if (db_stats_ == nullptr || db_stats_id_ != db.id() || &db_stats_->db() != &db) {
    db_stats_ = std::make_unique<stats::DatabaseStats>(&db);
    db_stats_id_ = db.id();
  }
  return db_stats_.get();
}

PlanCache* Engine::EnsureCache() const {
  if (options_.plan_cache_entries == 0) return nullptr;
  if (plan_cache_ == nullptr) {
    plan_cache_ = std::make_unique<PlanCache>(options_.plan_cache_entries,
                                              options_.plan_cache_bytes);
  }
  return plan_cache_.get();
}

void Engine::ClearPlanCache() const {
  if (plan_cache_ != nullptr) plan_cache_->Clear();
}

util::Result<RunResult> Engine::RunCached(const CachedPlanPtr& entry,
                                          const core::DatabaseView& db) const {
  const CacheOutcome outcome =
      RevalidateCachedPlan(*entry, db, StatsFor(db), options_);
  // No-op for entries the cache is not holding (detached hand-built
  // handles, evicted entries): the tallies only count runs it served.
  if (plan_cache_ != nullptr) plan_cache_->NoteUse(entry, outcome);
  ++entry->uses;
  auto run = RunImpl(entry->plan, db);
  if (run.ok()) run->stats.cache = outcome;
  return run;
}

util::Result<RunResult> Engine::Run(const ra::ExprPtr& expr,
                                    const core::DatabaseView& db) const {
  const ResultCache* results = options_.result_cache.get();
  if (results == nullptr) {
    PhysicalOpPtr pin;
    return RunWithPlanCaches(expr, db, &pin);
  }
  const std::uint64_t fp = OptionsFingerprint(options_);
  if (auto hit = results->Lookup(expr, db, fp)) {
    RunResult out;
    out.relation = std::move(hit->relation);
    out.stats = std::move(hit->stats);
    return util::Result<RunResult>(std::move(out));
  }
  PhysicalOpPtr pin;
  auto run = RunWithPlanCaches(expr, db, &pin);
  if (run.ok()) {
    // Key the stored result on the versions of exactly the relations the
    // expression reads. Consistent with the data the run saw: a
    // snapshot's counters are frozen, and a live Database is
    // single-threaded by contract.
    results->Insert(expr, db.id(), fp,
                    stats::SnapshotVersions(db, ra::CollectRelationNames(*expr)),
                    run->relation, run->stats, std::move(pin));
  }
  return run;
}

util::Result<RunResult> Engine::RunWithPlanCaches(const ra::ExprPtr& expr,
                                                  const core::DatabaseView& db,
                                                  PhysicalOpPtr* pin) const {
  if (const SharedPlanCache* shared = options_.shared_plan_cache.get()) {
    // The process-wide cache takes precedence over the engine-local one:
    // entries are immutable and revalidated by replacement, so this path
    // is safe from any number of threads.
    auto acquired = shared->Acquire(expr, db, StatsFor(db), options_);
    SharedPlanPtr entry = std::move(acquired.entry);
    if (entry == nullptr) {
      auto plan = Plan(expr, db);
      if (!plan.ok()) return util::Result<RunResult>::Error(plan.error());
      entry = shared->Insert(MakeCachedPlan(expr, db, std::move(*plan)), options_);
    }
    auto run = RunImpl(entry->plan, db);
    if (run.ok()) run->stats.cache = acquired.outcome;
    *pin = entry->plan.root;
    return run;
  }
  PlanCache* cache = EnsureCache();
  if (cache != nullptr) {
    if (CachedPlanPtr entry = cache->Lookup(expr, db.id())) {
      auto run = RunCached(entry, db);
      *pin = entry->plan.root;  // After the run: revalidation may swap it.
      return run;
    }
    auto plan = Plan(expr, db);
    if (!plan.ok()) return util::Result<RunResult>::Error(plan.error());
    const CachedPlanPtr entry =
        cache->Insert(MakeCachedPlan(expr, db, std::move(*plan)));
    cache->RecordOutcome(CacheOutcome::kMiss);
    ++entry->uses;
    auto run = RunImpl(entry->plan, db);
    if (run.ok()) run->stats.cache = CacheOutcome::kMiss;
    *pin = entry->plan.root;
    return run;
  }
  auto plan = Plan(expr, db);
  if (!plan.ok()) return util::Result<RunResult>::Error(plan.error());
  auto run = RunImpl(*plan, db);
  *pin = plan->root;
  return run;
}

util::Result<PreparedQuery> Engine::Prepare(const ra::ExprPtr& expr,
                                            const core::DatabaseView& db) const {
  SETALG_CHECK(expr != nullptr);
  PlanCache* cache = EnsureCache();
  if (cache != nullptr) {
    if (CachedPlanPtr entry = cache->Lookup(expr, db.id())) {
      // Reuse the transparently cached plan: the handle and the cache
      // share one entry, so each keeps the other's revalidations warm.
      const CacheOutcome outcome =
          RevalidateCachedPlan(*entry, db, StatsFor(db), options_);
      cache->NoteUse(entry, outcome);
      return util::Result<PreparedQuery>(PreparedQuery(std::move(entry)));
    }
  }
  auto plan = Plan(expr, db);
  if (!plan.ok()) return util::Result<PreparedQuery>::Error(plan.error());
  CachedPlanPtr entry = MakeCachedPlan(expr, db, std::move(*plan));
  if (cache != nullptr) {
    cache->Insert(entry);
    cache->RecordOutcome(CacheOutcome::kMiss);
  }
  return util::Result<PreparedQuery>(PreparedQuery(std::move(entry)));
}

util::Result<PreparedQuery> Engine::Prepare(PhysicalPlan plan,
                                            const core::DatabaseView& db) const {
  if (plan.root == nullptr) {
    return util::Result<PreparedQuery>::Error("cannot prepare an empty plan");
  }
  // Hand-built plans have no logical key, so they never enter the
  // expression-keyed cache: the handle alone owns the entry.
  return util::Result<PreparedQuery>(
      PreparedQuery(MakeCachedPlan(nullptr, db, std::move(plan))));
}

util::Result<RunResult> Engine::Run(const PreparedQuery& prepared,
                                    const core::DatabaseView& db) const {
  SETALG_CHECK(prepared.valid());
  const CachedPlanPtr& entry = prepared.entry_;
  if (entry->db_id != db.id()) {
    // Prepared against a different database instance. Same-named
    // relations on another database are different data — never reuse the
    // handle's costs for them. With a logical key the transparent path
    // plans (or cache-fetches) for *this* database; a hand-built plan
    // has no key, so it runs uncached with its plan-time annotations.
    if (entry->expr != nullptr) return Run(entry->expr, db);
    return RunImpl(entry->plan, db);
  }
  return RunCached(entry, db);
}

util::Result<PhysicalPlan> Engine::Plan(const ra::ExprPtr& expr,
                                        const core::Schema& schema) const {
  return Planner(options_).Lower(expr, schema);
}

util::Result<PhysicalPlan> Engine::Plan(const ra::ExprPtr& expr,
                                        const core::DatabaseView& db) const {
  return Planner(options_).Lower(expr, db.schema(), StatsFor(db));
}

util::Result<std::string> Engine::Explain(const ra::ExprPtr& expr,
                                          const core::Schema& schema) const {
  auto plan = Plan(expr, schema);
  if (!plan.ok()) return util::Result<std::string>::Error(plan.error());
  return plan->ToString();
}

util::Result<std::string> Engine::Explain(const ra::ExprPtr& expr,
                                          const core::DatabaseView& db) const {
  auto plan = Plan(expr, db);
  if (!plan.ok()) return util::Result<std::string>::Error(plan.error());
  return plan->ToString();
}

util::Result<RunResult> Engine::Run(const PhysicalPlan& plan,
                                    const core::DatabaseView& db) const {
  return RunImpl(plan, db);
}

util::Result<RunResult> Engine::RunImpl(const PhysicalPlan& plan,
                                        const core::DatabaseView& db) const {
  SETALG_CHECK(plan.root != nullptr);
  RunResult result;
  result.stats.rewrites = plan.rewrites;
  result.stats.choices = plan.choices;
  result.stats.agm_bound = plan.agm_bound;
  result.stats.has_agm_bound = plan.has_agm_bound;
  result.stats.batch_size = options_.batch_size == 0 ? 1 : options_.batch_size;
  // One fixed worker pool per run (serial runs pay nothing): partitioned
  // operators fan out through it, everything else ignores it.
  const std::size_t threads = options_.threads == 0 ? 1 : options_.threads;
  result.stats.threads_used = threads;
  std::unique_ptr<WorkerPool> pool;
  if (threads > 1) pool = std::make_unique<WorkerPool>(threads);
  if (options_.batched) {
    BatchedExecutor executor(&db, &options_, &plan, &result.stats, pool.get());
    auto out = executor.Run(plan.root);
    if (!out.ok()) return util::Result<RunResult>::Error(out.error());
    result.relation = std::move(*out);
    if (options_.calibration != nullptr) {
      FeedCalibration(options_.calibration.get(), result.stats);
    }
    return result;
  }
  Executor executor(&db, &options_, &plan, &result.stats, pool.get());
  if (executor.Execute(plan.root) == nullptr) {
    return util::Result<RunResult>::Error(executor.error());
  }
  result.relation = executor.TakeOutput(plan.root);
  if (options_.calibration != nullptr) {
    FeedCalibration(options_.calibration.get(), result.stats);
  }
  return result;
}

util::Result<RunResult> Engine::Run(const ra::ExprPtr& expr, const core::DatabaseView& db,
                                    const EngineOptions& options) {
  // The throwaway engine cannot amortize a statistics pass across calls
  // (this is the hot path behind legacy ra::Eval), so it only computes
  // stats when the options actually need them for algorithm choice. Use a
  // persistent Engine to get cached stats and estimate annotations.
  const Engine engine(options);
  auto plan = options.cost_based ? engine.Plan(expr, db)
                                 : engine.Plan(expr, db.schema());
  if (!plan.ok()) return util::Result<RunResult>::Error(plan.error());
  return engine.RunImpl(*plan, db);
}

ra::EvalStats ToEvalStats(const PlanStats& stats) {
  ra::EvalStats out;
  out.nodes.reserve(stats.ops.size());
  for (const auto& op : stats.ops) {
    if (op.source != nullptr) out.nodes.push_back({op.source, op.output_size});
  }
  out.max_intermediate = stats.max_intermediate;
  out.total_intermediate = stats.total_intermediate;
  out.join_rows_emitted = stats.join_rows_emitted;
  return out;
}

}  // namespace setalg::engine
