#include "engine/batch.h"

#include <algorithm>

#include "util/check.h"

namespace setalg::engine {

void Batch::Reset(std::size_t arity, std::size_t capacity) {
  SETALG_CHECK(capacity > 0);
  arity_ = arity;
  capacity_ = capacity;
  values_.clear();
  values_.reserve(arity * capacity);
  rows_ = 0;
}

void Batch::Add(core::TupleView t) {
  SETALG_DCHECK(t.size() == arity_);
  SETALG_DCHECK(rows_ < capacity_);
  values_.insert(values_.end(), t.begin(), t.end());
  ++rows_;
}

void Batch::AddRows(const core::Value* data, std::size_t rows) {
  SETALG_DCHECK(arity_ > 0);
  SETALG_DCHECK(rows_ + rows <= capacity_);
  values_.insert(values_.end(), data, data + rows * arity_);
  rows_ += rows;
}

void AppendBatchTo(const Batch& batch, core::Relation* out) {
  if (batch.arity() == 0) {
    for (std::size_t i = 0; i < batch.size(); ++i) out->Add(batch.row(i));
    return;
  }
  out->AddRows(batch.values().data(), batch.size());
}

std::size_t StreamRelationRows(const core::Relation& relation, std::size_t pos,
                               Batch* out) {
  out->Clear();
  const std::size_t end = std::min(relation.size(), pos + out->capacity());
  if (relation.arity() == 0) {
    // Zero-ary rows have no flat storage; add them one by one.
    for (; pos < end; ++pos) out->Add(relation.tuple(pos));
    return pos;
  }
  if (pos < end) {
    out->AddRows(relation.flat().data() + pos * relation.arity(), end - pos);
  }
  return end;
}

bool RelationBatchIterator::NextBatch(Batch& out) {
  pos_ = StreamRelationRows(*relation_, pos_, &out);
  return !out.empty();
}

core::Relation DrainToRelation(BatchIterator* input, std::size_t arity,
                               std::size_t batch_size) {
  input->Open();
  Batch batch(arity, batch_size);
  core::Relation out(arity);
  while (input->NextBatch(batch)) AppendBatchTo(batch, &out);
  input->Close();
  return out;
}

MaterializedInput MaterializedInput::From(BatchIterator* input, std::size_t arity,
                                          std::size_t batch_size) {
  MaterializedInput view;
  if (auto* direct = dynamic_cast<RelationBatchIterator*>(input)) {
    view.borrowed_ = &direct->relation();
    return view;
  }
  view.owned_ = DrainToRelation(input, arity, batch_size);
  return view;
}

bool RowSet::Insert(core::TupleView row) {
  SETALG_DCHECK(row.size() == arity_);
  const std::uint64_t hash = core::HashTuple(row);
  auto& bucket = buckets_[hash];
  for (std::uint32_t index : bucket) {
    if (core::TupleEquals(StoredRow(index), row)) return false;
  }
  // Indices are 32-bit; fail loudly rather than wrap past 2^32 rows.
  SETALG_CHECK(size_ < 0xFFFFFFFFu);
  bucket.push_back(static_cast<std::uint32_t>(size_));
  values_.insert(values_.end(), row.begin(), row.end());
  ++size_;
  return true;
}

bool RowSet::Contains(core::TupleView row) const {
  SETALG_DCHECK(row.size() == arity_);
  auto it = buckets_.find(core::HashTuple(row));
  if (it == buckets_.end()) return false;
  for (std::uint32_t index : it->second) {
    if (core::TupleEquals(StoredRow(index), row)) return true;
  }
  return false;
}

}  // namespace setalg::engine
