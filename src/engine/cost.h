// The engine's cost model: per-alternative cost and max-intermediate
// estimates for the division / set-join / semijoin operators, driven by
// the one-pass relation statistics of stats::.
//
// The formulas count abstract tuple operations (hash probes, merge steps,
// bitmap updates) with small constant weights taken from the shape of
// each kernel in setjoin/ and sa/. They are deliberately coarse: their
// job is to separate the asymptotic regimes the paper identifies (e.g.
// nested-loop division's g·m probes vs hash-division's single pass), not
// to predict milliseconds. Every Engine run records estimated-vs-actual
// output sizes in PlanStats; with a CalibrationStore attached
// (EngineOptions::WithCalibration) those pairs feed back as
// per-operator-kind correction factors and learned selectivities, and
// the formulas additionally consult the equi-depth histograms in stats::
// (expected posting lengths under skew, group-size distributions,
// column-vs-column selection selectivity). Without a store the fixed
// constants below apply unchanged, bit-identical to the uncalibrated
// model.
//
// To add a formula for a new operator: write an Estimate<Op> function
// from ExprEstimate inputs to a CostEstimate, add a Choose<Op> that
// minimizes over the alternatives, and consult it from the planner's
// lowering (see Planner's cost_based paths). Keep the weights relative
// to kTupleOp = 1.
#ifndef SETALG_ENGINE_COST_H_
#define SETALG_ENGINE_COST_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "engine/physical.h"
#include "ra/expr.h"
#include "setjoin/division.h"
#include "setjoin/setjoin.h"
#include "stats/stats.h"

namespace setalg::engine {

/// Estimated shape of an arbitrary subexpression — the projection of
/// RelationStats that the cost formulas consume. Exact for stored
/// relations; propagated with coarse selectivities elsewhere.
struct ExprEstimate {
  double cardinality = 0.0;
  /// Distinct values in column 1 (the group key of grouped inputs).
  double key_distinct = 0.0;
  /// Distinct values in the last column (the element column of grouped
  /// inputs — the divisor-domain width of a dividend).
  double elem_distinct = 0.0;
  /// cardinality / key_distinct (elements per group), >= 1.
  double avg_group = 1.0;
  /// True when the estimate is backed by actual stored-relation stats
  /// (a scan), not propagated guesses.
  bool exact = false;
  /// Expected rows sharing a random row's last-column value (the
  /// element-column histogram's ExpectedFrequency — the skew-aware
  /// replacement for cardinality/elem_distinct). 0 when no histogram
  /// backed the estimate. Only consulted by a calibrated model.
  double elem_expected_freq = 0.0;
  /// Group-size distribution of a grouped binary input; empty when
  /// unavailable. Stored by value so estimates outlive the RelationStats
  /// they came from (FromStats is often called on temporaries).
  stats::Histogram group_sizes;
};

/// Converts one-pass relation statistics into the cost-formula view.
ExprEstimate FromStats(const stats::RelationStats& stats);

/// Distinct-count estimate for one 1-based column of a subexpression:
/// the tracked key/element columns when they apply, sqrt(cardinality)
/// otherwise (the classic fallback). Used by the formulas below and by
/// the planner to cap partition widths on the actual partitioning
/// column (e.g. a semijoin's first equality atom, which need not be
/// column 1).
double EstimateColumnDistinct(const ExprEstimate& e, std::size_t column,
                              std::size_t arity);

// -- AGM output bounds (Atserias–Grohe–Marx) ---------------------------------

/// A join hypergraph: one vertex per join variable, one edge per input
/// relation listing the (deduplicated, 0-based) variables it covers, with
/// the relation's estimated cardinality. Built by the planner when it
/// collects a maximal binary-join chain.
struct JoinHypergraph {
  struct Edge {
    std::vector<std::size_t> vars;
    double cardinality = 0.0;
  };
  std::size_t num_vars = 0;
  std::vector<Edge> edges;
};

/// Arity caps under which the exact vertex-enumeration LP solve below is
/// cheap (C(num_vars + edges, edges) small systems). The planner refuses
/// to route larger chains to the multiway operator.
inline constexpr std::size_t kMaxHypergraphEdges = 6;
inline constexpr std::size_t kMaxHypergraphVars = 10;

struct FractionalEdgeCover {
  /// False when some variable is covered by no edge (the LP is infeasible;
  /// `bound` is +infinity) or the hypergraph exceeds the arity caps.
  bool feasible = false;
  /// The AGM bound: prod_e cardinality_e ^ weight_e at the optimal cover.
  /// Zero when any edge has cardinality 0 (the join output is empty).
  double bound = 0.0;
  /// Optimal per-edge weights (empty when infeasible).
  std::vector<double> weights;
};

/// Exact minimum-weight fractional edge cover, minimizing
/// sum_e w_e * ln(cardinality_e) subject to (per variable) sum_{e ∋ v} w_e
/// >= 1 and w >= 0. Solved by enumerating basic feasible points (the
/// polyhedron is pointed, so a vertex attains the optimum) — LP-free and
/// exact at the arities the planner sees.
FractionalEdgeCover SolveFractionalEdgeCover(const JoinHypergraph& graph);

/// Convenience: the bound alone. +infinity when infeasible or over caps.
double AgmBound(const JoinHypergraph& graph);

class CalibrationStore;  // engine/calibration.h

class CostModel {
 public:
  /// `provider` may be nullptr: estimates then fall back to coarse
  /// defaults and `exact` is never set. `calibration` may be nullptr (the
  /// default): the model then prices with its fixed constants only —
  /// bit-identical to the pre-calibration model. With a store attached,
  /// warm correction factors, learned selectivities and histogram-derived
  /// distributions refine the same formulas.
  explicit CostModel(const stats::StatsProvider* provider,
                     const CalibrationStore* calibration = nullptr)
      : provider_(provider), calibration_(calibration) {}

  /// Bottom-up cardinality/shape estimation for a logical subexpression.
  /// Memoized per node, so shared-subexpression DAGs (which the executor
  /// evaluates once per node) also estimate once per node.
  ExprEstimate Estimate(const ra::ExprPtr& expr) const;

  // -- Division ------------------------------------------------------------

  /// Cost of one division algorithm on dividend `r` (binary) and divisor
  /// `s` (unary). kClassicRa is estimated too (it is never chosen, but its
  /// Ω(g·m) intermediate makes the baseline visible in explains).
  CostEstimate EstimateDivision(setjoin::DivisionAlgorithm algorithm,
                                const ExprEstimate& r, const ExprEstimate& s,
                                bool equality) const;

  struct DivisionChoice {
    setjoin::DivisionAlgorithm algorithm;
    CostEstimate estimate;
  };
  /// The cheapest direct algorithm (never kClassicRa; ties break toward
  /// hash-division, the strongest all-round kernel in Graefe's study).
  DivisionChoice ChooseDivision(const ExprEstimate& r, const ExprEstimate& s,
                                bool equality) const;

  // -- Set-containment join ------------------------------------------------

  CostEstimate EstimateContainment(setjoin::ContainmentAlgorithm algorithm,
                                   const ExprEstimate& r,
                                   const ExprEstimate& s) const;

  struct ContainmentChoice {
    setjoin::ContainmentAlgorithm algorithm;
    CostEstimate estimate;
  };
  ContainmentChoice ChooseContainment(const ExprEstimate& r,
                                      const ExprEstimate& s) const;

  // -- Set-equality join ---------------------------------------------------

  CostEstimate EstimateSetEquality(setjoin::EqualityJoinAlgorithm algorithm,
                                   const ExprEstimate& r,
                                   const ExprEstimate& s) const;

  struct EqualityChoice {
    setjoin::EqualityJoinAlgorithm algorithm;
    CostEstimate estimate;
  };
  EqualityChoice ChooseSetEquality(const ExprEstimate& r,
                                   const ExprEstimate& s) const;

  // -- Partitioned (parallel) execution --------------------------------------

  /// Prices running a serial alternative hash-partitioned by group key
  /// into `partitions` parts on `threads` workers (per ROADMAP: the cost
  /// model prices partition counts): a serial partitioning pass over the
  /// `input_cardinality` tuples, the kernel work spread over
  /// ceil(partitions / threads) waves, a per-partition dispatch overhead,
  /// and a serial merge of the per-partition outputs. `aligned` declares
  /// the input pre-partitioned in storage (a scan of a relation sharded
  /// on the partitioning column — engine::ShardAlignedSlices): the
  /// partitioning-pass term drops to zero.
  CostEstimate EstimatePartitioned(const CostEstimate& serial,
                                   double input_cardinality,
                                   std::size_t partitions,
                                   std::size_t threads,
                                   bool aligned = false) const;

  struct ParallelChoice {
    /// 1 = stay serial; otherwise the chosen fan-out width.
    std::size_t partitions;
    CostEstimate estimate;
  };
  /// Serial vs partitioned for one call site: partitions the site
  /// `threads` ways (capped by `key_distinct` — more partitions than
  /// groups only buys empty tasks) iff that prices below the serial
  /// alternative. With threads <= 1 the answer is always serial.
  /// `aligned` as in EstimatePartitioned.
  ParallelChoice ChooseParallelism(const CostEstimate& serial,
                                   double input_cardinality,
                                   double key_distinct, std::size_t threads,
                                   bool aligned = false) const;

  // -- Semijoin ------------------------------------------------------------

  /// Kernel choice for left ⋉_θ right: the sa:: fast kernels win except on
  /// inputs so small that their setup work dominates.
  SemijoinStrategy ChooseSemijoin(const ExprEstimate& left,
                                  const ExprEstimate& right,
                                  const std::vector<ra::JoinAtom>& atoms) const;

  CostEstimate EstimateSemijoin(const ExprEstimate& left,
                                const ExprEstimate& right,
                                const std::vector<ra::JoinAtom>& atoms,
                                SemijoinStrategy strategy) const;

  // -- Multiway (worst-case-optimal) join ------------------------------------

  /// Prices the generic-join kernel on `graph`: sorting/materializing every
  /// input plus the AGM-bounded enumeration work. `output_guess` is the
  /// chain root's propagated cardinality estimate; the reported output and
  /// max intermediate are its minimum with the AGM bound (the kernel never
  /// materializes more than the output).
  CostEstimate EstimateMultiwayJoin(const JoinHypergraph& graph,
                                    double output_guess) const;

  /// Prices the written binary-join chain over the same inputs:
  /// `interior_cards` are the cardinality estimates of every interior
  /// (join/selection/projection) node, root last. Max intermediate is the
  /// largest interior estimate — the quantity the AGM bound budgets.
  CostEstimate EstimateBinaryJoinChain(const JoinHypergraph& graph,
                                       const std::vector<double>& interior_cards) const;

  struct MultiwayChoice {
    bool use_multiway = false;
    CostEstimate multiway;
    CostEstimate binary;
    double agm_bound = 0.0;
  };
  /// Multiway vs the written binary chain for one collected join
  /// hypergraph. Cost-based mode prices both kernels and takes the
  /// cheaper; planned (rule-based) mode routes exactly when the binary
  /// plan's estimated max intermediate exceeds the AGM bound — the
  /// paper's division dichotomy generalized. Never routes when the LP is
  /// infeasible or the hypergraph exceeds the arity caps.
  MultiwayChoice ChooseMultiwayJoin(const JoinHypergraph& graph,
                                    const std::vector<double>& interior_cards,
                                    bool cost_based) const;

 private:
  ExprEstimate EstimateUncached(const ra::ExprPtr& expr) const;

  /// Selectivity of sigma[i op j] from the two columns' histograms when
  /// the selection sits directly on a stored scan; negative when the
  /// histograms (or the provider) are unavailable.
  double HistogramSelectionSelectivity(const ra::ExprPtr& expr) const;

  const stats::StatsProvider* provider_;
  const CalibrationStore* calibration_;
  mutable std::unordered_map<const ra::Expr*, ExprEstimate> memo_;
};

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_COST_H_
