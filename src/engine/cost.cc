#include "engine/cost.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "engine/calibration.h"
#include "util/check.h"

namespace setalg::engine {
namespace {

using ra::OpKind;

// Relative per-tuple weights of the kernels' inner loops (kTupleOp = 1 is
// one plain array/merge step). Hash probes cost a bit more than merge
// steps; the aggregate kernel touches a hash counter pair per tuple where
// hash-division does one slot lookup plus a bitset write.
constexpr double kTupleOp = 1.0;
constexpr double kHashProbe = 1.25;
constexpr double kHashCounter = 1.5;
constexpr double kSignatureTest = 0.15;  // One 64-bit word op per pair.

double NonZero(double x) { return std::max(1.0, x); }

// Coarse selectivity constants for propagated (non-scan) estimates.
double SelectionSelectivity(ra::Cmp op) {
  switch (op) {
    case ra::Cmp::kEq:
      return 0.1;
    case ra::Cmp::kNeq:
      return 0.9;
    case ra::Cmp::kLt:
    case ra::Cmp::kGt:
      return 0.45;
  }
  return 0.5;
}

// See EstimateColumnDistinct (cost.h) — the internal spelling.
double ColumnDistinct(const ExprEstimate& e, std::size_t column, std::size_t arity) {
  if (column == 1) return NonZero(e.key_distinct);
  if (column == arity) return NonZero(e.elem_distinct);
  return NonZero(std::sqrt(NonZero(e.cardinality)));
}

// The calibration key of sigma[i op j] sites ("sel:select:=", ...).
std::string SelectKey(ra::Cmp op) {
  return std::string("sel:select:") + ra::CmpToString(op);
}

double ClampSelectivity(double s) { return std::clamp(s, 0.001, 1.0); }

// P(A = B) for independent draws from two histogrammed columns: the
// fraction of each side falling into the overlapping value range, divided
// by the larger distinct count within it (the classic 1/max(d_a, d_b),
// range-restricted).
double HistogramEqSelectivity(const stats::Histogram& a,
                              const stats::Histogram& b) {
  if (a.empty() || b.empty()) return 0.1;
  const core::Value lo = std::max(a.min_value, b.min_value);
  const core::Value hi = std::min(a.upper.back(), b.upper.back());
  if (lo > hi) return 0.001;  // Disjoint ranges: (almost) never equal.
  const double below_a = lo > a.min_value ? a.SelectivityLeq(lo - 1) : 0.0;
  const double below_b = lo > b.min_value ? b.SelectivityLeq(lo - 1) : 0.0;
  const double fa = std::max(0.0, a.SelectivityLeq(hi) - below_a);
  const double fb = std::max(0.0, b.SelectivityLeq(hi) - below_b);
  const double da = std::max(
      1.0, a.DistinctLeq(hi) - (lo > a.min_value ? a.DistinctLeq(lo - 1) : 0.0));
  const double db = std::max(
      1.0, b.DistinctLeq(hi) - (lo > b.min_value ? b.DistinctLeq(lo - 1) : 0.0));
  return ClampSelectivity(fa * fb / std::max(da, db));
}

// P(A < B) for independent draws: sum over B's buckets of the bucket mass
// times A's cumulative fraction strictly below the bucket midpoint.
double HistogramLtSelectivity(const stats::Histogram& a,
                              const stats::Histogram& b) {
  if (a.empty() || b.empty()) return 0.45;
  double p = 0.0;
  core::Value lower = b.min_value;
  for (std::size_t i = 0; i < b.buckets(); ++i) {
    // Midpoint via the unsigned range width: the signed difference
    // overflows for extreme bucket bounds.
    const core::Value mid =
        lower + static_cast<core::Value>(stats::RangeWidth(lower, b.upper[i]) / 2);
    const double mass =
        static_cast<double>(b.counts[i]) / static_cast<double>(b.total);
    p += mass * (mid > std::numeric_limits<core::Value>::min()
                     ? a.SelectivityLeq(mid - 1)
                     : 0.0);
    if (b.upper[i] == std::numeric_limits<core::Value>::max()) break;
    lower = b.upper[i] + 1;
  }
  return ClampSelectivity(p);
}

// P(|S_g| <= |R_g|) for independent group draws from the two group-size
// histograms. A containment pair is only feasible when the contained
// group is no larger, so the output estimate scales by this mass —
// under skewed group sizes most pairings are infeasible and the fixed
// 0.1·min(g_r, g_s) guess is a large overestimate.
double ContainmentFeasibility(const stats::Histogram& r_sizes,
                              const stats::Histogram& s_sizes) {
  if (r_sizes.empty() || s_sizes.empty()) return 1.0;
  double p = 0.0;
  core::Value lower = r_sizes.min_value;
  for (std::size_t i = 0; i < r_sizes.buckets(); ++i) {
    const core::Value mid =
        lower +
        static_cast<core::Value>(stats::RangeWidth(lower, r_sizes.upper[i]) / 2);
    const double mass = static_cast<double>(r_sizes.counts[i]) /
                        static_cast<double>(r_sizes.total);
    p += mass * s_sizes.SelectivityLeq(mid);
    if (r_sizes.upper[i] == std::numeric_limits<core::Value>::max()) break;
    lower = r_sizes.upper[i] + 1;
  }
  return std::clamp(p, 0.001, 1.0);
}

ExprEstimate Unknown() {
  ExprEstimate e;
  e.cardinality = 1000.0;
  e.key_distinct = 100.0;
  e.elem_distinct = 100.0;
  e.avg_group = 10.0;
  e.exact = false;
  return e;
}

ExprEstimate Derived(double cardinality, double key_distinct, double elem_distinct) {
  ExprEstimate e;
  e.cardinality = std::max(0.0, cardinality);
  e.key_distinct = std::min(NonZero(key_distinct), NonZero(e.cardinality));
  e.elem_distinct = std::min(NonZero(elem_distinct), NonZero(e.cardinality));
  e.avg_group = NonZero(e.cardinality) / e.key_distinct;
  e.exact = false;
  return e;
}

}  // namespace

ExprEstimate FromStats(const stats::RelationStats& stats) {
  ExprEstimate e;
  e.cardinality = static_cast<double>(stats.cardinality);
  e.key_distinct =
      stats.columns.empty() ? 1.0 : NonZero(static_cast<double>(stats.columns[0].distinct));
  e.elem_distinct = stats.columns.empty()
                        ? 1.0
                        : NonZero(static_cast<double>(stats.columns.back().distinct));
  e.avg_group = stats.arity == 2 && stats.groups.num_groups > 0
                    ? NonZero(stats.groups.avg_group_size)
                    : NonZero(e.cardinality) / e.key_distinct;
  e.exact = true;
  if (!stats.columns.empty()) {
    e.elem_expected_freq = stats.columns.back().histogram.ExpectedFrequency();
  }
  if (stats.arity == 2) e.group_sizes = stats.groups.size_histogram;
  return e;
}

double EstimateColumnDistinct(const ExprEstimate& e, std::size_t column,
                              std::size_t arity) {
  return ColumnDistinct(e, column, arity);
}

ExprEstimate CostModel::Estimate(const ra::ExprPtr& expr) const {
  SETALG_CHECK(expr != nullptr);
  auto it = memo_.find(expr.get());
  if (it != memo_.end()) return it->second;
  ExprEstimate estimate = EstimateUncached(expr);
  memo_.emplace(expr.get(), estimate);
  return estimate;
}

ExprEstimate CostModel::EstimateUncached(const ra::ExprPtr& expr) const {
  switch (expr->kind()) {
    case OpKind::kRelation: {
      if (provider_ == nullptr) return Unknown();
      const stats::RelationStats* stats = provider_->Get(expr->relation_name());
      return stats == nullptr ? Unknown() : FromStats(*stats);
    }
    case OpKind::kUnion: {
      const ExprEstimate a = Estimate(expr->child(0));
      const ExprEstimate b = Estimate(expr->child(1));
      return Derived(a.cardinality + b.cardinality, a.key_distinct + b.key_distinct,
                     a.elem_distinct + b.elem_distinct);
    }
    case OpKind::kDifference: {
      // Upper bound: nothing needs to be removed.
      const ExprEstimate a = Estimate(expr->child(0));
      return Derived(a.cardinality, a.key_distinct, a.elem_distinct);
    }
    case OpKind::kProjection: {
      const ExprEstimate a = Estimate(expr->child(0));
      const auto& columns = expr->projection();
      const std::size_t child_arity = expr->child(0)->arity();
      double cardinality = a.cardinality;
      if (columns.size() == 1) {
        cardinality = ColumnDistinct(a, columns[0], child_arity);
      }
      const double key =
          columns.empty() ? 1.0 : ColumnDistinct(a, columns[0], child_arity);
      const double elem =
          columns.empty() ? 1.0 : ColumnDistinct(a, columns.back(), child_arity);
      return Derived(cardinality, key, elem);
    }
    case OpKind::kSelection: {
      const ExprEstimate a = Estimate(expr->child(0));
      double s = SelectionSelectivity(expr->selection_op());
      if (calibration_ != nullptr) {
        // Histograms (per-instance) beat the learned global selectivity
        // (per-comparator), which beats the fixed constant.
        const double hist = HistogramSelectionSelectivity(expr);
        s = hist >= 0.0
                ? hist
                : calibration_->Selectivity(SelectKey(expr->selection_op()), s);
      }
      return Derived(a.cardinality * s, a.key_distinct * s + 1, a.elem_distinct * s + 1);
    }
    case OpKind::kConstTag: {
      const ExprEstimate a = Estimate(expr->child(0));
      // The appended column is a single constant.
      return Derived(a.cardinality, a.key_distinct, 1.0);
    }
    case OpKind::kJoin: {
      const ExprEstimate a = Estimate(expr->child(0));
      const ExprEstimate b = Estimate(expr->child(1));
      const std::size_t left_arity = expr->child(0)->arity();
      const std::size_t right_arity = expr->child(1)->arity();
      double cardinality = a.cardinality * b.cardinality;
      for (const auto& atom : expr->atoms()) {
        if (atom.op == ra::Cmp::kEq) {
          cardinality /= std::max(ColumnDistinct(a, atom.left, left_arity),
                                  ColumnDistinct(b, atom.right, right_arity));
        } else {
          cardinality *= SelectionSelectivity(atom.op);
        }
      }
      if (calibration_ != nullptr) {
        cardinality *= calibration_->OutputFactor("out:join");
      }
      return Derived(cardinality, a.key_distinct,
                     right_arity > 0 ? b.elem_distinct : a.elem_distinct);
    }
    case OpKind::kSemiJoin: {
      const ExprEstimate a = Estimate(expr->child(0));
      double s = expr->atoms().empty() ? 1.0 : 0.5;
      if (calibration_ != nullptr && !expr->atoms().empty()) {
        s = calibration_->Selectivity("sel:semijoin", s);
      }
      return Derived(a.cardinality * s, a.key_distinct * s + 1, a.elem_distinct * s + 1);
    }
  }
  SETALG_CHECK_STREAM(false) << "unreachable";
  return Unknown();
}

double CostModel::HistogramSelectionSelectivity(const ra::ExprPtr& expr) const {
  const ra::ExprPtr& child = expr->child(0);
  if (provider_ == nullptr || child->kind() != OpKind::kRelation) return -1.0;
  const stats::RelationStats* stats = provider_->Get(child->relation_name());
  if (stats == nullptr) return -1.0;
  const std::size_t i = expr->selection_i();
  const std::size_t j = expr->selection_j();
  if (i < 1 || j < 1 || i > stats->columns.size() || j > stats->columns.size()) {
    return -1.0;
  }
  const stats::Histogram& a = stats->columns[i - 1].histogram;
  const stats::Histogram& b = stats->columns[j - 1].histogram;
  if (a.empty() || b.empty()) return -1.0;
  switch (expr->selection_op()) {
    case ra::Cmp::kEq:
      return HistogramEqSelectivity(a, b);
    case ra::Cmp::kNeq:
      return ClampSelectivity(1.0 - HistogramEqSelectivity(a, b));
    case ra::Cmp::kLt:
      return HistogramLtSelectivity(a, b);
    case ra::Cmp::kGt:
      return HistogramLtSelectivity(b, a);
  }
  return -1.0;
}

// ---------------------------------------------------------------------------
// Division. Shapes (setjoin/division.cc): n = |R|, g = distinct keys,
// k = n/g elements per group, m = |S|.
// ---------------------------------------------------------------------------

CostEstimate CostModel::EstimateDivision(setjoin::DivisionAlgorithm algorithm,
                                         const ExprEstimate& r, const ExprEstimate& s,
                                         bool equality) const {
  const double n = NonZero(r.cardinality);
  const double g = NonZero(r.key_distinct);
  const double m = NonZero(s.cardinality);
  CostEstimate est;
  // All algorithms emit the same result: a coarse fraction of the groups
  // (equality is stricter). The choice only hinges on cost.
  est.output_size = g * (equality ? 0.1 : 0.25);
  if (calibration_ != nullptr) {
    // The operator label distinguishes the flavors ("division=[...]" for
    // equality division), so each learns its own correction.
    est.output_size *=
        calibration_->OutputFactor(equality ? "out:division=" : "out:division");
    est.output_size = std::min(est.output_size, g);
  }
  switch (algorithm) {
    case setjoin::DivisionAlgorithm::kNestedLoop:
      // Grouping pass + (A,B) hash index build + g·m membership probes.
      est.cost = 2 * kTupleOp * n + kHashProbe * (n + g * m);
      est.max_intermediate = n;
      break;
    case setjoin::DivisionAlgorithm::kSortMerge:
      // Streams the normalized storage; the divisor pointer can re-advance
      // up to m steps in each of the g groups.
      est.cost = kTupleOp * (n + 0.5 * g * m);
      est.max_intermediate = est.output_size;
      break;
    case setjoin::DivisionAlgorithm::kHashDivision:
      // Divisor table build, one slot lookup + bitset write per tuple,
      // then a bitmap scan (m/64 words) per candidate.
      est.cost = kHashProbe * m + kHashProbe * n + kTupleOp * g * (1 + m / 64.0);
      est.max_intermediate = g;
      break;
    case setjoin::DivisionAlgorithm::kAggregate:
      // Divisor set build, hash-counter update per tuple, candidate scan.
      est.cost = kHashProbe * m + kHashCounter * n + kTupleOp * g;
      est.max_intermediate = g;
      break;
    case setjoin::DivisionAlgorithm::kClassicRa:
      // The textbook plan materializes the g·m product and two differences
      // over it (Proposition 26's Ω(n²) intermediate).
      est.cost = kTupleOp * (n + 3 * g * m);
      est.max_intermediate = g * m;
      break;
  }
  return est;
}

CostModel::DivisionChoice CostModel::ChooseDivision(const ExprEstimate& r,
                                                    const ExprEstimate& s,
                                                    bool equality) const {
  // kHashDivision first: it wins ties (Graefe's all-round strongest).
  static constexpr setjoin::DivisionAlgorithm kCandidates[] = {
      setjoin::DivisionAlgorithm::kHashDivision,
      setjoin::DivisionAlgorithm::kAggregate,
      setjoin::DivisionAlgorithm::kSortMerge,
      setjoin::DivisionAlgorithm::kNestedLoop,
  };
  DivisionChoice best{kCandidates[0], EstimateDivision(kCandidates[0], r, s, equality)};
  for (std::size_t i = 1; i < std::size(kCandidates); ++i) {
    const CostEstimate est = EstimateDivision(kCandidates[i], r, s, equality);
    if (est.cost < best.estimate.cost) best = {kCandidates[i], est};
  }
  return best;
}

// ---------------------------------------------------------------------------
// Set-containment join. Shapes (setjoin/setjoin.cc): G_r/G_s groups with
// k_r/k_s elements each, D distinct elements on the containing side.
// ---------------------------------------------------------------------------

CostEstimate CostModel::EstimateContainment(setjoin::ContainmentAlgorithm algorithm,
                                            const ExprEstimate& r,
                                            const ExprEstimate& s) const {
  const double nr = NonZero(r.cardinality);
  const double ns = NonZero(s.cardinality);
  const double gr = NonZero(r.key_distinct);
  const double gs = NonZero(s.key_distinct);
  const double kr = NonZero(r.avg_group);
  const double ks = NonZero(s.avg_group);
  const double domain = NonZero(r.elem_distinct);
  // Expected posting length of one element probe into the containing
  // side. nr/domain assumes a uniform element distribution; under skew
  // the histogram's value-weighted expectation (heavy elements are both
  // long postings *and* likely probes) is far larger — the error that
  // made the inverted index look cheap on skewed inputs.
  double expected_posting = nr / domain;
  if (calibration_ != nullptr && r.elem_expected_freq > 0.0) {
    expected_posting = r.elem_expected_freq;
  }
  CostEstimate est;
  est.output_size = 0.1 * std::min(gr, gs) + 0.001 * gr * gs;
  if (calibration_ != nullptr) {
    if (!r.group_sizes.empty() && !s.group_sizes.empty()) {
      est.output_size *= ContainmentFeasibility(r.group_sizes, s.group_sizes);
    }
    est.output_size *= calibration_->OutputFactor("out:set-containment-join");
    est.output_size = std::min(est.output_size, gr * gs);
  }
  const double pair_test = 0.5 * (kr + ks);  // Sorted-subset merge.
  switch (algorithm) {
    case setjoin::ContainmentAlgorithm::kNestedLoop:
      est.cost = gr * gs * pair_test;
      est.max_intermediate = nr + ns;
      break;
    case setjoin::ContainmentAlgorithm::kSignatureNestedLoop: {
      // One word op per pair; survivors (true matches + Bloom false
      // positives) pay the exact test.
      const double survivors = 2 * est.output_size + 0.01 * gr * gs;
      est.cost = kSignatureTest * gr * gs + survivors * pair_test;
      est.max_intermediate = nr + ns;
      break;
    }
    case setjoin::ContainmentAlgorithm::kPartitioned: {
      // Candidate groups are replicated to the partition of each of their
      // elements; each divisor group meets the ~n_r/D candidates stored in
      // its designated partition.
      const double per_partition_pairs = gs * expected_posting;
      est.cost = kTupleOp * (nr + ns) + per_partition_pairs * pair_test;
      est.max_intermediate = 2 * nr + ns;
      break;
    }
    case setjoin::ContainmentAlgorithm::kInvertedIndex:
      // Postings build + one counting probe per (s element, posting hit).
      est.cost = kHashProbe * nr + kHashProbe * ns * expected_posting +
                 kTupleOp * est.output_size;
      est.max_intermediate = nr + ns;
      break;
  }
  return est;
}

CostModel::ContainmentChoice CostModel::ChooseContainment(const ExprEstimate& r,
                                                          const ExprEstimate& s) const {
  static constexpr setjoin::ContainmentAlgorithm kCandidates[] = {
      setjoin::ContainmentAlgorithm::kInvertedIndex,
      setjoin::ContainmentAlgorithm::kSignatureNestedLoop,
      setjoin::ContainmentAlgorithm::kPartitioned,
      setjoin::ContainmentAlgorithm::kNestedLoop,
  };
  ContainmentChoice best{kCandidates[0], EstimateContainment(kCandidates[0], r, s)};
  for (std::size_t i = 1; i < std::size(kCandidates); ++i) {
    const CostEstimate est = EstimateContainment(kCandidates[i], r, s);
    if (est.cost < best.estimate.cost) best = {kCandidates[i], est};
  }
  return best;
}

// ---------------------------------------------------------------------------
// Set-equality join.
// ---------------------------------------------------------------------------

CostEstimate CostModel::EstimateSetEquality(setjoin::EqualityJoinAlgorithm algorithm,
                                            const ExprEstimate& r,
                                            const ExprEstimate& s) const {
  const double nr = NonZero(r.cardinality);
  const double ns = NonZero(s.cardinality);
  const double gr = NonZero(r.key_distinct);
  const double gs = NonZero(s.key_distinct);
  const double kr = NonZero(r.avg_group);
  const double ks = NonZero(s.avg_group);
  CostEstimate est;
  est.output_size = 0.1 * std::min(gr, gs) + 0.001 * gr * gs;
  if (calibration_ != nullptr) {
    est.output_size *= calibration_->OutputFactor("out:set-equality-join");
    est.output_size = std::min(est.output_size, gr * gs);
  }
  switch (algorithm) {
    case setjoin::EqualityJoinAlgorithm::kNestedLoop:
      est.cost = gr * gs * 0.5 * std::min(kr, ks);
      est.max_intermediate = nr + ns;
      break;
    case setjoin::EqualityJoinAlgorithm::kCanonicalHash:
      // One set-hash pass per side plus in-bucket verification of matches
      // (the paper's footnote-1 O(n log n + output) strategy).
      est.cost = kHashProbe * (nr + ns) + (kr + ks) * est.output_size;
      est.max_intermediate = nr + ns;
      break;
  }
  return est;
}

CostModel::EqualityChoice CostModel::ChooseSetEquality(const ExprEstimate& r,
                                                       const ExprEstimate& s) const {
  const CostEstimate hash = EstimateSetEquality(
      setjoin::EqualityJoinAlgorithm::kCanonicalHash, r, s);
  const CostEstimate nested =
      EstimateSetEquality(setjoin::EqualityJoinAlgorithm::kNestedLoop, r, s);
  if (nested.cost < hash.cost) {
    return {setjoin::EqualityJoinAlgorithm::kNestedLoop, nested};
  }
  return {setjoin::EqualityJoinAlgorithm::kCanonicalHash, hash};
}

// ---------------------------------------------------------------------------
// Partitioned (parallel) execution.
// ---------------------------------------------------------------------------

namespace {

// One hash + route + bulk copy per tuple of the partitioning pass.
constexpr double kPartitionTuple = 0.5;
// Handing one partition task to the pool (dispatch, wake-up, cold
// caches). Large relative to kTupleOp so tiny inputs stay serial: at a
// few thousand tuples the fan-out costs more than it saves.
constexpr double kTaskDispatch = 2000.0;

}  // namespace

CostEstimate CostModel::EstimatePartitioned(const CostEstimate& serial,
                                            double input_cardinality,
                                            std::size_t partitions,
                                            std::size_t threads,
                                            bool aligned) const {
  const double p = NonZero(static_cast<double>(partitions));
  const double waves =
      std::ceil(p / NonZero(static_cast<double>(threads)));
  CostEstimate est;
  est.output_size = serial.output_size;
  // Partition slices replace the serial kernel's working set; the merge
  // buffers the same output once more.
  est.max_intermediate = serial.max_intermediate + serial.output_size;
  // A shard-aligned input needs no partitioning pass: the stored shards
  // are the partitions (engine::ShardAlignedSlices).
  const double split = aligned ? 0.0 : kPartitionTuple * NonZero(input_cardinality);
  est.cost = split                                         // Serial split.
             + serial.cost * waves / p                     // Kernel, in waves.
             + kTaskDispatch * p                           // Fan-out/fan-in sync.
             + kTupleOp * serial.output_size;              // Serial merge.
  return est;
}

CostModel::ParallelChoice CostModel::ChooseParallelism(const CostEstimate& serial,
                                                       double input_cardinality,
                                                       double key_distinct,
                                                       std::size_t threads,
                                                       bool aligned) const {
  if (threads <= 1) return {1, serial};
  const std::size_t partitions = static_cast<std::size_t>(std::max(
      1.0, std::min(static_cast<double>(threads), NonZero(key_distinct))));
  if (partitions <= 1) return {1, serial};
  const CostEstimate partitioned =
      EstimatePartitioned(serial, input_cardinality, partitions, threads, aligned);
  if (partitioned.cost < serial.cost) return {partitions, partitioned};
  return {1, serial};
}

// ---------------------------------------------------------------------------
// Semijoin kernel choice.
// ---------------------------------------------------------------------------

SemijoinStrategy CostModel::ChooseSemijoin(const ExprEstimate& left,
                                           const ExprEstimate& right,
                                           const std::vector<ra::JoinAtom>& atoms) const {
  // With an empty condition the generic path returns `left` outright; on
  // tiny inputs the fast kernels' index setup dominates their win.
  if (atoms.empty()) return SemijoinStrategy::kGeneric;
  if (left.cardinality + right.cardinality < 64.0) return SemijoinStrategy::kGeneric;
  return SemijoinStrategy::kFastKernel;
}

// ---------------------------------------------------------------------------
// AGM output bounds and the multiway (worst-case-optimal) join.
// ---------------------------------------------------------------------------

namespace {

// Solves the square system `a`·w = `rhs` in place by Gaussian elimination
// with partial pivoting. Returns false on a (numerically) singular basis.
bool SolveSquare(std::vector<double>& a, std::vector<double>& rhs, std::size_t k) {
  constexpr double kPivotEps = 1e-9;
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < k; ++row) {
      if (std::fabs(a[row * k + col]) > std::fabs(a[pivot * k + col])) pivot = row;
    }
    if (std::fabs(a[pivot * k + col]) < kPivotEps) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < k; ++j) std::swap(a[col * k + j], a[pivot * k + j]);
      std::swap(rhs[col], rhs[pivot]);
    }
    for (std::size_t row = 0; row < k; ++row) {
      if (row == col) continue;
      const double f = a[row * k + col] / a[col * k + col];
      if (f == 0.0) continue;
      for (std::size_t j = col; j < k; ++j) a[row * k + j] -= f * a[col * k + j];
      rhs[row] -= f * rhs[col];
    }
  }
  for (std::size_t i = 0; i < k; ++i) rhs[i] /= a[i * k + i];
  return true;
}

}  // namespace

FractionalEdgeCover SolveFractionalEdgeCover(const JoinHypergraph& graph) {
  FractionalEdgeCover result;
  const std::size_t k = graph.edges.size();
  const std::size_t m = graph.num_vars;
  if (k == 0 || k > kMaxHypergraphEdges || m == 0 || m > kMaxHypergraphVars) {
    result.bound = std::numeric_limits<double>::infinity();
    return result;
  }
  // Coverage matrix: cover[v][e] = 1 iff edge e contains variable v.
  std::vector<double> cover(m * k, 0.0);
  for (std::size_t e = 0; e < k; ++e) {
    for (std::size_t v : graph.edges[e].vars) {
      SETALG_CHECK(v < m);
      cover[v * k + e] = 1.0;
    }
  }
  for (std::size_t v = 0; v < m; ++v) {
    bool covered = false;
    for (std::size_t e = 0; e < k; ++e) covered |= cover[v * k + e] != 0.0;
    if (!covered) {  // Infeasible: a variable no relation can bind.
      result.bound = std::numeric_limits<double>::infinity();
      return result;
    }
  }
  // Objective coefficients: ln of the (clamped) cardinalities. An
  // identically-zero edge empties the join regardless of the cover.
  bool empty_edge = false;
  std::vector<double> obj(k);
  for (std::size_t e = 0; e < k; ++e) {
    empty_edge |= graph.edges[e].cardinality <= 0.0;
    obj[e] = std::log(NonZero(graph.edges[e].cardinality));
  }
  // Enumerate basic points: every size-k subset of the m coverage rows
  // plus k nonnegativity rows, solved tight. The feasible region
  // {A·w >= 1, w >= 0} is pointed and the objective is bounded below by
  // 0, so a vertex attains the minimum.
  constexpr double kFeasEps = 1e-7;
  const std::size_t rows = m + k;
  std::vector<std::size_t> pick(k);
  std::vector<double> best_w;
  double best_obj = std::numeric_limits<double>::infinity();
  std::vector<double> a(k * k);
  std::vector<double> w(k);
  // Iterative combination enumeration over `rows` choose `k`.
  for (std::size_t i = 0; i < k; ++i) pick[i] = i;
  while (true) {
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t r = pick[i];
      if (r < m) {
        for (std::size_t e = 0; e < k; ++e) a[i * k + e] = cover[r * k + e];
        w[i] = 1.0;
      } else {  // Nonnegativity row: w[r - m] = 0.
        for (std::size_t e = 0; e < k; ++e) a[i * k + e] = 0.0;
        a[i * k + (r - m)] = 1.0;
        w[i] = 0.0;
      }
    }
    if (SolveSquare(a, w, k)) {
      bool feasible = true;
      for (std::size_t e = 0; e < k && feasible; ++e) feasible = w[e] >= -kFeasEps;
      for (std::size_t v = 0; v < m && feasible; ++v) {
        double lhs = 0.0;
        for (std::size_t e = 0; e < k; ++e) lhs += cover[v * k + e] * w[e];
        feasible = lhs >= 1.0 - kFeasEps;
      }
      if (feasible) {
        double value = 0.0;
        for (std::size_t e = 0; e < k; ++e) value += std::max(0.0, w[e]) * obj[e];
        if (value < best_obj) {
          best_obj = value;
          best_w = w;
        }
      }
    }
    // Advance the combination (lexicographic); stop when exhausted.
    bool advanced = false;
    for (std::size_t i = k; i-- > 0;) {
      if (pick[i] != i + rows - k) {
        ++pick[i];
        for (std::size_t j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  if (!std::isfinite(best_obj)) {  // Should not happen for covered graphs.
    result.bound = std::numeric_limits<double>::infinity();
    return result;
  }
  result.feasible = true;
  result.weights.resize(k);
  double bound = 1.0;
  for (std::size_t e = 0; e < k; ++e) {
    result.weights[e] = std::max(0.0, best_w[e]);
    bound *= std::pow(NonZero(graph.edges[e].cardinality), result.weights[e]);
  }
  result.bound = empty_edge ? 0.0 : bound;
  return result;
}

double AgmBound(const JoinHypergraph& graph) {
  return SolveFractionalEdgeCover(graph).bound;
}

CostEstimate CostModel::EstimateMultiwayJoin(const JoinHypergraph& graph,
                                             double output_guess) const {
  const double agm = AgmBound(graph);
  double sum_inputs = 0.0;
  for (const auto& edge : graph.edges) sum_inputs += NonZero(edge.cardinality);
  CostEstimate est;
  est.output_size = std::isfinite(agm) ? std::min(std::max(0.0, output_guess), agm)
                                       : std::max(0.0, output_guess);
  // The generic-join kernel materializes only its inputs and output; the
  // enumeration visits at most AGM-many bindings per variable level.
  est.max_intermediate = est.output_size;
  const double enumeration =
      std::isfinite(agm) ? agm : std::max(0.0, output_guess);
  est.cost = kHashProbe * sum_inputs  // Sort/permute every input once.
             + kTupleOp * NonZero(static_cast<double>(graph.num_vars)) *
                   NonZero(enumeration);
  return est;
}

CostEstimate CostModel::EstimateBinaryJoinChain(const JoinHypergraph& graph,
                                                const std::vector<double>& interior_cards) const {
  double sum_inputs = 0.0;
  for (const auto& edge : graph.edges) sum_inputs += NonZero(edge.cardinality);
  CostEstimate est;
  est.output_size = interior_cards.empty() ? 0.0 : std::max(0.0, interior_cards.back());
  double max_interior = 0.0;
  double sum_interior = 0.0;
  for (double c : interior_cards) {
    max_interior = std::max(max_interior, c);
    sum_interior += std::max(0.0, c);
  }
  est.max_intermediate = max_interior;
  // Each interior node materializes its output once and probes it once
  // downstream; the leaves are hashed/scanned once each.
  est.cost = kHashProbe * sum_inputs + 2 * kTupleOp * sum_interior;
  return est;
}

CostModel::MultiwayChoice CostModel::ChooseMultiwayJoin(
    const JoinHypergraph& graph, const std::vector<double>& interior_cards,
    bool cost_based) const {
  MultiwayChoice choice;
  choice.agm_bound = AgmBound(graph);
  const double output_guess =
      interior_cards.empty() ? 0.0 : interior_cards.back();
  choice.multiway = EstimateMultiwayJoin(graph, output_guess);
  choice.binary = EstimateBinaryJoinChain(graph, interior_cards);
  if (!std::isfinite(choice.agm_bound)) {
    choice.use_multiway = false;  // Infeasible or over the arity caps.
    return choice;
  }
  choice.use_multiway = cost_based
                            ? choice.multiway.cost < choice.binary.cost
                            : choice.binary.max_intermediate > choice.agm_bound;
  return choice;
}

CostEstimate CostModel::EstimateSemijoin(const ExprEstimate& left,
                                         const ExprEstimate& right,
                                         const std::vector<ra::JoinAtom>& atoms,
                                         SemijoinStrategy strategy) const {
  const double nl = NonZero(left.cardinality);
  const double nr = NonZero(right.cardinality);
  double selectivity = 0.5;
  if (calibration_ != nullptr && !atoms.empty()) {
    selectivity = calibration_->Selectivity("sel:semijoin", selectivity);
  }
  CostEstimate est;
  est.output_size =
      atoms.empty() ? left.cardinality : selectivity * left.cardinality;
  est.max_intermediate = est.output_size;
  if (atoms.empty()) {
    est.cost = kTupleOp * nl;  // Both paths copy the surviving side.
    return est;
  }
  bool has_equality = false;
  for (const auto& atom : atoms) has_equality |= atom.op == ra::Cmp::kEq;
  if (strategy == SemijoinStrategy::kFastKernel || has_equality) {
    // Index build on one side, one probe per tuple of the other (the
    // order-conjunct kernels are min/max aggregations of the same shape).
    est.cost = kHashProbe * (nl + nr);
  } else {
    est.cost = 0.5 * nl * nr;  // Generic pure-inequality nested loop.
  }
  return est;
}

}  // namespace setalg::engine
