#include "engine/calibration.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <sstream>

namespace setalg::engine {
namespace {

// Floor for sizes entering a log: a zero-row actual still pushes the
// factor down without producing -infinity.
double ClampSize(double x) { return std::max(0.5, x); }

}  // namespace

CalibrationStore::CalibrationStore(Params params)
    : params_(params), stripes_(std::make_unique<Stripe[]>(kStripes)) {}

CalibrationStore::Stripe& CalibrationStore::StripeFor(
    const std::string& key) const {
  return stripes_[std::hash<std::string>{}(key) % kStripes];
}

void CalibrationStore::ObserveOutput(const std::string& op_kind,
                                     double estimated, double actual) {
  const double residual =
      std::log(ClampSize(actual)) - std::log(ClampSize(estimated));
  const double clamp = std::log(params_.max_factor);
  Stripe& stripe = StripeFor(op_kind);
  std::lock_guard<std::mutex> lock(stripe.mu);
  Entry& entry = stripe.entries[op_kind];
  // The estimate already carries the current factor, so the residual is
  // the *remaining* error; stepping toward it converges (no oscillation).
  entry.log_value += params_.learning_rate * residual;
  entry.log_value = std::clamp(entry.log_value, -clamp, clamp);
  ++entry.count;
}

void CalibrationStore::ObserveSelectivity(const std::string& key, double input,
                                          double output) {
  if (input <= 0.0) return;  // An empty input observes nothing.
  const double observed = std::clamp(output / input, 1e-4, 1.0);
  const double log_observed = std::log(observed);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  Entry& entry = stripe.entries[key];
  if (entry.count == 0) {
    entry.log_value = log_observed;
  } else {
    entry.log_value +=
        params_.learning_rate * (log_observed - entry.log_value);
  }
  ++entry.count;
}

double CalibrationStore::OutputFactor(const std::string& op_kind) const {
  Stripe& stripe = StripeFor(op_kind);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.entries.find(op_kind);
  if (it == stripe.entries.end() || it->second.count < params_.min_observations) {
    return 1.0;
  }
  return std::exp(it->second.log_value);
}

double CalibrationStore::Selectivity(const std::string& key,
                                     double fallback) const {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.entries.find(key);
  if (it == stripe.entries.end() || it->second.count < params_.min_observations) {
    return fallback;
  }
  return std::exp(it->second.log_value);
}

std::uint64_t CalibrationStore::observations() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kStripes; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mu);
    for (const auto& [key, entry] : stripes_[i].entries) total += entry.count;
  }
  return total;
}

std::string CalibrationStore::Summary() const {
  std::map<std::string, Entry> sorted;
  for (std::size_t i = 0; i < kStripes; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mu);
    for (const auto& [key, entry] : stripes_[i].entries) sorted[key] = entry;
  }
  std::ostringstream out;
  out << "calibration{";
  bool first = true;
  for (const auto& [key, entry] : sorted) {
    if (!first) out << ", ";
    first = false;
    out << key << "=" << std::exp(entry.log_value) << " x" << entry.count;
  }
  out << "}";
  return out.str();
}

}  // namespace setalg::engine
